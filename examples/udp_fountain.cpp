// A working digital fountain over real UDP sockets (loopback), mirroring the
// paper's prototype framing: 500-byte payloads tagged with a 12-byte header
// (packet index, serial number, codec id, checksum, group number) for
// 512-byte datagrams.
//
//   $ ./udp_fountain [size_kb] [loss]
//
// This example exercises the whole hardened wire path end to end:
//
//  - Control channel (Section 7.3's "UDP unicast thread"): the client fetches
//    the ControlInfo through proto::fetch_control over a mirror list whose
//    first endpoint is deliberately dead — bounded retries with exponential
//    backoff, then failover to the live mirror.
//  - Mirrored data servers: two sender threads stream the same code from
//    different carousel phases (symbols from any sender are interchangeable).
//    Mirror 0 dies mid-transfer; the client keeps every symbol it buffered
//    and completes from mirror 1 alone.
//  - Adversarial delivery: each mirror flips one random header bit in a
//    fraction of its datagrams. The header checksum (byte [9]) rejects every
//    one of them before the decoder sees a byte — the client tallies
//    checksum rejects and the exit status checks none slipped through.
//  - Stall watchdog: if no distinct symbol arrives for a bounded window the
//    client classifies the run as stalled and exits, never hangs.
//
// The client is fully constructive: it derives its erasure code from the
// fetched ControlInfo via fec::CodecRegistry — exactly the fields a real
// control channel carries — and runs the statistical decoding strategy of
// Section 7.2. Everything runs in one process so the example is
// self-contained and CI-friendly.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <thread>

#include "carousel/carousel.hpp"
#include "engine/sources.hpp"
#include "fec/codec_registry.hpp"
#include "net/loss.hpp"
#include "net/packet_header.hpp"
#include "net/udp.hpp"
#include "proto/client.hpp"
#include "proto/control.hpp"
#include "proto/fetch.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fountain;
  using Clock = std::chrono::steady_clock;

  const std::size_t size_kb = argc > 1 ? std::atoi(argv[1]) : 512;
  const double drop = argc > 2 ? std::atof(argv[2]) : 0.25;
  const std::size_t payload_bytes = 500;
  const std::size_t file_bytes = size_kb * 1024;
  const double corrupt_rate = 0.02;  // fraction of datagrams bit-flipped

  // What the control channel advertises: file length, symbol size, codec
  // family and construction seed. Server and client both build their code
  // from these fields alone.
  const proto::ControlInfo info = proto::make_control_info(
      file_bytes, payload_bytes, /*variant=*/0, /*graph_seed=*/3,
      /*layers=*/1, /*permutation_seed=*/1, fec::CodecId::kTornado);

  const auto server_code =
      fec::CodecRegistry::builtin().create(info.codec, info.codec_params());
  util::SymbolMatrix file(server_code->source_count(), payload_bytes);
  file.fill_random(2025);

  net::UdpSocket client_sock;
  client_sock.bind({"127.0.0.1", 0});
  const auto data_port = client_sock.local_port();

  std::atomic<bool> stop{false};

  // Control plane: mirror 0 is a bound socket nobody services (a dead
  // server: requests time out), mirror 1 answers every request with the
  // serialized ControlInfo.
  net::UdpSocket dead_ctrl;
  dead_ctrl.bind({"127.0.0.1", 0});
  net::UdpSocket live_ctrl;
  live_ctrl.bind({"127.0.0.1", 0});
  const net::Endpoint ctrl_mirrors[] = {
      {"127.0.0.1", dead_ctrl.local_port()},
      {"127.0.0.1", live_ctrl.local_port()},
  };
  std::thread ctrl_server([&] {
    std::vector<std::uint8_t> reply(proto::ControlInfo::kWireSize);
    info.serialize(util::ByteSpan(reply));
    while (!stop.load(std::memory_order_relaxed)) {
      const auto request = live_ctrl.receive(std::chrono::milliseconds(50));
      if (request) live_ctrl.send_to(request->from, util::ConstByteSpan(reply));
    }
  });

  // The retrying fetch: dead mirror first, so the fetch must burn its
  // attempts there (exponential backoff) and fail over.
  net::UdpSocket fetch_sock;
  fetch_sock.bind({"127.0.0.1", 0});
  proto::FetchPolicy fetch_policy;
  fetch_policy.attempts_per_mirror = 2;
  fetch_policy.initial_timeout = std::chrono::milliseconds(50);
  fetch_policy.seed = 7;
  const std::uint8_t ping = 0x3f;
  const proto::FetchResult fetched = proto::fetch_control(
      [&](std::size_t mirror, std::chrono::milliseconds timeout) {
        fetch_sock.send_to(ctrl_mirrors[mirror], util::ConstByteSpan(&ping, 1));
        auto reply = fetch_sock.receive(timeout);
        if (!reply || reply->truncated) return std::optional<
            std::vector<std::uint8_t>>{};
        return std::optional(std::move(reply->payload));
      },
      std::size(ctrl_mirrors), fetch_policy);
  if (!fetched) {
    std::printf("control fetch exhausted every mirror (%s)\n",
                net::parse_error_name(fetched.last_error));
    stop.store(true);
    ctrl_server.join();
    return 1;
  }
  std::printf("control info via mirror %zu after %zu attempts "
              "(%zu retries, %zu failovers)\n",
              fetched.mirror, fetched.attempts, fetched.retries,
              fetched.failovers);

  std::printf("udp fountain: %zu KB file -> %zu packets of %zu B "
              "(+12 B header), %.0f%% induced loss, %.0f%% header corruption, "
              "2 mirrors, port %u\n",
              size_kb, server_code->encoded_count(), payload_bytes,
              100.0 * drop, 100.0 * corrupt_rate, data_port);

  // Data plane: two mirror senders from different carousel phases. Mirror 0
  // dies (thread exits) after ~60% of one carousel pass; the client finishes
  // from mirror 1 with everything it already buffered still counting.
  std::atomic<std::uint64_t> corrupted_sent{0};
  const auto mirror_thread = [&](std::uint64_t mirror_seed,
                                 std::uint64_t die_after_packets) {
    return std::thread([&, mirror_seed, die_after_packets] {
      net::UdpSocket sock;
      util::Rng rng(info.permutation_seed + mirror_seed);
      util::Rng fault_rng(0x5eedf001 * (mirror_seed + 1));
      net::BernoulliLoss channel(drop, 2 + mirror_seed);
      const auto order = carousel::Carousel::random_permutation(
          server_code->encoded_count(), rng);
      const auto encoder = server_code->make_encoder(file);
      const engine::CarouselSource source(order, server_code->codec_id(), 32);
      engine::PacketBatch batch;
      std::vector<std::uint8_t> wire(net::PacketHeader::kWireSize +
                                     payload_bytes);
      std::uint32_t serial = 0;
      std::uint64_t sent = 0;
      for (std::uint64_t round = 0; !stop.load(std::memory_order_relaxed);
           ++round) {
        batch.clear();
        source.emit(round, batch);
        for (const std::uint32_t index : batch.indices) {
          ++serial;
          if (channel.lost()) continue;  // channel impairment
          const net::PacketHeader header{index, serial,
                                         server_code->codec_id(), 0};
          header.serialize(util::ByteSpan(wire));
          encoder->write_symbol(
              index,
              util::ByteSpan(wire).subspan(net::PacketHeader::kWireSize));
          if (fault_rng.chance(corrupt_rate)) {
            // One flipped header bit: the CRC-8 catches every single-bit
            // error, so all of these must land in the checksum-reject tally.
            const auto bit = fault_rng.below(8 * net::PacketHeader::kWireSize);
            wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
            corrupted_sent.fetch_add(1, std::memory_order_relaxed);
          }
          sock.send_to({"127.0.0.1", data_port}, util::ConstByteSpan(wire));
          if (++sent == die_after_packets) return;  // mirror death
        }
        // Pace the stream so the client-side socket buffer keeps up.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  };
  const std::uint64_t die_after = (server_code->encoded_count() * 3) / 5;
  std::thread mirror0 = mirror_thread(0, die_after);
  std::thread mirror1 = mirror_thread(1, 0);  // 0 = never dies

  // The client side: instantiate the matching code purely from the fetched
  // control info (no shared ErasureCode object with the server threads).
  const auto client_code = fec::CodecRegistry::builtin().create(
      fetched.info.codec, fetched.info.codec_params());
  proto::StatisticalDataClient client(*client_code, /*initial_margin=*/0.05);
  util::WallTimer timer;
  std::uint64_t received = 0;
  std::uint64_t checksum_rejected = 0;
  std::uint64_t framing_rejected = 0;
  bool done = false;
  bool stalled = false;
  const auto stall_window = std::chrono::seconds(10);
  auto last_progress = Clock::now();
  std::size_t last_distinct = 0;
  while (!done) {
    if (Clock::now() - last_progress > stall_window) {
      stalled = true;  // classified, never a hang
      break;
    }
    const auto datagram = client_sock.receive(std::chrono::milliseconds(250));
    if (!datagram) continue;
    ++received;
    const auto parsed = net::parse_packet(
        util::ConstByteSpan(datagram->payload), fetched.info.layers);
    if (!parsed) {
      if (parsed.error == net::ParseError::kBadChecksum) {
        ++checksum_rejected;  // damaged header: never reaches the decoder
      } else {
        ++framing_rejected;
      }
      continue;
    }
    if (datagram->truncated ||
        parsed.packet.payload.size() != payload_bytes ||
        parsed.packet.header.codec != fetched.info.codec) {
      ++framing_rejected;
      continue;
    }
    done = client.on_packet(parsed.packet.header.packet_index,
                            parsed.packet.payload);
    if (client.distinct_received() > last_distinct) {
      last_distinct = client.distinct_received();
      last_progress = Clock::now();
    }
  }
  const double elapsed = timer.seconds();
  stop.store(true);
  mirror0.join();
  mirror1.join();
  ctrl_server.join();
  if (stalled) {
    std::printf("stalled: no distinct symbol in %lld s -> classified failure\n",
                static_cast<long long>(stall_window.count()));
    return 1;
  }
  if (!done) return 1;

  const bool bytes_ok = client.source() == file;
  // Every bit-flipped header must have been caught by the checksum; the
  // client can only have seen a prefix of what the mirrors corrupted (it
  // stops listening once decoded), so <= is the wire-level invariant.
  const bool checksums_ok =
      checksum_rejected <= corrupted_sent.load() &&
      (corrupted_sent.load() == 0 || checksum_rejected > 0 ||
       received < corrupted_sent.load());
  std::printf(
      "reconstructed in %.2f s from %llu datagrams "
      "(%zu distinct, %zu decode attempt(s), %llu checksum-rejected of %llu "
      "corrupted, %llu framing-rejected, %zu duplicates, mirror 0 died)\n",
      elapsed, static_cast<unsigned long long>(received),
      client.distinct_received(), client.decode_attempts(),
      static_cast<unsigned long long>(checksum_rejected),
      static_cast<unsigned long long>(corrupted_sent.load()),
      static_cast<unsigned long long>(framing_rejected), client.duplicates());
  std::printf("effective goodput: %.1f Mbit/s -> %s\n",
              static_cast<double>(size_kb) * 8.0 / 1000.0 / elapsed,
              bytes_ok ? "contents identical" : "MISMATCH");
  return bytes_ok && checksums_ok ? 0 : 1;
}
