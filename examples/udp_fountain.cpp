// A working digital fountain over real UDP sockets (loopback), mirroring the
// paper's prototype framing: 500-byte payloads tagged with a 12-byte header
// (packet index, serial number, codec id, group number) for 512-byte
// datagrams.
//
//   $ ./udp_fountain [size_kb] [loss]
//
// The server thread drives its transmission schedule from the engine's
// CarouselSource — the same PacketSource the simulations use — and streams
// each emitted index through a fec::BlockEncoder straight into the datagram
// buffer (no n x P encoding is ever materialized) before pushing it through
// a UDP socket with an artificial drop rate. The client is fully
// constructive: it derives its erasure code from the advertised ControlInfo
// via fec::CodecRegistry — exactly the fields a real control channel carries
// — and runs the statistical decoding strategy of Section 7.2, rejecting any
// datagram whose codec byte does not match the advertised family. Everything
// runs in one process so the example is self-contained and CI-friendly.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "carousel/carousel.hpp"
#include "engine/sources.hpp"
#include "fec/codec_registry.hpp"
#include "net/loss.hpp"
#include "net/packet_header.hpp"
#include "net/udp.hpp"
#include "proto/client.hpp"
#include "proto/control.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fountain;

  const std::size_t size_kb = argc > 1 ? std::atoi(argv[1]) : 512;
  const double drop = argc > 2 ? std::atof(argv[2]) : 0.25;
  const std::size_t payload_bytes = 500;
  const std::size_t file_bytes = size_kb * 1024;

  // What the control channel advertises: file length, symbol size, codec
  // family and construction seed. Server and client both build their code
  // from these fields alone.
  const proto::ControlInfo info = proto::make_control_info(
      file_bytes, payload_bytes, /*variant=*/0, /*graph_seed=*/3,
      /*layers=*/1, /*permutation_seed=*/1, fec::CodecId::kTornado);

  const auto server_code =
      fec::CodecRegistry::builtin().create(info.codec, info.codec_params());
  util::SymbolMatrix file(server_code->source_count(), payload_bytes);
  file.fill_random(2025);

  net::UdpSocket client_sock;
  client_sock.bind({"127.0.0.1", 0});
  const auto port = client_sock.local_port();
  std::printf("udp fountain: %zu KB file -> %zu packets of %zu B "
              "(+12 B header), %.0f%% induced loss, port %u\n",
              size_kb, server_code->encoded_count(), payload_bytes,
              100.0 * drop, port);

  std::atomic<bool> stop{false};
  std::thread server([&] {
    net::UdpSocket sock;
    util::Rng rng(info.permutation_seed);
    net::BernoulliLoss channel(drop, 2);
    const auto order = carousel::Carousel::random_permutation(
        server_code->encoded_count(), rng);
    // One firing = 32 packets; the engine source decides what goes on the
    // wire, the encoder synthesizes each payload on demand, and this thread
    // only frames, paces and sends.
    const auto encoder = server_code->make_encoder(file);
    const engine::CarouselSource source(order, server_code->codec_id(), 32);
    engine::PacketBatch batch;
    std::vector<std::uint8_t> wire(net::PacketHeader::kWireSize +
                                   payload_bytes);
    std::uint32_t serial = 0;
    for (std::uint64_t round = 0; !stop.load(std::memory_order_relaxed);
         ++round) {
      batch.clear();
      source.emit(round, batch);
      for (const std::uint32_t index : batch.indices) {
        ++serial;
        if (channel.lost()) continue;  // channel impairment
        const net::PacketHeader header{index, serial, server_code->codec_id(),
                                       0};
        header.serialize(util::ByteSpan(wire));
        encoder->write_symbol(
            index, util::ByteSpan(wire).subspan(net::PacketHeader::kWireSize));
        sock.send_to({"127.0.0.1", port}, util::ConstByteSpan(wire));
      }
      // Pace the stream so the client-side socket buffer keeps up.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // The client side: instantiate the matching code purely from the control
  // info (no shared ErasureCode object with the server thread).
  const auto client_code =
      fec::CodecRegistry::builtin().create(info.codec, info.codec_params());
  proto::StatisticalDataClient client(*client_code, /*initial_margin=*/0.05);
  util::WallTimer timer;
  std::uint64_t received = 0;
  std::uint64_t rejected = 0;
  bool done = false;
  while (!done) {
    const auto datagram = client_sock.receive(std::chrono::milliseconds(3000));
    if (!datagram) {
      std::printf("timed out waiting for packets\n");
      break;
    }
    const auto parsed = net::parse_packet(util::ConstByteSpan(datagram->payload));
    if (!parsed || parsed->payload.size() != payload_bytes) continue;
    if (parsed->header.codec != info.codec) {
      ++rejected;  // a mirror running a different code: never fed to decoder
      continue;
    }
    ++received;
    done = client.on_packet(parsed->header.packet_index, parsed->payload);
  }
  const double elapsed = timer.seconds();
  stop.store(true);
  server.join();
  if (!done) return 1;

  const bool ok = client.source() == file;
  std::printf("reconstructed in %.2f s from %llu datagrams "
              "(%zu distinct, %zu decode attempt(s), %llu codec-rejected) "
              "-> %s\n",
              elapsed, static_cast<unsigned long long>(received),
              client.distinct_received(), client.decode_attempts(),
              static_cast<unsigned long long>(rejected),
              ok ? "contents identical" : "MISMATCH");
  std::printf("effective goodput: %.1f Mbit/s\n",
              static_cast<double>(size_kb) * 8.0 / 1000.0 / elapsed);
  return ok ? 0 : 1;
}
