// The Section 7 prototype as an engine scenario: a digital-fountain server
// distributing a 2 MB file across 4 multicast layers to two kinds of
// receivers, demonstrating both halves of the adaptation plane:
//
//  * burst-probe receivers (the paper's Section 7.2 machinery) on private
//    lossy channels with a drifting synthetic capacity, and
//  * loss-driven receivers (cc::LossDrivenPolicy, RLM-style backed-off join
//    timers) sharing one bottleneck queue, so each member's joins raise its
//    siblings' loss and the group negotiates its fair share implicitly.
//
// Receivers join the session asynchronously (a third of them tune in
// mid-transfer), which the old lockstep round loop could not express.
//
//   $ ./layered_session [receivers] [max_rounds] [threads]
//
// `threads` is forwarded to the engine (0 = one worker per hardware
// thread); the printed table is byte-identical at every thread count.
//
// Prints one line per receiver: policy, observed loss, subscription moves,
// final level, and the efficiency metrics of Section 7.3 (eta = eta_c *
// eta_d).
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "fec/codec_registry.hpp"
#include "proto/session.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace fountain;

  const std::size_t receivers = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::uint64_t max_rounds = argc > 2 ? std::atoll(argv[2]) : 2000000;
  const std::size_t threads = argc > 3 ? std::atoi(argv[3]) : 0;

  // The paper's prototype encoding: ~2 MB -> 8264 packets of 500 bytes.
  // Described purely by registry parameters — exactly what a server would
  // advertise on its control channel (run_session instantiates the code).
  fec::CodecParams params;
  params.k = 4132;
  params.symbol_size = 500;
  params.seed = 7;  // stretch 2 and variant 0 (Tornado A) are the defaults
  const std::size_t k = params.k;

  proto::ProtocolConfig cfg;
  cfg.layers = 4;

  // One shared last-mile queue for the loss-driven half of the population:
  // capacity ~1.3x what the group needs to sit at level 1 together, so the
  // group's fair share lands between levels 1 and 2.
  const std::size_t shared_count = receivers / 2;
  const double level1_rate = 2.0 * (2.0 * k) / 8.0;  // n * level_rate(1) / B
  std::vector<proto::BottleneckSpec> bottlenecks;
  bottlenecks.push_back(proto::BottleneckSpec{
      1.3 * static_cast<double>(shared_count == 0 ? 1 : shared_count) *
      level1_rate});

  std::vector<proto::SimClientConfig> clients;
  util::Rng rng(11);
  for (std::size_t i = 0; i < receivers; ++i) {
    proto::SimClientConfig c;
    c.initial_level = 0;
    // Every third receiver joins the running session later (asynchronous
    // access — the digital fountain's whole point).
    if (i % 3 == 2) c.join = 200 + rng.below(800);
    if (i < shared_count) {
      // Loss-driven receiver on the shared queue, light private tail loss.
      c.loss_driven = true;
      c.bottleneck = 0;
      c.base_loss = 0.01 * rng.uniform();
    } else {
      // Burst-probe receiver on its private channel, drifting capacity.
      c.base_loss = 0.35 * rng.uniform();
      c.initial_capacity = static_cast<unsigned>(rng.below(cfg.layers));
      c.capacity_change_prob = 0.01;
    }
    clients.push_back(c);
  }

  std::printf("layered digital fountain: %zu receivers (%zu loss-driven on a "
              "shared %.0f pkt/round bottleneck, %zu burst-probe), 4 layers, "
              "k = %zu packets of 500 B (n = %zu)\n\n",
              receivers, shared_count, bottlenecks[0].capacity,
              receivers - shared_count, k, 2 * k);
  const auto code = fec::CodecRegistry::builtin().create(
      fec::CodecId::kTornado, params);
  const auto result = proto::run_session(*code, cfg, clients, bottlenecks, 3,
                                         max_rounds, threads);

  std::printf("%-4s %-11s %6s %9s %7s %6s %8s %8s %8s %10s\n", "rx", "policy",
              "join", "loss(%)", "moves", "level", "eta_d", "eta_c", "eta",
              "rounds");
  for (std::size_t i = 0; i < result.receivers.size(); ++i) {
    const auto& r = result.receivers[i];
    std::printf("%-4zu %-11s %6llu %9.1f %7u %6u %8.3f %8.3f %8.3f %10llu%s\n",
                i, clients[i].loss_driven ? "loss-driven" : "burst-probe",
                static_cast<unsigned long long>(clients[i].join),
                100.0 * r.observed_loss, r.level_changes, r.final_level,
                r.eta_d, r.eta_c, r.eta,
                static_cast<unsigned long long>(r.rounds_to_complete),
                r.completed ? "" : " (incomplete)");
  }

  double worst_eta = 1.0;
  bool all_done = true;
  for (const auto& r : result.receivers) {
    worst_eta = std::min(worst_eta, r.eta);
    all_done = all_done && r.completed;
  }
  std::printf("\n%s; worst total efficiency %.3f\n",
              all_done ? "all receivers reconstructed the file"
                       : "some receivers incomplete",
              worst_eta);
  return all_done ? 0 : 1;
}
