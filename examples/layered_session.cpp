// The Section 7 prototype as an engine scenario: a digital-fountain server
// distributing a 2 MB file across 4 multicast layers to receivers that probe
// for capacity during bursts, join layers at synchronization points and back
// off under congestion. Receivers join the session asynchronously (a third
// of them tune in mid-transfer), which the old lockstep round loop could not
// express.
//
//   $ ./layered_session [receivers] [max_rounds]
//
// Prints one line per receiver: observed loss, subscription moves, and the
// three efficiency metrics of Section 7.3 (eta = eta_c * eta_d).
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "fec/codec_registry.hpp"
#include "proto/session.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace fountain;

  const std::size_t receivers = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::uint64_t max_rounds = argc > 2 ? std::atoll(argv[2]) : 2000000;

  // The paper's prototype encoding: ~2 MB -> 8264 packets of 500 bytes.
  // Described purely by registry parameters — exactly what a server would
  // advertise on its control channel (run_session instantiates the code).
  fec::CodecParams params;
  params.k = 4132;
  params.symbol_size = 500;
  params.seed = 7;  // stretch 2 and variant 0 (Tornado A) are the defaults
  const std::size_t k = params.k;

  proto::ProtocolConfig cfg;
  cfg.layers = 4;

  std::vector<proto::SimClientConfig> clients;
  util::Rng rng(11);
  for (std::size_t i = 0; i < receivers; ++i) {
    proto::SimClientConfig c;
    c.base_loss = 0.35 * rng.uniform();
    c.initial_level = 0;
    c.initial_capacity = static_cast<unsigned>(rng.below(cfg.layers));
    c.capacity_change_prob = 0.01;
    // Every third receiver joins the running session later (asynchronous
    // access — the digital fountain's whole point).
    if (i % 3 == 2) c.join = 200 + rng.below(800);
    clients.push_back(c);
  }

  std::printf("layered digital fountain: %zu receivers, 4 layers, k = %zu "
              "packets of 500 B (n = %zu)\n\n",
              receivers, k, 2 * k);
  const auto result = proto::run_session(fec::CodecId::kTornado, params, cfg,
                                         clients, 3, max_rounds);

  std::printf("%-4s %6s %9s %7s %8s %8s %8s %10s\n", "rx", "join", "loss(%)",
              "moves", "eta_d", "eta_c", "eta", "rounds");
  for (std::size_t i = 0; i < result.receivers.size(); ++i) {
    const auto& r = result.receivers[i];
    std::printf("%-4zu %6llu %9.1f %7u %8.3f %8.3f %8.3f %10llu%s\n", i,
                static_cast<unsigned long long>(clients[i].join),
                100.0 * r.observed_loss, r.level_changes, r.eta_d, r.eta_c,
                r.eta,
                static_cast<unsigned long long>(r.rounds_to_complete),
                r.completed ? "" : " (incomplete)");
  }

  double worst_eta = 1.0;
  bool all_done = true;
  for (const auto& r : result.receivers) {
    worst_eta = std::min(worst_eta, r.eta);
    all_done = all_done && r.completed;
  }
  std::printf("\n%s; worst total efficiency %.3f\n",
              all_done ? "all receivers reconstructed the file"
                       : "some receivers incomplete",
              worst_eta);
  return all_done ? 0 : 1;
}
