// The paper's motivating scenario (Section 1): a software publisher pushes a
// release to a large population of clients over a broadcast channel. The
// server runs a digital-fountain carousel; clients tune in whenever they
// like, suffer their own loss rates, grab packets until they can
// reconstruct, and leave.
//
//   $ ./software_update [clients] [size_kb]
//
// Prints per-population statistics: how long clients listened, how efficient
// their reception was, and verifies one straggler's reconstructed bytes.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "carousel/carousel.hpp"
#include "carousel/reception.hpp"
#include "core/tornado.hpp"
#include "net/loss.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace fountain;

  const std::size_t clients = argc > 1 ? std::atoi(argv[1]) : 200;
  const std::size_t size_kb = argc > 2 ? std::atoi(argv[2]) : 2048;
  const std::size_t k = size_kb;  // 1 KB packets
  const std::size_t packet_bytes = 1024;

  std::printf("software update: %zu KB release, %zu clients, Tornado A "
              "carousel at stretch 2\n",
              size_kb, clients);

  core::TornadoCode code(core::TornadoParams::tornado_a(k, packet_bytes, 1));
  util::Rng rng(99);
  const auto carousel =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);

  // Clients join at arbitrary times with heterogeneous loss: most on good
  // links (2-10%), some on congested or wireless paths (up to 50%).
  util::RunningStats efficiency;
  util::RunningStats listen_slots;
  util::RunningStats duplicates;
  auto decoder = code.make_structural_decoder();
  std::vector<std::uint8_t> seen(carousel.cycle_length(), 0);
  for (std::size_t c = 0; c < clients; ++c) {
    const double loss_rate = c % 10 == 0 ? 0.2 + 0.3 * rng.uniform()
                                         : 0.02 + 0.08 * rng.uniform();
    net::BernoulliLoss loss(loss_rate, rng());
    decoder->reset();
    std::fill(seen.begin(), seen.end(), 0);
    const auto result = carousel::simulate_reception(
        carousel, *decoder, loss, rng.below(carousel.cycle_length()),
        200ull * carousel.cycle_length(), seen);
    if (!result.completed) {
      std::printf("client %zu did not finish (loss %.0f%%)\n", c,
                  100.0 * loss_rate);
      continue;
    }
    efficiency.add(result.efficiency(k));
    listen_slots.add(static_cast<double>(result.slots_elapsed));
    duplicates.add(static_cast<double>(result.packets_received -
                                       result.distinct_received));
  }

  std::printf("\nall clients reconstructed the release\n");
  std::printf("reception efficiency: mean %.3f  min %.3f  max %.3f\n",
              efficiency.mean(), efficiency.min(), efficiency.max());
  std::printf("listening time (channel slots): mean %.0f  worst %.0f "
              "(cycle = %zu)\n",
              listen_slots.mean(), listen_slots.max(),
              carousel.cycle_length());
  std::printf("duplicate packets per client: mean %.1f  worst %.0f\n",
              duplicates.mean(), duplicates.max());

  // End-to-end payload check for one client with real data.
  util::SymbolMatrix file(k, packet_bytes);
  file.fill_random(123);
  util::SymbolMatrix encoding(code.encoded_count(), packet_bytes);
  code.encode(file, encoding);
  net::BernoulliLoss loss(0.3, 5);
  auto data_decoder = code.make_decoder();
  for (std::uint64_t t = 0;; ++t) {
    if (loss.lost()) continue;
    const auto index = carousel.packet_at(t);
    if (data_decoder->add_symbol(index, encoding.row(index))) break;
  }
  std::printf("payload verification: %s\n",
              data_decoder->source() == file ? "OK" : "MISMATCH");
  return data_decoder->source() == file ? 0 : 1;
}
