// The paper's motivating scenario (Section 1): a software publisher pushes a
// release to a large population of clients over a broadcast channel. The
// server runs a digital-fountain carousel; clients tune in whenever they
// like, suffer their own loss rates, grab packets until they can
// reconstruct, and leave.
//
//   $ ./software_update [clients] [size_kb] [threads]
//
// One engine session: every client is a receiver with its own join phase and
// link — most on clean links, every tenth behind a bursty Gilbert-Elliott
// channel — plus one payload-verifying receiver (a private DataSink) riding
// along in the same population to prove byte-exact reconstruction.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "engine/session.hpp"
#include "engine/sources.hpp"
#include "net/loss.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace fountain;

  const std::size_t clients = argc > 1 ? std::atoi(argv[1]) : 200;
  const std::size_t size_kb = argc > 2 ? std::atoi(argv[2]) : 2048;
  const std::size_t threads = argc > 3 ? std::atoi(argv[3]) : 0;
  const std::size_t k = size_kb;  // 1 KB packets
  const std::size_t packet_bytes = 1024;

  std::printf("software update: %zu KB release, %zu clients, Tornado A "
              "carousel at stretch 2\n",
              size_kb, clients);

  core::TornadoCode code(core::TornadoParams::tornado_a(k, packet_bytes, 1));
  util::SymbolMatrix file(k, packet_bytes);
  file.fill_random(123);
  // The broadcast server holds a streaming encoder, not an n x P encoding:
  // each carousel slot's payload is synthesized on demand.
  const auto encoder = code.make_encoder(file);

  util::Rng rng(99);
  const auto carousel =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);

  engine::SessionConfig config;
  config.horizon = 200ull * carousel.cycle_length();
  config.threads = threads;  // 0 = one worker per hardware thread
  if (threads > 1) {
    // Cohorts are the shard unit: split the population so every worker
    // carries at least one cohort. Results are identical either way.
    config.cohort_size = (clients + threads) / threads;
  }
  engine::Session session(code, config);
  const engine::SourceId src = session.add_source(
      std::make_shared<engine::CarouselSource>(carousel, code.codec_id()));

  // Clients join at arbitrary times with heterogeneous loss: most on good
  // links (2-10% independent loss), every tenth on a congested or wireless
  // path (bursty 20-50% Gilbert-Elliott).
  std::vector<engine::Time> joins;
  joins.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    engine::ReceiverSpec spec;
    spec.join = rng.below(carousel.cycle_length());
    joins.push_back(spec.join);
    const engine::ReceiverId id = session.add_receiver(std::move(spec));
    std::unique_ptr<net::LossModel> loss;
    if (c % 10 == 0) {
      loss = std::make_unique<net::GilbertElliottLoss>(
          0.2 + 0.3 * rng.uniform(), 4.0 + 8.0 * rng.uniform(), rng());
    } else {
      loss = std::make_unique<net::BernoulliLoss>(0.02 + 0.08 * rng.uniform(),
                                                  rng());
    }
    session.subscribe(id, src,
                      std::make_unique<engine::LossLink>(std::move(loss)));
  }

  // The straggler whose payload we verify byte-for-byte.
  engine::ReceiverSpec verify_spec;
  verify_spec.sink =
      std::make_unique<engine::DataSink>(code.make_decoder(), *encoder);
  auto* verify_sink = static_cast<engine::DataSink*>(verify_spec.sink.get());
  const engine::ReceiverId verifier =
      session.add_receiver(std::move(verify_spec));
  session.subscribe(verifier, src,
                    std::make_unique<engine::LossLink>(
                        std::make_unique<net::BernoulliLoss>(0.3, 5)));

  const auto reports = session.run();

  util::RunningStats efficiency;
  util::RunningStats listen_slots;
  util::RunningStats duplicates;
  std::size_t incomplete = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    const engine::ReceiverReport& r = reports[c];
    if (!r.completed) {
      ++incomplete;
      continue;
    }
    efficiency.add(r.efficiency(k));
    listen_slots.add(static_cast<double>(r.completed_at - joins[c] + 1));
    duplicates.add(static_cast<double>(r.received - r.distinct));
  }

  std::printf("\n%s\n", incomplete == 0
                            ? "all clients reconstructed the release"
                            : "some clients did not finish in time");
  std::printf("reception efficiency: mean %.3f  min %.3f  max %.3f\n",
              efficiency.mean(), efficiency.min(), efficiency.max());
  std::printf("listening time (channel slots): mean %.0f  worst %.0f "
              "(cycle = %zu)\n",
              listen_slots.mean(), listen_slots.max(),
              carousel.cycle_length());
  std::printf("duplicate packets per client: mean %.1f  worst %.0f\n",
              duplicates.mean(), duplicates.max());

  const bool ok = reports[clients].completed && verify_sink->source() == file;
  std::printf("payload verification: %s\n", ok ? "OK" : "MISMATCH");
  return ok && incomplete == 0 ? 0 : 1;
}
