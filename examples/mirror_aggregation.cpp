// Section 8 extension: mirrored data. Several mirror servers carry the SAME
// file and run digital fountains over the SAME code (same control info /
// graph seed) but cycle independent random permutations. A client listens to
// all mirrors at once and aggregates whatever arrives: with distinct-enough
// permutations the streams complement each other, so download time shrinks
// roughly with the number of mirrors.
//
//   $ ./mirror_aggregation [mirrors]
//
// An engine scenario: one CarouselSource per mirror, one receiver subscribed
// to all of them through per-mirror lossy links, draining into a payload
// DataSink fed by the mirrors' shared streaming encoder (mirrors never hold
// a materialized encoding — each packet is synthesized on demand). The
// engine's distinct-packet accounting makes the paper's caveat visible: at
// small stretch factors duplicate packets across mirrors eventually collide,
// and the run prints the measured duplicate fraction.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "engine/session.hpp"
#include "engine/sources.hpp"
#include "net/loss.hpp"
#include "proto/control.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace fountain;

  const unsigned mirrors = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::size_t file_bytes = 3 * 1000 * 1000 + 137;  // deliberately ragged
  const std::size_t symbol_size = 1000;

  // The control info all mirrors advertise (same code everywhere).
  const proto::ControlInfo info = proto::make_control_info(
      file_bytes, symbol_size, /*variant=*/0, /*graph_seed=*/99, /*layers=*/1,
      /*permutation_seed=*/7);

  std::vector<std::uint8_t> original(file_bytes);
  util::Rng data_rng(3);
  for (auto& b : original) b = static_cast<std::uint8_t>(data_rng());
  const util::SymbolMatrix file =
      proto::file_to_symbols(util::ConstByteSpan(original), symbol_size);

  core::TornadoCode code(info.tornado_params());
  // All mirrors carry the same file and code, so one streaming encoder
  // stands in for every mirror's send path.
  const auto encoder = code.make_encoder(file);

  std::printf("mirrored download: %zu-byte file (k = %zu), %u mirrors\n",
              file_bytes, code.source_count(), mirrors);

  // Each mirror: its own permutation and loss; one tick = one packet slot
  // per mirror.
  util::Rng rng(21);
  std::vector<carousel::Carousel> cycles;
  cycles.reserve(mirrors);

  engine::SessionConfig config;
  config.horizon = 400ull * code.encoded_count();
  // One receiver = one cohort: SessionConfig::threads (auto here) has
  // nothing to shard, so the session runs on the calling thread.
  engine::Session session(code, config);

  engine::ReceiverSpec spec;
  spec.sink = std::make_unique<engine::DataSink>(code.make_decoder(),
                                                 *encoder);
  auto* sink = static_cast<engine::DataSink*>(spec.sink.get());
  const engine::ReceiverId client = session.add_receiver(std::move(spec));

  for (unsigned m = 0; m < mirrors; ++m) {
    util::Rng crng(1000 + m);
    cycles.push_back(
        carousel::Carousel::random_permutation(code.encoded_count(), crng));
    const engine::SourceId src = session.add_source(
        std::make_shared<engine::CarouselSource>(cycles.back(),
                                                 code.codec_id()));
    session.subscribe(client, src,
                      std::make_unique<engine::LossLink>(
                          std::make_unique<net::BernoulliLoss>(
                              0.05 + 0.05 * m, rng())));
  }

  const auto report = session.run().front();
  if (!report.completed) {
    std::printf("reconstruction FAILED\n");
    return 1;
  }
  const auto bytes = proto::symbols_to_file(sink->source(), file_bytes);
  const bool ok = bytes == original;
  const std::uint64_t ticks = report.completed_at + 1;
  const std::uint64_t duplicates = report.received - report.distinct;
  std::printf("finished after %llu carousel slots (a single mirror needs "
              "~%zu+): aggregate\nspeedup ~%.1fx\n",
              static_cast<unsigned long long>(ticks), code.source_count(),
              static_cast<double>(code.source_count()) /
                  static_cast<double>(ticks));
  std::printf("%llu packets received, duplicate fraction %.2f%% "
              "(stretch-2 collision cost)\n",
              static_cast<unsigned long long>(report.received),
              100.0 * static_cast<double>(duplicates) /
                  static_cast<double>(report.received));
  std::printf("payload %s\n", ok ? "verified byte-identical" : "MISMATCH");
  return ok ? 0 : 1;
}
