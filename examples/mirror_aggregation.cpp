// Section 8 extension: mirrored data. Several mirror servers carry the SAME
// file and run digital fountains over the SAME code (same control info /
// graph seed) but cycle independent random permutations. A client listens to
// all mirrors at once and aggregates whatever arrives: with distinct-enough
// permutations the streams complement each other, so download time shrinks
// roughly with the number of mirrors.
//
//   $ ./mirror_aggregation [mirrors]
//
// The paper notes the caveat: at small stretch factors duplicate packets
// across mirrors eventually collide. The run prints the measured duplicate
// fraction so the effect is visible.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "net/loss.hpp"
#include "proto/control.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace fountain;

  const unsigned mirrors = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::size_t file_bytes = 3 * 1000 * 1000 + 137;  // deliberately ragged
  const std::size_t symbol_size = 1000;

  // The control info all mirrors advertise (same code everywhere).
  const proto::ControlInfo info = proto::make_control_info(
      file_bytes, symbol_size, /*variant=*/0, /*graph_seed=*/99, /*layers=*/1,
      /*permutation_seed=*/7);

  std::vector<std::uint8_t> original(file_bytes);
  util::Rng data_rng(3);
  for (auto& b : original) b = static_cast<std::uint8_t>(data_rng());
  const util::SymbolMatrix file =
      proto::file_to_symbols(util::ConstByteSpan(original), symbol_size);

  core::TornadoCode code(info.tornado_params());
  util::SymbolMatrix encoding(code.encoded_count(), symbol_size);
  code.encode(file, encoding);

  std::printf("mirrored download: %zu-byte file (k = %zu), %u mirrors\n",
              file_bytes, code.source_count(), mirrors);

  // Each mirror: its own permutation, pacing and loss; client round-robins
  // across whatever arrives per tick.
  util::Rng rng(21);
  std::vector<carousel::Carousel> cycles;
  std::vector<std::unique_ptr<net::LossModel>> loss;
  for (unsigned m = 0; m < mirrors; ++m) {
    util::Rng crng(1000 + m);
    cycles.push_back(
        carousel::Carousel::random_permutation(code.encoded_count(), crng));
    loss.push_back(
        std::make_unique<net::BernoulliLoss>(0.05 + 0.05 * m, rng()));
  }

  auto decoder = code.make_decoder();
  std::vector<std::uint8_t> seen(code.encoded_count(), 0);
  std::size_t received = 0;
  std::size_t duplicates = 0;
  std::uint64_t ticks = 0;  // one tick = one packet slot per mirror
  bool done = false;
  for (std::uint64_t t = 0; !done; ++t) {
    ++ticks;
    for (unsigned m = 0; m < mirrors && !done; ++m) {
      if (loss[m]->lost()) continue;
      const std::uint32_t index = cycles[m].packet_at(t);
      ++received;
      if (seen[index]) {
        ++duplicates;
      } else {
        seen[index] = 1;
      }
      done = decoder->add_symbol(index, encoding.row(index));
    }
  }

  const auto bytes = proto::symbols_to_file(decoder->source(), file_bytes);
  const bool ok = bytes == original;
  std::printf("finished after %llu carousel slots (a single mirror needs "
              "~%zu+): aggregate\nspeedup ~%.1fx\n",
              static_cast<unsigned long long>(ticks), code.source_count(),
              static_cast<double>(code.source_count()) /
                  static_cast<double>(ticks));
  std::printf("%zu packets received, duplicate fraction %.2f%% "
              "(stretch-2 collision cost)\n",
              received, 100.0 * duplicates / static_cast<double>(received));
  std::printf("payload %s\n", ok ? "verified byte-identical" : "MISMATCH");
  return ok ? 0 : 1;
}
