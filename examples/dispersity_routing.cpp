// Section 8 extension: dispersity routing (after Rabin's information
// dispersal). A source feeds digital-fountain packets down several network
// paths with different latencies, pacing rates and loss; the destination
// reconstructs as soon as *any* sufficient mixture of packets arrives,
// regardless of which paths delivered them. Congested paths delay packets
// but cannot stall the transfer.
//
//   $ ./dispersity_routing [paths]
//
// An engine scenario: path p is a StridedCarouselSource (every p-th packet
// of the dealt permutation) whose period models pacing and whose start tick
// models propagation latency; the destination is one receiver subscribed to
// all paths, draining them through per-path lossy links into a payload
// DataSink. One tick = 0.05 ms.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "engine/session.hpp"
#include "engine/sources.hpp"
#include "net/loss.hpp"
#include "util/random.hpp"

namespace {

using namespace fountain;

constexpr double kTickMs = 0.05;

std::uint64_t ticks(double ms) {
  return static_cast<std::uint64_t>(ms / kTickMs + 0.5);
}

struct Path {
  double latency_ms;
  double send_interval_ms;  // pacing (inverse bandwidth)
  double loss_rate;
};

/// DataSink plus per-path delivery accounting.
class CountingSink final : public engine::PacketSink {
 public:
  CountingSink(std::unique_ptr<fec::IncrementalDecoder> decoder,
               const fec::BlockEncoder& encoder, std::size_t paths)
      : inner_(std::move(decoder), encoder), per_path_(paths, 0) {}

  bool on_packet(const engine::Delivery& d) override {
    ++per_path_[d.source];
    return inner_.on_packet(d);
  }
  bool complete() const override { return inner_.complete(); }
  void reset() override {
    inner_.reset();
    std::fill(per_path_.begin(), per_path_.end(), 0);
  }

  util::ConstSymbolView source() const { return inner_.source(); }
  const std::vector<std::size_t>& per_path() const { return per_path_; }

 private:
  engine::DataSink inner_;
  std::vector<std::size_t> per_path_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fountain;

  const unsigned path_count = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t k = 2048;  // 2 MB at 1 KB packets
  core::TornadoCode code(core::TornadoParams::tornado_a(k, 1024, 13));
  util::SymbolMatrix file(k, 1024);
  file.fill_random(55);
  // The source's send path: every packet on every path is synthesized on
  // demand from one streaming encoder (no n x P encoding buffer).
  const auto encoder = code.make_encoder(file);

  // Heterogeneous paths: one fast/clean, the rest slower/lossier; the last
  // is badly congested.
  std::vector<Path> paths;
  util::Rng rng(17);
  for (unsigned p = 0; p < path_count; ++p) {
    paths.push_back(Path{10.0 + 40.0 * p, 0.4 + 0.2 * p,
                         p + 1 == path_count ? 0.30 : 0.02 + 0.04 * p});
  }

  std::printf("dispersity routing: %zu-packet file over %u paths\n", k,
              path_count);
  for (unsigned p = 0; p < path_count; ++p) {
    std::printf("  path %u: latency %.0f ms, pacing %.1f ms/pkt, loss "
                "%.0f%%\n",
                p, paths[p].latency_ms, paths[p].send_interval_ms,
                100.0 * paths[p].loss_rate);
  }

  // The source deals distinct encoding packets round-robin across paths (a
  // digital fountain does not care which packets go where).
  const auto order =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);

  engine::SessionConfig config;
  config.horizon = ticks(60000.0);  // one simulated minute is ample
  // One receiver = one cohort: SessionConfig::threads (auto here) has
  // nothing to shard, so the session runs on the calling thread.
  engine::Session session(code, config);

  engine::ReceiverSpec spec;
  spec.sink = std::make_unique<CountingSink>(code.make_decoder(), *encoder,
                                             path_count);
  auto* sink = static_cast<CountingSink*>(spec.sink.get());
  const engine::ReceiverId dest = session.add_receiver(std::move(spec));

  for (unsigned p = 0; p < path_count; ++p) {
    const engine::SourceId src = session.add_source(
        std::make_shared<engine::StridedCarouselSource>(
            order, code.codec_id(), p, path_count),
        /*start=*/ticks(paths[p].send_interval_ms + paths[p].latency_ms),
        /*period=*/ticks(paths[p].send_interval_ms));
    session.subscribe(dest, src,
                      std::make_unique<engine::LossLink>(
                          std::make_unique<net::BernoulliLoss>(
                              paths[p].loss_rate, rng())));
  }

  const auto report = session.run().front();
  if (!report.completed || sink->source() != file) {
    std::printf("reconstruction FAILED\n");
    return 1;
  }
  std::printf("\nreconstructed at t = %.1f ms from %llu packets "
              "(overhead %.2f%%)\n",
              static_cast<double>(report.completed_at) * kTickMs,
              static_cast<unsigned long long>(report.received),
              100.0 * (static_cast<double>(report.received) / k - 1.0));
  std::printf("per-path contributions:");
  for (unsigned p = 0; p < path_count; ++p) {
    std::printf(" path%u=%zu", p, sink->per_path()[p]);
  }
  std::printf("\npackets from every path were interchangeable — congested "
              "paths only delayed\ntheir share, they could not stall the "
              "transfer.\n");
  return 0;
}
