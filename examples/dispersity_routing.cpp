// Section 8 extension: dispersity routing (after Rabin's information
// dispersal). A source feeds digital-fountain packets down several network
// paths with different delays and loss rates; the destination reconstructs
// as soon as *any* sufficient mixture of packets arrives, regardless of
// which paths delivered them. Congested paths delay packets but cannot stall
// the transfer.
//
//   $ ./dispersity_routing [paths]
//
// Simulated as a packet-level event queue: path p has per-packet latency
// L_p, jitter and loss; the destination consumes arrivals in delivery-time
// order.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <vector>

#include "core/tornado.hpp"
#include "net/loss.hpp"
#include "util/random.hpp"

namespace {

struct Arrival {
  double time;
  std::uint32_t index;
  unsigned path;
  bool operator>(const Arrival& other) const { return time > other.time; }
};

struct Path {
  double latency_ms;
  double jitter_ms;
  double send_interval_ms;  // pacing (inverse bandwidth)
  double loss_rate;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fountain;

  const unsigned path_count = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t k = 2048;  // 2 MB at 1 KB packets
  core::TornadoCode code(core::TornadoParams::tornado_a(k, 1024, 13));
  util::SymbolMatrix file(k, 1024);
  file.fill_random(55);
  util::SymbolMatrix encoding(code.encoded_count(), 1024);
  code.encode(file, encoding);

  // Heterogeneous paths: one fast/clean, the rest slower/lossier; the last
  // is badly congested.
  std::vector<Path> paths;
  util::Rng rng(17);
  for (unsigned p = 0; p < path_count; ++p) {
    Path path;
    path.latency_ms = 10.0 + 40.0 * p;
    path.jitter_ms = 2.0 + 3.0 * p;
    path.send_interval_ms = 0.4 + 0.2 * p;
    path.loss_rate = p + 1 == path_count ? 0.30 : 0.02 + 0.04 * p;
    paths.push_back(path);
  }

  std::printf("dispersity routing: %zu-packet file over %u paths\n", k,
              path_count);
  for (unsigned p = 0; p < path_count; ++p) {
    std::printf("  path %u: latency %.0f ms, pacing %.1f ms/pkt, loss "
                "%.0f%%\n",
                p, paths[p].latency_ms, paths[p].send_interval_ms,
                100.0 * paths[p].loss_rate);
  }

  // The source deals distinct encoding packets round-robin across paths (a
  // digital fountain does not care which packets go where).
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> queue;
  std::vector<std::unique_ptr<net::LossModel>> loss;
  std::vector<double> next_send(path_count, 0.0);
  for (unsigned p = 0; p < path_count; ++p) {
    loss.push_back(std::make_unique<net::BernoulliLoss>(paths[p].loss_rate,
                                                        rng()));
  }
  const auto order = rng.permutation(code.encoded_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const unsigned p = static_cast<unsigned>(i % path_count);
    next_send[p] += paths[p].send_interval_ms;
    if (loss[p]->lost()) continue;
    const double delivery = next_send[p] + paths[p].latency_ms +
                            paths[p].jitter_ms * rng.uniform();
    queue.push(Arrival{delivery, order[i], p});
  }

  auto decoder = code.make_decoder();
  std::vector<std::size_t> per_path(path_count, 0);
  std::size_t received = 0;
  double finish_time = 0.0;
  while (!queue.empty()) {
    const Arrival a = queue.top();
    queue.pop();
    ++received;
    ++per_path[a.path];
    if (decoder->add_symbol(a.index, encoding.row(a.index))) {
      finish_time = a.time;
      break;
    }
  }

  if (!decoder->complete() || decoder->source() != file) {
    std::printf("reconstruction FAILED\n");
    return 1;
  }
  std::printf("\nreconstructed at t = %.1f ms from %zu packets "
              "(overhead %.2f%%)\n",
              finish_time, received,
              100.0 * (static_cast<double>(received) / k - 1.0));
  std::printf("per-path contributions:");
  for (unsigned p = 0; p < path_count; ++p) {
    std::printf(" path%u=%zu", p, per_path[p]);
  }
  std::printf("\npackets from every path were interchangeable — congested "
              "paths only delayed\ntheir share, they could not stall the "
              "transfer.\n");
  return 0;
}
