// Quickstart: encode a buffer with a Tornado code, lose packets, decode.
//
//   $ ./quickstart
//
// Demonstrates the minimal public API: TornadoParams -> TornadoCode ->
// encode() -> IncrementalDecoder. The decoder announces completion on its
// own ("the decoding algorithm can detect when it has received enough
// encoding packets", Section 5.1).
#include <cstdio>

#include "core/tornado.hpp"
#include "util/random.hpp"

int main() {
  using namespace fountain;

  // A 1 MB "file" as 1024 packets of 1 KB.
  const std::size_t k = 1024;
  const std::size_t packet_bytes = 1024;
  util::SymbolMatrix file(k, packet_bytes);
  file.fill_random(2024);  // stand-in for real file contents

  // Build the paper's Tornado A code at stretch factor 2 (n = 2k). Sender
  // and receivers construct the identical code from the same seed.
  core::TornadoCode code(core::TornadoParams::tornado_a(k, packet_bytes,
                                                        /*seed=*/42));
  std::printf("Tornado A: k = %zu source packets -> n = %zu encoding "
              "packets (%zu graph edges)\n",
              code.source_count(), code.encoded_count(),
              code.cascade().total_edges());

  util::SymbolMatrix encoding(code.encoded_count(), packet_bytes);
  code.encode(file, encoding);

  // Simulate a lossy channel: deliver encoding packets in random order and
  // drop 40% of them. Any sufficiently large subset reconstructs the file.
  util::Rng rng(7);
  const auto order = rng.permutation(code.encoded_count());
  auto decoder = code.make_decoder();
  std::size_t delivered = 0;
  for (const auto index : order) {
    if (rng.chance(0.4)) continue;  // lost
    ++delivered;
    if (decoder->add_symbol(index, encoding.row(index))) break;
  }

  if (!decoder->complete()) {
    std::printf("decode failed (channel lost too much)\n");
    return 1;
  }
  const bool identical = decoder->source() == file;
  std::printf("reconstructed from %zu received packets "
              "(reception overhead %.2f%%), contents %s\n",
              delivered,
              100.0 * (static_cast<double>(delivered) / k - 1.0),
              identical ? "identical" : "CORRUPT");
  return identical ? 0 : 1;
}
