// Quickstart: encode a buffer with a Tornado code, lose packets, decode.
//
//   $ ./quickstart
//
// Demonstrates the minimal public API: TornadoParams -> TornadoCode ->
// make_encoder() -> IncrementalDecoder. The server side never materializes
// the n-symbol encoding — the BlockEncoder generates each transmitted
// symbol on demand into a single scratch buffer (O(k) memory instead of
// O(n), first packet on the wire after one cascade pass) — and the decoder
// announces completion on its own ("the decoding algorithm can detect when
// it has received enough encoding packets", Section 5.1).
#include <cstdio>

#include "core/tornado.hpp"
#include "util/random.hpp"

int main() {
  using namespace fountain;

  // A 1 MB "file" as 1024 packets of 1 KB.
  const std::size_t k = 1024;
  const std::size_t packet_bytes = 1024;
  util::SymbolMatrix file(k, packet_bytes);
  file.fill_random(2024);  // stand-in for real file contents

  // Build the paper's Tornado A code at stretch factor 2 (n = 2k). Sender
  // and receivers construct the identical code from the same seed.
  core::TornadoCode code(core::TornadoParams::tornado_a(k, packet_bytes,
                                                        /*seed=*/42));
  std::printf("Tornado A: k = %zu source packets -> n = %zu encoding "
              "packets (%zu graph edges)\n",
              code.source_count(), code.encoded_count(),
              code.cascade().total_edges());

  // The streaming encoder: any encoding symbol, on demand, into caller
  // storage. This is what a carousel server holds instead of an n x P
  // encoding buffer.
  const auto encoder = code.make_encoder(file);
  std::printf("encoder state: %zu KB beyond the source (a full encoding "
              "would be %zu KB)\n",
              encoder->state_bytes() / 1024,
              code.encoded_count() * packet_bytes / 1024);

  // Simulate a lossy channel: transmit encoding packets in random order and
  // drop 40% of them. Any sufficiently large subset reconstructs the file.
  util::Rng rng(7);
  const auto order = rng.permutation(code.encoded_count());
  auto decoder = code.make_decoder();
  util::SymbolMatrix wire(1, packet_bytes);  // the one in-flight packet
  std::size_t delivered = 0;
  for (const auto index : order) {
    if (rng.chance(0.4)) continue;  // lost
    ++delivered;
    encoder->write_symbol(index, wire.row(0));
    if (decoder->add_symbol(index, wire.row(0))) break;
  }

  if (!decoder->complete()) {
    std::printf("decode failed (channel lost too much)\n");
    return 1;
  }
  const bool identical = decoder->source() == file;
  std::printf("reconstructed from %zu received packets "
              "(reception overhead %.2f%%), contents %s\n",
              delivered,
              100.0 * (static_cast<double>(delivered) / k - 1.0),
              identical ? "identical" : "CORRUPT");
  return identical ? 0 : 1;
}
