#include "sim/overhead.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fountain::sim {

std::vector<double> sample_overhead_distribution(const fec::ErasureCode& code,
                                                 std::size_t trials,
                                                 std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t n = code.encoded_count();
  const auto k = static_cast<double>(code.source_count());
  auto decoder = code.make_structural_decoder();

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0U);

  std::vector<double> overheads;
  overheads.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    rng.shuffle(order);
    decoder->reset();
    std::size_t fed = 0;
    for (const std::uint32_t index : order) {
      ++fed;
      if (decoder->add_index(index)) break;
    }
    if (!decoder->complete()) {
      throw std::logic_error(
          "sample_overhead_distribution: code failed with all packets");
    }
    overheads.push_back(static_cast<double>(fed) / k - 1.0);
  }
  return overheads;
}

std::vector<carousel::ReceptionResult> sample_carousel_receptions(
    const fec::ErasureCode& code, const carousel::Carousel& carousel,
    const LossFactory& loss_factory, std::size_t trials, std::uint64_t seed,
    std::size_t max_cycles) {
  util::Rng rng(seed);
  auto decoder = code.make_structural_decoder();
  std::vector<std::uint8_t> seen(carousel.cycle_length(), 0);

  std::vector<carousel::ReceptionResult> results;
  results.reserve(trials);
  const std::uint64_t max_slots =
      static_cast<std::uint64_t>(max_cycles) * carousel.cycle_length();
  for (std::size_t t = 0; t < trials; ++t) {
    decoder->reset();
    std::fill(seen.begin(), seen.end(), 0);
    auto loss = loss_factory(t, rng);
    const std::uint64_t start = rng.below(carousel.cycle_length());
    results.push_back(carousel::simulate_reception(carousel, *decoder, *loss,
                                                   start, max_slots, seen));
  }
  return results;
}

double expected_min_over(const std::vector<double>& pool,
                         std::size_t receivers, std::size_t experiments,
                         util::Rng& rng) {
  if (pool.empty()) throw std::invalid_argument("expected_min_over: empty");
  double acc = 0.0;
  for (std::size_t e = 0; e < experiments; ++e) {
    double min_v = pool[rng.below(pool.size())];
    for (std::size_t r = 1; r < receivers; ++r) {
      min_v = std::min(min_v, pool[rng.below(pool.size())]);
    }
    acc += min_v;
  }
  return acc / static_cast<double>(experiments);
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

}  // namespace fountain::sim
