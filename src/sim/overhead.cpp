#include "sim/overhead.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "engine/sources.hpp"

namespace fountain::sim {

std::vector<double> sample_overhead_distribution(const fec::ErasureCode& code,
                                                 std::size_t trials,
                                                 std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t n = code.encoded_count();
  const auto k = static_cast<double>(code.source_count());

  // Sessions are chunked so a large trial count does not hold every trial's
  // carousel permutation in memory at once.
  constexpr std::size_t kChunk = 256;

  std::vector<double> overheads;
  overheads.reserve(trials);
  for (std::size_t done = 0; done < trials; done += kChunk) {
    const std::size_t count = std::min(kChunk, trials - done);
    std::vector<carousel::Carousel> cycles;
    cycles.reserve(count);  // CarouselSource borrows; no reallocation allowed
    engine::SessionConfig config;
    config.horizon = n;  // a lossless receiver needs at most one full cycle
    engine::Session session(code, config);
    for (std::size_t t = 0; t < count; ++t) {
      cycles.push_back(carousel::Carousel::random_permutation(n, rng));
      const engine::SourceId source = session.add_source(
          std::make_shared<engine::CarouselSource>(cycles.back(),
                                                   code.codec_id()));
      const engine::ReceiverId receiver =
          session.add_receiver(engine::ReceiverSpec{});
      session.subscribe(receiver, source,
                        std::make_unique<engine::PerfectLink>());
    }
    for (const engine::ReceiverReport& report : session.run()) {
      if (!report.completed) {
        throw std::logic_error(
            "sample_overhead_distribution: code failed with all packets");
      }
      overheads.push_back(static_cast<double>(report.received) / k - 1.0);
    }
  }
  return overheads;
}

std::vector<engine::ReceiverReport> sample_carousel_receptions(
    const fec::ErasureCode& code, const carousel::Carousel& carousel,
    const LossFactory& loss_factory, std::size_t trials, std::uint64_t seed,
    std::size_t max_cycles) {
  util::Rng rng(seed);
  const std::uint64_t cycle = carousel.cycle_length();
  const std::uint64_t max_slots =
      static_cast<std::uint64_t>(max_cycles) * cycle;

  engine::SessionConfig config;
  config.horizon = cycle + max_slots;  // latest join phase + listen budget
  engine::Session session(code, config);
  const engine::SourceId source = session.add_source(
      std::make_shared<engine::CarouselSource>(carousel, code.codec_id()));

  for (std::size_t t = 0; t < trials; ++t) {
    auto loss = loss_factory(t, rng);
    engine::ReceiverSpec spec;
    spec.join = rng.below(cycle);
    spec.leave = spec.join + max_slots;
    const engine::ReceiverId receiver = session.add_receiver(std::move(spec));
    session.subscribe(receiver, source,
                      std::make_unique<engine::LossLink>(std::move(loss)));
  }
  return session.run();
}

double expected_min_over(const std::vector<double>& pool,
                         std::size_t receivers, std::size_t experiments,
                         util::Rng& rng) {
  if (pool.empty()) throw std::invalid_argument("expected_min_over: empty");
  double acc = 0.0;
  for (std::size_t e = 0; e < experiments; ++e) {
    double min_v = pool[rng.below(pool.size())];
    for (std::size_t r = 1; r < receivers; ++r) {
      min_v = std::min(min_v, pool[rng.below(pool.size())]);
    }
    acc += min_v;
  }
  return acc / static_cast<double>(experiments);
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

}  // namespace fountain::sim
