// Experiment primitives shared by the benches, expressed as engine
// scenarios: reception-overhead sampling (Figure 2), carousel reception
// sampling under loss (Figures 4-6), and receiver-population order
// statistics (the "worst case receiver" curves). The old hand-rolled
// per-trial drive loops are gone — every trial is a receiver in a
// discrete-event session.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "carousel/carousel.hpp"
#include "engine/session.hpp"
#include "fec/erasure_code.hpp"
#include "net/loss.hpp"
#include "util/random.hpp"

namespace fountain::sim {

/// Feeds each trial a fresh uniformly random order of *distinct* encoding
/// packets until the decoder completes; returns one length-overhead sample
/// (packets_needed / k - 1) per trial. This is exactly the paper's Figure 2
/// experiment, run as multi-source engine sessions: every trial is a
/// receiver draining its own freshly permuted lossless carousel.
std::vector<double> sample_overhead_distribution(const fec::ErasureCode& code,
                                                 std::size_t trials,
                                                 std::uint64_t seed);

/// Creates a per-trial loss model (so every simulated receiver gets an
/// independent loss process).
using LossFactory =
    std::function<std::unique_ptr<net::LossModel>(std::size_t trial,
                                                  util::Rng& rng)>;

/// Simulates `trials` receivers joining the carousel at random phases and
/// listening until they can reconstruct — one engine session, one receiver
/// per trial, each behind its own link. `max_cycles` bounds how long any
/// receiver listens. Reports are indexed by trial.
std::vector<engine::ReceiverReport> sample_carousel_receptions(
    const fec::ErasureCode& code, const carousel::Carousel& carousel,
    const LossFactory& loss_factory, std::size_t trials, std::uint64_t seed,
    std::size_t max_cycles = 400);

/// Expected minimum of `receivers` i.i.d. draws from `pool`, estimated as the
/// average over `experiments` resampled receiver sets (matches the paper's
/// "average of 100 experiments for each receiver set size").
double expected_min_over(const std::vector<double>& pool,
                         std::size_t receivers, std::size_t experiments,
                         util::Rng& rng);

double mean_of(const std::vector<double>& values);

}  // namespace fountain::sim
