// A random bipartite graph in CSR form, as used by one cascade level of a
// Tornado code: `left` message nodes connected to `right` check nodes; each
// check packet is the XOR of its left neighbours (paper Figure 1).
//
// Construction uses the socket model: left node degrees are sampled from the
// heavy-tail distribution, each left socket is attached to a uniformly random
// check node (Poisson-ish right degrees), and parallel edges are cancelled in
// pairs (an even number of edges between the same pair contributes nothing to
// an XOR).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/degree.hpp"
#include "util/random.hpp"

namespace fountain::core {

/// How check-node degrees arise from the socket model.
enum class CheckDegreePolicy {
  /// Left sockets are dealt to checks as evenly as possible (degrees differ
  /// by at most one). This is the construction with the best finite-length
  /// behaviour (Shokrollahi's right-regular principle) and the library
  /// default.
  kRegular,
  /// Each left socket picks a uniformly random check: binomial (~Poisson)
  /// check degrees, the pairing analysed in Luby et al. [9]. Kept for the
  /// ablation bench — its decoding stalls near completion at finite k.
  kPoisson,
};

class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Builds a random graph with the given degree distribution on the left.
  /// `max_cycle`: degree-2-subgraph cycles up to this length are rewired
  /// away during construction (they are the dominant stopping sets); larger
  /// values thin the overhead tail at higher construction cost.
  static BipartiteGraph random(
      std::size_t left_count, std::size_t right_count,
      const DegreeDistribution& dist, util::Rng& rng,
      CheckDegreePolicy policy = CheckDegreePolicy::kRegular,
      unsigned max_cycle = 8);

  std::size_t left_count() const { return left_count_; }
  std::size_t right_count() const { return right_count_; }
  std::size_t edge_count() const { return right_adj_.size(); }

  /// Left neighbours of check node r.
  std::span<const std::uint32_t> check_neighbors(std::size_t r) const {
    return {right_adj_.data() + right_off_[r],
            right_off_[r + 1] - right_off_[r]};
  }

  /// Check nodes adjacent to left node l.
  std::span<const std::uint32_t> left_checks(std::size_t l) const {
    return {left_adj_.data() + left_off_[l], left_off_[l + 1] - left_off_[l]};
  }

 private:
  std::size_t left_count_ = 0;
  std::size_t right_count_ = 0;
  // CSR from the check side and its transpose.
  std::vector<std::size_t> right_off_;
  std::vector<std::uint32_t> right_adj_;
  std::vector<std::size_t> left_off_;
  std::vector<std::uint32_t> left_adj_;
};

}  // namespace fountain::core
