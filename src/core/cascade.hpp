// The layered ("cascade") structure of a Tornado code (paper Figure 1,
// construction from Luby et al. [8]).
//
// Level 0 holds the k source packets. Level j+1 holds m_{j+1} = beta * m_j
// check packets, each the XOR of its left neighbours in a random bipartite
// graph over level j. Levels halve (beta = 1/2 at the paper's stretch factor
// c = 2; in general beta = (c-1)/c) until they reach ~sqrt(k), where the
// recursion is closed by a conventional erasure code — here a systematic
// Cauchy Reed-Solomon code — protecting the last level. Parity count is
// chosen so the total encoding length is exactly n = round(c * k).
//
// Encoding index space (what `ReceivedSymbol::index` means everywhere):
// [0, k) are the systematic source packets, [k, node_count()) the XOR check
// packets in level order, and [node_count(), encoded_count()) the RS tail
// parity. symbol_size is in bytes and must be even — the tail codec works
// over GF(2^16) and views each packet as 16-bit words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/degree.hpp"
#include "core/graph.hpp"
#include "gf/gf65536.hpp"
#include "gf/rs_cauchy.hpp"

namespace fountain::core {

struct TornadoParams {
  std::size_t k = 0;            // source packets
  std::size_t symbol_size = 0;  // bytes per packet; must be even (RS tail)
  double stretch = 2.0;         // n / k
  std::size_t min_tail = 32;    // lower bound for the last-level size
  std::uint64_t seed = 1;       // graph-construction seed (shared by both ends)
  /// Left degree distribution as edge-perspective (degree, weight) spikes.
  /// Empty means "use heavy_tail(heavy_tail_d)". The named variants A and B
  /// install numerically optimised spike sets (see degree.hpp).
  std::vector<std::pair<unsigned, double>> left_spikes;
  unsigned heavy_tail_d = 8;  // used only when left_spikes is empty
  /// Check-degree construction; kRegular decodes at markedly lower overhead
  /// at practical block lengths (see the degree ablation bench).
  CheckDegreePolicy check_policy = CheckDegreePolicy::kRegular;
  /// Degree-2 cycle-repair depth (see BipartiteGraph::random).
  unsigned girth_repair = 8;

  /// The distribution the parameters denote.
  DegreeDistribution left_distribution() const;

  /// Tornado A: light tail, fastest decode, ~5% average reception overhead.
  static TornadoParams tornado_a(std::size_t k, std::size_t symbol_size,
                                 std::uint64_t seed = 1);
  /// Tornado B: heavier tail (more edges), slower decode, ~3% overhead.
  static TornadoParams tornado_b(std::size_t k, std::size_t symbol_size,
                                 std::uint64_t seed = 1);

  void validate() const;
};

/// Immutable cascade: level layout, one random graph per level boundary, and
/// the Reed-Solomon tail. Shared by encoder and decoders; both ends of a
/// transfer construct identical cascades from (params, seed) — the paper's
/// "source and clients have agreed to the graph structure in advance".
class Cascade {
 public:
  using TailCodec = gf::CauchyCodec<gf::GF65536>;

  explicit Cascade(const TornadoParams& params);

  const TornadoParams& params() const { return params_; }

  std::size_t source_count() const { return level_size_[0]; }
  std::size_t symbol_size() const { return params_.symbol_size; }

  /// Number of XOR levels (graphs); level indices run [0, level_count()].
  std::size_t graph_count() const { return graphs_.size(); }
  std::size_t level_count() const { return level_size_.size(); }
  std::size_t level_size(std::size_t j) const { return level_size_[j]; }
  /// First node index of level j.
  std::size_t level_offset(std::size_t j) const { return level_offset_[j]; }
  /// Level containing node index `node`.
  std::size_t level_of(std::size_t node) const;

  /// Total XOR-cascade nodes (all levels); node indices [0, node_count()).
  std::size_t node_count() const { return node_count_; }
  /// RS tail parity symbols; encoding indices [node_count(), encoded_count()).
  std::size_t parity_count() const { return parity_count_; }
  std::size_t encoded_count() const { return node_count_ + parity_count_; }

  const BipartiteGraph& graph(std::size_t j) const { return *graphs_[j]; }
  const TailCodec& tail() const { return *tail_; }
  std::size_t tail_size() const { return level_size_.back(); }

  /// Total edges across all graphs — proportional to encode/decode cost.
  std::size_t total_edges() const;

 private:
  TornadoParams params_;
  std::vector<std::size_t> level_size_;
  std::vector<std::size_t> level_offset_;
  std::size_t node_count_ = 0;
  std::size_t parity_count_ = 0;
  std::vector<std::unique_ptr<BipartiteGraph>> graphs_;
  std::unique_ptr<TailCodec> tail_;
};

}  // namespace fountain::core
