#include "core/degree.hpp"

#include <algorithm>
#include <stdexcept>

namespace fountain::core {

DegreeDistribution::DegreeDistribution(
    std::vector<std::pair<unsigned, double>> edge_weights) {
  if (edge_weights.empty()) {
    throw std::invalid_argument("DegreeDistribution: empty");
  }
  std::sort(edge_weights.begin(), edge_weights.end());
  double total = 0.0;
  for (const auto& [degree, weight] : edge_weights) {
    if (degree < 2) {
      throw std::invalid_argument("DegreeDistribution: degrees must be >= 2");
    }
    if (weight < 0.0) {
      throw std::invalid_argument("DegreeDistribution: negative weight");
    }
    if (!degrees_.empty() && degrees_.back() == degree) {
      throw std::invalid_argument("DegreeDistribution: duplicate degree");
    }
    degrees_.push_back(degree);
    edge_fraction_.push_back(weight);
    total += weight;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("DegreeDistribution: zero total weight");
  }
  double z = 0.0;  // sum of lambda_i / i
  for (std::size_t idx = 0; idx < degrees_.size(); ++idx) {
    edge_fraction_[idx] /= total;
    z += edge_fraction_[idx] / static_cast<double>(degrees_[idx]);
  }
  average_node_degree_ = 1.0 / z;

  node_fraction_.resize(degrees_.size());
  node_cdf_.resize(degrees_.size());
  double acc = 0.0;
  for (std::size_t idx = 0; idx < degrees_.size(); ++idx) {
    node_fraction_[idx] =
        (edge_fraction_[idx] / static_cast<double>(degrees_[idx])) / z;
    acc += node_fraction_[idx];
    node_cdf_[idx] = acc;
  }
  node_cdf_.back() = 1.0;  // guard against rounding
}

DegreeDistribution DegreeDistribution::heavy_tail(unsigned d) {
  if (d < 1) throw std::invalid_argument("heavy_tail: parameter must be >= 1");
  double harmonic = 0.0;
  for (unsigned j = 1; j <= d; ++j) harmonic += 1.0 / static_cast<double>(j);
  std::vector<std::pair<unsigned, double>> weights;
  weights.reserve(d);
  for (unsigned i = 2; i <= d + 1; ++i) {
    weights.emplace_back(i, 1.0 / (harmonic * static_cast<double>(i - 1)));
  }
  return DegreeDistribution(std::move(weights));
}

double DegreeDistribution::edge_fraction(unsigned degree) const {
  const auto it = std::lower_bound(degrees_.begin(), degrees_.end(), degree);
  if (it == degrees_.end() || *it != degree) return 0.0;
  return edge_fraction_[static_cast<std::size_t>(it - degrees_.begin())];
}

double DegreeDistribution::node_fraction(unsigned degree) const {
  const auto it = std::lower_bound(degrees_.begin(), degrees_.end(), degree);
  if (it == degrees_.end() || *it != degree) return 0.0;
  return node_fraction_[static_cast<std::size_t>(it - degrees_.begin())];
}

unsigned DegreeDistribution::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(node_cdf_.begin(), node_cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - node_cdf_.begin(),
                               static_cast<std::ptrdiff_t>(degrees_.size()) - 1));
  return degrees_[idx];
}

std::vector<unsigned> DegreeDistribution::sample_sequence(
    std::size_t nodes, util::Rng& rng) const {
  std::vector<unsigned> degrees(nodes);
  for (auto& deg : degrees) deg = sample(rng);
  return degrees;
}

}  // namespace fountain::core
