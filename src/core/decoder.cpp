#include "core/decoder.hpp"

#include <cstring>
#include <stdexcept>

#include "kern/kernels.hpp"

namespace fountain::core {

namespace {
// Work items: cascade node indices. Checks needing (re-)evaluation are kept
// on a separate stack so the whole peeling process is iterative — no
// recursion, no stack-depth hazards on long recovery chains.
}

TornadoDataDecoder::TornadoDataDecoder(const Cascade& cascade)
    : cascade_(cascade),
      nodes_(cascade.node_count(), cascade.symbol_size()),
      parity_data_(cascade.parity_count(), cascade.symbol_size()),
      known_(cascade.node_count(), 0),
      unknown_left_(cascade.node_count() - cascade.source_count(), 0),
      initial_unknown_(cascade.node_count() - cascade.source_count(), 0),
      parity_seen_(cascade.parity_count(), 0) {
  const std::size_t k = cascade_.source_count();
  for (std::size_t j = 0; j < cascade_.graph_count(); ++j) {
    const BipartiteGraph& g = cascade_.graph(j);
    const std::size_t right_off = cascade_.level_offset(j + 1);
    for (std::size_t r = 0; r < g.right_count(); ++r) {
      initial_unknown_[right_off + r - k] =
          static_cast<std::uint32_t>(g.check_neighbors(r).size());
    }
  }
  reset();
}

void TornadoDataDecoder::reset() {
  std::fill(known_.begin(), known_.end(), 0);
  unknown_left_ = initial_unknown_;
  std::fill(parity_seen_.begin(), parity_seen_.end(), 0);
  pending_.clear();
  dirty_checks_.clear();
  known_source_ = 0;
  known_tail_ = 0;
  parity_received_ = 0;
  distinct_ = 0;
  tail_done_ = false;
  // A check with no neighbours is the XOR of nothing: its value is known
  // (all zero) before any packet arrives — rule (b) fires immediately.
  const std::size_t k = cascade_.source_count();
  for (std::size_t g = k; g < cascade_.node_count(); ++g) {
    if (initial_unknown_[g - k] == 0) {
      dirty_checks_.push_back(static_cast<std::uint32_t>(g));
    }
  }
  process();
}

bool TornadoDataDecoder::add_symbol(std::uint32_t index,
                                    util::ConstByteSpan data) {
  if (complete()) return true;
  if (index >= cascade_.encoded_count()) {
    throw std::out_of_range("TornadoDataDecoder: index");
  }
  if (data.size() != cascade_.symbol_size()) {
    throw std::invalid_argument("TornadoDataDecoder: payload size");
  }
  if (index < cascade_.node_count()) {
    if (!known_[index]) {
      ++distinct_;
      make_known(index, data);
      process();
    }
  } else {
    const std::uint32_t p =
        index - static_cast<std::uint32_t>(cascade_.node_count());
    if (!parity_seen_[p]) {
      ++distinct_;
      parity_seen_[p] = 1;
      std::memcpy(parity_data_.row(p).data(), data.data(), data.size());
      ++parity_received_;
      process();
    }
  }
  return complete();
}

void TornadoDataDecoder::make_known(std::size_t node,
                                    util::ConstByteSpan data) {
  std::memcpy(nodes_.row(node).data(), data.data(), data.size());
  make_known_in_place(node);
}

void TornadoDataDecoder::make_known_in_place(std::size_t node) {
  known_[node] = 1;
  const std::size_t level = cascade_.level_of(node);
  if (node < cascade_.source_count()) ++known_source_;
  if (level >= 1) {
    // Rule (a) may already apply to this check (its value just arrived while
    // all but one neighbour were known).
    dirty_checks_.push_back(static_cast<std::uint32_t>(node));
  }
  if (level + 1 == cascade_.level_count()) ++known_tail_;
  pending_.push_back(static_cast<std::uint32_t>(node));
}

void TornadoDataDecoder::trigger(std::size_t g) {
  const std::size_t k = cascade_.source_count();
  const std::size_t slot = g - k;
  const std::size_t bytes = cascade_.symbol_size();
  if (known_[g]) {
    if (unknown_left_[slot] != 1) return;
    // Rule (a): exactly one neighbour is still unprocessed. If it is truly
    // unknown, recover it as check XOR (all known neighbours) in one gathered
    // multi-source pass; if it is merely queued (already known), the check
    // carries no new information.
    const std::size_t level = cascade_.level_of(g);
    const BipartiteGraph& graph = cascade_.graph(level - 1);
    const std::size_t left_off = cascade_.level_offset(level - 1);
    const auto neighbors =
        graph.check_neighbors(g - cascade_.level_offset(level));
    std::size_t target = nodes_.rows();  // sentinel: no unknown neighbour
    for (const std::uint32_t l : neighbors) {
      if (!known_[left_off + l]) {
        target = left_off + l;
        break;
      }
    }
    if (target == nodes_.rows()) return;
    auto out = nodes_.row(target);
    std::memcpy(out.data(), nodes_.row(g).data(), bytes);
    gather_.clear();
    for (const std::uint32_t l : neighbors) {
      // Every non-target neighbour is known here (unknown_left == 1); a
      // duplicate edge to a known neighbour XORs twice and cancels, matching
      // the encoder.
      if (left_off + l != target) {
        gather_.push_back(nodes_.row(left_off + l).data());
      }
    }
    kern::xor_block_rows(out.data(), gather_.data(), gather_.size(), bytes);
    make_known_in_place(target);
  } else if (unknown_left_[slot] == 0) {
    // Rule (b): all neighbours known; the check's own value is their XOR —
    // copy the first neighbour, fold the rest through the accumulator.
    const std::size_t level = cascade_.level_of(g);
    const BipartiteGraph& graph = cascade_.graph(level - 1);
    const std::size_t left_off = cascade_.level_offset(level - 1);
    const auto neighbors =
        graph.check_neighbors(g - cascade_.level_offset(level));
    auto out = nodes_.row(g);
    if (neighbors.empty()) {
      std::fill(out.begin(), out.end(), 0);
    } else {
      std::memcpy(out.data(), nodes_.row(left_off + neighbors[0]).data(),
                  bytes);
      gather_.clear();
      for (std::size_t i = 1; i < neighbors.size(); ++i) {
        gather_.push_back(nodes_.row(left_off + neighbors[i]).data());
      }
      kern::xor_block_rows(out.data(), gather_.data(), gather_.size(), bytes);
    }
    make_known_in_place(g);
  }
}

void TornadoDataDecoder::process() {
  const std::size_t k = cascade_.source_count();
  while (!complete()) {
    if (!dirty_checks_.empty()) {
      const std::uint32_t g = dirty_checks_.back();
      dirty_checks_.pop_back();
      trigger(g);
      continue;
    }
    if (!pending_.empty()) {
      const std::uint32_t u = pending_.back();
      pending_.pop_back();
      const std::size_t level = cascade_.level_of(u);
      if (level < cascade_.graph_count()) {
        const BipartiteGraph& graph = cascade_.graph(level);
        const std::size_t right_off = cascade_.level_offset(level + 1);
        for (const std::uint32_t c :
             graph.left_checks(u - cascade_.level_offset(level))) {
          const std::size_t g = right_off + c;
          --unknown_left_[g - k];
          dirty_checks_.push_back(static_cast<std::uint32_t>(g));
        }
      }
      continue;
    }
    if (!tail_done_ &&
        cascade_.tail_size() - known_tail_ <= parity_received_) {
      try_tail();
      continue;
    }
    break;
  }
}

void TornadoDataDecoder::try_tail() {
  tail_done_ = true;
  const std::size_t tail_k = cascade_.tail_size();
  const std::size_t tail_off =
      cascade_.level_offset(cascade_.level_count() - 1);
  if (known_tail_ == tail_k) return;

  // Decode straight into the last-level rows of nodes_: the tail codec reads
  // only rows marked present and reconstructs the missing rows in place, so
  // no staging matrix or copy-back is needed.
  std::vector<bool> have(tail_k, false);
  for (std::size_t i = 0; i < tail_k; ++i) {
    have[i] = known_[tail_off + i] != 0;
  }
  std::vector<std::pair<std::uint32_t, util::ConstByteSpan>> parity;
  parity.reserve(parity_received_);
  for (std::uint32_t p = 0; p < cascade_.parity_count(); ++p) {
    if (parity_seen_[p]) parity.emplace_back(p, parity_data_.row(p));
  }
  cascade_.tail().decode(nodes_.rows_view(tail_off, tail_k), have, parity);
  for (std::size_t i = 0; i < tail_k; ++i) {
    if (!have[i]) make_known_in_place(tail_off + i);
  }
}

TornadoStructuralDecoder::TornadoStructuralDecoder(const Cascade& cascade)
    : cascade_(cascade),
      known_(cascade.node_count(), 0),
      unknown_left_(cascade.node_count() - cascade.source_count(), 0),
      initial_unknown_(cascade.node_count() - cascade.source_count(), 0),
      parity_seen_(cascade.parity_count(), 0) {
  const std::size_t k = cascade_.source_count();
  for (std::size_t j = 0; j < cascade_.graph_count(); ++j) {
    const BipartiteGraph& g = cascade_.graph(j);
    const std::size_t right_off = cascade_.level_offset(j + 1);
    for (std::size_t r = 0; r < g.right_count(); ++r) {
      initial_unknown_[right_off + r - k] =
          static_cast<std::uint32_t>(g.check_neighbors(r).size());
    }
  }
  reset();
}

void TornadoStructuralDecoder::reset() {
  std::fill(known_.begin(), known_.end(), 0);
  unknown_left_ = initial_unknown_;
  std::fill(parity_seen_.begin(), parity_seen_.end(), 0);
  pending_.clear();
  dirty_checks_.clear();
  known_source_ = 0;
  known_tail_ = 0;
  parity_received_ = 0;
  tail_done_ = false;
  // Degree-zero checks are known a priori (XOR of nothing).
  const std::size_t k = cascade_.source_count();
  for (std::size_t g = k; g < cascade_.node_count(); ++g) {
    if (initial_unknown_[g - k] == 0) make_known(g);
  }
  process();
}

bool TornadoStructuralDecoder::add_index(std::uint32_t index) {
  if (complete()) return true;
  if (index >= cascade_.encoded_count()) {
    throw std::out_of_range("TornadoStructuralDecoder: index");
  }
  if (index < cascade_.node_count()) {
    if (!known_[index]) {
      make_known(index);
      process();
    }
  } else {
    const std::uint32_t p =
        index - static_cast<std::uint32_t>(cascade_.node_count());
    if (!parity_seen_[p]) {
      parity_seen_[p] = 1;
      ++parity_received_;
      process();
    }
  }
  return complete();
}

void TornadoStructuralDecoder::make_known(std::size_t node) {
  known_[node] = 1;
  const std::size_t level = cascade_.level_of(node);
  if (node < cascade_.source_count()) ++known_source_;
  if (level >= 1) {
    dirty_checks_.push_back(static_cast<std::uint32_t>(node));
  }
  if (level + 1 == cascade_.level_count()) ++known_tail_;
  pending_.push_back(static_cast<std::uint32_t>(node));
}

void TornadoStructuralDecoder::trigger(std::size_t g) {
  const std::size_t k = cascade_.source_count();
  const std::size_t slot = g - k;
  if (known_[g]) {
    if (unknown_left_[slot] == 1) {
      const std::size_t level = cascade_.level_of(g);
      const BipartiteGraph& graph = cascade_.graph(level - 1);
      const std::size_t left_off = cascade_.level_offset(level - 1);
      const std::size_t r = g - cascade_.level_offset(level);
      for (const std::uint32_t l : graph.check_neighbors(r)) {
        if (!known_[left_off + l]) {
          make_known(left_off + l);
          return;
        }
      }
    }
  } else if (unknown_left_[slot] == 0) {
    make_known(g);
  }
}

void TornadoStructuralDecoder::process() {
  const std::size_t k = cascade_.source_count();
  while (!complete()) {
    if (!dirty_checks_.empty()) {
      const std::uint32_t g = dirty_checks_.back();
      dirty_checks_.pop_back();
      trigger(g);
      continue;
    }
    if (!pending_.empty()) {
      const std::uint32_t u = pending_.back();
      pending_.pop_back();
      const std::size_t level = cascade_.level_of(u);
      if (level < cascade_.graph_count()) {
        const BipartiteGraph& graph = cascade_.graph(level);
        const std::size_t right_off = cascade_.level_offset(level + 1);
        for (const std::uint32_t c :
             graph.left_checks(u - cascade_.level_offset(level))) {
          const std::size_t g = right_off + c;
          --unknown_left_[g - k];
          dirty_checks_.push_back(static_cast<std::uint32_t>(g));
        }
      }
      continue;
    }
    if (!tail_done_ &&
        cascade_.tail_size() - known_tail_ <= parity_received_) {
      try_tail();
      continue;
    }
    break;
  }
}

void TornadoStructuralDecoder::try_tail() {
  tail_done_ = true;
  const std::size_t tail_k = cascade_.tail_size();
  const std::size_t tail_off =
      cascade_.level_offset(cascade_.level_count() - 1);
  for (std::size_t i = 0; i < tail_k; ++i) {
    if (!known_[tail_off + i]) make_known(tail_off + i);
  }
}

}  // namespace fountain::core
