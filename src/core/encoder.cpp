#include "core/encoder.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "kern/kernels.hpp"

namespace fountain::core {

CascadeEncoder::CascadeEncoder(const Cascade& cascade,
                               util::ConstSymbolView source)
    : cascade_(cascade), source_(source) {
  const std::size_t k = cascade_.source_count();
  const std::size_t bytes = cascade_.symbol_size();
  if (source_.rows() != k || source_.symbol_size() != bytes) {
    throw std::invalid_argument("CascadeEncoder: source shape mismatch");
  }
  checks_ = util::SymbolMatrix(cascade_.node_count() - k, bytes);

  // Each check packet is the XOR of its left neighbours in the level graph:
  // initialize by copying the first neighbour (instead of zero-fill + XOR,
  // which costs an extra full pass over the packet), then fold the whole
  // remaining neighborhood in one cache-blocked multi-row pass — the
  // destination tile stays L1-resident across every neighbour instead of
  // being re-read once per source. Level 0 rows come from the borrowed
  // source view, deeper rows from the check state filled by earlier
  // iterations. Shapes were validated above, so this loop uses the unchecked
  // kernels.
  const auto node_row = [&](std::size_t node) {
    return node < k ? source_.row(node) : checks_.row(node - k);
  };
  std::vector<const std::uint8_t*> gather;
  for (std::size_t j = 0; j < cascade_.graph_count(); ++j) {
    const BipartiteGraph& g = cascade_.graph(j);
    const std::size_t left_off = cascade_.level_offset(j);
    const std::size_t right_off = cascade_.level_offset(j + 1);
    for (std::size_t r = 0; r < g.right_count(); ++r) {
      auto out = checks_.row(right_off + r - k);
      const auto neighbors = g.check_neighbors(r);
      if (neighbors.empty()) {
        std::fill(out.begin(), out.end(), 0);
        continue;
      }
      std::memcpy(out.data(), node_row(left_off + neighbors[0]).data(), bytes);
      gather.clear();
      for (std::size_t i = 1; i < neighbors.size(); ++i) {
        gather.push_back(node_row(left_off + neighbors[i]).data());
      }
      kern::xor_block_rows(out.data(), gather.data(), gather.size(), bytes);
    }
  }

  // The RS tail's source is the contiguous last level: the source itself
  // when the cascade has no check levels (k at or below the tail threshold),
  // a check-state range otherwise.
  const std::size_t tail_off =
      cascade_.level_offset(cascade_.level_count() - 1);
  tail_ = tail_off < k
              ? source_
              : checks_.rows_view(tail_off - k, cascade_.tail_size());
}

void CascadeEncoder::write_symbol(std::uint32_t index,
                                  util::ByteSpan out) const {
  const std::size_t k = cascade_.source_count();
  if (index >= cascade_.encoded_count()) {
    throw std::out_of_range("CascadeEncoder: index");
  }
  if (out.size() != cascade_.symbol_size()) {
    throw std::invalid_argument("CascadeEncoder: output size");
  }
  if (index < k) {
    std::memcpy(out.data(), source_.row(index).data(), out.size());
  } else if (index < cascade_.node_count()) {
    std::memcpy(out.data(), checks_.row(index - k).data(), out.size());
  } else {
    cascade_.tail().encode_one(tail_, index - cascade_.node_count(), out);
  }
}

}  // namespace fountain::core
