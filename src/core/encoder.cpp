#include "core/encoder.hpp"

#include <cstring>
#include <stdexcept>

#include "kern/accumulator.hpp"

namespace fountain::core {

void encode_cascade(const Cascade& cascade, const util::SymbolMatrix& source,
                    util::SymbolMatrix& encoding) {
  const std::size_t k = cascade.source_count();
  const std::size_t bytes = cascade.symbol_size();
  if (source.rows() != k || source.symbol_size() != bytes ||
      encoding.rows() != cascade.encoded_count() ||
      encoding.symbol_size() != bytes) {
    throw std::invalid_argument("encode_cascade: shape mismatch");
  }

  // Systematic prefix: level 0 is the source data itself.
  std::memcpy(encoding.data(), source.data(), source.size_bytes());

  // Each check packet is the XOR of its left neighbours in the level graph:
  // initialize by copying the first neighbour (instead of zero-fill + XOR,
  // which costs an extra full pass over the packet), then fold the remaining
  // neighbours up to four at a time through the batching accumulator.
  // Shapes were validated above, so this loop uses the unchecked kernels.
  for (std::size_t j = 0; j < cascade.graph_count(); ++j) {
    const BipartiteGraph& g = cascade.graph(j);
    const std::size_t left_off = cascade.level_offset(j);
    const std::size_t right_off = cascade.level_offset(j + 1);
    for (std::size_t r = 0; r < g.right_count(); ++r) {
      auto out = encoding.row(right_off + r);
      const auto neighbors = g.check_neighbors(r);
      if (neighbors.empty()) {
        std::fill(out.begin(), out.end(), 0);
        continue;
      }
      std::memcpy(out.data(), encoding.row(left_off + neighbors[0]).data(),
                  bytes);
      kern::XorAccumulator acc(out.data(), bytes);
      for (std::size_t i = 1; i < neighbors.size(); ++i) {
        acc.add(encoding.row(left_off + neighbors[i]).data());
      }
    }
  }

  // RS tail over the last level, encoded directly from/into `encoding` rows
  // (the tail source is the contiguous last level, the parity the contiguous
  // range right after the cascade nodes — no staging copies needed).
  const std::size_t tail_off = cascade.level_offset(cascade.level_count() - 1);
  cascade.tail().encode(
      encoding.rows_view(tail_off, cascade.tail_size()),
      encoding.rows_view(cascade.node_count(), cascade.parity_count()));
}

}  // namespace fountain::core
