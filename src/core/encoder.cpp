#include "core/encoder.hpp"

#include <cstring>
#include <stdexcept>

namespace fountain::core {

void encode_cascade(const Cascade& cascade, const util::SymbolMatrix& source,
                    util::SymbolMatrix& encoding) {
  const std::size_t k = cascade.source_count();
  const std::size_t bytes = cascade.symbol_size();
  if (source.rows() != k || source.symbol_size() != bytes ||
      encoding.rows() != cascade.encoded_count() ||
      encoding.symbol_size() != bytes) {
    throw std::invalid_argument("encode_cascade: shape mismatch");
  }

  // Systematic prefix: level 0 is the source data itself.
  std::memcpy(encoding.data(), source.data(), source.size_bytes());

  // Each check packet is the XOR of its left neighbours in the level graph.
  for (std::size_t j = 0; j < cascade.graph_count(); ++j) {
    const BipartiteGraph& g = cascade.graph(j);
    const std::size_t left_off = cascade.level_offset(j);
    const std::size_t right_off = cascade.level_offset(j + 1);
    for (std::size_t r = 0; r < g.right_count(); ++r) {
      auto out = encoding.row(right_off + r);
      std::fill(out.begin(), out.end(), 0);
      for (const std::uint32_t l : g.check_neighbors(r)) {
        util::xor_into(out, encoding.row(left_off + l));
      }
    }
  }

  // RS tail over the last level.
  const std::size_t tail_k = cascade.tail_size();
  const std::size_t tail_off = cascade.level_offset(cascade.level_count() - 1);
  util::SymbolMatrix tail_src(tail_k, bytes);
  std::memcpy(tail_src.data(), encoding.data() + tail_off * bytes,
              tail_src.size_bytes());
  util::SymbolMatrix tail_parity(cascade.parity_count(), bytes);
  cascade.tail().encode(tail_src, tail_parity);
  std::memcpy(encoding.data() + cascade.node_count() * bytes,
              tail_parity.data(), tail_parity.size_bytes());
}

}  // namespace fountain::core
