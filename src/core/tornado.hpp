// Public facade: a Tornado code as an ErasureCode. This is the paper's
// primary contribution — an erasure code whose encode and decode costs are
// linear in the encoding length (XORs only, plus a small RS tail), at the
// price of a small reception overhead eps: (1 + eps) k distinct packets are
// needed to reconstruct instead of exactly k.
#pragma once

#include <memory>

#include "core/cascade.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "fec/erasure_code.hpp"

namespace fountain::core {

class TornadoCode final : public fec::ErasureCode {
 public:
  explicit TornadoCode(const TornadoParams& params)
      : cascade_(std::make_unique<Cascade>(params)) {}

  /// Convenience constructors for the paper's two code variants.
  static TornadoCode variant_a(std::size_t k, std::size_t symbol_size,
                               std::uint64_t seed = 1) {
    return TornadoCode(TornadoParams::tornado_a(k, symbol_size, seed));
  }
  static TornadoCode variant_b(std::size_t k, std::size_t symbol_size,
                               std::uint64_t seed = 1) {
    return TornadoCode(TornadoParams::tornado_b(k, symbol_size, seed));
  }

  const Cascade& cascade() const { return *cascade_; }

  std::size_t source_count() const override {
    return cascade_->source_count();
  }
  std::size_t encoded_count() const override {
    return cascade_->encoded_count();
  }
  std::size_t symbol_size() const override { return cascade_->symbol_size(); }
  fec::CodecId codec_id() const override { return fec::CodecId::kTornado; }

  std::unique_ptr<fec::BlockEncoder> make_encoder(
      util::ConstSymbolView source) const override {
    return std::make_unique<CascadeEncoder>(*cascade_, source);
  }

  std::unique_ptr<fec::IncrementalDecoder> make_decoder() const override {
    return std::make_unique<TornadoDataDecoder>(*cascade_);
  }

  std::unique_ptr<fec::StructuralDecoder> make_structural_decoder()
      const override {
    return std::make_unique<TornadoStructuralDecoder>(*cascade_);
  }

 private:
  std::unique_ptr<Cascade> cascade_;
};

}  // namespace fountain::core
