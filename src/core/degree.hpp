// Degree distributions for the irregular bipartite graphs behind Tornado
// codes, following Luby-Mitzenmacher-Shokrollahi-Spielman-Stemann, "Practical
// Loss-Resilient Codes" (STOC '97) and "Analysis of Random Processes via
// And-Or Tree Evaluation" (SODA '98) — references [8, 9] of the paper.
//
// A distribution is specified from the EDGE perspective: lambda_i is the
// fraction of edges incident to degree-i left nodes. Two families are
// provided:
//
//  * heavy_tail(D): lambda_i = 1 / (H(D) (i-1)), i = 2..D+1 — the analytical
//    family of [8]; simple, capacity-approaching as D grows, but with
//    mediocre finite-length behaviour (kept for the ablation bench).
//
//  * spikes({deg: weight}): sparse "spike" distributions found by numerical
//    optimisation of the peeling condition delta * lambda(1 - rho(1-x)) < x
//    under a bound on the degree-2 cycle density — the same design process
//    the paper's authors describe for Tornado A and B. The shipped Tornado A
//    and B parameter sets use such optimised spikes.
//
// The right (check) side is produced by the graph builder: round-robin
// socket dealing (right-regular, the default) or uniform random (Poisson).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/random.hpp"

namespace fountain::core {

class DegreeDistribution {
 public:
  /// `edge_weights` maps degree -> nonnegative weight (normalised
  /// internally). Degrees must be >= 2 (a degree-1 left node would make its
  /// only check a copy; degree-0 would be undecodable).
  explicit DegreeDistribution(
      std::vector<std::pair<unsigned, double>> edge_weights);

  /// The truncated heavy-tail family of [8].
  static DegreeDistribution heavy_tail(unsigned d);

  unsigned min_degree() const { return degrees_.front(); }
  unsigned max_degree() const { return degrees_.back(); }

  /// Edge-perspective probability lambda_i for degree i (0 if absent).
  double edge_fraction(unsigned degree) const;
  /// Node-perspective probability nu_i (fraction of left nodes of degree i).
  double node_fraction(unsigned degree) const;
  /// Average left-node degree = 1 / sum_i(lambda_i / i).
  double average_node_degree() const { return average_node_degree_; }

  /// Samples one left-node degree (node perspective).
  unsigned sample(util::Rng& rng) const;

  /// Samples a full left-side degree sequence.
  std::vector<unsigned> sample_sequence(std::size_t nodes,
                                        util::Rng& rng) const;

 private:
  std::vector<unsigned> degrees_;       // sorted ascending
  std::vector<double> edge_fraction_;   // parallel to degrees_
  std::vector<double> node_fraction_;   // parallel to degrees_
  std::vector<double> node_cdf_;        // parallel to degrees_
  double average_node_degree_ = 0.0;
};

/// Backwards-compatible face of the heavy-tail family.
class HeavyTailDistribution : public DegreeDistribution {
 public:
  explicit HeavyTailDistribution(unsigned max_degree_parameter)
      : DegreeDistribution(DegreeDistribution::heavy_tail(
            max_degree_parameter)),
        d_(max_degree_parameter) {}

  unsigned parameter() const { return d_; }

 private:
  unsigned d_;
};

}  // namespace fountain::core
