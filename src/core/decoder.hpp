// Tornado decoders. Both run the same bidirectional peeling process:
//
//  rule (a): a check node whose value is known and which has exactly one
//            unknown left neighbour recovers that neighbour
//            (value = check XOR known-neighbour-sum);
//  rule (b): a check node all of whose left neighbours are known recovers
//            its own value (it is itself a transmitted packet — and a left
//            node of the next cascade level);
//  rule (c): once the number of missing last-level packets is at most the
//            number of received RS parity packets, the Reed-Solomon tail
//            recovers the entire last level.
//
// TornadoDataDecoder carries real payloads (the paper's client). Substitution
// is deferred and batched: when a rule fires, the whole neighborhood is
// gathered into a pointer list and folded by one cache-blocked multi-row
// pass (kern::xor_block_rows — four sources per L1-resident destination
// tile). Each graph edge still costs exactly one P-byte XOR over the whole
// decode — the (k+l) ln(1/eps) P bound of Table 1 — but the destination
// packet is read from L1 ~d/4 times per degree-d check instead of making d
// round-trips, and there is no residual matrix at all (node storage is
// halved versus the incremental-residual design). TornadoStructuralDecoder
// runs the identical process on indices alone and is
// what the receiver-population simulations use; decodability depends only on
// which indices arrived, so the two agree by construction.
//
// Contracts shared by both decoders: indices are the cascade's encoding
// index space [0, encoded_count()); duplicate deliveries are counted once
// and otherwise ignored, so feeding a carousel stream straight in is safe;
// and each decoder borrows (does not copy) its Cascade, which must outlive
// it — the paper's setting, where one agreed-upon graph serves a whole
// transfer.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cascade.hpp"
#include "fec/erasure_code.hpp"
#include "util/symbols.hpp"

namespace fountain::core {

class TornadoDataDecoder final : public fec::IncrementalDecoder {
 public:
  explicit TornadoDataDecoder(const Cascade& cascade);

  bool add_symbol(std::uint32_t index, util::ConstByteSpan data) override;
  bool complete() const override {
    return known_source_ == cascade_.source_count();
  }
  void reset() override;
  /// The decoded prefix of the node matrix — source rows are stored exactly
  /// once (no mirror copy); valid only when complete().
  util::ConstSymbolView source() const override {
    return nodes_.rows_view(0, cascade_.source_count());
  }

  /// Distinct encoding symbols that have been fed in so far.
  std::size_t distinct_received() const { return distinct_; }

 private:
  void make_known(std::size_t node, util::ConstByteSpan data);
  /// Marks a node whose row in nodes_ already holds its value.
  void make_known_in_place(std::size_t node);
  void process();
  void trigger(std::size_t check_node);
  void try_tail();

  const Cascade& cascade_;
  util::SymbolMatrix nodes_;  // all cascade node values
  util::SymbolMatrix parity_data_;
  std::vector<std::uint8_t> known_;          // per cascade node
  std::vector<std::uint32_t> unknown_left_;  // per check node
  std::vector<std::uint32_t> initial_unknown_;
  std::vector<std::uint8_t> parity_seen_;
  std::vector<std::uint32_t> pending_;       // newly-known nodes to propagate
  std::vector<std::uint32_t> dirty_checks_;  // checks needing re-evaluation
  std::vector<const std::uint8_t*> gather_;  // substitution-source scratch
  std::size_t known_source_ = 0;
  std::size_t known_tail_ = 0;
  std::size_t parity_received_ = 0;
  std::size_t distinct_ = 0;
  bool tail_done_ = false;
};

class TornadoStructuralDecoder final : public fec::StructuralDecoder {
 public:
  explicit TornadoStructuralDecoder(const Cascade& cascade);

  bool add_index(std::uint32_t index) override;
  bool complete() const override {
    return known_source_ == cascade_.source_count();
  }
  void reset() override;

 private:
  void make_known(std::size_t node);
  void process();
  void trigger(std::size_t check_node);
  void try_tail();

  const Cascade& cascade_;
  std::vector<std::uint8_t> known_;
  std::vector<std::uint32_t> unknown_left_;
  std::vector<std::uint32_t> initial_unknown_;
  std::vector<std::uint8_t> parity_seen_;
  std::vector<std::uint32_t> pending_;
  std::vector<std::uint32_t> dirty_checks_;
  std::size_t known_source_ = 0;
  std::size_t known_tail_ = 0;
  std::size_t parity_received_ = 0;
  bool tail_done_ = false;
};

}  // namespace fountain::core
