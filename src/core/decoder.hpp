// Tornado decoders. Both run the same bidirectional peeling process:
//
//  rule (a): a check node whose value is known and which has exactly one
//            unknown left neighbour recovers that neighbour
//            (value = check XOR known-neighbour-sum);
//  rule (b): a check node all of whose left neighbours are known recovers
//            its own value (it is itself a transmitted packet — and a left
//            node of the next cascade level);
//  rule (c): once the number of missing last-level packets is at most the
//            number of received RS parity packets, the Reed-Solomon tail
//            recovers the entire last level.
//
// TornadoDataDecoder carries real payloads (the paper's client); it maintains
// one residual buffer per check node, so each graph edge costs exactly one
// P-byte XOR over the whole decode — the (k+l) ln(1/eps) P bound of Table 1.
// TornadoStructuralDecoder runs the identical process on indices alone and is
// what the receiver-population simulations use; decodability depends only on
// which indices arrived, so the two agree by construction.
//
// Contracts shared by both decoders: indices are the cascade's encoding
// index space [0, encoded_count()); duplicate deliveries are counted once
// and otherwise ignored, so feeding a carousel stream straight in is safe;
// and each decoder borrows (does not copy) its Cascade, which must outlive
// it — the paper's setting, where one agreed-upon graph serves a whole
// transfer.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cascade.hpp"
#include "fec/erasure_code.hpp"
#include "util/symbols.hpp"

namespace fountain::core {

class TornadoDataDecoder final : public fec::IncrementalDecoder {
 public:
  explicit TornadoDataDecoder(const Cascade& cascade);

  bool add_symbol(std::uint32_t index, util::ConstByteSpan data) override;
  bool complete() const override {
    return known_source_ == cascade_.source_count();
  }
  const util::SymbolMatrix& source() const override { return source_; }

  /// Distinct encoding symbols that have been fed in so far.
  std::size_t distinct_received() const { return distinct_; }

 private:
  void make_known(std::size_t node, util::ConstByteSpan data);
  void process();
  void trigger(std::size_t check_node);
  void try_tail();

  const Cascade& cascade_;
  util::SymbolMatrix source_;    // level 0, mirrored for the caller
  util::SymbolMatrix nodes_;     // all cascade node values
  util::SymbolMatrix residual_;  // per check node (levels >= 1)
  util::SymbolMatrix parity_data_;
  std::vector<std::uint8_t> known_;          // per cascade node
  std::vector<std::uint32_t> unknown_left_;  // per check node
  std::vector<std::uint8_t> parity_seen_;
  std::vector<std::uint32_t> pending_;       // newly-known nodes to propagate
  std::vector<std::uint32_t> dirty_checks_;  // checks needing re-evaluation
  std::size_t known_source_ = 0;
  std::size_t known_tail_ = 0;
  std::size_t parity_received_ = 0;
  std::size_t distinct_ = 0;
  bool tail_done_ = false;
};

class TornadoStructuralDecoder final : public fec::StructuralDecoder {
 public:
  explicit TornadoStructuralDecoder(const Cascade& cascade);

  bool add_index(std::uint32_t index) override;
  bool complete() const override {
    return known_source_ == cascade_.source_count();
  }
  void reset() override;

 private:
  void make_known(std::size_t node);
  void process();
  void trigger(std::size_t check_node);
  void try_tail();

  const Cascade& cascade_;
  std::vector<std::uint8_t> known_;
  std::vector<std::uint32_t> unknown_left_;
  std::vector<std::uint32_t> initial_unknown_;
  std::vector<std::uint8_t> parity_seen_;
  std::vector<std::uint32_t> pending_;
  std::vector<std::uint32_t> dirty_checks_;
  std::size_t known_source_ = 0;
  std::size_t known_tail_ = 0;
  std::size_t parity_received_ = 0;
  bool tail_done_ = false;
};

}  // namespace fountain::core
