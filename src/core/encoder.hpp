// Tornado encoding as a streaming BlockEncoder. Construction runs the one
// linear XOR pass down the cascade — the (k + l) * ln(1/eps) * P running
// time of the paper's Table 1 — materializing only the check levels
// (node rows [k, node_count()), < k rows at stretch 2). After that every
// encoding symbol is served on demand: source and check symbols are single
// memcpys, and RS tail parity rows are synthesized per index straight into
// the caller's buffer (tail().encode_one over the last-level rows), so the
// expensive tail matrix-multiply is paid only for tail symbols actually
// requested — this is what makes time-to-first-symbol O(k) instead of the
// whole-block O(k + tail * parity).
//
// Invariants: `source` must be shaped for the cascade (k rows of
// symbol_size() bytes; mismatches throw std::invalid_argument) and must
// outlive the encoder (the view is borrowed, not copied). Encoding is
// deterministic for a fixed cascade — write_symbol(i) is byte-identical to
// row i of the whole-block encoding — so a server and the benches can
// regenerate identical packet streams from any point.
#pragma once

#include <memory>

#include "core/cascade.hpp"
#include "fec/erasure_code.hpp"
#include "util/symbols.hpp"

namespace fountain::core {

class CascadeEncoder final : public fec::BlockEncoder {
 public:
  CascadeEncoder(const Cascade& cascade, util::ConstSymbolView source);

  std::size_t source_count() const override {
    return cascade_.source_count();
  }
  std::size_t encoded_count() const override {
    return cascade_.encoded_count();
  }
  std::size_t symbol_size() const override { return cascade_.symbol_size(); }
  std::size_t state_bytes() const override { return checks_.size_bytes(); }

  void write_symbol(std::uint32_t index, util::ByteSpan out) const override;

 private:
  const Cascade& cascade_;      // borrowed; must outlive the encoder
  util::ConstSymbolView source_;
  util::SymbolMatrix checks_;   // node rows [k, node_count()), level order
  util::ConstSymbolView tail_;  // last-level rows (the RS tail's source)
};

}  // namespace fountain::core
