// Tornado encoding: one linear pass of XORs down the cascade plus the RS
// tail — the (k + l) * ln(1/eps) * P running time of the paper's Table 1.
//
// Invariants: `source` and `encoding` must already be shaped for the given
// cascade (k rows resp. n = encoded_count() rows, matching symbol_size()
// in bytes); shape mismatches throw std::invalid_argument rather than
// silently truncating. Encoding is deterministic for a fixed cascade, so a
// server and the benches can regenerate identical packet streams.
#pragma once

#include "core/cascade.hpp"
#include "util/symbols.hpp"

namespace fountain::core {

/// Fills `encoding` (cascade.encoded_count() rows) from `source`
/// (cascade.source_count() rows). The encoding is systematic: rows [0, k)
/// are the source packets.
void encode_cascade(const Cascade& cascade, const util::SymbolMatrix& source,
                    util::SymbolMatrix& encoding);

}  // namespace fountain::core
