#include "core/graph.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

namespace fountain::core {

namespace {

/// Repairs the edge list in place so that (a) no left node has two edges to
/// the same check (such parallel edges cancel under XOR — in the worst case
/// isolating a degree-2 node entirely) and (b) no two degree-2 left nodes
/// have identical check neighbourhoods (a 2-node stopping set: if both
/// packets are lost the peeling decoder can never separate them). Both
/// defects occur with constant expectation in a plain socket-model graph and
/// are what push a Tornado code's reception overhead from ~5% to ~30%+ at
/// practical sizes. Repair swaps the check endpoints of offending sockets
/// with random other sockets, preserving the exact left and check degree
/// sequences.
void repair_edges(std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
                  const std::vector<unsigned>& left_degrees, util::Rng& rng,
                  unsigned max_cycle) {
  // edges[i] = (right, left). Build per-left socket index lists once.
  const std::size_t left_count = left_degrees.size();
  std::vector<std::size_t> left_start(left_count + 1, 0);
  for (std::size_t l = 0; l < left_count; ++l) {
    left_start[l + 1] = left_start[l] + left_degrees[l];
  }
  // Sort edges by left so that a left node's sockets are contiguous.
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  for (int round = 0; round < 200; ++round) {
    bool dirty = false;
    // Registry of degree-2 neighbourhoods seen this round.
    std::set<std::pair<std::uint32_t, std::uint32_t>> deg2_pairs;
    for (std::size_t l = 0; l < left_count; ++l) {
      const std::size_t begin = left_start[l];
      const std::size_t end = left_start[l + 1];
      // (a) parallel edges within this left node.
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t j = i + 1; j < end; ++j) {
          if (edges[i].first == edges[j].first) {
            std::swap(edges[j].first, edges[rng.below(edges.size())].first);
            dirty = true;
          }
        }
      }
      // (b) duplicate degree-2 neighbourhoods.
      if (end - begin == 2) {
        auto pair = std::minmax(edges[begin].first, edges[begin + 1].first);
        if (!deg2_pairs.emplace(pair.first, pair.second).second) {
          std::swap(edges[begin].first,
                    edges[rng.below(edges.size())].first);
          dirty = true;
        }
      }
    }
    if (!dirty) break;
  }

  // (c) Short cycles in the degree-2 subgraph. Each degree-2 left node is an
  // edge between its two checks; a cycle of m such edges is a stopping set
  // that survives whenever all m packets are lost (probability delta^m), so
  // short cycles dominate the failure tail. Rewire until the degree-2
  // subgraph has girth > kMaxCycle. Longer cycles are left alone: their
  // full-loss probability is negligible.
  const unsigned kMaxCycle = max_cycle;
  const std::size_t right_count = [&] {
    std::uint32_t max_r = 0;
    for (const auto& [r, l] : edges) {
      (void)l;
      max_r = std::max(max_r, r);
    }
    return static_cast<std::size_t>(max_r) + 1;
  }();
  for (int round = 0; round < 60; ++round) {
    // Adjacency of the degree-2 subgraph over checks.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj(
        right_count);  // check -> (other check, left id)
    for (std::size_t l = 0; l < left_count; ++l) {
      if (left_start[l + 1] - left_start[l] != 2) continue;
      const std::uint32_t a = edges[left_start[l]].first;
      const std::uint32_t b = edges[left_start[l] + 1].first;
      adj[a].emplace_back(b, static_cast<std::uint32_t>(l));
      adj[b].emplace_back(a, static_cast<std::uint32_t>(l));
    }
    bool dirty = false;
    std::vector<std::uint32_t> dist(right_count);
    std::vector<std::uint32_t> queue;
    for (std::size_t l = 0; l < left_count; ++l) {
      if (left_start[l + 1] - left_start[l] != 2) continue;
      const std::uint32_t a = edges[left_start[l]].first;
      const std::uint32_t b = edges[left_start[l] + 1].first;
      // BFS from a to b avoiding the edge l itself, bounded depth.
      std::fill(dist.begin(), dist.end(), UINT32_MAX);
      queue.clear();
      queue.push_back(a);
      dist[a] = 0;
      bool found = false;
      for (std::size_t head = 0; head < queue.size() && !found; ++head) {
        const std::uint32_t c = queue[head];
        if (dist[c] >= kMaxCycle - 1) break;
        for (const auto& [next, via] : adj[c]) {
          if (via == l) continue;
          if (dist[next] != UINT32_MAX) continue;
          if (next == b) {
            found = true;
            break;
          }
          dist[next] = dist[c] + 1;
          queue.push_back(next);
        }
      }
      if (found) {
        // Break the cycle by moving one endpoint to a random other socket.
        std::swap(edges[left_start[l]].first,
                  edges[rng.below(edges.size())].first);
        dirty = true;
      }
    }
    if (!dirty) break;
    // Rewiring may reintroduce parallel edges / duplicate pairs; one cheap
    // clean-up pass per round.
    std::set<std::pair<std::uint32_t, std::uint32_t>> deg2_pairs;
    for (std::size_t l = 0; l < left_count; ++l) {
      const std::size_t begin = left_start[l];
      const std::size_t end = left_start[l + 1];
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t j = i + 1; j < end; ++j) {
          if (edges[i].first == edges[j].first) {
            std::swap(edges[j].first, edges[rng.below(edges.size())].first);
          }
        }
      }
      if (end - begin == 2) {
        auto pair = std::minmax(edges[begin].first, edges[begin + 1].first);
        if (!deg2_pairs.emplace(pair.first, pair.second).second) {
          std::swap(edges[begin].first, edges[rng.below(edges.size())].first);
        }
      }
    }
  }
  // Degenerate parameter ranges (e.g. more degree-2 lefts than check pairs)
  // cannot be fully repaired; the graph is still usable, just with a tail of
  // stopping sets, so proceed rather than fail.
}

}  // namespace

BipartiteGraph BipartiteGraph::random(std::size_t left_count,
                                      std::size_t right_count,
                                      const DegreeDistribution& dist,
                                      util::Rng& rng,
                                      CheckDegreePolicy policy,
                                      unsigned max_cycle) {
  if (left_count == 0 || right_count == 0) {
    throw std::invalid_argument("BipartiteGraph: empty side");
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;  // (right, left)
  const auto degrees = dist.sample_sequence(left_count, rng);
  std::size_t sockets = 0;
  for (auto d : degrees) sockets += d;
  edges.reserve(sockets);
  if (policy == CheckDegreePolicy::kPoisson) {
    // Each socket picks a uniform random check.
    for (std::uint32_t l = 0; l < left_count; ++l) {
      for (unsigned s = 0; s < degrees[l]; ++s) {
        edges.emplace_back(static_cast<std::uint32_t>(rng.below(right_count)),
                           l);
      }
    }
  } else {
    // Shuffle the left sockets, then deal them round-robin so check degrees
    // are as equal as possible (right-regular construction).
    std::vector<std::uint32_t> socket_owner;
    socket_owner.reserve(sockets);
    for (std::uint32_t l = 0; l < left_count; ++l) {
      for (unsigned s = 0; s < degrees[l]; ++s) socket_owner.push_back(l);
    }
    rng.shuffle(socket_owner);
    for (std::size_t s = 0; s < socket_owner.size(); ++s) {
      edges.emplace_back(static_cast<std::uint32_t>(s % right_count),
                         socket_owner[s]);
    }
  }

  repair_edges(edges, degrees, rng, max_cycle);

  // Residual parallel edges (possible only in degenerate cases) cancel in
  // pairs: an even number of edges between the same pair contributes nothing
  // to an XOR.
  std::sort(edges.begin(), edges.end());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> kept;
  kept.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size();) {
    std::size_t j = i;
    while (j < edges.size() && edges[j] == edges[i]) ++j;
    if ((j - i) % 2 == 1) kept.push_back(edges[i]);
    i = j;
  }

  BipartiteGraph g;
  g.left_count_ = left_count;
  g.right_count_ = right_count;

  g.right_off_.assign(right_count + 1, 0);
  for (const auto& [r, l] : kept) {
    (void)l;
    ++g.right_off_[r + 1];
  }
  for (std::size_t r = 0; r < right_count; ++r) {
    g.right_off_[r + 1] += g.right_off_[r];
  }
  g.right_adj_.resize(kept.size());
  {
    std::vector<std::size_t> cursor(g.right_off_.begin(),
                                    g.right_off_.end() - 1);
    for (const auto& [r, l] : kept) g.right_adj_[cursor[r]++] = l;
  }

  g.left_off_.assign(left_count + 1, 0);
  for (const auto& [r, l] : kept) {
    (void)r;
    ++g.left_off_[l + 1];
  }
  for (std::size_t l = 0; l < left_count; ++l) {
    g.left_off_[l + 1] += g.left_off_[l];
  }
  g.left_adj_.resize(kept.size());
  {
    std::vector<std::size_t> cursor(g.left_off_.begin(), g.left_off_.end() - 1);
    for (std::size_t r = 0; r < right_count; ++r) {
      for (std::size_t e = g.right_off_[r]; e < g.right_off_[r + 1]; ++e) {
        const std::uint32_t l = g.right_adj_[e];
        g.left_adj_[cursor[l]++] = static_cast<std::uint32_t>(r);
      }
    }
  }
  return g;
}

}  // namespace fountain::core
