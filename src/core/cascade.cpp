#include "core/cascade.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fountain::core {

TornadoParams TornadoParams::tornado_a(std::size_t k, std::size_t symbol_size,
                                       std::uint64_t seed) {
  TornadoParams p;
  p.k = k;
  p.symbol_size = symbol_size;
  // Numerically optimised spike distribution (asymptotic peeling threshold
  // 0.495 at rate 1/2 with right-regular checks; avg left degree 4.45).
  p.left_spikes = {{2, 0.2454}, {3, 0.2150}, {8, 0.2757}, {40, 0.2639}};
  p.girth_repair = 12;  // applied on levels large enough to benefit
  p.stretch = 2.0;
  p.seed = seed;
  return p;
}

TornadoParams TornadoParams::tornado_b(std::size_t k, std::size_t symbol_size,
                                       std::uint64_t seed) {
  TornadoParams p;
  p.k = k;
  p.symbol_size = symbol_size;
  // Same optimised family as A with the tail spike pushed out and deeper
  // cycle repair: lower reception overhead with a thinner tail, at the cost
  // of more edges (slower decode) and costlier construction — the paper's
  // A/B trade.
  p.left_spikes = {{2, 0.2454}, {3, 0.2150}, {6, 0.0500}, {8, 0.2257},
                   {48, 0.2639}};
  p.girth_repair = 12;
  p.stretch = 2.0;
  p.seed = seed;
  return p;
}

DegreeDistribution TornadoParams::left_distribution() const {
  if (left_spikes.empty()) return DegreeDistribution::heavy_tail(heavy_tail_d);
  return DegreeDistribution(left_spikes);
}

void TornadoParams::validate() const {
  if (k == 0) throw std::invalid_argument("TornadoParams: k must be > 0");
  if (symbol_size == 0 || symbol_size % 2 != 0) {
    throw std::invalid_argument(
        "TornadoParams: symbol_size must be positive and even");
  }
  if (heavy_tail_d < 1) {
    throw std::invalid_argument("TornadoParams: heavy_tail_d must be >= 1");
  }
  if (stretch <= 1.0) {
    throw std::invalid_argument("TornadoParams: stretch must exceed 1");
  }
  if (min_tail < 2) {
    throw std::invalid_argument("TornadoParams: min_tail must be >= 2");
  }
}

Cascade::Cascade(const TornadoParams& params) : params_(params) {
  params_.validate();
  const std::size_t k = params_.k;
  const auto n = static_cast<std::size_t>(
      std::llround(params_.stretch * static_cast<double>(k)));

  // Level sizes: shrink by beta = (c-1)/c until the tail threshold, so that
  // the geometric sum of check levels plus an RS tail of roughly the last
  // level's size lands at n total.
  const double beta = (params_.stretch - 1.0) / params_.stretch;
  // Tail threshold: stop the cascade while levels are still large enough to
  // concentrate (peeling on sub-500-node graphs is dominated by variance,
  // not by the asymptotic threshold), but keep the RS tail <= 1024 so its
  // quadratic decode cost stays negligible next to the XOR passes.
  const std::size_t threshold =
      std::max(params_.min_tail, std::min<std::size_t>(k / 8, 1024));
  level_size_.push_back(k);
  // Guard: the cascade plus at least one parity symbol must fit in n.
  std::size_t total = k;
  while (level_size_.back() > threshold) {
    const auto next = static_cast<std::size_t>(std::ceil(
        beta * static_cast<double>(level_size_.back())));
    if (next < 2 || total + next + 1 > n) break;
    level_size_.push_back(next);
    total += next;
  }

  level_offset_.resize(level_size_.size());
  std::size_t off = 0;
  for (std::size_t j = 0; j < level_size_.size(); ++j) {
    level_offset_[j] = off;
    off += level_size_[j];
  }
  node_count_ = off;
  if (n <= node_count_) {
    throw std::invalid_argument("Cascade: stretch leaves no room for RS tail");
  }
  parity_count_ = n - node_count_;

  const std::size_t tail_k = level_size_.back();
  if (tail_k + parity_count_ > gf::GF65536::kOrder) {
    throw std::invalid_argument("Cascade: RS tail exceeds GF(2^16)");
  }
  tail_ = std::make_unique<TailCodec>(tail_k, parity_count_);

  const DegreeDistribution primary = params_.left_distribution();
  util::Rng rng(params_.seed);
  for (std::size_t j = 0; j + 1 < level_size_.size(); ++j) {
    const std::size_t left = level_size_[j];
    // High-degree spikes need enough left nodes to concentrate; small levels
    // fall back to a low-degree heavy tail sized to the level. Deep girth
    // repair only pays off on the sparse degree-2 subgraphs of the optimised
    // spikes, so fallback graphs keep the default depth.
    const bool primary_fits = left >= 16 * primary.max_degree();
    const DegreeDistribution dist =
        primary_fits ? primary
                     : DegreeDistribution::heavy_tail(static_cast<unsigned>(
                           std::clamp<std::size_t>(left / 32, 2, 8)));
    // Deep cycle repair is only productive when the degree-2 subgraph is
    // large enough to re-randomise; small levels are left at depth 8.
    unsigned girth = primary_fits ? params_.girth_repair
                                  : std::min(params_.girth_repair, 8u);
    if (left < 4096) girth = std::min(girth, 8u);
    graphs_.push_back(std::make_unique<BipartiteGraph>(BipartiteGraph::random(
        left, level_size_[j + 1], dist, rng, params_.check_policy, girth)));
  }
}

std::size_t Cascade::level_of(std::size_t node) const {
  if (node >= node_count_) throw std::out_of_range("Cascade: node index");
  // Levels are few (log k); linear scan is fine and cache-friendly.
  std::size_t j = 0;
  while (j + 1 < level_offset_.size() && node >= level_offset_[j + 1]) ++j;
  return j;
}

std::size_t Cascade::total_edges() const {
  std::size_t edges = 0;
  for (const auto& g : graphs_) edges += g->edge_count();
  return edges;
}

}  // namespace fountain::core
