#include "lt/soliton.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fountain::lt {

RobustSoliton::RobustSoliton(std::size_t k, double c, double delta)
    : k_(k), c_(c), delta_(delta) {
  if (k == 0) {
    throw std::invalid_argument("RobustSoliton: k must be positive");
  }
  if (!(c > 0.0)) {
    throw std::invalid_argument("RobustSoliton: c must be positive");
  }
  if (!(delta > 0.0) || !(delta < 1.0)) {
    throw std::invalid_argument("RobustSoliton: delta must be in (0, 1)");
  }

  // R = c ln(k/delta) sqrt(k); the spike sits at k/R. For tiny k the formula
  // can push R past k or below 1 — clamp so the spike stays a valid degree.
  const double dk = static_cast<double>(k);
  const double r = c * std::log(dk / delta) * std::sqrt(dk);
  double spike = std::floor(dk / std::max(r, 1.0));
  spike = std::min(std::max(spike, 1.0), dk);
  spike_ = static_cast<unsigned>(spike);

  // Unnormalized mass rho(d) + tau(d), accumulated as a running CDF; one
  // final division normalizes (beta = sum of both parts).
  cdf_.resize(k);
  double total = 0.0;
  double mean = 0.0;
  for (std::size_t d = 1; d <= k; ++d) {
    const double dd = static_cast<double>(d);
    double mass = d == 1 ? 1.0 / dk : 1.0 / (dd * (dd - 1.0));
    if (d < spike_) {
      mass += r / (dd * dk);
    } else if (d == spike_) {
      // The spike collapses tau's tail into one degree; when R <= delta the
      // log goes nonpositive (degenerate tiny-k regime) and the robust part
      // vanishes, leaving the ideal soliton.
      mass += std::max(0.0, r * std::log(r / delta)) / dk;
    }
    total += mass;
    mean += mass * dd;
    cdf_[d - 1] = total;
  }
  mean_degree_ = mean / total;
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving P(<= k) < 1
}

double RobustSoliton::pmf(unsigned degree) const {
  if (degree == 0 || degree > k_) return 0.0;
  const double below = degree == 1 ? 0.0 : cdf_[degree - 2];
  return cdf_[degree - 1] - below;
}

unsigned RobustSoliton::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<unsigned>(it - cdf_.begin()) + 1;
}

}  // namespace fountain::lt
