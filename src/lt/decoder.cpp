#include "lt/decoder.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "kern/kernels.hpp"

namespace fountain::lt {

namespace {

// Bit-vector helpers over `words`-wide GF(2) mask rows.
bool test_bit(const std::uint64_t* m, std::size_t b) {
  return ((m[b >> 6] >> (b & 63)) & 1U) != 0;
}

void flip_bit(std::uint64_t* m, std::size_t b) { m[b >> 6] ^= 1ULL << (b & 63); }

void xor_words(std::uint64_t* dst, const std::uint64_t* src,
               std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) dst[i] ^= src[i];
}

std::int64_t lowest_bit(const std::uint64_t* m, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) {
    if (m[w] != 0) {
      return static_cast<std::int64_t>(w * 64 +
                                       static_cast<std::size_t>(
                                           __builtin_ctzll(m[w])));
    }
  }
  return -1;
}

}  // namespace

void InactivationPlan::clear() {
  success = false;
  deficit = 0;
  words = 0;
  resolved.clear();
  resolved_masks.clear();
  inactive.clear();
  pivot_check.clear();
  pivot_var.clear();
  pivot_masks.clear();
}

// ---- LtDecoderCore ----

LtDecoderCore::LtDecoderCore(const LtCode& code)
    : code_(&code),
      k_(code.source_count()),
      gen_(code.distribution(), code.params().seed),
      known_(k_, 0),
      adj_(k_) {
  check_begin_.push_back(0);
}

LtDecoderCore::AddResult LtDecoderCore::insert(std::uint32_t index) {
  AddResult r;
  if (complete()) return r;
  if (!seen_.insert(index).second) return r;  // duplicate
  r.new_index = true;
  ++distinct_;

  gen_.generate(index, nbrs_);
  std::uint32_t unknown = 0;
  for (const auto n : nbrs_) unknown += known_[n] == 0 ? 1U : 0U;
  if (unknown == 0) return r;  // redundant: every neighbor already known

  const auto c = static_cast<std::uint32_t>(unknown_count_.size());
  nbr_.insert(nbr_.end(), nbrs_.begin(), nbrs_.end());
  check_begin_.push_back(static_cast<std::uint32_t>(nbr_.size()));
  unknown_count_.push_back(unknown);
  for (const auto n : nbrs_) {
    if (known_[n] == 0) adj_[n].push_back(c);
  }
  if (unknown == 1) fire_.push_back(c);
  r.check = c;
  return r;
}

void LtDecoderCore::propagate(std::vector<PeelEvent>& events) {
  while (!fire_.empty()) {
    const auto c = fire_.back();
    fire_.pop_back();
    if (unknown_count_[c] != 1) continue;  // stale queue entry
    std::uint32_t s = 0;
    for (const auto n : check_neighbors(c)) {
      if (known_[n] == 0) {
        s = n;
        break;
      }
    }
    known_[s] = 1;
    ++known_count_;
    ++peeled_;
    events.push_back({c, s});
    // c itself sits in adj_[s], so this loop also retires c to zero.
    for (const auto c2 : adj_[s]) {
      if (--unknown_count_[c2] == 1) fire_.push_back(c2);
    }
    adj_[s].clear();
  }
}

bool LtDecoderCore::should_attempt() const {
  if (complete() || distinct_ < k_) return false;
  return distinct_ - distinct_at_attempt_ >= last_deficit_;
}

void LtDecoderCore::plan_inactivation(InactivationPlan& plan) {
  plan.clear();
  ++attempts_;
  const auto fail = [&](std::size_t deficit) {
    plan.success = false;
    plan.deficit = std::max<std::size_t>(deficit, 1);
    last_deficit_ = plan.deficit;
    distinct_at_attempt_ = distinct_;
  };

  const std::size_t checks = unknown_count_.size();
  const std::size_t unknowns = k_ - known_count_;

  // Residual degree per unknown source (count of residual checks covering
  // it). plan_pos_ doubles as the rd[] scratch here; it is overwritten with
  // resolution ordinals once the candidate order is fixed.
  plan_pos_.assign(k_, 0);
  std::size_t residual_checks = 0;
  for (std::uint32_t c = 0; c < checks; ++c) {
    if (unknown_count_[c] < 2) continue;
    ++residual_checks;
    for (const auto n : check_neighbors(c)) {
      if (known_[n] == 0) ++plan_pos_[n];
    }
  }

  // A source no residual check covers is unreachable: the system misses at
  // least one independent equation per uncovered source, and a new symbol
  // raises the rank by at most one — fail without touching any masks.
  std::size_t uncovered = 0;
  plan_order_.clear();
  for (std::uint32_t s = 0; s < k_; ++s) {
    if (known_[s] != 0) continue;
    if (plan_pos_[s] == 0) {
      ++uncovered;
    } else {
      plan_order_.push_back(s);
    }
  }
  if (uncovered > 0) {
    fail(uncovered);
    return;
  }

  // Inactivation candidates: highest residual degree first (removing a
  // high-degree source unlocks the most checks), source id as the
  // deterministic tie-break via stable sort over the ascending-id list.
  std::stable_sort(plan_order_.begin(), plan_order_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return plan_pos_[a] > plan_pos_[b];
                   });

  // Symbolic re-peel: run the ripple on a copy of the unknown counts; every
  // time it dies, inactivate the next candidate and continue with it counted
  // as known. Each pop defines exactly one source in triangular order.
  plan_ucnt_.assign(unknown_count_.begin(), unknown_count_.end());
  plan_state_.assign(k_, 0);
  plan_used_.assign(checks, 0);
  plan_fire_.clear();
  std::size_t remaining = unknowns;
  std::size_t cand = 0;
  while (remaining > 0) {
    if (plan_fire_.empty()) {
      while (plan_state_[plan_order_[cand]] != 0) ++cand;
      const auto s = plan_order_[cand];
      plan_state_[s] = 2;
      plan.inactive.push_back(s);
      --remaining;
      for (const auto c2 : adj_[s]) {
        if (--plan_ucnt_[c2] == 1) plan_fire_.push_back(c2);
      }
    } else {
      const auto c = plan_fire_.back();
      plan_fire_.pop_back();
      if (plan_ucnt_[c] != 1) continue;
      std::uint32_t s = 0;
      bool found = false;
      for (const auto n : check_neighbors(c)) {
        if (known_[n] == 0 && plan_state_[n] == 0) {
          s = n;
          found = true;
          break;
        }
      }
      assert(found && "defining check lost its active member");
      if (!found) continue;
      plan_state_[s] = 1;
      plan_used_[c] = 1;
      plan.resolved.push_back({c, s});
      --remaining;
      for (const auto c2 : adj_[s]) {
        if (--plan_ucnt_[c2] == 1) plan_fire_.push_back(c2);
      }
    }
  }

  const std::size_t ninact = plan.inactive.size();
  const std::size_t equations = residual_checks - plan.resolved.size();
  if (equations < ninact) {  // rank <= equations: cheap counting fast-fail
    fail(ninact - equations);
    return;
  }

  const std::size_t words = (ninact + 63) / 64;
  plan.words = words;
  for (std::size_t j = 0; j < plan.resolved.size(); ++j) {
    plan_pos_[plan.resolved[j].source] = static_cast<std::uint32_t>(j);
  }
  for (std::size_t b = 0; b < ninact; ++b) {
    plan_pos_[plan.inactive[b]] = static_cast<std::uint32_t>(b);
  }

  // Express every resolved source as a combination over the inactive set:
  // its defining check's other unknown members are inactive (unit bit) or
  // resolved earlier (their masks — already built, triangular order).
  plan.resolved_masks.assign(plan.resolved.size() * words, 0);
  for (std::size_t j = 0; j < plan.resolved.size(); ++j) {
    auto* row = plan.resolved_masks.data() + j * words;
    const auto [c, s] = plan.resolved[j];
    for (const auto n : check_neighbors(c)) {
      if (n == s || known_[n] != 0) continue;
      if (plan_state_[n] == 2) {
        flip_bit(row, plan_pos_[n]);
      } else {
        xor_words(row, plan.resolved_masks.data() + plan_pos_[n] * words,
                  words);
      }
    }
  }

  // Incremental GE over the unused residual checks, accept-as-you-go. The
  // reduction is a single sequential pass over accepted pivots: pivot p's
  // mask never contains an earlier pivot's variable, so bits introduced
  // mid-pass always belong to later loop indices. The data decoder replays
  // this exact loop over payload rows, so determinism here is load-bearing.
  plan.pivot_masks.reserve(ninact * words);
  std::size_t rank = 0;
  for (std::uint32_t c = 0; c < checks && rank < ninact; ++c) {
    if (unknown_count_[c] < 2 || plan_used_[c] != 0) continue;
    plan_mask_.assign(words, 0);
    for (const auto n : check_neighbors(c)) {
      if (known_[n] != 0) continue;
      if (plan_state_[n] == 2) {
        flip_bit(plan_mask_.data(), plan_pos_[n]);
      } else {
        xor_words(plan_mask_.data(),
                  plan.resolved_masks.data() + plan_pos_[n] * words, words);
      }
    }
    for (std::size_t p = 0; p < rank; ++p) {
      if (test_bit(plan_mask_.data(), plan.pivot_var[p])) {
        xor_words(plan_mask_.data(), plan.pivot_masks.data() + p * words,
                  words);
      }
    }
    const auto var = lowest_bit(plan_mask_.data(), words);
    if (var < 0) continue;  // dependent equation
    plan.pivot_check.push_back(c);
    plan.pivot_var.push_back(static_cast<std::uint32_t>(var));
    plan.pivot_masks.insert(plan.pivot_masks.end(), plan_mask_.begin(),
                            plan_mask_.end());
    ++rank;
  }

  if (rank < ninact) {
    fail(ninact - rank);
    return;
  }
  plan.success = true;
  inactivated_ += ninact;
  last_deficit_ = 0;
  distinct_at_attempt_ = distinct_;
}

void LtDecoderCore::finish_plan() {
  std::fill(known_.begin(), known_.end(), static_cast<std::uint8_t>(1));
  known_count_ = k_;
  for (auto& a : adj_) a.clear();
  fire_.clear();
}

void LtDecoderCore::reset() {
  seen_.clear();
  distinct_ = 0;
  nbr_.clear();
  check_begin_.clear();
  check_begin_.push_back(0);
  unknown_count_.clear();
  std::fill(known_.begin(), known_.end(), static_cast<std::uint8_t>(0));
  for (auto& a : adj_) a.clear();
  fire_.clear();
  known_count_ = 0;
  last_deficit_ = 0;
  distinct_at_attempt_ = 0;
  attempts_ = 0;
  inactivated_ = 0;
  peeled_ = 0;
}

// ---- LtStructuralDecoder ----

bool LtStructuralDecoder::add_index(std::uint32_t index) {
  if (core_.complete()) return true;
  const auto r = core_.insert(index);
  if (r.check >= 0) {
    events_.clear();
    core_.propagate(events_);
  }
  if (!core_.complete() && core_.should_attempt()) {
    core_.plan_inactivation(plan_);
    if (plan_.success) core_.finish_plan();
  }
  return core_.complete();
}

// ---- LtDataDecoder ----

LtDataDecoder::LtDataDecoder(const LtCode& code)
    : core_(code),
      symbol_size_(code.symbol_size()),
      nodes_(code.source_count(), code.symbol_size()) {}

void LtDataDecoder::store_payload(std::uint32_t check,
                                  util::ConstByteSpan data) {
  const std::size_t need =
      (static_cast<std::size_t>(check) + 1) * symbol_size_;
  if (payload_.capacity() < need) {
    payload_.reserve(std::max(need, payload_.capacity() * 2));
  }
  payload_.resize(need);
  std::memcpy(payload_.data() + static_cast<std::size_t>(check) * symbol_size_,
              data.data(), symbol_size_);
}

void LtDataDecoder::replay(const std::vector<PeelEvent>& events) {
  // Events arrive in core resolution order, so every neighbor other than the
  // event's source already holds its final value in nodes_ when its fold
  // runs: value(s) = check payload XOR (all other neighbors), one
  // cache-blocked multi-row pass per recovered source.
  for (const auto& e : events) {
    auto dst = nodes_.row(e.source);
    std::memcpy(dst.data(), payload_row(e.check), symbol_size_);
    gather_.clear();
    for (const auto n : core_.check_neighbors(e.check)) {
      if (n != e.source) gather_.push_back(nodes_.row(n).data());
    }
    kern::xor_block_rows(dst.data(), gather_.data(), gather_.size(),
                         symbol_size_);
  }
}

void LtDataDecoder::apply_plan(const InactivationPlan& plan) {
  const std::size_t words = plan.words;
  const std::size_t np = plan.pivot_var.size();
  mark_.assign(nodes_.rows(), 0);
  pos_.assign(nodes_.rows(), 0);
  for (std::size_t j = 0; j < plan.resolved.size(); ++j) {
    mark_[plan.resolved[j].source] = 1;
    pos_[plan.resolved[j].source] = static_cast<std::uint32_t>(j);
  }
  for (std::size_t b = 0; b < plan.inactive.size(); ++b) {
    mark_[plan.inactive[b]] = 2;
    pos_[plan.inactive[b]] = static_cast<std::uint32_t>(b);
  }

  // 1. Partial values for resolved sources, triangular order: B(s) = defining
  // check payload XOR known/earlier-resolved neighbors (inactive skipped —
  // their contribution lands in step 4). nodes_.row(s) holds B(s) until then.
  for (const auto& [c, s] : plan.resolved) {
    auto dst = nodes_.row(s);
    std::memcpy(dst.data(), payload_row(c), symbol_size_);
    gather_.clear();
    for (const auto n : core_.check_neighbors(c)) {
      if (n == s || mark_[n] == 2) continue;
      gather_.push_back(nodes_.row(n).data());
    }
    kern::xor_block_rows(dst.data(), gather_.data(), gather_.size(),
                         symbol_size_);
  }

  // 2. Dense-system right-hand sides, replaying the planner's elimination
  // pass byte-for-byte over payloads.
  util::SymbolMatrix rhs(np, symbol_size_);
  std::vector<std::uint64_t> mask(words);
  for (std::size_t j = 0; j < np; ++j) {
    const auto c = plan.pivot_check[j];
    auto dst = rhs.row(j);
    std::memcpy(dst.data(), payload_row(c), symbol_size_);
    gather_.clear();
    std::fill(mask.begin(), mask.end(), 0);
    for (const auto n : core_.check_neighbors(c)) {
      if (mark_[n] == 2) {
        flip_bit(mask.data(), pos_[n]);
        continue;
      }
      if (mark_[n] == 1) {
        xor_words(mask.data(), plan.resolved_masks.data() + pos_[n] * words,
                  words);
      }
      gather_.push_back(nodes_.row(n).data());  // final value or B row
    }
    kern::xor_block_rows(dst.data(), gather_.data(), gather_.size(),
                         symbol_size_);
    for (std::size_t p = 0; p < j; ++p) {
      if (test_bit(mask.data(), plan.pivot_var[p])) {
        xor_words(mask.data(), plan.pivot_masks.data() + p * words, words);
        kern::xor_block(dst.data(), rhs.row(p).data(), symbol_size_);
      }
    }
    assert(std::equal(mask.begin(), mask.end(),
                      plan.pivot_masks.begin() + j * words) &&
           "payload elimination diverged from the structural plan");
  }

  // 3. Back-substitution, reverse acceptance order: every non-pivot bit of a
  // reduced row belongs to a later pivot, already solved when we get there.
  for (std::size_t j = np; j-- > 0;) {
    const auto* row = plan.pivot_masks.data() + j * words;
    gather_.clear();
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = row[w];
      while (bits != 0) {
        const auto b = w * 64 +
                       static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        if (b == plan.pivot_var[j]) continue;
        gather_.push_back(nodes_.row(plan.inactive[b]).data());
      }
    }
    auto dst = rhs.row(j);
    kern::xor_block_rows(dst.data(), gather_.data(), gather_.size(),
                         symbol_size_);
    std::memcpy(nodes_.row(plan.inactive[plan.pivot_var[j]]).data(),
                dst.data(), symbol_size_);
  }

  // 4. Fold the solved inactive values into every resolved source's B row.
  for (std::size_t j = 0; j < plan.resolved.size(); ++j) {
    const auto* row = plan.resolved_masks.data() + j * words;
    gather_.clear();
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = row[w];
      while (bits != 0) {
        const auto b = w * 64 +
                       static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        gather_.push_back(nodes_.row(plan.inactive[b]).data());
      }
    }
    if (!gather_.empty()) {
      kern::xor_block_rows(nodes_.row(plan.resolved[j].source).data(),
                           gather_.data(), gather_.size(), symbol_size_);
    }
  }
}

bool LtDataDecoder::add_symbol(std::uint32_t index, util::ConstByteSpan data) {
  if (data.size() != symbol_size_) {
    throw std::invalid_argument("LtDataDecoder: wrong symbol size");
  }
  if (core_.complete()) return true;
  const auto r = core_.insert(index);
  if (r.check >= 0) {
    store_payload(static_cast<std::uint32_t>(r.check), data);
    events_.clear();
    core_.propagate(events_);
    replay(events_);
  }
  if (!core_.complete() && core_.should_attempt()) {
    core_.plan_inactivation(plan_);
    if (plan_.success) {
      apply_plan(plan_);
      core_.finish_plan();
    }
  }
  return core_.complete();
}

void LtDataDecoder::reset() {
  core_.reset();
  payload_.clear();
}

}  // namespace fountain::lt
