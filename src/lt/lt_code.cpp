#include "lt/lt_code.hpp"

#include <cmath>
#include <stdexcept>

#include "lt/decoder.hpp"
#include "lt/encoder.hpp"

namespace fountain::lt {

namespace {

/// splitmix64 finalizer: the standard 64 -> 64 bit mixer used to expand
/// seeds; applied twice over (seed, index) to decorrelate adjacent indices.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint32_t variant_from(double c, double delta) {
  const auto lo = static_cast<std::uint32_t>(std::lround(c * 1000.0));
  const auto hi = static_cast<std::uint32_t>(std::lround(delta * 1000.0));
  if (lo > 0xffff || hi > 0xffff) {
    throw std::invalid_argument("lt::variant_from: c or delta out of range");
  }
  return (hi << 16) | lo;
}

void params_from_variant(std::uint32_t variant, double& c, double& delta) {
  const std::uint32_t lo = variant & 0xffff;
  const std::uint32_t hi = variant >> 16;
  c = lo == 0 ? RobustSoliton::kDefaultC : static_cast<double>(lo) / 1000.0;
  delta =
      hi == 0 ? RobustSoliton::kDefaultDelta : static_cast<double>(hi) / 1000.0;
}

NeighborGenerator::NeighborGenerator(const RobustSoliton& dist,
                                     std::uint64_t seed)
    : dist_(dist), seed_(seed), mark_(dist.k(), 0) {}

unsigned NeighborGenerator::generate(std::uint32_t index,
                                     std::vector<std::uint32_t>& out) {
  // Per-symbol stream: mix the index into the code seed before the Rng's own
  // splitmix expansion, so streams for adjacent indices share no structure.
  rng_.reseed(mix64(seed_ ^ mix64(0x4c54ULL << 32 | index)));
  const std::uint64_t k = dist_.k();
  unsigned degree = dist_.sample(rng_);
  if (degree > k) degree = static_cast<unsigned>(k);  // unreachable guard
  out.clear();

  // Distinct draws via a stamped mark map: O(1) membership, O(1) reset (bump
  // the stamp), no allocation after construction. Expected draws are
  // degree * k / (k - degree + 1); even the spike degree (~k / R << k) stays
  // within a small constant factor of `degree`.
  if (++stamp_ == 0) {  // stamp wrapped: clear and restart
    std::fill(mark_.begin(), mark_.end(), 0U);
    stamp_ = 1;
  }
  while (out.size() < degree) {
    const auto s = static_cast<std::uint32_t>(rng_.below(k));
    if (mark_[s] == stamp_) continue;
    mark_[s] = stamp_;
    out.push_back(s);
  }
  return degree;
}

LtCode::LtCode(const LtParams& params)
    : params_(params),
      nominal_n_(0),
      dist_(params.k == 0 ? 1 : params.k, params.c, params.delta) {
  if (params.k == 0 || params.symbol_size == 0) {
    throw std::invalid_argument("LtCode: k and symbol_size must be positive");
  }
  if (!(params.stretch > 1.0)) {
    throw std::invalid_argument("LtCode: stretch must exceed 1");
  }
  const double n = std::round(params.stretch * static_cast<double>(params.k));
  nominal_n_ = std::max<std::size_t>(static_cast<std::size_t>(n),
                                     params.k + 1);
}

std::unique_ptr<fec::BlockEncoder> LtCode::make_encoder(
    util::ConstSymbolView source) const {
  return std::make_unique<LtEncoder>(*this, source);
}

std::unique_ptr<fec::IncrementalDecoder> LtCode::make_decoder() const {
  return std::make_unique<LtDataDecoder>(*this);
}

std::unique_ptr<fec::StructuralDecoder> LtCode::make_structural_decoder()
    const {
  return std::make_unique<LtStructuralDecoder>(*this);
}

}  // namespace fountain::lt
