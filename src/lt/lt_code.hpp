// The rateless plane's code facade: a seeded LT code as a fec::ErasureCode.
//
// Unlike every block code in this library, an LT code has no finite encoding:
// the encoding-symbol index *is* the PRNG seed. Symbol i's degree and
// neighbor set are derived purely from (code seed, i) — any mirror holding
// the same ControlInfo regenerates byte-identical symbols for any index, so
// the symbol space is unbounded (2^32 on the wire) and a carousel never has
// to recycle. encoded_count() still reports a *nominal* n = round(stretch*k)
// for block-shaped plumbing (whole-block encode() in tests, carousel cycle
// lengths, ControlInfo's n field); the encoder accepts every uint32 index.
//
// The decoder is a belief-propagation peeler with an inactivation fallback:
// received symbols peel like Tornado check nodes, and when peeling stalls
// with at least k distinct symbols in hand the residual graph is
// triangularized by inactivating a few source symbols and closing the gap
// with a dense GF(2) elimination over just the inactivated set (see
// lt/decoder.hpp). This is what turns "peeling needs k + O(sqrt(k) ln^2)"
// into "ML decoding at a couple percent overhead".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fec/erasure_code.hpp"
#include "lt/soliton.hpp"
#include "util/random.hpp"

namespace fountain::lt {

/// Construction parameters; the subset both ends must agree on travels as
/// fec::CodecParams / proto::ControlInfo (k, symbol_size, stretch, seed,
/// and c/delta packed into `variant` — see params_from_variant).
struct LtParams {
  std::size_t k = 0;
  std::size_t symbol_size = 0;
  /// Nominal stretch: encoded_count() = max(round(stretch * k), k + 1).
  /// Pure bookkeeping — the index space is unbounded regardless.
  double stretch = 2.0;
  std::uint64_t seed = 1;
  double c = RobustSoliton::kDefaultC;
  double delta = RobustSoliton::kDefaultDelta;
};

/// Wire encoding of (c, delta) in fec::CodecParams::variant: low 16 bits
/// carry round(c * 1000), high 16 bits round(delta * 1000); a zero half
/// means "default". variant == 0 is therefore the default distribution.
std::uint32_t variant_from(double c, double delta);
/// Inverse of variant_from (returns the defaults for zero halves).
void params_from_variant(std::uint32_t variant, double& c, double& delta);

/// Deterministically derives encoding symbol `index`'s degree and neighbor
/// set. The per-symbol Rng is seeded by mixing (seed, index) through
/// splitmix-style finalizers, so generation is a pure function — identical
/// across hosts, runs, and thread counts. Holds scratch (a k-wide mark map)
/// so repeated generation never allocates; not thread-safe per instance,
/// cheap to create per thread.
class NeighborGenerator {
 public:
  NeighborGenerator(const RobustSoliton& dist, std::uint64_t seed);

  /// Fills `out` with symbol `index`'s distinct neighbors (source indices in
  /// [0, k)), in derivation order. Returns the degree (= out.size()).
  unsigned generate(std::uint32_t index, std::vector<std::uint32_t>& out);

 private:
  const RobustSoliton& dist_;  // borrowed; must outlive the generator
  std::uint64_t seed_;
  util::Rng rng_;
  std::vector<std::uint32_t> mark_;  // mark_[s] == stamp: s already drawn
  std::uint32_t stamp_ = 0;
};

class LtCode final : public fec::ErasureCode {
 public:
  explicit LtCode(const LtParams& params);

  std::size_t source_count() const override { return params_.k; }
  /// Nominal only — see the file comment. write_symbol accepts any index.
  std::size_t encoded_count() const override { return nominal_n_; }
  std::size_t symbol_size() const override { return params_.symbol_size; }
  fec::CodecId codec_id() const override { return fec::CodecId::kLT; }

  const LtParams& params() const { return params_; }
  const RobustSoliton& distribution() const { return dist_; }

  std::unique_ptr<fec::BlockEncoder> make_encoder(
      util::ConstSymbolView source) const override;
  std::unique_ptr<fec::IncrementalDecoder> make_decoder() const override;
  std::unique_ptr<fec::StructuralDecoder> make_structural_decoder()
      const override;

 private:
  LtParams params_;
  std::size_t nominal_n_;
  RobustSoliton dist_;
};

}  // namespace fountain::lt
