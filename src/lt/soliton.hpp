// The robust soliton degree distribution (Luby, "LT Codes", FOCS '02) —
// the degree law behind the rateless plane. The ideal soliton
// rho(1) = 1/k, rho(d) = 1/(d(d-1)) makes the expected peeling ripple size
// exactly one, which is too fragile in practice; the robust variant adds
// tau(d) = R/(dk) for d < k/R and a spike tau(k/R) = R ln(R/delta) / k with
// R = c ln(k/delta) sqrt(k), keeping the expected ripple at ~R throughout the
// decode so that k + O(sqrt(k) ln^2(k/delta)) received symbols finish with
// probability at least 1 - delta.
//
// The distribution is precomputed once per code as a CDF over the support
// degrees (ideal-soliton tail degrees above the spike carry mass ~1/d^2, so
// the support is all of [1, k] but the CDF is a flat array and sampling is a
// single binary search). Sampling is deterministic given the caller's Rng —
// the encoder derives that Rng purely from (code seed, symbol index), which
// is what makes the symbol space reproducible anywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace fountain::lt {

class RobustSoliton {
 public:
  /// Defaults chosen to behave well across the k range the benches sweep
  /// (1k..1M): a moderate ripple constant and a 50% nominal failure target —
  /// the decoder's inactivation fallback converts residual peeling failures
  /// into a few dense GF(2) eliminations instead of decode failures, so
  /// delta here shapes the degree law rather than the actual failure rate.
  static constexpr double kDefaultC = 0.1;
  static constexpr double kDefaultDelta = 0.5;

  /// Builds the distribution for `k` source symbols. c must be positive and
  /// delta in (0, 1); both throw std::invalid_argument otherwise.
  RobustSoliton(std::size_t k, double c = kDefaultC,
                double delta = kDefaultDelta);

  std::size_t k() const { return k_; }
  double c() const { return c_; }
  double delta() const { return delta_; }
  /// The spike degree k/R (clamped to [1, k]); degrees above it carry only
  /// the ideal-soliton 1/(d(d-1)) tail.
  unsigned spike_degree() const { return spike_; }
  /// Expected degree of one encoding symbol (~ln(k/delta) + O(1)); the
  /// per-symbol encode/decode cost in P-byte XORs.
  double mean_degree() const { return mean_degree_; }

  /// Normalized probability of degree d (0 outside [1, k]).
  double pmf(unsigned degree) const;

  /// Samples one degree in [1, k]: a single uniform draw inverted through
  /// the precomputed CDF by binary search.
  unsigned sample(util::Rng& rng) const;

 private:
  std::size_t k_;
  double c_;
  double delta_;
  unsigned spike_ = 1;
  double mean_degree_ = 0.0;
  std::vector<double> cdf_;  // cdf_[d-1] = P(degree <= d), d in [1, k]
};

}  // namespace fountain::lt
