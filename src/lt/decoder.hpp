// LT decoding: belief-propagation peeling with an inactivation fallback.
//
// Phase 1 — peeling (the BP workhorse, same process as Tornado rule (a)):
// every received symbol is a check node over its derived neighbor set; a
// check with exactly one unknown neighbor recovers it, newly known sources
// decrement their other checks, and the ripple runs until the queue drains.
//
// Phase 2 — inactivation (the ML closer): when peeling stalls with at least
// k distinct symbols in hand, the residual graph is re-peeled *symbolically*:
// whenever the ripple dies, one unknown source is "inactivated" (treated as
// a free variable) and peeling continues with inactivated sources counted as
// known. Every remaining unknown is thereby resolved into (defining check)
// XOR (a sparse GF(2) combination of the inactivated set), and each leftover
// residual check yields one dense equation over just the inactivated
// variables. A small Gaussian elimination over those (typically a few dozen
// to a few hundred variables — never the k x k system) decides solvability;
// on success the inactivated values are solved and substituted back.
//
// The planning pass is purely structural (bitmask arithmetic, zero payload
// bytes touched), so a failed attempt costs no symbol work; the attempt
// schedule is rank-driven: after a failure with rank deficit d, the next
// attempt waits for d more distinct symbols — each new symbol raises the
// system rank by at most one, so no earlier attempt could have succeeded.
// On success the data decoder replays the plan over payloads with the
// cache-blocked kern:: row folds (one multi-row XOR per resolved node, plus
// the dense elimination over the inactivated rows).
//
// Both decoders share LtDecoderCore, the index-level machinery; decodability
// depends only on which indices arrived, so the structural decoder *is* the
// core and the two agree on the completion packet by construction. Decoders
// are pooled: reset() returns every container to size zero while keeping
// capacity, per the engine sink-pooling contract.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "fec/erasure_code.hpp"
#include "lt/lt_code.hpp"
#include "util/symbols.hpp"

namespace fountain::lt {

/// One peeling resolution: `check`'s last unknown neighbor was `source`.
struct PeelEvent {
  std::uint32_t check;
  std::uint32_t source;
};

/// Output of a successful (or failed) inactivation attempt. Masks are bit
/// vectors over the inactivated set, `words` 64-bit words wide, flattened
/// row-major (row r = [r * words, (r+1) * words)).
struct InactivationPlan {
  bool success = false;
  std::size_t deficit = 0;  // unsolved rank gap when !success
  std::size_t words = 0;
  /// Triangular resolution order: source + its defining check.
  std::vector<PeelEvent> resolved;
  /// Per resolved entry: its value's inactive-set combination.
  std::vector<std::uint64_t> resolved_masks;
  /// Inactivated source ids; bit b of any mask refers to inactive[b].
  std::vector<std::uint32_t> inactive;
  /// Accepted pivot rows of the dense GF(2) system, in acceptance order:
  /// equation check id, pivot variable (bit position), and the row's mask
  /// reduced against all earlier pivots.
  std::vector<std::uint32_t> pivot_check;
  std::vector<std::uint32_t> pivot_var;
  std::vector<std::uint64_t> pivot_masks;

  void clear();
};

/// Index-level LT decoding state shared by both decoder facades.
class LtDecoderCore {
 public:
  explicit LtDecoderCore(const LtCode& code);

  struct AddResult {
    bool new_index = false;   // false: duplicate (or already complete)
    std::int64_t check = -1;  // stored check id; -1 if redundant/duplicate
  };

  /// Registers `index`: duplicate detection, neighbor derivation, check
  /// storage. Does NOT run the ripple — callers copy the payload for the
  /// returned check id first, then call propagate() (two-phase so the data
  /// decoder's payload row exists before events referencing it fire).
  AddResult insert(std::uint32_t index);

  /// Runs the peeling ripple; appends one PeelEvent per recovered source.
  void propagate(std::vector<PeelEvent>& events);

  bool complete() const { return known_count_ == k_; }
  std::size_t distinct() const { return distinct_; }
  bool known(std::uint32_t source) const { return known_[source] != 0; }

  /// Neighbor list of a stored check (derivation order, all neighbors
  /// including ones known at arrival).
  std::span<const std::uint32_t> check_neighbors(std::uint32_t check) const {
    return {nbr_.data() + check_begin_[check],
            check_begin_[check + 1] - check_begin_[check]};
  }

  /// True when an inactivation attempt is due: peeling stalled short of
  /// completion, at least k distinct symbols in hand, and enough new
  /// symbols have arrived to cover the previous attempt's rank deficit.
  bool should_attempt() const;

  /// Runs the structural inactivation pass (see file comment). On success
  /// the caller performs any payload work and then calls finish_plan(); on
  /// failure the attempt schedule is advanced and the state is untouched.
  void plan_inactivation(InactivationPlan& plan);

  /// Commits a successful plan: every source becomes known.
  void finish_plan();

  void reset();

  // Diagnostics for tests and benches.
  std::size_t attempts() const { return attempts_; }
  std::size_t inactivated() const { return inactivated_; }
  std::size_t peeled() const { return peeled_; }

 private:
  const LtCode* code_;
  std::size_t k_;
  NeighborGenerator gen_;
  std::vector<std::uint32_t> nbrs_;  // insert() scratch

  std::unordered_set<std::uint32_t> seen_;
  std::size_t distinct_ = 0;

  // Check arena: neighbor lists back to back; check c's span is
  // [check_begin_[c], check_begin_[c+1]). unknown_count_[c] counts its
  // currently unknown neighbors.
  std::vector<std::uint32_t> nbr_;
  std::vector<std::uint32_t> check_begin_;  // size = checks + 1
  std::vector<std::uint32_t> unknown_count_;

  std::vector<std::uint8_t> known_;                 // per source
  std::vector<std::vector<std::uint32_t>> adj_;     // source -> check ids
  std::vector<std::uint32_t> fire_;                 // ripple queue
  std::size_t known_count_ = 0;

  // Attempt schedule (rank-driven, see file comment).
  std::size_t last_deficit_ = 0;
  std::size_t distinct_at_attempt_ = 0;
  std::size_t attempts_ = 0;
  std::size_t inactivated_ = 0;
  std::size_t peeled_ = 0;

  // Planning scratch, pooled across attempts.
  std::vector<std::uint32_t> plan_ucnt_;
  std::vector<std::uint8_t> plan_state_;  // 0 active, 1 resolved, 2 inactive
  std::vector<std::uint32_t> plan_pos_;   // resolved/inactive ordinal
  std::vector<std::uint32_t> plan_order_; // inactivation candidate order
  std::vector<std::uint32_t> plan_fire_;
  std::vector<std::uint8_t> plan_used_;   // per check: defining check flag
  std::vector<std::uint64_t> plan_mask_;  // one equation row
};

class LtStructuralDecoder final : public fec::StructuralDecoder {
 public:
  explicit LtStructuralDecoder(const LtCode& code) : core_(code) {}

  bool add_index(std::uint32_t index) override;
  bool complete() const override { return core_.complete(); }
  void reset() override { core_.reset(); }

  const LtDecoderCore& core() const { return core_; }

 private:
  LtDecoderCore core_;
  std::vector<PeelEvent> events_;   // scratch (contents unused)
  InactivationPlan plan_;           // scratch
};

class LtDataDecoder final : public fec::IncrementalDecoder {
 public:
  explicit LtDataDecoder(const LtCode& code);

  bool add_symbol(std::uint32_t index, util::ConstByteSpan data) override;
  bool complete() const override { return core_.complete(); }
  void reset() override;
  util::ConstSymbolView source() const override {
    return util::ConstSymbolView(nodes_.data(), nodes_.rows(),
                                 nodes_.symbol_size());
  }

  std::size_t distinct_received() const { return core_.distinct(); }
  const LtDecoderCore& core() const { return core_; }

 private:
  const std::uint8_t* payload_row(std::uint32_t check) const {
    return payload_.data() + static_cast<std::size_t>(check) * symbol_size_;
  }
  void store_payload(std::uint32_t check, util::ConstByteSpan data);
  void replay(const std::vector<PeelEvent>& events);
  void apply_plan(const InactivationPlan& plan);

  LtDecoderCore core_;
  std::size_t symbol_size_;
  util::SymbolMatrix nodes_;           // k source rows (the decode target)
  std::vector<std::uint8_t> payload_;  // stored check payloads, row-major
  std::vector<PeelEvent> events_;      // scratch
  InactivationPlan plan_;              // scratch
  std::vector<const std::uint8_t*> gather_;  // substitution-source scratch
  std::vector<std::uint8_t> mark_;     // plan replay: 1 resolved, 2 inactive
  std::vector<std::uint32_t> pos_;     // plan replay: resolved/inactive ordinal
};

}  // namespace fountain::lt
