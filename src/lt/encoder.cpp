#include "lt/encoder.hpp"

#include <cstring>
#include <stdexcept>

#include "kern/kernels.hpp"

namespace fountain::lt {

LtEncoder::LtEncoder(const LtCode& code, util::ConstSymbolView source)
    : code_(code),
      source_(source),
      gen_(code.distribution(), code.params().seed) {
  if (source.rows() != code.source_count() ||
      source.symbol_size() != code.symbol_size()) {
    throw std::invalid_argument("LtEncoder: source shape mismatch");
  }
  neighbors_.reserve(code.distribution().spike_degree() + 8);
  gather_.reserve(neighbors_.capacity());
}

std::size_t LtEncoder::state_bytes() const {
  // The stamped mark map inside the generator plus the pooled scratch; no
  // symbol storage at all — the O(k * P) is entirely the borrowed source.
  return code_.source_count() * sizeof(std::uint32_t) +
         neighbors_.capacity() * sizeof(std::uint32_t) +
         gather_.capacity() * sizeof(const std::uint8_t*);
}

void LtEncoder::write_symbol(std::uint32_t index, util::ByteSpan out) const {
  if (out.size() != code_.symbol_size()) {
    throw std::invalid_argument("LtEncoder: wrong buffer size");
  }
  gen_.generate(index, neighbors_);
  // First neighbor by copy, the rest folded four-at-a-time per L1-resident
  // destination tile; degree >= 1 always holds (soliton support starts at 1).
  std::memcpy(out.data(), source_.row(neighbors_[0]).data(), out.size());
  gather_.clear();
  for (std::size_t i = 1; i < neighbors_.size(); ++i) {
    gather_.push_back(source_.row(neighbors_[i]).data());
  }
  kern::xor_block_rows(out.data(), gather_.data(), gather_.size(),
                       out.size());
}

}  // namespace fountain::lt
