// Streaming LT encoder: write_symbol(i, out) regenerates symbol i's
// neighborhood from (seed, i) and folds the named source rows into the
// caller's buffer with one cache-blocked multi-row XOR pass
// (kern::xor_block_rows). Departure from the BlockEncoder contract, by
// design: the index space is unbounded, so NO index is out of range —
// encoded_count() is the code's nominal n, not a limit (see lt/lt_code.hpp).
// Per-symbol cost is mean_degree() row XORs (~ln(k/delta)); no allocation
// after construction (neighbor scratch and the gather list are pooled).
#pragma once

#include <cstdint>
#include <vector>

#include "fec/erasure_code.hpp"
#include "lt/lt_code.hpp"

namespace fountain::lt {

class LtEncoder final : public fec::BlockEncoder {
 public:
  /// Borrows `source` (k rows of symbol_size bytes; shape mismatches throw
  /// std::invalid_argument) and `code`, which must both outlive the encoder.
  LtEncoder(const LtCode& code, util::ConstSymbolView source);

  std::size_t source_count() const override { return code_.source_count(); }
  std::size_t encoded_count() const override { return code_.encoded_count(); }
  std::size_t symbol_size() const override { return code_.symbol_size(); }
  std::size_t state_bytes() const override;

  void write_symbol(std::uint32_t index, util::ByteSpan out) const override;

 private:
  const LtCode& code_;
  util::ConstSymbolView source_;
  // write_symbol is logically const (a pure function of the index); the
  // scratch it reuses is not.
  mutable NeighborGenerator gen_;
  mutable std::vector<std::uint32_t> neighbors_;
  mutable std::vector<const std::uint8_t*> gather_;
};

}  // namespace fountain::lt
