// Discrete-event co-simulation of one digital-fountain server and a
// population of receivers — the substitute for the paper's Berkeley/CMU/
// Cornell testbed (Section 7.3). Produces per-receiver loss and efficiency
// figures in the same form as the paper's Figure 8 scatter plots.
#pragma once

#include <cstdint>
#include <vector>

#include "fec/erasure_code.hpp"
#include "proto/client.hpp"
#include "proto/config.hpp"

namespace fountain::proto {

struct ReceiverReport {
  bool completed = false;
  double configured_base_loss = 0.0;
  double observed_loss = 0.0;
  double eta = 0.0;    // total protocol efficiency
  double eta_c = 0.0;  // coding efficiency
  double eta_d = 0.0;  // distinctness efficiency
  unsigned level_changes = 0;
  std::uint64_t rounds_to_complete = 0;
};

struct SessionResult {
  std::vector<ReceiverReport> receivers;
};

/// Runs a session until every receiver completes (or `max_rounds` elapse).
/// One SimClient per entry of `clients`; receiver i gets seed seed+i.
SessionResult run_session(const fec::ErasureCode& code,
                          const ProtocolConfig& proto,
                          const std::vector<SimClientConfig>& clients,
                          std::uint64_t seed, std::uint64_t max_rounds);

}  // namespace fountain::proto
