// The Section 7 prototype session as an engine scenario — the substitute for
// the paper's Berkeley/CMU/Cornell testbed (Section 7.3). run_session wires
// one FountainServer source and a population of adaptive receivers into the
// discrete-event session engine (one engine tick = one protocol round) and
// reports per-receiver loss and efficiency figures in the same form as the
// paper's Figure 8 scatter plots.
#pragma once

#include <cstdint>
#include <vector>

#include "cc/policies.hpp"
#include "engine/session.hpp"
#include "engine/topology.hpp"
#include "fec/codec_registry.hpp"
#include "fec/erasure_code.hpp"
#include "proto/config.hpp"

namespace fountain::proto {

/// A shared last-mile link for a group of receivers: the engine models it
/// as a SharedBottleneck fluid queue of `capacity` packets per round, so
/// the aggregate subscription level of the group determines everyone's
/// queueing loss (one member joining a layer raises its siblings' loss).
struct BottleneckSpec {
  double capacity = 0.0;  // packets per round through the shared queue
};

/// A full distribution network for a session: the server sits at `root` and
/// each receiver with `SimClientConfig::leaf >= 0` is attached to that node,
/// its packets crossing every edge on the root → leaf path through one
/// engine::PathLink (one SharedBottleneck per edge, materialized once and
/// shared by all receivers, so overlapping paths couple). `model_latency`
/// sums edge RTTs into a delivery latency for surviving packets; leave it
/// false for loss-only studies. Receivers whose paths share any edge must
/// fit in one engine cohort (the engine rejects the scenario otherwise, at
/// any thread count) — in practice: one tree, one cohort.
struct TopologySpec {
  engine::Topology topology;
  engine::NodeId root = 0;
  bool model_latency = false;
};

/// Per-receiver scenario knobs (the old SimClient's configuration): the
/// background channel plus the Section 7.2 subscription machinery, which the
/// engine's adaptive SubscriptionPolicy executes. Two extensions select the
/// adaptation plane introduced with src/cc/: `loss_driven` swaps the
/// burst-probe machinery for a cc::LossDrivenPolicy controller, and
/// `bottleneck` moves the receiver from a private Bernoulli channel onto a
/// shared BottleneckSpec queue (base_loss then compounds as its private
/// tail loss; the synthetic capacity-drift environment is off since real
/// congestion comes from the queue).
struct SimClientConfig {
  double base_loss = 0.05;             // background loss on every packet
  double congestion_extra_loss = 0.45; // added when subscribed above capacity
  double capacity_change_prob = 0.005; // per-round capacity re-draw
  unsigned initial_level = 0;
  unsigned initial_capacity = 3;       // in [0, layers)
  bool fixed_level = false;            // single-layer experiments pin level 0
  engine::Time join = 0;               // asynchronous joins (churn scenarios)
  int bottleneck = -1;                 // index into the session's bottleneck
                                       // list; -1 = private channel
  int leaf = -1;                       // node of the session's TopologySpec
                                       // this receiver sits at; -1 = none.
                                       // Mutually exclusive with bottleneck.
  bool loss_driven = false;            // use cc::LossDrivenPolicy
  cc::LossDrivenConfig loss_driven_config;  // knobs when loss_driven
};

struct ReceiverReport {
  bool completed = false;
  engine::ReceiverOutcome outcome = engine::ReceiverOutcome::kHorizon;
  double configured_base_loss = 0.0;
  double observed_loss = 0.0;
  double eta = 0.0;    // total protocol efficiency
  double eta_c = 0.0;  // coding efficiency
  double eta_d = 0.0;  // distinctness efficiency
  unsigned level_changes = 0;
  unsigned final_level = 0;
  unsigned peak_level = 0;
  std::uint64_t rounds_to_complete = 0;
  // Fault-plane counters. The first two mirror the engine report (zero
  // without fault injection); the last two are filled by the wire-path
  // client (fetch_control) and stay zero in pure engine scenarios.
  std::uint64_t corrupt_rejected = 0;    // checksum/framing rejects
  std::uint64_t duplicates_dropped = 0;  // extra copies discarded
  std::uint64_t retries = 0;             // control-channel repeat requests
  std::uint64_t failovers = 0;           // control-channel mirror switches
};

struct SessionResult {
  std::vector<ReceiverReport> receivers;
};

/// Translates one client's knobs into the engine policy it runs under.
engine::SubscriptionPolicy make_policy(const SimClientConfig& client,
                                       const ProtocolConfig& proto,
                                       std::uint64_t seed);

/// Runs a session until every receiver completes (or `max_rounds` elapse).
/// One receiver per entry of `clients`; receiver i's channel and adaptation
/// streams derive from seed + i deterministically. `threads` is forwarded
/// to engine::SessionConfig::threads (0 = one worker per hardware thread);
/// results are byte-identical at every thread count.
SessionResult run_session(const fec::ErasureCode& code,
                          const ProtocolConfig& proto,
                          const std::vector<SimClientConfig>& clients,
                          std::uint64_t seed, std::uint64_t max_rounds,
                          std::size_t threads = 0);

/// As above with shared bottlenecks: clients whose `bottleneck` index is
/// >= 0 share the corresponding BottleneckSpec queue, so their levels
/// couple through queueing loss. Throws std::out_of_range on a client
/// naming a bottleneck the list does not have. Receivers sharing a queue
/// must fit in one engine cohort (the engine rejects the scenario
/// otherwise, at any thread count).
SessionResult run_session(const fec::ErasureCode& code,
                          const ProtocolConfig& proto,
                          const std::vector<SimClientConfig>& clients,
                          const std::vector<BottleneckSpec>& bottlenecks,
                          std::uint64_t seed, std::uint64_t max_rounds,
                          std::size_t threads = 0);

/// As above over a distribution network: clients whose `leaf` is >= 0 run
/// behind a PathLink across every edge of the root → leaf path, so loss
/// compounds along the path and receivers whose paths overlap couple through
/// the shared per-edge queues. Throws std::out_of_range on a client naming a
/// node the topology does not have and std::invalid_argument if a client
/// sets both `leaf` and `bottleneck` (or if no path exists).
SessionResult run_session(const fec::ErasureCode& code,
                          const ProtocolConfig& proto,
                          const std::vector<SimClientConfig>& clients,
                          const TopologySpec& topology, std::uint64_t seed,
                          std::uint64_t max_rounds, std::size_t threads = 0);

/// As above, but the code is instantiated from advertised wire/control
/// fields via the built-in fec::CodecRegistry — the form a real deployment
/// uses, where server and receivers share only (codec id, CodecParams)
/// rather than an ErasureCode object.
SessionResult run_session(fec::CodecId codec, const fec::CodecParams& params,
                          const ProtocolConfig& proto,
                          const std::vector<SimClientConfig>& clients,
                          std::uint64_t seed, std::uint64_t max_rounds,
                          std::size_t threads = 0);

}  // namespace fountain::proto
