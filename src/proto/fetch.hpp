// The retrying control channel. Section 7.3's client begins with one UDP
// unicast request for the ControlInfo; a single lost datagram there would
// stall the whole transfer before the fountain even starts. fetch_control
// hardens that first step: bounded retries per mirror with exponential
// backoff and seeded jitter, then failover down a mirror list — the paper's
// mirrored-server story ("symbols from any sender are interchangeable")
// applied to the one message that is NOT interchangeable loss-tolerant.
//
// The transport is injected as a function, so the same loop runs over a real
// UdpSocket (examples/udp_fountain), over an in-memory fake in unit tests,
// and the sleeper is injectable so tests assert the exact backoff schedule
// without waiting wall-clock time. All jitter derives from FetchPolicy::seed:
// two identically-seeded fetches issue identical request schedules.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "proto/control.hpp"

namespace fountain::proto {

struct FetchPolicy {
  /// Requests sent to one mirror before failing over to the next.
  std::size_t attempts_per_mirror = 3;
  /// Timeout of the first attempt at each mirror; doubles (times
  /// backoff_multiplier) per retry, capped at max_backoff. The same value is
  /// the base of the sleep before that retry.
  std::chrono::milliseconds initial_timeout{200};
  double backoff_multiplier = 2.0;
  /// Retry sleeps are scaled by a uniform factor in [1 - jitter, 1 + jitter]
  /// so a thundering herd of restarting clients decorrelates.
  double jitter = 0.1;
  std::chrono::milliseconds max_backoff{2000};
  /// Drives the jitter draws; identical seeds replay identical schedules.
  std::uint64_t seed = 0;
};

enum class FetchStatus : std::uint8_t {
  kOk = 0,         // a mirror answered with a parseable ControlInfo
  kExhausted = 1,  // every mirror used up its attempts
};

struct FetchResult {
  FetchStatus status = FetchStatus::kExhausted;
  ControlInfo info;          // valid iff status == kOk
  std::size_t mirror = 0;    // index of the mirror that answered (kOk)
  std::size_t attempts = 0;  // total requests issued
  std::size_t retries = 0;   // repeat requests to the same mirror
  std::size_t failovers = 0; // switches to a later mirror
  /// Parse failure of the most recent reply, when a mirror answered with
  /// bytes that did not survive ControlInfo::parse (a reply that is damaged
  /// is retried exactly like one that never came).
  net::ParseError last_error = net::ParseError::kNone;

  bool ok() const { return status == FetchStatus::kOk; }
  explicit operator bool() const { return ok(); }
};

/// One control-channel request: ask `mirror` and wait up to `timeout`;
/// nullopt models a timeout or unreachable mirror.
using FetchTransport = std::function<std::optional<std::vector<std::uint8_t>>(
    std::size_t mirror, std::chrono::milliseconds timeout)>;

/// Injected sleep between retries; a null function skips sleeping (tests).
using FetchSleeper = std::function<void(std::chrono::milliseconds)>;

/// Runs the retry/failover loop over mirrors [0, mirror_count). Throws
/// std::invalid_argument on a null transport, zero mirrors, zero attempts,
/// backoff_multiplier < 1, or negative jitter; never throws afterwards.
FetchResult fetch_control(const FetchTransport& transport,
                          std::size_t mirror_count, const FetchPolicy& policy,
                          const FetchSleeper& sleeper = {});

}  // namespace fountain::proto
