#include "proto/control.hpp"

#include <cstring>
#include <stdexcept>

namespace fountain::proto {

namespace {

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out + 4, static_cast<std::uint32_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

std::uint64_t get_u64(const std::uint8_t* in) {
  return (static_cast<std::uint64_t>(get_u32(in)) << 32) | get_u32(in + 4);
}

}  // namespace

fec::CodecParams ControlInfo::codec_params() const {
  fec::CodecParams params;
  params.k = source_count;
  params.stretch = static_cast<double>(encoded_count) /
                   static_cast<double>(source_count);
  params.symbol_size = symbol_size;
  params.seed = graph_seed;
  params.variant = variant;
  return params;
}

core::TornadoParams ControlInfo::tornado_params() const {
  core::TornadoParams params =
      variant == 0
          ? core::TornadoParams::tornado_a(source_count, symbol_size,
                                           graph_seed)
          : core::TornadoParams::tornado_b(source_count, symbol_size,
                                           graph_seed);
  params.stretch = static_cast<double>(encoded_count) /
                   static_cast<double>(source_count);
  return params;
}

void ControlInfo::serialize(util::ByteSpan out) const {
  if (out.size() < kWireSize) {
    throw std::invalid_argument("ControlInfo: buffer too small");
  }
  put_u32(out.data(), kMagic);
  put_u64(out.data() + 4, file_bytes);
  put_u32(out.data() + 12, symbol_size);
  put_u32(out.data() + 16, source_count);
  put_u32(out.data() + 20, encoded_count);
  put_u64(out.data() + 24, graph_seed);
  put_u32(out.data() + 32, variant);
  put_u32(out.data() + 36, layers);
  put_u64(out.data() + 40, permutation_seed);
  put_u32(out.data() + 48, static_cast<std::uint32_t>(codec));
}

ControlParseResult ControlInfo::parse(util::ConstByteSpan in) {
  ControlParseResult result;
  if (in.size() < kWireSize) {
    result.error = net::ParseError::kTooShort;
    return result;
  }
  if (get_u32(in.data()) != kMagic) {
    result.error = net::ParseError::kBadMagic;
    return result;
  }
  const std::uint32_t codec = get_u32(in.data() + 48);
  if (codec > 0xff || !fec::is_known_codec(static_cast<std::uint8_t>(codec))) {
    result.error = net::ParseError::kBadCodec;
    return result;
  }
  ControlInfo info;
  info.file_bytes = get_u64(in.data() + 4);
  info.symbol_size = get_u32(in.data() + 12);
  info.source_count = get_u32(in.data() + 16);
  info.encoded_count = get_u32(in.data() + 20);
  info.graph_seed = get_u64(in.data() + 24);
  info.variant = get_u32(in.data() + 32);
  info.layers = get_u32(in.data() + 36);
  info.permutation_seed = get_u64(in.data() + 40);
  info.codec = static_cast<fec::CodecId>(codec);
  if (info.layers == 0 || info.layers > net::kMaxGroups) {
    result.error = net::ParseError::kGroupOutOfRange;
    return result;
  }
  if (info.symbol_size == 0 || info.source_count == 0 ||
      info.encoded_count <= info.source_count) {
    result.error = net::ParseError::kBadField;
    return result;
  }
  result.info = info;
  return result;
}

util::SymbolMatrix file_to_symbols(util::ConstByteSpan bytes,
                                   std::size_t symbol_size) {
  if (symbol_size == 0) {
    throw std::invalid_argument("file_to_symbols: zero symbol size");
  }
  const std::size_t k =
      bytes.empty() ? 1 : (bytes.size() + symbol_size - 1) / symbol_size;
  util::SymbolMatrix symbols(k, symbol_size);
  if (!bytes.empty()) {
    std::memcpy(symbols.data(), bytes.data(), bytes.size());
  }
  return symbols;
}

std::vector<std::uint8_t> symbols_to_file(util::ConstSymbolView symbols,
                                          std::uint64_t file_bytes) {
  if (file_bytes > symbols.size_bytes()) {
    throw std::invalid_argument("symbols_to_file: length exceeds data");
  }
  return std::vector<std::uint8_t>(symbols.data(),
                                   symbols.data() + file_bytes);
}

ControlInfo make_control_info(std::uint64_t file_bytes,
                              std::size_t symbol_size, unsigned variant,
                              std::uint64_t graph_seed, unsigned layers,
                              std::uint64_t permutation_seed,
                              fec::CodecId codec) {
  ControlInfo info;
  info.file_bytes = file_bytes;
  info.symbol_size = static_cast<std::uint32_t>(symbol_size);
  info.source_count = static_cast<std::uint32_t>(
      file_bytes == 0 ? 1 : (file_bytes + symbol_size - 1) / symbol_size);
  info.graph_seed = graph_seed;
  info.variant = variant;
  info.layers = layers;
  info.permutation_seed = permutation_seed;
  info.codec = codec;
  // n = 2k, the stretch factor used throughout the paper.
  info.encoded_count = 2 * info.source_count;
  return info;
}

}  // namespace fountain::proto
