// Tunables for the digital-fountain distribution protocol of Section 7.
//
// Units: all *_period / *_interval / *_length fields count protocol rounds
// (one round = one normal-rate packet per subscribed layer; burst rounds
// send two); *_window counts
// packets; drop_loss_threshold is a fraction in [0, 1]. The one hard
// invariant is layers >= 1 (clients address level layers-1). Degenerate
// settings are defined, not fatal: sp_base_interval == 0 makes every round a
// synchronization point, burst_period == 0 or burst_length == 0 disables
// bursts, and burst_length >= burst_period means the server bursts forever.
#pragma once

#include <cstddef>

namespace fountain::proto {

struct ProtocolConfig {
  /// Number of multicast groups g (the paper's prototype uses 4; 1 gives the
  /// single-layer protocol).
  unsigned layers = 4;

  /// Synchronization points: layer l carries an SP every
  /// sp_base_interval << l rounds — lower-bandwidth layers get more frequent
  /// join opportunities, as in Vicisano-Rizzo-Crowcroft.
  std::size_t sp_base_interval = 2;

  /// Every burst_period rounds the server sends burst_length rounds at twice
  /// the normal rate on each layer (the implicit join probe).
  std::size_t burst_period = 16;
  std::size_t burst_length = 1;

  /// Receivers inspect the first burst_probe_window packets addressed to
  /// them during a burst; observing zero loss there clears them to move up a
  /// level at the next SP.
  std::size_t burst_probe_window = 32;

  /// A receiver observing more than this loss fraction within a round drops
  /// one subscription level (congestion back-off).
  double drop_loss_threshold = 0.45;
};

}  // namespace fountain::proto
