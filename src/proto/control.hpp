// Control-channel metadata (Section 7.3: "a UDP unicast thread which
// provides various control information such as multicast group information
// and file length to the client"). A client needs these fields to construct
// the identical Tornado cascade as the server and to reassemble the file:
// everything else flows over the data channel.
//
// Also provides file <-> symbol-matrix framing: a real file rarely divides
// evenly into packets, so the final packet is zero-padded and the true byte
// length travels in the control info.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cascade.hpp"
#include "fec/codec_registry.hpp"
#include "net/packet_header.hpp"
#include "util/symbols.hpp"

namespace fountain::proto {

struct ControlParseResult;

struct ControlInfo {
  static constexpr std::uint32_t kMagic = 0x46544E32;  // "FTN2"
  static constexpr std::size_t kWireSize = 52;

  std::uint64_t file_bytes = 0;     // true length before padding
  std::uint32_t symbol_size = 0;    // P
  std::uint32_t source_count = 0;   // k
  std::uint32_t encoded_count = 0;  // n (so stretch = n / k)
  std::uint64_t graph_seed = 0;     // code construction seed
  std::uint32_t variant = 0;        // codec sub-family (fec::CodecParams)
  std::uint32_t layers = 1;         // multicast groups
  std::uint64_t permutation_seed = 0;
  /// Erasure-code family; must match the codec byte of the data packets.
  fec::CodecId codec = fec::CodecId::kTornado;

  /// The registry parameters a client must use: feed these plus `codec` to
  /// fec::CodecRegistry to instantiate the server's exact code.
  fec::CodecParams codec_params() const;

  /// Derives the Tornado parameters a client must use (codec == kTornado).
  core::TornadoParams tornado_params() const;

  void serialize(util::ByteSpan out) const;
  /// Total function over arbitrary bytes: never throws. Checks length,
  /// magic, codec byte, and field consistency (including layers in
  /// [1, net::kMaxGroups]) in that order; see ControlParseResult.
  static ControlParseResult parse(util::ConstByteSpan in);

  friend bool operator==(const ControlInfo&, const ControlInfo&) = default;
};

/// Outcome of ControlInfo::parse — the control channel shares the wire
/// ParseError taxonomy (net/packet_header.hpp): either kNone and a
/// consistent ControlInfo, or the first failed check (info is then
/// default-constructed and meaningless).
struct ControlParseResult {
  net::ParseError error = net::ParseError::kNone;
  ControlInfo info;

  bool ok() const { return error == net::ParseError::kNone; }
  explicit operator bool() const { return ok(); }
};

/// Splits `bytes` into k symbols of `symbol_size`, zero-padding the tail.
/// k is ceil(size / symbol_size) (at least 1).
util::SymbolMatrix file_to_symbols(util::ConstByteSpan bytes,
                                   std::size_t symbol_size);

/// Reassembles the original byte stream (drops the padding).
std::vector<std::uint8_t> symbols_to_file(util::ConstSymbolView symbols,
                                          std::uint64_t file_bytes);

/// Builds the control info a server would advertise for this file.
ControlInfo make_control_info(std::uint64_t file_bytes,
                              std::size_t symbol_size, unsigned variant,
                              std::uint64_t graph_seed, unsigned layers,
                              std::uint64_t permutation_seed,
                              fec::CodecId codec = fec::CodecId::kTornado);

}  // namespace fountain::proto
