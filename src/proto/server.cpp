#include "proto/server.hpp"

namespace fountain::proto {

FountainServer::FountainServer(const ProtocolConfig& config,
                               std::size_t encoding_length,
                               std::uint64_t permutation_seed)
    : config_(config), schedule_(config.layers, encoding_length) {
  util::Rng rng(permutation_seed);
  permutation_ = rng.permutation(encoding_length);
}

bool FountainServer::is_burst_round(std::uint64_t wall_round) const {
  if (config_.burst_period == 0 || config_.burst_length == 0) return false;
  if (config_.burst_length >= config_.burst_period) return true;
  // Bursts close each period so that a session never opens with one.
  return (wall_round % config_.burst_period) >=
         config_.burst_period - config_.burst_length;
}

bool FountainServer::is_sync_point(unsigned layer,
                                   std::uint64_t wall_round) const {
  const std::uint64_t interval = config_.sp_base_interval
                                 << static_cast<std::uint64_t>(layer);
  return interval == 0 ? true : (wall_round % interval) == 0;
}

FountainServer::Round FountainServer::next_round() {
  Round round;
  round.number = wall_round_;
  round.burst = is_burst_round(wall_round_);
  round.layers.reserve(config_.layers);
  const std::uint64_t steps = round.burst ? 2 : 1;
  for (unsigned l = 0; l < config_.layers; ++l) {
    LayerRound lr;
    lr.layer = l;
    lr.sync_point = is_sync_point(l, wall_round_);
    for (std::uint64_t s = 0; s < steps; ++s) {
      schedule_.append_layer_packets(l, schedule_round_ + s, lr.indices);
    }
    for (auto& index : lr.indices) index = permutation_[index];
    round.layers.push_back(std::move(lr));
  }
  schedule_round_ += steps;
  ++wall_round_;
  return round;
}

}  // namespace fountain::proto
