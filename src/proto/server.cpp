#include "proto/server.hpp"

namespace fountain::proto {

FountainServer::FountainServer(const ProtocolConfig& config,
                               std::size_t encoding_length,
                               std::uint64_t permutation_seed,
                               fec::CodecId codec)
    : config_(config),
      schedule_(config.layers, encoding_length),
      codec_(codec) {
  util::Rng rng(permutation_seed);
  permutation_ = rng.permutation(encoding_length);
}

bool FountainServer::is_burst_round(std::uint64_t wall_round) const {
  if (config_.burst_period == 0 || config_.burst_length == 0) return false;
  if (config_.burst_length >= config_.burst_period) return true;
  // Bursts close each period so that a session never opens with one.
  return (wall_round % config_.burst_period) >=
         config_.burst_period - config_.burst_length;
}

bool FountainServer::is_sync_point(unsigned layer,
                                   std::uint64_t wall_round) const {
  const std::uint64_t interval = config_.sp_base_interval
                                 << static_cast<std::uint64_t>(layer);
  return interval == 0 ? true : (wall_round % interval) == 0;
}

std::uint64_t FountainServer::schedule_rounds_before(
    std::uint64_t wall_round) const {
  if (config_.burst_period == 0 || config_.burst_length == 0) {
    return wall_round;
  }
  if (config_.burst_length >= config_.burst_period) return 2 * wall_round;
  const std::uint64_t full = wall_round / config_.burst_period;
  const std::uint64_t rem = wall_round % config_.burst_period;
  const std::uint64_t open = config_.burst_period - config_.burst_length;
  const std::uint64_t bursts =
      full * config_.burst_length + (rem > open ? rem - open : 0);
  return wall_round + bursts;
}

FountainServer::Round FountainServer::round_at(std::uint64_t wall_round) const {
  Round round;
  round.number = wall_round;
  round.burst = is_burst_round(wall_round);
  round.layers.reserve(config_.layers);
  const std::uint64_t schedule_round = schedule_rounds_before(wall_round);
  const std::uint64_t steps = round.burst ? 2 : 1;
  for (unsigned l = 0; l < config_.layers; ++l) {
    LayerRound lr;
    lr.layer = l;
    lr.sync_point = is_sync_point(l, wall_round);
    for (std::uint64_t s = 0; s < steps; ++s) {
      schedule_.append_layer_packets(l, schedule_round + s, lr.indices);
    }
    for (auto& index : lr.indices) index = permutation_[index];
    round.layers.push_back(std::move(lr));
  }
  return round;
}

void FountainServer::emit(std::uint64_t round,
                          engine::PacketBatch& batch) const {
  const bool burst = is_burst_round(round);
  batch.burst = burst;
  const std::uint64_t schedule_round = schedule_rounds_before(round);
  const std::uint64_t steps = burst ? 2 : 1;
  for (unsigned l = 0; l < config_.layers; ++l) {
    const auto begin = static_cast<std::uint32_t>(batch.indices.size());
    for (std::uint64_t s = 0; s < steps; ++s) {
      schedule_.append_layer_packets(l, schedule_round + s, batch.indices);
    }
    for (std::size_t i = begin; i < batch.indices.size(); ++i) {
      batch.indices[i] = permutation_[batch.indices[i]];
    }
    batch.segments.push_back(engine::PacketBatch::Segment{
        l, is_sync_point(l, round), begin,
        static_cast<std::uint32_t>(batch.indices.size())});
  }
}

}  // namespace fountain::proto
