#include "proto/client.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace fountain::proto {

StatisticalDataClient::StatisticalDataClient(const fec::ErasureCode& code,
                                             double initial_margin,
                                             double step)
    : code_(code),
      initial_margin_(initial_margin),
      threshold_(1.0 + initial_margin),
      step_(step),
      store_(code.encoded_count(), code.symbol_size()),
      have_(code.encoded_count(), 0),
      decoder_(code.make_decoder()) {
  if (initial_margin < 0.0 || step <= 0.0) {
    throw std::invalid_argument("StatisticalDataClient: bad margins");
  }
  order_.reserve(code.encoded_count());
}

void StatisticalDataClient::reset() {
  threshold_ = 1.0 + initial_margin_;
  std::fill(have_.begin(), have_.end(), 0);
  order_.clear();
  decoder_->reset();
  distinct_ = 0;
  attempts_ = 0;
  rejected_ = 0;
  duplicates_ = 0;
  complete_ = false;
}

bool StatisticalDataClient::on_packet(std::uint32_t index,
                                      util::ConstByteSpan payload) {
  if (complete_) return true;
  if (index >= code_.encoded_count() ||
      payload.size() != code_.symbol_size()) {
    ++rejected_;  // adversarial or mismatched sender: drop, never decode
    return complete_;
  }
  if (have_[index]) {
    ++duplicates_;
  } else {
    have_[index] = 1;
    std::memcpy(store_.row(index).data(), payload.data(), payload.size());
    order_.push_back(index);
    ++distinct_;
  }
  const auto needed = static_cast<std::size_t>(
      threshold_ * static_cast<double>(code_.source_count()));
  if (distinct_ >= needed) {
    if (try_decode()) {
      complete_ = true;
    } else {
      threshold_ += step_;
    }
  }
  return complete_;
}

bool StatisticalDataClient::try_decode() {
  ++attempts_;
  decoder_->reset();  // one decoder, reused across attempts
  for (const std::uint32_t index : order_) {
    if (decoder_->add_symbol(index, store_.row(index))) return true;
  }
  return decoder_->complete();
}

util::ConstSymbolView StatisticalDataClient::source() const {
  if (!complete_) {
    throw std::logic_error("StatisticalDataClient: not complete");
  }
  return decoder_->source();
}

}  // namespace fountain::proto
