#include "proto/client.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace fountain::proto {

SimClient::SimClient(const fec::ErasureCode& code, const ProtocolConfig& proto,
                     const SimClientConfig& config, std::uint64_t seed)
    : code_(code),
      proto_(proto),
      config_(config),
      decoder_(code.make_structural_decoder()),
      seen_(code.encoded_count(), 0),
      rng_(seed),
      level_(config.initial_level),
      capacity_(config.initial_capacity),
      max_level_(proto.layers - 1) {
  level_ = std::min(level_, max_level_);
  capacity_ = std::min(capacity_, max_level_);
}

bool SimClient::on_round(const FountainServer::Round& round) {
  if (complete_) return true;

  // Capacity (the receiver's sustainable subscription level) drifts over
  // time, modelling changing cross-traffic on its bottleneck.
  if (!config_.fixed_level && rng_.chance(config_.capacity_change_prob)) {
    capacity_ = static_cast<unsigned>(rng_.below(max_level_ + 1));
  }

  const bool congested = level_ > capacity_;
  const double loss_prob =
      congested ? std::min(0.95, config_.base_loss +
                                     config_.congestion_extra_loss)
                : config_.base_loss;

  std::uint64_t round_addressed = 0;
  std::uint64_t round_lost = 0;
  std::uint64_t probe_seen = 0;
  bool probe_loss = false;
  bool sp_on_my_level = false;

  for (const auto& lr : round.layers) {
    if (lr.layer > level_) continue;
    if (lr.layer == level_ && lr.sync_point) sp_on_my_level = true;
    for (const std::uint32_t index : lr.indices) {
      ++round_addressed;
      const bool lost = rng_.chance(loss_prob);
      if (round.burst && probe_seen < proto_.burst_probe_window) {
        ++probe_seen;
        if (lost) probe_loss = true;
      }
      if (lost) {
        ++round_lost;
        continue;
      }
      ++total_received_;
      if (!seen_[index]) {
        seen_[index] = 1;
        ++distinct_;
      }
      if (!complete_ && decoder_->add_index(index)) {
        complete_ = true;
        addressed_ += round_addressed;
        lost_ += round_lost;
        return true;
      }
    }
  }
  addressed_ += round_addressed;
  lost_ += round_lost;

  if (config_.fixed_level) return complete_;

  // Congestion back-off: a bad round forces an immediate drop.
  const double round_loss =
      round_addressed == 0
          ? 0.0
          : static_cast<double>(round_lost) /
                static_cast<double>(round_addressed);
  if (round_loss > proto_.drop_loss_threshold && level_ > 0) {
    --level_;
    ++level_changes_;
    join_cleared_ = false;
    return complete_;
  }

  // A clean burst probe clears the receiver to move up at the next SP.
  if (round.burst && probe_seen > 0 && !probe_loss) join_cleared_ = true;

  if (sp_on_my_level && join_cleared_ && level_ < max_level_) {
    ++level_;
    ++level_changes_;
    join_cleared_ = false;
  }
  return complete_;
}

double SimClient::observed_loss() const {
  return addressed_ == 0
             ? 0.0
             : static_cast<double>(lost_) / static_cast<double>(addressed_);
}

double SimClient::efficiency() const {
  return total_received_ == 0
             ? 0.0
             : static_cast<double>(code_.source_count()) /
                   static_cast<double>(total_received_);
}

double SimClient::coding_efficiency() const {
  return distinct_ == 0 ? 0.0
                        : static_cast<double>(code_.source_count()) /
                              static_cast<double>(distinct_);
}

double SimClient::distinctness_efficiency() const {
  return total_received_ == 0
             ? 0.0
             : static_cast<double>(distinct_) /
                   static_cast<double>(total_received_);
}

StatisticalDataClient::StatisticalDataClient(const core::TornadoCode& code,
                                             double initial_margin,
                                             double step)
    : code_(code),
      threshold_(1.0 + initial_margin),
      step_(step),
      store_(code.encoded_count(), code.symbol_size()),
      have_(code.encoded_count(), 0) {
  if (initial_margin < 0.0 || step <= 0.0) {
    throw std::invalid_argument("StatisticalDataClient: bad margins");
  }
  order_.reserve(code.encoded_count());
}

bool StatisticalDataClient::on_packet(std::uint32_t index,
                                      util::ConstByteSpan payload) {
  if (complete_) return true;
  if (index >= code_.encoded_count()) {
    throw std::out_of_range("StatisticalDataClient: index");
  }
  if (payload.size() != code_.symbol_size()) {
    throw std::invalid_argument("StatisticalDataClient: payload size");
  }
  if (!have_[index]) {
    have_[index] = 1;
    std::memcpy(store_.row(index).data(), payload.data(), payload.size());
    order_.push_back(index);
    ++distinct_;
  }
  const auto needed = static_cast<std::size_t>(
      threshold_ * static_cast<double>(code_.source_count()));
  if (distinct_ >= needed) {
    if (try_decode()) {
      complete_ = true;
    } else {
      threshold_ += step_;
    }
  }
  return complete_;
}

bool StatisticalDataClient::try_decode() {
  ++attempts_;
  decoder_ = code_.make_decoder();
  for (const std::uint32_t index : order_) {
    if (decoder_->add_symbol(index, store_.row(index))) return true;
  }
  return decoder_->complete();
}

util::ConstSymbolView StatisticalDataClient::source() const {
  if (!complete_ || !decoder_) {
    throw std::logic_error("StatisticalDataClient: not complete");
  }
  return decoder_->source();
}

}  // namespace fountain::proto
