// The digital-fountain server (Section 7.1): schedules encoding packets
// across g multicast layers per the reverse-binary scheme, marks
// synchronization points, and periodically doubles its rate for one round
// (the burst that lets receivers probe for spare capacity without explicit
// join experiments). During a burst the schedule simply advances twice as
// fast, so burst packets are fresh data and the One Level Property is kept.
//
// The server is an engine::PacketSource: round_at()/emit() are pure
// functions of the wall round (burst doubling has a closed form, see
// schedule_rounds_before), so session cohorts can replay the transmission
// plan from any point without server-side state.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/packet_source.hpp"
#include "fec/codec_id.hpp"
#include "fec/erasure_code.hpp"
#include "proto/config.hpp"
#include "sched/layered_schedule.hpp"
#include "util/random.hpp"

namespace fountain::proto {

class FountainServer final : public engine::PacketSource {
 public:
  /// `permutation_seed` shuffles the mapping from schedule slots to encoding
  /// indices (the paper's servers cycle through a random permutation of the
  /// encoding); clients learn it from the control channel, but only the
  /// scheduler here needs it. `codec` tags the code family the server
  /// transmits (engine sessions quarantine mismatched sources).
  FountainServer(const ProtocolConfig& config, std::size_t encoding_length,
                 std::uint64_t permutation_seed = 0x5eed,
                 fec::CodecId codec = fec::CodecId::kTornado);

  /// Convenience: schedule over the encoding of `code` and tag its family —
  /// the shape and codec id are the only things the scheduler needs from it.
  FountainServer(const ProtocolConfig& config, const fec::ErasureCode& code,
                 std::uint64_t permutation_seed = 0x5eed)
      : FountainServer(config, code.encoded_count(), permutation_seed,
                       code.codec_id()) {}

  struct LayerRound {
    unsigned layer = 0;
    bool sync_point = false;
    std::vector<std::uint32_t> indices;  // global encoding indices, in order
  };

  struct Round {
    std::uint64_t number = 0;
    bool burst = false;
    std::vector<LayerRound> layers;
  };

  /// The transmissions of wall round `wall_round` — a pure function.
  Round round_at(std::uint64_t wall_round) const;

  /// Convenience cursor over round_at for sequential drivers.
  Round next_round() { return round_at(wall_round_++); }

  // engine::PacketSource:
  fec::CodecId codec_id() const override { return codec_; }
  unsigned layer_count() const override { return config_.layers; }
  /// Exact cycle average: over one schedule cycle every encoding index is
  /// sent exactly layer_rate times per layer regardless of a short final
  /// block, so a level-L subscriber averages n * level_rate(L) / B packets
  /// per (non-burst) round.
  double subscribed_rate(unsigned level) const override {
    return static_cast<double>(schedule_.level_rate(level)) *
           static_cast<double>(schedule_.encoding_length()) /
           static_cast<double>(schedule_.block_size());
  }
  void emit(std::uint64_t round, engine::PacketBatch& batch) const override;

  const sched::LayeredSchedule& schedule() const { return schedule_; }
  const ProtocolConfig& config() const { return config_; }

  bool is_burst_round(std::uint64_t wall_round) const;
  bool is_sync_point(unsigned layer, std::uint64_t wall_round) const;

 private:
  /// Schedule rounds consumed by wall rounds [0, wall_round): each wall
  /// round advances the schedule by one, plus one extra per burst round
  /// (bursts close each period, see is_burst_round).
  std::uint64_t schedule_rounds_before(std::uint64_t wall_round) const;

  ProtocolConfig config_;
  sched::LayeredSchedule schedule_;
  fec::CodecId codec_;
  std::vector<std::uint32_t> permutation_;
  std::uint64_t wall_round_ = 0;
};

}  // namespace fountain::proto
