// The digital-fountain server (Section 7.1): schedules encoding packets
// across g multicast layers per the reverse-binary scheme, marks
// synchronization points, and periodically doubles its rate for one round
// (the burst that lets receivers probe for spare capacity without explicit
// join experiments). During a burst the schedule simply advances twice as
// fast, so burst packets are fresh data and the One Level Property is kept.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/config.hpp"
#include "sched/layered_schedule.hpp"
#include "util/random.hpp"

namespace fountain::proto {

class FountainServer {
 public:
  /// `permutation_seed` shuffles the mapping from schedule slots to encoding
  /// indices (the paper's servers cycle through a random permutation of the
  /// encoding); clients learn it from the control channel, but only the
  /// scheduler here needs it.
  FountainServer(const ProtocolConfig& config, std::size_t encoding_length,
                 std::uint64_t permutation_seed = 0x5eed);

  struct LayerRound {
    unsigned layer = 0;
    bool sync_point = false;
    std::vector<std::uint32_t> indices;  // global encoding indices, in order
  };

  struct Round {
    std::uint64_t number = 0;
    bool burst = false;
    std::vector<LayerRound> layers;
  };

  /// Produces the next round of transmissions and advances the schedule.
  Round next_round();

  const sched::LayeredSchedule& schedule() const { return schedule_; }
  const ProtocolConfig& config() const { return config_; }

  bool is_burst_round(std::uint64_t wall_round) const;
  bool is_sync_point(unsigned layer, std::uint64_t wall_round) const;

 private:
  ProtocolConfig config_;
  sched::LayeredSchedule schedule_;
  std::vector<std::uint32_t> permutation_;
  std::uint64_t wall_round_ = 0;
  std::uint64_t schedule_round_ = 0;
};

}  // namespace fountain::proto
