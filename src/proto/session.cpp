#include "proto/session.hpp"

#include <memory>
#include <stdexcept>

#include "net/loss.hpp"
#include "proto/server.hpp"

namespace fountain::proto {

engine::SubscriptionPolicy make_policy(const SimClientConfig& client,
                                       const ProtocolConfig& proto,
                                       std::uint64_t seed) {
  engine::SubscriptionPolicy policy;
  policy.initial_level = client.initial_level;
  policy.adaptive = !client.fixed_level;
  policy.initial_capacity = client.initial_capacity;
  policy.capacity_change_prob = client.capacity_change_prob;
  policy.congestion_extra_loss = client.congestion_extra_loss;
  policy.drop_loss_threshold = proto.drop_loss_threshold;
  policy.burst_probe_window = proto.burst_probe_window;
  policy.seed = seed;
  return policy;
}

SessionResult run_session(fec::CodecId codec, const fec::CodecParams& params,
                          const ProtocolConfig& proto,
                          const std::vector<SimClientConfig>& clients,
                          std::uint64_t seed, std::uint64_t max_rounds,
                          std::size_t threads) {
  const auto code = fec::CodecRegistry::builtin().create(codec, params);
  return run_session(*code, proto, clients, seed, max_rounds, threads);
}

SessionResult run_session(const fec::ErasureCode& code,
                          const ProtocolConfig& proto,
                          const std::vector<SimClientConfig>& clients,
                          std::uint64_t seed, std::uint64_t max_rounds,
                          std::size_t threads) {
  return run_session(code, proto, clients, std::vector<BottleneckSpec>{},
                     seed, max_rounds, threads);
}

namespace {

// One body behind both the bottleneck-list and the topology overloads; the
// bottleneck path (topology == nullptr) is untouched arithmetic, so legacy
// scenarios stay byte-identical.
SessionResult run_session_impl(const fec::ErasureCode& code,
                               const ProtocolConfig& proto,
                               const std::vector<SimClientConfig>& clients,
                               const std::vector<BottleneckSpec>& bottlenecks,
                               const TopologySpec* topology,
                               std::uint64_t seed, std::uint64_t max_rounds,
                               std::size_t threads) {
  engine::SessionConfig engine_config;
  engine_config.horizon = max_rounds;
  engine_config.threads = threads;
  engine::Session session(code, engine_config);
  const auto server = std::make_shared<FountainServer>(proto, code, 0x5eed);
  const engine::SourceId source = session.add_source(server);

  std::vector<std::shared_ptr<engine::SharedBottleneck>> queues;
  queues.reserve(bottlenecks.size());
  for (const BottleneckSpec& spec : bottlenecks) {
    queues.push_back(std::make_shared<engine::SharedBottleneck>(spec.capacity));
  }
  // Edge queues are materialized once and shared by every PathLink, so
  // receivers whose root → leaf paths overlap couple through the same
  // fluid queues.
  std::vector<std::shared_ptr<engine::SharedBottleneck>> edge_queues;
  if (topology != nullptr) {
    edge_queues = engine::make_edge_queues(topology->topology);
  }

  for (std::size_t i = 0; i < clients.size(); ++i) {
    const SimClientConfig& client = clients[i];
    if (client.leaf >= 0 && client.bottleneck >= 0) {
      throw std::invalid_argument(
          "run_session: a client may set leaf or bottleneck, not both");
    }
    if (client.leaf >= 0 && topology == nullptr) {
      throw std::invalid_argument(
          "run_session: client names a topology leaf but the session has "
          "no TopologySpec");
    }
    // Distinct, deterministic streams per receiver: one for the channel, one
    // for the adaptation draws.
    const std::uint64_t rx_seed = seed + 1000003ULL * (i + 1);
    engine::ReceiverSpec spec;
    spec.join = client.join;
    spec.policy = make_policy(client, proto, rx_seed ^ 0xada97a71c0ffee11ULL);
    if (client.loss_driven) {
      // The controller replaces the burst-probe machinery entirely.
      spec.policy.adaptive = false;
      spec.controller =
          std::make_unique<cc::LossDrivenPolicy>(client.loss_driven_config);
    }
    if (client.bottleneck >= 0 || client.leaf >= 0) {
      // Real congestion comes from the shared queue(s); the synthetic
      // capacity-drift environment would double-count it.
      spec.policy.capacity_change_prob = 0.0;
      spec.policy.congestion_extra_loss = 0.0;
    }
    const engine::ReceiverId id = session.add_receiver(std::move(spec));
    if (client.leaf >= 0) {
      if (static_cast<std::size_t>(client.leaf) >=
          topology->topology.node_count()) {
        throw std::out_of_range("run_session: client leaf is not a node");
      }
      session.subscribe(
          id, source,
          engine::make_path_link(topology->topology, edge_queues,
                                 topology->root,
                                 static_cast<engine::NodeId>(client.leaf),
                                 rx_seed, client.base_loss,
                                 topology->model_latency));
    } else if (client.bottleneck >= 0) {
      const auto& queue =
          queues.at(static_cast<std::size_t>(client.bottleneck));
      session.subscribe(id, source,
                        std::make_unique<engine::BottleneckLink>(
                            queue, rx_seed, client.base_loss));
    } else {
      session.subscribe(id, source,
                        std::make_unique<engine::LossLink>(
                            std::make_unique<net::BernoulliLoss>(
                                client.base_loss, rx_seed)));
    }
  }

  const std::vector<engine::ReceiverReport> reports = session.run();

  SessionResult result;
  result.receivers.resize(clients.size());
  const std::size_t k = code.source_count();
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const engine::ReceiverReport& er = reports[i];
    ReceiverReport& rep = result.receivers[i];
    rep.completed = er.completed;
    rep.outcome = er.outcome;
    rep.configured_base_loss = clients[i].base_loss;
    rep.observed_loss = er.observed_loss();
    rep.eta = er.efficiency(k);
    rep.eta_c = er.coding_efficiency(k);
    rep.eta_d = er.distinctness_efficiency();
    rep.level_changes = er.level_changes;
    rep.final_level = er.final_level;
    rep.peak_level = er.peak_level;
    rep.rounds_to_complete = er.completed ? er.completed_at + 1 : 0;
    rep.corrupt_rejected = er.corrupt_rejected;
    rep.duplicates_dropped = er.duplicates_dropped;
  }
  return result;
}

}  // namespace

SessionResult run_session(const fec::ErasureCode& code,
                          const ProtocolConfig& proto,
                          const std::vector<SimClientConfig>& clients,
                          const std::vector<BottleneckSpec>& bottlenecks,
                          std::uint64_t seed, std::uint64_t max_rounds,
                          std::size_t threads) {
  return run_session_impl(code, proto, clients, bottlenecks, nullptr, seed,
                          max_rounds, threads);
}

SessionResult run_session(const fec::ErasureCode& code,
                          const ProtocolConfig& proto,
                          const std::vector<SimClientConfig>& clients,
                          const TopologySpec& topology, std::uint64_t seed,
                          std::uint64_t max_rounds, std::size_t threads) {
  return run_session_impl(code, proto, clients, {}, &topology, seed,
                          max_rounds, threads);
}

}  // namespace fountain::proto
