#include "proto/session.hpp"

#include <memory>

#include "proto/server.hpp"

namespace fountain::proto {

SessionResult run_session(const fec::ErasureCode& code,
                          const ProtocolConfig& proto,
                          const std::vector<SimClientConfig>& clients,
                          std::uint64_t seed, std::uint64_t max_rounds) {
  FountainServer server(proto, code.encoded_count());

  std::vector<std::unique_ptr<SimClient>> sims;
  sims.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    sims.push_back(std::make_unique<SimClient>(code, proto, clients[i],
                                               seed + 1000003 * (i + 1)));
  }

  SessionResult result;
  result.receivers.resize(clients.size());
  std::size_t done = 0;
  for (std::uint64_t r = 0; r < max_rounds && done < sims.size(); ++r) {
    const FountainServer::Round round = server.next_round();
    for (std::size_t i = 0; i < sims.size(); ++i) {
      if (result.receivers[i].completed) continue;
      if (sims[i]->on_round(round)) {
        result.receivers[i].completed = true;
        result.receivers[i].rounds_to_complete = r + 1;
        ++done;
      }
    }
  }

  for (std::size_t i = 0; i < sims.size(); ++i) {
    ReceiverReport& rep = result.receivers[i];
    const SimClient& c = *sims[i];
    rep.configured_base_loss = clients[i].base_loss;
    rep.observed_loss = c.observed_loss();
    rep.eta = c.efficiency();
    rep.eta_c = c.coding_efficiency();
    rep.eta_d = c.distinctness_efficiency();
    rep.level_changes = c.level_changes();
  }
  return result;
}

}  // namespace fountain::proto
