// Clients of the digital fountain (Section 7.2).
//
// SimClient models a receiver in the discrete-event session simulation: it
// subscribes to a cumulative set of layers, loses packets to a background
// loss process plus congestion whenever it subscribes above its (time-
// varying) capacity, moves up a level at synchronization points after a
// loss-free burst probe, drops a level when a round's loss exceeds the
// back-off threshold, and accounts total/distinct receptions so the session
// can report the paper's eta, eta_c and eta_d.
//
// StatisticalDataClient is the payload-carrying client the paper settled on
// ("we found the statistical approach to be simpler and sufficiently fast"):
// it buffers packets until slightly more than (1 + eps_hat) k distinct ones
// have arrived, then runs the Tornado decoder; if reconstruction falls
// short, it raises the threshold and keeps listening.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tornado.hpp"
#include "fec/erasure_code.hpp"
#include "proto/config.hpp"
#include "proto/server.hpp"
#include "util/random.hpp"

namespace fountain::proto {

struct SimClientConfig {
  double base_loss = 0.05;             // background loss on every packet
  double congestion_extra_loss = 0.45; // added when subscribed above capacity
  double capacity_change_prob = 0.005; // per-round capacity re-draw
  unsigned initial_level = 0;
  unsigned initial_capacity = 3;       // in [0, layers)
  bool fixed_level = false;            // single-layer experiments pin level 0
};

class SimClient {
 public:
  SimClient(const fec::ErasureCode& code, const ProtocolConfig& proto,
            const SimClientConfig& config, std::uint64_t seed);

  /// Processes one server round; returns true once the source is decodable.
  bool on_round(const FountainServer::Round& round);

  bool complete() const { return complete_; }
  unsigned level() const { return level_; }
  unsigned level_changes() const { return level_changes_; }

  std::uint64_t total_received() const { return total_received_; }
  std::uint64_t distinct_received() const { return distinct_; }
  std::uint64_t total_addressed() const { return addressed_; }

  /// Fraction of packets addressed to this receiver that were lost.
  double observed_loss() const;
  /// eta = k / total received (prior to reconstruction).
  double efficiency() const;
  /// eta_c = k / distinct received.
  double coding_efficiency() const;
  /// eta_d = distinct / total received.
  double distinctness_efficiency() const;

 private:
  const fec::ErasureCode& code_;
  ProtocolConfig proto_;
  SimClientConfig config_;
  std::unique_ptr<fec::StructuralDecoder> decoder_;
  std::vector<std::uint8_t> seen_;
  util::Rng rng_;
  unsigned level_;
  unsigned capacity_;
  unsigned max_level_;
  unsigned level_changes_ = 0;
  bool join_cleared_ = false;
  bool complete_ = false;
  std::uint64_t total_received_ = 0;
  std::uint64_t distinct_ = 0;
  std::uint64_t addressed_ = 0;
  std::uint64_t lost_ = 0;
};

class StatisticalDataClient {
 public:
  /// `initial_margin` is eps_hat: the first decode attempt happens at
  /// (1 + initial_margin) k distinct packets; each failed attempt raises the
  /// threshold by `step`.
  StatisticalDataClient(const core::TornadoCode& code,
                        double initial_margin = 0.03, double step = 0.01);

  /// Buffers one received packet; returns true once decoding has succeeded.
  bool on_packet(std::uint32_t index, util::ConstByteSpan payload);

  bool complete() const { return complete_; }
  std::size_t decode_attempts() const { return attempts_; }
  std::size_t distinct_received() const { return distinct_; }
  util::ConstSymbolView source() const;

 private:
  bool try_decode();

  const core::TornadoCode& code_;
  double threshold_;
  double step_;
  util::SymbolMatrix store_;
  std::vector<std::uint8_t> have_;
  std::vector<std::uint32_t> order_;  // arrival order of distinct packets
  std::unique_ptr<fec::IncrementalDecoder> decoder_;
  std::size_t distinct_ = 0;
  std::size_t attempts_ = 0;
  bool complete_ = false;
};

}  // namespace fountain::proto
