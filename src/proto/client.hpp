// The payload-carrying client of the digital fountain (Section 7.2).
//
// StatisticalDataClient is the decoding strategy the paper settled on ("we
// found the statistical approach to be simpler and sufficiently fast"): it
// buffers packets until slightly more than (1 + eps_hat) k distinct ones
// have arrived, then runs the code's incremental decoder; if reconstruction
// falls short, it raises the threshold and keeps listening. It works over
// any fec::ErasureCode (the session layer no longer names Tornado), and one
// decoder instance is reused across attempts — and across reset()s — via
// fec::IncrementalDecoder::reset().
//
// The old lockstep SimClient lived here; the Section 7.2 subscription
// machinery (congestion back-off, burst probes, SP joins) is now the
// engine's adaptive SubscriptionPolicy (engine/session.hpp), driven by the
// discrete-event session engine instead of a hand-rolled round loop.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fec/erasure_code.hpp"
#include "util/symbols.hpp"

namespace fountain::proto {

class StatisticalDataClient {
 public:
  /// `initial_margin` is eps_hat: the first decode attempt happens at
  /// (1 + initial_margin) k distinct packets; each failed attempt raises the
  /// threshold by `step`.
  explicit StatisticalDataClient(const fec::ErasureCode& code,
                                 double initial_margin = 0.03,
                                 double step = 0.01);

  /// Buffers one received packet; returns true once decoding has succeeded.
  /// Total over untrusted input: an out-of-range index (>= n) or a payload
  /// of the wrong size is counted in rejected() and otherwise ignored — a
  /// checksum-valid header can still carry an index from a larger code, and
  /// that must cost one datagram, not an exception on the receive loop.
  /// Repeats of an index already in hand are counted in duplicates().
  bool on_packet(std::uint32_t index, util::ConstByteSpan payload);

  /// Returns the client to its empty state (threshold back at the initial
  /// margin) so it can serve another transfer without reallocation.
  void reset();

  bool complete() const { return complete_; }
  std::size_t decode_attempts() const { return attempts_; }
  std::size_t distinct_received() const { return distinct_; }
  /// Packets discarded for an out-of-range index or wrong payload size.
  std::size_t rejected() const { return rejected_; }
  /// Packets whose index was already buffered (carousel wrap, dup faults).
  std::size_t duplicates() const { return duplicates_; }
  util::ConstSymbolView source() const;

 private:
  bool try_decode();

  const fec::ErasureCode& code_;
  double initial_margin_;
  double threshold_;
  double step_;
  util::SymbolMatrix store_;
  std::vector<std::uint8_t> have_;
  std::vector<std::uint32_t> order_;  // arrival order of distinct packets
  std::unique_ptr<fec::IncrementalDecoder> decoder_;
  std::size_t distinct_ = 0;
  std::size_t attempts_ = 0;
  std::size_t rejected_ = 0;
  std::size_t duplicates_ = 0;
  bool complete_ = false;
};

}  // namespace fountain::proto
