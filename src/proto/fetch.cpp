#include "proto/fetch.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/random.hpp"

namespace fountain::proto {

FetchResult fetch_control(const FetchTransport& transport,
                          std::size_t mirror_count, const FetchPolicy& policy,
                          const FetchSleeper& sleeper) {
  if (!transport) {
    throw std::invalid_argument("fetch_control: null transport");
  }
  if (mirror_count == 0) {
    throw std::invalid_argument("fetch_control: no mirrors");
  }
  if (policy.attempts_per_mirror == 0) {
    throw std::invalid_argument("fetch_control: zero attempts per mirror");
  }
  if (policy.backoff_multiplier < 1.0) {
    throw std::invalid_argument("fetch_control: backoff multiplier < 1");
  }
  if (policy.jitter < 0.0) {
    throw std::invalid_argument("fetch_control: negative jitter");
  }

  util::Rng rng(policy.seed);
  FetchResult result;
  for (std::size_t mirror = 0; mirror < mirror_count; ++mirror) {
    if (mirror > 0) ++result.failovers;
    // Backoff restarts per mirror: a fresh mirror deserves a fresh clock.
    auto backoff = policy.initial_timeout;
    for (std::size_t attempt = 0; attempt < policy.attempts_per_mirror;
         ++attempt) {
      if (attempt > 0) {
        ++result.retries;
        // Sleep the previous backoff, jittered; then widen the window.
        const double scale =
            1.0 + policy.jitter * (2.0 * rng.uniform() - 1.0);
        const auto delay = std::chrono::milliseconds(static_cast<long long>(
            static_cast<double>(backoff.count()) * scale));
        if (sleeper) sleeper(delay);
        backoff = std::min(
            std::chrono::milliseconds(static_cast<long long>(
                static_cast<double>(backoff.count()) *
                policy.backoff_multiplier)),
            policy.max_backoff);
      }
      ++result.attempts;
      const auto reply = transport(mirror, backoff);
      if (!reply) continue;  // timed out / unreachable: retry
      const ControlParseResult parsed =
          ControlInfo::parse(util::ConstByteSpan(*reply));
      if (!parsed) {
        result.last_error = parsed.error;  // damaged reply: retry like loss
        continue;
      }
      result.status = FetchStatus::kOk;
      result.info = parsed.info;
      result.mirror = mirror;
      result.last_error = net::ParseError::kNone;
      return result;
    }
  }
  return result;
}

}  // namespace fountain::proto
