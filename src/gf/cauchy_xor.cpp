#include "gf/cauchy_xor.hpp"

#include <stdexcept>

#include "kern/kernels.hpp"

namespace fountain::gf {

namespace {

/// Bit r of row `r` of the GF(2) matrix for multiplication by c is bit r of
/// the byte c * x^j. Returns, for each of the 8 output bit-rows, the mask of
/// input segments that must be XORed in.
std::array<std::uint8_t, 8> bit_rows(GF256::Element c) {
  std::array<std::uint8_t, 8> columns{};
  for (unsigned j = 0; j < 8; ++j) {
    columns[j] = GF256::mul(c, static_cast<GF256::Element>(1u << j));
  }
  std::array<std::uint8_t, 8> rows{};
  for (unsigned r = 0; r < 8; ++r) {
    std::uint8_t mask = 0;
    for (unsigned j = 0; j < 8; ++j) {
      if (columns[j] & (1u << r)) mask |= static_cast<std::uint8_t>(1u << j);
    }
    rows[r] = mask;
  }
  return rows;
}

}  // namespace

void cauchy_xor_fma(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t bytes, GF256::Element c) {
  if (bytes % 8 != 0) {
    throw std::invalid_argument("cauchy_xor_fma: length must be 8-aligned");
  }
  if (c == 0) return;
  const std::size_t seg = bytes / 8;
  const auto rows = bit_rows(c);
  // Segment lengths are validated above; gather each output bit-row's masked
  // input segments (at most 8) and fold them in one cache-blocked multi-row
  // pass.
  for (unsigned r = 0; r < 8; ++r) {
    const std::uint8_t mask = rows[r];
    const std::uint8_t* segs[8];
    std::size_t count = 0;
    for (unsigned j = 0; j < 8; ++j) {
      if (mask & (1u << j)) segs[count++] = src + j * seg;
    }
    kern::xor_block_rows(dst + r * seg, segs, count, seg);
  }
}

CauchyXorCodec::CauchyXorCodec(std::size_t k, std::size_t parity)
    : k_(k), parity_(parity) {
  if (k == 0 || parity == 0 || k + parity > GF256::kOrder) {
    throw std::invalid_argument("CauchyXorCodec: bad parameters");
  }
  gen_ = Matrix<GF256>(parity_, k_);
  for (std::size_t i = 0; i < parity_; ++i) {
    const auto y = static_cast<GF256::Element>(k_ + i);
    for (std::size_t j = 0; j < k_; ++j) {
      gen_.at(i, j) = GF256::inv(GF256::add(y, static_cast<GF256::Element>(j)));
    }
  }
}

void CauchyXorCodec::encode(const util::SymbolMatrix& source,
                            util::SymbolMatrix& parity_out) const {
  if (source.rows() != k_ || parity_out.rows() != parity_ ||
      source.symbol_size() != parity_out.symbol_size() ||
      source.symbol_size() % 8 != 0) {
    throw std::invalid_argument("CauchyXorCodec: shape mismatch");
  }
  parity_out.fill_zero();
  for (std::size_t j = 0; j < k_; ++j) {
    const auto src = source.row(j);
    for (std::size_t i = 0; i < parity_; ++i) {
      cauchy_xor_fma(parity_out.row(i).data(), src.data(), src.size(),
                     gen_.at(i, j));
    }
  }
}

void CauchyXorCodec::decode(
    util::SymbolMatrix& source, const std::vector<bool>& have_source,
    const std::vector<std::pair<std::uint32_t, util::ConstByteSpan>>& parity)
    const {
  std::vector<std::uint32_t> missing;
  for (std::size_t j = 0; j < k_; ++j) {
    if (!have_source[j]) missing.push_back(static_cast<std::uint32_t>(j));
  }
  if (missing.empty()) return;
  const std::size_t x = missing.size();
  if (parity.size() < x) {
    throw std::invalid_argument("CauchyXorCodec: not enough parity");
  }

  const std::size_t bytes = source.symbol_size();
  util::SymbolMatrix rhs(x, bytes);
  std::vector<GF256::Element> xs(x);
  std::vector<GF256::Element> ys(x);
  for (std::size_t c = 0; c < x; ++c) {
    xs[c] = static_cast<GF256::Element>(missing[c]);
  }
  for (std::size_t r = 0; r < x; ++r) {
    const auto [pidx, pdata] = parity[r];
    if (pidx >= parity_) throw std::out_of_range("CauchyXorCodec: parity idx");
    ys[r] = static_cast<GF256::Element>(k_ + pidx);
    util::xor_into(rhs.row(r), pdata);
  }
  for (std::size_t j = 0; j < k_; ++j) {
    if (!have_source[j]) continue;
    const auto src = source.row(j);
    for (std::size_t r = 0; r < x; ++r) {
      cauchy_xor_fma(rhs.row(r).data(), src.data(), bytes,
                     gen_.at(parity[r].first, j));
    }
  }

  const Matrix<GF256> inv = cauchy_inverse<GF256>(xs, ys);
  for (std::size_t c = 0; c < x; ++c) {
    auto dst = source.row(missing[c]);
    std::fill(dst.begin(), dst.end(), 0);
    for (std::size_t r = 0; r < x; ++r) {
      cauchy_xor_fma(dst.data(), rhs.row(r).data(), bytes, inv.at(c, r));
    }
  }
}

}  // namespace fountain::gf
