// Systematic Cauchy Reed-Solomon erasure codec after Blomer, Kalfane,
// Karpinski, Karp, Luby, Zuckerman, "An XOR-Based Erasure-Resilient Coding
// Scheme" (ICSI TR-95-048) — the "Cauchy" column of the paper's Tables 2/3,
// the per-block code of the interleaved baseline, and the tail code that
// terminates the Tornado cascade.
//
// The generator is the Cauchy matrix C[i][j] = 1/(y_i + x_j). Its key
// advantage over Vandermonde for decoding is that every square submatrix is
// itself Cauchy and so can be inverted analytically in O(x^2) — no Gaussian
// elimination.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gf/matrix.hpp"
#include "util/symbols.hpp"

namespace fountain::gf {

/// Analytic inverse of the square Cauchy matrix A[i][j] = 1/(xs[j] + ys[i])
/// (characteristic-2 field; all points pairwise distinct, xs disjoint from
/// ys). Returns B with B * A = I. O(m^2).
template <typename Field>
Matrix<Field> cauchy_inverse(const std::vector<typename Field::Element>& xs,
                             const std::vector<typename Field::Element>& ys) {
  using Element = typename Field::Element;
  const std::size_t m = xs.size();
  if (ys.size() != m || m == 0) {
    throw std::invalid_argument("cauchy_inverse: bad dimensions");
  }
  // u[j] = prod_k (x_j + y_k); v[j] = prod_{k != j} (x_j + x_k)
  // s[i] = prod_k (x_k + y_i); t[i] = prod_{k != i} (y_i + y_k)
  std::vector<Element> u(m, Element{1});
  std::vector<Element> v(m, Element{1});
  std::vector<Element> s(m, Element{1});
  std::vector<Element> t(m, Element{1});
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t kk = 0; kk < m; ++kk) {
      u[j] = Field::mul(u[j], Field::add(xs[j], ys[kk]));
      if (kk != j) v[j] = Field::mul(v[j], Field::add(xs[j], xs[kk]));
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < m; ++kk) {
      s[i] = Field::mul(s[i], Field::add(xs[kk], ys[i]));
      if (kk != i) t[i] = Field::mul(t[i], Field::add(ys[i], ys[kk]));
    }
  }
  // B[j][i] = (u[j] * s[i]) / ((x_j + y_i) * v[j] * t[i])
  // B's rows correspond to A's columns (the x points).
  Matrix<Field> b(m, m);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      const Element numerator = Field::mul(u[j], s[i]);
      const Element denominator = Field::mul(
          Field::add(xs[j], ys[i]), Field::mul(v[j], t[i]));
      b.at(j, i) = Field::div(numerator, denominator);
    }
  }
  return b;
}

template <typename Field>
class CauchyCodec {
 public:
  using Element = typename Field::Element;

  CauchyCodec(std::size_t k, std::size_t parity) : k_(k), parity_(parity) {
    if (k == 0 || parity == 0) {
      throw std::invalid_argument("CauchyCodec: k and parity must be > 0");
    }
    if (k + parity > Field::kOrder) {
      throw std::invalid_argument("CauchyCodec: k + parity exceeds field size");
    }
    gen_ = Matrix<Field>(parity_, k_);
    for (std::size_t i = 0; i < parity_; ++i) {
      const auto y = static_cast<Element>(k_ + i);
      for (std::size_t j = 0; j < k_; ++j) {
        gen_.at(i, j) = Field::inv(Field::add(y, static_cast<Element>(j)));
      }
    }
  }

  std::size_t source_count() const { return k_; }
  std::size_t parity_count() const { return parity_; }

  Element coefficient(std::size_t parity_row, std::size_t source_col) const {
    return gen_.at(parity_row, source_col);
  }

  /// Views allow encoding straight out of / into row ranges of a larger
  /// matrix (the Tornado tail encodes `encoding` rows in place with no
  /// intermediate copies); SymbolMatrix arguments convert implicitly.
  /// Parity-row-major: each parity symbol is produced by one multi-row pass
  /// over all k sources (generator rows are contiguous, so they feed
  /// Field::fma_rows directly) — the destination tile stays L1-resident
  /// across the whole neighborhood instead of being re-read k times.
  void encode(util::ConstSymbolView source, util::SymbolView parity_out) const {
    if (source.rows() != k_ || parity_out.rows() != parity_ ||
        source.symbol_size() != parity_out.symbol_size() ||
        source.symbol_size() % Field::kSymbolAlignment != 0) {
      throw std::invalid_argument("CauchyCodec: shape mismatch");
    }
    parity_out.fill_zero();
    std::vector<const std::uint8_t*> srcs(k_);
    for (std::size_t j = 0; j < k_; ++j) srcs[j] = source.row(j).data();
    for (std::size_t i = 0; i < parity_; ++i) {
      Field::fma_rows(parity_out.row(i).data(), srcs.data(), gen_.row(i), k_,
                      source.symbol_size());
    }
  }

  /// Encodes a single parity symbol (used by the Tornado cascade tail and
  /// the streaming encoders, where a specific parity index is requested).
  void encode_one(util::ConstSymbolView source, std::size_t parity_row,
                  util::ByteSpan out) const {
    if (out.size() % Field::kSymbolAlignment != 0) {
      throw std::invalid_argument("CauchyCodec: symbol alignment");
    }
    std::fill(out.begin(), out.end(), 0);
    std::vector<const std::uint8_t*> srcs(k_);
    for (std::size_t j = 0; j < k_; ++j) srcs[j] = source.row(j).data();
    Field::fma_rows(out.data(), srcs.data(), gen_.row(parity_row), k_,
                    source.symbol_size());
  }

  /// Reconstructs missing source rows in place; see VandermondeCodec::decode
  /// for the contract. Uses the analytic O(x^2) Cauchy submatrix inverse.
  void decode(util::SymbolView source, const std::vector<bool>& have_source,
              const std::vector<std::pair<std::uint32_t, util::ConstByteSpan>>&
                  parity) const {
    std::vector<std::uint32_t> missing;
    for (std::size_t j = 0; j < k_; ++j) {
      if (!have_source[j]) missing.push_back(static_cast<std::uint32_t>(j));
    }
    if (missing.empty()) return;
    const std::size_t x = missing.size();
    if (parity.size() < x) {
      throw std::invalid_argument("CauchyCodec: not enough parity");
    }

    const std::size_t bytes = source.symbol_size();
    util::SymbolMatrix rhs(x, bytes);
    std::vector<Element> xs(x);
    std::vector<Element> ys(x);
    for (std::size_t c = 0; c < x; ++c) {
      xs[c] = static_cast<Element>(missing[c]);
    }
    for (std::size_t r = 0; r < x; ++r) {
      const auto [pidx, pdata] = parity[r];
      if (pidx >= parity_) throw std::out_of_range("CauchyCodec: parity index");
      if (pdata.size() != bytes) {
        throw std::invalid_argument("CauchyCodec: payload size");
      }
      ys[r] = static_cast<Element>(k_ + pidx);
      util::xor_into(rhs.row(r), pdata);
    }
    // rhs_r -= known-source contributions: one multi-row pass per parity row
    // over every known source (coefficients gathered from the generator).
    std::vector<const std::uint8_t*> known_srcs;
    std::vector<std::uint32_t> known_cols;
    known_srcs.reserve(k_ - x);
    known_cols.reserve(k_ - x);
    for (std::size_t j = 0; j < k_; ++j) {
      if (!have_source[j]) continue;
      known_srcs.push_back(source.row(j).data());
      known_cols.push_back(static_cast<std::uint32_t>(j));
    }
    std::vector<Element> coeffs(known_srcs.size());
    for (std::size_t r = 0; r < x; ++r) {
      const auto* gen_row = gen_.row(parity[r].first);
      for (std::size_t t = 0; t < known_cols.size(); ++t) {
        coeffs[t] = gen_row[known_cols[t]];
      }
      Field::fma_rows(rhs.row(r).data(), known_srcs.data(), coeffs.data(),
                      known_srcs.size(), bytes);
    }

    const Matrix<Field> inv = cauchy_inverse<Field>(xs, ys);
    std::vector<const std::uint8_t*> rhs_rows(x);
    for (std::size_t r = 0; r < x; ++r) rhs_rows[r] = rhs.row(r).data();
    for (std::size_t c = 0; c < x; ++c) {
      auto dst = source.row(missing[c]);
      std::fill(dst.begin(), dst.end(), 0);
      Field::fma_rows(dst.data(), rhs_rows.data(), inv.row(c), x, bytes);
    }
  }

 private:
  std::size_t k_;
  std::size_t parity_;
  Matrix<Field> gen_;
};

}  // namespace fountain::gf
