#include "gf/gf65536.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "kern/kernels.hpp"

namespace fountain::gf {

namespace {
constexpr std::uint32_t kPoly = 0x1100B;  // x^16 + x^12 + x^3 + x + 1
}

GF65536::Tables::Tables()
    : exp(new Element[2 * 65535]), log(new std::uint32_t[65536]) {
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < 65535; ++i) {
    exp[i] = static_cast<Element>(x);
    log[x] = i;
    x <<= 1;
    if (x & 0x10000) x ^= kPoly;
  }
  for (std::uint32_t i = 65535; i < 2 * 65535; ++i) exp[i] = exp[i - 65535];
  log[0] = 0xffffffff;
}

GF65536::Tables::~Tables() {
  delete[] exp;
  delete[] log;
}

const GF65536::Tables& GF65536::tables() {
  static const Tables t;
  return t;
}

GF65536::Element GF65536::inv(Element a) {
  if (a == 0) throw std::domain_error("GF65536: inverse of zero");
  const auto& t = tables();
  return t.exp[65535 - t.log[a]];
}

GF65536::Element GF65536::div(Element a, Element b) {
  if (b == 0) throw std::domain_error("GF65536: division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + 65535 - t.log[b]];
}

unsigned GF65536::log(Element a) {
  if (a == 0) throw std::domain_error("GF65536: log of zero");
  return tables().log[a];
}

void GF65536::fma_buffer(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, Element c) {
  if (bytes % 2 != 0) {
    throw std::invalid_argument("GF65536: buffer length must be even");
  }
  if (c == 0) return;
  const auto& t = tables();
  const std::uint32_t logc = t.log[c];
  for (std::size_t i = 0; i < bytes; i += 2) {
    Element w;
    std::memcpy(&w, src + i, 2);
    if (w == 0) continue;
    const Element prod = t.exp[t.log[w] + logc];
    Element d;
    std::memcpy(&d, dst + i, 2);
    d ^= prod;
    std::memcpy(dst + i, &d, 2);
  }
}

void GF65536::scale_buffer(std::uint8_t* dst, std::size_t bytes, Element c) {
  if (bytes % 2 != 0) {
    throw std::invalid_argument("GF65536: buffer length must be even");
  }
  if (c == 1) return;
  const auto& t = tables();
  if (c == 0) {
    std::memset(dst, 0, bytes);
    return;
  }
  const std::uint32_t logc = t.log[c];
  for (std::size_t i = 0; i < bytes; i += 2) {
    Element w;
    std::memcpy(&w, dst + i, 2);
    if (w == 0) continue;
    w = t.exp[t.log[w] + logc];
    std::memcpy(dst + i, &w, 2);
  }
}

void GF65536::fma_rows(std::uint8_t* dst, const std::uint8_t* const* srcs,
                       const Element* coeffs, std::size_t count,
                       std::size_t bytes) {
  if (bytes % 2 != 0) {
    throw std::invalid_argument("GF65536: buffer length must be even");
  }
  // kRowTileBytes is even, so every tile boundary preserves the 16-bit word
  // grid fma_buffer requires.
  for (std::size_t off = 0; off < bytes; off += kern::kRowTileBytes) {
    const std::size_t len = std::min(kern::kRowTileBytes, bytes - off);
    for (std::size_t i = 0; i < count; ++i) {
      if (coeffs[i] != 0) fma_buffer(dst + off, srcs[i] + off, len, coeffs[i]);
    }
  }
}

}  // namespace fountain::gf
