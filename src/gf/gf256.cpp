#include "gf/gf256.hpp"

#include <stdexcept>

namespace fountain::gf {

namespace {
constexpr unsigned kPoly = 0x11D;  // x^8 + x^4 + x^3 + x^2 + 1
}

GF256::Tables::Tables() {
  // exp/log via repeated multiplication by the generator alpha = 2.
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp[i] = static_cast<Element>(x);
    log[x] = static_cast<std::uint16_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = 0xffff;  // sentinel: log of zero is undefined

  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      mul[a][b] = (a == 0 || b == 0)
                      ? 0
                      : exp[log[a] + log[b]];
    }
  }
  inverse[0] = 0;  // sentinel; GF256::inv throws on zero
  for (unsigned a = 1; a < 256; ++a) {
    inverse[a] = exp[255 - log[a]];
  }

  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned x = 0; x < 16; ++x) {
      nib_lo[c][x] = mul[c][x];
      nib_hi[c][x] = mul[c][x << 4];
    }
  }

  // Multiply-by-c as an 8x8 GF(2) bit-matrix: output bit r of c*x is
  // parity(rows[r] & x) where bit j of rows[r] is bit r of c * x^j. Packed
  // with rows[r] in byte 7-r, matching GF2P8AFFINEQB's row convention.
  for (unsigned c = 0; c < 256; ++c) {
    std::uint64_t matrix = 0;
    for (unsigned r = 0; r < 8; ++r) {
      std::uint8_t mask = 0;
      for (unsigned j = 0; j < 8; ++j) {
        if (mul[c][1u << j] & (1u << r)) {
          mask |= static_cast<std::uint8_t>(1u << j);
        }
      }
      matrix |= static_cast<std::uint64_t>(mask) << (8 * (7 - r));
    }
    affine[c] = matrix;
  }
}

const GF256::Tables& GF256::tables() {
  static const Tables t;
  return t;
}

GF256::Element GF256::inv(Element a) {
  if (a == 0) throw std::domain_error("GF256: inverse of zero");
  return tables().inverse[a];
}

GF256::Element GF256::div(Element a, Element b) {
  if (b == 0) throw std::domain_error("GF256: division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

unsigned GF256::log(Element a) {
  if (a == 0) throw std::domain_error("GF256: log of zero");
  return tables().log[a];
}

void GF256::fma_buffer(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t bytes, Element c) {
  if (c == 0) return;
  if (c == 1) {
    kern::xor_block(dst, src, bytes);
    return;
  }
  kern::gf256_fma_block(dst, src, bytes, mul_ctx(c));
}

void GF256::scale_buffer(std::uint8_t* dst, std::size_t bytes, Element c) {
  if (c == 1) return;
  kern::gf256_scale_block(dst, bytes, mul_ctx(c));
}

void GF256::fma_rows(std::uint8_t* dst, const std::uint8_t* const* srcs,
                     const Element* coeffs, std::size_t count,
                     std::size_t bytes) {
  // Split the combination: coefficient-1 rows go through the plain XOR fold,
  // the rest through the GF fma fold, both tiled. count <= kOrder by the RS
  // shape contract, so fixed stack arrays suffice.
  const std::uint8_t* xor_srcs[kOrder];
  const std::uint8_t* fma_srcs[kOrder];
  kern::Gf256Ctx ctxs[kOrder];
  std::size_t nx = 0, nf = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (coeffs[i] == 0) continue;
    if (coeffs[i] == 1) {
      xor_srcs[nx++] = srcs[i];
    } else {
      fma_srcs[nf] = srcs[i];
      ctxs[nf++] = mul_ctx(coeffs[i]);
    }
  }
  kern::xor_block_rows(dst, xor_srcs, nx, bytes);
  kern::gf256_fma_rows(dst, fma_srcs, ctxs, nf, bytes);
}

}  // namespace fountain::gf
