// Systematic Reed-Solomon erasure codec in the style of Rizzo's FEC library
// ("Effective Erasure Codes for Reliable Computer Communication Protocols",
// CCR 1997) — the "Vandermonde" column of the paper's Tables 2 and 3.
//
// The generator is built by Lagrange interpolation: parity symbol i is the
// evaluation, at point y_i, of the degree-(k-1) polynomial interpolating the
// source symbols at points x_0..x_{k-1}. This is mathematically identical to
// Rizzo's V * V_k^{-1} construction but costs O(k^2 + l*k) rather than O(k^3).
// Decoding solves the dense x-by-x system over the missing source symbols
// with Gaussian elimination — the O(x^3) cost that makes Vandermonde codes
// impractical at large k, exactly the effect the paper reports.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gf/matrix.hpp"
#include "util/symbols.hpp"

namespace fountain::gf {

template <typename Field>
class VandermondeCodec {
 public:
  using Element = typename Field::Element;

  VandermondeCodec(std::size_t k, std::size_t parity) : k_(k), parity_(parity) {
    if (k == 0 || parity == 0) {
      throw std::invalid_argument("VandermondeCodec: k and parity must be > 0");
    }
    if (k + parity > Field::kOrder) {
      throw std::invalid_argument(
          "VandermondeCodec: k + parity exceeds field size");
    }
    build_generator();
  }

  std::size_t source_count() const { return k_; }
  std::size_t parity_count() const { return parity_; }

  Element coefficient(std::size_t parity_row, std::size_t source_col) const {
    return gen_.at(parity_row, source_col);
  }

  /// Computes all parity symbols from the full source block. Takes views so
  /// callers can encode sub-ranges of a larger matrix in place.
  /// Parity-row-major: one cache-blocked multi-row pass per parity symbol
  /// over all k sources (generator rows are contiguous, so they feed
  /// Field::fma_rows directly).
  void encode(util::ConstSymbolView source, util::SymbolView parity_out) const {
    check_shapes(source, parity_out);
    parity_out.fill_zero();
    std::vector<const std::uint8_t*> srcs(k_);
    for (std::size_t j = 0; j < k_; ++j) srcs[j] = source.row(j).data();
    for (std::size_t i = 0; i < parity_; ++i) {
      Field::fma_rows(parity_out.row(i).data(), srcs.data(), gen_.row(i), k_,
                      source.symbol_size());
    }
  }

  /// Encodes a single parity symbol (the streaming-encoder path, where a
  /// specific parity index is requested on demand).
  void encode_one(util::ConstSymbolView source, std::size_t parity_row,
                  util::ByteSpan out) const {
    if (out.size() % Field::kSymbolAlignment != 0) {
      throw std::invalid_argument("VandermondeCodec: symbol alignment");
    }
    std::fill(out.begin(), out.end(), 0);
    std::vector<const std::uint8_t*> srcs(k_);
    for (std::size_t j = 0; j < k_; ++j) srcs[j] = source.row(j).data();
    Field::fma_rows(out.data(), srcs.data(), gen_.row(parity_row), k_,
                    source.symbol_size());
  }

  /// Reconstructs the missing source rows of `source` in place.
  /// `have_source[j]` marks rows already present; `parity` lists received
  /// parity symbols as (parity index, payload). Requires at least as many
  /// parity symbols as missing source symbols.
  void decode(util::SymbolView source, const std::vector<bool>& have_source,
              const std::vector<std::pair<std::uint32_t, util::ConstByteSpan>>&
                  parity) const {
    const auto missing = missing_indices(have_source);
    if (missing.empty()) return;
    const std::size_t x = missing.size();
    if (parity.size() < x) {
      throw std::invalid_argument("VandermondeCodec: not enough parity");
    }

    // rhs_r = parity_r - sum over known sources of gen[p_r][j] * src_j
    const std::size_t bytes = source.symbol_size();
    util::SymbolMatrix rhs(x, bytes);
    Matrix<Field> m(x, x);
    for (std::size_t r = 0; r < x; ++r) {
      const auto [pidx, pdata] = parity[r];
      if (pidx >= parity_) {
        throw std::out_of_range("VandermondeCodec: parity index");
      }
      if (pdata.size() != bytes) {
        throw std::invalid_argument("VandermondeCodec: payload size");
      }
      util::xor_into(rhs.row(r), pdata);
      for (std::size_t c = 0; c < x; ++c) {
        m.at(r, c) = gen_.at(pidx, missing[c]);
      }
    }
    // rhs_r -= known-source contributions: one multi-row pass per parity row
    // over every known source (coefficients gathered from the generator).
    std::vector<const std::uint8_t*> known_srcs;
    std::vector<std::uint32_t> known_cols;
    known_srcs.reserve(k_ - x);
    known_cols.reserve(k_ - x);
    for (std::size_t j = 0; j < k_; ++j) {
      if (!have_source[j]) continue;
      known_srcs.push_back(source.row(j).data());
      known_cols.push_back(static_cast<std::uint32_t>(j));
    }
    std::vector<Element> coeffs(known_srcs.size());
    for (std::size_t r = 0; r < x; ++r) {
      const auto* gen_row = gen_.row(parity[r].first);
      for (std::size_t t = 0; t < known_cols.size(); ++t) {
        coeffs[t] = gen_row[known_cols[t]];
      }
      Field::fma_rows(rhs.row(r).data(), known_srcs.data(), coeffs.data(),
                      known_srcs.size(), bytes);
    }

    const Matrix<Field> minv = m.inverted();
    std::vector<const std::uint8_t*> rhs_rows(x);
    for (std::size_t r = 0; r < x; ++r) rhs_rows[r] = rhs.row(r).data();
    for (std::size_t c = 0; c < x; ++c) {
      auto dst = source.row(missing[c]);
      std::fill(dst.begin(), dst.end(), 0);
      Field::fma_rows(dst.data(), rhs_rows.data(), minv.row(c), x, bytes);
    }
  }

 private:
  void build_generator() {
    // Evaluation points: sources at field elements 0..k-1, parities at
    // k..k+l-1 — all distinct because k + l <= |F|.
    gen_ = Matrix<Field>(parity_, k_);
    // d_j = prod_{m != j} (x_j + x_m)
    std::vector<Element> d(k_, Element{1});
    for (std::size_t j = 0; j < k_; ++j) {
      for (std::size_t mth = 0; mth < k_; ++mth) {
        if (mth == j) continue;
        d[j] = Field::mul(
            d[j], Field::add(static_cast<Element>(j), static_cast<Element>(mth)));
      }
    }
    for (std::size_t i = 0; i < parity_; ++i) {
      const auto y = static_cast<Element>(k_ + i);
      // N_i = prod_m (y_i + x_m)
      Element numerator{1};
      for (std::size_t mth = 0; mth < k_; ++mth) {
        numerator = Field::mul(numerator,
                               Field::add(y, static_cast<Element>(mth)));
      }
      for (std::size_t j = 0; j < k_; ++j) {
        const Element denom =
            Field::mul(Field::add(y, static_cast<Element>(j)), d[j]);
        gen_.at(i, j) = Field::div(numerator, denom);
      }
    }
  }

  void check_shapes(util::ConstSymbolView source,
                    util::ConstSymbolView parity) const {
    if (source.rows() != k_ || parity.rows() != parity_) {
      throw std::invalid_argument("VandermondeCodec: row count mismatch");
    }
    if (source.symbol_size() != parity.symbol_size()) {
      throw std::invalid_argument("VandermondeCodec: symbol size mismatch");
    }
    if (source.symbol_size() % Field::kSymbolAlignment != 0) {
      throw std::invalid_argument("VandermondeCodec: symbol alignment");
    }
  }

  static std::vector<std::uint32_t> missing_indices(
      const std::vector<bool>& have_source) {
    std::vector<std::uint32_t> missing;
    for (std::size_t j = 0; j < have_source.size(); ++j) {
      if (!have_source[j]) missing.push_back(static_cast<std::uint32_t>(j));
    }
    return missing;
  }

  std::size_t k_;
  std::size_t parity_;
  Matrix<Field> gen_;
};

}  // namespace fountain::gf
