// Dense matrices over a GF(2^w) field with Gauss-Jordan inversion and linear
// solves. Used by the Vandermonde codec's systematization step, by decode
// paths, and by tests that cross-check the analytic Cauchy inverse.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace fountain::gf {

template <typename Field>
class Matrix {
 public:
  using Element = typename Field::Element;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), cells_(rows * cols, Element{0}) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = Element{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Element& at(std::size_t r, std::size_t c) { return cells_[r * cols_ + c]; }
  const Element& at(std::size_t r, std::size_t c) const {
    return cells_[r * cols_ + c];
  }

  Element* row(std::size_t r) { return cells_.data() + r * cols_; }
  const Element* row(std::size_t r) const { return cells_.data() + r * cols_; }

  Matrix multiply(const Matrix& other) const {
    if (cols_ != other.rows_) throw std::invalid_argument("Matrix: dim mismatch");
    Matrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) {
        const Element a = at(i, j);
        if (a == Element{0}) continue;
        for (std::size_t c = 0; c < other.cols_; ++c) {
          out.at(i, c) = Field::add(out.at(i, c), Field::mul(a, other.at(j, c)));
        }
      }
    }
    return out;
  }

  std::vector<Element> multiply(const std::vector<Element>& v) const {
    if (cols_ != v.size()) throw std::invalid_argument("Matrix: dim mismatch");
    std::vector<Element> out(rows_, Element{0});
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) {
        out[i] = Field::add(out[i], Field::mul(at(i, j), v[j]));
      }
    }
    return out;
  }

  /// Gauss-Jordan inversion. Throws std::domain_error on singular input.
  Matrix inverted() const {
    if (rows_ != cols_) throw std::invalid_argument("Matrix: not square");
    const std::size_t n = rows_;
    Matrix a(*this);
    Matrix inv = identity(n);
    for (std::size_t col = 0; col < n; ++col) {
      std::size_t pivot = col;
      while (pivot < n && a.at(pivot, col) == Element{0}) ++pivot;
      if (pivot == n) throw std::domain_error("Matrix: singular");
      if (pivot != col) {
        swap_rows(a, pivot, col);
        swap_rows(inv, pivot, col);
      }
      const Element pinv = Field::inv(a.at(col, col));
      scale_row(a, col, pinv);
      scale_row(inv, col, pinv);
      for (std::size_t r = 0; r < n; ++r) {
        if (r == col) continue;
        const Element factor = a.at(r, col);
        if (factor == Element{0}) continue;
        add_scaled_row(a, r, col, factor);
        add_scaled_row(inv, r, col, factor);
      }
    }
    return inv;
  }

  /// Solves A x = b in place of a temporary copy; A must be square and
  /// nonsingular.
  std::vector<Element> solve(const std::vector<Element>& b) const {
    if (rows_ != cols_ || b.size() != rows_) {
      throw std::invalid_argument("Matrix: solve dim mismatch");
    }
    const std::size_t n = rows_;
    Matrix a(*this);
    std::vector<Element> x(b);
    for (std::size_t col = 0; col < n; ++col) {
      std::size_t pivot = col;
      while (pivot < n && a.at(pivot, col) == Element{0}) ++pivot;
      if (pivot == n) throw std::domain_error("Matrix: singular");
      if (pivot != col) {
        swap_rows(a, pivot, col);
        std::swap(x[pivot], x[col]);
      }
      const Element pinv = Field::inv(a.at(col, col));
      scale_row(a, col, pinv);
      x[col] = Field::mul(x[col], pinv);
      for (std::size_t r = 0; r < n; ++r) {
        if (r == col) continue;
        const Element factor = a.at(r, col);
        if (factor == Element{0}) continue;
        add_scaled_row(a, r, col, factor);
        x[r] = Field::add(x[r], Field::mul(factor, x[col]));
      }
    }
    return x;
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  static void swap_rows(Matrix& m, std::size_t a, std::size_t b) {
    for (std::size_t c = 0; c < m.cols_; ++c) std::swap(m.at(a, c), m.at(b, c));
  }
  static void scale_row(Matrix& m, std::size_t r, Element s) {
    for (std::size_t c = 0; c < m.cols_; ++c) {
      m.at(r, c) = Field::mul(m.at(r, c), s);
    }
  }
  /// row r -= factor * row src  (== += in characteristic 2)
  static void add_scaled_row(Matrix& m, std::size_t r, std::size_t src,
                             Element factor) {
    for (std::size_t c = 0; c < m.cols_; ++c) {
      m.at(r, c) = Field::add(m.at(r, c), Field::mul(factor, m.at(src, c)));
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Element> cells_;
};

}  // namespace fountain::gf
