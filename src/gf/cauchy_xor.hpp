// XOR-only variant of the Cauchy Reed-Solomon codec, following the original
// bit-matrix scheme of Blomer et al.: every GF(2^8) coefficient is expanded
// into an 8x8 matrix over GF(2), packets are split into 8 equal segments, and
// a coefficient multiply-accumulate becomes a handful of segment XORs. This
// trades field-table lookups for pure XOR streaming, and is benchmarked
// against the table-driven codec in the ablation bench.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "gf/gf256.hpp"
#include "gf/rs_cauchy.hpp"
#include "util/symbols.hpp"

namespace fountain::gf {

/// dst ^= M(c) * src where symbols are treated as 8 segments of
/// bytes/8 bytes each. `bytes` must be a multiple of 8.
void cauchy_xor_fma(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t bytes, GF256::Element c);

/// Cauchy-RS codec whose data path is pure XOR (bit-matrix expansion of the
/// GF(2^8) Cauchy generator). Coefficient-level math (submatrix inversion)
/// reuses the analytic Cauchy inverse.
class CauchyXorCodec {
 public:
  CauchyXorCodec(std::size_t k, std::size_t parity);

  std::size_t source_count() const { return k_; }
  std::size_t parity_count() const { return parity_; }

  void encode(const util::SymbolMatrix& source,
              util::SymbolMatrix& parity_out) const;

  void decode(util::SymbolMatrix& source, const std::vector<bool>& have_source,
              const std::vector<std::pair<std::uint32_t, util::ConstByteSpan>>&
                  parity) const;

 private:
  std::size_t k_;
  std::size_t parity_;
  Matrix<GF256> gen_;
};

}  // namespace fountain::gf
