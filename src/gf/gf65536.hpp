// GF(2^16) arithmetic with the primitive polynomial
// x^16 + x^12 + x^3 + x + 1 (0x1100B). Needed because the paper's benchmark
// table covers files up to 16 MB = 16384 packets with a stretch factor of 2,
// i.e. n = 32768 encoding symbols — far beyond GF(2^8)'s 256 points.
// Buffer kernels process payloads as 16-bit words (symbol sizes must be even).
#pragma once

#include <cstddef>
#include <cstdint>

namespace fountain::gf {

class GF65536 {
 public:
  using Element = std::uint16_t;
  static constexpr unsigned kBits = 16;
  static constexpr std::size_t kOrder = 65536;
  /// Payload buffers are processed two bytes at a time.
  static constexpr std::size_t kSymbolAlignment = 2;

  static Element add(Element a, Element b) { return a ^ b; }
  static Element sub(Element a, Element b) { return a ^ b; }

  static Element mul(Element a, Element b) {
    if (a == 0 || b == 0) return 0;
    const auto& t = tables();
    return t.exp[t.log[a] + t.log[b]];
  }

  static Element inv(Element a);
  static Element div(Element a, Element b);
  static Element exp(unsigned power) { return tables().exp[power % 65535]; }
  static unsigned log(Element a);

  /// dst ^= c * src; bytes must be a multiple of 2.
  static void fma_buffer(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, Element c);
  /// dst *= c; bytes must be a multiple of 2.
  static void scale_buffer(std::uint8_t* dst, std::size_t bytes, Element c);

  /// dst ^= sum_i coeffs[i] * srcs[i] — the same RS row-synthesis entry
  /// point as GF256::fma_rows. GF(2^16) has no SIMD kernel tier, but the
  /// fold is still cache-blocked so the destination row stays L1-resident
  /// across the whole linear combination. Zero coefficients are skipped;
  /// bytes must be a multiple of 2.
  static void fma_rows(std::uint8_t* dst, const std::uint8_t* const* srcs,
                       const Element* coeffs, std::size_t count,
                       std::size_t bytes);

 private:
  struct Tables {
    // exp has 2*65535 entries so mul can index log[a]+log[b] without a mod.
    Element* exp;
    std::uint32_t* log;
    Tables();
    ~Tables();
    Tables(const Tables&) = delete;
    Tables& operator=(const Tables&) = delete;
  };
  static const Tables& tables();
};

}  // namespace fountain::gf
