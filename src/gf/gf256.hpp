// GF(2^8) arithmetic with the AES-friendly primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D). This is the field used by Rizzo's FEC
// code and by the interleaved-block baselines (block sizes k = 20, 50 fit
// comfortably in one byte of index space). A full 256x256 product table makes
// the per-byte buffer kernel a single lookup.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kern/kernels.hpp"
#include "util/symbols.hpp"

namespace fountain::gf {

class GF256 {
 public:
  using Element = std::uint8_t;
  static constexpr unsigned kBits = 8;
  static constexpr std::size_t kOrder = 256;
  /// Symbols are byte streams; any length works.
  static constexpr std::size_t kSymbolAlignment = 1;

  static Element add(Element a, Element b) { return a ^ b; }
  static Element sub(Element a, Element b) { return a ^ b; }
  static Element mul(Element a, Element b) { return tables().mul[a][b]; }
  static Element inv(Element a);
  static Element div(Element a, Element b);
  /// alpha^power where alpha = 0x02 is a generator.
  static Element exp(unsigned power) { return tables().exp[power % 255]; }
  static unsigned log(Element a);

  /// dst ^= c * src over the whole buffer. Routed through the dispatched
  /// kern::gf256_fma_block (GF2P8AFFINEQB on GFNI hosts, split-nibble
  /// PSHUFB/vqtbl1q on AVX-512BW/AVX2/NEON, full 256-entry table lookup on
  /// scalar hosts).
  static void fma_buffer(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, Element c);
  /// dst *= c over the whole buffer.
  static void scale_buffer(std::uint8_t* dst, std::size_t bytes, Element c);

  /// dst ^= sum_i coeffs[i] * srcs[i], all rows `bytes` long — the RS
  /// row-synthesis primitive, routed through the cache-blocked
  /// kern::gf256_fma_rows so the destination row stays L1-resident across
  /// the whole linear combination. Zero coefficients are skipped; `count`
  /// must not exceed kOrder (RS codes guarantee k + parity <= 256).
  static void fma_rows(std::uint8_t* dst, const std::uint8_t* const* srcs,
                       const Element* coeffs, std::size_t count,
                       std::size_t bytes);

  /// The kernel-layer multiply context for constant `c`: the two 16-entry
  /// split-nibble half-tables, the full 256-entry row, and the GFNI affine
  /// bit-matrix. Pointers stay valid for the process lifetime.
  static kern::Gf256Ctx mul_ctx(Element c) {
    const Tables& t = tables();
    return kern::Gf256Ctx{t.nib_lo[c], t.nib_hi[c], t.mul[c], t.affine[c]};
  }

 private:
  struct Tables {
    Element exp[512];
    std::uint16_t log[256];  // log[0] unused sentinel
    Element mul[256][256];
    Element inverse[256];
    // Split-nibble half-tables: nib_lo[c][x] = c * x and
    // nib_hi[c][x] = c * (x << 4) for x in [0, 16), so
    // c * b = nib_lo[c][b & 0xf] ^ nib_hi[c][b >> 4] by linearity of the
    // field multiply over GF(2).
    Element nib_lo[256][16];
    Element nib_hi[256][16];
    // Multiply-by-c as a packed 8x8 GF(2) bit-matrix in GF2P8AFFINEQB's
    // layout: byte 7-r is the mask of input bits whose parity gives output
    // bit r. Consumed by the GFNI kernel tier via Gf256Ctx::affine.
    std::uint64_t affine[256];
    Tables();
  };
  static const Tables& tables();
};

}  // namespace fountain::gf
