// GF(2^8) arithmetic with the AES-friendly primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D). This is the field used by Rizzo's FEC
// code and by the interleaved-block baselines (block sizes k = 20, 50 fit
// comfortably in one byte of index space). A full 256x256 product table makes
// the per-byte buffer kernel a single lookup.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/symbols.hpp"

namespace fountain::gf {

class GF256 {
 public:
  using Element = std::uint8_t;
  static constexpr unsigned kBits = 8;
  static constexpr std::size_t kOrder = 256;
  /// Symbols are byte streams; any length works.
  static constexpr std::size_t kSymbolAlignment = 1;

  static Element add(Element a, Element b) { return a ^ b; }
  static Element sub(Element a, Element b) { return a ^ b; }
  static Element mul(Element a, Element b) { return tables().mul[a][b]; }
  static Element inv(Element a);
  static Element div(Element a, Element b);
  /// alpha^power where alpha = 0x02 is a generator.
  static Element exp(unsigned power) { return tables().exp[power % 255]; }
  static unsigned log(Element a);

  /// dst ^= c * src over the whole buffer.
  static void fma_buffer(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, Element c);
  /// dst *= c over the whole buffer.
  static void scale_buffer(std::uint8_t* dst, std::size_t bytes, Element c);

 private:
  struct Tables {
    Element exp[512];
    std::uint16_t log[256];  // log[0] unused sentinel
    Element mul[256][256];
    Element inverse[256];
    Tables();
  };
  static const Tables& tables();
};

}  // namespace fountain::gf
