// Codec factory registry: constructs a fec::ErasureCode from the fields
// that actually travel between endpoints — the one-byte CodecId carried in
// every net::PacketHeader plus the CodecParams advertised on the control
// channel (proto::ControlInfo). This is what makes the decode side of
// multi-source codec quarantine *constructive*: instead of requiring a
// pre-shared ErasureCode pointer, a receiver (or an engine::Session) can
// instantiate the matching code for whatever family a sender announces.
//
// The registry with the three built-in families (Tornado, Reed-Solomon,
// interleaved) is CodecRegistry::builtin(); scenarios can also build private
// registries to add experimental codecs without touching the wire enum.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fec/codec_id.hpp"
#include "fec/erasure_code.hpp"

namespace fountain::fec {

/// The construction parameters both ends must agree on, in the units they
/// are advertised: k source symbols of symbol_size bytes stretched by
/// `stretch`, deterministic structure drawn from `seed`. `variant` selects a
/// sub-family: Tornado 0 = variant A / 1 = variant B; Reed-Solomon
/// 0 = Cauchy / 1 = Vandermonde; interleaved = block count (0 picks
/// ~50-packet blocks, the paper's Section 6 operating point).
struct CodecParams {
  std::size_t k = 0;
  double stretch = 2.0;
  std::size_t symbol_size = 0;
  std::uint64_t seed = 1;
  std::uint32_t variant = 0;

  friend bool operator==(const CodecParams&, const CodecParams&) = default;
};

class CodecRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<ErasureCode>(const CodecParams&)>;

  CodecRegistry() = default;

  /// The process-wide registry holding the built-in codec families, one per
  /// CodecId value. Constructed on first use; immutable afterwards.
  static const CodecRegistry& builtin();

  /// Registers a factory for `id`. Re-registering an id replaces its factory
  /// (so tests can shadow a family in a private registry).
  void register_codec(CodecId id, std::string name, Factory factory);

  bool contains(CodecId id) const;
  /// Human-readable family name; throws std::out_of_range for unknown ids.
  const std::string& name(CodecId id) const;
  /// Registered ids in registration order.
  std::vector<CodecId> ids() const;

  /// Instantiates the code a sender advertising (id, params) is using.
  /// Throws std::out_of_range for an unregistered id and propagates the
  /// codec's own std::invalid_argument for unusable params; the returned
  /// code always satisfies codec_id() == id, source_count() == params.k and
  /// symbol_size() == params.symbol_size.
  std::unique_ptr<ErasureCode> create(CodecId id,
                                      const CodecParams& params) const;

 private:
  struct Entry {
    CodecId id;
    std::string name;
    Factory factory;
  };
  const Entry* find(CodecId id) const;

  std::vector<Entry> entries_;
};

}  // namespace fountain::fec
