#include "fec/interleaved.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <stdexcept>

#include "gf/gf256.hpp"
#include "gf/gf65536.hpp"
#include "gf/rs_cauchy.hpp"

namespace fountain::fec {

/// Field-erasing wrapper around a per-block Cauchy codec; blocks with the
/// same (k, l) share one instance.
class InterleavedCode::BlockCodec {
 public:
  virtual ~BlockCodec() = default;
  /// Synthesizes one parity symbol of the block whose source rows are
  /// `source` (the streaming-encoder path; k_b field FMAs, no allocation).
  virtual void encode_one(util::ConstSymbolView source,
                          std::size_t parity_row,
                          util::ByteSpan out) const = 0;
  virtual void decode(
      util::SymbolMatrix& source, const std::vector<bool>& have_source,
      const std::vector<std::pair<std::uint32_t, util::ConstByteSpan>>& parity)
      const = 0;
};

namespace {

template <typename Field>
class BlockCodecImpl final : public InterleavedCode::BlockCodec {
 public:
  BlockCodecImpl(std::size_t k, std::size_t parity) : codec_(k, parity) {}

  void encode_one(util::ConstSymbolView source, std::size_t parity_row,
                  util::ByteSpan out) const override {
    codec_.encode_one(source, parity_row, out);
  }

  void decode(util::SymbolMatrix& source, const std::vector<bool>& have_source,
              const std::vector<std::pair<std::uint32_t, util::ConstByteSpan>>&
                  parity) const override {
    codec_.decode(source, have_source, parity);
  }

 private:
  gf::CauchyCodec<Field> codec_;
};

std::unique_ptr<InterleavedCode::BlockCodec> make_block_codec(
    std::size_t k, std::size_t parity) {
  if (k + parity <= gf::GF256::kOrder) {
    return std::make_unique<BlockCodecImpl<gf::GF256>>(k, parity);
  }
  return std::make_unique<BlockCodecImpl<gf::GF65536>>(k, parity);
}

}  // namespace

InterleavedCode::InterleavedCode(std::size_t total_source, std::size_t blocks,
                                 std::size_t symbol_size, double stretch)
    : total_source_(total_source), symbol_size_(symbol_size) {
  if (total_source == 0 || blocks == 0 || blocks > total_source) {
    throw std::invalid_argument("InterleavedCode: bad block count");
  }
  if (stretch <= 1.0) {
    throw std::invalid_argument("InterleavedCode: stretch must exceed 1");
  }
  const std::size_t q = total_source / blocks;
  const std::size_t r = total_source % blocks;
  std::size_t offset = 0;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> codec_slots;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t kb = q + (b < r ? 1 : 0);
    const auto lb = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround((stretch - 1.0) *
                                                 static_cast<double>(kb))));
    block_source_.push_back(kb);
    block_parity_.push_back(lb);
    source_offset_.push_back(offset);
    offset += kb;
    total_encoded_ += kb + lb;
    const auto key = std::make_pair(kb, lb);
    auto it = codec_slots.find(key);
    if (it == codec_slots.end()) {
      codec_slots.emplace(key, codecs_.size());
      codec_of_block_.push_back(codecs_.size());
      codecs_.push_back(make_block_codec(kb, lb));
    } else {
      codec_of_block_.push_back(it->second);
    }
  }

  // Interleaved transmission order: one packet from each still-live block per
  // round, exactly the scheme in the paper's Section 6 definition.
  index_map_.reserve(total_encoded_);
  const std::size_t max_nb = *std::max_element(block_source_.begin(),
                                               block_source_.end()) +
                             *std::max_element(block_parity_.begin(),
                                               block_parity_.end());
  for (std::uint32_t t = 0; t < max_nb; ++t) {
    for (std::uint32_t b = 0; b < blocks; ++b) {
      if (t < block_source_[b] + block_parity_[b]) {
        index_map_.push_back(Position{b, t});
      }
    }
  }
}

InterleavedCode::~InterleavedCode() = default;

InterleavedCode::Position InterleavedCode::position(
    std::uint32_t encoded_index) const {
  if (encoded_index >= index_map_.size()) {
    throw std::out_of_range("InterleavedCode: encoded index");
  }
  return index_map_[encoded_index];
}

/// Each block's source rows are a contiguous range of the global source, so
/// the encoder needs no state at all: a source symbol is a memcpy through
/// the interleaving map, and a parity symbol is one per-block encode_one
/// over a sub-view of the borrowed source (no staging copies).
class InterleavedCode::Encoder final : public fec::BlockEncoder {
 public:
  Encoder(const InterleavedCode& code, util::ConstSymbolView source)
      : code_(code), source_(source) {
    if (source_.rows() != code.source_count() ||
        source_.symbol_size() != code.symbol_size()) {
      throw std::invalid_argument("InterleavedCode: source shape mismatch");
    }
  }

  std::size_t source_count() const override { return code_.source_count(); }
  std::size_t encoded_count() const override { return code_.encoded_count(); }
  std::size_t symbol_size() const override { return code_.symbol_size(); }

  void write_symbol(std::uint32_t index, util::ByteSpan out) const override {
    if (index >= code_.encoded_count()) {
      throw std::out_of_range("InterleavedCode: encoder index");
    }
    if (out.size() != code_.symbol_size()) {
      throw std::invalid_argument("InterleavedCode: encoder output size");
    }
    const auto [b, pos] = code_.index_map_[index];
    const std::size_t kb = code_.block_source_[b];
    if (pos < kb) {
      std::memcpy(out.data(),
                  source_.row(code_.source_offset_[b] + pos).data(),
                  out.size());
    } else {
      const util::ConstSymbolView block(
          source_.data() + code_.source_offset_[b] * code_.symbol_size_, kb,
          code_.symbol_size_);
      code_.codecs_[code_.codec_of_block_[b]]->encode_one(block, pos - kb,
                                                          out);
    }
  }

 private:
  const InterleavedCode& code_;
  util::ConstSymbolView source_;
};

std::unique_ptr<fec::BlockEncoder> InterleavedCode::make_encoder(
    util::ConstSymbolView source) const {
  return std::make_unique<Encoder>(*this, source);
}

class InterleavedCode::Structural final : public StructuralDecoder {
 public:
  explicit Structural(const InterleavedCode& code)
      : code_(code), seen_(code.encoded_count(), false),
        block_distinct_(code.block_count(), 0) {}

  bool add_index(std::uint32_t index) override {
    if (index >= seen_.size()) {
      throw std::out_of_range("InterleavedCode: index");
    }
    if (!seen_[index]) {
      seen_[index] = true;
      const auto [b, pos] = code_.index_map_[index];
      (void)pos;
      if (block_distinct_[b] < code_.block_source_[b]) {
        if (++block_distinct_[b] == code_.block_source_[b]) ++blocks_done_;
      } else {
        ++block_distinct_[b];
      }
    }
    return complete();
  }

  bool complete() const override {
    return blocks_done_ == code_.block_count();
  }

  void reset() override {
    std::fill(seen_.begin(), seen_.end(), false);
    std::fill(block_distinct_.begin(), block_distinct_.end(), 0);
    blocks_done_ = 0;
  }

 private:
  const InterleavedCode& code_;
  std::vector<bool> seen_;
  std::vector<std::size_t> block_distinct_;
  std::size_t blocks_done_ = 0;
};

class InterleavedCode::Decoder final : public IncrementalDecoder {
 public:
  explicit Decoder(const InterleavedCode& code)
      : code_(code), source_(code.source_count(), code.symbol_size()) {
    blocks_.reserve(code.block_count());
    for (std::size_t b = 0; b < code.block_count(); ++b) {
      blocks_.push_back(BlockState(code, b));
    }
  }

  bool add_symbol(std::uint32_t index, util::ConstByteSpan data) override {
    if (complete_) return true;
    if (index >= code_.encoded_count()) {
      throw std::out_of_range("InterleavedCode: index");
    }
    if (data.size() != code_.symbol_size()) {
      throw std::invalid_argument("InterleavedCode: payload size");
    }
    const auto [b, pos] = code_.index_map_[index];
    BlockState& block = blocks_[b];
    if (block.done) return false;
    const std::size_t kb = code_.block_source_[b];
    if (pos < kb) {
      if (!block.have_source[pos]) {
        std::memcpy(source_.row(code_.source_offset_[b] + pos).data(),
                    data.data(), data.size());
        block.have_source[pos] = true;
        ++block.distinct;
      }
    } else {
      const std::uint32_t pidx = pos - static_cast<std::uint32_t>(kb);
      if (!block.parity_seen[pidx] && block.parity_indices.size() < kb) {
        block.parity_seen[pidx] = true;
        std::memcpy(block.parity_store.row(block.parity_indices.size()).data(),
                    data.data(), data.size());
        block.parity_indices.push_back(pidx);
        ++block.distinct;
      }
    }
    if (!block.done && block.distinct >= kb) {
      finish_block(b);
      if (blocks_done_ == code_.block_count()) complete_ = true;
    }
    return complete_;
  }

  bool complete() const override { return complete_; }

  void reset() override {
    for (BlockState& block : blocks_) {
      std::fill(block.have_source.begin(), block.have_source.end(), false);
      std::fill(block.parity_seen.begin(), block.parity_seen.end(), false);
      block.parity_indices.clear();
      block.distinct = 0;
      block.done = false;
    }
    blocks_done_ = 0;
    complete_ = false;
  }

  util::ConstSymbolView source() const override { return source_; }

 private:
  struct BlockState {
    BlockState(const InterleavedCode& code, std::size_t b)
        : have_source(code.block_source_[b], false),
          parity_store(code.block_source_[b], code.symbol_size()),
          parity_seen(code.block_parity_[b], false) {}
    std::vector<bool> have_source;
    util::SymbolMatrix parity_store;
    std::vector<bool> parity_seen;
    std::vector<std::uint32_t> parity_indices;
    std::size_t distinct = 0;
    bool done = false;
  };

  void finish_block(std::size_t b) {
    BlockState& block = blocks_[b];
    const std::size_t kb = code_.block_source_[b];
    // Pull this block's source rows into a dense scratch, decode, push back.
    util::SymbolMatrix scratch(kb, code_.symbol_size());
    std::memcpy(scratch.data(),
                source_.data() + code_.source_offset_[b] * code_.symbol_size(),
                scratch.size_bytes());
    std::vector<std::pair<std::uint32_t, util::ConstByteSpan>> parity;
    parity.reserve(block.parity_indices.size());
    for (std::size_t i = 0; i < block.parity_indices.size(); ++i) {
      parity.emplace_back(block.parity_indices[i], block.parity_store.row(i));
    }
    code_.codecs_[code_.codec_of_block_[b]]->decode(scratch, block.have_source,
                                                    parity);
    std::memcpy(source_.data() + code_.source_offset_[b] * code_.symbol_size(),
                scratch.data(), scratch.size_bytes());
    block.done = true;
    ++blocks_done_;
  }

  const InterleavedCode& code_;
  util::SymbolMatrix source_;
  std::vector<BlockState> blocks_;
  std::size_t blocks_done_ = 0;
  bool complete_ = false;
};

std::unique_ptr<IncrementalDecoder> InterleavedCode::make_decoder() const {
  return std::make_unique<Decoder>(*this);
}

std::unique_ptr<StructuralDecoder> InterleavedCode::make_structural_decoder()
    const {
  return std::make_unique<Structural>(*this);
}

}  // namespace fountain::fec
