// Wire-level identifier of an erasure-code family. Carried as one byte in
// net::PacketHeader and advertised by every fec::ErasureCode so that
// multi-source sessions (mirrors, dispersity paths) can reject packets from a
// sender running a different code instead of feeding them to the wrong
// decoder. Lives in its own header so net/ can name it without pulling in the
// full fec interfaces.
#pragma once

#include <cstdint>

namespace fountain::fec {

enum class CodecId : std::uint8_t {
  kTornado = 0,
  kReedSolomon = 1,
  kInterleaved = 2,
};

}  // namespace fountain::fec
