// Wire-level identifier of an erasure-code family. Carried as one byte in
// net::PacketHeader and advertised by every fec::ErasureCode so that
// multi-source sessions (mirrors, dispersity paths) can reject packets from a
// sender running a different code instead of feeding them to the wrong
// decoder. Lives in its own header so net/ can name it without pulling in the
// full fec interfaces.
#pragma once

#include <cstdint>

namespace fountain::fec {

enum class CodecId : std::uint8_t {
  kTornado = 0,
  kReedSolomon = 1,
  kInterleaved = 2,
};

/// True iff `raw` names a CodecId above. Wire parsers must check this before
/// casting an untrusted byte into the enum.
constexpr bool is_known_codec(std::uint8_t raw) {
  return raw <= static_cast<std::uint8_t>(CodecId::kInterleaved);
}

}  // namespace fountain::fec
