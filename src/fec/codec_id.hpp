// Wire-level identifier of an erasure-code family. Carried as one byte in
// net::PacketHeader and advertised by every fec::ErasureCode so that
// multi-source sessions (mirrors, dispersity paths) can reject packets from a
// sender running a different code instead of feeding them to the wrong
// decoder. Lives in its own header so net/ can name it without pulling in the
// full fec interfaces.
#pragma once

#include <cstdint>

namespace fountain::fec {

enum class CodecId : std::uint8_t {
  kTornado = 0,
  kReedSolomon = 1,
  kInterleaved = 2,
  kLT = 3,
};

/// Sentinel naming the highest assigned CodecId. New families MUST be added
/// contiguously at the end of the enum AND this sentinel moved to the new
/// last member — is_known_codec() derives its bound from here. Keeping the
/// bound next to the enum (instead of hardcoding a member name below) makes
/// "add a family, forget the parser" a one-line review check rather than a
/// silent wire-level rejection of the new codec.
inline constexpr CodecId kMaxCodecId = CodecId::kLT;

static_assert(static_cast<std::uint8_t>(kMaxCodecId) ==
                  static_cast<std::uint8_t>(CodecId::kLT),
              "kMaxCodecId must name the last CodecId member");

/// True iff `raw` names a CodecId above. Wire parsers must check this before
/// casting an untrusted byte into the enum.
constexpr bool is_known_codec(std::uint8_t raw) {
  return raw <= static_cast<std::uint8_t>(kMaxCodecId);
}

}  // namespace fountain::fec
