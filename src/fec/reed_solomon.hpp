// ErasureCode adapters for the Reed-Solomon codecs. Systematic layout:
// encoding indices [0, k) are the source symbols verbatim, [k, n) are parity.
// Being MDS codes, *any* k distinct encoding symbols reconstruct the source —
// the "reception overhead 0" row of the paper's Table 1.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fec/erasure_code.hpp"
#include "gf/gf256.hpp"
#include "gf/gf65536.hpp"
#include "gf/rs_cauchy.hpp"
#include "gf/rs_vandermonde.hpp"

namespace fountain::fec {

/// Counts distinct indices; decodable exactly when k have arrived (MDS).
class MdsStructuralDecoder final : public StructuralDecoder {
 public:
  MdsStructuralDecoder(std::size_t k, std::size_t n)
      : k_(k), seen_(n, false) {}

  bool add_index(std::uint32_t index) override {
    if (index >= seen_.size()) throw std::out_of_range("MDS: index");
    if (!seen_[index]) {
      seen_[index] = true;
      ++distinct_;
    }
    return complete();
  }

  bool complete() const override { return distinct_ >= k_; }

  void reset() override {
    std::fill(seen_.begin(), seen_.end(), false);
    distinct_ = 0;
  }

 private:
  std::size_t k_;
  std::size_t distinct_ = 0;
  std::vector<bool> seen_;
};

template <typename Codec>
class RsErasureCode final : public ErasureCode {
 public:
  RsErasureCode(std::size_t k, std::size_t parity, std::size_t symbol_size)
      : codec_(k, parity), symbol_size_(symbol_size) {}

  std::size_t source_count() const override { return codec_.source_count(); }
  std::size_t encoded_count() const override {
    return codec_.source_count() + codec_.parity_count();
  }
  std::size_t symbol_size() const override { return symbol_size_; }
  CodecId codec_id() const override { return CodecId::kReedSolomon; }

  const Codec& codec() const { return codec_; }

  std::unique_ptr<BlockEncoder> make_encoder(
      util::ConstSymbolView source) const override {
    return std::make_unique<Encoder>(*this, source);
  }

  std::unique_ptr<IncrementalDecoder> make_decoder() const override {
    return std::make_unique<Decoder>(*this);
  }

  std::unique_ptr<StructuralDecoder> make_structural_decoder() const override {
    return std::make_unique<MdsStructuralDecoder>(source_count(),
                                                  encoded_count());
  }

 private:
  /// Stateless beyond the borrowed source view: the systematic prefix is a
  /// memcpy and each parity row is synthesized per index from the codec's
  /// precomputed generator row (k field FMAs straight into the caller's
  /// buffer — no allocation on the per-symbol path).
  class Encoder final : public BlockEncoder {
   public:
    Encoder(const RsErasureCode& code, util::ConstSymbolView source)
        : code_(code), source_(source) {
      if (source_.rows() != code.source_count() ||
          source_.symbol_size() != code.symbol_size()) {
        throw std::invalid_argument("RsErasureCode: source shape mismatch");
      }
    }

    std::size_t source_count() const override { return code_.source_count(); }
    std::size_t encoded_count() const override {
      return code_.encoded_count();
    }
    std::size_t symbol_size() const override { return code_.symbol_size(); }

    void write_symbol(std::uint32_t index, util::ByteSpan out) const override {
      const std::size_t k = code_.source_count();
      if (index >= code_.encoded_count()) {
        throw std::out_of_range("RsErasureCode: encoder index");
      }
      if (out.size() != code_.symbol_size()) {
        throw std::invalid_argument("RsErasureCode: encoder output size");
      }
      if (index < k) {
        std::memcpy(out.data(), source_.row(index).data(), out.size());
      } else {
        code_.codec_.encode_one(source_, index - k, out);
      }
    }

   private:
    const RsErasureCode& code_;
    util::ConstSymbolView source_;
  };

  class Decoder final : public IncrementalDecoder {
   public:
    explicit Decoder(const RsErasureCode& code)
        : code_(code),
          source_(code.source_count(), code.symbol_size()),
          have_source_(code.source_count(), false),
          parity_store_(code.source_count(), code.symbol_size()),
          parity_seen_(code.codec_.parity_count(), false) {}

    bool add_symbol(std::uint32_t index, util::ConstByteSpan data) override {
      if (complete_) return true;
      const std::size_t k = code_.source_count();
      if (index >= code_.encoded_count()) {
        throw std::out_of_range("RsErasureCode: index");
      }
      if (data.size() != code_.symbol_size()) {
        throw std::invalid_argument("RsErasureCode: payload size");
      }
      if (index < k) {
        if (!have_source_[index]) {
          std::memcpy(source_.row(index).data(), data.data(), data.size());
          have_source_[index] = true;
          ++distinct_;
        }
      } else {
        const std::uint32_t pidx = index - static_cast<std::uint32_t>(k);
        if (!parity_seen_[pidx]) {
          parity_seen_[pidx] = true;
          // We never need more parity symbols than there are source symbols.
          if (parity_indices_.size() < k) {
            std::memcpy(parity_store_.row(parity_indices_.size()).data(),
                        data.data(), data.size());
            parity_indices_.push_back(pidx);
            ++distinct_;
          }
        }
      }
      if (distinct_ >= k) finish();
      return complete_;
    }

    bool complete() const override { return complete_; }

    void reset() override {
      std::fill(have_source_.begin(), have_source_.end(), false);
      std::fill(parity_seen_.begin(), parity_seen_.end(), false);
      parity_indices_.clear();
      distinct_ = 0;
      complete_ = false;
    }

    util::ConstSymbolView source() const override { return source_; }

   private:
    void finish() {
      std::vector<std::pair<std::uint32_t, util::ConstByteSpan>> parity;
      parity.reserve(parity_indices_.size());
      for (std::size_t i = 0; i < parity_indices_.size(); ++i) {
        parity.emplace_back(parity_indices_[i], parity_store_.row(i));
      }
      code_.codec_.decode(source_, have_source_, parity);
      complete_ = true;
    }

    const RsErasureCode& code_;
    util::SymbolMatrix source_;
    std::vector<bool> have_source_;
    util::SymbolMatrix parity_store_;
    std::vector<bool> parity_seen_;
    std::vector<std::uint32_t> parity_indices_;
    std::size_t distinct_ = 0;
    bool complete_ = false;
  };

  Codec codec_;
  std::size_t symbol_size_;
};

using VandermondeCode8 = RsErasureCode<gf::VandermondeCodec<gf::GF256>>;
using VandermondeCode16 = RsErasureCode<gf::VandermondeCodec<gf::GF65536>>;
using CauchyCode8 = RsErasureCode<gf::CauchyCodec<gf::GF256>>;
using CauchyCode16 = RsErasureCode<gf::CauchyCodec<gf::GF65536>>;

enum class RsKind { kVandermonde, kCauchy };

/// Picks the smallest field that fits n = k + parity and returns the adapted
/// code.
std::unique_ptr<ErasureCode> make_reed_solomon(RsKind kind, std::size_t k,
                                               std::size_t parity,
                                               std::size_t symbol_size);

}  // namespace fountain::fec
