// The common abstraction every code in this library implements: a block
// erasure code that stretches k source symbols into n encoding symbols
// (stretch factor c = n/k, the paper uses c = 2 throughout) and reconstructs
// the source from a sufficient subset of them.
//
// Two decoder views are provided:
//  * IncrementalDecoder — consumes real payloads one packet at a time and
//    reports when the source is fully reconstructed (the paper's client-side
//    "incremental" mode, and the workhorse of the timing benches).
//  * StructuralDecoder — consumes only packet *indices* and reports when the
//    source *would be* decodable. Decodability of every code here depends
//    only on which indices arrived, so the large receiver-population
//    simulations (Figures 4-6) can run thousands of receivers without
//    touching payload bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fec/codec_id.hpp"
#include "util/symbols.hpp"

namespace fountain::fec {

struct ReceivedSymbol {
  std::uint32_t index;
  util::ConstByteSpan data;
};

/// Index-only decodability oracle.
class StructuralDecoder {
 public:
  virtual ~StructuralDecoder() = default;
  /// Feeds one encoding-symbol index. Returns true once the source is
  /// decodable (and stays true). Duplicate indices are permitted and have no
  /// effect.
  virtual bool add_index(std::uint32_t index) = 0;
  virtual bool complete() const = 0;
  /// Resets to the empty state so the object can be reused across simulated
  /// receivers without reallocation.
  virtual void reset() = 0;
};

/// Payload-carrying decoder.
class IncrementalDecoder {
 public:
  virtual ~IncrementalDecoder() = default;
  /// Feeds one encoding symbol. Returns true once the source is fully
  /// reconstructed. Duplicates are permitted.
  virtual bool add_symbol(std::uint32_t index, util::ConstByteSpan data) = 0;
  virtual bool complete() const = 0;
  /// Resets to the empty state (parity with StructuralDecoder::reset()) so
  /// payload decoders can be reused across simulated receivers — and across
  /// repeated decode attempts — without reallocation. Invalidates source().
  virtual void reset() = 0;
  /// The reconstructed source; valid only when complete(). Returned as a
  /// non-owning view so decoders that already hold the source rows (e.g. the
  /// Tornado decoder's node matrix prefix) need not keep a mirror copy; the
  /// view is invalidated with the decoder.
  virtual util::ConstSymbolView source() const = 0;
};

class ErasureCode {
 public:
  virtual ~ErasureCode() = default;

  virtual std::size_t source_count() const = 0;   // k
  virtual std::size_t encoded_count() const = 0;  // n
  virtual std::size_t symbol_size() const = 0;    // P bytes
  /// Which code family this is, for wire tagging (net::PacketHeader::codec)
  /// and engine-side codec matching in multi-source sessions.
  virtual CodecId codec_id() const = 0;

  double stretch_factor() const {
    return static_cast<double>(encoded_count()) /
           static_cast<double>(source_count());
  }

  /// Produces the full n-symbol encoding of `source` into `encoding`
  /// (encoding must have encoded_count() rows of symbol_size() bytes).
  virtual void encode(const util::SymbolMatrix& source,
                      util::SymbolMatrix& encoding) const = 0;

  virtual std::unique_ptr<IncrementalDecoder> make_decoder() const = 0;
  virtual std::unique_ptr<StructuralDecoder> make_structural_decoder()
      const = 0;

  /// One-shot convenience decode. Returns true on success and fills `out`.
  bool decode(const std::vector<ReceivedSymbol>& received,
              util::SymbolMatrix& out) const;
};

}  // namespace fountain::fec
