// The common abstraction every code in this library implements: a block
// erasure code that stretches k source symbols into n encoding symbols
// (stretch factor c = n/k, the paper uses c = 2 throughout) and reconstructs
// the source from a sufficient subset of them.
//
// The encode side is streaming-first (codec API v2). A server in this system
// is a carousel emitting an effectively unbounded symbol stream, so the
// primary producer interface is BlockEncoder: a stateful per-transfer object
// returned by ErasureCode::make_encoder(source) that generates any encoding
// symbol on demand into caller-provided storage. Holding an encoder costs
// O(k * P + codec state) instead of the O(n * P) a materialized encoding
// costs, and the first symbol is available after O(k) work instead of after
// the full-block encode. The whole-block encode() remains as a convenience
// loop over the encoder (tests and benches use it as the reference).
//
// Two decoder views are provided:
//  * IncrementalDecoder — consumes real payloads one packet at a time and
//    reports when the source is fully reconstructed (the paper's client-side
//    "incremental" mode, and the workhorse of the timing benches).
//  * StructuralDecoder — consumes only packet *indices* and reports when the
//    source *would be* decodable. Decodability of every code here depends
//    only on which indices arrived, so the large receiver-population
//    simulations (Figures 4-6) can run thousands of receivers without
//    touching payload bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "fec/codec_id.hpp"
#include "util/symbols.hpp"

namespace fountain::fec {

struct ReceivedSymbol {
  std::uint32_t index;
  util::ConstByteSpan data;
};

/// Stateful on-demand encoder for one transfer. Created by
/// ErasureCode::make_encoder over a borrowed source view (the view must
/// outlive the encoder); any per-transfer precomputation (e.g. the Tornado
/// cascade pass) happens once at construction. After construction,
/// write_symbol performs no hidden allocation: it writes straight into the
/// caller's buffer, so a server can stream symbols at wire rate.
///
/// Symbols may be requested in any order and repeatedly; write_symbol is a
/// pure function of `index` (byte-identical to row `index` of the whole-block
/// encoding), which is what lets engine sources replay transmission plans
/// from arbitrary points.
class BlockEncoder {
 public:
  virtual ~BlockEncoder() = default;

  virtual std::size_t source_count() const = 0;   // k
  virtual std::size_t encoded_count() const = 0;  // n
  virtual std::size_t symbol_size() const = 0;    // P bytes

  /// Bytes of encoder-owned symbol state beyond the borrowed source view
  /// (e.g. the Tornado check levels). Diagnostic: lets benches verify the
  /// O(n * P) -> O(k * P + state) memory claim.
  virtual std::size_t state_bytes() const { return 0; }

  /// Writes encoding symbol `index` into `out` (exactly symbol_size()
  /// bytes). Block codes throw std::out_of_range for index >=
  /// encoded_count(); *rateless* codes (the lt/ plane) accept every uint32
  /// index — their encoded_count() is a nominal n for block-shaped plumbing,
  /// not a bound. Callers that must stay block-shaped (e.g. whole-block
  /// encode()) only ever pass indices below encoded_count(), so both
  /// families satisfy them. Throws std::invalid_argument on a wrong-sized
  /// buffer.
  virtual void write_symbol(std::uint32_t index, util::ByteSpan out) const = 0;

  /// Batched variant: writes symbols [first, first + out.rows()) into the
  /// rows of `out`. The default loops over write_symbol; codecs override it
  /// when a contiguous range has a cheaper batch path.
  virtual void write_symbols(std::uint32_t first, util::SymbolView out) const;
};

/// Index-only decodability oracle.
class StructuralDecoder {
 public:
  virtual ~StructuralDecoder() = default;
  /// Feeds one encoding-symbol index. Returns true once the source is
  /// decodable (and stays true). Duplicate indices are permitted and have no
  /// effect.
  virtual bool add_index(std::uint32_t index) = 0;
  virtual bool complete() const = 0;
  /// Resets to the empty state so the object can be reused across simulated
  /// receivers without reallocation.
  virtual void reset() = 0;
};

/// Payload-carrying decoder.
class IncrementalDecoder {
 public:
  virtual ~IncrementalDecoder() = default;
  /// Feeds one encoding symbol. Returns true once the source is fully
  /// reconstructed. Duplicates are permitted.
  virtual bool add_symbol(std::uint32_t index, util::ConstByteSpan data) = 0;
  virtual bool complete() const = 0;
  /// Resets to the empty state (parity with StructuralDecoder::reset()) so
  /// payload decoders can be reused across simulated receivers — and across
  /// repeated decode attempts — without reallocation. Invalidates source().
  virtual void reset() = 0;
  /// The reconstructed source; valid only when complete(). Returned as a
  /// non-owning view so decoders that already hold the source rows (e.g. the
  /// Tornado decoder's node matrix prefix) need not keep a mirror copy; the
  /// view is invalidated with the decoder.
  virtual util::ConstSymbolView source() const = 0;
};

class ErasureCode {
 public:
  virtual ~ErasureCode() = default;

  virtual std::size_t source_count() const = 0;   // k
  virtual std::size_t encoded_count() const = 0;  // n
  virtual std::size_t symbol_size() const = 0;    // P bytes
  /// Which code family this is, for wire tagging (net::PacketHeader::codec)
  /// and engine-side codec matching in multi-source sessions.
  virtual CodecId codec_id() const = 0;

  double stretch_factor() const {
    return static_cast<double>(encoded_count()) /
           static_cast<double>(source_count());
  }

  /// Returns a streaming encoder over `source` (source_count() rows of
  /// symbol_size() bytes; shape mismatches throw std::invalid_argument).
  /// The encoder borrows the view — the underlying storage must outlive it.
  virtual std::unique_ptr<BlockEncoder> make_encoder(
      util::ConstSymbolView source) const = 0;

  /// Whole-block convenience: fills `encoding` (encoded_count() rows of
  /// symbol_size() bytes) from `source` by looping a fresh encoder over all
  /// indices. Byte-identical to streaming the same indices one at a time.
  void encode(const util::SymbolMatrix& source,
              util::SymbolMatrix& encoding) const;

  virtual std::unique_ptr<IncrementalDecoder> make_decoder() const = 0;
  virtual std::unique_ptr<StructuralDecoder> make_structural_decoder()
      const = 0;

  /// One-shot convenience decode. Returns true on success and fills `out`.
  bool decode(std::span<const ReceivedSymbol> received,
              util::SymbolMatrix& out) const;
};

}  // namespace fountain::fec
