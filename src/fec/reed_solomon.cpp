#include "fec/reed_solomon.hpp"

namespace fountain::fec {

std::unique_ptr<ErasureCode> make_reed_solomon(RsKind kind, std::size_t k,
                                               std::size_t parity,
                                               std::size_t symbol_size) {
  const std::size_t n = k + parity;
  switch (kind) {
    case RsKind::kVandermonde:
      if (n <= gf::GF256::kOrder) {
        return std::make_unique<VandermondeCode8>(k, parity, symbol_size);
      }
      return std::make_unique<VandermondeCode16>(k, parity, symbol_size);
    case RsKind::kCauchy:
      if (n <= gf::GF256::kOrder) {
        return std::make_unique<CauchyCode8>(k, parity, symbol_size);
      }
      return std::make_unique<CauchyCode16>(k, parity, symbol_size);
  }
  throw std::invalid_argument("make_reed_solomon: unknown kind");
}

}  // namespace fountain::fec
