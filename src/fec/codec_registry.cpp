#include "fec/codec_registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

// The builtin() factories must name every concrete code family, including
// the Tornado facade that lives a layer up in core/. This is a deliberate,
// TU-local inversion: the *header* stays within fec/, and keeping all
// built-in registrations in this one translation unit avoids the classic
// static-library pitfall of per-codec self-registration objects being
// dropped by the linker.
#include "core/tornado.hpp"
#include "fec/interleaved.hpp"
#include "fec/reed_solomon.hpp"
#include "lt/lt_code.hpp"

namespace fountain::fec {

namespace {

void check_common(const CodecParams& params, const char* family) {
  if (params.k == 0 || params.symbol_size == 0 || params.stretch <= 1.0) {
    throw std::invalid_argument(std::string(family) +
                                ": k and symbol_size must be positive and "
                                "stretch must exceed 1");
  }
}

std::unique_ptr<ErasureCode> make_tornado(const CodecParams& params) {
  check_common(params, "CodecRegistry/tornado");
  core::TornadoParams p =
      params.variant == 0
          ? core::TornadoParams::tornado_a(params.k, params.symbol_size,
                                           params.seed)
          : core::TornadoParams::tornado_b(params.k, params.symbol_size,
                                           params.seed);
  p.stretch = params.stretch;
  return std::make_unique<core::TornadoCode>(p);
}

std::unique_ptr<ErasureCode> make_rs(const CodecParams& params) {
  check_common(params, "CodecRegistry/reed_solomon");
  const auto parity = static_cast<std::size_t>(std::llround(
      (params.stretch - 1.0) * static_cast<double>(params.k)));
  return make_reed_solomon(
      params.variant == 0 ? RsKind::kCauchy : RsKind::kVandermonde, params.k,
      std::max<std::size_t>(parity, 1), params.symbol_size);
}

std::unique_ptr<ErasureCode> make_interleaved(const CodecParams& params) {
  check_common(params, "CodecRegistry/interleaved");
  // variant carries the block count; 0 means ~50-packet blocks.
  const std::size_t blocks =
      params.variant != 0
          ? params.variant
          : std::max<std::size_t>(1, (params.k + 49) / 50);
  return std::make_unique<InterleavedCode>(params.k, blocks,
                                           params.symbol_size, params.stretch);
}

std::unique_ptr<ErasureCode> make_lt(const CodecParams& params) {
  check_common(params, "CodecRegistry/lt");
  lt::LtParams p;
  p.k = params.k;
  p.symbol_size = params.symbol_size;
  p.stretch = params.stretch;
  p.seed = params.seed;
  // variant packs the robust-soliton (c, delta); 0 means the defaults.
  lt::params_from_variant(params.variant, p.c, p.delta);
  return std::make_unique<lt::LtCode>(p);
}

}  // namespace

const CodecRegistry& CodecRegistry::builtin() {
  static const CodecRegistry registry = [] {
    CodecRegistry r;
    r.register_codec(CodecId::kTornado, "tornado", make_tornado);
    r.register_codec(CodecId::kReedSolomon, "reed_solomon", make_rs);
    r.register_codec(CodecId::kInterleaved, "interleaved", make_interleaved);
    r.register_codec(CodecId::kLT, "lt", make_lt);
    return r;
  }();
  return registry;
}

void CodecRegistry::register_codec(CodecId id, std::string name,
                                   Factory factory) {
  if (!factory) {
    throw std::invalid_argument("CodecRegistry: null factory");
  }
  for (Entry& entry : entries_) {
    if (entry.id == id) {
      entry.name = std::move(name);
      entry.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back(Entry{id, std::move(name), std::move(factory)});
}

const CodecRegistry::Entry* CodecRegistry::find(CodecId id) const {
  for (const Entry& entry : entries_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

bool CodecRegistry::contains(CodecId id) const { return find(id) != nullptr; }

const std::string& CodecRegistry::name(CodecId id) const {
  const Entry* entry = find(id);
  if (entry == nullptr) {
    throw std::out_of_range("CodecRegistry: unknown codec id");
  }
  return entry->name;
}

std::vector<CodecId> CodecRegistry::ids() const {
  std::vector<CodecId> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.id);
  return out;
}

std::unique_ptr<ErasureCode> CodecRegistry::create(
    CodecId id, const CodecParams& params) const {
  const Entry* entry = find(id);
  if (entry == nullptr) {
    throw std::out_of_range("CodecRegistry: unknown codec id");
  }
  return entry->factory(params);
}

}  // namespace fountain::fec
