// The interleaved block-code baseline (Nonnenmacher/Biersack/Towsley, Rizzo/
// Vicisano — the paper's Section 6 comparator). K source packets are split
// into B blocks, each block is independently stretched with a Reed-Solomon
// code, and the encoding is transmitted interleaved: one packet from each
// block in turn. The receiver must complete *every* block, so reception
// overhead suffers from the coupon-collector effect the paper illustrates in
// Figure 3, which Tornado codes avoid by encoding over the whole file.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fec/erasure_code.hpp"

namespace fountain::fec {

class InterleavedCode final : public ErasureCode {
 public:
  /// Splits `total_source` packets into `blocks` blocks (sizes differing by
  /// at most one) and stretches each block by `stretch` (parity per block =
  /// round((stretch-1) * k_b), at least 1). Encoding index order is the
  /// interleaved transmission order: round t emits packet t of every block
  /// that still has one.
  InterleavedCode(std::size_t total_source, std::size_t blocks,
                  std::size_t symbol_size, double stretch = 2.0);
  ~InterleavedCode() override;

  InterleavedCode(const InterleavedCode&) = delete;
  InterleavedCode& operator=(const InterleavedCode&) = delete;

  std::size_t source_count() const override { return total_source_; }
  std::size_t encoded_count() const override { return total_encoded_; }
  std::size_t symbol_size() const override { return symbol_size_; }
  CodecId codec_id() const override { return CodecId::kInterleaved; }

  std::size_t block_count() const { return block_source_.size(); }
  std::size_t block_source_count(std::size_t b) const {
    return block_source_[b];
  }
  std::size_t block_encoded_count(std::size_t b) const {
    return block_source_[b] + block_parity_[b];
  }
  /// First global source index owned by block b.
  std::size_t block_source_offset(std::size_t b) const {
    return source_offset_[b];
  }

  struct Position {
    std::uint32_t block;
    std::uint32_t pos;  // within the block's encoding; < k_b means source
  };
  Position position(std::uint32_t encoded_index) const;

  std::unique_ptr<BlockEncoder> make_encoder(
      util::ConstSymbolView source) const override;

  std::unique_ptr<IncrementalDecoder> make_decoder() const override;
  std::unique_ptr<StructuralDecoder> make_structural_decoder() const override;

  /// Field-erasing per-block codec (implementation detail, public so the
  /// out-of-line implementations can derive from it).
  class BlockCodec;

 private:
  class Encoder;
  class Decoder;
  class Structural;

  std::size_t total_source_;
  std::size_t total_encoded_ = 0;
  std::size_t symbol_size_;
  std::vector<std::size_t> block_source_;   // k_b
  std::vector<std::size_t> block_parity_;   // l_b
  std::vector<std::size_t> source_offset_;  // global source index of block b
  std::vector<Position> index_map_;         // encoded index -> (block, pos)
  // One codec per distinct (k_b, l_b); block -> codec slot.
  std::vector<std::unique_ptr<BlockCodec>> codecs_;
  std::vector<std::size_t> codec_of_block_;
};

}  // namespace fountain::fec
