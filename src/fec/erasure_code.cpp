#include "fec/erasure_code.hpp"

#include <stdexcept>

namespace fountain::fec {

void BlockEncoder::write_symbols(std::uint32_t first,
                                 util::SymbolView out) const {
  for (std::size_t i = 0; i < out.rows(); ++i) {
    write_symbol(first + static_cast<std::uint32_t>(i), out.row(i));
  }
}

void ErasureCode::encode(const util::SymbolMatrix& source,
                         util::SymbolMatrix& encoding) const {
  if (encoding.rows() != encoded_count() ||
      encoding.symbol_size() != symbol_size()) {
    throw std::invalid_argument("ErasureCode::encode: encoding shape");
  }
  // make_encoder validates the source shape.
  make_encoder(source)->write_symbols(0, encoding);
}

bool ErasureCode::decode(std::span<const ReceivedSymbol> received,
                         util::SymbolMatrix& out) const {
  auto decoder = make_decoder();
  for (const auto& symbol : received) {
    if (decoder->add_symbol(symbol.index, symbol.data)) break;
  }
  if (!decoder->complete()) return false;
  out = util::SymbolMatrix(decoder->source());
  return true;
}

}  // namespace fountain::fec
