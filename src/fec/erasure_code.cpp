#include "fec/erasure_code.hpp"

namespace fountain::fec {

bool ErasureCode::decode(const std::vector<ReceivedSymbol>& received,
                         util::SymbolMatrix& out) const {
  auto decoder = make_decoder();
  for (const auto& symbol : received) {
    if (decoder->add_symbol(symbol.index, symbol.data)) break;
  }
  if (!decoder->complete()) return false;
  out = util::SymbolMatrix(decoder->source());
  return true;
}

}  // namespace fountain::fec
