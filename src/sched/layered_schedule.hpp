// The layered-multicast packet transmission schedule of Section 7.1.2
// (Table 5 / Figure 7). The encoding is divided into blocks of
// B = 2^(g-1) packets; layer 0 and layer 1 each send 1 packet per block per
// round, layer l >= 2 sends 2^(l-1). Which packets a layer sends in round j
// follows the reverse-binary construction, which guarantees the
//
//   One Level Property: a receiver that stays at a fixed subscription level
//   sees a full permutation of the entire encoding before any repeat,
//
// and likewise each individual layer cycles through the whole encoding.
#pragma once

#include <cstdint>
#include <vector>

namespace fountain::sched {

class LayeredSchedule {
 public:
  /// `layers` = g >= 1; `encoding_length` = n packets to schedule.
  LayeredSchedule(unsigned layers, std::size_t encoding_length);

  unsigned layer_count() const { return g_; }
  std::size_t encoding_length() const { return n_; }
  /// Block size B = 2^(g-1).
  std::size_t block_size() const { return block_; }
  std::size_t block_count() const { return (n_ + block_ - 1) / block_; }
  /// Rounds before the per-layer pattern repeats (2^(g-1)).
  std::size_t rounds_per_cycle() const { return block_; }

  /// Packets per block per round sent on `layer` (paper: B_0 = B_1 = 1,
  /// B_l = 2^(l-1) for l >= 1).
  std::size_t layer_rate(unsigned layer) const;
  /// Aggregate packets per block per round for a receiver subscribed to
  /// levels 0..level (inclusive).
  std::size_t level_rate(unsigned level) const;

  /// Within-block packet offsets sent by `layer` in round `j` (0-based).
  std::vector<unsigned> layer_block_offsets(unsigned layer,
                                            std::uint64_t round) const;

  /// Appends the global encoding indices sent on `layer` in round `j`: the
  /// per-block offsets applied to every block, in block order.
  ///
  /// Short final block contract (n % B != 0): offsets landing past the end
  /// of the encoding are skipped silently — never wrapped or clamped — so a
  /// round's emission can undershoot layer_rate(layer) * block_count().
  /// Because each offset recurs exactly layer_rate(layer) times per cycle,
  /// the skips are evenly spread: every window of B / layer_rate(layer)
  /// rounds still delivers each of the n indices exactly once (the
  /// generalized One Level Property; pinned by
  /// Schedule.PartialFinalBlockSkipsOffsetsPastTheEnd), and the average
  /// per-round rate at subscription level L is n * level_rate(L) / B.
  void append_layer_packets(unsigned layer, std::uint64_t round,
                            std::vector<std::uint32_t>& out) const;

 private:
  unsigned g_;
  std::size_t n_;
  std::size_t block_;
};

}  // namespace fountain::sched
