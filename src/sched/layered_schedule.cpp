#include "sched/layered_schedule.hpp"

#include <stdexcept>

namespace fountain::sched {

namespace {

/// Reverses the low `bits` bits of v.
unsigned bit_reverse(unsigned v, unsigned bits) {
  unsigned out = 0;
  for (unsigned b = 0; b < bits; ++b) {
    out = (out << 1) | ((v >> b) & 1u);
  }
  return out;
}

}  // namespace

LayeredSchedule::LayeredSchedule(unsigned layers, std::size_t encoding_length)
    : g_(layers), n_(encoding_length) {
  if (layers == 0 || layers > 16) {
    throw std::invalid_argument("LayeredSchedule: layers must be in [1, 16]");
  }
  if (encoding_length == 0) {
    throw std::invalid_argument("LayeredSchedule: empty encoding");
  }
  block_ = std::size_t{1} << (g_ - 1);
}

std::size_t LayeredSchedule::layer_rate(unsigned layer) const {
  if (layer >= g_) throw std::out_of_range("LayeredSchedule: layer");
  if (layer == 0) return 1;
  return std::size_t{1} << (layer - 1);
}

std::size_t LayeredSchedule::level_rate(unsigned level) const {
  if (level >= g_) throw std::out_of_range("LayeredSchedule: level");
  std::size_t total = 0;
  for (unsigned l = 0; l <= level; ++l) total += layer_rate(l);
  return total;
}

std::vector<unsigned> LayeredSchedule::layer_block_offsets(
    unsigned layer, std::uint64_t round) const {
  if (layer >= g_) throw std::out_of_range("LayeredSchedule: layer");
  const unsigned address_bits = g_ - 1;
  if (address_bits == 0) return {0};  // single layer, single-packet blocks

  // The reverse-binary scheme: layer l >= 1 addresses its packets with a
  // prefix of q = g - l bits; layer 0 uses the full g-1 bits like layer 1 but
  // with the complementary phase (mask 2^q - 1 instead of 2^(q-1) - 1), so
  // that together the layers of any subscription level tile each block.
  unsigned q;
  unsigned mask;
  if (layer == 0) {
    q = address_bits;
    mask = (1u << q) - 1u;
  } else {
    q = g_ - layer;
    mask = (1u << (q - 1)) - 1u;
  }
  const auto j = static_cast<unsigned>(round % (1u << q));
  const unsigned prefix = bit_reverse(j ^ mask, q);
  const unsigned span = 1u << (address_bits - q);
  std::vector<unsigned> offsets(span);
  for (unsigned s = 0; s < span; ++s) offsets[s] = prefix * span + s;
  return offsets;
}

void LayeredSchedule::append_layer_packets(
    unsigned layer, std::uint64_t round,
    std::vector<std::uint32_t>& out) const {
  const auto offsets = layer_block_offsets(layer, round);
  const std::size_t blocks = block_count();
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t base = b * block_;
    for (const unsigned off : offsets) {
      const std::size_t index = base + off;
      if (index < n_) out.push_back(static_cast<std::uint32_t>(index));
    }
  }
}

}  // namespace fountain::sched
