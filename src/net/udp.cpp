#include "net/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace fountain::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in to_sockaddr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("UdpSocket: bad IPv4 address: " + ep.host);
  }
  return addr;
}

Endpoint from_sockaddr(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return Endpoint{buf, ntohs(addr.sin_port)};
}

}  // namespace

UdpSocket::UdpSocket() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int reuse = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void UdpSocket::bind(const Endpoint& local) {
  const sockaddr_in addr = to_sockaddr(local);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind");
  }
}

std::uint16_t UdpSocket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

void UdpSocket::send_to(const Endpoint& peer, util::ConstByteSpan payload) {
  const sockaddr_in addr = to_sockaddr(peer);
  ssize_t sent;
  do {
    sent = ::sendto(fd_, payload.data(), payload.size(), 0,
                    reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (sent < 0 && errno == EINTR);
  if (sent < 0) throw_errno("sendto");
  if (static_cast<std::size_t>(sent) != payload.size()) {
    throw std::runtime_error("UdpSocket: short send");
  }
}

std::optional<UdpSocket::Datagram> UdpSocket::receive(
    std::chrono::milliseconds timeout, std::size_t max_payload) {
  // Poll against an absolute deadline so EINTR restarts wait only the
  // remaining time instead of the full timeout again.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    pollfd pfd{fd_, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(std::max<long long>(left.count(), 0)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (ready == 0) return std::nullopt;
    break;
  }

  std::vector<std::uint8_t> buf(max_payload);
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  ssize_t got;
  do {
    len = sizeof(addr);
    // MSG_TRUNC makes recvfrom return the datagram's true wire length even
    // when it exceeds the buffer, which is how truncation becomes visible.
    got = ::recvfrom(fd_, buf.data(), buf.size(), MSG_TRUNC,
                     reinterpret_cast<sockaddr*>(&addr), &len);
  } while (got < 0 && errno == EINTR);
  if (got < 0) throw_errno("recvfrom");
  const bool truncated = static_cast<std::size_t>(got) > buf.size();
  buf.resize(std::min(static_cast<std::size_t>(got), buf.size()));
  return Datagram{std::move(buf), from_sockaddr(addr), truncated};
}

void UdpSocket::join_multicast(const std::string& group_addr) {
  ip_mreq mreq{};
  if (inet_pton(AF_INET, group_addr.c_str(), &mreq.imr_multiaddr) != 1) {
    throw std::invalid_argument("UdpSocket: bad multicast address");
  }
  mreq.imr_interface.s_addr = htonl(INADDR_ANY);
  if (::setsockopt(fd_, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq, sizeof(mreq)) <
      0) {
    throw_errno("IP_ADD_MEMBERSHIP");
  }
}

}  // namespace fountain::net
