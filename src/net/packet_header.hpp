// Wire format of the prototype's data packets (paper Section 7.3): a 500-byte
// payload is "tagged with 12 bytes of information (packet index, serial
// number and group number) to give a final packet size of 512 bytes".
// Network byte order (big-endian). One of the twelve bytes carries the
// erasure-code family (fec::CodecId) so that a client aggregating several
// senders (mirrors, dispersity paths) can reject packets from a mismatched
// code instead of feeding them to the wrong decoder; the group number is a
// 16-bit field (the schedule allows at most 16 layers), which keeps the
// header at the paper's 12 bytes.
//
// Layout: [0..3] packet_index, [4..7] serial, [8] codec, [9] reserved (zero),
// [10..11] group.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fec/codec_id.hpp"
#include "util/symbols.hpp"

namespace fountain::net {

struct PacketHeader {
  static constexpr std::size_t kWireSize = 12;

  std::uint32_t packet_index = 0;  // index within the encoding
  std::uint32_t serial = 0;        // monotone per-sender transmission counter
  fec::CodecId codec = fec::CodecId::kTornado;  // erasure-code family
  std::uint16_t group = 0;         // multicast group (layer) number

  void serialize(util::ByteSpan out) const;
  static PacketHeader parse(util::ConstByteSpan in);

  friend bool operator==(const PacketHeader&, const PacketHeader&) = default;
};

/// Frames header + payload into a contiguous wire packet.
std::vector<std::uint8_t> frame_packet(const PacketHeader& header,
                                       util::ConstByteSpan payload);

struct ParsedPacket {
  PacketHeader header;
  util::ConstByteSpan payload;  // view into the input buffer
};

/// Parses a wire packet; returns std::nullopt if it is too short.
std::optional<ParsedPacket> parse_packet(util::ConstByteSpan wire);

}  // namespace fountain::net
