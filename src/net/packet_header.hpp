// Wire format of the prototype's data packets (paper Section 7.3): a 500-byte
// payload is "tagged with 12 bytes of information (packet index, serial
// number and group number) to give a final packet size of 512 bytes".
// Network byte order (big-endian).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/symbols.hpp"

namespace fountain::net {

struct PacketHeader {
  static constexpr std::size_t kWireSize = 12;

  std::uint32_t packet_index = 0;  // index within the encoding
  std::uint32_t serial = 0;        // monotone per-sender transmission counter
  std::uint32_t group = 0;         // multicast group (layer) number

  void serialize(util::ByteSpan out) const;
  static PacketHeader parse(util::ConstByteSpan in);

  friend bool operator==(const PacketHeader&, const PacketHeader&) = default;
};

/// Frames header + payload into a contiguous wire packet.
std::vector<std::uint8_t> frame_packet(const PacketHeader& header,
                                       util::ConstByteSpan payload);

struct ParsedPacket {
  PacketHeader header;
  util::ConstByteSpan payload;  // view into the input buffer
};

/// Parses a wire packet; returns std::nullopt if it is too short.
std::optional<ParsedPacket> parse_packet(util::ConstByteSpan wire);

}  // namespace fountain::net
