// Wire format of the prototype's data packets (paper Section 7.3): a 500-byte
// payload is "tagged with 12 bytes of information (packet index, serial
// number and group number) to give a final packet size of 512 bytes".
// Network byte order (big-endian). One of the twelve bytes carries the
// erasure-code family (fec::CodecId) so that a client aggregating several
// senders (mirrors, dispersity paths) can reject packets from a mismatched
// code instead of feeding them to the wrong decoder; the group number is a
// 16-bit field (the schedule allows at most 16 layers), which keeps the
// header at the paper's 12 bytes.
//
// Layout: [0..3] packet_index, [4..7] serial, [8] codec, [9] checksum,
// [10..11] group.
//
// Byte [9] (reserved and zero through PR 6) is an 8-bit header checksum:
// CRC-8/ATM (polynomial 0x07, init 0) over the other eleven bytes in wire
// order. UDP's 16-bit checksum is optional in IPv4 and blind to bit flips
// that cancel; an index or group byte flipped in flight would otherwise feed
// a valid-looking wrong symbol straight into a decoder. parse_packet verifies
// it before anything downstream sees the fields — a damaged header costs one
// rejected datagram, never a poisoned decode. Old (pre-checksum) senders
// wrote 0 at [9], which verifies only for the ~0.4% of headers whose CRC is
// 0, so mixed-version traffic is rejected, not misread.
#pragma once

#include <cstdint>
#include <vector>

#include "fec/codec_id.hpp"
#include "util/symbols.hpp"

namespace fountain::net {

/// Highest group (layer) count a sender may schedule; the wire format's
/// contract ("the schedule allows at most 16 layers"). parse_packet rejects
/// group numbers at or above the receiver's limit, defaulting to this.
inline constexpr std::uint16_t kMaxGroups = 16;

/// Why a wire buffer failed to parse. kNone means success; every other value
/// names the first check that failed, so a receiver can count rejections by
/// cause. Shared by data packets (parse_packet) and the control channel
/// (proto::ControlInfo::parse).
enum class ParseError : std::uint8_t {
  kNone = 0,
  kTooShort = 1,         // fewer bytes than the fixed-size prefix
  kBadChecksum = 2,      // header checksum mismatch (byte [9])
  kBadMagic = 3,         // control channel: magic != "FTN2"
  kBadCodec = 4,         // codec byte names no fec::CodecId
  kGroupOutOfRange = 5,  // group >= the receiver's group limit
  kBadField = 6,         // fields inconsistent (control channel)
};

/// Stable lowercase name for logs and test failure messages.
const char* parse_error_name(ParseError error);

/// CRC-8/ATM (polynomial x^8 + x^2 + x + 1 = 0x07, init 0, no reflection,
/// no final xor) over `data`. Exposed for tests and for the control channel.
std::uint8_t crc8(util::ConstByteSpan data);

struct PacketHeader {
  static constexpr std::size_t kWireSize = 12;

  std::uint32_t packet_index = 0;  // index within the encoding
  std::uint32_t serial = 0;        // monotone per-sender transmission counter
  fec::CodecId codec = fec::CodecId::kTornado;  // erasure-code family
  std::uint16_t group = 0;         // multicast group (layer) number

  /// Writes the 12 wire bytes including the checksum at [9].
  void serialize(util::ByteSpan out) const;
  /// Raw field decoder: trusts the buffer (no checksum or range checks) and
  /// throws std::invalid_argument only if it is shorter than kWireSize.
  /// Untrusted input goes through parse_packet instead.
  static PacketHeader parse(util::ConstByteSpan in);

  friend bool operator==(const PacketHeader&, const PacketHeader&) = default;
};

/// Frames header + payload into a contiguous wire packet.
std::vector<std::uint8_t> frame_packet(const PacketHeader& header,
                                       util::ConstByteSpan payload);

struct ParsedPacket {
  PacketHeader header;
  util::ConstByteSpan payload;  // view into the input buffer
};

/// Outcome of parse_packet: either kNone and a valid packet, or the first
/// failed check (packet is then default-constructed and meaningless).
struct ParseResult {
  ParseError error = ParseError::kNone;
  ParsedPacket packet;

  bool ok() const { return error == ParseError::kNone; }
  explicit operator bool() const { return ok(); }
};

/// Total function over arbitrary bytes: never throws, never reads past the
/// buffer. Verifies length, header checksum, codec byte and group range (in
/// that order) before exposing any field.
ParseResult parse_packet(util::ConstByteSpan wire,
                         std::uint16_t group_limit = kMaxGroups);

}  // namespace fountain::net
