// Minimal RAII wrapper over IPv4 UDP sockets — enough to run the digital
// fountain server and client over real datagrams (the loopback example) the
// way the paper's prototype ran over IP multicast UDP. Multicast join is
// supported where the host allows it; the examples default to loopback
// unicast so they run inside containers.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/symbols.hpp"

namespace fountain::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class UdpSocket {
 public:
  UdpSocket();
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Binds to host:port (port 0 picks an ephemeral port).
  void bind(const Endpoint& local);
  /// The locally bound port (after bind).
  std::uint16_t local_port() const;

  void send_to(const Endpoint& peer, util::ConstByteSpan payload);

  struct Datagram {
    std::vector<std::uint8_t> payload;
    Endpoint from;
  };
  /// Blocks up to `timeout`; returns std::nullopt on timeout.
  std::optional<Datagram> receive(std::chrono::milliseconds timeout);

  /// Joins an IPv4 multicast group (throws if unsupported on this host).
  void join_multicast(const std::string& group_addr);

 private:
  int fd_ = -1;
};

}  // namespace fountain::net
