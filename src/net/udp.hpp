// Minimal RAII wrapper over IPv4 UDP sockets — enough to run the digital
// fountain server and client over real datagrams (the loopback example) the
// way the paper's prototype ran over IP multicast UDP. Multicast join is
// supported where the host allows it; the examples default to loopback
// unicast so they run inside containers.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/symbols.hpp"

namespace fountain::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class UdpSocket {
 public:
  UdpSocket();
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Binds to host:port (port 0 picks an ephemeral port).
  void bind(const Endpoint& local);
  /// The locally bound port (after bind).
  std::uint16_t local_port() const;

  /// Retries transparently on EINTR; throws on any other send failure.
  void send_to(const Endpoint& peer, util::ConstByteSpan payload);

  struct Datagram {
    std::vector<std::uint8_t> payload;
    Endpoint from;
    /// The datagram on the wire was longer than the receive buffer and the
    /// kernel cut it short (MSG_TRUNC). `payload` holds only the prefix —
    /// a distinct outcome from a short datagram, so framing code can reject
    /// it instead of parsing a silently truncated packet as complete.
    bool truncated = false;
  };
  /// Blocks up to `timeout`; returns std::nullopt on timeout. Interrupted
  /// system calls (EINTR) are retried against the original deadline, so a
  /// signal can neither abort the wait nor extend it. `max_payload` bounds
  /// the receive buffer; longer datagrams come back with truncated = true.
  std::optional<Datagram> receive(std::chrono::milliseconds timeout,
                                  std::size_t max_payload = 65536);

  /// Joins an IPv4 multicast group (throws if unsupported on this host).
  void join_multicast(const std::string& group_addr);

 private:
  int fd_ = -1;
};

}  // namespace fountain::net
