#include "net/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace fountain::net {

TracePopulation TracePopulation::synthetic(
    const TracePopulationParams& params) {
  if (params.receivers == 0 || params.trace_length == 0) {
    throw std::invalid_argument("TracePopulation: empty population");
  }
  util::Rng rng(params.seed);

  // Draw per-receiver loss rates uniformly, then rescale multiplicatively so
  // the population mean matches the target (clamped back into range).
  std::vector<double> rates(params.receivers);
  double sum = 0.0;
  for (auto& r : rates) {
    r = params.min_loss +
        (params.max_loss - params.min_loss) * rng.uniform();
    sum += r;
  }
  const double scale =
      params.target_mean_loss * static_cast<double>(params.receivers) / sum;
  for (auto& r : rates) {
    r = std::clamp(r * scale, params.min_loss, params.max_loss);
  }

  TracePopulation pop;
  pop.traces_.reserve(params.receivers);
  for (std::size_t i = 0; i < params.receivers; ++i) {
    const double burst =
        params.min_mean_burst +
        (params.max_mean_burst - params.min_mean_burst) * rng.uniform();
    GilbertElliottLoss process(rates[i], burst, rng());
    auto trace = std::make_shared<std::vector<std::uint8_t>>();
    trace->reserve(params.trace_length);
    for (std::size_t t = 0; t < params.trace_length; ++t) {
      trace->push_back(process.lost() ? 1 : 0);
    }
    pop.traces_.push_back(std::move(trace));
  }
  return pop;
}

TracePopulation TracePopulation::load(std::istream& in) {
  TracePopulation pop;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto trace = std::make_shared<std::vector<std::uint8_t>>();
    trace->reserve(line.size());
    for (const char c : line) {
      if (c == '0') {
        trace->push_back(0);
      } else if (c == '1') {
        trace->push_back(1);
      } else {
        throw std::invalid_argument("TracePopulation: bad trace character");
      }
    }
    pop.traces_.push_back(std::move(trace));
  }
  if (pop.traces_.empty()) {
    throw std::invalid_argument("TracePopulation: no traces in stream");
  }
  return pop;
}

void TracePopulation::save(std::ostream& out) const {
  for (const auto& trace : traces_) {
    for (const auto bit : *trace) out.put(bit ? '1' : '0');
    out.put('\n');
  }
}

std::unique_ptr<LossModel> TracePopulation::loss_model(
    std::size_t r, std::size_t start_offset) const {
  return std::make_unique<TraceLoss>(traces_.at(r), start_offset);
}

double TracePopulation::receiver_loss_rate(std::size_t r) const {
  const auto& t = *traces_.at(r);
  std::size_t lost = 0;
  for (const auto bit : t) lost += bit;
  return static_cast<double>(lost) / static_cast<double>(t.size());
}

double TracePopulation::mean_loss_rate() const {
  double acc = 0.0;
  for (std::size_t r = 0; r < traces_.size(); ++r) {
    acc += receiver_loss_rate(r);
  }
  return acc / static_cast<double>(traces_.size());
}

}  // namespace fountain::net
