#include "net/loss.hpp"

#include <numeric>
#include <stdexcept>

namespace fountain::net {

BernoulliLoss::BernoulliLoss(double p, std::uint64_t seed)
    : p_(p), seed_(seed), rng_(seed) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("BernoulliLoss: p must be in [0, 1)");
  }
}

std::unique_ptr<LossModel> BernoulliLoss::clone() const {
  return std::make_unique<BernoulliLoss>(p_, seed_);
}

GilbertElliottLoss::GilbertElliottLoss(double loss_rate, double mean_burst,
                                       std::uint64_t seed)
    : loss_rate_(loss_rate), mean_burst_(mean_burst), seed_(seed), rng_(seed) {
  if (loss_rate < 0.0 || loss_rate >= 1.0) {
    throw std::invalid_argument("GilbertElliott: loss rate in [0, 1)");
  }
  if (mean_burst < 1.0) {
    throw std::invalid_argument("GilbertElliott: mean burst >= 1");
  }
  // Stationary BAD fraction pi_b = p_gb / (p_gb + p_bg) and mean burst
  // length 1 / p_bg give the transition probabilities.
  p_bg_ = 1.0 / mean_burst;
  p_gb_ = loss_rate == 0.0 ? 0.0 : p_bg_ * loss_rate / (1.0 - loss_rate);
  if (p_gb_ > 1.0) {
    throw std::invalid_argument("GilbertElliott: infeasible (loss too high "
                                "for the requested burst length)");
  }
}

bool GilbertElliottLoss::lost() {
  if (bad_) {
    if (rng_.chance(p_bg_)) bad_ = false;
  } else {
    if (rng_.chance(p_gb_)) bad_ = true;
  }
  return bad_;
}

void GilbertElliottLoss::reset() {
  rng_.reseed(seed_);
  bad_ = false;
}

std::unique_ptr<LossModel> GilbertElliottLoss::clone() const {
  return std::make_unique<GilbertElliottLoss>(loss_rate_, mean_burst_, seed_);
}

TraceLoss::TraceLoss(std::shared_ptr<const std::vector<std::uint8_t>> trace,
                     std::size_t start_offset)
    : trace_(std::move(trace)) {
  if (!trace_ || trace_->empty()) {
    throw std::invalid_argument("TraceLoss: empty trace");
  }
  start_ = start_offset % trace_->size();
  pos_ = start_;
}

bool TraceLoss::lost() {
  const bool result = (*trace_)[pos_] != 0;
  pos_ = (pos_ + 1) % trace_->size();
  return result;
}

double TraceLoss::nominal_loss_rate() const {
  const auto lost_count =
      std::accumulate(trace_->begin(), trace_->end(), std::size_t{0},
                      [](std::size_t acc, std::uint8_t v) {
                        return acc + (v != 0 ? 1 : 0);
                      });
  return static_cast<double>(lost_count) /
         static_cast<double>(trace_->size());
}

std::unique_ptr<LossModel> TraceLoss::clone() const {
  return std::make_unique<TraceLoss>(trace_, start_);
}

}  // namespace fountain::net
