#include "net/packet_header.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace fountain::net {

namespace {

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

constexpr std::array<std::uint8_t, 256> make_crc8_table() {
  std::array<std::uint8_t, 256> table{};
  for (unsigned i = 0; i < 256; ++i) {
    std::uint8_t crc = static_cast<std::uint8_t>(i);
    for (int bit = 0; bit < 8; ++bit) {
      crc = static_cast<std::uint8_t>((crc & 0x80) ? (crc << 1) ^ 0x07
                                                   : crc << 1);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint8_t, 256> kCrc8Table = make_crc8_table();

/// CRC-8 over the eleven non-checksum header bytes, in wire order.
std::uint8_t header_crc(const std::uint8_t* wire) {
  std::uint8_t crc = 0;
  for (std::size_t i = 0; i < PacketHeader::kWireSize; ++i) {
    if (i == 9) continue;  // the checksum byte itself
    crc = kCrc8Table[crc ^ wire[i]];
  }
  return crc;
}

}  // namespace

const char* parse_error_name(ParseError error) {
  switch (error) {
    case ParseError::kNone: return "none";
    case ParseError::kTooShort: return "too_short";
    case ParseError::kBadChecksum: return "bad_checksum";
    case ParseError::kBadMagic: return "bad_magic";
    case ParseError::kBadCodec: return "bad_codec";
    case ParseError::kGroupOutOfRange: return "group_out_of_range";
    case ParseError::kBadField: return "bad_field";
  }
  return "unknown";
}

std::uint8_t crc8(util::ConstByteSpan data) {
  std::uint8_t crc = 0;
  for (const std::uint8_t byte : data) crc = kCrc8Table[crc ^ byte];
  return crc;
}

void PacketHeader::serialize(util::ByteSpan out) const {
  if (out.size() < kWireSize) {
    throw std::invalid_argument("PacketHeader: buffer too small");
  }
  put_u32(out.data(), packet_index);
  put_u32(out.data() + 4, serial);
  out[8] = static_cast<std::uint8_t>(codec);
  out[10] = static_cast<std::uint8_t>(group >> 8);
  out[11] = static_cast<std::uint8_t>(group);
  out[9] = header_crc(out.data());
}

PacketHeader PacketHeader::parse(util::ConstByteSpan in) {
  if (in.size() < kWireSize) {
    throw std::invalid_argument("PacketHeader: buffer too small");
  }
  PacketHeader h;
  h.packet_index = get_u32(in.data());
  h.serial = get_u32(in.data() + 4);
  h.codec = static_cast<fec::CodecId>(in[8]);
  h.group = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(in[10]) << 8) | in[11]);
  return h;
}

std::vector<std::uint8_t> frame_packet(const PacketHeader& header,
                                       util::ConstByteSpan payload) {
  std::vector<std::uint8_t> wire(PacketHeader::kWireSize + payload.size());
  header.serialize(util::ByteSpan(wire.data(), PacketHeader::kWireSize));
  std::memcpy(wire.data() + PacketHeader::kWireSize, payload.data(),
              payload.size());
  return wire;
}

ParseResult parse_packet(util::ConstByteSpan wire, std::uint16_t group_limit) {
  ParseResult result;
  if (wire.size() < PacketHeader::kWireSize) {
    result.error = ParseError::kTooShort;
    return result;
  }
  if (wire[9] != header_crc(wire.data())) {
    result.error = ParseError::kBadChecksum;
    return result;
  }
  if (!fec::is_known_codec(wire[8])) {
    result.error = ParseError::kBadCodec;
    return result;
  }
  PacketHeader header = PacketHeader::parse(wire);
  if (header.group >= group_limit) {
    result.error = ParseError::kGroupOutOfRange;
    return result;
  }
  result.packet.header = header;
  result.packet.payload = wire.subspan(PacketHeader::kWireSize);
  return result;
}

}  // namespace fountain::net
