#include "net/packet_header.hpp"

#include <cstring>
#include <stdexcept>

namespace fountain::net {

namespace {

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

}  // namespace

void PacketHeader::serialize(util::ByteSpan out) const {
  if (out.size() < kWireSize) {
    throw std::invalid_argument("PacketHeader: buffer too small");
  }
  put_u32(out.data(), packet_index);
  put_u32(out.data() + 4, serial);
  out[8] = static_cast<std::uint8_t>(codec);
  out[9] = 0;  // reserved
  out[10] = static_cast<std::uint8_t>(group >> 8);
  out[11] = static_cast<std::uint8_t>(group);
}

PacketHeader PacketHeader::parse(util::ConstByteSpan in) {
  if (in.size() < kWireSize) {
    throw std::invalid_argument("PacketHeader: buffer too small");
  }
  PacketHeader h;
  h.packet_index = get_u32(in.data());
  h.serial = get_u32(in.data() + 4);
  h.codec = static_cast<fec::CodecId>(in[8]);
  h.group = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(in[10]) << 8) | in[11]);
  return h;
}

std::vector<std::uint8_t> frame_packet(const PacketHeader& header,
                                       util::ConstByteSpan payload) {
  std::vector<std::uint8_t> wire(PacketHeader::kWireSize + payload.size());
  header.serialize(util::ByteSpan(wire.data(), PacketHeader::kWireSize));
  std::memcpy(wire.data() + PacketHeader::kWireSize, payload.data(),
              payload.size());
  return wire;
}

std::optional<ParsedPacket> parse_packet(util::ConstByteSpan wire) {
  if (wire.size() < PacketHeader::kWireSize) return std::nullopt;
  ParsedPacket p;
  p.header = PacketHeader::parse(wire);
  p.payload = wire.subspan(PacketHeader::kWireSize);
  return p;
}

}  // namespace fountain::net
