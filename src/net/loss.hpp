// Channel loss models. The paper's simulations use independent (Bernoulli)
// loss at rates up to 50%; its trace experiments use real MBone loss traces
// with bursty, heterogeneous loss. We provide Bernoulli, a two-state
// Gilbert-Elliott process (the standard model for bursty Internet/MBone
// loss), and playback of recorded 0/1 traces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/random.hpp"

namespace fountain::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// Advances the process one packet and reports whether it was lost.
  virtual bool lost() = 0;
  /// Restarts the process (fresh state, same parameters and seed stream).
  virtual void reset() = 0;
  /// Long-run loss fraction of the process.
  virtual double nominal_loss_rate() const = 0;
  virtual std::unique_ptr<LossModel> clone() const = 0;
};

/// Independent loss with fixed probability p.
class BernoulliLoss final : public LossModel {
 public:
  BernoulliLoss(double p, std::uint64_t seed);

  bool lost() override { return rng_.chance(p_); }
  void reset() override { rng_.reseed(seed_); }
  double nominal_loss_rate() const override { return p_; }
  std::unique_ptr<LossModel> clone() const override;

 private:
  double p_;
  std::uint64_t seed_;
  util::Rng rng_;
};

/// Two-state Markov (Gilbert-Elliott) loss: packets are delivered in the
/// GOOD state and lost in the BAD state; burst lengths are geometric with
/// mean `mean_burst`.
class GilbertElliottLoss final : public LossModel {
 public:
  /// `loss_rate` is the stationary fraction of time in BAD; `mean_burst` the
  /// mean BAD-run length in packets (>= 1).
  GilbertElliottLoss(double loss_rate, double mean_burst, std::uint64_t seed);

  bool lost() override;
  void reset() override;
  double nominal_loss_rate() const override { return loss_rate_; }
  std::unique_ptr<LossModel> clone() const override;

  double p_good_to_bad() const { return p_gb_; }
  double p_bad_to_good() const { return p_bg_; }

 private:
  double loss_rate_;
  double mean_burst_;
  double p_gb_;
  double p_bg_;
  std::uint64_t seed_;
  util::Rng rng_;
  bool bad_ = false;
};

/// Plays back a recorded 0/1 loss trace (1 = lost), starting at an arbitrary
/// offset and wrapping — matching the paper's "choosing a random initial
/// point within each trace".
class TraceLoss final : public LossModel {
 public:
  TraceLoss(std::shared_ptr<const std::vector<std::uint8_t>> trace,
            std::size_t start_offset);

  bool lost() override;
  void reset() override { pos_ = start_; }
  double nominal_loss_rate() const override;
  std::unique_ptr<LossModel> clone() const override;

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> trace_;
  std::size_t start_;
  std::size_t pos_;
};

}  // namespace fountain::net
