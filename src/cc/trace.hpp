// Trajectory instrumentation for the adaptation plane: a decorator that
// logs every level change a policy makes, a session-wide TraceLog whose
// per-receiver buffers are safe to fill from parallel cohort workers, and
// the time-weighted dwell metric the convergence checks are written in.
// Shared by the fig7_adaptation bench (the CI convergence gate) and the
// adaptation soak tests so both judge convergence by exactly the same
// computation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cc/receiver_policy.hpp"

namespace fountain::cc {

struct LevelChange {
  engine::Time at = 0;
  unsigned level = 0;
};

/// A receiver's subscription trajectory: its level as a step function,
/// entry i holding from trace[i].at until trace[i+1].at (or forever).
using LevelTrace = std::vector<LevelChange>;

/// Decorates a policy with a trajectory log (one entry per level change,
/// plus the initial level stamped with the receiver's join tick). The
/// log records the inner policy's decisions before any engine clamping.
class TracingPolicy final : public ReceiverPolicy {
 public:
  /// `join` is the tick the receiver enters the session (reset() has no
  /// time argument, so the first trace entry is stamped with it).
  TracingPolicy(std::unique_ptr<ReceiverPolicy> inner, engine::Time join,
                LevelTrace* out)
      : inner_(std::move(inner)), join_(join), out_(out) {}

  void reset(unsigned initial_level, unsigned max_level,
             std::uint64_t seed) override {
    inner_->reset(initial_level, max_level, seed);
    out_->clear();
    out_->push_back(LevelChange{join_, initial_level});
  }
  unsigned on_round(const RoundView& round, unsigned level) override {
    const unsigned next = inner_->on_round(round, level);
    if (next != level) out_->push_back(LevelChange{round.now, next});
    return next;
  }
  void on_forced_level(unsigned level) override {
    inner_->on_forced_level(level);
  }

 private:
  std::unique_ptr<ReceiverPolicy> inner_;
  engine::Time join_;
  LevelTrace* out_;
};

/// Session-wide trajectory collector built for the parallel engine. One
/// LevelTrace slot per receiver, allocated up front, so cohort workers on
/// different threads append to disjoint buffers with no synchronization
/// (each receiver is simulated by exactly one worker). records() then
/// performs the deterministic in-order merge — every level change tagged
/// with its receiver, ordered by (tick, receiver) — so the merged stream is
/// byte-identical regardless of engine::SessionConfig::threads and of how
/// cohorts were assigned to workers.
class TraceLog {
 public:
  explicit TraceLog(std::size_t receivers) : traces_(receivers) {}

  std::size_t size() const { return traces_.size(); }
  LevelTrace& trace(std::size_t receiver) { return traces_.at(receiver); }
  const LevelTrace& trace(std::size_t receiver) const {
    return traces_.at(receiver);
  }

  /// Wraps `inner` so receiver `receiver`'s decisions land in its slot (see
  /// TracingPolicy for the join-stamp semantics). The log must outlive the
  /// returned policy.
  std::unique_ptr<ReceiverPolicy> wrap(std::size_t receiver,
                                       engine::Time join,
                                       std::unique_ptr<ReceiverPolicy> inner) {
    return std::make_unique<TracingPolicy>(std::move(inner), join,
                                           &traces_.at(receiver));
  }

  /// One merged cc trace record: receiver `receiver` moved to `level` at
  /// tick `at`.
  struct Record {
    engine::Time at = 0;
    std::uint32_t receiver = 0;
    unsigned level = 0;

    friend bool operator==(const Record&, const Record&) = default;
  };

  /// The deterministic merge of all per-receiver trajectories, ordered by
  /// (at, receiver). Stable across thread counts by construction: the
  /// per-receiver buffers are already time-ordered, and the receiver index
  /// breaks every tie.
  std::vector<Record> records() const {
    std::vector<Record> merged;
    std::size_t total = 0;
    for (const LevelTrace& t : traces_) total += t.size();
    merged.reserve(total);
    for (std::size_t r = 0; r < traces_.size(); ++r) {
      for (const LevelChange& change : traces_[r]) {
        merged.push_back(Record{change.at, static_cast<std::uint32_t>(r),
                                change.level});
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Record& lhs, const Record& rhs) {
                       if (lhs.at != rhs.at) return lhs.at < rhs.at;
                       return lhs.receiver < rhs.receiver;
                     });
    return merged;
  }

 private:
  std::vector<LevelTrace> traces_;
};

/// Time-weighted fraction of [begin, end) the trajectory spends within
/// `tolerance` levels of `target` — the dwell metric behind "converged to
/// within one layer of fair share and held it".
inline double fraction_near(const LevelTrace& trace, engine::Time begin,
                            engine::Time end, unsigned target,
                            unsigned tolerance) {
  if (end <= begin) return 1.0;
  engine::Time near_ticks = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const engine::Time seg_begin = std::max(trace[i].at, begin);
    const engine::Time seg_end =
        std::min(i + 1 < trace.size() ? trace[i + 1].at : end, end);
    if (seg_end <= seg_begin) continue;
    const unsigned delta = trace[i].level > target ? trace[i].level - target
                                                   : target - trace[i].level;
    if (delta <= tolerance) near_ticks += seg_end - seg_begin;
  }
  return static_cast<double>(near_ticks) / static_cast<double>(end - begin);
}

}  // namespace fountain::cc
