#include "cc/policies.hpp"

#include <algorithm>
#include <stdexcept>

namespace fountain::cc {

void BurstProbePolicy::reset(unsigned /*initial_level*/, unsigned max_level,
                             std::uint64_t /*seed*/) {
  max_level_ = max_level;
  join_cleared_ = false;
}

unsigned BurstProbePolicy::on_round(const RoundView& round, unsigned level) {
  // Congestion back-off: a bad firing forces an immediate drop.
  if (round.loss_fraction() > drop_loss_threshold_ && level > 0) {
    join_cleared_ = false;
    return level - 1;
  }
  // A clean burst probe clears the receiver to move up at the next SP.
  if (round.burst && round.probe_seen && round.probe_clean) {
    join_cleared_ = true;
  }
  if (round.sync_point && join_cleared_ && level < max_level_) {
    join_cleared_ = false;
    return level + 1;
  }
  return level;
}

void BurstProbePolicy::on_forced_level(unsigned /*level*/) {
  join_cleared_ = false;
}

LossDrivenPolicy::LossDrivenPolicy(const LossDrivenConfig& config)
    : config_(config) {
  const bool thresholds_ok =
      config.join_loss_threshold >= 0.0 && config.leave_loss_threshold <= 1.0 &&
      config.join_loss_threshold <= config.leave_loss_threshold;
  if (!thresholds_ok) {
    throw std::invalid_argument(
        "LossDrivenPolicy: need 0 <= join threshold <= leave threshold <= 1");
  }
  if (config.window_rounds == 0) {
    throw std::invalid_argument("LossDrivenPolicy: window_rounds must be > 0");
  }
  if (config.initial_join_backoff == 0 ||
      config.max_join_backoff < config.initial_join_backoff) {
    throw std::invalid_argument(
        "LossDrivenPolicy: need 0 < initial_join_backoff <= max_join_backoff");
  }
  if (config.join_timer_jitter < 0.0) {
    throw std::invalid_argument("LossDrivenPolicy: negative join_timer_jitter");
  }
}

void LossDrivenPolicy::reset(unsigned initial_level, unsigned max_level,
                             std::uint64_t seed) {
  max_level_ = max_level;
  rng_.reseed(seed);
  window_.assign(config_.window_rounds, Sample{});
  window_next_ = 0;
  window_filled_ = 0;
  window_addressed_ = 0;
  window_lost_ = 0;
  rounds_seen_ = 0;
  backoff_.assign(max_level + 1, config_.initial_join_backoff);
  probing_ = false;
  probe_level_ = 0;
  probe_until_ = 0;
  schedule_join(std::min(initial_level + 1, max_level));
}

void LossDrivenPolicy::restart_window() {
  std::fill(window_.begin(), window_.end(), Sample{});
  window_next_ = 0;
  window_filled_ = 0;
  window_addressed_ = 0;
  window_lost_ = 0;
}

void LossDrivenPolicy::schedule_join(unsigned target_level) {
  const std::uint64_t base = backoff_[target_level];
  const auto jitter_span =
      static_cast<std::uint64_t>(config_.join_timer_jitter *
                                 static_cast<double>(base));
  const std::uint64_t jitter =
      jitter_span == 0 ? 0 : rng_.below(jitter_span + 1);
  next_join_round_ = rounds_seen_ + base + jitter;
}

unsigned LossDrivenPolicy::on_round(const RoundView& round, unsigned level) {
  ++rounds_seen_;

  // Slide the hysteresis window one firing. Corrupted arrivals count as
  // loss: the window tracks packets that yielded nothing usable.
  const std::uint64_t unusable = round.lost + round.corrupt;
  Sample& slot = window_[window_next_];
  window_addressed_ += round.addressed - slot.addressed;
  window_lost_ += unusable - slot.lost;
  slot = Sample{round.addressed, unusable};
  window_next_ = (window_next_ + 1) % window_.size();
  if (window_filled_ < window_.size()) ++window_filled_;

  // A join that outlived its probe period succeeded: relax its timer.
  if (probing_ && rounds_seen_ > probe_until_) {
    probing_ = false;
    backoff_[probe_level_] =
        std::max(config_.initial_join_backoff, backoff_[probe_level_] / 2);
  }

  // Decisions wait for a full window after any level change (hysteresis).
  if (window_filled_ < window_.size()) return level;

  const double loss =
      window_addressed_ == 0
          ? 0.0
          : static_cast<double>(window_lost_) /
                static_cast<double>(window_addressed_);

  if (loss > config_.leave_loss_threshold) {
    if (level == 0) return 0;  // nothing left to shed
    if (probing_ && rounds_seen_ <= probe_until_) {
      // The join caused this: exponential back-off on that level's timer.
      backoff_[probe_level_] =
          std::min(config_.max_join_backoff, 2 * backoff_[probe_level_]);
      probing_ = false;
    }
    restart_window();
    schedule_join(level);  // re-joining the shed layer waits its timer out
    return level - 1;
  }

  const bool join_gate_open =
      rounds_seen_ >= next_join_round_ &&
      (round.sync_point || !config_.join_at_sync_points_only);
  if (loss <= config_.join_loss_threshold && level < max_level_ &&
      join_gate_open) {
    probing_ = true;
    probe_level_ = level + 1;
    // The probe must outlast the post-join window refill, or success would
    // be declared before the first post-join loss evaluation.
    probe_until_ = rounds_seen_ +
                   std::max<std::uint64_t>(config_.probe_rounds,
                                           config_.window_rounds + 1);
    restart_window();
    schedule_join(std::min(level + 2, static_cast<unsigned>(max_level_)));
    return level + 1;
  }
  return level;
}

void LossDrivenPolicy::on_forced_level(unsigned level) {
  probing_ = false;
  restart_window();
  // The join gate was armed for the pre-move level's target; rearm it for
  // the level above the one we were moved to, on that level's own timer.
  schedule_join(std::min(level + 1, max_level_));
}

}  // namespace fountain::cc
