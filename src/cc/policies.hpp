// The library's built-in receiver policies.
//
//  * BurstProbePolicy — the paper's Section 7.2 receiver, verbatim: drop a
//    layer the moment one firing's loss exceeds a threshold; move up a layer
//    at the next synchronization point after surviving a double-rate burst
//    probe with zero loss. It is the policy the engine's legacy
//    SubscriptionPolicy{adaptive = true} knobs configure.
//
//  * LossDrivenPolicy — the loss-driven adaptation scheme of the
//    receiver-driven layered multicast lineage (RLM and Section 7's
//    discussion of it): decisions are taken over a sliding hysteresis
//    window of firings; loss above the leave threshold forces an immediate
//    drop, while joins additionally wait for a per-level join timer that
//    backs off exponentially every time a join at that level fails (the
//    mechanism that keeps a large population from synchronizing its join
//    experiments and collapsing a shared bottleneck).
#pragma once

#include <cstdint>
#include <vector>

#include "cc/receiver_policy.hpp"
#include "util/random.hpp"

namespace fountain::cc {

class BurstProbePolicy final : public ReceiverPolicy {
 public:
  /// `drop_loss_threshold`: one firing losing more than this fraction of
  /// its packets forces an immediate one-level drop.
  explicit BurstProbePolicy(double drop_loss_threshold = 0.45)
      : drop_loss_threshold_(drop_loss_threshold) {}

  void reset(unsigned initial_level, unsigned max_level,
             std::uint64_t seed) override;
  unsigned on_round(const RoundView& round, unsigned level) override;
  void on_forced_level(unsigned level) override;

 private:
  double drop_loss_threshold_;
  unsigned max_level_ = 0;
  bool join_cleared_ = false;  // a clean burst probe armed the next SP join
};

struct LossDrivenConfig {
  /// Sliding hysteresis window: decisions are taken only once this many
  /// firings have been observed since the last level change, over the
  /// aggregate loss of the most recent `window_rounds` firings.
  std::size_t window_rounds = 16;
  /// Window loss above this forces an immediate one-level drop.
  double leave_loss_threshold = 0.20;
  /// Window loss at or below this makes the receiver willing to join the
  /// next layer (once its join timer has expired).
  double join_loss_threshold = 0.02;
  /// First join timer for every level, in firings. A failed join at level l
  /// doubles l's timer (up to max_join_backoff); surviving the probe period
  /// halves it back (down to initial_join_backoff).
  std::uint64_t initial_join_backoff = 32;
  std::uint64_t max_join_backoff = 4096;
  /// A join that suffers a forced drop within this many firings counts as
  /// failed and backs off its level's timer.
  std::uint64_t probe_rounds = 24;
  /// Restrict joins to firings carrying a synchronization point on the
  /// receiver's current level (the paper's SP join rule).
  bool join_at_sync_points_only = true;
  /// Fraction of the join timer added as deterministic, seed-derived jitter
  /// (desynchronizes join experiments across a population).
  double join_timer_jitter = 0.5;
};

class LossDrivenPolicy final : public ReceiverPolicy {
 public:
  /// Throws std::invalid_argument on out-of-range thresholds, a zero
  /// window, or zero/inverted backoff bounds.
  explicit LossDrivenPolicy(const LossDrivenConfig& config = {});

  void reset(unsigned initial_level, unsigned max_level,
             std::uint64_t seed) override;
  unsigned on_round(const RoundView& round, unsigned level) override;
  void on_forced_level(unsigned level) override;

  const LossDrivenConfig& config() const { return config_; }
  /// Current join timer of `level`, in firings (test/diagnostic hook).
  std::uint64_t join_backoff(unsigned level) const {
    return backoff_.at(level);
  }

 private:
  void restart_window();
  void schedule_join(unsigned target_level);

  LossDrivenConfig config_;
  unsigned max_level_ = 0;
  util::Rng rng_{0};

  // Sliding window over the last window_rounds firings.
  struct Sample {
    std::uint64_t addressed = 0;
    std::uint64_t lost = 0;
  };
  std::vector<Sample> window_;
  std::size_t window_next_ = 0;   // ring cursor
  std::size_t window_filled_ = 0;
  std::uint64_t window_addressed_ = 0;
  std::uint64_t window_lost_ = 0;

  std::uint64_t rounds_seen_ = 0;       // firings observed since reset
  std::uint64_t next_join_round_ = 0;   // earliest firing a join may happen
  std::vector<std::uint64_t> backoff_;  // per-level join timers, in firings
  unsigned probe_level_ = 0;        // level being probed after a join, or 0
  std::uint64_t probe_until_ = 0;   // probe deadline (rounds_seen_ units)
  bool probing_ = false;
};

}  // namespace fountain::cc
