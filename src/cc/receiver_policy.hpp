// The receiver side of the congestion-control (adaptation) plane. A
// ReceiverPolicy decides, after every source firing, which subscription
// level the receiver should hold — the receiver-driven half of the paper's
// Section 7 layered multicast scheme (and of the RLM/RLC lineage it builds
// on): the sender never adapts, receivers join and leave layers on their own
// observations.
//
// The engine evaluates policies on the event heap: after each firing of a
// subscribed source it summarizes what the receiver just saw into a
// RoundView and asks the policy for the level to hold next. Policies are
// deterministic state machines — any randomness (timer jitter) must come
// from the seed passed to reset(), so that identically-seeded scenarios
// replay byte-identically.
#pragma once

#include <cstdint>

#include "engine/types.hpp"

namespace fountain::cc {

/// What one receiver observed during one firing of one subscribed source.
struct RoundView {
  engine::Time now = 0;         // tick of the firing
  std::uint64_t addressed = 0;  // packets sent on the receiver's layers
  std::uint64_t lost = 0;       // of which the link dropped
  std::uint64_t corrupt = 0;    // arrived damaged and were rejected before
                                // the decoder (fault plane); a congestion
                                // signal like loss — a policy that ignored
                                // corruption would hold its rate on a path
                                // mangling every packet
  bool burst = false;           // the firing was a double-rate probe round
  bool probe_seen = false;      // receiver inspected burst-probe packets...
  bool probe_clean = false;     // ...and observed zero loss among them
  bool sync_point = false;      // the firing carried an SP on the receiver's
                                // current level (a join opportunity)

  /// Fraction of addressed packets that yielded nothing usable: dropped or
  /// damaged beyond the checksums. This is what policies should react to.
  double loss_fraction() const {
    return addressed == 0 ? 0.0
                          : static_cast<double>(lost + corrupt) /
                                static_cast<double>(addressed);
  }
};

/// A receiver-driven subscription controller. One instance belongs to one
/// receiver; the engine calls reset() when the receiver joins the session
/// and on_round() after every firing it hears. The returned level is a
/// *request*: the engine clamps it to [0, max_level] before applying it, so
/// a policy can return level + 1 at the top without checking.
class ReceiverPolicy {
 public:
  virtual ~ReceiverPolicy() = default;

  /// Called once when the receiver joins (and again if the spec is reused):
  /// the level it starts at, the highest level any subscribed source
  /// schedules, and the seed from which all policy randomness must derive.
  virtual void reset(unsigned initial_level, unsigned max_level,
                     std::uint64_t seed) = 0;

  /// One firing's feedback; returns the subscription level to hold from now
  /// on (`level` itself to stand pat). Called once per subscribed source per
  /// firing, in event-heap order.
  virtual unsigned on_round(const RoundView& round, unsigned level) = 0;

  /// A scenario-scripted move overrode the subscription to `level`
  /// (engine ScriptedMove churn). Policies drop any in-flight join/probe
  /// bookkeeping tied to the old level.
  virtual void on_forced_level(unsigned level) { (void)level; }
};

}  // namespace fountain::cc
