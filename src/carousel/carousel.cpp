#include "carousel/carousel.hpp"

#include <numeric>
#include <stdexcept>

namespace fountain::carousel {

Carousel::Carousel(std::vector<std::uint32_t> order) : order_(std::move(order)) {
  if (order_.empty()) throw std::invalid_argument("Carousel: empty order");
}

Carousel Carousel::random_permutation(std::size_t n, util::Rng& rng) {
  return Carousel(rng.permutation(n));
}

Carousel Carousel::sequential(std::size_t n) {
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0U);
  return Carousel(std::move(order));
}

}  // namespace fountain::carousel
