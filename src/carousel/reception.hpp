// Simulates one receiver listening to a carousel through a lossy channel
// until the source is decodable — the primitive behind the paper's
// reception-efficiency experiments (Figures 4, 5, 6 and the efficiency
// definitions of Section 6/7.3).
#pragma once

#include <cstdint>

#include "carousel/carousel.hpp"
#include "fec/erasure_code.hpp"
#include "net/loss.hpp"

namespace fountain::carousel {

struct ReceptionResult {
  bool completed = false;
  /// Packets accepted from the channel prior to reconstruction (includes
  /// duplicates received on later carousel cycles).
  std::uint64_t packets_received = 0;
  /// Distinct encoding packets among them.
  std::uint64_t distinct_received = 0;
  /// Channel slots that elapsed (sent packets, received or not).
  std::uint64_t slots_elapsed = 0;

  /// Reception efficiency eta = k / packets_received.
  double efficiency(std::size_t k) const {
    return packets_received == 0
               ? 0.0
               : static_cast<double>(k) /
                     static_cast<double>(packets_received);
  }
  /// Coding efficiency eta_c = k / distinct_received.
  double coding_efficiency(std::size_t k) const {
    return distinct_received == 0
               ? 0.0
               : static_cast<double>(k) /
                     static_cast<double>(distinct_received);
  }
  /// Distinctness efficiency eta_d = distinct / total received.
  double distinctness_efficiency() const {
    return packets_received == 0
               ? 0.0
               : static_cast<double>(distinct_received) /
                     static_cast<double>(packets_received);
  }
};

/// Feeds the carousel stream, thinned by `loss`, into `decoder` until it
/// completes (or `max_slots` elapse). The receiver joins at `start_slot` —
/// receivers joining at different times see different phases of the cycle
/// (the paper's asynchronous-access model). `seen` must be a zeroed scratch
/// vector of at least cycle_length entries; it is used to count distinct
/// packets and is left dirty (callers reusing it must re-zero).
ReceptionResult simulate_reception(const Carousel& carousel,
                                   fec::StructuralDecoder& decoder,
                                   net::LossModel& loss,
                                   std::uint64_t start_slot,
                                   std::uint64_t max_slots,
                                   std::vector<std::uint8_t>& seen);

/// Convenience overload allocating its own scratch.
ReceptionResult simulate_reception(const Carousel& carousel,
                                   fec::StructuralDecoder& decoder,
                                   net::LossModel& loss,
                                   std::uint64_t start_slot,
                                   std::uint64_t max_slots);

}  // namespace fountain::carousel
