#include "carousel/reception.hpp"

#include <stdexcept>

namespace fountain::carousel {

ReceptionResult simulate_reception(const Carousel& carousel,
                                   fec::StructuralDecoder& decoder,
                                   net::LossModel& loss,
                                   std::uint64_t start_slot,
                                   std::uint64_t max_slots,
                                   std::vector<std::uint8_t>& seen) {
  if (seen.size() < carousel.cycle_length()) {
    throw std::invalid_argument("simulate_reception: scratch too small");
  }
  ReceptionResult result;
  for (std::uint64_t t = 0; t < max_slots; ++t) {
    ++result.slots_elapsed;
    if (loss.lost()) continue;
    const std::uint32_t index = carousel.packet_at(start_slot + t);
    ++result.packets_received;
    if (!seen[index]) {
      seen[index] = 1;
      ++result.distinct_received;
    }
    if (decoder.add_index(index)) {
      result.completed = true;
      break;
    }
  }
  return result;
}

ReceptionResult simulate_reception(const Carousel& carousel,
                                   fec::StructuralDecoder& decoder,
                                   net::LossModel& loss,
                                   std::uint64_t start_slot,
                                   std::uint64_t max_slots) {
  std::vector<std::uint8_t> seen(carousel.cycle_length(), 0);
  return simulate_reception(carousel, decoder, loss, start_slot, max_slots,
                            seen);
}

}  // namespace fountain::carousel
