// The data carousel (paper Sections 1, 4, 6): the server cycles forever
// through a fixed transmission order over the n encoding packets. For Tornado
// codes the order is a random permutation (as in the paper's simulations);
// for interleaved codes it is the natural index order, which is already the
// interleaved round-robin over blocks.
//
// A carousel names *indices* only; a transmitting server pairs it with a
// fec::BlockEncoder, which materializes slot t's payload on demand
// (encoder->write_symbol(packet_at(t), buf)) — no n x P encoding buffer
// exists anywhere on the send path.
#pragma once

#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace fountain::carousel {

class Carousel {
 public:
  explicit Carousel(std::vector<std::uint32_t> order);

  static Carousel random_permutation(std::size_t n, util::Rng& rng);
  static Carousel sequential(std::size_t n);

  std::size_t cycle_length() const { return order_.size(); }

  /// The encoding index transmitted at (zero-based) slot t.
  std::uint32_t packet_at(std::uint64_t t) const {
    return order_[t % order_.size()];
  }

  const std::vector<std::uint32_t>& order() const { return order_; }

 private:
  std::vector<std::uint32_t> order_;
};

}  // namespace fountain::carousel
