// Deterministic, seedable pseudo-random number generation used throughout the
// library. Every simulation in the benchmark harness derives its generators
// from explicit seeds so that experiment output is reproducible run-to-run.
#pragma once

#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fountain::util {

/// xoshiro256** 1.0 (Blackman/Vigna). Small, fast, high-quality generator
/// satisfying std::uniform_random_bit_generator so it can drive <random>
/// distributions as well as the convenience helpers below.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from a single 64-bit seed via splitmix64,
  /// as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::below: bound must be > 0");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (-bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      using std::swap;
      swap(values[i - 1], values[below(i)]);
    }
  }

  /// A uniformly random permutation of {0, ..., count-1}.
  std::vector<std::uint32_t> permutation(std::size_t count) {
    std::vector<std::uint32_t> order(count);
    std::iota(order.begin(), order.end(), 0U);
    shuffle(order);
    return order;
  }

  /// Derives an independent child generator; used to give each simulated
  /// receiver its own stream without correlating across receivers.
  Rng fork() { return Rng((*this)() ^ 0xa5a5a5a5deadbeefULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4] = {};
};

}  // namespace fountain::util
