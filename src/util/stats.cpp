#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fountain::util {

void RunningStats::add(double x) {
  ++count_;
  if (count_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double q) const {
  if (samples_.empty()) throw std::logic_error("SampleSet: empty");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("SampleSet: q out of range");
  ensure_sorted();
  if (q == 0.0) return samples_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  return samples_[std::min(samples_.size(), std::max<std::size_t>(rank, 1)) - 1];
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::fraction_above(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: bad range");
  }
}

void Histogram::add(double x) {
  auto idx = static_cast<long>(std::floor((x - lo_) / width_));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::tail_fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t b = i; b < counts_.size(); ++b) acc += counts_[b];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

}  // namespace fountain::util
