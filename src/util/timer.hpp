// Wall-clock stopwatch used by the timing benches (Tables 2 and 3).
#pragma once

#include <chrono>

namespace fountain::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fountain::util
