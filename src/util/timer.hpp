// Wall-clock stopwatch used by the timing benches (Tables 2 and 3).
//
// Backed by std::chrono::steady_clock, so readings are monotonic and immune
// to system-clock adjustments; seconds() returns elapsed wall time in
// seconds as a double (sub-microsecond resolution on the platforms we run
// benches on). Not a CPU-time meter: it measures elapsed real time.
#pragma once

#include <chrono>

namespace fountain::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fountain::util
