// Packet payload storage. All erasure codes in this library operate on fixed
// length "symbols" (the paper's packets, typically P = 1 KB or 500 B). A
// SymbolMatrix owns a contiguous rows*symbol_size byte buffer so encoders can
// stream through memory; rows are exposed as spans.
//
// Invariants: row(i) requires i < rows() (unchecked); returned spans alias
// the matrix buffer and are invalidated by assigning to or moving the
// matrix. xor_into requires dst.size() == src.size() and tolerates
// dst == src (which zeroes dst). Sizes are bytes throughout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fountain::util {

using ByteSpan = std::span<std::uint8_t>;
using ConstByteSpan = std::span<const std::uint8_t>;

/// XORs `src` into `dst`; the word-at-a-time kernel behind Tornado encoding
/// and decoding. Sizes must match.
void xor_into(ByteSpan dst, ConstByteSpan src);

/// Contiguous storage for a set of equal-length symbols.
class SymbolMatrix {
 public:
  SymbolMatrix() = default;
  SymbolMatrix(std::size_t rows, std::size_t symbol_size)
      : rows_(rows), symbol_size_(symbol_size), data_(rows * symbol_size, 0) {}

  std::size_t rows() const { return rows_; }
  std::size_t symbol_size() const { return symbol_size_; }
  bool empty() const { return rows_ == 0; }

  ByteSpan row(std::size_t i) {
    return ByteSpan(data_.data() + i * symbol_size_, symbol_size_);
  }
  ConstByteSpan row(std::size_t i) const {
    return ConstByteSpan(data_.data() + i * symbol_size_, symbol_size_);
  }

  std::uint8_t* data() { return data_.data(); }
  const std::uint8_t* data() const { return data_.data(); }
  std::size_t size_bytes() const { return data_.size(); }

  void fill_zero();
  /// Fills every row with deterministic pseudo-random bytes derived from
  /// `seed`; handy for tests and benchmarks.
  void fill_random(std::uint64_t seed);

  friend bool operator==(const SymbolMatrix&, const SymbolMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t symbol_size_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace fountain::util
