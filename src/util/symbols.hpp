// Packet payload storage. All erasure codes in this library operate on fixed
// length "symbols" (the paper's packets, typically P = 1 KB or 500 B). A
// SymbolMatrix owns a contiguous rows*symbol_size byte buffer so encoders can
// stream through memory; rows are exposed as spans. SymbolView /
// ConstSymbolView are the non-owning counterparts: they let codecs encode
// into (or decode out of) a sub-range of a larger matrix — e.g. the Tornado
// RS tail reads and writes `encoding` rows directly — without intermediate
// copies.
//
// Invariants: row(i) requires i < rows() (assert-checked in debug builds,
// unchecked in release); returned spans and views alias the underlying
// buffer and are invalidated by assigning to or moving the owning matrix.
// xor_into requires dst.size() == src.size() and tolerates dst == src (which
// zeroes dst). Sizes are bytes throughout.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace fountain::util {

using ByteSpan = std::span<std::uint8_t>;
using ConstByteSpan = std::span<const std::uint8_t>;

/// XORs `src` into `dst`. This is the checked public entry point; it
/// validates sizes once and forwards to the runtime-dispatched
/// kern::xor_block (AVX2/SSE2/NEON/scalar). Internal hot loops whose shapes
/// are validated per batch call kern:: directly.
void xor_into(ByteSpan dst, ConstByteSpan src);

class SymbolMatrix;

/// Read-only non-owning view of `rows` equal-length symbols stored
/// contiguously. Implicitly constructible from a SymbolMatrix. Equality
/// compares contents (shape and bytes), matching SymbolMatrix semantics.
class ConstSymbolView {
 public:
  ConstSymbolView() = default;
  ConstSymbolView(const std::uint8_t* data, std::size_t rows,
                  std::size_t symbol_size)
      : data_(data), rows_(rows), symbol_size_(symbol_size) {}
  ConstSymbolView(const SymbolMatrix& m);  // NOLINT(runtime/explicit)

  std::size_t rows() const { return rows_; }
  std::size_t symbol_size() const { return symbol_size_; }
  bool empty() const { return rows_ == 0; }

  ConstByteSpan row(std::size_t i) const {
    assert(i < rows_ && "ConstSymbolView::row: index out of range");
    return ConstByteSpan(data_ + i * symbol_size_, symbol_size_);
  }
  const std::uint8_t* data() const { return data_; }
  std::size_t size_bytes() const { return rows_ * symbol_size_; }

  friend bool operator==(ConstSymbolView a, ConstSymbolView b) {
    if (a.rows_ != b.rows_ || a.symbol_size_ != b.symbol_size_) return false;
    if (a.size_bytes() == 0 || a.data_ == b.data_) return true;
    return std::memcmp(a.data_, b.data_, a.size_bytes()) == 0;
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t symbol_size_ = 0;
};

/// Mutable non-owning view; converts to ConstSymbolView.
class SymbolView {
 public:
  SymbolView() = default;
  SymbolView(std::uint8_t* data, std::size_t rows, std::size_t symbol_size)
      : data_(data), rows_(rows), symbol_size_(symbol_size) {}
  SymbolView(SymbolMatrix& m);  // NOLINT(runtime/explicit)

  std::size_t rows() const { return rows_; }
  std::size_t symbol_size() const { return symbol_size_; }
  bool empty() const { return rows_ == 0; }

  ByteSpan row(std::size_t i) const {
    assert(i < rows_ && "SymbolView::row: index out of range");
    return ByteSpan(data_ + i * symbol_size_, symbol_size_);
  }
  std::uint8_t* data() const { return data_; }
  std::size_t size_bytes() const { return rows_ * symbol_size_; }

  void fill_zero() const {
    if (size_bytes() != 0) std::memset(data_, 0, size_bytes());
  }

  operator ConstSymbolView() const {  // NOLINT(runtime/explicit)
    return ConstSymbolView(data_, rows_, symbol_size_);
  }

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t symbol_size_ = 0;
};

/// Contiguous storage for a set of equal-length symbols.
class SymbolMatrix {
 public:
  SymbolMatrix() = default;
  SymbolMatrix(std::size_t rows, std::size_t symbol_size)
      : rows_(rows), symbol_size_(symbol_size), data_(rows * symbol_size, 0) {}
  /// Materializes (copies) a view.
  explicit SymbolMatrix(ConstSymbolView view)
      : rows_(view.rows()),
        symbol_size_(view.symbol_size()),
        data_(view.data(), view.data() + view.size_bytes()) {}

  std::size_t rows() const { return rows_; }
  std::size_t symbol_size() const { return symbol_size_; }
  bool empty() const { return rows_ == 0; }

  ByteSpan row(std::size_t i) {
    assert(i < rows_ && "SymbolMatrix::row: index out of range");
    return ByteSpan(data_.data() + i * symbol_size_, symbol_size_);
  }
  ConstByteSpan row(std::size_t i) const {
    assert(i < rows_ && "SymbolMatrix::row: index out of range");
    return ConstByteSpan(data_.data() + i * symbol_size_, symbol_size_);
  }

  std::uint8_t* data() { return data_.data(); }
  const std::uint8_t* data() const { return data_.data(); }
  std::size_t size_bytes() const { return data_.size(); }

  /// Views of a contiguous row range [first, first + count).
  SymbolView rows_view(std::size_t first, std::size_t count) {
    assert(first + count <= rows_ && "SymbolMatrix::rows_view: range");
    return SymbolView(data_.data() + first * symbol_size_, count,
                      symbol_size_);
  }
  ConstSymbolView rows_view(std::size_t first, std::size_t count) const {
    assert(first + count <= rows_ && "SymbolMatrix::rows_view: range");
    return ConstSymbolView(data_.data() + first * symbol_size_, count,
                           symbol_size_);
  }

  void fill_zero();
  /// Fills every row with deterministic pseudo-random bytes derived from
  /// `seed`; handy for tests and benchmarks.
  void fill_random(std::uint64_t seed);

  friend bool operator==(const SymbolMatrix&, const SymbolMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t symbol_size_ = 0;
  std::vector<std::uint8_t> data_;
};

inline ConstSymbolView::ConstSymbolView(const SymbolMatrix& m)
    : data_(m.data()), rows_(m.rows()), symbol_size_(m.symbol_size()) {}

inline SymbolView::SymbolView(SymbolMatrix& m)
    : data_(m.data()), rows_(m.rows()), symbol_size_(m.symbol_size()) {}

}  // namespace fountain::util
