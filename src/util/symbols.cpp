#include "util/symbols.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/random.hpp"

namespace fountain::util {

void xor_into(ByteSpan dst, ConstByteSpan src) {
  if (dst.size() != src.size()) {
    throw std::invalid_argument("xor_into: size mismatch");
  }
  std::size_t i = 0;
  const std::size_t n = dst.size();
  // Word-at-a-time main loop; memcpy keeps it strict-aliasing clean and
  // compiles to plain 64-bit loads/stores.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst.data() + i, 8);
    std::memcpy(&b, src.data() + i, 8);
    a ^= b;
    std::memcpy(dst.data() + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void SymbolMatrix::fill_zero() { std::fill(data_.begin(), data_.end(), 0); }

void SymbolMatrix::fill_random(std::uint64_t seed) {
  Rng rng(seed);
  std::size_t i = 0;
  for (; i + 8 <= data_.size(); i += 8) {
    const std::uint64_t word = rng();
    std::memcpy(data_.data() + i, &word, 8);
  }
  for (; i < data_.size(); ++i) {
    data_[i] = static_cast<std::uint8_t>(rng() & 0xff);
  }
}

}  // namespace fountain::util
