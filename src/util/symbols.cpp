#include "util/symbols.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "kern/kernels.hpp"
#include "util/random.hpp"

namespace fountain::util {

void xor_into(ByteSpan dst, ConstByteSpan src) {
  if (dst.size() != src.size()) {
    throw std::invalid_argument("xor_into: size mismatch");
  }
  kern::xor_block(dst.data(), src.data(), dst.size());
}

void SymbolMatrix::fill_zero() { std::fill(data_.begin(), data_.end(), 0); }

void SymbolMatrix::fill_random(std::uint64_t seed) {
  Rng rng(seed);
  std::size_t i = 0;
  for (; i + 8 <= data_.size(); i += 8) {
    const std::uint64_t word = rng();
    std::memcpy(data_.data() + i, &word, 8);
  }
  for (; i < data_.size(); ++i) {
    data_[i] = static_cast<std::uint8_t>(rng() & 0xff);
  }
}

}  // namespace fountain::util
