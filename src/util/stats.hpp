// Small statistics helpers shared by the simulation harness: streaming
// moments (Welford), order statistics over collected samples, and fixed-width
// histograms used to reproduce the paper's Figure 2.
#pragma once

#include <cstddef>
#include <vector>

namespace fountain::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable; O(1) per observation.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples for percentile queries. Sorting is deferred until the
/// first query after new data arrives.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  /// q in [0,1]; nearest-rank percentile. Throws if empty.
  double percentile(double q) const;
  double min() const { return percentile(0.0); }
  double max() const { return percentile(1.0); }
  double mean() const;
  double stddev() const;
  /// Fraction of samples strictly greater than x.
  double fraction_above(double x) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Used for the Figure 2 "percent unfinished vs overhead" curves.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const { return bin_low(i + 1); }
  std::size_t count_in(std::size_t i) const { return counts_.at(i); }
  /// Fraction of all samples in bins at or above bin i — i.e. the fraction of
  /// trials still "unfinished" at the overhead represented by bin i.
  double tail_fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace fountain::util
