#include "engine/link.hpp"

#include <stdexcept>

namespace fountain::engine {

LossLink::LossLink(std::unique_ptr<net::LossModel> model) {
  if (!model) throw std::invalid_argument("LossLink: null loss model");
  regimes_.push_back(Regime{0, std::move(model)});
}

LossLink& LossLink::add_regime(Time at, std::unique_ptr<net::LossModel> model) {
  if (!model) throw std::invalid_argument("LossLink: null loss model");
  if (at <= regimes_.back().at) {
    throw std::invalid_argument("LossLink: regimes must be strictly ordered");
  }
  regimes_.push_back(Regime{at, std::move(model)});
  return *this;
}

bool LossLink::deliver(Time now) {
  while (current_ + 1 < regimes_.size() && regimes_[current_ + 1].at <= now) {
    ++current_;
  }
  return !regimes_[current_].model->lost();
}

}  // namespace fountain::engine
