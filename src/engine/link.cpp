#include "engine/link.hpp"

#include <stdexcept>

namespace fountain::engine {

LossLink::LossLink(std::unique_ptr<net::LossModel> model) {
  if (!model) throw std::invalid_argument("LossLink: null loss model");
  regimes_.push_back(Regime{0, std::move(model)});
}

LossLink& LossLink::add_regime(Time at, std::unique_ptr<net::LossModel> model) {
  if (!model) throw std::invalid_argument("LossLink: null loss model");
  if (at <= regimes_.back().at) {
    throw std::invalid_argument("LossLink: regimes must be strictly ordered");
  }
  regimes_.push_back(Regime{at, std::move(model)});
  return *this;
}

Verdict LossLink::transfer(Time now) {
  while (current_ + 1 < regimes_.size() && regimes_[current_ + 1].at <= now) {
    ++current_;
  }
  return regimes_[current_].model->lost() ? Verdict::dropped()
                                          : Verdict::delivered();
}

SharedBottleneck::SharedBottleneck(double capacity) : capacity_(capacity) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("SharedBottleneck: capacity must be > 0");
  }
}

std::uint32_t SharedBottleneck::attach() {
  rates_.push_back(0.0);
  return static_cast<std::uint32_t>(rates_.size() - 1);
}

// Called only from the one cohort (hence one worker) owning the attached
// receivers — see the threading contract in link.hpp — so plain doubles
// suffice even under SessionConfig::threads > 1.
void SharedBottleneck::set_rate(std::uint32_t slot, double packets_per_tick) {
  if (slot >= rates_.size()) {
    throw std::out_of_range("SharedBottleneck: unknown slot");
  }
  if (packets_per_tick < 0.0) {
    throw std::invalid_argument("SharedBottleneck: negative rate");
  }
  offered_ += packets_per_tick - rates_[slot];
  rates_[slot] = packets_per_tick;
  if (offered_ < 0.0) offered_ = 0.0;  // guard float cancellation drift
  if (offered_ > peak_offered_) peak_offered_ = offered_;
}

BottleneckLink::BottleneckLink(std::shared_ptr<SharedBottleneck> bottleneck,
                               std::uint64_t seed, double base_loss)
    : bottleneck_(std::move(bottleneck)), base_loss_(base_loss), rng_(seed) {
  if (!bottleneck_) {
    throw std::invalid_argument("BottleneckLink: null bottleneck");
  }
  if (base_loss < 0.0 || base_loss > 1.0) {
    throw std::invalid_argument("BottleneckLink: base_loss outside [0, 1]");
  }
  slot_ = bottleneck_->attach();
}

Verdict BottleneckLink::transfer(Time /*now*/) {
  const double queue = bottleneck_->loss_probability();
  const double p = queue + base_loss_ - queue * base_loss_;
  return rng_.chance(p) ? Verdict::dropped() : Verdict::delivered();
}

}  // namespace fountain::engine
