#include "engine/sources.hpp"

#include <stdexcept>

namespace fountain::engine {

CarouselSource::CarouselSource(const carousel::Carousel& carousel,
                               fec::CodecId codec,
                               std::size_t packets_per_fire)
    : carousel_(carousel), codec_(codec), packets_per_fire_(packets_per_fire) {
  if (packets_per_fire == 0) {
    throw std::invalid_argument("CarouselSource: packets_per_fire must be > 0");
  }
}

void CarouselSource::emit(std::uint64_t round, PacketBatch& batch) const {
  const std::uint64_t first = round * packets_per_fire_;
  for (std::size_t i = 0; i < packets_per_fire_; ++i) {
    batch.indices.push_back(carousel_.packet_at(first + i));
  }
  // A carousel has no schedule structure: one layer, and any firing is as
  // good a join opportunity as any other.
  batch.segments.push_back(PacketBatch::Segment{
      0, true, 0, static_cast<std::uint32_t>(batch.indices.size())});
}

RatelessSource::RatelessSource(fec::CodecId codec, std::uint64_t offset,
                               std::uint64_t stride,
                               std::size_t packets_per_fire)
    : codec_(codec),
      offset_(offset),
      stride_(stride),
      packets_per_fire_(packets_per_fire) {
  if (stride == 0) {
    throw std::invalid_argument("RatelessSource: stride must be > 0");
  }
  if (packets_per_fire == 0) {
    throw std::invalid_argument("RatelessSource: packets_per_fire must be > 0");
  }
}

void RatelessSource::emit(std::uint64_t round, PacketBatch& batch) const {
  // Pure in `round` by construction; indices stay within uint32 because a
  // session horizon is far below 2^32 firings (truncation would need ~4e9
  // emitted symbols on one source).
  const std::uint64_t first = offset_ + round * stride_ * packets_per_fire_;
  for (std::size_t i = 0; i < packets_per_fire_; ++i) {
    batch.indices.push_back(
        static_cast<std::uint32_t>(first + i * stride_));
  }
  batch.segments.push_back(PacketBatch::Segment{
      0, true, 0, static_cast<std::uint32_t>(batch.indices.size())});
}

StridedCarouselSource::StridedCarouselSource(
    const carousel::Carousel& carousel, fec::CodecId codec,
    std::uint64_t offset, std::uint64_t stride)
    : carousel_(carousel), codec_(codec), offset_(offset), stride_(stride) {
  if (stride == 0) {
    throw std::invalid_argument("StridedCarouselSource: stride must be > 0");
  }
}

void StridedCarouselSource::emit(std::uint64_t round,
                                 PacketBatch& batch) const {
  batch.indices.push_back(carousel_.packet_at(offset_ + round * stride_));
  batch.segments.push_back(PacketBatch::Segment{0, true, 0, 1});
}

}  // namespace fountain::engine
