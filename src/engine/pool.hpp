// The worker pool behind the parallel session engine. Cohorts are the shard
// unit: PR 5's rule that a SharedBottleneck may not span cohorts means every
// cohort's congestion state, link RNG streams, policy state and pooled sinks
// are self-contained, so whole cohorts can run on different threads with no
// synchronization on the simulation path. CohortPool::run distributes cohort
// indices to workers and blocks until all are done; because each cohort
// writes only its own receivers' reports (a deterministic in-order merge by
// receiver index), the output is byte-identical at every worker count and
// under any assignment of cohorts to workers.
#pragma once

#include <cstddef>
#include <functional>

namespace fountain::engine {

/// The normalization rule for SessionConfig::threads, shared by the engine,
/// the benches and the tests that pin it: 0 ("auto") resolves to
/// std::thread::hardware_concurrency(), and any result is clamped to at
/// least 1 (hardware_concurrency may legally report 0).
std::size_t resolve_threads(std::size_t requested);

class CohortPool {
 public:
  /// Runs task(worker, index) for every index in [0, count), on
  /// min(threads, count) workers. Indices are claimed dynamically (an atomic
  /// cursor), so heterogeneous per-cohort costs balance; tasks must confine
  /// themselves to worker-local state plus state partitioned by index, which
  /// is what makes the schedule-independence deterministic.
  ///
  /// threads <= 1 (or count <= 1) runs every index in ascending order on the
  /// calling thread — the exact sequential path, no threads spawned. The
  /// first exception thrown by any task is rethrown on the caller after all
  /// workers have stopped; remaining unclaimed indices are abandoned.
  static void run(std::size_t threads, std::size_t count,
                  const std::function<void(std::size_t worker,
                                           std::size_t index)>& task);
};

}  // namespace fountain::engine
