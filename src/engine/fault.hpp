// The fault-injection plane: adversarial delivery and sender failure for
// the session engine.
//
// The paper's simulations only ever erase packets, but real multicast paths
// also duplicate, reorder, corrupt, and truncate them — and servers or
// mirrors die mid-carousel. FaultLink upgrades any LinkModel from the
// friendly erase/deliver pair to the full Verdict lattice (engine/types.hpp)
// as a composable decorator: the inner link decides erasure exactly as it
// would undecorated (its RNG stream is untouched), and only surviving
// packets are then subjected to the decorator's own seeded fault draws. That
// split keeps the parallel engine's determinism contract intact — every
// random draw still comes from a pre-split per-link stream, so fault-ridden
// scenarios replay byte-identically at every thread count.
//
// FaultScript models the sender side of failure: blackout windows per source
// (a server crashing and restarting, a mirror dying for good mid-transfer).
// During a blackout the source emits nothing — its tick grid keeps running,
// so a restarted server resumes its schedule exactly where the carousel
// would be, just as a real periodic sender would. The script is immutable
// once the session runs and is read concurrently by all cohort workers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/link.hpp"
#include "engine/types.hpp"
#include "util/random.hpp"

namespace fountain::engine {

/// Per-packet fault probabilities for a FaultLink, applied (in this order)
/// to each packet the inner link delivers. The probabilities must be >= 0
/// and sum to <= 1; the remainder is clean delivery.
struct FaultProfile {
  double duplicate = 0.0;        // arrives 2..max_copies times
  double delay = 0.0;            // arrives 1..max_delay ticks late
  double corrupt_header = 0.0;   // header damaged: checksum rejects it
  double corrupt_payload = 0.0;  // payload damaged: UDP checksum rejects it
  double truncate = 0.0;         // datagram cut short: framing rejects it

  std::uint16_t max_copies = 2;  // kDuplicate: total arrivals in [2, this]
  Time max_delay = 8;            // kDelay: lateness in [1, this]

  double fault_sum() const {
    return duplicate + delay + corrupt_header + corrupt_payload + truncate;
  }
};

/// Decorates any LinkModel with adversarial delivery. Erasure is delegated
/// to the inner link first (one inner transfer() per packet, so the inner
/// stream advances exactly as it would undecorated); packets the inner link
/// delivers then suffer at most one fault drawn from the decorator's own
/// generator, seeded at construction. Rate declarations and shared-state
/// identity pass through, so a FaultLink can wrap a BottleneckLink without
/// changing cohort-confinement rules.
class FaultLink final : public LinkModel {
 public:
  /// Running tally of verdicts issued, for asserting "every injected fault
  /// was accounted for" against ReceiverReport counters.
  struct Counters {
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;  // by the inner link
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
    std::uint64_t corrupt_header = 0;
    std::uint64_t corrupt_payload = 0;
    std::uint64_t truncated = 0;

    std::uint64_t corrupted() const {
      return corrupt_header + corrupt_payload + truncated;
    }
  };

  /// Throws std::invalid_argument on a null inner link, a negative
  /// probability, fault_sum() > 1, max_copies < 2, or max_delay < 1.
  FaultLink(std::unique_ptr<LinkModel> inner, FaultProfile profile,
            std::uint64_t seed);

  Verdict transfer(Time now) override;
  void set_subscriber_rate(double packets_per_tick) override {
    inner_->set_subscriber_rate(packets_per_tick);
  }
  const void* shared_state() const override { return inner_->shared_state(); }
  void append_shared_states(std::vector<const void*>& out) const override {
    inner_->append_shared_states(out);
  }

  const Counters& counters() const { return counters_; }
  const FaultProfile& profile() const { return profile_; }

 private:
  std::unique_ptr<LinkModel> inner_;
  FaultProfile profile_;
  util::Rng rng_;
  Counters counters_;
};

/// Scripted or seeded-random sender blackouts: each outage silences one
/// source for the ticks [from, until). An outage with until = kNever is a
/// permanent death (the mirror that never comes back). Build the script
/// before Session::run and hand it over with Session::set_fault_script;
/// the engine consults it read-only from every cohort worker.
class FaultScript {
 public:
  struct Outage {
    std::uint32_t source = 0;
    Time from = 0;
    Time until = kNever;  // exclusive
  };

  FaultScript() = default;

  /// Throws std::invalid_argument unless from < until.
  FaultScript& add_outage(SourceId source, Time from, Time until = kNever);

  /// Seeded-random server churn: for each of `sources` sources,
  /// `outages_per_source` blackout windows with uniform start ticks in
  /// [0, horizon) and lengths in [1, max_length]. Windows may overlap; the
  /// union is what blacks out.
  static FaultScript random(std::uint64_t seed, std::size_t sources,
                            Time horizon, unsigned outages_per_source,
                            Time max_length);

  bool blacked_out(std::uint32_t source, Time now) const;

  const std::vector<Outage>& outages() const { return outages_; }
  bool empty() const { return outages_.empty(); }

 private:
  std::vector<Outage> outages_;
};

}  // namespace fountain::engine
