#include "engine/fault.hpp"

#include <stdexcept>

namespace fountain::engine {

FaultLink::FaultLink(std::unique_ptr<LinkModel> inner, FaultProfile profile,
                     std::uint64_t seed)
    : inner_(std::move(inner)), profile_(profile), rng_(seed) {
  if (!inner_) throw std::invalid_argument("FaultLink: null inner link");
  const double probs[] = {profile.duplicate, profile.delay,
                          profile.corrupt_header, profile.corrupt_payload,
                          profile.truncate};
  for (const double p : probs) {
    if (p < 0.0) throw std::invalid_argument("FaultLink: negative probability");
  }
  if (profile.fault_sum() > 1.0) {
    throw std::invalid_argument("FaultLink: fault probabilities sum past 1");
  }
  if (profile.max_copies < 2) {
    throw std::invalid_argument("FaultLink: max_copies must be >= 2");
  }
  if (profile.max_delay < 1) {
    throw std::invalid_argument("FaultLink: max_delay must be >= 1");
  }
}

Verdict FaultLink::transfer(Time now) {
  // Erasure first, from the inner link's own stream: a FaultLink over a
  // clean profile is byte-identical to the undecorated link.
  const Verdict inner = inner_->transfer(now);
  if (inner.kind != FaultKind::kDeliver) {
    ++counters_.dropped;
    return inner;
  }
  // One uniform draw decides the fault band; the extra parameter (copy
  // count, lateness) draws only on its own branch. All from the decorator's
  // pre-split stream, never from a session-global generator.
  const double u = rng_.uniform();
  double edge = profile_.duplicate;
  if (u < edge) {
    ++counters_.duplicated;
    const auto copies = static_cast<std::uint16_t>(
        2 + rng_.below(static_cast<std::uint64_t>(profile_.max_copies) - 1));
    return Verdict{FaultKind::kDuplicate, copies, 0};
  }
  edge += profile_.delay;
  if (u < edge) {
    ++counters_.delayed;
    const Time delay = 1 + rng_.below(profile_.max_delay);
    return Verdict{FaultKind::kDelay, 1, delay};
  }
  edge += profile_.corrupt_header;
  if (u < edge) {
    ++counters_.corrupt_header;
    return Verdict{FaultKind::kCorruptHeader, 1, 0};
  }
  edge += profile_.corrupt_payload;
  if (u < edge) {
    ++counters_.corrupt_payload;
    return Verdict{FaultKind::kCorruptPayload, 1, 0};
  }
  edge += profile_.truncate;
  if (u < edge) {
    ++counters_.truncated;
    return Verdict{FaultKind::kTruncate, 1, 0};
  }
  ++counters_.delivered;
  return Verdict::delivered();
}

FaultScript& FaultScript::add_outage(SourceId source, Time from, Time until) {
  if (from >= until) {
    throw std::invalid_argument("FaultScript: outage must end after it starts");
  }
  outages_.push_back(Outage{source.value, from, until});
  return *this;
}

FaultScript FaultScript::random(std::uint64_t seed, std::size_t sources,
                                Time horizon, unsigned outages_per_source,
                                Time max_length) {
  if (horizon == 0) {
    throw std::invalid_argument("FaultScript::random: zero horizon");
  }
  if (max_length < 1) {
    throw std::invalid_argument("FaultScript::random: max_length must be >= 1");
  }
  FaultScript script;
  util::Rng rng(seed);
  for (std::size_t s = 0; s < sources; ++s) {
    for (unsigned i = 0; i < outages_per_source; ++i) {
      const Time from = rng.below(horizon);
      const Time len = 1 + rng.below(max_length);
      script.add_outage(SourceId{static_cast<std::uint32_t>(s)}, from,
                        from + len);
    }
  }
  return script;
}

bool FaultScript::blacked_out(std::uint32_t source, Time now) const {
  for (const Outage& outage : outages_) {
    if (outage.source == source && outage.from <= now && now < outage.until) {
      return true;
    }
  }
  return false;
}

}  // namespace fountain::engine
