#include "engine/sink.hpp"

#include <stdexcept>

namespace fountain::engine {

StructuralSink::StructuralSink(std::unique_ptr<fec::StructuralDecoder> decoder)
    : decoder_(std::move(decoder)) {
  if (!decoder_) throw std::invalid_argument("StructuralSink: null decoder");
}

DataSink::DataSink(std::unique_ptr<fec::IncrementalDecoder> decoder,
                   util::ConstSymbolView encoding)
    : decoder_(std::move(decoder)), encoding_(encoding) {
  if (!decoder_) throw std::invalid_argument("DataSink: null decoder");
  if (encoding_.empty()) {
    throw std::invalid_argument("DataSink: empty encoding view");
  }
}

}  // namespace fountain::engine
