#include "engine/sink.hpp"

#include <stdexcept>

namespace fountain::engine {

StructuralSink::StructuralSink(std::unique_ptr<fec::StructuralDecoder> decoder)
    : decoder_(std::move(decoder)) {
  if (!decoder_) throw std::invalid_argument("StructuralSink: null decoder");
}

DataSink::DataSink(std::unique_ptr<fec::IncrementalDecoder> decoder,
                   const fec::BlockEncoder& encoder)
    : decoder_(std::move(decoder)),
      encoder_(encoder),
      scratch_(1, encoder.symbol_size()) {
  if (!decoder_) throw std::invalid_argument("DataSink: null decoder");
}

}  // namespace fountain::engine
