#include "engine/pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace fountain::engine {

std::size_t resolve_threads(std::size_t requested) {
  if (requested == 0) {
    requested = static_cast<std::size_t>(std::thread::hardware_concurrency());
  }
  return std::max<std::size_t>(requested, 1);
}

void CohortPool::run(
    std::size_t threads, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& task) {
  if (count == 0) return;
  const std::size_t workers = std::min(resolve_threads(threads), count);
  if (workers <= 1) {
    // Sequential path: ascending index order on the caller, no threads.
    for (std::size_t i = 0; i < count; ++i) task(0, i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto work = [&](std::size_t worker) {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(worker, i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work, w);
  work(0);  // the caller is worker 0
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fountain::engine
