// Value types shared across the discrete-event session engine. Time is an
// abstract tick count: a scenario decides what one tick means (a carousel
// slot, a protocol round, a 0.1 ms pacing interval) and gives every source a
// start tick and a firing period in the same unit.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace fountain::engine {

/// Simulation time in ticks.
using Time = std::uint64_t;

/// "Does not happen": default leave time, return value of bounded searches.
inline constexpr Time kNever = std::numeric_limits<Time>::max();

struct SourceId {
  std::uint32_t value = 0;
};

struct ReceiverId {
  std::uint32_t value = 0;
};

/// The packets emitted by one source firing. The engine owns one batch per
/// source and reuses it across firings, so sources append into the vectors
/// without allocating on the hot path after the first few rounds.
struct PacketBatch {
  /// A run of packets transmitted on one multicast layer. `begin`/`end`
  /// index into `indices`; `sync_point` marks the layer's join opportunity
  /// for this firing (Section 7.1's SPs).
  struct Segment {
    unsigned layer = 0;
    bool sync_point = false;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  bool burst = false;  // double-rate probe firing (Section 7.1.3)
  std::vector<std::uint32_t> indices;  // encoding indices, transmission order
  std::vector<Segment> segments;

  void clear() {
    burst = false;
    indices.clear();
    segments.clear();
  }
};

/// One packet as seen by a sink: the encoding index plus its transmission
/// context (which sender, which layer, when).
struct Delivery {
  Time at = 0;
  std::uint32_t source = 0;  // SourceId::value
  std::uint32_t index = 0;   // encoding index
  unsigned layer = 0;
  bool sync_point = false;
  bool burst = false;
};

/// What a channel did to one packet — the fault-plane generalization of the
/// old boolean deliver/drop. The clean verdicts (kDeliver, kDrop) are what
/// every pre-existing LinkModel emits; the adversarial ones are produced by
/// a FaultLink decorator (engine/fault.hpp) and model what real multicast
/// paths do beyond erasing: duplicate, hold back and reorder, flip header or
/// payload bits, cut a datagram short.
enum class FaultKind : std::uint8_t {
  kDeliver = 0,        // arrives intact, now
  kDrop = 1,           // erased by the channel
  kDuplicate = 2,      // arrives intact, `copies` times total
  kDelay = 3,          // arrives intact but `delay` ticks late (reordering)
  kCorruptHeader = 4,  // arrives with damaged header: checksum rejects it
  kCorruptPayload = 5, // arrives with damaged payload: UDP checksum rejects it
  kTruncate = 6,       // arrives short: framing rejects it
};

/// Per-packet channel verdict. `copies` is meaningful only for kDuplicate
/// (total arrivals, >= 2); `delay` only for kDelay (ticks until arrival,
/// >= 1). The receiver-visible semantics per kind live with the engine's
/// accounting table in session.hpp (ReceiverReport).
struct Verdict {
  FaultKind kind = FaultKind::kDeliver;
  std::uint16_t copies = 1;
  Time delay = 0;

  static constexpr Verdict delivered() { return Verdict{}; }
  static constexpr Verdict dropped() {
    return Verdict{FaultKind::kDrop, 1, 0};
  }

  friend bool operator==(const Verdict&, const Verdict&) = default;
};

}  // namespace fountain::engine
