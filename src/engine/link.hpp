// Per-subscription channel models. Every (receiver, source) subscription
// carries its own LinkModel, so a population can be arbitrarily
// heterogeneous: one receiver on a clean link, its neighbour behind a bursty
// Gilbert-Elliott channel, a third whose link degrades mid-session.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/types.hpp"
#include "net/loss.hpp"

namespace fountain::engine {

class LinkModel {
 public:
  virtual ~LinkModel() = default;
  /// Advances the channel one packet at tick `now`; true = delivered.
  /// `now` is non-decreasing across calls within one receiver's lifetime.
  virtual bool deliver(Time now) = 0;
};

/// Lossless link.
class PerfectLink final : public LinkModel {
 public:
  bool deliver(Time) override { return true; }
};

/// A net::LossModel with optional scheduled regime changes: from tick `at`
/// onward the loss process is replaced wholesale (a clean link turning
/// bursty, congestion clearing, a route flap). Regimes must be added in
/// increasing time order.
class LossLink final : public LinkModel {
 public:
  explicit LossLink(std::unique_ptr<net::LossModel> model);

  LossLink& add_regime(Time at, std::unique_ptr<net::LossModel> model);

  bool deliver(Time now) override;

 private:
  struct Regime {
    Time at;
    std::unique_ptr<net::LossModel> model;
  };
  std::vector<Regime> regimes_;  // regimes_[0].at == 0
  std::size_t current_ = 0;
};

}  // namespace fountain::engine
