// Per-subscription channel models. Every (receiver, source) subscription
// carries its own LinkModel, so a population can be arbitrarily
// heterogeneous: one receiver on a clean link, its neighbour behind a bursty
// Gilbert-Elliott channel, a third whose link degrades mid-session.
//
// Links may also share state: a SharedBottleneck aggregates the subscribed
// rates of every receiver attached to it and converts the excess over its
// capacity into queueing loss, so one receiver joining a layer raises the
// loss its siblings observe — the coupling that makes receiver-driven
// congestion control meaningful (see src/cc/).
//
// Threading contract. A LinkModel is owned by exactly one subscription and
// is only ever touched by the cohort simulating its receiver, so under the
// parallel engine (SessionConfig::threads) private links need no
// synchronization. Shared state is shard-local by construction: all
// receivers attached to one SharedBottleneck must sit in the same cohort
// (Session::run validates this before sharding), so a bottleneck's mutable
// rate table is only ever accessed by the one worker running that cohort —
// no locks, and identical arithmetic at every thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/types.hpp"
#include "net/loss.hpp"
#include "util/random.hpp"

namespace fountain::engine {

class LinkModel {
 public:
  virtual ~LinkModel() = default;
  /// Advances the channel one packet at tick `now` and says what happened to
  /// it. Plain loss processes return Verdict::delivered() or
  /// Verdict::dropped(); a FaultLink (engine/fault.hpp) may return any
  /// FaultKind. `now` is non-decreasing across calls within one receiver's
  /// lifetime.
  virtual Verdict transfer(Time now) = 0;

  /// Boolean convenience over transfer(): did the packet arrive intact and
  /// on time? (The pre-fault-plane interface; every call advances the
  /// channel exactly like transfer().)
  bool deliver(Time now) { return transfer(now).kind == FaultKind::kDeliver; }

  /// Informs the link of the subscriber's current offered rate through it,
  /// in packets per tick. The engine calls this whenever the receiver's
  /// subscription level changes (join, scripted move, policy decision) and
  /// with 0.0 when the receiver finishes. Stateless links ignore it.
  virtual void set_subscriber_rate(double packets_per_tick) {
    (void)packets_per_tick;
  }

  /// Identity of the mutable state this link shares with other links, or
  /// nullptr for a private link. The engine requires all receivers whose
  /// links share state to be simulated in the same cohort (their rates must
  /// aggregate concurrently) and validates that before running.
  virtual const void* shared_state() const { return nullptr; }

  /// Appends the identity of *every* piece of mutable state this link shares
  /// with other links. A link over a single queue has one; a PathLink
  /// (engine/topology.hpp) has one per traversed edge; a decorator forwards
  /// to the link it wraps. Session::run validates cohort confinement against
  /// this full set — shared_state() alone under-reports multi-edge links.
  virtual void append_shared_states(std::vector<const void*>& out) const {
    if (const void* state = shared_state()) out.push_back(state);
  }
};

/// Lossless link.
class PerfectLink final : public LinkModel {
 public:
  Verdict transfer(Time) override { return Verdict::delivered(); }
};

/// A net::LossModel with optional scheduled regime changes: from tick `at`
/// onward the loss process is replaced wholesale (a clean link turning
/// bursty, congestion clearing, a route flap). Regimes must be added in
/// increasing time order.
class LossLink final : public LinkModel {
 public:
  explicit LossLink(std::unique_ptr<net::LossModel> model);

  LossLink& add_regime(Time at, std::unique_ptr<net::LossModel> model);

  Verdict transfer(Time now) override;

 private:
  struct Regime {
    Time at;
    std::unique_ptr<net::LossModel> model;
  };
  std::vector<Regime> regimes_;  // regimes_[0].at == 0
  std::size_t current_ = 0;
};

/// The shared half of a congested last-mile link: a fluid queue of capacity
/// `capacity` packets per tick carrying the subscriptions of every attached
/// receiver. Offered load is the sum of the attached subscribers' declared
/// rates; the fraction exceeding capacity is dropped uniformly, so
///
///   loss = max(0, (offered - capacity) / offered).
///
/// Create one per bottleneck, attach each subscription through a
/// BottleneckLink, and let the engine keep the rates current. All receivers
/// attached to one bottleneck must run in the same engine cohort
/// (Session::run validates this), which also makes the object shard-local
/// under the parallel engine: exactly one worker thread ever mutates it.
/// Rates return to zero as members finish, so the object is clean for
/// reuse by construction.
class SharedBottleneck {
 public:
  /// Throws std::invalid_argument unless capacity > 0.
  explicit SharedBottleneck(double capacity);

  double capacity() const { return capacity_; }
  /// Aggregate declared rate of all attached subscribers, packets per tick.
  double offered() const { return offered_; }
  /// Drop probability of the fluid queue at the current offered load.
  double loss_probability() const {
    return offered_ <= capacity_ ? 0.0
                                 : (offered_ - capacity_) / offered_;
  }

  /// Registers one subscriber at rate 0; returns its slot.
  std::uint32_t attach();
  void set_rate(std::uint32_t slot, double packets_per_tick);

  /// Highest offered load ever declared, packets per tick. Divided by
  /// capacity() this is the edge's peak utilization — the "where do hot
  /// links concentrate" measurement of the topology benches. Pure
  /// observation: tracking it changes no rate, loss, or RNG arithmetic.
  double peak_offered() const { return peak_offered_; }

 private:
  double capacity_;
  double offered_ = 0.0;
  double peak_offered_ = 0.0;
  std::vector<double> rates_;
};

/// One subscription's path through a SharedBottleneck: queueing loss from
/// the shared fluid queue, optionally compounded with an independent
/// Bernoulli `base_loss` (the subscriber's private tail link). Drop draws
/// come from a per-link generator seeded at construction, so results do not
/// depend on the order receivers are processed within a tick.
class BottleneckLink final : public LinkModel {
 public:
  /// Throws std::invalid_argument on a null bottleneck or base_loss
  /// outside [0, 1].
  BottleneckLink(std::shared_ptr<SharedBottleneck> bottleneck,
                 std::uint64_t seed, double base_loss = 0.0);

  Verdict transfer(Time now) override;
  void set_subscriber_rate(double packets_per_tick) override {
    bottleneck_->set_rate(slot_, packets_per_tick);
  }
  const void* shared_state() const override { return bottleneck_.get(); }

 private:
  std::shared_ptr<SharedBottleneck> bottleneck_;
  std::uint32_t slot_;
  double base_loss_;
  util::Rng rng_;
};

}  // namespace fountain::engine
