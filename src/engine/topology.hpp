// The topology plane: the link layer generalized from one shared queue to a
// *path of composed links* over an explicit network graph.
//
// Every congestion scenario before this file ran over a single
// SharedBottleneck — one fluid queue between the sender and a group of
// receivers. Real multicast distribution crosses a tree (or a scale-free
// mesh) of heterogeneous links: a receiver's packets traverse several shared
// edges, loss compounds multiplicatively along the path, and the *narrowest*
// shared edge — wherever it sits on the path — governs the receiver's fair
// share. Topology describes such a graph (nodes, directed capacitated edges
// with an RTT), ships deterministic generators for k-ary bottleneck trees
// and Barabási–Albert scale-free graphs, and PathLink chains one
// SharedBottleneck per traversed edge into a single LinkModel.
//
// Path-composition math. Each edge e on the path drops independently with
// its fluid-queue probability p_e = max(0, (offered_e - capacity_e) /
// offered_e); a packet survives the path only if it survives every edge, so
// end-to-end delivery is Π(1 - p_e), optionally compounded with the
// subscriber's private tail loss b. PathLink folds the product
// incrementally (p ← p_e + p - p_e·p, starting from b) and spends exactly
// one RNG draw per packet, which makes a one-edge path bit-identical to the
// legacy BottleneckLink — arithmetic, draw count, and seed layout all match.
//
// Threading contract (extends engine/link.hpp). A PathLink loads *every*
// edge queue on its path with its subscriber's rate, so all receivers whose
// paths share any edge must be simulated in the same engine cohort.
// Session::run enumerates the full edge set of every link through
// LinkModel::append_shared_states and rejects scenarios violating this
// before any sharding — a whole tree is one cohort; parallelism comes from
// running disjoint trees (or disjoint graph regions) on different workers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/link.hpp"
#include "engine/types.hpp"
#include "util/random.hpp"

namespace fountain::engine {

using NodeId = std::uint32_t;

/// One directed, capacitated link of the graph. `capacity` is in packets per
/// tick (it becomes the SharedBottleneck capacity when the edge is
/// materialized); `rtt` is the edge's propagation time in ticks, summed
/// along a path into an optional delivery latency.
struct TopologyEdge {
  NodeId from = 0;
  NodeId to = 0;
  double capacity = 0.0;
  Time rtt = 1;

  friend bool operator==(const TopologyEdge&, const TopologyEdge&) = default;
};

/// A value-type network graph. Nodes are dense ids [0, node_count()); edges
/// are stored in insertion order and addressed by index, which is what makes
/// generation (and therefore every path and every materialized queue)
/// byte-identical across instances, processes, and thread counts: equality
/// is defined over the exact node/edge sequence.
class Topology {
 public:
  Topology() = default;

  NodeId add_node() { return nodes_++; }

  /// Appends a directed edge; returns its index. Throws std::out_of_range on
  /// an unknown endpoint and std::invalid_argument unless capacity > 0.
  std::uint32_t add_edge(NodeId from, NodeId to, double capacity,
                         Time rtt = 1);

  std::size_t node_count() const { return nodes_; }
  std::size_t edge_count() const { return edges_.size(); }
  const TopologyEdge& edge(std::size_t e) const { return edges_.at(e); }
  const std::vector<TopologyEdge>& edges() const { return edges_; }

  /// Re-prices one edge (scenario construction: narrow one subtree of a
  /// generated tree). Throws like add_edge.
  void set_edge_capacity(std::size_t e, double capacity);

  /// Undirected degree: edges incident to `node` in either direction.
  std::size_t degree(NodeId node) const;

  /// Fewest-hop path `from` → `to` as a sequence of edge indices, treating
  /// every edge as traversable in both directions (a distribution tree's
  /// edges point root-ward or leaf-ward depending on construction; the
  /// shared queue is the same either way). Deterministic: BFS visits nodes
  /// in discovery order and scans neighbors in edge-insertion order, so ties
  /// always resolve to the lowest edge index. Throws std::out_of_range on an
  /// unknown node and std::invalid_argument if no path exists. Returns an
  /// empty path for from == to.
  std::vector<std::uint32_t> path(NodeId from, NodeId to) const;

  /// Nodes with no outgoing edge — the receiver attachment points of a
  /// generated tree (level-order, so a k-ary tree's leaves are contiguous
  /// and ascending).
  std::vector<NodeId> leaves() const;

  /// A complete `arity`-ary tree of `depth` edge levels rooted at node 0,
  /// nodes in level order (root 0, then depth-1 nodes left to right, ...).
  /// Every edge into a depth-d node gets capacity `level_capacity[d-1]` and
  /// rtt `level_rtt[d-1]` (1 per level when `level_rtt` is empty). Throws
  /// std::invalid_argument unless depth >= 1, arity >= 1,
  /// level_capacity.size() == depth (all > 0), and level_rtt is empty or
  /// also depth-sized.
  static Topology bottleneck_tree(unsigned depth, unsigned arity,
                                  std::span<const double> level_capacity,
                                  std::span<const Time> level_rtt = {});

  /// Barabási–Albert preferential attachment: an (m+1)-clique of seed nodes,
  /// then each new node attaches `m` edges to distinct existing nodes chosen
  /// with probability proportional to their degree. Every draw comes from
  /// util::Rng(seed), so the graph is a pure function of (nodes, m, seed) —
  /// byte-identical across instances and thread counts. All edges get
  /// `capacity` and `rtt` (re-price hot edges with set_edge_capacity).
  /// Degree distribution converges to P(k) = 2m(m+1) / (k(k+1)(k+2)) for
  /// k >= m. Throws std::invalid_argument unless m >= 1 and nodes >= m + 1.
  static Topology barabasi_albert(std::size_t nodes, std::size_t m,
                                  std::uint64_t seed, double capacity = 1.0,
                                  Time rtt = 1);

  friend bool operator==(const Topology&, const Topology&) = default;

 private:
  NodeId nodes_ = 0;
  std::vector<TopologyEdge> edges_;
};

/// One subscription's route across several shared edges: a chain of
/// SharedBottleneck queues whose losses compound multiplicatively, plus an
/// optional private Bernoulli tail (`base_loss`) and an optional fixed
/// delivery latency (packets that survive arrive `latency` ticks late as
/// FaultKind::kDelay verdicts; 0 keeps the classic deliver-now semantics).
///
/// The link attaches one subscriber slot to every queue at construction and
/// declares the subscriber's rate to all of them, so a receiver's
/// subscription loads each edge it traverses. Drop draws come from one
/// per-link generator seeded at construction — order-independent within a
/// tick, and over a single edge bit-identical to BottleneckLink(queue, seed,
/// base_loss) by construction (see the header comment).
class PathLink final : public LinkModel {
 public:
  /// Throws std::invalid_argument on an empty path, a null queue, or
  /// base_loss outside [0, 1].
  PathLink(std::vector<std::shared_ptr<SharedBottleneck>> edges,
           std::uint64_t seed, double base_loss = 0.0, Time latency = 0);

  Verdict transfer(Time now) override;
  void set_subscriber_rate(double packets_per_tick) override;
  /// Legacy single-identity accessor: the first edge's queue. The full edge
  /// set — what cohort confinement is validated against — comes from
  /// append_shared_states.
  const void* shared_state() const override { return edges_.front().get(); }
  void append_shared_states(std::vector<const void*>& out) const override;

  std::size_t edge_count() const { return edges_.size(); }
  Time latency() const { return latency_; }
  /// Current end-to-end drop probability (queues compounded with the tail).
  double loss_probability() const;

 private:
  std::vector<std::shared_ptr<SharedBottleneck>> edges_;
  std::vector<std::uint32_t> slots_;
  double base_loss_;
  Time latency_;
  util::Rng rng_;
};

/// Materializes one SharedBottleneck per topology edge (index-aligned with
/// Topology::edge). Share the returned vector across every PathLink built
/// from the same topology so receivers whose paths overlap couple through
/// the same queues.
std::vector<std::shared_ptr<SharedBottleneck>> make_edge_queues(
    const Topology& topology);

/// A PathLink for the deterministic `from` → `to` path over queues from
/// make_edge_queues. `model_latency` sums the traversed edges' rtt into the
/// link's delivery latency; leave it false for loss-only studies (and for
/// bit-compatibility with BottleneckLink over one edge).
std::unique_ptr<PathLink> make_path_link(
    const Topology& topology,
    const std::vector<std::shared_ptr<SharedBottleneck>>& queues, NodeId from,
    NodeId to, std::uint64_t seed, double base_loss = 0.0,
    bool model_latency = false);

}  // namespace fountain::engine
