// The discrete-event session engine. One Session holds the full scenario —
// sources (senders), receivers (join/leave times, subscription policy,
// per-link channel models) — and run() simulates it to completion, returning
// one report per receiver.
//
// Event model. Sources fire on a tick grid (start + r * period); receiver
// joins, leaves and scripted level moves are point events. Events are
// processed in time order from a binary heap; control events at a tick are
// processed before that tick's firings, so a receiver joining at t hears the
// firing at t and one leaving at t does not.
//
// Scale model. Receivers are simulated in cohorts of `cohort_size`. Because
// every PacketSource is a pure function of its firing number, each cohort
// replays the firing sequence independently from its members' earliest join;
// receivers in other cohorts cost nothing while a cohort runs. Decoder state
// and distinct-packet bitmaps live in per-slot pools reset between cohorts —
// memory is O(cohort_size * decoder), not O(population * decoder) — which is
// what lets one run carry >= 1M structural receivers. The hot path (one
// delivered packet) performs no allocation.
//
// Parallel model. Cohorts are also the shard unit of the multi-threaded run
// (SessionConfig::threads): every receiver's RNG streams (link draws,
// adaptation draws) are pre-split — seeded per receiver/per link at
// construction, never drawn from a session-global generator — and shared
// congestion state (SharedBottleneck) may not span cohorts, so each worker
// simulates whole cohorts against the immutable sources with its own slot
// pool and no locks on the simulation path. Reports, per-receiver delivery
// traces (private sinks) and cc trace records land in per-receiver slots
// allocated up front, which is the deterministic in-order merge: run()
// output is byte-identical at every thread count, and threads = 1 is
// exactly the historical sequential path.
//
// Adaptation plane. Receivers manage their own subscription level through a
// cc::ReceiverPolicy evaluated on the event heap: after every firing a
// receiver hears, the engine summarizes the round (addressed/lost packets,
// burst-probe outcome, sync points) into a cc::RoundView and applies the
// policy's level decision, clamped to the source's layer range. The legacy
// SubscriptionPolicy{adaptive = true} knobs run the paper's Section 7.2
// burst-probe receiver (cc::BurstProbePolicy) with a synthetic congestion
// environment (drifting capacity, extra loss above it); a ReceiverSpec may
// instead carry an explicit controller (e.g. cc::LossDrivenPolicy) and get
// its congestion feedback from a real engine::SharedBottleneck, whose
// queueing loss the engine keeps current by declaring each receiver's
// subscribed rate to its links on every level change.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "cc/receiver_policy.hpp"
#include "engine/fault.hpp"
#include "engine/link.hpp"
#include "engine/packet_source.hpp"
#include "engine/sink.hpp"
#include "engine/types.hpp"
#include "fec/codec_id.hpp"
#include "fec/codec_registry.hpp"
#include "fec/erasure_code.hpp"
#include "util/random.hpp"

namespace fountain::engine {

/// How a receiver manages its subscription level (the highest layer it
/// hears). Defaults describe a fixed-level receiver; `adaptive = true`
/// enables the Section 7.2 burst-probe machinery (cc::BurstProbePolicy)
/// together with a synthetic congestion environment: the receiver's
/// sustainable capacity drifts, and packets above it suffer extra loss.
/// A ReceiverSpec carrying an explicit `controller` uses that policy
/// instead (the knobs below other than `initial_level` and `seed` are then
/// ignored unless `adaptive` keeps the synthetic environment on).
struct SubscriptionPolicy {
  unsigned initial_level = 0;
  bool adaptive = false;

  // Adaptive receivers only:
  unsigned initial_capacity = 0;        // sustainable level, in [0, layers)
  double capacity_change_prob = 0.0;    // per-firing capacity re-draw
  double congestion_extra_loss = 0.0;   // extra drop prob while level > cap
  double drop_loss_threshold = 0.45;    // firing loss fraction forcing a drop
  std::size_t burst_probe_window = 32;  // packets inspected during a burst
  std::uint64_t seed = 0;               // drives capacity + congestion draws
                                        // and the controller's timer jitter
};

/// A scenario-scripted forced level change (churn): at tick `at` the
/// receiver re-subscribes to levels [0, level]. Applies to fixed and
/// adaptive receivers alike and counts as a level change.
struct ScriptedMove {
  Time at = 0;
  unsigned level = 0;
};

/// Everything the engine needs to know about one receiver. Value type apart
/// from the optional private sink; describing 100k receivers is cheap.
struct ReceiverSpec {
  Time join = 0;
  Time leave = kNever;  // departs at `leave` (exclusive): churn
  SubscriptionPolicy policy;
  std::vector<ScriptedMove> moves;  // strictly increasing `at`
  /// Receiver-private subscription controller (adaptation plane). When set
  /// it replaces the built-in burst-probe policy: the engine reset()s it at
  /// join (with policy.initial_level, the subscribed sources' top level and
  /// policy.seed) and applies its on_round() decision after every firing.
  std::unique_ptr<cc::ReceiverPolicy> controller;
  /// Receiver-private sink. When null the receiver uses the session's pooled
  /// sinks (the common case); set it to give one receiver a different sink
  /// type (e.g. a payload-verifying DataSink inside a structural population).
  std::unique_ptr<PacketSink> sink;
};

/// Why a receiver's simulation ended — every receiver ends in exactly one of
/// these, so a chaos scenario can assert "completed with verified data or
/// failed with a classified reason, never a hang".
enum class ReceiverOutcome : std::uint8_t {
  kHorizon = 0,    // still listening when the session horizon hit
  kCompleted = 1,  // sink reported the transfer complete
  kDeparted = 2,   // left at its scripted leave tick (churn)
  kStalled = 3,    // stall watchdog: no distinct-symbol progress for
                   // SessionConfig::stall_timeout ticks
};

struct ReceiverReport {
  bool completed = false;
  ReceiverOutcome outcome = ReceiverOutcome::kHorizon;
  Time completed_at = 0;           // tick of the completing firing
  std::uint64_t addressed = 0;     // packets sent on subscribed layers
  std::uint64_t received = 0;      // arrived at the receiver (first copies
                                   // only; corrupt arrivals included)
  std::uint64_t distinct = 0;      // distinct encoding indices received
  std::uint64_t lost = 0;          // erased by the link; addressed may exceed
                                   // received + lost by packets still delayed
                                   // in flight when the receiver finished
  std::uint64_t rejected = 0;      // received from a codec-mismatched source
  // Fault counters (engine/fault.hpp). All zero without a FaultLink.
  std::uint64_t corrupt_rejected = 0;   // checksum/framing rejects: damaged
                                        // header or payload, truncation —
                                        // counted in received, never decoded
  std::uint64_t duplicates_dropped = 0; // fault-injected extra copies
                                        // discarded before the decoder (not
                                        // counted in received)
  unsigned level_changes = 0;
  unsigned final_level = 0;
  unsigned peak_level = 0;         // highest level held at any point

  /// Fraction of addressed packets lost on the link.
  double observed_loss() const {
    return addressed == 0
               ? 0.0
               : static_cast<double>(lost) / static_cast<double>(addressed);
  }
  /// Total reception efficiency eta = k / received.
  double efficiency(std::size_t k) const {
    return received == 0
               ? 0.0
               : static_cast<double>(k) / static_cast<double>(received);
  }
  /// Coding efficiency eta_c = k / distinct.
  double coding_efficiency(std::size_t k) const {
    return distinct == 0
               ? 0.0
               : static_cast<double>(k) / static_cast<double>(distinct);
  }
  /// Distinctness efficiency eta_d = distinct / received.
  double distinctness_efficiency() const {
    return received == 0 ? 0.0
                         : static_cast<double>(distinct) /
                               static_cast<double>(received);
  }
};

struct SessionConfig {
  /// Hard stop: no event at tick >= horizon is processed. Receivers still
  /// incomplete then are reported with completed = false (the "bounded event
  /// budget" knob for CI smoke runs).
  Time horizon = 4'000'000;
  /// Receivers simulated concurrently; bounds pooled decoder memory.
  std::size_t cohort_size = 1024;
  /// Worker threads for run(). 0 = auto (engine::resolve_threads: one per
  /// hardware thread); 1 preserves the exact historical sequential path.
  /// Cohorts are the shard unit — each worker runs whole cohorts with its
  /// own slot pool, so peak pooled-sink memory is
  /// O(min(threads, cohorts) * cohort_size * sink). Output (reports,
  /// delivery traces, cc traces) is byte-identical at every thread count.
  std::size_t threads = 0;
  /// Stall watchdog: a receiver making no distinct-symbol progress for this
  /// many ticks is finished with ReceiverOutcome::kStalled instead of idling
  /// to the horizon (the "never a hang" guarantee under server blackouts and
  /// mirror death). 0 disables the watchdog.
  Time stall_timeout = 0;
};

class Session {
 public:
  /// `code` defines the encoding index space, the expected codec id, and the
  /// default pooled sink (a StructuralSink over code.make_structural_decoder).
  /// The code must outlive the session.
  Session(const fec::ErasureCode& code, SessionConfig config = {});

  /// Constructs the session code from wire/control-channel fields via the
  /// built-in CodecRegistry and owns it — the constructive form of codec
  /// matching: no pre-shared ErasureCode pointer needed, only what a sender
  /// advertises. Throws what CodecRegistry::create throws.
  Session(fec::CodecId codec, const fec::CodecParams& params,
          SessionConfig config = {});

  /// Registers a sender firing at ticks start, start+period, ... The source
  /// must be pure in its firing number (see PacketSource).
  SourceId add_source(std::shared_ptr<const PacketSource> source,
                      Time start = 0, Time period = 1);

  ReceiverId add_receiver(ReceiverSpec spec);

  /// Subscribes a receiver to a source through its own link. A receiver may
  /// subscribe to any number of sources (mirrors, dispersity paths); packets
  /// from sources whose codec_id() mismatches the session code are counted
  /// as rejected, never decoded.
  void subscribe(ReceiverId receiver, SourceId source,
                 std::unique_ptr<LinkModel> link);

  /// Replaces the pooled-sink factory (default: structural decoders from the
  /// session code). Called at most once per (worker, cohort slot), not per
  /// receiver; calls are serialized under a session mutex, so the factory
  /// itself need not be thread-safe even when threads > 1 (the sinks it
  /// returns are still used concurrently from different workers — distinct
  /// sink objects, one per slot, never shared across workers).
  using SinkFactory = std::function<std::unique_ptr<PacketSink>()>;
  void set_sink_factory(SinkFactory factory);

  /// Installs sender blackout windows (engine/fault.hpp). Outage source ids
  /// are validated against the registered sources when run() starts. May be
  /// called at most once, before run().
  void set_fault_script(FaultScript script);

  /// Runs the whole scenario; reports are indexed by ReceiverId::value.
  /// May be called once.
  std::vector<ReceiverReport> run();

  const fec::ErasureCode& code() const { return code_; }
  std::size_t receiver_count() const { return receivers_.size(); }

 private:
  struct SourceState {
    std::shared_ptr<const PacketSource> source;
    Time start = 0;
    Time period = 1;
    bool codec_ok = false;
    unsigned max_level = 0;  // layer_count() - 1
  };

  struct Subscription {
    std::uint32_t source = 0;
    std::unique_ptr<LinkModel> link;
  };

  struct ReceiverState {
    ReceiverSpec spec;
    std::vector<Subscription> subs;
  };

  struct Slot;  // pooled per-cohort-slot state (sink + distinct bitmap)
  class CohortRunner;

  /// Shared constructor tail: config validation + default sink factory.
  void init_defaults();

  /// Serialized front door to sink_factory_ (see set_sink_factory).
  std::unique_ptr<PacketSink> make_pooled_sink();

  // Registry-constructed sessions own their code; declared before code_ so
  // the reference can bind to it in the constructor initializer list.
  std::unique_ptr<const fec::ErasureCode> owned_code_;
  const fec::ErasureCode& code_;
  SessionConfig config_;
  SinkFactory sink_factory_;
  std::mutex sink_factory_mutex_;
  std::vector<SourceState> sources_;
  std::vector<ReceiverState> receivers_;
  FaultScript fault_script_;
  bool ran_ = false;
};

}  // namespace fountain::engine
