// PacketSource adapters for the library's senders that are not engine-aware
// themselves: the data carousel (Sections 1/4/6) and its strided variant for
// dispersity routing (Section 8). The layered prototype server adapts itself
// (proto::FountainServer implements PacketSource directly).
#pragma once

#include <cstdint>

#include "carousel/carousel.hpp"
#include "engine/packet_source.hpp"

namespace fountain::engine {

/// Cycles a carousel: firing r carries slots [r*ppf, (r+1)*ppf) of the
/// carousel's infinite transmission order. `packets_per_fire` > 1 coarsens
/// the event grid (one heap pop per ppf slots) for very large populations;
/// keep it at 1 when per-slot join phases matter (the Figure 4-6
/// experiments).
class CarouselSource final : public PacketSource {
 public:
  CarouselSource(const carousel::Carousel& carousel, fec::CodecId codec,
                 std::size_t packets_per_fire = 1);

  fec::CodecId codec_id() const override { return codec_; }
  double subscribed_rate(unsigned) const override {
    return static_cast<double>(packets_per_fire_);
  }
  void emit(std::uint64_t round, PacketBatch& batch) const override;

 private:
  const carousel::Carousel& carousel_;  // borrowed; must outlive the source
  fec::CodecId codec_;
  std::size_t packets_per_fire_;
};

/// A true fountain: firing r carries the monotonically increasing symbol
/// indices [offset + r*stride*ppf, ...) — no carousel, no wraparound, never
/// a repeated index. Only meaningful for rateless codecs (the lt/ plane),
/// whose encoders accept any uint32 index. Path p of an S-path dispersity
/// transfer is RatelessSource(codec, p, S, ppf): firing r carries indices
/// p + (r*ppf + i)*S, so the paths partition the index space and even merged
/// paths never duplicate.
class RatelessSource final : public PacketSource {
 public:
  explicit RatelessSource(fec::CodecId codec, std::uint64_t offset = 0,
                          std::uint64_t stride = 1,
                          std::size_t packets_per_fire = 1);

  fec::CodecId codec_id() const override { return codec_; }
  double subscribed_rate(unsigned) const override {
    return static_cast<double>(packets_per_fire_);
  }
  void emit(std::uint64_t round, PacketBatch& batch) const override;

 private:
  fec::CodecId codec_;
  std::uint64_t offset_;
  std::uint64_t stride_;
  std::size_t packets_per_fire_;
};

/// Every `stride`-th slot of a carousel starting at `offset`: path p of a
/// dispersity-routed transfer dealing packets round-robin over `stride`
/// paths is StridedCarouselSource(c, codec, p, stride). One packet per fire;
/// per-path pacing and latency come from the source's period and start tick.
class StridedCarouselSource final : public PacketSource {
 public:
  StridedCarouselSource(const carousel::Carousel& carousel, fec::CodecId codec,
                        std::uint64_t offset, std::uint64_t stride);

  fec::CodecId codec_id() const override { return codec_; }
  void emit(std::uint64_t round, PacketBatch& batch) const override;

 private:
  const carousel::Carousel& carousel_;
  fec::CodecId codec_;
  std::uint64_t offset_;
  std::uint64_t stride_;
};

}  // namespace fountain::engine
