#include "engine/topology.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace fountain::engine {

std::uint32_t Topology::add_edge(NodeId from, NodeId to, double capacity,
                                 Time rtt) {
  if (from >= nodes_ || to >= nodes_) {
    throw std::out_of_range("Topology: edge endpoint is not a node");
  }
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("Topology: edge capacity must be > 0");
  }
  edges_.push_back(TopologyEdge{from, to, capacity, rtt});
  return static_cast<std::uint32_t>(edges_.size() - 1);
}

void Topology::set_edge_capacity(std::size_t e, double capacity) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("Topology: edge capacity must be > 0");
  }
  edges_.at(e).capacity = capacity;
}

std::size_t Topology::degree(NodeId node) const {
  if (node >= nodes_) throw std::out_of_range("Topology: unknown node");
  std::size_t d = 0;
  for (const TopologyEdge& e : edges_) {
    d += (e.from == node) + (e.to == node);
  }
  return d;
}

std::vector<std::uint32_t> Topology::path(NodeId from, NodeId to) const {
  if (from >= nodes_ || to >= nodes_) {
    throw std::out_of_range("Topology: unknown node");
  }
  if (from == to) return {};
  // Undirected adjacency in edge-insertion order: scanning it during BFS
  // resolves every equal-distance tie to the lowest edge index, so the path
  // is a pure function of the topology.
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> adj(nodes_);
  for (std::uint32_t e = 0; e < edges_.size(); ++e) {
    adj[edges_[e].from].emplace_back(edges_[e].to, e);
    adj[edges_[e].to].emplace_back(edges_[e].from, e);
  }
  constexpr std::uint32_t kUnseen = 0xffffffffu;
  std::vector<std::uint32_t> parent_edge(nodes_, kUnseen);
  std::vector<NodeId> parent_node(nodes_, 0);
  std::queue<NodeId> frontier;
  frontier.push(from);
  parent_edge[from] = 0;  // marks visited; never read for the start node
  parent_node[from] = from;
  while (!frontier.empty() && parent_edge[to] == kUnseen) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const auto& [v, e] : adj[u]) {
      if (parent_edge[v] != kUnseen || v == from) continue;
      parent_edge[v] = e;
      parent_node[v] = u;
      frontier.push(v);
    }
  }
  if (parent_edge[to] == kUnseen) {
    throw std::invalid_argument("Topology: no path between nodes");
  }
  std::vector<std::uint32_t> result;
  for (NodeId v = to; v != from; v = parent_node[v]) {
    result.push_back(parent_edge[v]);
  }
  std::reverse(result.begin(), result.end());
  return result;
}

std::vector<NodeId> Topology::leaves() const {
  std::vector<std::uint8_t> has_out(nodes_, 0);
  for (const TopologyEdge& e : edges_) has_out[e.from] = 1;
  std::vector<NodeId> result;
  for (NodeId v = 0; v < nodes_; ++v) {
    if (!has_out[v]) result.push_back(v);
  }
  return result;
}

Topology Topology::bottleneck_tree(unsigned depth, unsigned arity,
                                   std::span<const double> level_capacity,
                                   std::span<const Time> level_rtt) {
  if (depth < 1 || arity < 1) {
    throw std::invalid_argument(
        "Topology: tree depth and arity must be >= 1");
  }
  if (level_capacity.size() != depth) {
    throw std::invalid_argument(
        "Topology: need one capacity per tree level");
  }
  if (!level_rtt.empty() && level_rtt.size() != depth) {
    throw std::invalid_argument(
        "Topology: level_rtt must be empty or depth-sized");
  }
  Topology topo;
  const NodeId root = topo.add_node();
  std::vector<NodeId> level{root};
  for (unsigned d = 1; d <= depth; ++d) {
    const double capacity = level_capacity[d - 1];
    const Time rtt = level_rtt.empty() ? Time{1} : level_rtt[d - 1];
    std::vector<NodeId> next;
    next.reserve(level.size() * arity);
    for (const NodeId parent : level) {
      for (unsigned c = 0; c < arity; ++c) {
        const NodeId child = topo.add_node();
        topo.add_edge(parent, child, capacity, rtt);
        next.push_back(child);
      }
    }
    level = std::move(next);
  }
  return topo;
}

Topology Topology::barabasi_albert(std::size_t nodes, std::size_t m,
                                   std::uint64_t seed, double capacity,
                                   Time rtt) {
  if (m < 1 || nodes < m + 1) {
    throw std::invalid_argument(
        "Topology: Barabási–Albert needs m >= 1 and nodes >= m + 1");
  }
  Topology topo;
  // Endpoint multiset: each node appears once per incident edge, so a
  // uniform draw from it IS degree-proportional (preferential) attachment.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * (m * (m + 1) / 2 + (nodes - m - 1) * m));
  for (std::size_t v = 0; v < m + 1; ++v) topo.add_node();
  for (NodeId i = 0; i < m + 1; ++i) {
    for (NodeId j = i + 1; j < m + 1; ++j) {
      topo.add_edge(i, j, capacity, rtt);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  util::Rng rng(seed);
  std::vector<NodeId> targets;
  targets.reserve(m);
  while (topo.node_count() < nodes) {
    // Choose all m distinct targets against the pre-arrival degree state,
    // rejecting duplicates (the standard simple-graph BA variant).
    targets.clear();
    while (targets.size() < m) {
      const NodeId candidate = endpoints[rng.below(endpoints.size())];
      bool fresh = true;
      for (const NodeId t : targets) fresh = fresh && t != candidate;
      if (fresh) targets.push_back(candidate);
    }
    const NodeId v = topo.add_node();
    for (const NodeId t : targets) {
      topo.add_edge(v, t, capacity, rtt);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return topo;
}

PathLink::PathLink(std::vector<std::shared_ptr<SharedBottleneck>> edges,
                   std::uint64_t seed, double base_loss, Time latency)
    : edges_(std::move(edges)),
      base_loss_(base_loss),
      latency_(latency),
      rng_(seed) {
  if (edges_.empty()) {
    throw std::invalid_argument("PathLink: empty path");
  }
  for (const auto& edge : edges_) {
    if (!edge) throw std::invalid_argument("PathLink: null edge queue");
  }
  if (base_loss < 0.0 || base_loss > 1.0) {
    throw std::invalid_argument("PathLink: base_loss outside [0, 1]");
  }
  slots_.reserve(edges_.size());
  for (const auto& edge : edges_) slots_.push_back(edge->attach());
}

double PathLink::loss_probability() const {
  // Survival is multiplicative across independent edges; folding the
  // complement as p <- q + p - q*p keeps the single-edge case expression-
  // identical to BottleneckLink (q + b - q*b, same operation order).
  double p = base_loss_;
  for (const auto& edge : edges_) {
    const double q = edge->loss_probability();
    p = q + p - q * p;
  }
  return p;
}

Verdict PathLink::transfer(Time /*now*/) {
  if (rng_.chance(loss_probability())) return Verdict::dropped();
  if (latency_ > 0) return Verdict{FaultKind::kDelay, 1, latency_};
  return Verdict::delivered();
}

void PathLink::set_subscriber_rate(double packets_per_tick) {
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    edges_[e]->set_rate(slots_[e], packets_per_tick);
  }
}

void PathLink::append_shared_states(std::vector<const void*>& out) const {
  for (const auto& edge : edges_) out.push_back(edge.get());
}

std::vector<std::shared_ptr<SharedBottleneck>> make_edge_queues(
    const Topology& topology) {
  std::vector<std::shared_ptr<SharedBottleneck>> queues;
  queues.reserve(topology.edge_count());
  for (std::size_t e = 0; e < topology.edge_count(); ++e) {
    queues.push_back(
        std::make_shared<SharedBottleneck>(topology.edge(e).capacity));
  }
  return queues;
}

std::unique_ptr<PathLink> make_path_link(
    const Topology& topology,
    const std::vector<std::shared_ptr<SharedBottleneck>>& queues, NodeId from,
    NodeId to, std::uint64_t seed, double base_loss, bool model_latency) {
  if (queues.size() != topology.edge_count()) {
    throw std::invalid_argument(
        "make_path_link: queues are not this topology's edges");
  }
  const std::vector<std::uint32_t> hops = topology.path(from, to);
  std::vector<std::shared_ptr<SharedBottleneck>> chain;
  chain.reserve(hops.size());
  Time latency = 0;
  for (const std::uint32_t e : hops) {
    chain.push_back(queues[e]);
    latency += topology.edge(e).rtt;
  }
  return std::make_unique<PathLink>(std::move(chain), seed, base_loss,
                                    model_latency ? latency : Time{0});
}

}  // namespace fountain::engine
