// PacketSink: the receiving side of the session engine. A sink consumes
// delivered packets and says when it has enough. Sinks are pooled: the
// session creates one per cohort slot and reset()s it for each simulated
// receiver that passes through the slot, so a 100k-receiver run touches only
// cohort_size decoders' worth of memory and never reallocates decoder state.
#pragma once

#include <cstdint>
#include <memory>

#include "engine/types.hpp"
#include "fec/erasure_code.hpp"
#include "util/symbols.hpp"

namespace fountain::engine {

class PacketSink {
 public:
  virtual ~PacketSink() = default;
  /// Consumes one delivered packet; returns true once the sink is complete
  /// (and stays true). Duplicate indices are permitted.
  virtual bool on_packet(const Delivery& d) = 0;
  virtual bool complete() const = 0;
  /// Returns the sink to its empty state so it can serve another simulated
  /// receiver without reallocation.
  virtual void reset() = 0;
};

/// Never completes: for steady-state studies (adaptation trajectories,
/// long-run loss) where receivers must keep listening for the whole
/// horizon. Reception/distinctness accounting still happens in the engine.
class NullSink final : public PacketSink {
 public:
  bool on_packet(const Delivery&) override { return false; }
  bool complete() const override { return false; }
  void reset() override {}
};

/// Index-only sink over a fec::StructuralDecoder — the workhorse of the
/// receiver-population scenarios (Figures 4-6, 8), where decodability
/// depends only on which indices arrived.
class StructuralSink final : public PacketSink {
 public:
  explicit StructuralSink(std::unique_ptr<fec::StructuralDecoder> decoder);

  bool on_packet(const Delivery& d) override {
    return decoder_->add_index(d.index);
  }
  bool complete() const override { return decoder_->complete(); }
  void reset() override { decoder_->reset(); }

 private:
  std::unique_ptr<fec::StructuralDecoder> decoder_;
};

/// Payload-carrying sink: regenerates each delivered packet's payload from a
/// streaming fec::BlockEncoder (the simulated wire) and feeds it through a
/// fec::IncrementalDecoder so a scenario can verify byte-exact
/// reconstruction. Holding the encoder instead of a materialized encoding
/// keeps scenario memory at O(k * P + codec state) rather than O(n * P).
/// The encoder (and the source view it borrows) must outlive the sink. One
/// scratch symbol is allocated at construction; the per-packet path does not
/// allocate.
class DataSink final : public PacketSink {
 public:
  DataSink(std::unique_ptr<fec::IncrementalDecoder> decoder,
           const fec::BlockEncoder& encoder);

  bool on_packet(const Delivery& d) override {
    const auto payload = scratch_.row(0);
    encoder_.write_symbol(d.index, payload);
    return decoder_->add_symbol(d.index, payload);
  }
  bool complete() const override { return decoder_->complete(); }
  void reset() override { decoder_->reset(); }

  /// The reconstructed source; valid only when complete().
  util::ConstSymbolView source() const { return decoder_->source(); }

 private:
  std::unique_ptr<fec::IncrementalDecoder> decoder_;
  const fec::BlockEncoder& encoder_;
  util::SymbolMatrix scratch_;  // one wire payload
};

}  // namespace fountain::engine
