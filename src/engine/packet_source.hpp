// PacketSource: the transmission side of the session engine. A source is a
// *pure function of its firing number* — emit(r, batch) must produce the same
// batch for the same r on every call. That purity is what lets the engine
// process arbitrarily large receiver populations in bounded memory: receivers
// are simulated in cohorts, and each cohort independently replays the firing
// sequence from its earliest join without any per-source mutable state.
//
// All of the paper's senders are naturally pure: a carousel is order[t % n], a
// layered reverse-binary schedule is periodic in the round number, and the
// prototype server's burst doubling admits a closed form (see
// proto::FountainServer::round_at).
#pragma once

#include <cstdint>

#include "engine/types.hpp"
#include "fec/codec_id.hpp"

namespace fountain::engine {

class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// The erasure code family this source transmits. Sessions quarantine
  /// subscriptions whose source codec does not match the session's code:
  /// such packets are delivered (they consume channel slots) but counted as
  /// rejected instead of reaching the decoder.
  virtual fec::CodecId codec_id() const = 0;

  /// Number of multicast layers this source schedules across (1 for a plain
  /// carousel). Receivers subscribed at level L hear layers [0, L].
  virtual unsigned layer_count() const { return 1; }

  /// Average packets per firing addressed to a receiver subscribed at
  /// `level` (`level` < layer_count()), the rate the engine declares to
  /// shared-bottleneck links when the receiver's subscription changes.
  /// Averaged over a schedule cycle (short final blocks thin some rounds);
  /// occasional double-rate burst probes are excluded. Default: one packet
  /// per firing.
  virtual double subscribed_rate(unsigned level) const {
    (void)level;
    return 1.0;
  }

  /// Appends firing `round`'s packets into `batch` (already cleared by the
  /// engine). MUST be a pure function of `round`.
  virtual void emit(std::uint64_t round, PacketBatch& batch) const = 0;
};

}  // namespace fountain::engine
