#include "engine/session.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "cc/policies.hpp"
#include "engine/pool.hpp"

namespace fountain::engine {

namespace {

// Event kinds, in tie-break order at equal ticks: control before firings, so
// a receiver joining (or moving) at t hears t's packets and one leaving at t
// does not. Delayed arrivals land between the two: a fault-delayed packet
// surfacing at t was sent before t's firing, so it is heard first; equal-tick
// arrivals resolve by pending index, i.e. send order (FIFO reordering is
// deterministic).
enum : std::uint8_t { kJoin = 0, kMove = 1, kLeave = 2, kArrive = 3,
                      kFire = 4 };

struct Event {
  Time at;
  std::uint8_t kind;
  std::uint32_t a;  // member (control), source (fire), pending idx (arrive)
  std::uint32_t b;  // move index (kMove)

  friend bool operator>(const Event& lhs, const Event& rhs) {
    if (lhs.at != rhs.at) return lhs.at > rhs.at;
    if (lhs.kind != rhs.kind) return lhs.kind > rhs.kind;
    return lhs.a > rhs.a;
  }
};

using EventQueue =
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>;

// Marks `index` in a receiver's distinct bitmap; returns true if new. The
// bitmap is pre-sized to encoded_count() at join, but rateless sources
// address indices past n (their symbol space is unbounded), so it grows
// geometrically on demand — amortized O(1) per packet, and block codecs
// never trigger the growth path.
bool mark_seen(std::vector<std::uint8_t>& seen, std::uint32_t index) {
  if (index >= seen.size()) {
    std::size_t size = std::max<std::size_t>(seen.size(), 64);
    while (size <= index) size *= 2;
    seen.resize(size, 0);
  }
  if (seen[index] != 0) return false;
  seen[index] = 1;
  return true;
}

// Per-receiver adaptation state while its cohort runs: the subscription
// level, the synthetic congestion environment of the legacy adaptive knobs
// (drifting capacity + extra loss above it), and the active
// cc::ReceiverPolicy — either the spec's explicit controller or the
// built-in Section 7.2 burst-probe policy.
struct AdaptState {
  std::uint8_t active = 0;  // 0 = not yet joined, 1 = live, 2 = finished
  unsigned level = 0;
  unsigned capacity = 0;
  unsigned max_level = 0;
  std::uint32_t next_move = 0;
  Time last_progress = 0;  // last tick the distinct count grew (stall clock)
  util::Rng rng{0};
  cc::ReceiverPolicy* controller = nullptr;  // null = fixed level
  cc::BurstProbePolicy burst_probe;          // backing store for the legacy
                                             // adaptive knobs
};

}  // namespace

struct Session::Slot {
  std::unique_ptr<PacketSink> sink;
  std::vector<std::uint8_t> seen;
};

Session::Session(const fec::ErasureCode& code, SessionConfig config)
    : code_(code), config_(config) {
  init_defaults();
}

Session::Session(fec::CodecId codec, const fec::CodecParams& params,
                 SessionConfig config)
    : owned_code_(fec::CodecRegistry::builtin().create(codec, params)),
      code_(*owned_code_),
      config_(config) {
  init_defaults();
}

void Session::init_defaults() {
  if (config_.cohort_size == 0) {
    throw std::invalid_argument("Session: cohort_size must be > 0");
  }
  sink_factory_ = [this] {
    return std::make_unique<StructuralSink>(code_.make_structural_decoder());
  };
}

SourceId Session::add_source(std::shared_ptr<const PacketSource> source,
                             Time start, Time period) {
  if (ran_) throw std::logic_error("Session: already run");
  if (!source) throw std::invalid_argument("Session: null source");
  if (period == 0) throw std::invalid_argument("Session: period must be > 0");
  SourceState state;
  state.codec_ok = source->codec_id() == code_.codec_id();
  state.max_level = source->layer_count() == 0 ? 0 : source->layer_count() - 1;
  state.source = std::move(source);
  state.start = start;
  state.period = period;
  sources_.push_back(std::move(state));
  return SourceId{static_cast<std::uint32_t>(sources_.size() - 1)};
}

ReceiverId Session::add_receiver(ReceiverSpec spec) {
  if (ran_) throw std::logic_error("Session: already run");
  if (spec.leave <= spec.join) {
    throw std::invalid_argument("Session: receiver must leave after joining");
  }
  for (std::size_t i = 1; i < spec.moves.size(); ++i) {
    if (spec.moves[i].at <= spec.moves[i - 1].at) {
      throw std::invalid_argument("Session: moves must be strictly ordered");
    }
  }
  receivers_.push_back(ReceiverState{std::move(spec), {}});
  return ReceiverId{static_cast<std::uint32_t>(receivers_.size() - 1)};
}

void Session::subscribe(ReceiverId receiver, SourceId source,
                        std::unique_ptr<LinkModel> link) {
  if (ran_) throw std::logic_error("Session: already run");
  if (receiver.value >= receivers_.size() || source.value >= sources_.size()) {
    throw std::out_of_range("Session: unknown receiver or source");
  }
  if (!link) throw std::invalid_argument("Session: null link");
  receivers_[receiver.value].subs.push_back(
      Subscription{source.value, std::move(link)});
}

void Session::set_sink_factory(SinkFactory factory) {
  if (ran_) throw std::logic_error("Session: already run");
  if (!factory) throw std::invalid_argument("Session: null sink factory");
  sink_factory_ = std::move(factory);
}

void Session::set_fault_script(FaultScript script) {
  if (ran_) throw std::logic_error("Session: already run");
  if (!fault_script_.empty()) {
    throw std::logic_error("Session: fault script already set");
  }
  fault_script_ = std::move(script);
}

std::unique_ptr<PacketSink> Session::make_pooled_sink() {
  // Serialized so user factories (and codec decoder constructors) never run
  // concurrently; at most one call per (worker, slot), so contention is nil.
  const std::lock_guard<std::mutex> lock(sink_factory_mutex_);
  return sink_factory_();
}

// Simulates one cohort of receivers [first, first + count) against the
// session's sources. Slots (pooled sinks + distinct bitmaps) persist across
// cohorts; everything else is rebuilt per cohort.
class Session::CohortRunner {
 public:
  CohortRunner(Session& session, std::vector<ReceiverReport>& reports,
               std::vector<Slot>& slots, std::size_t first, std::size_t count)
      : s_(session),
        reports_(reports),
        slots_(slots),
        first_(first),
        count_(count),
        adapt_(count),
        subscribers_(session.sources_.size()),
        live_subscribers_(session.sources_.size(), 0) {}

  void run();

 private:
  ReceiverState& member(std::size_t m) { return s_.receivers_[first_ + m]; }
  ReceiverReport& report(std::size_t m) { return reports_[first_ + m]; }

  void seed_events();
  void join_member(std::size_t m, Time now);
  void finish_member(std::size_t m, ReceiverOutcome outcome, Time now);
  void apply_move(std::size_t m, const ScriptedMove& mv);
  void fire_source(std::uint32_t src_idx, Time now);
  void process_batch(std::size_t m, Subscription& sub,
                     const SourceState& src_state, Time now);
  /// Stall watchdog: finishes member m with kStalled (returning true) when
  /// its distinct count has not grown for config.stall_timeout ticks.
  bool maybe_stall(std::size_t m, Time now);
  /// A fault-delayed packet surfaces at its scheduled arrival tick.
  void deliver_pending(std::uint32_t idx, Time now);
  /// Declares member m's current per-subscription offered rates to its
  /// links (shared bottlenecks aggregate them into queueing loss).
  void push_rates(std::size_t m);

  /// A packet in flight between a kDelay verdict and its kArrive event.
  struct Pending {
    std::uint32_t member = 0;
    std::uint32_t source = 0;
    std::uint32_t index = 0;
    std::uint16_t layer = 0;
    bool sync_point = false;
    bool burst = false;
  };

  Session& s_;
  std::vector<ReceiverReport>& reports_;
  std::vector<Slot>& slots_;
  std::size_t first_;
  std::size_t count_;
  std::vector<AdaptState> adapt_;
  // Per source: (member index, subscription index) pairs for this cohort.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      subscribers_;
  // Per source: cohort members subscribed to it that have not finished yet;
  // a source stops firing (and re-queueing) when this reaches zero.
  std::vector<std::uint32_t> live_subscribers_;
  EventQueue queue_;
  PacketBatch batch_;
  std::vector<Pending> pending_;  // indexed by kArrive events; append-only
  std::size_t remaining_ = 0;
};

void Session::CohortRunner::seed_events() {
  const Time horizon = s_.config_.horizon;
  Time min_join = kNever;
  for (std::size_t m = 0; m < count_; ++m) {
    const ReceiverSpec& spec = member(m).spec;
    if (spec.join >= horizon) continue;  // never activates
    ++remaining_;
    min_join = std::min(min_join, spec.join);
    queue_.push(Event{spec.join, kJoin, static_cast<std::uint32_t>(m), 0});
    if (spec.leave < horizon) {
      queue_.push(Event{spec.leave, kLeave, static_cast<std::uint32_t>(m), 0});
    }
    for (std::size_t i = 0; i < spec.moves.size(); ++i) {
      if (spec.moves[i].at < horizon) {
        queue_.push(Event{spec.moves[i].at, kMove,
                          static_cast<std::uint32_t>(m),
                          static_cast<std::uint32_t>(i)});
      }
    }
    for (std::size_t i = 0; i < member(m).subs.size(); ++i) {
      subscribers_[member(m).subs[i].source].emplace_back(
          static_cast<std::uint32_t>(m), static_cast<std::uint32_t>(i));
      ++live_subscribers_[member(m).subs[i].source];
    }
  }
  if (remaining_ == 0) return;
  // First firing a cohort member could possibly hear, per subscribed source.
  for (std::uint32_t s = 0; s < s_.sources_.size(); ++s) {
    if (subscribers_[s].empty()) continue;
    const SourceState& src = s_.sources_[s];
    std::uint64_t round = 0;
    if (min_join > src.start) {
      round = (min_join - src.start + src.period - 1) / src.period;
    }
    const Time t = src.start + round * src.period;
    if (t < horizon) queue_.push(Event{t, kFire, s, 0});
  }
}

void Session::CohortRunner::join_member(std::size_t m, Time now) {
  ReceiverSpec& spec = member(m).spec;
  AdaptState& st = adapt_[m];
  st.active = 1;
  st.level = spec.policy.initial_level;
  st.capacity = spec.policy.initial_capacity;
  st.next_move = 0;
  st.last_progress = now;
  st.rng.reseed(spec.policy.seed);
  st.max_level = 0;
  for (const Subscription& sub : member(m).subs) {
    st.max_level = std::max(st.max_level, s_.sources_[sub.source].max_level);
  }
  st.level = std::min(st.level, st.max_level);
  st.capacity = std::min(st.capacity, st.max_level);

  if (spec.controller) {
    st.controller = spec.controller.get();
  } else if (spec.policy.adaptive) {
    st.burst_probe = cc::BurstProbePolicy(spec.policy.drop_loss_threshold);
    st.controller = &st.burst_probe;
  } else {
    st.controller = nullptr;
  }
  if (st.controller) {
    st.controller->reset(st.level, st.max_level, spec.policy.seed);
  }
  report(m).peak_level = st.level;
  push_rates(m);

  Slot& slot = slots_[m];
  if (!spec.sink) {
    if (!slot.sink) slot.sink = s_.make_pooled_sink();
    slot.sink->reset();
  }
  slot.seen.assign(s_.code_.encoded_count(), 0);
}

void Session::CohortRunner::push_rates(std::size_t m) {
  const AdaptState& st = adapt_[m];
  for (Subscription& sub : member(m).subs) {
    const SourceState& src = s_.sources_[sub.source];
    const unsigned level = std::min(st.level, src.max_level);
    sub.link->set_subscriber_rate(src.source->subscribed_rate(level) /
                                  static_cast<double>(src.period));
  }
}

void Session::CohortRunner::finish_member(std::size_t m,
                                          ReceiverOutcome outcome, Time now) {
  AdaptState& st = adapt_[m];
  st.active = 2;
  ReceiverReport& rep = report(m);
  rep.outcome = outcome;
  rep.completed = outcome == ReceiverOutcome::kCompleted;
  if (rep.completed) rep.completed_at = now;
  rep.final_level = st.level;
  for (Subscription& sub : member(m).subs) {
    --live_subscribers_[sub.source];
    sub.link->set_subscriber_rate(0.0);  // stop loading shared bottlenecks
  }
  --remaining_;
}

void Session::CohortRunner::apply_move(std::size_t m, const ScriptedMove& mv) {
  AdaptState& st = adapt_[m];
  const unsigned level = std::min(mv.level, st.max_level);
  if (level != st.level) {
    st.level = level;
    ReceiverReport& rep = report(m);
    ++rep.level_changes;
    rep.peak_level = std::max(rep.peak_level, st.level);
    if (st.controller) st.controller->on_forced_level(st.level);
    push_rates(m);
  }
}

void Session::CohortRunner::fire_source(std::uint32_t src_idx, Time now) {
  // A source whose cohort subscribers have all finished stops firing — it
  // would only churn the event queue for receivers that no longer listen.
  if (live_subscribers_[src_idx] == 0) return;
  const SourceState& src_state = s_.sources_[src_idx];
  if (s_.fault_script_.blacked_out(src_idx, now)) {
    // Dead air: the sender is down, so nothing reaches the wire — but its
    // tick grid keeps running (a restarted server resumes its schedule) and
    // listeners' stall clocks keep counting, so a blackout can never leave a
    // receiver hanging past the watchdog.
    for (const auto& [m, sub_idx] : subscribers_[src_idx]) {
      if (adapt_[m].active != 1) continue;
      maybe_stall(m, now);
    }
  } else {
    batch_.clear();
    src_state.source->emit((now - src_state.start) / src_state.period, batch_);
    for (const auto& [m, sub_idx] : subscribers_[src_idx]) {
      if (adapt_[m].active != 1) continue;
      process_batch(m, member(m).subs[sub_idx], src_state, now);
    }
  }
  const Time next = now + src_state.period;
  if (next < s_.config_.horizon && remaining_ > 0 &&
      live_subscribers_[src_idx] > 0) {
    queue_.push(Event{next, kFire, src_idx, 0});
  }
}

void Session::CohortRunner::process_batch(std::size_t m, Subscription& sub,
                                          const SourceState& src_state,
                                          Time now) {
  AdaptState& st = adapt_[m];
  const SubscriptionPolicy& policy = member(m).spec.policy;
  ReceiverReport& rep = report(m);
  Slot& slot = slots_[m];
  PacketSink* sink =
      member(m).spec.sink ? member(m).spec.sink.get() : slot.sink.get();

  // Capacity (the sustainable subscription level) drifts over time,
  // modelling changing cross-traffic on the receiver's bottleneck.
  if (policy.adaptive && st.rng.chance(policy.capacity_change_prob)) {
    st.capacity = static_cast<unsigned>(st.rng.below(st.max_level + 1));
  }
  const bool congested = policy.adaptive && st.level > st.capacity;

  std::uint64_t round_addressed = 0;
  std::uint64_t round_lost = 0;
  std::uint64_t round_corrupt = 0;
  std::size_t probe_seen = 0;
  bool probe_loss = false;
  bool sp_on_my_level = false;

  for (const PacketBatch::Segment& seg : batch_.segments) {
    if (seg.layer > st.level) continue;
    if (seg.layer == st.level && seg.sync_point) sp_on_my_level = true;
    for (std::uint32_t i = seg.begin; i < seg.end; ++i) {
      const std::uint32_t index = batch_.indices[i];
      ++round_addressed;
      Verdict verdict = sub.link->transfer(now);
      // The congestion draw happens only on clean delivery, so without a
      // FaultLink the RNG advances exactly as the historical boolean path.
      if (verdict.kind == FaultKind::kDeliver && congested &&
          st.rng.chance(policy.congestion_extra_loss)) {
        verdict = Verdict::dropped();  // congestion drop on top of the channel
      }
      // A probe counts a packet as arrived only if something usable shows up
      // in this firing's window: delayed, corrupted and truncated packets
      // all read as loss to the burst probe, just as on a real receiver.
      const bool arrived_now = verdict.kind == FaultKind::kDeliver ||
                               verdict.kind == FaultKind::kDuplicate;
      if (batch_.burst && probe_seen < policy.burst_probe_window) {
        ++probe_seen;
        if (!arrived_now) probe_loss = true;
      }
      switch (verdict.kind) {
        case FaultKind::kDrop:
          ++round_lost;
          continue;
        case FaultKind::kDelay: {
          // In flight: counted received at its kArrive tick, never lost.
          const Time arrival = now + verdict.delay;
          if (arrival < s_.config_.horizon) {
            pending_.push_back(Pending{
                static_cast<std::uint32_t>(m), sub.source, index,
                static_cast<std::uint16_t>(seg.layer), seg.sync_point,
                batch_.burst});
            queue_.push(Event{arrival, kArrive,
                              static_cast<std::uint32_t>(pending_.size() - 1),
                              0});
          }
          continue;
        }
        case FaultKind::kCorruptHeader:
        case FaultKind::kCorruptPayload:
        case FaultKind::kTruncate:
          // Damaged on the wire: the datagram arrives but the header
          // checksum / UDP checksum / framing rejects it before any decoder
          // sees a byte.
          ++rep.received;
          ++rep.corrupt_rejected;
          ++round_corrupt;
          continue;
        case FaultKind::kDeliver:
        case FaultKind::kDuplicate:
          break;
      }
      ++rep.received;
      if (verdict.kind == FaultKind::kDuplicate) {
        // Copies 2..n carry an index already in hand this instant; the
        // receive path discards them without touching the decoder.
        rep.duplicates_dropped += verdict.copies - 1u;
      }
      if (!src_state.codec_ok) {
        ++rep.rejected;  // wrong code: never reaches the decoder
        continue;
      }
      if (mark_seen(slot.seen, index)) {
        ++rep.distinct;
        st.last_progress = now;
      }
      if (sink->on_packet(Delivery{now, sub.source, index, seg.layer,
                                   seg.sync_point, batch_.burst})) {
        rep.addressed += round_addressed;
        rep.lost += round_lost;
        finish_member(m, ReceiverOutcome::kCompleted, now);
        return;
      }
    }
  }
  rep.addressed += round_addressed;
  rep.lost += round_lost;

  if (maybe_stall(m, now)) return;

  if (st.controller == nullptr) return;

  // Policy hook: summarize the firing and apply the controller's level
  // decision, clamped to the subscribed sources' layer range.
  cc::RoundView view;
  view.now = now;
  view.addressed = round_addressed;
  view.lost = round_lost;
  view.corrupt = round_corrupt;
  view.burst = batch_.burst;
  view.probe_seen = probe_seen > 0;
  view.probe_clean = probe_seen > 0 && !probe_loss;
  view.sync_point = sp_on_my_level;
  const unsigned want =
      std::min(st.controller->on_round(view, st.level), st.max_level);
  if (want != st.level) {
    st.level = want;
    ++rep.level_changes;
    rep.peak_level = std::max(rep.peak_level, st.level);
    push_rates(m);
  }
}

bool Session::CohortRunner::maybe_stall(std::size_t m, Time now) {
  if (s_.config_.stall_timeout == 0) return false;
  AdaptState& st = adapt_[m];
  if (now - st.last_progress < s_.config_.stall_timeout) return false;
  finish_member(m, ReceiverOutcome::kStalled, now);
  return true;
}

void Session::CohortRunner::deliver_pending(std::uint32_t idx, Time now) {
  const Pending& p = pending_[idx];
  const std::size_t m = p.member;
  if (adapt_[m].active != 1) return;  // receiver finished while it flew
  ReceiverReport& rep = report(m);
  Slot& slot = slots_[m];
  ++rep.received;
  if (!s_.sources_[p.source].codec_ok) {
    ++rep.rejected;
    return;
  }
  if (mark_seen(slot.seen, p.index)) {
    ++rep.distinct;
    adapt_[m].last_progress = now;
  }
  PacketSink* sink =
      member(m).spec.sink ? member(m).spec.sink.get() : slot.sink.get();
  // Late arrivals sit outside any firing round, so no round accounting and
  // no policy hook — the next firing's RoundView reflects the firing only.
  if (sink->on_packet(Delivery{now, p.source, p.index, p.layer, p.sync_point,
                               p.burst})) {
    finish_member(m, ReceiverOutcome::kCompleted, now);
  }
}

void Session::CohortRunner::run() {
  seed_events();
  while (remaining_ > 0 && !queue_.empty()) {
    const Event e = queue_.top();
    queue_.pop();
    switch (e.kind) {
      case kJoin:
        join_member(e.a, e.at);
        break;
      case kMove:
        if (adapt_[e.a].active == 1) {
          apply_move(e.a, member(e.a).spec.moves[e.b]);
        }
        break;
      case kLeave:
        if (adapt_[e.a].active == 1) {
          finish_member(e.a, ReceiverOutcome::kDeparted, e.at);
        }
        break;
      case kArrive:
        deliver_pending(e.a, e.at);
        break;
      case kFire:
        fire_source(e.a, e.at);
        break;
    }
  }
  // Horizon exhausted with receivers still listening: report them incomplete
  // with whatever they accumulated.
  for (std::size_t m = 0; m < count_; ++m) {
    if (adapt_[m].active == 1) {
      finish_member(m, ReceiverOutcome::kHorizon, s_.config_.horizon);
    }
  }
}

std::vector<ReceiverReport> Session::run() {
  if (ran_) throw std::logic_error("Session: already run");
  for (const FaultScript::Outage& outage : fault_script_.outages()) {
    if (outage.source >= sources_.size()) {
      throw std::out_of_range("Session: fault script names an unknown source");
    }
  }
  // Shared link state (bottlenecks) aggregates rates across receivers, so
  // every receiver touching one must be simulated in the same cohort. This
  // is validated before any sharding, so the scenario is rejected with the
  // same error at every thread count. append_shared_states covers *every*
  // edge a link references — a PathLink that only shares the last queue of
  // its path with another receiver still couples the two.
  std::unordered_map<const void*, std::pair<std::size_t, std::size_t>> shared;
  std::vector<const void*> states;
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    for (const Subscription& sub : receivers_[i].subs) {
      states.clear();
      sub.link->append_shared_states(states);
      for (const void* group : states) {
        auto [it, fresh] = shared.try_emplace(group, std::make_pair(i, i));
        if (!fresh) it->second.second = i;  // receivers are added in order
      }
    }
  }
  for (const auto& [group, span] : shared) {
    if (span.first / config_.cohort_size != span.second / config_.cohort_size) {
      throw std::invalid_argument(
          "Session: receivers sharing a bottleneck span several cohorts; "
          "raise cohort_size or group them contiguously");
    }
  }
  ran_ = true;
  std::vector<ReceiverReport> reports(receivers_.size());
  const std::size_t cohorts =
      (receivers_.size() + config_.cohort_size - 1) / config_.cohort_size;
  const std::size_t workers =
      std::min(resolve_threads(config_.threads), std::max<std::size_t>(
                                                     cohorts, 1));
  // One slot pool per worker (sized lazily on first use): a cohort's pooled
  // sinks and distinct bitmaps are worker-local, so the simulation path
  // takes no locks. Every cohort writes only reports [first, first+count) —
  // disjoint slices — which is the deterministic in-order merge.
  const std::size_t slots_per_pool =
      std::min(config_.cohort_size, receivers_.size());
  std::vector<std::vector<Slot>> pools(std::max<std::size_t>(workers, 1));
  CohortPool::run(workers, cohorts, [&](std::size_t worker, std::size_t c) {
    std::vector<Slot>& slots = pools[worker];
    if (slots.size() < slots_per_pool) slots.resize(slots_per_pool);
    const std::size_t first = c * config_.cohort_size;
    const std::size_t count =
        std::min(config_.cohort_size, receivers_.size() - first);
    CohortRunner(*this, reports, slots, first, count).run();
  });
  return reports;
}

}  // namespace fountain::engine
