// Scalar reference tier: word-at-a-time XOR (the seed's original kernel) and
// the full-table GF(2^8) loop. This tier defines the semantics every SIMD
// tier must reproduce bit-for-bit (see tests/test_kernels.cpp).
#include <cstring>

#include "kern/kernels_impl.hpp"

namespace fountain::kern::detail {

namespace {

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, 8);
  return w;
}

inline void store64(std::uint8_t* p, std::uint64_t w) {
  std::memcpy(p, &w, 8);
}

void xor1(std::uint8_t* dst, const std::uint8_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) store64(dst + i, load64(dst + i) ^ load64(a + i));
  for (; i < n; ++i) dst[i] ^= a[i];
}

void xor2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(a + i) ^ load64(b + i));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i]);
}

void xor3(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store64(dst + i,
            load64(dst + i) ^ load64(a + i) ^ load64(b + i) ^ load64(c + i));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i]);
}

void xor4(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, const std::uint8_t* d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(a + i) ^ load64(b + i) ^
                         load64(c + i) ^ load64(d + i));
  }
  for (; i < n; ++i) {
    dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i] ^ d[i]);
  }
}

void gf256_fma(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
               const Gf256Ctx& ctx) {
  const std::uint8_t* row = ctx.full;
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void gf256_scale(std::uint8_t* dst, std::size_t n, const Gf256Ctx& ctx) {
  const std::uint8_t* row = ctx.full;
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[dst[i]];
}

constexpr Ops kOps = {Isa::kScalar, &xor1, &xor2, &xor3, &xor4,
                      &gf256_fma,   &gf256_scale};

}  // namespace

const Ops& scalar_ops() { return kOps; }

void scalar_xor(std::uint8_t* dst, const std::uint8_t* a, std::size_t n) {
  xor1(dst, a, n);
}
void scalar_gf256_fma(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n, const Gf256Ctx& ctx) {
  gf256_fma(dst, src, n, ctx);
}
void scalar_gf256_scale(std::uint8_t* dst, std::size_t n,
                        const Gf256Ctx& ctx) {
  gf256_scale(dst, n, ctx);
}

}  // namespace fountain::kern::detail
