// Batching XOR accumulator: queues source buffers destined for one output
// buffer and folds them with the widest multi-source kernel available
// (xor_block_4/3/2), so a degree-d fold reads dst ~d/4 times instead of d.
// Used by the Tornado encoder (check = XOR of its neighbours) and the
// decoder's substitution path (recovered packet = check XOR known
// neighbours).
//
// Contract: all queued sources must be exactly `bytes` long and must remain
// valid and unmodified until flush(); no size checks are performed (this is
// a kern-layer class — callers validate shapes once per batch).
#pragma once

#include <cstddef>
#include <cstdint>

#include "kern/kernels.hpp"

namespace fountain::kern {

class XorAccumulator {
 public:
  XorAccumulator(std::uint8_t* dst, std::size_t bytes)
      : dst_(dst), bytes_(bytes) {}

  /// Not copyable: pending sources are tied to one dst.
  XorAccumulator(const XorAccumulator&) = delete;
  XorAccumulator& operator=(const XorAccumulator&) = delete;

  ~XorAccumulator() { flush(); }

  void add(const std::uint8_t* src) {
    pending_[count_++] = src;
    if (count_ == 4) flush();
  }

  /// Folds any queued sources into dst; safe to call repeatedly.
  void flush() {
    switch (count_) {
      case 0:
        break;
      case 1:
        xor_block(dst_, pending_[0], bytes_);
        break;
      case 2:
        xor_block_2(dst_, pending_[0], pending_[1], bytes_);
        break;
      case 3:
        xor_block_3(dst_, pending_[0], pending_[1], pending_[2], bytes_);
        break;
      default:
        xor_block_4(dst_, pending_[0], pending_[1], pending_[2], pending_[3],
                    bytes_);
        break;
    }
    count_ = 0;
  }

 private:
  std::uint8_t* dst_;
  std::size_t bytes_;
  const std::uint8_t* pending_[4] = {};
  unsigned count_ = 0;
};

}  // namespace fountain::kern
