// Batching XOR accumulator: queues source buffers destined for one output
// buffer and folds them through the cache-blocked multi-row primitive
// (xor_block_rows), which walks the destination in L1-sized tiles and folds
// four sources per pass — so a degree-d fold costs ~d/4 L1-resident
// destination passes and exactly one pass over each source, instead of d
// full destination round-trips. This is the batching entry point for the
// Tornado encoder (check = XOR of its neighbours), the decoder's gathered
// substitution path (recovered packet = check XOR known neighbours), and the
// Cauchy bit-matrix kernel.
//
// Contract: all queued sources must be exactly `bytes` long and must remain
// valid and unmodified until flush(); no size checks are performed (this is
// a kern-layer class — callers validate shapes once per batch).
#pragma once

#include <cstddef>
#include <cstdint>

#include "kern/kernels.hpp"

namespace fountain::kern {

class XorAccumulator {
 public:
  /// Sources buffered per flush. 16 rows of kRowTileBytes plus the
  /// destination tile stay within a typical 1 MB L2 even at the largest
  /// symbol sizes; deeper batches would add latency without saving traffic.
  static constexpr std::size_t kBatch = 16;

  XorAccumulator(std::uint8_t* dst, std::size_t bytes)
      : dst_(dst), bytes_(bytes) {}

  /// Not copyable: pending sources are tied to one dst.
  XorAccumulator(const XorAccumulator&) = delete;
  XorAccumulator& operator=(const XorAccumulator&) = delete;

  ~XorAccumulator() { flush(); }

  void add(const std::uint8_t* src) {
    pending_[count_++] = src;
    if (count_ == kBatch) flush();
  }

  /// Folds any queued sources into dst; safe to call repeatedly.
  void flush() {
    xor_block_rows(dst_, pending_, count_, bytes_);
    count_ = 0;
  }

 private:
  std::uint8_t* dst_;
  std::size_t bytes_;
  const std::uint8_t* pending_[kBatch] = {};
  std::size_t count_ = 0;
};

}  // namespace fountain::kern
