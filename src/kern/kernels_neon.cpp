// NEON tier (AArch64, where Advanced SIMD is architecturally guaranteed —
// no runtime probe needed). 16-byte XOR lanes; GF(2^8) uses vqtbl1q_u8 for
// the same split-nibble half-table lookup the AVX2 tier performs with
// VPSHUFB.
#include "kern/kernels_impl.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace fountain::kern::detail {

namespace {

void xor1(std::uint8_t* dst, const std::uint8_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(a + i)));
  }
  if (i < n) scalar_xor(dst + i, a + i, n - i);
}

void xor2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i),
                               veorq_u8(vld1q_u8(a + i), vld1q_u8(b + i))));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i]);
}

void xor3(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t ab = veorq_u8(vld1q_u8(a + i), vld1q_u8(b + i));
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i),
                               veorq_u8(ab, vld1q_u8(c + i))));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i]);
}

void xor4(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, const std::uint8_t* d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t ab = veorq_u8(vld1q_u8(a + i), vld1q_u8(b + i));
    const uint8x16_t cd = veorq_u8(vld1q_u8(c + i), vld1q_u8(d + i));
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), veorq_u8(ab, cd)));
  }
  for (; i < n; ++i) {
    dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i] ^ d[i]);
  }
}

inline uint8x16_t gf_mul16(uint8x16_t x, uint8x16_t lo_tbl, uint8x16_t hi_tbl,
                           uint8x16_t nib_mask) {
  const uint8x16_t lo = vandq_u8(x, nib_mask);
  const uint8x16_t hi = vshrq_n_u8(x, 4);
  return veorq_u8(vqtbl1q_u8(lo_tbl, lo), vqtbl1q_u8(hi_tbl, hi));
}

void gf256_fma(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
               const Gf256Ctx& ctx) {
  const uint8x16_t lo_tbl = vld1q_u8(ctx.lo);
  const uint8x16_t hi_tbl = vld1q_u8(ctx.hi);
  const uint8x16_t nib_mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t prod = gf_mul16(vld1q_u8(src + i), lo_tbl, hi_tbl,
                                     nib_mask);
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), prod));
  }
  if (i < n) scalar_gf256_fma(dst + i, src + i, n - i, ctx);
}

void gf256_scale(std::uint8_t* dst, std::size_t n, const Gf256Ctx& ctx) {
  const uint8x16_t lo_tbl = vld1q_u8(ctx.lo);
  const uint8x16_t hi_tbl = vld1q_u8(ctx.hi);
  const uint8x16_t nib_mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, gf_mul16(vld1q_u8(dst + i), lo_tbl, hi_tbl, nib_mask));
  }
  if (i < n) scalar_gf256_scale(dst + i, n - i, ctx);
}

constexpr Ops kOps = {Isa::kNeon, &xor1,      &xor2,        &xor3,
                      &xor4,      &gf256_fma, &gf256_scale};

}  // namespace

const Ops* neon_ops() { return &kOps; }

}  // namespace fountain::kern::detail

#else  // non-AArch64 build: tier absent

namespace fountain::kern::detail {
const Ops* neon_ops() { return nullptr; }
}  // namespace fountain::kern::detail

#endif
