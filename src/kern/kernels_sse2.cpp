// SSE2 tier (x86-64 baseline — always compiled in on x86-64, no extra
// flags). 16-byte XOR lanes; GF(2^8) falls back to the scalar full-table
// loop because PSHUFB is SSSE3+ (the AVX2 tier carries the split-nibble
// multiply).
#include "kern/kernels_impl.hpp"

#if defined(__SSE2__) || (defined(_M_X64) && !defined(__clang__))

#include <emmintrin.h>

namespace fountain::kern::detail {

namespace {

inline __m128i load(const std::uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline void store(std::uint8_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

void xor1(std::uint8_t* dst, const std::uint8_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    store(dst + i, _mm_xor_si128(load(dst + i), load(a + i)));
    store(dst + i + 16, _mm_xor_si128(load(dst + i + 16), load(a + i + 16)));
  }
  for (; i + 16 <= n; i += 16) {
    store(dst + i, _mm_xor_si128(load(dst + i), load(a + i)));
  }
  if (i < n) scalar_xor(dst + i, a + i, n - i);
}

void xor2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    store(dst + i, _mm_xor_si128(load(dst + i),
                                 _mm_xor_si128(load(a + i), load(b + i))));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i]);
}

void xor3(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i ab = _mm_xor_si128(load(a + i), load(b + i));
    store(dst + i,
          _mm_xor_si128(load(dst + i), _mm_xor_si128(ab, load(c + i))));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i]);
}

void xor4(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, const std::uint8_t* d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i ab = _mm_xor_si128(load(a + i), load(b + i));
    const __m128i cd = _mm_xor_si128(load(c + i), load(d + i));
    store(dst + i,
          _mm_xor_si128(load(dst + i), _mm_xor_si128(ab, cd)));
  }
  for (; i < n; ++i) {
    dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i] ^ d[i]);
  }
}

constexpr Ops kOps = {Isa::kSse2,         &xor1, &xor2, &xor3, &xor4,
                      &scalar_gf256_fma,  &scalar_gf256_scale};

}  // namespace

const Ops* sse2_ops() { return &kOps; }

}  // namespace fountain::kern::detail

#else  // non-x86 build: tier absent

namespace fountain::kern::detail {
const Ops* sse2_ops() { return nullptr; }
}  // namespace fountain::kern::detail

#endif
