// AVX2 tier. This translation unit is compiled with -mavx2 (see the
// top-level CMakeLists.txt) and must only be entered after the dispatcher
// has confirmed AVX2 via cpuid — nothing here may be called on a non-AVX2
// machine.
//
// XOR: 32-byte lanes, two accumulators per iteration. GF(2^8): the
// split-nibble PSHUFB technique (Plank/Greenan/Miller, "Screaming Fast
// Galois Field Arithmetic"; also ISA-L) — the product c*x is
// lo_table[x & 0xf] ^ hi_table[x >> 4], so VPSHUFB evaluates 32 byte
// products per instruction pair from two 16-entry half-tables.
#include "kern/kernels_impl.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace fountain::kern::detail {

namespace {

inline __m256i load(const std::uint8_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store(std::uint8_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

void xor1(std::uint8_t* dst, const std::uint8_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    store(dst + i, _mm256_xor_si256(load(dst + i), load(a + i)));
    store(dst + i + 32,
          _mm256_xor_si256(load(dst + i + 32), load(a + i + 32)));
  }
  for (; i + 32 <= n; i += 32) {
    store(dst + i, _mm256_xor_si256(load(dst + i), load(a + i)));
  }
  if (i < n) scalar_xor(dst + i, a + i, n - i);
}

void xor2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    store(dst + i, _mm256_xor_si256(load(dst + i), _mm256_xor_si256(
                                                       load(a + i),
                                                       load(b + i))));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i]);
}

void xor3(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i ab = _mm256_xor_si256(load(a + i), load(b + i));
    store(dst + i, _mm256_xor_si256(load(dst + i),
                                    _mm256_xor_si256(ab, load(c + i))));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i]);
}

void xor4(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, const std::uint8_t* d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i ab = _mm256_xor_si256(load(a + i), load(b + i));
    const __m256i cd = _mm256_xor_si256(load(c + i), load(d + i));
    store(dst + i, _mm256_xor_si256(load(dst + i), _mm256_xor_si256(ab, cd)));
  }
  for (; i < n; ++i) {
    dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i] ^ d[i]);
  }
}

/// Broadcasts a 16-entry half-table into both 128-bit lanes so VPSHUFB
/// performs the same 16-way lookup in each lane.
inline __m256i half_table(const std::uint8_t* t) {
  return _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t)));
}

/// prod[j] = ctx.lo[x_j & 0xf] ^ ctx.hi[x_j >> 4] for the 32 bytes of x.
inline __m256i gf_mul32(__m256i x, __m256i lo_tbl, __m256i hi_tbl,
                        __m256i nib_mask) {
  const __m256i lo = _mm256_and_si256(x, nib_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(x, 4), nib_mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(lo_tbl, lo),
                          _mm256_shuffle_epi8(hi_tbl, hi));
}

void gf256_fma(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
               const Gf256Ctx& ctx) {
  const __m256i lo_tbl = half_table(ctx.lo);
  const __m256i hi_tbl = half_table(ctx.hi);
  const __m256i nib_mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i prod = gf_mul32(load(src + i), lo_tbl, hi_tbl, nib_mask);
    store(dst + i, _mm256_xor_si256(load(dst + i), prod));
  }
  if (i < n) scalar_gf256_fma(dst + i, src + i, n - i, ctx);
}

void gf256_scale(std::uint8_t* dst, std::size_t n, const Gf256Ctx& ctx) {
  const __m256i lo_tbl = half_table(ctx.lo);
  const __m256i hi_tbl = half_table(ctx.hi);
  const __m256i nib_mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    store(dst + i, gf_mul32(load(dst + i), lo_tbl, hi_tbl, nib_mask));
  }
  if (i < n) scalar_gf256_scale(dst + i, n - i, ctx);
}

constexpr Ops kOps = {Isa::kAvx2, &xor1,      &xor2,        &xor3,
                      &xor4,      &gf256_fma, &gf256_scale};

}  // namespace

const Ops* avx2_ops() { return &kOps; }

}  // namespace fountain::kern::detail

#else  // built without -mavx2 (non-x86 target, or compiler without support)

namespace fountain::kern::detail {
const Ops* avx2_ops() { return nullptr; }
}  // namespace fountain::kern::detail

#endif
