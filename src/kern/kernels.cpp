// Tier selection. The choice is made once (first call to ops()) and cached;
// tests can re-pin it via set_isa_override. Order of preference:
// GFNI > AVX-512BW > AVX2 > SSE2 > NEON > scalar, subject to compile-time
// availability and runtime cpuid checks. The 512-bit tiers additionally
// require the OS to have enabled ZMM/opmask state (XCR0), probed directly
// via cpuid/xgetbv so the check is identical across compilers.
#include "kern/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kern/kernels_impl.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
#include <cpuid.h>
#endif
#endif

namespace fountain::kern {

namespace {

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
/// CPUID leaf 7 feature bits plus the XCR0 state check the 512-bit tiers
/// need: OSXSAVE with XMM, YMM, opmask, ZMM_Hi256 and Hi16_ZMM state all
/// enabled ((XCR0 & 0xe6) == 0xe6). Evaluated once.
struct X86Features {
  bool avx512bw = false;
  bool gfni = false;
  X86Features() {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    if (!osxsave) return;
    std::uint32_t xcr0_lo = 0, xcr0_hi = 0;
    __asm__("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
    if ((xcr0_lo & 0xe6u) != 0xe6u) return;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return;
    avx512bw = (ebx & (1u << 30)) != 0;
    gfni = (ecx & (1u << 8)) != 0;
  }
};

const X86Features& x86_features() {
  static const X86Features f;
  return f;
}

bool cpu_has_avx512bw() { return x86_features().avx512bw; }
bool cpu_has_gfni512() {
  return x86_features().gfni && x86_features().avx512bw;
}
#else
bool cpu_has_avx512bw() { return false; }
bool cpu_has_gfni512() { return false; }
#endif

/// Env override: FOUNTAIN_FORCE_SCALAR=1 wins, then FOUNTAIN_FORCE_ISA.
/// Unknown or unsupported requests fall through to auto-selection.
const Ops* env_override() {
  if (const char* v = std::getenv("FOUNTAIN_FORCE_SCALAR")) {
    if (v[0] != '\0' && v[0] != '0') return &detail::scalar_ops();
  }
  if (const char* v = std::getenv("FOUNTAIN_FORCE_ISA")) {
    if (std::strcmp(v, "scalar") == 0) return &detail::scalar_ops();
    if (std::strcmp(v, "sse2") == 0) return ops_for(Isa::kSse2);
    if (std::strcmp(v, "avx2") == 0) return ops_for(Isa::kAvx2);
    if (std::strcmp(v, "avx512") == 0) return ops_for(Isa::kAvx512);
    if (std::strcmp(v, "gfni") == 0) return ops_for(Isa::kGfni);
    if (std::strcmp(v, "neon") == 0) return ops_for(Isa::kNeon);
  }
  return nullptr;
}

const Ops* select() {
  if (const Ops* forced = env_override()) return forced;
  if (const Ops* o = ops_for(Isa::kGfni)) return o;
  if (const Ops* o = ops_for(Isa::kAvx512)) return o;
  if (const Ops* o = ops_for(Isa::kAvx2)) return o;
  if (const Ops* o = ops_for(Isa::kSse2)) return o;
  if (const Ops* o = ops_for(Isa::kNeon)) return o;
  return &detail::scalar_ops();
}

std::atomic<const Ops*> g_override{nullptr};

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
    case Isa::kGfni: return "gfni";
    case Isa::kNeon: return "neon";
  }
  return "unknown";
}

const Ops* ops_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &detail::scalar_ops();
    case Isa::kSse2:
      return detail::sse2_ops();
    case Isa::kAvx2:
      return cpu_has_avx2() ? detail::avx2_ops() : nullptr;
    case Isa::kAvx512:
      return cpu_has_avx512bw() ? detail::avx512_ops() : nullptr;
    case Isa::kGfni:
      return cpu_has_gfni512() ? detail::gfni_ops() : nullptr;
    case Isa::kNeon:
      return detail::neon_ops();
  }
  return nullptr;
}

const Ops& ops() {
  if (const Ops* forced = g_override.load(std::memory_order_acquire)) {
    return *forced;
  }
  static const Ops* const selected = select();
  return *selected;
}

Isa active_isa() { return ops().isa; }

bool set_isa_override(Isa isa) {
  const Ops* o = ops_for(isa);
  if (o == nullptr) return false;
  g_override.store(o, std::memory_order_release);
  return true;
}

void clear_isa_override() {
  g_override.store(nullptr, std::memory_order_release);
}

}  // namespace fountain::kern
