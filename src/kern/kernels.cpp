// Tier selection. The choice is made once (first call to ops()) and cached;
// tests can re-pin it via set_isa_override. Order of preference:
// AVX2 > SSE2 > NEON > scalar, subject to compile-time availability and a
// runtime cpuid check for AVX2.
#include "kern/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kern/kernels_impl.hpp"

namespace fountain::kern {

namespace {

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

/// Env override: FOUNTAIN_FORCE_SCALAR=1 wins, then FOUNTAIN_FORCE_ISA.
/// Unknown or unsupported requests fall through to auto-selection.
const Ops* env_override() {
  if (const char* v = std::getenv("FOUNTAIN_FORCE_SCALAR")) {
    if (v[0] != '\0' && v[0] != '0') return &detail::scalar_ops();
  }
  if (const char* v = std::getenv("FOUNTAIN_FORCE_ISA")) {
    if (std::strcmp(v, "scalar") == 0) return &detail::scalar_ops();
    if (std::strcmp(v, "sse2") == 0) return ops_for(Isa::kSse2);
    if (std::strcmp(v, "avx2") == 0) return ops_for(Isa::kAvx2);
    if (std::strcmp(v, "neon") == 0) return ops_for(Isa::kNeon);
  }
  return nullptr;
}

const Ops* select() {
  if (const Ops* forced = env_override()) return forced;
  if (const Ops* o = ops_for(Isa::kAvx2)) return o;
  if (const Ops* o = ops_for(Isa::kSse2)) return o;
  if (const Ops* o = ops_for(Isa::kNeon)) return o;
  return &detail::scalar_ops();
}

std::atomic<const Ops*> g_override{nullptr};

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "unknown";
}

const Ops* ops_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &detail::scalar_ops();
    case Isa::kSse2:
      return detail::sse2_ops();
    case Isa::kAvx2:
      return cpu_has_avx2() ? detail::avx2_ops() : nullptr;
    case Isa::kNeon:
      return detail::neon_ops();
  }
  return nullptr;
}

const Ops& ops() {
  if (const Ops* forced = g_override.load(std::memory_order_acquire)) {
    return *forced;
  }
  static const Ops* const selected = select();
  return *selected;
}

Isa active_isa() { return ops().isa; }

bool set_isa_override(Isa isa) {
  const Ops* o = ops_for(isa);
  if (o == nullptr) return false;
  g_override.store(o, std::memory_order_release);
  return true;
}

void clear_isa_override() {
  g_override.store(nullptr, std::memory_order_release);
}

}  // namespace fountain::kern
