// Runtime-dispatched byte-level kernels — the innermost loops of every code
// in this library. The paper's speed claim (Tables 2/3) rests on the XOR
// inner loop; this layer makes that loop, and the GF(2^8) multiply-accumulate
// behind the Reed-Solomon codes, run as wide as the host allows.
//
// Dispatch: an implementation table (`Ops`) per instruction-set tier —
// GFNI -> AVX-512BW -> AVX2 -> SSE2 -> scalar on x86-64, NEON -> scalar on
// AArch64 — selected once on first use (cpuid, with an XCR0 check for the
// 512-bit tiers so a kernel that disables ZMM state is respected) and cached
// in a function-pointer table. `FOUNTAIN_FORCE_SCALAR=1` (or
// `FOUNTAIN_FORCE_ISA=scalar|sse2|avx2|avx512|gfni|neon`) overrides selection
// at process start; `set_isa_override` does the same programmatically for
// tests. Forcing a tier the host lacks falls through to auto-selection.
//
// On top of the per-tier single-destination kernels, this header exposes the
// cache-blocked multi-row primitives `xor_block_rows` / `gf256_fma_rows`:
// they fold an arbitrary number of source rows into one destination, tiled
// in `kRowTileBytes` chunks so the destination tile stays L1-resident across
// all sources instead of being re-read from L2/DRAM once per source. These
// are the batching entry points for whole check-packet neighborhoods
// (encoder), gathered substitution (decoder), and RS row synthesis.
//
// Contracts (all entry points): buffers are raw byte ranges of exactly
// `n` bytes; NO size or alignment checks are performed — callers validate
// shapes once per batch (the checked public API is `util::xor_into`).
// Unaligned pointers are permitted (kernels use unaligned loads). `dst` may
// equal a source pointer exactly (xor of a buffer with itself zeroes it);
// partial overlap is undefined.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fountain::kern {

enum class Isa { kScalar, kSse2, kAvx2, kAvx512, kGfni, kNeon };

const char* isa_name(Isa isa);

/// Per-constant GF(2^8) multiply context. `lo[x] = c * x` and
/// `hi[x] = c * (x << 4)` for x in [0, 16) are the two PSHUFB/vqtbl1q
/// half-tables of the split-nibble technique (Plank et al. / ISA-L);
/// `full[x] = c * x` for x in [0, 256) serves the scalar path and tails.
/// `affine` is the same multiply as an 8x8 GF(2) bit-matrix packed for
/// GF2P8AFFINEQB (byte 7-r holds the input-bit mask producing output bit r),
/// which lets the GFNI tier evaluate 64 products per instruction — in OUR
/// field (0x11D): the affine form works for any GF(2^8) modulus, unlike
/// GF2P8MULB which is hardwired to the AES polynomial 0x11B.
/// The pointers reference tables owned by gf::GF256 and stay valid for the
/// process lifetime.
struct Gf256Ctx {
  const std::uint8_t* lo;
  const std::uint8_t* hi;
  const std::uint8_t* full;
  std::uint64_t affine;
};

/// One implementation tier: every kernel the layer exposes, as plain
/// function pointers so the selected tier is a single indirect call.
struct Ops {
  Isa isa;
  /// dst ^= a
  void (*xor_block)(std::uint8_t* dst, const std::uint8_t* a, std::size_t n);
  /// dst ^= a ^ b — folds two sources per pass over dst (half the dst
  /// traffic of two xor_block calls); _3/_4 fold three/four.
  void (*xor_block_2)(std::uint8_t* dst, const std::uint8_t* a,
                      const std::uint8_t* b, std::size_t n);
  void (*xor_block_3)(std::uint8_t* dst, const std::uint8_t* a,
                      const std::uint8_t* b, const std::uint8_t* c,
                      std::size_t n);
  void (*xor_block_4)(std::uint8_t* dst, const std::uint8_t* a,
                      const std::uint8_t* b, const std::uint8_t* c,
                      const std::uint8_t* d, std::size_t n);
  /// dst ^= c * src over GF(2^8), c described by `ctx`.
  void (*gf256_fma)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                    const Gf256Ctx& ctx);
  /// dst *= c over GF(2^8).
  void (*gf256_scale)(std::uint8_t* dst, std::size_t n, const Gf256Ctx& ctx);
};

/// The active tier (selected once, then cached; see file comment).
const Ops& ops();

/// The tier's table if it is compiled in AND supported by this CPU, else
/// nullptr. `kScalar` always succeeds. Used by the differential tests and
/// the micro benches to exercise every tier explicitly.
const Ops* ops_for(Isa isa);

Isa active_isa();

/// Test/bench hook: force a specific tier (must be supported — returns false
/// and leaves the selection unchanged otherwise).
bool set_isa_override(Isa isa);
void clear_isa_override();

// Dispatched convenience wrappers.
inline void xor_block(std::uint8_t* dst, const std::uint8_t* a,
                      std::size_t n) {
  ops().xor_block(dst, a, n);
}
inline void xor_block_2(std::uint8_t* dst, const std::uint8_t* a,
                        const std::uint8_t* b, std::size_t n) {
  ops().xor_block_2(dst, a, b, n);
}
inline void xor_block_3(std::uint8_t* dst, const std::uint8_t* a,
                        const std::uint8_t* b, const std::uint8_t* c,
                        std::size_t n) {
  ops().xor_block_3(dst, a, b, c, n);
}
inline void xor_block_4(std::uint8_t* dst, const std::uint8_t* a,
                        const std::uint8_t* b, const std::uint8_t* c,
                        const std::uint8_t* d, std::size_t n) {
  ops().xor_block_4(dst, a, b, c, d, n);
}
inline void gf256_fma_block(std::uint8_t* dst, const std::uint8_t* src,
                            std::size_t n, const Gf256Ctx& ctx) {
  ops().gf256_fma(dst, src, n, ctx);
}
inline void gf256_scale_block(std::uint8_t* dst, std::size_t n,
                              const Gf256Ctx& ctx) {
  ops().gf256_scale(dst, n, ctx);
}

// ---- Cache-blocked multi-row primitives (kernels_rows.cpp) ----

/// Tile width of the multi-row fold: the destination tile (4 KB) plus four
/// streaming source tiles fit comfortably in a 32 KB L1D, so a degree-d fold
/// touches main memory once per source row and once for the destination
/// regardless of d or row length. Rows at or below this size degenerate to
/// the un-tiled group fold with zero overhead.
inline constexpr std::size_t kRowTileBytes = 4096;

/// dst ^= srcs[0] ^ srcs[1] ^ ... ^ srcs[count-1], all rows exactly `n`
/// bytes. Folds four sources per pass over each destination tile via the
/// tier's xor_block_4/3/2. Duplicate source pointers are permitted (they
/// cancel pairwise); dst must not overlap any source except exact equality.
void xor_block_rows(const Ops& ops, std::uint8_t* dst,
                    const std::uint8_t* const* srcs, std::size_t count,
                    std::size_t n);

/// dst ^= sum_i ctxs[i] * srcs[i] over GF(2^8), tiled like xor_block_rows so
/// the destination tile is read and written from L1 once per source row.
void gf256_fma_rows(const Ops& ops, std::uint8_t* dst,
                    const std::uint8_t* const* srcs, const Gf256Ctx* ctxs,
                    std::size_t count, std::size_t n);

inline void xor_block_rows(std::uint8_t* dst, const std::uint8_t* const* srcs,
                           std::size_t count, std::size_t n) {
  xor_block_rows(ops(), dst, srcs, count, n);
}
inline void gf256_fma_rows(std::uint8_t* dst, const std::uint8_t* const* srcs,
                           const Gf256Ctx* ctxs, std::size_t count,
                           std::size_t n) {
  gf256_fma_rows(ops(), dst, srcs, ctxs, count, n);
}

}  // namespace fountain::kern
