// Cache-blocked multi-row folds. The tiling is ISA-independent — it walks
// the rows in kRowTileBytes chunks and drives the selected tier's
// single-tile kernels — so one implementation serves every tier; the per-ISA
// work all happens inside the xor_block_*/gf256_fma function pointers.
//
// Why block: a row-at-a-time fold of d source rows reads and writes the
// destination d times. For rows larger than L1 that destination traffic goes
// to L2/DRAM and dominates. Folding tile-by-tile keeps the 4 KB destination
// tile L1-resident while every source row streams through exactly once, so
// the memory traffic is (d + 2) tiles per tile position instead of 3d.
#include <algorithm>

#include "kern/kernels.hpp"

namespace fountain::kern {

namespace {

/// Folds srcs[0..count) at byte offset `off` (length `len`) into d, four
/// sources per destination pass.
inline void fold_tile(const Ops& ops, std::uint8_t* d,
                      const std::uint8_t* const* srcs, std::size_t count,
                      std::size_t off, std::size_t len) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    ops.xor_block_4(d, srcs[i] + off, srcs[i + 1] + off, srcs[i + 2] + off,
                    srcs[i + 3] + off, len);
  }
  switch (count - i) {
    case 3:
      ops.xor_block_3(d, srcs[i] + off, srcs[i + 1] + off, srcs[i + 2] + off,
                      len);
      break;
    case 2:
      ops.xor_block_2(d, srcs[i] + off, srcs[i + 1] + off, len);
      break;
    case 1:
      ops.xor_block(d, srcs[i] + off, len);
      break;
    default:
      break;
  }
}

}  // namespace

void xor_block_rows(const Ops& ops, std::uint8_t* dst,
                    const std::uint8_t* const* srcs, std::size_t count,
                    std::size_t n) {
  if (count == 0 || n == 0) return;
  for (std::size_t off = 0; off < n; off += kRowTileBytes) {
    const std::size_t len = std::min(kRowTileBytes, n - off);
    fold_tile(ops, dst + off, srcs, count, off, len);
  }
}

void gf256_fma_rows(const Ops& ops, std::uint8_t* dst,
                    const std::uint8_t* const* srcs, const Gf256Ctx* ctxs,
                    std::size_t count, std::size_t n) {
  if (count == 0 || n == 0) return;
  for (std::size_t off = 0; off < n; off += kRowTileBytes) {
    const std::size_t len = std::min(kRowTileBytes, n - off);
    std::uint8_t* d = dst + off;
    for (std::size_t i = 0; i < count; ++i) {
      ops.gf256_fma(d, srcs[i] + off, len, ctxs[i]);
    }
  }
}

}  // namespace fountain::kern
