// Internal: per-tier implementation tables. Each kernels_<isa>.cpp defines
// its accessor; tiers not compiled for the target architecture return
// nullptr so the dispatcher (kernels.cpp) can probe them unconditionally.
// Not installed / not for use outside src/kern.
#pragma once

#include "kern/kernels.hpp"

namespace fountain::kern::detail {

const Ops& scalar_ops();   // always available
const Ops* sse2_ops();     // x86-64 only (SSE2 is the x86-64 baseline)
const Ops* avx2_ops();     // x86-64 built with -mavx2; needs runtime cpuid
const Ops* avx512_ops();   // x86-64 built with -mavx512bw; cpuid + XCR0
const Ops* gfni_ops();     // x86-64 built with -mgfni -mavx512bw; cpuid+XCR0
const Ops* neon_ops();     // AArch64 only

// Shared scalar helpers, also used by the SIMD tiers for sub-register tails.
void scalar_xor(std::uint8_t* dst, const std::uint8_t* a, std::size_t n);
void scalar_gf256_fma(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n, const Gf256Ctx& ctx);
void scalar_gf256_scale(std::uint8_t* dst, std::size_t n, const Gf256Ctx& ctx);

}  // namespace fountain::kern::detail
