// GFNI tier (GFNI + AVX-512BW, 64-byte lanes). Compiled with
// -mgfni -mavx512f -mavx512bw; entered only after the dispatcher has
// confirmed both features plus OS ZMM state.
//
// GF(2^8): VGF2P8AFFINEQB applies an arbitrary 8x8 GF(2) bit-matrix to every
// byte of a ZMM register. Multiplication by a constant c is GF(2)-linear in
// ANY GF(2^8) representation, so the per-constant matrix (precomputed in
// gf::GF256's tables as Gf256Ctx::affine) evaluates 64 products of our
// 0x11D field per instruction — one instruction where the split-nibble
// technique needs five, and with no table broadcasts in the loop. Note
// GF2P8MULB is NOT usable here: it is hardwired to the AES polynomial 0x11B.
//
// XOR has no GFNI form; the 64-byte XOR kernels mirror the AVX-512BW tier so
// that forcing `FOUNTAIN_FORCE_ISA=gfni` exercises a complete table.
//
// Hosts with VEX-only GFNI (no AVX-512, e.g. Alder Lake) fall back to the
// AVX2 tier; the affine path is worth a dedicated VEX variant only if such
// hosts show up in practice.
#include "kern/kernels_impl.hpp"

#if defined(__GFNI__) && defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

namespace fountain::kern::detail {

namespace {

inline __m512i load(const std::uint8_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

inline void store(std::uint8_t* p, __m512i v) {
  _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
}

void xor1(std::uint8_t* dst, const std::uint8_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    store(dst + i, _mm512_xor_si512(load(dst + i), load(a + i)));
    store(dst + i + 64,
          _mm512_xor_si512(load(dst + i + 64), load(a + i + 64)));
  }
  for (; i + 64 <= n; i += 64) {
    store(dst + i, _mm512_xor_si512(load(dst + i), load(a + i)));
  }
  if (i < n) scalar_xor(dst + i, a + i, n - i);
}

void xor2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    store(dst + i,
          _mm512_xor_si512(load(dst + i),
                           _mm512_xor_si512(load(a + i), load(b + i))));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i]);
}

void xor3(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i ab = _mm512_xor_si512(load(a + i), load(b + i));
    store(dst + i, _mm512_xor_si512(load(dst + i),
                                    _mm512_xor_si512(ab, load(c + i))));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i]);
}

void xor4(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, const std::uint8_t* d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i ab = _mm512_xor_si512(load(a + i), load(b + i));
    const __m512i cd = _mm512_xor_si512(load(c + i), load(d + i));
    store(dst + i, _mm512_xor_si512(load(dst + i), _mm512_xor_si512(ab, cd)));
  }
  for (; i < n; ++i) {
    dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i] ^ d[i]);
  }
}

void gf256_fma(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
               const Gf256Ctx& ctx) {
  const __m512i matrix =
      _mm512_set1_epi64(static_cast<long long>(ctx.affine));
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    const __m512i p0 =
        _mm512_gf2p8affine_epi64_epi8(load(src + i), matrix, 0);
    const __m512i p1 =
        _mm512_gf2p8affine_epi64_epi8(load(src + i + 64), matrix, 0);
    store(dst + i, _mm512_xor_si512(load(dst + i), p0));
    store(dst + i + 64, _mm512_xor_si512(load(dst + i + 64), p1));
  }
  for (; i + 64 <= n; i += 64) {
    const __m512i prod =
        _mm512_gf2p8affine_epi64_epi8(load(src + i), matrix, 0);
    store(dst + i, _mm512_xor_si512(load(dst + i), prod));
  }
  if (i < n) scalar_gf256_fma(dst + i, src + i, n - i, ctx);
}

void gf256_scale(std::uint8_t* dst, std::size_t n, const Gf256Ctx& ctx) {
  const __m512i matrix =
      _mm512_set1_epi64(static_cast<long long>(ctx.affine));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    store(dst + i, _mm512_gf2p8affine_epi64_epi8(load(dst + i), matrix, 0));
  }
  if (i < n) scalar_gf256_scale(dst + i, n - i, ctx);
}

constexpr Ops kOps = {Isa::kGfni, &xor1,      &xor2,        &xor3,
                      &xor4,      &gf256_fma, &gf256_scale};

}  // namespace

const Ops* gfni_ops() { return &kOps; }

}  // namespace fountain::kern::detail

#else  // built without GFNI/AVX-512 support

namespace fountain::kern::detail {
const Ops* gfni_ops() { return nullptr; }
}  // namespace fountain::kern::detail

#endif
