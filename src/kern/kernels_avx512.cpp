// AVX-512BW tier. This translation unit is compiled with
// -mavx512f -mavx512bw (see the top-level CMakeLists.txt) and must only be
// entered after the dispatcher has confirmed AVX-512BW *and* OS ZMM state
// via cpuid + XCR0 — nothing here may be called otherwise.
//
// XOR: 64-byte lanes, two accumulators per iteration. GF(2^8): the same
// split-nibble technique as the AVX2 tier, widened to VPSHUFB on ZMM
// (AVX-512BW provides the byte shuffle; each 128-bit lane performs the
// 16-way half-table lookup), evaluating 64 byte products per instruction
// pair. Hosts that also have GFNI get the stronger kGfni tier instead —
// VBMI's VPERMB offers no win here because the lookup tables are only 16
// entries, well within a single VPSHUFB lane.
#include "kern/kernels_impl.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

namespace fountain::kern::detail {

namespace {

inline __m512i load(const std::uint8_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

inline void store(std::uint8_t* p, __m512i v) {
  _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
}

void xor1(std::uint8_t* dst, const std::uint8_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    store(dst + i, _mm512_xor_si512(load(dst + i), load(a + i)));
    store(dst + i + 64,
          _mm512_xor_si512(load(dst + i + 64), load(a + i + 64)));
  }
  for (; i + 64 <= n; i += 64) {
    store(dst + i, _mm512_xor_si512(load(dst + i), load(a + i)));
  }
  if (i < n) scalar_xor(dst + i, a + i, n - i);
}

void xor2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    store(dst + i,
          _mm512_xor_si512(load(dst + i),
                           _mm512_xor_si512(load(a + i), load(b + i))));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i]);
}

void xor3(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i ab = _mm512_xor_si512(load(a + i), load(b + i));
    store(dst + i, _mm512_xor_si512(load(dst + i),
                                    _mm512_xor_si512(ab, load(c + i))));
  }
  for (; i < n; ++i) dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i]);
}

void xor4(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
          const std::uint8_t* c, const std::uint8_t* d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i ab = _mm512_xor_si512(load(a + i), load(b + i));
    const __m512i cd = _mm512_xor_si512(load(c + i), load(d + i));
    store(dst + i, _mm512_xor_si512(load(dst + i), _mm512_xor_si512(ab, cd)));
  }
  for (; i < n; ++i) {
    dst[i] ^= static_cast<std::uint8_t>(a[i] ^ b[i] ^ c[i] ^ d[i]);
  }
}

/// Broadcasts a 16-entry half-table into all four 128-bit lanes. The maskz
/// form (full mask) is used instead of the plain intrinsic because GCC's
/// unmasked variant merges into _mm512_undefined_epi32 and trips
/// -Wuninitialized; the generated instruction is identical.
inline __m512i half_table(const std::uint8_t* t) {
  return _mm512_maskz_broadcast_i32x4(
      static_cast<__mmask16>(-1),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t)));
}

/// prod[j] = ctx.lo[x_j & 0xf] ^ ctx.hi[x_j >> 4] for the 64 bytes of x.
inline __m512i gf_mul64(__m512i x, __m512i lo_tbl, __m512i hi_tbl,
                        __m512i nib_mask) {
  const __m512i lo = _mm512_and_si512(x, nib_mask);
  const __m512i hi = _mm512_and_si512(
      _mm512_maskz_srli_epi64(static_cast<__mmask8>(-1), x, 4), nib_mask);
  return _mm512_xor_si512(_mm512_shuffle_epi8(lo_tbl, lo),
                          _mm512_shuffle_epi8(hi_tbl, hi));
}

void gf256_fma(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
               const Gf256Ctx& ctx) {
  const __m512i lo_tbl = half_table(ctx.lo);
  const __m512i hi_tbl = half_table(ctx.hi);
  const __m512i nib_mask = _mm512_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i prod = gf_mul64(load(src + i), lo_tbl, hi_tbl, nib_mask);
    store(dst + i, _mm512_xor_si512(load(dst + i), prod));
  }
  if (i < n) scalar_gf256_fma(dst + i, src + i, n - i, ctx);
}

void gf256_scale(std::uint8_t* dst, std::size_t n, const Gf256Ctx& ctx) {
  const __m512i lo_tbl = half_table(ctx.lo);
  const __m512i hi_tbl = half_table(ctx.hi);
  const __m512i nib_mask = _mm512_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    store(dst + i, gf_mul64(load(dst + i), lo_tbl, hi_tbl, nib_mask));
  }
  if (i < n) scalar_gf256_scale(dst + i, n - i, ctx);
}

constexpr Ops kOps = {Isa::kAvx512, &xor1,      &xor2,        &xor3,
                      &xor4,        &gf256_fma, &gf256_scale};

}  // namespace

const Ops* avx512_ops() { return &kOps; }

}  // namespace fountain::kern::detail

#else  // built without AVX-512BW support

namespace fountain::kern::detail {
const Ops* avx512_ops() { return nullptr; }
}  // namespace fountain::kern::detail

#endif
