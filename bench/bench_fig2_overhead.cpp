// Reproduces Figure 2: "Reception Overhead Variation" — for Tornado A and
// Tornado B, the percentage of 10,000 decode trials that cannot finish at a
// given length overhead, plus the avg/max/stddev the paper quotes in the
// text (A: avg 0.0548, max 0.0850, sd 0.0052; B: avg 0.0306, max 0.0550,
// sd 0.0031 — on their custom-designed graphs). The LT codec runs the same
// experiment (fewer trials — its decoder is the slow one).
//
// Second half: the Section 9 claim that a rateless code eliminates
// duplicate-reception waste at scale. Tornado receivers join a looping
// carousel at random phases behind lossy links, so late listeners hear
// wrapped-around indices they already hold; LT receivers drink from a
// RatelessSource whose index stream never repeats, so every arrival is
// fresh. We compare the expected *worst* receiver's reception overhead
// (received/k - 1) as the receiver population grows: Tornado's worst case
// climbs with N, LT's stays pinned at its decoding overhead. Both curves
// land in BENCH_results.json as JSON-lines.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/tornado.hpp"
#include "engine/session.hpp"
#include "engine/sources.hpp"
#include "lt/lt_code.hpp"
#include "net/loss.hpp"
#include "sim/overhead.hpp"
#include "util/stats.hpp"

namespace {

using namespace fountain;

std::vector<bench::JsonRecord> g_records;

util::SampleSet run_variant(const char* name, const char* kernel,
                            const fec::ErasureCode& code, std::size_t trials) {
  const auto samples = sim::sample_overhead_distribution(code, trials, 2024);
  util::SampleSet set;
  for (const double s : samples) set.add(s);

  std::printf("%s, %zu runs (k = %zu, P = %zu, n = %zu)\n", name, trials,
              code.source_count(), code.symbol_size(), code.encoded_count());
  std::printf("  average overhead: %.4f\n", set.mean());
  std::printf("  maximum overhead: %.4f\n", set.max());
  std::printf("  std deviation:    %.4f\n\n", set.stddev());
  std::printf("  %% unfinished vs length overhead:\n");
  std::printf("  %-10s %s\n", "overhead", "% unfinished");
  for (double x = 0.0; x <= set.max() + 0.01; x += 0.01) {
    std::printf("  %-10.2f %6.2f\n", x, 100.0 * set.fraction_above(x));
  }
  std::printf("\n");
  g_records.push_back({"fig2_overhead",
                       "overhead_mean/k=" + std::to_string(code.source_count()),
                       kernel, 0, 0, 0, set.mean()});
  return set;
}

/// Per-receiver reception overhead for `trials` receivers of a looping
/// Tornado carousel behind independent Bernoulli(loss) links.
std::vector<double> tornado_reception_pool(const core::TornadoCode& code,
                                           double loss, std::size_t trials) {
  util::Rng rng(7177);
  const auto carousel = carousel::Carousel::random_permutation(
      code.encoded_count(), rng);
  const auto reports = sim::sample_carousel_receptions(
      code, carousel,
      [loss](std::size_t trial, util::Rng& factory_rng) {
        return std::make_unique<net::BernoulliLoss>(
            loss, factory_rng() + trial);
      },
      trials, 7178);
  std::vector<double> pool;
  pool.reserve(reports.size());
  const auto k = static_cast<double>(code.source_count());
  for (const auto& report : reports) {
    if (!report.completed) continue;  // horizon-bound stragglers excluded
    pool.push_back(static_cast<double>(report.received) / k - 1.0);
  }
  return pool;
}

/// Same experiment against a fountain: one shared RatelessSource, receivers
/// joining at random phases behind independent lossy links. The index stream
/// is monotone, so a receiver's overhead is pure decoding overhead — loss
/// and join phase only delay completion, they never cause a duplicate.
std::vector<double> lt_reception_pool(const lt::LtCode& code, double loss,
                                      std::size_t trials) {
  util::Rng rng(9177);
  const std::uint64_t k = code.source_count();
  const std::uint64_t spread = k;           // join phases span one "cycle"
  const std::uint64_t budget = 4 * k;       // listen window per receiver

  engine::SessionConfig config;
  config.horizon = spread + budget;
  engine::Session session(code, config);
  const engine::SourceId source = session.add_source(
      std::make_shared<engine::RatelessSource>(code.codec_id()));
  for (std::size_t t = 0; t < trials; ++t) {
    engine::ReceiverSpec spec;
    spec.join = rng.below(spread);
    spec.leave = spec.join + budget;
    const engine::ReceiverId receiver = session.add_receiver(std::move(spec));
    session.subscribe(receiver, source,
                      std::make_unique<engine::LossLink>(
                          std::make_unique<net::BernoulliLoss>(
                              loss, rng() + t)));
  }
  std::vector<double> pool;
  pool.reserve(trials);
  for (const auto& report : session.run()) {
    if (!report.completed) continue;
    pool.push_back(static_cast<double>(report.received) /
                       static_cast<double>(k) -
                   1.0);
  }
  return pool;
}

void worst_receiver_curve(std::size_t k, double loss, std::size_t trials) {
  core::TornadoCode tornado(core::TornadoParams::tornado_a(k, 32, 99));
  lt::LtParams lt_params;
  lt_params.k = k;
  lt_params.symbol_size = 32;
  lt_params.seed = 4242;
  const lt::LtCode lt_code(lt_params);

  const auto tornado_pool = tornado_reception_pool(tornado, loss, trials);
  const auto lt_pool = lt_reception_pool(lt_code, loss, trials);
  if (tornado_pool.empty() || lt_pool.empty()) {
    std::printf("worst-receiver curve skipped: no receiver completed within "
                "the listen budget\n");
    return;
  }

  // Expected worst of N = -E[min of N] over the negated pool, averaged over
  // 100 resampled receiver sets (the paper's Figure 4 methodology applied
  // to reception overhead).
  auto negate = [](std::vector<double> v) {
    for (double& x : v) x = -x;
    return v;
  };
  const auto neg_tornado = negate(tornado_pool);
  const auto neg_lt = negate(lt_pool);

  std::printf("Worst-receiver reception overhead vs population size\n");
  std::printf("(k = %zu, %.0f%% Bernoulli loss, carousel vs rateless stream; "
              "pool of %zu receivers,\n 100 resampled sets per point; "
              "overhead = received/k - 1, duplicates included)\n\n",
              k, loss * 100.0, trials);
  std::printf("%-12s %14s %14s\n", "receivers", "Tornado A", "LT rateless");
  bench::print_rule(42);
  util::Rng rng(515);
  for (const std::size_t receivers : {std::size_t{1}, std::size_t{10},
                                      std::size_t{100}, std::size_t{1000}}) {
    const double worst_tornado =
        -sim::expected_min_over(neg_tornado, receivers, 100, rng);
    const double worst_lt = -sim::expected_min_over(neg_lt, receivers, 100, rng);
    std::printf("%-12zu %14.4f %14.4f\n", receivers, worst_tornado, worst_lt);
    const std::string name = "worst_receiver/N=" + std::to_string(receivers);
    g_records.push_back(
        {"fig2_overhead", name, "tornado_a", 0, 0, 0, worst_tornado});
    g_records.push_back({"fig2_overhead", name, "lt", 0, 0, 0, worst_lt});
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::size_t trials = bench::env_size("FOUNTAIN_FIG2_TRIALS", 10000);
  const std::size_t k = bench::env_size("FOUNTAIN_FIG2_K", 16384);
  // The LT inactivation decoder pays a Gaussian-elimination step per trial,
  // so its distribution runs on a smaller (still overridable) sample.
  const std::size_t lt_trials = bench::env_size(
      "FOUNTAIN_FIG2_LT_TRIALS", std::min<std::size_t>(trials, 1000));
  const std::size_t pool_trials = bench::env_size(
      "FOUNTAIN_FIG2_POOL", std::min<std::size_t>(trials, 1000));

  std::printf("Figure 2: Reception Overhead Variation\n");
  std::printf("(percent of trials unable to reconstruct at each overhead)\n\n");
  {
    core::TornadoCode a(core::TornadoParams::tornado_a(k, 32, 99));
    run_variant("Tornado A", "tornado_a", a, trials);
    core::TornadoCode b(core::TornadoParams::tornado_b(k, 32, 99));
    run_variant("Tornado B", "tornado_b", b, trials);
    lt::LtParams p;
    p.k = k;
    p.symbol_size = 32;
    p.seed = 4242;
    run_variant("LT (robust soliton, inactivation)", "lt", lt::LtCode(p),
                lt_trials);
  }
  worst_receiver_curve(k, 0.10, pool_trials);
  std::printf("Shape check vs paper: the Tornado curves fall from 100%% to "
              "~0%% within a few\npercent of overhead (B left of A); LT sits "
              "near them at this k and tightens as k\ngrows. In the "
              "worst-receiver table Tornado's overhead climbs with the "
              "population\n(wraparound duplicates) while the rateless column "
              "stays flat — the Section 9 claim.\n");
  bench::append_json(g_records);
  return 0;
}
