// Reproduces Figure 2: "Reception Overhead Variation" — for Tornado A and
// Tornado B, the percentage of 10,000 decode trials that cannot finish at a
// given length overhead, plus the avg/max/stddev the paper quotes in the
// text (A: avg 0.0548, max 0.0850, sd 0.0052; B: avg 0.0306, max 0.0550,
// sd 0.0031 — on their custom-designed graphs).
#include <cstdio>

#include "bench_common.hpp"
#include "core/tornado.hpp"
#include "sim/overhead.hpp"
#include "util/stats.hpp"

namespace {

using namespace fountain;

void run_variant(const char* name, const core::TornadoParams& params,
                 std::size_t trials) {
  core::TornadoCode code(params);
  const auto samples = sim::sample_overhead_distribution(code, trials, 2024);
  util::SampleSet set;
  for (const double s : samples) set.add(s);

  std::printf("%s, %zu runs (k = %zu, P = %zu, n = 2k)\n", name, trials,
              params.k, params.symbol_size);
  std::printf("  average overhead: %.4f\n", set.mean());
  std::printf("  maximum overhead: %.4f\n", set.max());
  std::printf("  std deviation:    %.4f\n\n", set.stddev());
  std::printf("  %% unfinished vs length overhead:\n");
  std::printf("  %-10s %s\n", "overhead", "% unfinished");
  for (double x = 0.0; x <= set.max() + 0.01; x += 0.01) {
    std::printf("  %-10.2f %6.2f\n", x, 100.0 * set.fraction_above(x));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::size_t trials = bench::env_size("FOUNTAIN_FIG2_TRIALS", 10000);
  const std::size_t k = bench::env_size("FOUNTAIN_FIG2_K", 16384);

  std::printf("Figure 2: Reception Overhead Variation\n");
  std::printf("(percent of trials unable to reconstruct at each overhead)\n\n");
  run_variant("Tornado A", core::TornadoParams::tornado_a(k, 32, 99), trials);
  run_variant("Tornado B", core::TornadoParams::tornado_b(k, 32, 99), trials);
  std::printf("Shape check vs paper: both curves fall from 100%% to ~0%% "
              "within a few percent\nof overhead; B's curve sits left of A's "
              "(lower overhead), with small variance.\n");
  return 0;
}
