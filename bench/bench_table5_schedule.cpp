// Reproduces Table 5 ("Packet transmission scheme for 4 layers") and
// Figure 7 (the per-round send pattern across blocks), and verifies the One
// Level Property over a full cycle.
#include <cstdio>
#include <set>
#include <string>

#include "bench_common.hpp"
#include "sched/layered_schedule.hpp"

int main() {
  using fountain::sched::LayeredSchedule;
  LayeredSchedule schedule(4, 8);  // one block of 8 packets

  std::printf("Table 5: Packet transmission scheme for 4 layers "
              "(within-block offsets)\n\n");
  std::printf("%-6s %-10s", "Layer", "Bandwidth");
  for (int rd = 1; rd <= 8; ++rd) std::printf(" Rd%-5d", rd);
  std::printf("\n");
  fountain::bench::print_rule(74);
  for (int layer = 3; layer >= 0; --layer) {
    std::printf("%-6d %-10zu",
                layer, schedule.layer_rate(static_cast<unsigned>(layer)));
    for (std::uint64_t round = 0; round < 8; ++round) {
      const auto offsets =
          schedule.layer_block_offsets(static_cast<unsigned>(layer), round);
      std::string cell;
      if (offsets.size() == 1) {
        cell = std::to_string(offsets.front());
      } else {
        cell = std::to_string(offsets.front()) + "-" +
               std::to_string(offsets.back());
      }
      std::printf(" %-6s", cell.c_str());
    }
    std::printf("\n");
  }

  std::printf("\nFigure 7: send pattern at round 4 (g = 4), all blocks\n");
  for (std::uint64_t round = 3; round <= 3; ++round) {
    for (unsigned layer = 0; layer < 4; ++layer) {
      const auto offsets = schedule.layer_block_offsets(layer, round);
      std::printf("  layer %u sends offsets:", layer);
      for (const auto off : offsets) std::printf(" %u", off);
      std::printf("  (in every block)\n");
    }
  }

  // One Level Property check over a larger encoding.
  LayeredSchedule big(4, 64);
  bool ok = true;
  for (unsigned level = 0; level < 4 && ok; ++level) {
    std::set<std::uint32_t> seen;
    const std::size_t per_round = big.level_rate(level) * big.block_count();
    const std::size_t rounds = 64 / per_round;
    std::vector<std::uint32_t> packets;
    for (std::uint64_t j = 0; j < rounds && ok; ++j) {
      for (unsigned l = 0; l <= level; ++l) {
        packets.clear();
        big.append_layer_packets(l, j, packets);
        for (const auto pkt : packets) ok = ok && seen.insert(pkt).second;
      }
    }
    ok = ok && seen.size() == 64;
  }
  std::printf("\nOne Level Property over a 64-packet encoding: %s\n",
              ok ? "HOLDS (no duplicates before full coverage at any level)"
                 : "VIOLATED");
  return ok ? 0 : 1;
}
