// Reproduces Table 1: "Properties of Tornado vs. Reed-Solomon codes" — with
// measured numbers from this implementation instead of asymptotic formulas:
// reception overhead (RS: exactly 0; Tornado: measured), basic operation,
// and measured encode/decode times at a 1 MB reference size.
#include <cstdio>

#include "bench_common.hpp"
#include "core/tornado.hpp"
#include "fec/reed_solomon.hpp"
#include "sim/overhead.hpp"
#include "util/random.hpp"

namespace {

using namespace fountain;

constexpr std::size_t kPacket = 1024;
constexpr std::size_t kRef = 1024;  // 1 MB reference file

double encode_seconds(const fec::ErasureCode& code) {
  util::SymbolMatrix src(code.source_count(), kPacket);
  src.fill_random(1);
  util::SymbolMatrix enc(code.encoded_count(), kPacket);
  return bench::time_median(3, [&] { code.encode(src, enc); });
}

double decode_seconds(const fec::ErasureCode& code, util::Rng& rng) {
  util::SymbolMatrix src(code.source_count(), kPacket);
  src.fill_random(2);
  util::SymbolMatrix enc(code.encoded_count(), kPacket);
  code.encode(src, enc);
  const auto order = rng.permutation(code.encoded_count());
  return bench::time_median(3, [&] {
    auto dec = code.make_decoder();
    for (const auto index : order) {
      if (dec->add_symbol(index, enc.row(index))) break;
    }
  });
}

}  // namespace

int main() {
  util::Rng rng(3);
  core::TornadoCode tornado_a(core::TornadoParams::tornado_a(kRef, kPacket, 4));
  core::TornadoCode tornado_b(core::TornadoParams::tornado_b(kRef, kPacket, 4));
  const auto cauchy =
      fec::make_reed_solomon(fec::RsKind::kCauchy, kRef, kRef, kPacket);

  const auto oa = sim::sample_overhead_distribution(tornado_a, 100, 5);
  const auto ob = sim::sample_overhead_distribution(tornado_b, 100, 5);
  const auto ors = sim::sample_overhead_distribution(*cauchy, 20, 5);

  std::printf("Table 1: Properties of Tornado vs. Reed-Solomon codes "
              "(measured, 1 MB file, P = 1 KB, n = 2k)\n\n");
  std::printf("%-28s %18s %18s %18s\n", "", "Tornado A", "Tornado B",
              "Reed-Solomon");
  bench::print_rule(86);
  std::printf("%-28s %17.4f%% %17.4f%% %17.4f%%\n",
              "Reception overhead (mean)", 100.0 * sim::mean_of(oa),
              100.0 * sim::mean_of(ob), 100.0 * sim::mean_of(ors));
  std::printf("%-28s %18s %18s %18s\n", "Basic operation", "XOR", "XOR",
              "GF(2^16) ops");
  std::printf("%-28s %17.4fs %17.4fs %17.4fs\n", "Encoding time",
              encode_seconds(tornado_a), encode_seconds(tornado_b),
              encode_seconds(*cauchy));
  std::printf("%-28s %17.4fs %17.4fs %17.4fs\n", "Decoding time",
              decode_seconds(tornado_a, rng), decode_seconds(tornado_b, rng),
              decode_seconds(*cauchy, rng));
  std::printf("%-28s %18zu %18zu %18s\n", "Graph edges (XOR cost)",
              tornado_a.cascade().total_edges(),
              tornado_b.cascade().total_edges(), "-");
  std::printf("\nShape check vs paper: RS needs 0 overhead but pays complex "
              "field arithmetic;\nTornado trades a few percent overhead for "
              "orders-of-magnitude faster coding.\n");
  return 0;
}
