// Reproduces Table 3: "Comparison of decoding times for erasure codes."
// Following the paper's methodology: for the RS codes we assume the carousel
// delivered k/2 source packets and k/2 parity packets (the expected mix at
// stretch factor 2), so the decoder must reconstruct x = k/2 missing source
// packets. Tornado decodes from a random (1 + eps) k subset at its natural
// reception overhead.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/tornado.hpp"
#include "fec/reed_solomon.hpp"
#include "util/random.hpp"
#include "util/symbols.hpp"

namespace {

using namespace fountain;

constexpr std::size_t kPacket = 1024;

/// Decode time for an RS code with the paper's half-source/half-parity mix.
double run_rs_decode(const fec::ErasureCode& code, util::Rng& rng) {
  const std::size_t k = code.source_count();
  util::SymbolMatrix source(k, kPacket);
  source.fill_random(2);
  util::SymbolMatrix encoding(code.encoded_count(), kPacket);
  code.encode(source, encoding);

  // Random k/2 of the source packets + the first k/2 parity packets.
  const auto src_order = rng.permutation(k);
  std::vector<std::uint32_t> feed;
  feed.reserve(k);
  for (std::size_t i = 0; i < k / 2; ++i) feed.push_back(src_order[i]);
  for (std::size_t i = 0; i < k - k / 2; ++i) {
    feed.push_back(static_cast<std::uint32_t>(k + i));
  }
  rng.shuffle(feed);

  return bench::time_median(3, [&] {
    auto decoder = code.make_decoder();
    for (const auto index : feed) {
      if (decoder->add_symbol(index, encoding.row(index))) break;
    }
    if (!decoder->complete()) std::abort();
  });
}

double run_tornado_decode(const core::TornadoCode& code, util::Rng& rng) {
  util::SymbolMatrix source(code.source_count(), kPacket);
  source.fill_random(3);
  util::SymbolMatrix encoding(code.encoded_count(), kPacket);
  code.encode(source, encoding);
  const auto order = rng.permutation(code.encoded_count());
  return bench::time_median(3, [&] {
    auto decoder = code.make_decoder();
    for (const auto index : order) {
      if (decoder->add_symbol(index, encoding.row(index))) break;
    }
    if (!decoder->complete()) std::abort();
  });
}

}  // namespace

int main() {
  const std::size_t rs_cap = bench::env_size("FOUNTAIN_RS_DECODE_CAP",
                                             bench::quick_mode() ? 512 : 2048);
  util::Rng rng(7);
  std::vector<bench::JsonRecord> records;
  const auto log = [&records](const char* code, std::size_t k, double secs) {
    records.push_back({"table3_decoding", std::string("decode/k=") +
                                              std::to_string(k),
                       code, secs,
                       static_cast<double>(k) * kPacket / secs / 1e6,
                       static_cast<double>(k) / secs});
  };

  std::printf("Table 3: Decoding Benchmarks (seconds; P = 1 KB, n = 2k)\n");
  std::printf("(RS decodes reconstruct k/2 missing source packets from k/2 "
              "parity packets;\n '~' marks extrapolation beyond the RS cap "
              "of %zu packets — Vandermonde is cubic\n in the erasure count, "
              "Cauchy quadratic)\n\n",
              rs_cap);
  std::printf("%-8s %14s %14s %12s %12s\n", "SIZE", "Vandermonde", "Cauchy",
              "Tornado A", "Tornado B");
  bench::print_rule(66);

  double vand_ref = 0.0;
  std::size_t vand_ref_k = 0;
  double cauchy_ref = 0.0;
  std::size_t cauchy_ref_k = 0;

  for (const auto& size : bench::size_ladder()) {
    const std::size_t k = size.k;
    std::string vand;
    std::string cauchy;
    char buf[32];
    if (k <= rs_cap) {
      const auto vc =
          fec::make_reed_solomon(fec::RsKind::kVandermonde, k, k, kPacket);
      const double tv = run_rs_decode(*vc, rng);
      vand_ref = tv;
      vand_ref_k = k;
      log("vandermonde", k, tv);
      std::snprintf(buf, sizeof(buf), "%.3f", tv);
      vand = buf;
      const auto cc =
          fec::make_reed_solomon(fec::RsKind::kCauchy, k, k, kPacket);
      const double tc = run_rs_decode(*cc, rng);
      cauchy_ref = tc;
      cauchy_ref_k = k;
      log("cauchy", k, tc);
      std::snprintf(buf, sizeof(buf), "%.3f", tc);
      cauchy = buf;
    } else {
      // Vandermonde decode is dominated by O(x^3) Gaussian elimination,
      // Cauchy by the O(x^2) data pass (x = k/2).
      const double rv = static_cast<double>(k) / static_cast<double>(vand_ref_k);
      const double rc =
          static_cast<double>(k) / static_cast<double>(cauchy_ref_k);
      std::snprintf(buf, sizeof(buf), "~%.1f", vand_ref * rv * rv * rv);
      vand = buf;
      std::snprintf(buf, sizeof(buf), "~%.1f", cauchy_ref * rc * rc);
      cauchy = buf;
    }

    core::TornadoCode a(core::TornadoParams::tornado_a(k, kPacket, 42));
    core::TornadoCode b(core::TornadoParams::tornado_b(k, kPacket, 42));
    const double ta = run_tornado_decode(a, rng);
    const double tb = run_tornado_decode(b, rng);
    log("tornado_a", k, ta);
    log("tornado_b", k, tb);

    std::printf("%-8s %14s %14s %12.4f %12.4f\n", size.label, vand.c_str(),
                cauchy.c_str(), ta, tb);
  }

  std::printf("\nShape check vs paper: Tornado decode stays linear in file "
              "size while RS\nblows up polynomially; Tornado B is slower than "
              "A (more edges) but still linear.\n");
  bench::append_json(records);
  return 0;
}
