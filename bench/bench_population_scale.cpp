// Engine scale exercise: one discrete-event session carrying a seven-figure
// receiver population — the regime the paper's "millions of users" argument
// (Sections 1, 8) points at — swept across worker-thread counts to measure
// the parallel engine. Every receiver is heterogeneous AND adaptive: its own
// Gilbert-Elliott burst-loss channel (rates 1-31%, bursts 1.5-10 packets),
// its own join phase, a policy drawn from the three adaptation planes (fixed
// level, Section 7.2 burst-probe, cc::LossDrivenPolicy), a tenth suffering a
// mid-session loss-regime change and a twentieth leaving early (churn).
//
// Each thread count rebuilds the identical seeded scenario and reruns it, so
// beyond the timing the sweep doubles as the engine's cross-thread-count
// determinism gate at population scale: an FNV-1a hash over every report
// field must match the 1-thread run exactly, or the bench fails.
//
//   ./bench_population_scale --threads 1,2,4
//   FOUNTAIN_POP_RX=1000000 FOUNTAIN_POP_K=256 ./bench_population_scale
//
// FOUNTAIN_POP_THREADS is the env form of --threads (default "1,2,4").
// FOUNTAIN_POP_MIN_SPEEDUP, when set (e.g. "3.0"), additionally gates the
// best-vs-1-thread speedup — opt-in because single-core builders (this
// repo's default CI runner included) cannot speed up at all.
// FOUNTAIN_BENCH_QUICK=1 shrinks the population to a smoke-test footprint.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cc/policies.hpp"
#include "core/tornado.hpp"
#include "engine/session.hpp"
#include "net/loss.hpp"
#include "proto/server.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace fountain;

struct RunOutcome {
  double seconds = 0;
  std::uint64_t packets = 0;  // addressed packet events
  std::size_t completed = 0;
  std::size_t leavers = 0;
  std::size_t incomplete_stayers = 0;  // receivers that neither left nor
                                       // finished inside the horizon
  double eta_mean = 0;
  std::uint64_t report_hash = 0;
};

/// FNV-1a over every field of every report, in receiver order — the
/// cross-thread-count equivalence fingerprint.
class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Builds the seeded scenario from scratch and runs it at `threads` workers.
/// Every random draw comes from one Rng(4242) stream consumed in receiver
/// order, so each call constructs the identical population and only the
/// thread count differs.
RunOutcome run_once(std::size_t receivers, std::size_t k, std::size_t threads,
                    std::uint64_t horizon) {
  core::TornadoCode code(core::TornadoParams::tornado_a(k, 2, 41));
  proto::ProtocolConfig proto_cfg;
  proto_cfg.layers = 4;
  const auto server = std::make_shared<proto::FountainServer>(
      proto_cfg, code.encoded_count(), 0xf00d, code.codec_id());

  engine::SessionConfig config;
  config.horizon = horizon;
  config.threads = threads;
  engine::Session session(code, config);
  const engine::SourceId src = session.add_source(server);

  util::Rng rng(4242);
  std::size_t leavers = 0;
  for (std::size_t r = 0; r < receivers; ++r) {
    engine::ReceiverSpec spec;
    spec.join = rng.below(256);
    if (r % 20 == 19) {  // churn: departs well before the horizon
      spec.leave = spec.join + 200 + rng.below(400);
      ++leavers;
    }
    spec.policy.seed = rng();
    spec.policy.initial_level =
        static_cast<unsigned>(rng.below(proto_cfg.layers));
    switch (r % 3) {
      case 0:  // fixed level — the structural baseline population
        break;
      case 1:  // Section 7.2 burst-probe machinery + synthetic environment
        spec.policy.adaptive = true;
        spec.policy.initial_capacity =
            static_cast<unsigned>(rng.below(proto_cfg.layers));
        spec.policy.capacity_change_prob = 0.01 * rng.uniform();
        spec.policy.congestion_extra_loss = 0.4 * rng.uniform();
        break;
      default: {  // loss-driven controller with per-receiver knobs
        cc::LossDrivenConfig knobs;
        knobs.window_rounds = 8 + rng.below(16);
        knobs.initial_join_backoff = 16 + rng.below(32);
        spec.controller = std::make_unique<cc::LossDrivenPolicy>(knobs);
        break;
      }
    }
    const engine::ReceiverId id = session.add_receiver(std::move(spec));

    const double rate = 0.01 + 0.30 * rng.uniform();
    const double burst = 1.5 + 8.5 * rng.uniform();
    auto link = std::make_unique<engine::LossLink>(
        std::make_unique<net::GilbertElliottLoss>(rate, burst, rng()));
    if (r % 10 == 9) {  // regime change: the loss rate halves or doubles
      const double rate2 = r % 20 == 9 ? rate * 0.5 : std::min(0.5, rate * 2);
      link->add_regime(spec.join + 500,
                       std::make_unique<net::GilbertElliottLoss>(
                           rate2, burst, rng()));
    }
    session.subscribe(id, src, std::move(link));
  }

  util::WallTimer timer;
  const auto reports = session.run();

  RunOutcome out;
  out.seconds = timer.seconds();
  out.leavers = leavers;
  util::RunningStats eta;
  Fnv1a fnv;
  for (std::size_t r = 0; r < reports.size(); ++r) {
    const auto& rep = reports[r];
    out.packets += rep.addressed;
    if (!rep.completed && r % 20 != 19) ++out.incomplete_stayers;
    fnv.mix(rep.completed ? 1 : 0);
    fnv.mix(static_cast<std::uint64_t>(rep.outcome));
    fnv.mix(rep.completed_at);
    fnv.mix(rep.addressed);
    fnv.mix(rep.received);
    fnv.mix(rep.distinct);
    fnv.mix(rep.lost);
    fnv.mix(rep.rejected);
    fnv.mix(rep.corrupt_rejected);
    fnv.mix(rep.duplicates_dropped);
    fnv.mix(rep.level_changes);
    fnv.mix(rep.final_level);
    fnv.mix(rep.peak_level);
    if (!rep.completed) continue;
    ++out.completed;
    eta.add(rep.efficiency(k));
  }
  out.eta_mean = eta.mean();
  out.report_hash = fnv.value();
  return out;
}

std::vector<std::size_t> parse_threads(const std::string& spec) {
  std::vector<std::size_t> threads;
  std::size_t value = 0;
  bool pending = false;
  for (const char c : spec) {
    if (c >= '0' && c <= '9') {
      value = 10 * value + static_cast<std::size_t>(c - '0');
      pending = true;
    } else if (pending) {
      threads.push_back(value);
      value = 0;
      pending = false;
    }
  }
  if (pending) threads.push_back(value);
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t receivers = bench::env_size(
      "FOUNTAIN_POP_RX", bench::quick_mode() ? 5000 : 1000000);
  const std::size_t k = bench::env_size("FOUNTAIN_POP_K", 256);
  const std::uint64_t horizon = bench::env_size("FOUNTAIN_POP_HORIZON", 6000);

  std::string threads_spec = "1,2,4";
  if (const char* env = std::getenv("FOUNTAIN_POP_THREADS")) {
    if (env[0] != '\0') threads_spec = env;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads_spec = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads_spec = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--threads 1,2,4]\n", argv[0]);
      return 2;
    }
  }
  const std::vector<std::size_t> sweep = parse_threads(threads_spec);
  if (sweep.empty()) {
    std::fprintf(stderr, "no thread counts in \"%s\"\n", threads_spec.c_str());
    return 2;
  }

  std::printf("population scale: %zu adaptive receivers, k = %zu, "
              "4 layers, heterogeneous\nGilbert-Elliott loss, mixed "
              "fixed/burst-probe/loss-driven policies, staggered joins,\n"
              "10%% mid-session regime changes, 5%% churn; threads sweep:"
              " %s\n\n",
              receivers, k, threads_spec.c_str());

  std::vector<bench::JsonRecord> records;
  double seconds_at_1 = 0;
  double best_speedup = 1.0;
  std::uint64_t golden_hash = 0;
  bool hash_mismatch = false;
  bool incomplete = false;

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const std::size_t threads = sweep[i];
    const RunOutcome out = run_once(receivers, k, threads, horizon);
    const double events_per_s =
        static_cast<double>(out.packets) / out.seconds;
    std::printf("threads=%zu: %.2f s  (%.0f receivers/s, %.1f M packet "
                "events/s)  report hash %016llx\n",
                threads, out.seconds,
                static_cast<double>(receivers) / out.seconds,
                events_per_s / 1e6,
                static_cast<unsigned long long>(out.report_hash));

    if (i == 0) {
      golden_hash = out.report_hash;
      std::printf("  completed: %zu / %zu (%zu deliberate leavers), "
                  "eta mean %.3f\n",
                  out.completed, receivers, out.leavers, out.eta_mean);
      incomplete = out.incomplete_stayers != 0;
    } else if (out.report_hash != golden_hash) {
      std::printf("  DETERMINISM VIOLATION: hash differs from %zu-thread "
                  "run\n", sweep[0]);
      hash_mismatch = true;
    }
    if (threads == 1) seconds_at_1 = out.seconds;
    if (seconds_at_1 > 0 && threads > 1) {
      best_speedup = std::max(best_speedup, seconds_at_1 / out.seconds);
    }

    bench::JsonRecord rec;
    rec.bench = "population_scale";
    rec.name = "threads=" + std::to_string(threads);
    rec.kernel = "tornado_a";
    rec.seconds = out.seconds;
    rec.symbols_per_s = events_per_s;
    rec.value = static_cast<double>(receivers) / out.seconds;
    records.push_back(rec);
    bench::JsonRecord eta_rec;
    eta_rec.bench = "population_scale";
    eta_rec.name = "eta_mean/threads=" + std::to_string(threads);
    eta_rec.kernel = "tornado_a";
    eta_rec.value = out.eta_mean;
    records.push_back(eta_rec);
  }

  if (seconds_at_1 > 0 && sweep.size() > 1) {
    std::printf("\nbest speedup over 1 thread: %.2fx\n", best_speedup);
    bench::JsonRecord rec;
    rec.bench = "population_scale";
    rec.name = "speedup_best_vs_1";
    rec.kernel = "tornado_a";
    rec.value = best_speedup;
    records.push_back(rec);
  }
  bench::append_json(records);

  if (hash_mismatch) return 1;
  // Sanity on the golden run: everyone who stayed finished in the horizon.
  if (incomplete) return 1;
  if (const char* v = std::getenv("FOUNTAIN_POP_MIN_SPEEDUP")) {
    const double want = std::atof(v);
    if (want > 0 && best_speedup < want) {
      std::fprintf(stderr, "speedup %.2fx below required %.2fx\n",
                   best_speedup, want);
      return 1;
    }
  }
  return 0;
}
