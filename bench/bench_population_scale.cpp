// Engine scale exercise: one discrete-event session carrying a six-figure
// receiver population — the regime the ROADMAP's "millions of users" north
// star points at and the lockstep loops could not touch. Every receiver is
// heterogeneous: its own Gilbert-Elliott burst-loss channel (rates 1-40%,
// bursts 1.5-20 packets), its own join phase spread over two carousel
// cycles, a tenth of them suffering a mid-session loss-regime change and a
// twentieth leaving early (churn). Cohort batching keeps memory at
// O(cohort_size) decoders regardless of population.
//
//   FOUNTAIN_POP_RX=100000 FOUNTAIN_POP_K=1024 ./bench_population_scale
//
// FOUNTAIN_BENCH_QUICK=1 shrinks the population to a smoke-test footprint.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "engine/session.hpp"
#include "engine/sources.hpp"
#include "net/loss.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace fountain;

  const std::size_t receivers = bench::env_size(
      "FOUNTAIN_POP_RX", bench::quick_mode() ? 5000 : 100000);
  const std::size_t k = bench::env_size("FOUNTAIN_POP_K", 1024);

  core::TornadoCode code(core::TornadoParams::tornado_a(k, 2, 41));
  util::Rng rng(4242);
  const auto carousel =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);
  const std::uint64_t cycle = carousel.cycle_length();

  std::printf("population scale: %zu structural receivers, k = %zu "
              "(n = %zu), heterogeneous\nGilbert-Elliott loss, staggered "
              "joins, 10%% mid-session regime changes, 5%% churn\n\n",
              receivers, k, code.encoded_count());

  engine::SessionConfig config;
  config.horizon = 400ull * cycle;
  engine::Session session(code, config);
  // Batched firings (32 slots per event) keep the event queue off the
  // per-packet path; joins land on the same grid.
  constexpr std::uint64_t kBatch = 32;
  const engine::SourceId src = session.add_source(
      std::make_shared<engine::CarouselSource>(carousel, code.codec_id(),
                                               kBatch),
      /*start=*/0, /*period=*/kBatch);

  std::size_t leavers = 0;
  for (std::size_t r = 0; r < receivers; ++r) {
    engine::ReceiverSpec spec;
    spec.join = rng.below(2 * cycle / kBatch) * kBatch;
    if (r % 20 == 19) {  // churn: departs after roughly half a cycle
      spec.leave = spec.join + cycle / 2;
      ++leavers;
    }
    const engine::ReceiverId id = session.add_receiver(std::move(spec));

    const double rate = 0.01 + 0.39 * rng.uniform();
    const double burst = 1.5 + 18.5 * rng.uniform();
    auto link = std::make_unique<engine::LossLink>(
        std::make_unique<net::GilbertElliottLoss>(rate, burst, rng()));
    if (r % 10 == 9) {  // regime change: the loss rate halves or doubles
      // (capped at 0.5 so the chain stays feasible at the shortest bursts)
      const double rate2 = r % 20 == 9 ? rate * 0.5 : std::min(0.5, rate * 2);
      link->add_regime(spec.join + cycle,
                       std::make_unique<net::GilbertElliottLoss>(
                           rate2, burst, rng()));
    }
    session.subscribe(id, src, std::move(link));
  }

  util::WallTimer timer;
  const auto reports = session.run();
  const double elapsed = timer.seconds();

  util::RunningStats eta;
  std::uint64_t packets = 0;
  std::size_t completed = 0;
  for (const auto& rep : reports) {
    packets += rep.addressed;
    if (!rep.completed) continue;
    ++completed;
    eta.add(rep.efficiency(k));
  }

  std::printf("completed: %zu / %zu (%zu deliberate leavers)\n", completed,
              receivers, leavers);
  std::printf("eta: mean %.3f  min %.3f  max %.3f\n", eta.mean(), eta.min(),
              eta.max());
  std::printf("wall time: %.2f s  (%.0f receivers/s, %.1f M packet events/s)"
              "\n",
              elapsed, static_cast<double>(receivers) / elapsed,
              static_cast<double>(packets) / elapsed / 1e6);

  std::vector<bench::JsonRecord> records;
  bench::JsonRecord rate_record;
  rate_record.bench = "population_scale";
  rate_record.name = "receivers_per_s";
  rate_record.kernel = "tornado_a";
  rate_record.seconds = elapsed;
  rate_record.value = static_cast<double>(receivers) / elapsed;
  records.push_back(rate_record);
  bench::JsonRecord eta_record;
  eta_record.bench = "population_scale";
  eta_record.name = "eta_mean";
  eta_record.kernel = "tornado_a";
  eta_record.value = eta.mean();
  records.push_back(eta_record);
  bench::append_json(records);

  // Sanity: everyone who stayed should have finished inside the horizon.
  return completed + leavers == receivers ? 0 : 1;
}
