// Ablation: graph-design choices behind the Tornado code — left degree
// distribution (optimised spikes vs the analytical heavy-tail family) and
// check-degree policy (right-regular dealing vs Poisson sockets). Reports
// mean/p99 reception overhead and edge counts (the decode-cost proxy).
// This documents why the shipped Tornado A/B parameters look the way they
// do; the paper's authors performed the same kind of design search ([8,9]).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/tornado.hpp"
#include "sim/overhead.hpp"
#include "util/stats.hpp"

namespace {

using namespace fountain;

void report(const char* name, const core::TornadoParams& params,
            std::size_t trials) {
  core::TornadoCode code(params);
  const auto samples = sim::sample_overhead_distribution(code, trials, 31);
  util::SampleSet set;
  for (const double s : samples) set.add(s);
  std::printf("%-34s %10.4f %10.4f %10.4f %12zu\n", name, set.mean(),
              set.percentile(0.99), set.max(), code.cascade().total_edges());
}

}  // namespace

int main() {
  const std::size_t k = bench::env_size("FOUNTAIN_AB_K", 4096);
  const std::size_t trials = bench::env_size("FOUNTAIN_AB_TRIALS", 120);
  std::printf("Ablation: degree-distribution and check-policy choices "
              "(k = %zu, %zu trials)\n\n",
              k, trials);
  std::printf("%-34s %10s %10s %10s %12s\n", "construction", "mean ovhd",
              "p99", "max", "edges");
  bench::print_rule(80);

  {
    auto p = core::TornadoParams::tornado_a(k, 2, 3);
    report("Tornado A (optimised spikes)", p, trials);
  }
  {
    auto p = core::TornadoParams::tornado_b(k, 2, 3);
    report("Tornado B (optimised spikes)", p, trials);
  }
  for (const unsigned d : {4u, 8u, 16u, 32u}) {
    auto p = core::TornadoParams::tornado_a(k, 2, 3);
    p.left_spikes.clear();
    p.heavy_tail_d = d;
    report(("heavy-tail D=" + std::to_string(d)).c_str(), p, trials);
  }
  {
    auto p = core::TornadoParams::tornado_a(k, 2, 3);
    p.check_policy = core::CheckDegreePolicy::kPoisson;
    report("Tornado A + Poisson checks", p, trials);
  }
  {
    auto p = core::TornadoParams::tornado_a(k, 2, 3);
    p.left_spikes.clear();
    p.heavy_tail_d = 8;
    p.check_policy = core::CheckDegreePolicy::kPoisson;
    report("heavy-tail D=8 + Poisson checks", p, trials);
  }
  std::printf("\nReading: right-regular checks and the optimised spike "
              "distributions give the\nlowest overhead; Poisson checks and "
              "plain heavy-tail cost several points of\noverhead at equal "
              "edge budgets. More edges (Tornado B) buy a lower mean at\n"
              "higher decode cost.\n");
  return 0;
}
