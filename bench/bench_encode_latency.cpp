// Encode-path latency: what the codec API v2 redesign buys a server.
//
// For each codec and file size this measures, from the moment a (code,
// source) pair exists:
//  * time-to-first-symbol — legacy whole-block encode() must finish the full
//    n-symbol block before the first packet can leave; make_encoder() pays
//    only its per-transfer precomputation (for Tornado, the one cascade XOR
//    pass — the RS tail is deferred to the symbols that need it) plus one
//    write_symbol. Measured against the *worst-case* first symbol (index
//    n - 1, a tail/parity row), so the encoder number is an upper bound.
//  * steady-state symbol rate — symbols/s streaming one full carousel cycle
//    through write_symbol into a single scratch buffer, vs the amortized
//    whole-block rate n / t_block.
//  * encode-buffer memory — the n x P encoding a legacy producer holds, vs
//    the encoder's state_bytes() beyond the borrowed source.
//
// Emits JSON-lines records to BENCH_results.json like the other benches.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/tornado.hpp"
#include "fec/codec_registry.hpp"
#include "fec/interleaved.hpp"
#include "fec/reed_solomon.hpp"
#include "util/symbols.hpp"

namespace {

using namespace fountain;

constexpr std::size_t kPacket = 1024;

std::vector<bench::JsonRecord> g_records;

struct Row {
  double t_block = 0;        // whole-block encode (= legacy TTFS)
  double t_first = 0;        // make_encoder + worst-case write_symbol
  double block_rate = 0;     // symbols/s, amortized whole-block
  double stream_rate = 0;    // symbols/s, steady-state encoder streaming
  std::size_t legacy_bytes = 0;
  std::size_t state_bytes = 0;
};

Row measure(const fec::ErasureCode& code) {
  const std::size_t n = code.encoded_count();
  util::SymbolMatrix source(code.source_count(), kPacket);
  source.fill_random(11);

  Row row;
  {
    util::SymbolMatrix encoding(n, kPacket);
    row.t_block = bench::time_median(3, [&] { code.encode(source, encoding); });
    row.legacy_bytes = encoding.size_bytes();
  }
  util::SymbolMatrix scratch(1, kPacket);
  row.t_first = bench::time_median(3, [&] {
    const auto encoder = code.make_encoder(source);
    encoder->write_symbol(static_cast<std::uint32_t>(n - 1), scratch.row(0));
  });

  const auto encoder = code.make_encoder(source);
  row.state_bytes = encoder->state_bytes();
  const double t_stream = bench::time_median(3, [&] {
    for (std::size_t i = 0; i < n; ++i) {
      encoder->write_symbol(static_cast<std::uint32_t>(i), scratch.row(0));
    }
  });
  row.block_rate = static_cast<double>(n) / row.t_block;
  row.stream_rate = static_cast<double>(n) / t_stream;
  return row;
}

void report(const char* codec, std::size_t k, const Row& row) {
  std::printf("%-12s %8zu %12.4f %12.5f %9.1fx %11.0f %11.0f %7.1f %7.1f\n",
              codec, k, row.t_block, row.t_first, row.t_block / row.t_first,
              row.block_rate, row.stream_rate,
              static_cast<double>(row.legacy_bytes) / 1048576.0,
              static_cast<double>(row.state_bytes) / 1048576.0);
  const std::string suffix = "/k=" + std::to_string(k);
  g_records.push_back({"encode_latency", "ttfs_block" + suffix, codec,
                       row.t_block, 0, 0, 0});
  g_records.push_back({"encode_latency", "ttfs_encoder" + suffix, codec,
                       row.t_first, 0, 0, row.t_block / row.t_first});
  g_records.push_back({"encode_latency", "steady_block" + suffix, codec, 0, 0,
                       row.block_rate, 0});
  g_records.push_back({"encode_latency", "steady_encoder" + suffix, codec, 0,
                       0, row.stream_rate, 0});
  g_records.push_back({"encode_latency", "state_bytes" + suffix, codec, 0, 0,
                       0, static_cast<double>(row.state_bytes)});
}

}  // namespace

int main() {
  const std::size_t k_max =
      bench::env_size("FOUNTAIN_LATENCY_KMAX", bench::quick_mode() ? 4096
                                                                   : 16384);
  // The RS cap must reach the ladder's first rung (k = 1024) even in quick
  // mode, or the RS codecs silently drop out of the CI records.
  const std::size_t rs_cap = bench::env_size("FOUNTAIN_LATENCY_RS_CAP",
                                             bench::quick_mode() ? 1024
                                                                 : 2048);

  std::printf("Encode latency: streaming encoder API vs legacy whole-block "
              "(P = 1 KB, n = 2k)\n");
  std::printf("(t_first = time to worst-case first symbol; buf = legacy "
              "n*P encode buffer,\n state = encoder-owned symbol state — "
              "both in MB, source excluded from both)\n\n");
  std::printf("%-12s %8s %12s %12s %10s %11s %11s %7s %7s\n", "CODE", "k",
              "t_block(s)", "t_first(s)", "speedup", "blk sym/s", "enc sym/s",
              "buf MB", "st MB");
  bench::print_rule(96);

  for (std::size_t k = 1024; k <= k_max; k *= 4) {
    {
      core::TornadoCode code(core::TornadoParams::tornado_a(k, kPacket, 42));
      report("tornado_a", k, measure(code));
    }
    {
      core::TornadoCode code(core::TornadoParams::tornado_b(k, kPacket, 42));
      report("tornado_b", k, measure(code));
    }
    if (k <= rs_cap) {
      const auto code =
          fec::make_reed_solomon(fec::RsKind::kCauchy, k, k, kPacket);
      report("cauchy", k, measure(*code));
      const auto vand =
          fec::make_reed_solomon(fec::RsKind::kVandermonde, k, k, kPacket);
      report("vandermonde", k, measure(*vand));
    } else {
      std::printf("%-12s %8zu   (skipped: beyond RS cap of %zu)\n",
                  "cauchy/vand", k, rs_cap);
    }
    {
      fec::InterleavedCode code(k, (k + 49) / 50, kPacket);
      report("inter50", k, measure(code));
    }
  }

  std::printf("\nShape check: the encoder's first symbol costs one cascade "
              "pass (Tornado) or one\ngenerator row (RS/interleaved) instead "
              "of the whole block — the gap widens with k\n— while "
              "steady-state rates stay comparable and the n*P encode buffer "
              "disappears.\n");
  bench::append_json(g_records);
  return 0;
}
