// Reproduces Figure 4: "Comparison of reception efficiency for codes with
// comparable decoding times" — 1 MB file, independent loss p in {0.1, 0.5},
// receiver populations 1 .. 10000. Codes: Tornado A, interleaved with block
// size ~50, interleaved with block size ~20 (Cauchy blocks of those sizes
// decode no faster than Tornado, Section 6.2).
//
// Each receiver joins the carousel at a random phase with an independent
// loss process; we gather a large pool of per-receiver efficiency samples
// per code and report the population average plus the expected worst-case
// over R receivers (average of 100 resampled receiver sets, as in the
// paper).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "fec/interleaved.hpp"
#include "sim/overhead.hpp"
#include "util/random.hpp"

namespace {

using namespace fountain;

std::vector<bench::JsonRecord> g_records;

std::vector<double> efficiency_pool(const fec::ErasureCode& code,
                                    const carousel::Carousel& carousel,
                                    double p, std::size_t trials,
                                    std::uint64_t seed, const char* label) {
  const auto results = sim::sample_carousel_receptions(
      code, carousel,
      [p](std::size_t, util::Rng& rng) {
        return std::make_unique<net::BernoulliLoss>(p, rng());
      },
      trials, seed);
  std::vector<double> pool;
  pool.reserve(results.size());
  for (const auto& r : results) {
    pool.push_back(r.efficiency(code.source_count()));
  }
  bench::JsonRecord record;
  record.bench = "fig4_receivers";
  record.name = std::string("eta_avg/p=") + (p < 0.3 ? "0.1" : "0.5");
  record.kernel = label;
  record.value = sim::mean_of(pool);
  g_records.push_back(record);
  return pool;
}

}  // namespace

int main() {
  const std::size_t k = 1024;  // 1 MB of 1 KB packets
  const std::size_t pool_size = bench::env_size("FOUNTAIN_FIG4_POOL", 2000);
  const std::size_t experiments = 100;

  core::TornadoCode tornado(core::TornadoParams::tornado_a(k, 2, 31));
  fec::InterleavedCode inter50(k, (k + 49) / 50, 2);  // ~50-packet blocks
  fec::InterleavedCode inter20(k, (k + 19) / 20, 2);  // ~20-packet blocks

  util::Rng crng(32);
  const auto tornado_carousel =
      carousel::Carousel::random_permutation(tornado.encoded_count(), crng);
  const auto inter50_carousel =
      carousel::Carousel::sequential(inter50.encoded_count());
  const auto inter20_carousel =
      carousel::Carousel::sequential(inter20.encoded_count());

  std::printf("Figure 4: Reception efficiency on a 1 MB file vs number of "
              "receivers\n(avg = population mean; worst = expected minimum "
              "over R receivers, %zu-sample pools)\n\n",
              pool_size);

  for (const double p : {0.1, 0.5}) {
    std::printf("p = %.1f\n", p);
    std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "Receivers",
                "TornA avg", "TornA worst", "I50 avg", "I50 worst", "I20 avg",
                "I20 worst");
    bench::print_rule(88);
    const auto pool_t = efficiency_pool(tornado, tornado_carousel, p,
                                        pool_size, 100 + p * 10, "tornado_a");
    const auto pool_50 = efficiency_pool(inter50, inter50_carousel, p,
                                         pool_size, 200 + p * 10, "inter50");
    const auto pool_20 = efficiency_pool(inter20, inter20_carousel, p,
                                         pool_size, 300 + p * 10, "inter20");
    util::Rng rng(77);
    for (const std::size_t receivers : {1ul, 10ul, 100ul, 1000ul, 10000ul}) {
      std::printf("%-10zu %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f\n",
                  receivers, sim::mean_of(pool_t),
                  sim::expected_min_over(pool_t, receivers, experiments, rng),
                  sim::mean_of(pool_50),
                  sim::expected_min_over(pool_50, receivers, experiments, rng),
                  sim::mean_of(pool_20),
                  sim::expected_min_over(pool_20, receivers, experiments, rng));
    }
    std::printf("\n");
  }
  std::printf("Shape check vs paper: Tornado's worst-case receiver barely "
              "degrades with\npopulation size; interleaved efficiency decays "
              "with receivers, is much worse at\nsmaller blocks (k=20) and "
              "collapses at p = 0.5.\n");
  bench::append_json(g_records);
  return 0;
}
