// Reproduces Table 4: "Speedup of Tornado A codes over interleaved codes
// with comparable efficiency."
//
// Methodology follows Section 6.1: for each (file size, loss rate) we find
// the maximum number of blocks an interleaved code can use while keeping
// P[reception overhead > 0.07] below 1% (simulated over carousel reception),
// model its decoding time as blocks * t_cauchy(k_b) with t_cauchy a
// quadratic fit to measured Cauchy block decodes, and divide by the measured
// Tornado A decode time.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "fec/interleaved.hpp"
#include "fec/reed_solomon.hpp"
#include "sim/overhead.hpp"
#include "util/stats.hpp"
#include "util/random.hpp"

namespace {

using namespace fountain;

constexpr std::size_t kPacket = 1024;

/// 99th-percentile carousel reception overhead for an interleaved code with
/// `blocks` blocks at loss rate p.
double interleaved_overhead_p99(std::size_t total, std::size_t blocks,
                                double p, std::size_t trials,
                                std::uint64_t seed) {
  fec::InterleavedCode code(total, blocks, 2);
  const auto carousel = carousel::Carousel::sequential(code.encoded_count());
  const auto results = sim::sample_carousel_receptions(
      code, carousel,
      [p](std::size_t, util::Rng& rng) {
        return std::make_unique<net::BernoulliLoss>(p, rng());
      },
      trials, seed);
  util::SampleSet overheads;
  for (const auto& r : results) {
    overheads.add(static_cast<double>(r.received) /
                      static_cast<double>(total) -
                  1.0);
  }
  return overheads.percentile(0.99);
}

/// Largest block count keeping the 99th-percentile overhead under 0.07.
std::size_t max_blocks(std::size_t total, double p, std::size_t trials) {
  std::size_t best = 1;
  std::size_t lo = 1;
  std::size_t hi = std::min<std::size_t>(total / 4, 4096);
  while (lo <= hi) {
    const std::size_t mid = (lo + hi) / 2;
    const double p99 = interleaved_overhead_p99(
        total, mid, p, trials, 1000 + mid);
    if (p99 <= 0.07) {
      best = mid;
      lo = mid + 1;
    } else {
      if (mid == 0) break;
      hi = mid - 1;
    }
  }
  return best;
}

/// Measured Cauchy decode seconds for one block of k_b source packets with
/// k_b/2 missing (the stretch-2 carousel mix).
double cauchy_block_decode_seconds(std::size_t kb, util::Rng& rng) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, kb, kb,
                                           kPacket);
  util::SymbolMatrix source(kb, kPacket);
  source.fill_random(4);
  util::SymbolMatrix encoding(2 * kb, kPacket);
  code->encode(source, encoding);
  const auto order = rng.permutation(kb);
  std::vector<std::uint32_t> feed;
  for (std::size_t i = 0; i < kb / 2; ++i) feed.push_back(order[i]);
  for (std::size_t i = 0; i < kb - kb / 2; ++i) {
    feed.push_back(static_cast<std::uint32_t>(kb + i));
  }
  return bench::time_median(3, [&] {
    auto dec = code->make_decoder();
    for (const auto index : feed) {
      if (dec->add_symbol(index, encoding.row(index))) break;
    }
  });
}

double tornado_decode_seconds(std::size_t k, util::Rng& rng) {
  core::TornadoCode code(core::TornadoParams::tornado_a(k, kPacket, 5));
  util::SymbolMatrix source(k, kPacket);
  source.fill_random(5);
  util::SymbolMatrix encoding(code.encoded_count(), kPacket);
  code.encode(source, encoding);
  const auto order = rng.permutation(code.encoded_count());
  return bench::time_median(3, [&] {
    auto dec = code.make_decoder();
    for (const auto index : order) {
      if (dec->add_symbol(index, encoding.row(index))) break;
    }
  });
}

}  // namespace

int main() {
  const std::size_t trials = bench::env_size("FOUNTAIN_T4_TRIALS", 100);
  util::Rng rng(17);

  // Quadratic fit t = c * kb^2 from measured block decodes.
  double c_fit = 0.0;
  {
    double num = 0.0;
    double den = 0.0;
    for (const std::size_t kb : {32ul, 64ul, 128ul, 256ul}) {
      const double t = cauchy_block_decode_seconds(kb, rng);
      const double k2 = static_cast<double>(kb) * static_cast<double>(kb);
      num += t * k2;
      den += k2 * k2;
    }
    c_fit = num / den;
  }
  std::printf("Table 4: Speedup factor of Tornado A over interleaved codes "
              "of comparable efficiency\n");
  std::printf("(interleaved block count = max B with P[overhead > 0.07] < "
              "1%%; measured Cauchy\n block-decode fit t = %.3g * k_b^2 s)\n\n",
              c_fit);
  std::printf("%-8s %10s %10s %10s %10s %10s\n", "SIZE", "p=0.01", "p=0.05",
              "p=0.10", "p=0.20", "p=0.50");
  bench::print_rule(64);

  const double losses[] = {0.01, 0.05, 0.10, 0.20, 0.50};
  for (const auto& size : bench::size_ladder()) {
    const std::size_t k = size.k;
    const double t_tornado = tornado_decode_seconds(k, rng);
    std::printf("%-8s", size.label);
    for (const double p : losses) {
      const std::size_t blocks = max_blocks(k, p, trials);
      const double kb = static_cast<double>(k) / static_cast<double>(blocks);
      const double t_inter = static_cast<double>(blocks) * c_fit * kb * kb;
      std::printf(" %10.1f", t_inter / t_tornado);
    }
    std::printf("\n");
  }
  std::printf("\nShape check vs paper: speedups grow with both file size and "
              "loss rate,\nreaching orders of magnitude at 16 MB / 50%% "
              "loss.\n");
  return 0;
}
