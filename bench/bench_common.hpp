// Shared helpers for the paper-reproduction benches: the file-size ladder of
// Tables 2-4, wall-clock repetition, aligned table printing, and the
// machine-readable JSON perf log (BENCH_results.json) that tracks the
// repo's throughput trajectory from PR 2 onward.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace fountain::bench {

/// The paper's benchmark ladder: file sizes with 1 KB packets.
struct FileSize {
  const char* label;
  std::size_t k;  // packets of 1 KB
};

/// FOUNTAIN_BENCH_QUICK=1 (the CI mode) shortens sweeps to a smoke-test
/// footprint; benches should also shrink repetition caps when it is set.
inline bool quick_mode() {
  const char* v = std::getenv("FOUNTAIN_BENCH_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline const std::vector<FileSize>& size_ladder() {
  static const std::vector<FileSize> sizes = {
      {"250 KB", 250},  {"500 KB", 500},  {"1 MB", 1024},  {"2 MB", 2048},
      {"4 MB", 4096},   {"8 MB", 8192},   {"16 MB", 16384}};
  static const std::vector<FileSize> quick(sizes.begin(), sizes.begin() + 3);
  return quick_mode() ? quick : sizes;
}

/// Reads an environment override (used to shrink or extend sweeps).
inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

/// Median of `reps` timed runs of `fn` (seconds).
inline double time_median(int reps, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    util::WallTimer timer;
    fn();
    times.push_back(timer.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Version of the JSON-lines record layout below. Bump when a field is
/// added, removed, or changes meaning; tools/bench_diff refuses to compare
/// files whose records carry a different version, so a stale checked-in
/// baseline fails loudly instead of gating against garbage.
inline constexpr int kJsonSchemaVersion = 2;

/// One machine-readable measurement. Collected per bench run and appended to
/// the JSON perf log.
struct JsonRecord {
  std::string bench;    // which bench binary, e.g. "micro_kernels"
  std::string name;     // case within the bench, e.g. "xor_block/1024"
  std::string kernel;   // code/kernel variant, e.g. "avx2", "tornado_a"
  double seconds = 0;   // wall seconds per op (micro benches average a
                        // timing window; the table benches take a median)
  double mb_per_s = 0;  // payload throughput (0 when not meaningful)
  double symbols_per_s = 0;  // packet rate (0 when not meaningful)
  double value = 0;     // dimensionless metric (efficiency eta, overhead
                        // fraction, receivers/s; 0 when not meaningful)
};

/// Appends records to the JSON perf log as JSON Lines (one object per line;
/// read the file back with `jq -s '.' BENCH_results.json`). The path comes
/// from FOUNTAIN_BENCH_JSON (default ./BENCH_results.json); set it to "off"
/// to disable. Append semantics let CI run several bench binaries into one
/// artifact; remove the file first for a fresh log.
inline void append_json(const std::vector<JsonRecord>& records) {
  const char* path = std::getenv("FOUNTAIN_BENCH_JSON");
  if (path == nullptr) path = "BENCH_results.json";
  if (std::string(path) == "off") return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for append\n", path);
    return;
  }
  for (const auto& r : records) {
    std::fprintf(f,
                 "{\"schema\":%d,\"bench\":\"%s\",\"name\":\"%s\","
                 "\"kernel\":\"%s\",\"seconds\":%.9g,\"mb_per_s\":%.6g,"
                 "\"symbols_per_s\":%.6g,\"value\":%.6g}\n",
                 kJsonSchemaVersion, r.bench.c_str(), r.name.c_str(),
                 r.kernel.c_str(), r.seconds, r.mb_per_s, r.symbols_per_s,
                 r.value);
  }
  std::fclose(f);
  std::printf("\n[%zu records appended to %s]\n", records.size(), path);
}

}  // namespace fountain::bench
