// Shared helpers for the paper-reproduction benches: the file-size ladder of
// Tables 2-4, wall-clock repetition, and aligned table printing.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace fountain::bench {

/// The paper's benchmark ladder: file sizes with 1 KB packets.
struct FileSize {
  const char* label;
  std::size_t k;  // packets of 1 KB
};

inline const std::vector<FileSize>& size_ladder() {
  static const std::vector<FileSize> sizes = {
      {"250 KB", 250},  {"500 KB", 500},  {"1 MB", 1024},  {"2 MB", 2048},
      {"4 MB", 4096},   {"8 MB", 8192},   {"16 MB", 16384}};
  return sizes;
}

/// Reads an environment override (used to shrink or extend sweeps).
inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

/// Median of `reps` timed runs of `fn` (seconds).
inline double time_median(int reps, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    util::WallTimer timer;
    fn();
    times.push_back(timer.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace fountain::bench
