// The fig7 convergence experiment re-run on distribution *trees* — the
// topology-plane question the single-queue bench cannot ask: do RLM-style
// loss-driven receivers still find the path-bottleneck fair share when
// siblings share only part of a path and loss compounds across several
// queues?
//
// Two trees share one 4-layer FountainServer session:
//
//   Tree A — a depth-3 binary bottleneck_tree (15 nodes). The two depth-1
//   edges bind: the left one admits its 8-receiver subtree at level 1, the
//   right one at level 2; every deeper edge has 2x headroom at the top
//   layer. Siblings within a subtree share the binding edge plus part of
//   the deeper path, so congestion is felt through a 3-edge compound.
//
//   Tree B — a hand-built trunk: root → hub carries *all* 8 receivers with
//   modest headroom, then two wide inner edges fan out to four leaf edges,
//   and the leaf edges bind (level 1 on the left pair, level 2 on the
//   right). The shared trunk is NOT the governing bottleneck — the gate
//   checks receivers converge to their own leaf-edge fair share, i.e. the
//   narrowest edge of the path governs wherever it sits.
//
// The bench emits JSON-lines records of every subscription change
// (per-receiver level trajectories) and per-edge peak utilization (where do
// hot links concentrate), and exits non-zero if any group fails the dwell
// gate — a CI regression gate on the topology plane.
//
// Determinism gate: the scenario runs once at threads=1 (golden) and once
// at threads=2 with cohort_size=16, which puts each tree's receivers in
// their own cohort on their own worker (a tree's edges must stay within one
// cohort — see engine/topology.hpp). Every report field and every merged cc
// trace record must match the golden pass exactly.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cc/policies.hpp"
#include "cc/trace.hpp"
#include "engine/session.hpp"
#include "engine/topology.hpp"
#include "fec/codec_registry.hpp"
#include "proto/server.hpp"

namespace {

using namespace fountain;

struct TreeGroup {
  const char* name;
  std::size_t tree;                    // index into the scenario's trees
  std::vector<engine::NodeId> leaves;  // kRxPerLeaf receivers per entry
  unsigned fair_level;  // level the group's binding edge admits fairly
  std::size_t first_rx = 0;
  std::size_t receivers = 0;
};

constexpr std::size_t kRxPerLeaf = 2;

struct ScenarioRun {
  std::vector<engine::ReceiverReport> reports;
  cc::TraceLog log;
  // peak_offered / capacity per edge, indexed [tree][edge].
  std::vector<std::vector<double>> edge_util;
  explicit ScenarioRun(std::size_t receivers) : log(receivers) {}
};

/// Builds the two-tree scenario from scratch (fresh edge queues, identical
/// seeded population) and runs it under the given engine sharding. Pure in
/// (threads, cohort_size) by construction: every random draw comes from
/// Rng(41) in receiver order and per-receiver seeds.
ScenarioRun run_scenario(const fec::ErasureCode& code,
                         const std::shared_ptr<proto::FountainServer>& server,
                         const std::vector<engine::Topology>& trees,
                         std::vector<TreeGroup>& groups, engine::Time horizon,
                         std::size_t threads, std::size_t cohort_size) {
  engine::SessionConfig session_cfg;
  session_cfg.horizon = horizon;
  session_cfg.threads = threads;
  session_cfg.cohort_size = cohort_size;
  engine::Session session(code, session_cfg);
  const engine::SourceId src = session.add_source(server);
  session.set_sink_factory([] { return std::make_unique<engine::NullSink>(); });

  std::size_t total_rx = 0;
  for (const TreeGroup& g : groups) {
    total_rx += g.leaves.size() * kRxPerLeaf;
  }
  ScenarioRun run(total_rx);

  std::vector<std::vector<std::shared_ptr<engine::SharedBottleneck>>> queues;
  queues.reserve(trees.size());
  for (const engine::Topology& tree : trees) {
    queues.push_back(engine::make_edge_queues(tree));
  }

  util::Rng rng(41);
  std::size_t rx = 0;
  for (TreeGroup& g : groups) {
    g.first_rx = rx;
    g.receivers = g.leaves.size() * kRxPerLeaf;
    for (const engine::NodeId leaf : g.leaves) {
      for (std::size_t i = 0; i < kRxPerLeaf; ++i, ++rx) {
        engine::ReceiverSpec spec;
        spec.join = rng.below(64);  // staggered session entry
        spec.policy.initial_level = 0;
        spec.policy.seed = 0xf167ULL + 77 * rx;
        spec.controller = run.log.wrap(
            rx, spec.join,
            std::make_unique<cc::LossDrivenPolicy>(cc::LossDrivenConfig{}));
        const engine::ReceiverId id = session.add_receiver(std::move(spec));
        // Heterogeneous private tails compounded onto the path loss.
        const double base_loss = 0.01 * rng.uniform();
        session.subscribe(id, src,
                          engine::make_path_link(trees[g.tree],
                                                 queues[g.tree], 0, leaf,
                                                 0xb077ULL + 131 * rx,
                                                 base_loss));
      }
    }
  }

  run.reports = session.run();
  run.edge_util.resize(trees.size());
  for (std::size_t t = 0; t < trees.size(); ++t) {
    run.edge_util[t].reserve(queues[t].size());
    for (std::size_t e = 0; e < queues[t].size(); ++e) {
      run.edge_util[t].push_back(queues[t][e]->peak_offered() /
                                 trees[t].edge(e).capacity);
    }
  }
  return run;
}

bool same_report(const engine::ReceiverReport& a,
                 const engine::ReceiverReport& b) {
  return a.completed == b.completed && a.completed_at == b.completed_at &&
         a.addressed == b.addressed && a.received == b.received &&
         a.distinct == b.distinct && a.lost == b.lost &&
         a.rejected == b.rejected && a.level_changes == b.level_changes &&
         a.final_level == b.final_level && a.peak_level == b.peak_level;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const std::size_t k = bench::env_size("FOUNTAIN_FIG7_K", quick ? 512 : 4132);
  const engine::Time horizon =
      bench::env_size("FOUNTAIN_FIG7_TICKS", quick ? 40000 : 120000);

  fec::CodecParams params;
  params.k = k;
  params.symbol_size = 500;
  params.seed = 77;
  const auto code =
      fec::CodecRegistry::builtin().create(fec::CodecId::kTornado, params);

  proto::ProtocolConfig cfg;
  cfg.layers = 4;
  const auto server =
      std::make_shared<proto::FountainServer>(cfg, *code, 0x5eed);

  const double r1 = server->subscribed_rate(1);
  const double r2 = server->subscribed_rate(2);
  const double top = server->subscribed_rate(cfg.layers - 1);

  // Tree A: depth-3 binary tree, nodes in level order (root 0; 1,2; 3..6;
  // leaves 7..14), edges in BFS order (e0:0->1, e1:0->2, e2..e5 depth-2,
  // e6..e13 into leaves). Generated with placeholder capacities, then
  // repriced: the depth-1 edges bind (8 receivers each at 30% headroom over
  // their fair level), everything deeper has 2x headroom at the top layer.
  const std::vector<double> placeholder(3, 1.0);
  engine::Topology tree_a = engine::Topology::bottleneck_tree(
      3, 2, std::span<const double>(placeholder));
  tree_a.set_edge_capacity(0, 1.30 * 8.0 * r1);
  tree_a.set_edge_capacity(1, 1.30 * 8.0 * r2);
  for (std::size_t e = 2; e <= 5; ++e) {
    tree_a.set_edge_capacity(e, 2.0 * 4.0 * top);
  }
  for (std::size_t e = 6; e <= 13; ++e) {
    tree_a.set_edge_capacity(e, 2.0 * kRxPerLeaf * top);
  }

  // Tree B: shared trunk, binding leaves. All 8 receivers cross e0 (25%
  // headroom over the sum of both groups' fair loads — shared but not
  // governing); the four leaf edges bind at level 1 (left pair) and level 2
  // (right pair).
  engine::Topology tree_b;
  for (int i = 0; i < 8; ++i) tree_b.add_node();
  tree_b.add_edge(0, 1, 1.25 * (4.0 * r1 + 4.0 * r2));  // e0: trunk
  tree_b.add_edge(1, 2, 2.0 * 4.0 * top);               // e1: wide inner
  tree_b.add_edge(1, 3, 2.0 * 4.0 * top);               // e2: wide inner
  tree_b.add_edge(2, 4, 1.30 * kRxPerLeaf * r1);        // e3: binding leaf
  tree_b.add_edge(2, 5, 1.30 * kRxPerLeaf * r1);        // e4: binding leaf
  tree_b.add_edge(3, 6, 1.30 * kRxPerLeaf * r2);        // e5: binding leaf
  tree_b.add_edge(3, 7, 1.30 * kRxPerLeaf * r2);        // e6: binding leaf

  const std::vector<engine::Topology> trees = {tree_a, tree_b};
  std::vector<TreeGroup> groups = {
      {"a-left", 0, {7, 8, 9, 10}, 1, 0, 0},
      {"a-right", 0, {11, 12, 13, 14}, 2, 0, 0},
      {"b-left", 1, {4, 5}, 1, 0, 0},
      {"b-right", 1, {6, 7}, 2, 0, 0},
  };

  std::printf("Figure 7 on trees: loss-driven receivers behind composed "
              "path links (k = %zu, n = %zu, %llu ticks)\n\n",
              k, code->encoded_count(),
              static_cast<unsigned long long>(horizon));

  // Golden sequential pass: every reported number comes from this run.
  ScenarioRun golden = run_scenario(*code, server, trees, groups, horizon, 1,
                                    1024);
  // Parallel replay: cohort_size=16 puts tree A (rx 0..15) and tree B
  // (rx 16..23) in separate cohorts on separate workers.
  const ScenarioRun parallel =
      run_scenario(*code, server, trees, groups, horizon, 2, 16);

  bool threads_equal = golden.reports.size() == parallel.reports.size();
  for (std::size_t r = 0; threads_equal && r < golden.reports.size(); ++r) {
    threads_equal = same_report(golden.reports[r], parallel.reports[r]);
  }
  threads_equal =
      threads_equal && golden.log.records() == parallel.log.records();

  std::vector<bench::JsonRecord> records;
  const engine::Time tail_begin = horizon - horizon / 4;
  bool all_converged = true;

  for (const TreeGroup& g : groups) {
    const double fair_rate = server->subscribed_rate(g.fair_level);
    std::printf("group %-8s (tree %zu): fair share = level %u "
                "(%.0f pkt/tick per receiver)\n",
                g.name, g.tree, g.fair_level, fair_rate);
    std::printf("  %-4s %6s %7s %7s %10s\n", "rx", "join", "moves", "final",
                "near-fair");

    double group_near = 1.0;
    for (std::size_t i = 0; i < g.receivers; ++i) {
      const std::size_t r = g.first_rx + i;
      const auto& rep = golden.reports[r];
      const auto& traj = golden.log.trace(r);
      const double near =
          cc::fraction_near(traj, tail_begin, horizon, g.fair_level, 1);
      group_near = std::min(group_near, near);
      std::printf("  %-4zu %6llu %7u %7u %9.0f%%\n", r,
                  static_cast<unsigned long long>(traj.front().at),
                  rep.level_changes, rep.final_level, 100.0 * near);
      for (const cc::LevelChange& change : traj) {
        bench::JsonRecord rec;
        rec.bench = "fig7_tree";
        rec.name = std::string("level/") + g.name + "/rx" + std::to_string(r);
        rec.kernel = "loss_driven";
        rec.seconds = static_cast<double>(change.at);  // tick of the change
        rec.value = change.level;
        records.push_back(rec);
      }
    }

    // Converged = every member within one layer of its *path-bottleneck*
    // fair share for >= 90% of the final quarter of the run.
    const bool converged = group_near >= 0.90;
    all_converged = all_converged && converged;
    std::printf("  -> %s (worst near-fair dwell %.0f%%)\n\n",
                converged ? "converged" : "NOT CONVERGED",
                100.0 * group_near);

    bench::JsonRecord conv;
    conv.bench = "fig7_tree";
    conv.name = std::string("converged/") + g.name;
    conv.kernel = "loss_driven";
    conv.value = converged ? 1.0 : 0.0;
    records.push_back(conv);
  }

  // Where do the hot links concentrate? Peak utilization per edge — the
  // binding edges should crowd 1.0+ while the wide ones idle well below.
  static const char* const kTreeNames[] = {"a", "b"};
  for (std::size_t t = 0; t < trees.size(); ++t) {
    std::printf("tree %s peak edge utilization:", kTreeNames[t]);
    for (std::size_t e = 0; e < golden.edge_util[t].size(); ++e) {
      std::printf(" e%zu=%.2f", e, golden.edge_util[t][e]);
      bench::JsonRecord rec;
      rec.bench = "fig7_tree";
      rec.name = std::string("edge_util/") + kTreeNames[t] + "/e" +
                 std::to_string(e);
      rec.kernel = "loss_driven";
      rec.value = golden.edge_util[t][e];
      records.push_back(rec);
    }
    std::printf("\n");
  }
  std::printf("\n");

  bench::JsonRecord eq;
  eq.bench = "fig7_tree";
  eq.name = "threads_equivalence";  // threads=2/cohort=16 replay == golden
  eq.kernel = "loss_driven";
  eq.value = threads_equal ? 1.0 : 0.0;
  records.push_back(eq);

  bench::append_json(records);
  if (!threads_equal) {
    std::fprintf(stderr, "fig7_tree: threads=2 replay DIVERGED from the "
                         "sequential run\n");
    return 1;
  }
  std::printf("threads=2 replay byte-identical to the sequential run\n");
  if (!all_converged) {
    std::fprintf(stderr, "fig7_tree: convergence gate FAILED\n");
    return 1;
  }
  std::printf("all groups converged to their path-bottleneck fair share\n");
  return 0;
}
