// Ablation: the stretch factor c (paper Sections 7.1.2 and 8). A small c
// keeps decoding memory and time low but forces duplicate receptions under
// severe loss (the carousel wraps before the receiver can finish); a large c
// preserves distinctness efficiency at high loss but inflates decode state.
// The paper chooses c = 2 against the c = 8 of Rizzo/Vicisano — this bench
// quantifies that trade.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "sim/overhead.hpp"
#include "util/random.hpp"

namespace {

using namespace fountain;

}  // namespace

int main() {
  const std::size_t k = bench::env_size("FOUNTAIN_AB_K", 2048);
  std::printf("Ablation: stretch factor c (k = %zu, Tornado A distribution)\n",
              k);
  std::printf("eta_d = distinctness efficiency at the given carousel loss "
              "rate; memory = encoding\nsymbols a decoder must track\n\n");
  std::printf("%-8s %10s %12s %12s %12s %12s\n", "stretch", "n", "eta_d@30%",
              "eta_d@60%", "eta_d@80%", "mean ovhd");
  bench::print_rule(70);

  for (const double stretch : {1.5, 2.0, 4.0, 8.0}) {
    core::TornadoParams params = core::TornadoParams::tornado_a(k, 2, 9);
    params.stretch = stretch;
    core::TornadoCode code(params);
    util::Rng crng(5);
    const auto carousel =
        carousel::Carousel::random_permutation(code.encoded_count(), crng);

    double eta_d[3] = {0, 0, 0};
    const double losses[3] = {0.3, 0.6, 0.8};
    for (int i = 0; i < 3; ++i) {
      const double p = losses[i];
      const auto results = sim::sample_carousel_receptions(
          code, carousel,
          [p](std::size_t, util::Rng& rng) {
            return std::make_unique<net::BernoulliLoss>(p, rng());
          },
          60, 100 + i);
      double acc = 0.0;
      for (const auto& r : results) acc += r.distinctness_efficiency();
      eta_d[i] = acc / static_cast<double>(results.size());
    }
    const auto overheads = sim::sample_overhead_distribution(code, 60, 6);
    std::printf("%-8.1f %10zu %12.3f %12.3f %12.3f %12.4f\n", stretch,
                code.encoded_count(), eta_d[0], eta_d[1], eta_d[2],
                sim::mean_of(overheads));
  }
  std::printf("\nReading: c = 2 keeps eta_d = 1 up to ~50%% loss (One Level "
              "regime); c >= 4 holds\neta_d at extreme loss but multiplies "
              "decoder state; c = 1.5 wraps early.\n");
  return 0;
}
