// Reproduces Figure 8: "Experimental Results of the Prototype" — the
// distinctness efficiency (eta_d), coding efficiency (eta_c) and total
// protocol efficiency (eta) of the digital-fountain distribution protocol,
// as a function of per-receiver packet loss.
//
// The paper's testbed (Berkeley/CMU/Cornell over IP multicast) is replaced
// by the discrete-event session simulation: same encoding parameters as the
// prototype (2 MB file -> 8264 encoding packets of 500 bytes at stretch 2,
// Tornado A), same scheduler, SPs and burst probes.
//
//  * single-layer protocol: receivers pinned to one group, loss 0..70%.
//  * 4-layer protocol: heterogeneous receivers with drifting capacity that
//    join/drop layers; loss varies per receiver.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "fec/codec_registry.hpp"
#include "proto/session.hpp"

namespace {

using namespace fountain;

std::vector<bench::JsonRecord> g_records;

void record_mean_eta(const char* name, const proto::SessionResult& result) {
  double eta = 0.0;
  std::size_t completed = 0;
  for (const auto& r : result.receivers) {
    if (!r.completed) continue;
    eta += r.eta;
    ++completed;
  }
  bench::JsonRecord record;
  record.bench = "fig8_prototype";
  record.name = name;
  record.kernel = "tornado_a";
  record.value = completed == 0 ? 0.0 : eta / static_cast<double>(completed);
  g_records.push_back(record);
}

}  // namespace

int main() {
  // 2 MB / 500 B = 4132 source packets -> 8264 encoding packets. The code
  // comes from the registry (Tornado A at stretch 2), the same construction
  // path a client would take from advertised control-channel fields.
  const std::size_t k = bench::env_size("FOUNTAIN_FIG8_K", 4132);
  fec::CodecParams params;
  params.k = k;
  params.symbol_size = 500;
  params.seed = 77;
  const auto code = fec::CodecRegistry::builtin().create(
      fec::CodecId::kTornado, params);
  std::printf("Figure 8: Prototype efficiency (k = %zu source packets of "
              "500 B, n = %zu)\n\n",
              k, code->encoded_count());

  {
    std::printf("Single-layer protocol (fixed subscription)\n");
    std::printf("%-12s %10s %10s %10s\n", "loss (%)", "eta_d (%)", "eta_c (%)",
                "eta (%)");
    bench::print_rule(46);
    proto::ProtocolConfig cfg;
    cfg.layers = 1;
    cfg.burst_period = 0;  // no probes needed with one group
    std::vector<proto::SimClientConfig> clients;
    for (double loss = 0.0; loss <= 0.701; loss += 0.05) {
      proto::SimClientConfig c;
      c.base_loss = loss;
      c.fixed_level = true;
      c.initial_level = 0;
      clients.push_back(c);
    }
    const auto result = proto::run_session(*code, cfg, clients, 5, 4000000);
    record_mean_eta("eta_mean/single_layer", result);
    for (const auto& r : result.receivers) {
      std::printf("%-12.1f %10.1f %10.1f %10.1f%s\n",
                  100.0 * r.observed_loss, 100.0 * r.eta_d, 100.0 * r.eta_c,
                  100.0 * r.eta, r.completed ? "" : "  (incomplete)");
    }
    std::printf("\n");
  }

  {
    std::printf("4-layer protocol (dynamic subscription levels)\n");
    std::printf("%-12s %10s %10s %10s %8s\n", "loss (%)", "eta_d (%)",
                "eta_c (%)", "eta (%)", "moves");
    bench::print_rule(56);
    proto::ProtocolConfig cfg;
    cfg.layers = 4;
    std::vector<proto::SimClientConfig> clients;
    util::Rng rng(9);
    const std::size_t receivers = bench::env_size("FOUNTAIN_FIG8_RX", 32);
    for (std::size_t i = 0; i < receivers; ++i) {
      proto::SimClientConfig c;
      c.base_loss = 0.45 * rng.uniform();
      c.initial_level = static_cast<unsigned>(rng.below(4));
      c.initial_capacity = static_cast<unsigned>(rng.below(4));
      c.capacity_change_prob = 0.01;
      clients.push_back(c);
    }
    auto result = proto::run_session(*code, cfg, clients, 6, 4000000);
    record_mean_eta("eta_mean/four_layer", result);
    std::sort(result.receivers.begin(), result.receivers.end(),
              [](const auto& a, const auto& b) {
                return a.observed_loss < b.observed_loss;
              });
    for (const auto& r : result.receivers) {
      std::printf("%-12.1f %10.1f %10.1f %10.1f %8u%s\n",
                  100.0 * r.observed_loss, 100.0 * r.eta_d, 100.0 * r.eta_c,
                  100.0 * r.eta, r.level_changes,
                  r.completed ? "" : "  (incomplete)");
    }
  }
  std::printf("\nShape check vs paper: single layer keeps eta_d ~ 100%% below "
              "50%% loss (One\nLevel Property) with eta ~ eta_c ~ 90-95%%; "
              "with 4 layers, subscription changes\ncost distinctness "
              "efficiency, yet total efficiency stays high (>75-80%%) even\n"
              "past 30%% loss.\n");
  bench::append_json(g_records);
  return 0;
}
