// Reproduces Figure 6: "Comparison of reception efficiency for trace data" —
// 120 receivers driven by MBone-like loss traces (the Yajnik-Kurose-Towsley
// traces are not distributable; we substitute a synthetic Gilbert-Elliott
// population with the paper's reported statistics: per-receiver loss from
// <1% to >30%, mean ~18%, bursty). Each receiver samples a random starting
// point within its trace, as in the paper.
#include <cstdio>
#include <memory>
#include <utility>

#include "bench_common.hpp"
#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "fec/interleaved.hpp"
#include "net/trace.hpp"
#include "sim/overhead.hpp"
#include "util/random.hpp"

namespace {

using namespace fountain;

std::vector<bench::JsonRecord> g_records;

double average_efficiency(const fec::ErasureCode& code,
                          const carousel::Carousel& carousel,
                          const net::TracePopulation& traces,
                          std::uint64_t seed) {
  // One engine session; receiver r plays back trace r from a random offset
  // and joins the carousel at a random phase, as in the paper.
  const auto results = sim::sample_carousel_receptions(
      code, carousel,
      [&traces](std::size_t trial, util::Rng& rng) {
        return traces.loss_model(trial, rng());
      },
      traces.receiver_count(), seed);
  double total = 0.0;
  for (const auto& r : results) total += r.efficiency(code.source_count());
  return total / static_cast<double>(traces.receiver_count());
}

}  // namespace

int main() {
  net::TracePopulationParams params;
  params.receivers = 120;
  params.trace_length = bench::env_size("FOUNTAIN_FIG6_TRACE_LEN", 300000);
  const auto traces = net::TracePopulation::synthetic(params);

  std::printf("Figure 6: Reception efficiency on (synthetic) MBone trace "
              "data, %zu receivers\n",
              traces.receiver_count());
  std::printf("population mean loss rate: %.1f%% (paper: ~18%%)\n\n",
              100.0 * traces.mean_loss_rate());
  std::printf("%-8s %14s %16s %16s\n", "SIZE", "Tornado A avg",
              "Interleaved k=50", "Interleaved k=20");
  bench::print_rule(60);

  const std::vector<std::pair<const char*, std::size_t>> sizes = {
      {"100 KB", 100}, {"250 KB", 250}, {"500 KB", 500}, {"1 MB", 1024},
      {"2 MB", 2048},  {"4 MB", 4096},  {"8 MB", 8192},  {"16 MB", 16384}};

  for (const auto& [label, k] : sizes) {
    core::TornadoCode tornado(core::TornadoParams::tornado_a(k, 2, 5));
    util::Rng crng(9);
    const auto tc =
        carousel::Carousel::random_permutation(tornado.encoded_count(), crng);
    const double et = average_efficiency(tornado, tc, traces, 21 + k);

    fec::InterleavedCode i50(k, std::max<std::size_t>(1, (k + 49) / 50), 2);
    const auto c50 = carousel::Carousel::sequential(i50.encoded_count());
    const double e50 = average_efficiency(i50, c50, traces, 23 + k);

    fec::InterleavedCode i20(k, std::max<std::size_t>(1, (k + 19) / 20), 2);
    const auto c20 = carousel::Carousel::sequential(i20.encoded_count());
    const double e20 = average_efficiency(i20, c20, traces, 25 + k);

    std::printf("%-8s %14.3f %16.3f %16.3f\n", label, et, e50, e20);
    const std::pair<const char*, double> rows[] = {
        {"tornado_a", et}, {"inter50", e50}, {"inter20", e20}};
    for (const auto& [kernel, eta] : rows) {
      bench::JsonRecord record;
      record.bench = "fig6_trace";
      record.name = std::string("eta_avg/") + label;
      record.kernel = kernel;
      record.value = eta;
      g_records.push_back(record);
    }
  }
  std::printf("\nShape check vs paper: mirrors Figure 5 at p ~ 0.1 — Tornado "
              "efficiency stays\nhigh and flat under bursty heterogeneous "
              "loss; interleaved decays with size.\n");
  bench::append_json(g_records);
  return 0;
}
