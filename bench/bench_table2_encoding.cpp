// Reproduces Table 2: "Comparison of encoding times for erasure codes."
// Sizes 250 KB .. 16 MB (1 KB packets), stretch factor 2: Vandermonde RS,
// Cauchy RS, Tornado A, Tornado B.
//
// Reed-Solomon encoding is Theta(k * l) field operations per packet byte; at
// the upper sizes a single run took the 1998 authors hours (they report
// 30802 s for Cauchy at 16 MB, and "not available" for large Vandermonde).
// We run RS for real up to a size cap and report a quadratic fit
// extrapolation above it, marked with '~'. Tornado always runs for real.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/tornado.hpp"
#include "fec/reed_solomon.hpp"
#include "util/symbols.hpp"

namespace {

using namespace fountain;

constexpr std::size_t kPacket = 1024;

double run_encode(const fec::ErasureCode& code) {
  util::SymbolMatrix source(code.source_count(), kPacket);
  source.fill_random(1);
  util::SymbolMatrix encoding(code.encoded_count(), kPacket);
  return bench::time_median(3, [&] { code.encode(source, encoding); });
}

struct Fit {
  // t(k) = c * k^2 (RS encode with l = k is quadratic in k)
  double c = 0.0;
  void fit(const std::vector<std::pair<std::size_t, double>>& points) {
    double num = 0.0;
    double den = 0.0;
    for (const auto& [k, t] : points) {
      const double k2 = static_cast<double>(k) * static_cast<double>(k);
      num += t * k2;
      den += k2 * k2;
    }
    c = den > 0 ? num / den : 0.0;
  }
  double at(std::size_t k) const {
    return c * static_cast<double>(k) * static_cast<double>(k);
  }
};

}  // namespace

int main() {
  const std::size_t rs_cap = bench::env_size("FOUNTAIN_RS_ENCODE_CAP",
                                             bench::quick_mode() ? 512 : 2048);
  std::vector<bench::JsonRecord> records;
  const auto log = [&records](const char* code, std::size_t k, double secs) {
    records.push_back({"table2_encoding", std::string("encode/k=") +
                                              std::to_string(k),
                       code, secs,
                       static_cast<double>(k) * kPacket / secs / 1e6,
                       static_cast<double>(k) / secs});
  };

  std::printf("Table 2: Encoding Benchmarks (seconds; P = 1 KB, n = 2k)\n");
  std::printf("('~' marks quadratic-fit extrapolation beyond the RS size cap "
              "of %zu packets)\n\n",
              rs_cap);
  std::printf("%-8s %14s %14s %12s %12s\n", "SIZE", "Vandermonde", "Cauchy",
              "Tornado A", "Tornado B");
  bench::print_rule(66);

  std::vector<std::pair<std::size_t, double>> vand_points;
  std::vector<std::pair<std::size_t, double>> cauchy_points;
  Fit vand_fit;
  Fit cauchy_fit;

  for (const auto& size : bench::size_ladder()) {
    const std::size_t k = size.k;
    std::string vand;
    std::string cauchy;
    if (k <= rs_cap) {
      const auto vc =
          fec::make_reed_solomon(fec::RsKind::kVandermonde, k, k, kPacket);
      const double tv = run_encode(*vc);
      vand_points.emplace_back(k, tv);
      log("vandermonde", k, tv);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", tv);
      vand = buf;
      const auto cc =
          fec::make_reed_solomon(fec::RsKind::kCauchy, k, k, kPacket);
      const double tc = run_encode(*cc);
      cauchy_points.emplace_back(k, tc);
      log("cauchy", k, tc);
      std::snprintf(buf, sizeof(buf), "%.3f", tc);
      cauchy = buf;
    } else {
      vand_fit.fit(vand_points);
      cauchy_fit.fit(cauchy_points);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "~%.1f", vand_fit.at(k));
      vand = buf;
      std::snprintf(buf, sizeof(buf), "~%.1f", cauchy_fit.at(k));
      cauchy = buf;
    }

    core::TornadoCode a(core::TornadoParams::tornado_a(k, kPacket, 42));
    core::TornadoCode b(core::TornadoParams::tornado_b(k, kPacket, 42));
    const double ta = run_encode(a);
    const double tb = run_encode(b);
    log("tornado_a", k, ta);
    log("tornado_b", k, tb);

    std::printf("%-8s %14s %14s %12.4f %12.4f\n", size.label, vand.c_str(),
                cauchy.c_str(), ta, tb);
  }

  std::printf(
      "\nShape check vs paper: RS times grow ~quadratically with file size;\n"
      "Tornado times grow linearly and stay orders of magnitude smaller.\n");
  bench::append_json(records);
  return 0;
}
