// Reproduces Figure 5: "Comparison of reception efficiency as file size
// grows" — 500 receivers, p in {0.1, 0.5}, file sizes 100 KB .. 16 MB.
// Interleaved codes lose efficiency as the file (and so the number of
// blocks) grows — the coupon-collector effect — while Tornado's efficiency
// is flat in file size.
#include <cstdio>
#include <memory>
#include <utility>

#include "bench_common.hpp"
#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "fec/interleaved.hpp"
#include "sim/overhead.hpp"
#include "util/random.hpp"

namespace {

using namespace fountain;

struct Row {
  double avg;
  double min;
};

std::vector<bench::JsonRecord> g_records;

Row measure(const fec::ErasureCode& code, const carousel::Carousel& carousel,
            double p, std::size_t pool_size, std::size_t receivers,
            std::uint64_t seed) {
  const auto results = sim::sample_carousel_receptions(
      code, carousel,
      [p](std::size_t, util::Rng& rng) {
        return std::make_unique<net::BernoulliLoss>(p, rng());
      },
      pool_size, seed);
  std::vector<double> pool;
  pool.reserve(results.size());
  for (const auto& r : results) {
    pool.push_back(r.efficiency(code.source_count()));
  }
  util::Rng rng(seed ^ 0xabcd);
  return Row{sim::mean_of(pool),
             sim::expected_min_over(pool, receivers, 100, rng)};
}

}  // namespace

int main() {
  const std::size_t receivers = 500;
  const std::size_t pool_size = bench::env_size("FOUNTAIN_FIG5_POOL", 600);

  const std::vector<std::pair<const char*, std::size_t>> sizes = {
      {"100 KB", 100}, {"250 KB", 250}, {"500 KB", 500}, {"1 MB", 1024},
      {"2 MB", 2048},  {"4 MB", 4096},  {"8 MB", 8192},  {"16 MB", 16384}};

  std::printf("Figure 5: Reception efficiency with %zu receivers as file "
              "size grows\n\n",
              receivers);
  for (const double p : {0.1, 0.5}) {
    std::printf("p = %.1f\n", p);
    std::printf("%-8s %10s %10s %10s %10s %10s %10s\n", "SIZE", "TornA avg",
                "TornA min", "I50 avg", "I50 min", "I20 avg", "I20 min");
    bench::print_rule(74);
    for (const auto& [label, k] : sizes) {
      core::TornadoCode tornado(core::TornadoParams::tornado_a(k, 2, 7));
      util::Rng crng(3);
      const auto tc = carousel::Carousel::random_permutation(
          tornado.encoded_count(), crng);
      const auto rt = measure(tornado, tc, p, pool_size, receivers, 11 + k);

      fec::InterleavedCode i50(k, std::max<std::size_t>(1, (k + 49) / 50), 2);
      const auto c50 = carousel::Carousel::sequential(i50.encoded_count());
      const auto r50 = measure(i50, c50, p, pool_size, receivers, 13 + k);

      fec::InterleavedCode i20(k, std::max<std::size_t>(1, (k + 19) / 20), 2);
      const auto c20 = carousel::Carousel::sequential(i20.encoded_count());
      const auto r20 = measure(i20, c20, p, pool_size, receivers, 17 + k);

      std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n", label,
                  rt.avg, rt.min, r50.avg, r50.min, r20.avg, r20.min);
      const std::string suffix =
          std::string("/p=") + (p < 0.3 ? "0.1" : "0.5") + "/" + label;
      const std::pair<const char*, const Row*> rows[] = {
          {"tornado_a", &rt}, {"inter50", &r50}, {"inter20", &r20}};
      for (const auto& [kernel, row] : rows) {
        bench::JsonRecord record;
        record.bench = "fig5_filesize";
        record.name = "eta_avg" + suffix;
        record.kernel = kernel;
        record.value = row->avg;
        g_records.push_back(record);
      }
    }
    std::printf("\n");
  }
  std::printf("Shape check vs paper: interleaved avg and min efficiency fall "
              "as the file\ngrows (coupon collector over more blocks); "
              "Tornado stays flat.\n");
  bench::append_json(g_records);
  return 0;
}
