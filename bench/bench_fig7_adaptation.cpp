// Receiver-driven congestion control on shared bottlenecks — the adaptation
// experiment Figures 7-8 and Section 7.2 sketch but the paper's testbed was
// too small to show: heterogeneous groups of loss-driven receivers
// (cc::LossDrivenPolicy) behind engine::SharedBottleneck queues, where the
// aggregate subscribed rate of a group determines everyone's queueing loss.
//
// Two groups share one 4-layer FountainServer session: a narrow bottleneck
// whose fair share sits at level 1 and a wide one whose fair share sits at
// level 2. Receivers start at level 0, join staggered, and adapt purely on
// observed loss. The bench emits JSON-lines records of every subscription
// change (per-receiver level trajectories) plus per-group convergence and
// goodput summaries, and exits non-zero if any group fails to converge to
// within one layer of its fair share and hold it — making the CI quick run
// a regression gate on the adaptation plane.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cc/policies.hpp"
#include "cc/trace.hpp"
#include "engine/session.hpp"
#include "fec/codec_registry.hpp"
#include "proto/server.hpp"

namespace {

using namespace fountain;

struct Group {
  const char* name;
  std::size_t receivers;
  unsigned fair_level;   // highest level the group can share fairly
  double headroom;       // capacity = headroom * receivers * rate(fair_level)
  std::size_t first_rx = 0;
  std::shared_ptr<engine::SharedBottleneck> queue;
};

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const std::size_t k = bench::env_size("FOUNTAIN_FIG7_K", quick ? 512 : 4132);
  const engine::Time horizon =
      bench::env_size("FOUNTAIN_FIG7_TICKS", quick ? 40000 : 120000);

  fec::CodecParams params;
  params.k = k;
  params.symbol_size = 500;
  params.seed = 77;
  const auto code =
      fec::CodecRegistry::builtin().create(fec::CodecId::kTornado, params);

  proto::ProtocolConfig cfg;
  cfg.layers = 4;
  const auto server = std::make_shared<proto::FountainServer>(
      cfg, *code, 0x5eed);

  std::vector<Group> groups = {
      {"narrow", 8, 1, 1.30, 0, nullptr},
      {"wide", 8, 2, 1.30, 0, nullptr},
  };

  engine::SessionConfig session_cfg;
  session_cfg.horizon = horizon;
  engine::Session session(*code, session_cfg);
  const engine::SourceId src = session.add_source(server);
  session.set_sink_factory([] { return std::make_unique<engine::NullSink>(); });

  std::printf("Figure 7 adaptation: loss-driven receivers on shared "
              "bottlenecks (k = %zu, n = %zu, %llu ticks)\n\n",
              k, code->encoded_count(),
              static_cast<unsigned long long>(horizon));

  std::size_t total_rx = 0;
  for (const Group& g : groups) total_rx += g.receivers;
  std::vector<cc::LevelTrace> trajectories(total_rx);

  util::Rng rng(41);
  std::size_t rx = 0;
  for (Group& g : groups) {
    const double fair_rate = server->subscribed_rate(g.fair_level);
    const double capacity =
        g.headroom * static_cast<double>(g.receivers) * fair_rate;
    g.queue = std::make_shared<engine::SharedBottleneck>(capacity);
    g.first_rx = rx;
    for (std::size_t i = 0; i < g.receivers; ++i, ++rx) {
      engine::ReceiverSpec spec;
      spec.join = rng.below(64);  // staggered session entry
      spec.policy.initial_level = 0;
      spec.policy.seed = 0xf167ULL + 77 * rx;
      spec.controller = std::make_unique<cc::TracingPolicy>(
          std::make_unique<cc::LossDrivenPolicy>(cc::LossDrivenConfig{}),
          spec.join, &trajectories[rx]);
      const engine::ReceiverId id = session.add_receiver(std::move(spec));
      // Heterogeneous private tails on top of the shared queue.
      const double base_loss = 0.01 * rng.uniform();
      session.subscribe(id, src,
                        std::make_unique<engine::BottleneckLink>(
                            g.queue, 0xb077ULL + 131 * rx, base_loss));
    }
  }

  const auto reports = session.run();

  std::vector<bench::JsonRecord> records;
  const engine::Time tail_begin = horizon - horizon / 4;
  bool all_converged = true;

  for (const Group& g : groups) {
    const double fair_rate = server->subscribed_rate(g.fair_level);
    std::printf("group %-7s capacity %.0f pkt/tick, fair share = level %u "
                "(%.0f pkt/tick per receiver)\n",
                g.name, g.queue->capacity(), g.fair_level, fair_rate);
    std::printf("  %-4s %6s %7s %7s %10s %12s %12s\n", "rx", "join", "moves",
                "final", "near-fair", "goodput", "(fair rate)");

    double group_near = 1.0;
    double goodput_sum = 0.0;
    for (std::size_t i = 0; i < g.receivers; ++i) {
      const std::size_t r = g.first_rx + i;
      const auto& rep = reports[r];
      const auto& traj = trajectories[r];
      const double near =
          cc::fraction_near(traj, tail_begin, horizon, g.fair_level, 1);
      group_near = std::min(group_near, near);
      // Delivered-packet rate: ~ rate(level) * (1 - loss). Distinct-packet
      // counts saturate at n for a fountain receiver, so the achieved rate
      // is the meaningful per-receiver share of the queue.
      const engine::Time listened = horizon - traj.front().at;
      const double goodput =
          listened == 0 ? 0.0
                        : static_cast<double>(rep.received) /
                              static_cast<double>(listened);
      goodput_sum += goodput;
      std::printf("  %-4zu %6llu %7u %7u %9.0f%% %12.1f %12.1f\n", r,
                  static_cast<unsigned long long>(traj.front().at),
                  rep.level_changes, rep.final_level, 100.0 * near, goodput,
                  fair_rate);
      for (const cc::LevelChange& change : traj) {
        bench::JsonRecord rec;
        rec.bench = "fig7_adaptation";
        rec.name = std::string("level/") + g.name + "/rx" + std::to_string(r);
        rec.kernel = "loss_driven";
        rec.seconds = static_cast<double>(change.at);  // tick of the change
        rec.value = change.level;
        records.push_back(rec);
      }
    }

    // Converged = every member within one layer of fair share for >= 90% of
    // the final quarter of the run.
    const bool converged = group_near >= 0.90;
    all_converged = all_converged && converged;
    std::printf("  -> %s (worst near-fair dwell %.0f%%, aggregate goodput "
                "%.0f of %.0f pkt/tick)\n\n",
                converged ? "converged" : "NOT CONVERGED", 100.0 * group_near,
                goodput_sum, g.queue->capacity());

    bench::JsonRecord conv;
    conv.bench = "fig7_adaptation";
    conv.name = std::string("converged/") + g.name;
    conv.kernel = "loss_driven";
    conv.value = converged ? 1.0 : 0.0;
    records.push_back(conv);
    bench::JsonRecord gp;
    gp.bench = "fig7_adaptation";
    gp.name = std::string("goodput_mean/") + g.name;
    gp.kernel = "loss_driven";
    gp.symbols_per_s = goodput_sum / static_cast<double>(g.receivers);
    gp.value = goodput_sum / g.queue->capacity();  // capacity utilization
    records.push_back(gp);
  }

  bench::append_json(records);
  if (!all_converged) {
    std::fprintf(stderr, "fig7_adaptation: convergence gate FAILED\n");
    return 1;
  }
  std::printf("all groups converged to within one layer of fair share\n");
  return 0;
}
