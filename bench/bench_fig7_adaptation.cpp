// Receiver-driven congestion control on shared bottlenecks — the adaptation
// experiment Figures 7-8 and Section 7.2 sketch but the paper's testbed was
// too small to show: heterogeneous groups of loss-driven receivers
// (cc::LossDrivenPolicy) behind engine::SharedBottleneck queues, where the
// aggregate subscribed rate of a group determines everyone's queueing loss.
//
// Two groups share one 4-layer FountainServer session: a narrow bottleneck
// whose fair share sits at level 1 and a wide one whose fair share sits at
// level 2. Receivers start at level 0, join staggered, and adapt purely on
// observed loss. The bench emits JSON-lines records of every subscription
// change (per-receiver level trajectories) plus per-group convergence and
// goodput summaries, and exits non-zero if any group fails to converge to
// within one layer of its fair share and hold it — making the CI quick run
// a regression gate on the adaptation plane.
//
// The convergence gate runs the scenario twice: once at threads=1 (the
// golden sequential pass all numbers are reported from) and once at
// threads=2 with cohort_size=8, which places the two bottleneck groups in
// separate cohorts simulated by different workers. Every report field and
// every merged cc trace record must be identical across the passes, so the
// bench also gates the parallel engine's determinism on a congestion-coupled
// scenario.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cc/policies.hpp"
#include "cc/trace.hpp"
#include "engine/session.hpp"
#include "fec/codec_registry.hpp"
#include "proto/server.hpp"

namespace {

using namespace fountain;

struct Group {
  const char* name;
  std::size_t receivers;
  unsigned fair_level;   // highest level the group can share fairly
  double headroom;       // capacity = headroom * receivers * rate(fair_level)
  std::size_t first_rx = 0;
  double capacity = 0;
};

struct ScenarioRun {
  std::vector<engine::ReceiverReport> reports;
  cc::TraceLog log;
  explicit ScenarioRun(std::size_t receivers) : log(receivers) {}
};

/// Builds the two-group scenario from scratch (fresh queues, identical
/// seeded population) and runs it under the given engine sharding. Pure in
/// (threads, cohort_size) by construction: every random draw comes from
/// Rng(41) in receiver order.
ScenarioRun run_scenario(const fec::ErasureCode& code,
                         const std::shared_ptr<proto::FountainServer>& server,
                         std::vector<Group>& groups, engine::Time horizon,
                         std::size_t threads, std::size_t cohort_size) {
  engine::SessionConfig session_cfg;
  session_cfg.horizon = horizon;
  session_cfg.threads = threads;
  session_cfg.cohort_size = cohort_size;
  engine::Session session(code, session_cfg);
  const engine::SourceId src = session.add_source(server);
  session.set_sink_factory([] { return std::make_unique<engine::NullSink>(); });

  std::size_t total_rx = 0;
  for (const Group& g : groups) total_rx += g.receivers;
  ScenarioRun run(total_rx);

  util::Rng rng(41);
  std::size_t rx = 0;
  for (Group& g : groups) {
    const double fair_rate = server->subscribed_rate(g.fair_level);
    g.capacity = g.headroom * static_cast<double>(g.receivers) * fair_rate;
    const auto queue = std::make_shared<engine::SharedBottleneck>(g.capacity);
    g.first_rx = rx;
    for (std::size_t i = 0; i < g.receivers; ++i, ++rx) {
      engine::ReceiverSpec spec;
      spec.join = rng.below(64);  // staggered session entry
      spec.policy.initial_level = 0;
      spec.policy.seed = 0xf167ULL + 77 * rx;
      spec.controller = run.log.wrap(
          rx, spec.join,
          std::make_unique<cc::LossDrivenPolicy>(cc::LossDrivenConfig{}));
      const engine::ReceiverId id = session.add_receiver(std::move(spec));
      // Heterogeneous private tails on top of the shared queue.
      const double base_loss = 0.01 * rng.uniform();
      session.subscribe(id, src,
                        std::make_unique<engine::BottleneckLink>(
                            queue, 0xb077ULL + 131 * rx, base_loss));
    }
  }

  run.reports = session.run();
  return run;
}

bool same_report(const engine::ReceiverReport& a,
                 const engine::ReceiverReport& b) {
  return a.completed == b.completed && a.completed_at == b.completed_at &&
         a.addressed == b.addressed && a.received == b.received &&
         a.distinct == b.distinct && a.lost == b.lost &&
         a.rejected == b.rejected && a.level_changes == b.level_changes &&
         a.final_level == b.final_level && a.peak_level == b.peak_level;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const std::size_t k = bench::env_size("FOUNTAIN_FIG7_K", quick ? 512 : 4132);
  const engine::Time horizon =
      bench::env_size("FOUNTAIN_FIG7_TICKS", quick ? 40000 : 120000);

  fec::CodecParams params;
  params.k = k;
  params.symbol_size = 500;
  params.seed = 77;
  const auto code =
      fec::CodecRegistry::builtin().create(fec::CodecId::kTornado, params);

  proto::ProtocolConfig cfg;
  cfg.layers = 4;
  const auto server = std::make_shared<proto::FountainServer>(
      cfg, *code, 0x5eed);

  std::vector<Group> groups = {
      {"narrow", 8, 1, 1.30, 0, 0},
      {"wide", 8, 2, 1.30, 0, 0},
  };

  std::printf("Figure 7 adaptation: loss-driven receivers on shared "
              "bottlenecks (k = %zu, n = %zu, %llu ticks)\n\n",
              k, code->encoded_count(),
              static_cast<unsigned long long>(horizon));

  // Golden sequential pass: every reported number comes from this run.
  const ScenarioRun golden =
      run_scenario(*code, server, groups, horizon, 1, 1024);
  // Parallel replay: cohort_size=8 puts each group in its own cohort, so
  // two workers carry one congestion-coupled group each.
  const ScenarioRun parallel =
      run_scenario(*code, server, groups, horizon, 2, 8);

  bool threads_equal = golden.reports.size() == parallel.reports.size();
  for (std::size_t r = 0; threads_equal && r < golden.reports.size(); ++r) {
    threads_equal = same_report(golden.reports[r], parallel.reports[r]);
  }
  threads_equal = threads_equal && golden.log.records() ==
                                       parallel.log.records();

  std::vector<bench::JsonRecord> records;
  const engine::Time tail_begin = horizon - horizon / 4;
  bool all_converged = true;

  for (const Group& g : groups) {
    const double fair_rate = server->subscribed_rate(g.fair_level);
    std::printf("group %-7s capacity %.0f pkt/tick, fair share = level %u "
                "(%.0f pkt/tick per receiver)\n",
                g.name, g.capacity, g.fair_level, fair_rate);
    std::printf("  %-4s %6s %7s %7s %10s %12s %12s\n", "rx", "join", "moves",
                "final", "near-fair", "goodput", "(fair rate)");

    double group_near = 1.0;
    double goodput_sum = 0.0;
    for (std::size_t i = 0; i < g.receivers; ++i) {
      const std::size_t r = g.first_rx + i;
      const auto& rep = golden.reports[r];
      const auto& traj = golden.log.trace(r);
      const double near =
          cc::fraction_near(traj, tail_begin, horizon, g.fair_level, 1);
      group_near = std::min(group_near, near);
      // Delivered-packet rate: ~ rate(level) * (1 - loss). Distinct-packet
      // counts saturate at n for a fountain receiver, so the achieved rate
      // is the meaningful per-receiver share of the queue.
      const engine::Time listened = horizon - traj.front().at;
      const double goodput =
          listened == 0 ? 0.0
                        : static_cast<double>(rep.received) /
                              static_cast<double>(listened);
      goodput_sum += goodput;
      std::printf("  %-4zu %6llu %7u %7u %9.0f%% %12.1f %12.1f\n", r,
                  static_cast<unsigned long long>(traj.front().at),
                  rep.level_changes, rep.final_level, 100.0 * near, goodput,
                  fair_rate);
      for (const cc::LevelChange& change : traj) {
        bench::JsonRecord rec;
        rec.bench = "fig7_adaptation";
        rec.name = std::string("level/") + g.name + "/rx" + std::to_string(r);
        rec.kernel = "loss_driven";
        rec.seconds = static_cast<double>(change.at);  // tick of the change
        rec.value = change.level;
        records.push_back(rec);
      }
    }

    // Converged = every member within one layer of fair share for >= 90% of
    // the final quarter of the run.
    const bool converged = group_near >= 0.90;
    all_converged = all_converged && converged;
    std::printf("  -> %s (worst near-fair dwell %.0f%%, aggregate goodput "
                "%.0f of %.0f pkt/tick)\n\n",
                converged ? "converged" : "NOT CONVERGED", 100.0 * group_near,
                goodput_sum, g.capacity);

    bench::JsonRecord conv;
    conv.bench = "fig7_adaptation";
    conv.name = std::string("converged/") + g.name;
    conv.kernel = "loss_driven";
    conv.value = converged ? 1.0 : 0.0;
    records.push_back(conv);
    bench::JsonRecord gp;
    gp.bench = "fig7_adaptation";
    gp.name = std::string("goodput_mean/") + g.name;
    gp.kernel = "loss_driven";
    gp.symbols_per_s = goodput_sum / static_cast<double>(g.receivers);
    gp.value = goodput_sum / g.capacity;  // capacity utilization
    records.push_back(gp);
  }

  bench::JsonRecord eq;
  eq.bench = "fig7_adaptation";
  eq.name = "threads_equivalence";  // threads=2/cohort=8 replay == golden
  eq.kernel = "loss_driven";
  eq.value = threads_equal ? 1.0 : 0.0;
  records.push_back(eq);

  bench::append_json(records);
  if (!threads_equal) {
    std::fprintf(stderr,
                 "fig7_adaptation: threads=2 replay DIVERGED from the "
                 "sequential run\n");
    return 1;
  }
  std::printf("threads=2 replay byte-identical to the sequential run\n");
  if (!all_converged) {
    std::fprintf(stderr, "fig7_adaptation: convergence gate FAILED\n");
    return 1;
  }
  std::printf("all groups converged to within one layer of fair share\n");
  return 0;
}
