// Google-Benchmark microbenchmarks for the data-path kernels underlying
// every timing table: the word-wise XOR, the GF(2^8)/GF(2^16) fused
// multiply-accumulate buffer kernels, the XOR-only Cauchy kernel, and
// end-to-end Tornado encode/decode at a mid-size block.
#include <benchmark/benchmark.h>

#include "core/tornado.hpp"
#include "gf/cauchy_xor.hpp"
#include "gf/gf256.hpp"
#include "gf/gf65536.hpp"
#include "util/random.hpp"
#include "util/symbols.hpp"

namespace {

using namespace fountain;

void BM_XorInto(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  util::SymbolMatrix m(2, bytes);
  m.fill_random(1);
  for (auto _ : state) {
    util::xor_into(m.row(0), m.row(1));
    benchmark::DoNotOptimize(m.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_XorInto)->Arg(512)->Arg(1024)->Arg(4096);

void BM_GF256Fma(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  util::SymbolMatrix m(2, bytes);
  m.fill_random(2);
  for (auto _ : state) {
    gf::GF256::fma_buffer(m.row(0).data(), m.row(1).data(), bytes, 0x8E);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_GF256Fma)->Arg(512)->Arg(1024)->Arg(4096);

void BM_GF65536Fma(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  util::SymbolMatrix m(2, bytes);
  m.fill_random(3);
  for (auto _ : state) {
    gf::GF65536::fma_buffer(m.row(0).data(), m.row(1).data(), bytes, 0xBEEF);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_GF65536Fma)->Arg(512)->Arg(1024)->Arg(4096);

void BM_CauchyXorFma(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  util::SymbolMatrix m(2, bytes);
  m.fill_random(4);
  for (auto _ : state) {
    gf::cauchy_xor_fma(m.row(0).data(), m.row(1).data(), bytes, 0x8E);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CauchyXorFma)->Arg(512)->Arg(1024)->Arg(4096);

void BM_TornadoEncode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::TornadoCode code(core::TornadoParams::tornado_a(k, 1024, 5));
  util::SymbolMatrix src(k, 1024);
  src.fill_random(5);
  util::SymbolMatrix enc(code.encoded_count(), 1024);
  for (auto _ : state) {
    code.encode(src, enc);
    benchmark::DoNotOptimize(enc.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * 1024));
}
BENCHMARK(BM_TornadoEncode)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TornadoDecode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::TornadoCode code(core::TornadoParams::tornado_a(k, 1024, 6));
  util::SymbolMatrix src(k, 1024);
  src.fill_random(6);
  util::SymbolMatrix enc(code.encoded_count(), 1024);
  code.encode(src, enc);
  util::Rng rng(7);
  const auto order = rng.permutation(code.encoded_count());
  for (auto _ : state) {
    auto dec = code.make_decoder();
    for (const auto index : order) {
      if (dec->add_symbol(index, enc.row(index))) break;
    }
    benchmark::DoNotOptimize(dec->complete());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * 1024));
}
BENCHMARK(BM_TornadoDecode)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TornadoStructuralDecode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::TornadoCode code(core::TornadoParams::tornado_a(k, 2, 8));
  util::Rng rng(9);
  const auto order = rng.permutation(code.encoded_count());
  auto dec = code.make_structural_decoder();
  for (auto _ : state) {
    dec->reset();
    for (const auto index : order) {
      if (dec->add_index(index)) break;
    }
    benchmark::DoNotOptimize(dec->complete());
  }
}
BENCHMARK(BM_TornadoStructuralDecode)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
