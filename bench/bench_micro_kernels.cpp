// Microbenchmarks for the data-path kernels underlying every timing table:
// the dispatched XOR block kernels (per ISA tier, single- and multi-source),
// the GF(2^8) split-nibble multiply-accumulate, the GF(2^16) and XOR-Cauchy
// kernels, and end-to-end Tornado encode/decode at a mid-size block.
//
// Standalone (no external benchmark library): each case is timed by
// repetition until a minimum wall-clock window is filled, the per-op time
// reported, and every measurement appended to the JSON perf log
// (BENCH_results.json; see bench_common.hpp).
//
// Flags / env:
//   --expect-simd         exit non-zero if a SIMD tier is compiled in and
//                         CPU-supported but the scalar tier was selected
//                         (CI guard against silent dispatch regressions)
//   FOUNTAIN_BENCH_QUICK  =1 shrinks sizes and timing windows (CI smoke run)
//   FOUNTAIN_FORCE_SCALAR / FOUNTAIN_FORCE_ISA   override dispatch
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/tornado.hpp"
#include "gf/cauchy_xor.hpp"
#include "gf/gf256.hpp"
#include "gf/gf65536.hpp"
#include "kern/kernels.hpp"
#include "util/random.hpp"
#include "util/symbols.hpp"
#include "util/timer.hpp"

namespace {

using namespace fountain;

/// Seconds per op, measured over a repetition window of at least
/// `min_seconds` wall time.
double time_op(const std::function<void()>& fn, double min_seconds) {
  fn();  // warm-up (page in buffers, build tables)
  long reps = 1;
  for (;;) {
    util::WallTimer timer;
    for (long i = 0; i < reps; ++i) fn();
    const double s = timer.seconds();
    if (s >= min_seconds) return s / static_cast<double>(reps);
    const double grow = s > 0 ? (min_seconds * 1.3) / s : 10.0;
    reps = std::max(reps + 1, static_cast<long>(
                                  static_cast<double>(reps) *
                                  std::min(grow, 100.0)));
  }
}

struct Harness {
  std::vector<bench::JsonRecord> records;
  double min_seconds;

  /// Times `fn`, prints one table row, and logs a JSON record.
  /// Returns MB/s.
  double run(const std::string& name, const std::string& kernel,
             double bytes_per_op, const std::function<void()>& fn) {
    const double s = time_op(fn, min_seconds);
    const double mbps = bytes_per_op / s / 1e6;
    std::printf("%-28s %-8s %12.1f MB/s %14.3g s/op\n", name.c_str(),
                kernel.c_str(), mbps, s);
    records.push_back({"micro_kernels", name, kernel, s, mbps, 0});
    return mbps;
  }
};

const std::vector<kern::Isa> kTiers = {
    kern::Isa::kScalar, kern::Isa::kSse2, kern::Isa::kAvx2,
    kern::Isa::kAvx512, kern::Isa::kGfni, kern::Isa::kNeon};

}  // namespace

int main(int argc, char** argv) {
  bool expect_simd = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--expect-simd") == 0) expect_simd = true;
  }

  const bool quick = bench::quick_mode();
  Harness h;
  h.min_seconds = quick ? 0.01 : 0.1;

  std::printf("Micro kernels (active ISA: %s)\n",
              kern::isa_name(kern::active_isa()));
  bench::print_rule(70);

  // Calibration record: a fixed scalar workload whose throughput tracks only
  // the host (clock, memory), never the kernels under test. tools/bench_diff
  // divides every current measurement by the calibration ratio so a slower
  // CI machine does not read as a code regression.
  {
    std::vector<std::uint8_t> a(65536, 0x5a), b(65536, 0xa5);
    const kern::Ops* scalar = kern::ops_for(kern::Isa::kScalar);
    h.run("calibration/xor64k", "scalar", 65536.0,
          [&] { scalar->xor_block(a.data(), b.data(), a.size()); });
  }

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{1024}
            : std::vector<std::size_t>{512, 1024, 4096};

  // Per-tier XOR and GF(2^8) kernels, differentially benchmarked against the
  // scalar tier so the speedup is visible in one run.
  double xor_scalar_1k = 0, xor_best_1k = 0;
  double gf_scalar_1k = 0, gf_best_1k = 0;
  for (const std::size_t bytes : sizes) {
    util::SymbolMatrix m(6, bytes);
    m.fill_random(1);
    const auto tag = std::to_string(bytes);
    for (const kern::Isa isa : kTiers) {
      const kern::Ops* ops = kern::ops_for(isa);
      if (ops == nullptr) continue;
      const double mbps =
          h.run("xor_block/" + tag, kern::isa_name(isa), double(bytes), [&] {
            ops->xor_block(m.row(0).data(), m.row(1).data(), bytes);
          });
      if (bytes == 1024) {
        if (isa == kern::Isa::kScalar) xor_scalar_1k = mbps;
        xor_best_1k = std::max(xor_best_1k, mbps);
      }
      h.run("xor_block_4/" + tag, kern::isa_name(isa), 4.0 * double(bytes),
            [&] {
              ops->xor_block_4(m.row(0).data(), m.row(1).data(),
                               m.row(2).data(), m.row(3).data(),
                               m.row(4).data(), bytes);
            });
      const kern::Gf256Ctx ctx = gf::GF256::mul_ctx(0x8E);
      const double gf_mbps =
          h.run("gf256_fma_block/" + tag, kern::isa_name(isa), double(bytes),
                [&] {
                  ops->gf256_fma(m.row(0).data(), m.row(1).data(), bytes, ctx);
                });
      if (bytes == 1024) {
        if (isa == kern::Isa::kScalar) gf_scalar_1k = gf_mbps;
        gf_best_1k = std::max(gf_best_1k, gf_mbps);
      }
    }
    // Dispatched public entry points and the other field kernels.
    h.run("xor_into/" + tag, kern::isa_name(kern::active_isa()), double(bytes),
          [&] { util::xor_into(m.row(0), m.row(1)); });
    h.run("GF256::fma_buffer/" + tag, kern::isa_name(kern::active_isa()),
          double(bytes), [&] {
            gf::GF256::fma_buffer(m.row(0).data(), m.row(1).data(), bytes,
                                  0x8E);
          });
    h.run("GF65536::fma_buffer/" + tag, "gf65536", double(bytes), [&] {
      gf::GF65536::fma_buffer(m.row(0).data(), m.row(1).data(), bytes, 0xBEEF);
    });
    h.run("cauchy_xor_fma/" + tag, kern::isa_name(kern::active_isa()),
          double(bytes), [&] {
            gf::cauchy_xor_fma(m.row(0).data(), m.row(1).data(), bytes, 0x8E);
          });
  }

  // Multi-row folds: the cache-blocked primitives (one tiled pass over the
  // whole neighborhood, four sources per sub-pass) against the row-at-a-time
  // loop they replaced. Rows are sized so the destination no longer fits in
  // L1 alongside the streaming sources — the regime encoder/decoder packets
  // occupy — making the destination-reload savings visible.
  double rows_single_mbps = 0, rows_blocked_mbps = 0;
  {
    const std::size_t rows = 16;
    const std::size_t bytes = quick ? 16384 : 65536;
    const std::string tag =
        std::to_string(rows) + "x" + std::to_string(bytes);
    util::SymbolMatrix m(rows + 1, bytes);
    m.fill_random(3);
    const std::uint8_t* srcs[16];
    kern::Gf256Ctx ctxs[16];
    for (std::size_t i = 0; i < rows; ++i) {
      srcs[i] = m.row(i + 1).data();
      ctxs[i] = gf::GF256::mul_ctx(static_cast<gf::GF256::Element>(i + 2));
    }
    std::uint8_t* dst = m.row(0).data();
    for (const kern::Isa isa : kTiers) {
      const kern::Ops* ops = kern::ops_for(isa);
      if (ops == nullptr) continue;
      const double single =
          h.run("xor_rows_single/" + tag, kern::isa_name(isa),
                double(rows) * double(bytes), [&] {
                  for (std::size_t i = 0; i < rows; ++i) {
                    ops->xor_block(dst, srcs[i], bytes);
                  }
                });
      const double blocked =
          h.run("xor_rows_blocked/" + tag, kern::isa_name(isa),
                double(rows) * double(bytes),
                [&] { kern::xor_block_rows(*ops, dst, srcs, rows, bytes); });
      if (isa == kern::active_isa()) {
        rows_single_mbps = single;
        rows_blocked_mbps = blocked;
      }
      h.run("gf256_fma_rows_single/" + tag, kern::isa_name(isa),
            double(rows) * double(bytes), [&] {
              for (std::size_t i = 0; i < rows; ++i) {
                ops->gf256_fma(dst, srcs[i], bytes, ctxs[i]);
              }
            });
      h.run("gf256_fma_rows_blocked/" + tag, kern::isa_name(isa),
            double(rows) * double(bytes), [&] {
              kern::gf256_fma_rows(*ops, dst, srcs, ctxs, rows, bytes);
            });
    }
  }

  // End-to-end Tornado encode/decode (symbols/s matters here, so log both).
  {
    const std::size_t k = quick ? 256 : 1024;
    const std::size_t packet = 1024;
    core::TornadoCode code(core::TornadoParams::tornado_a(k, packet, 5));
    util::SymbolMatrix src(k, packet);
    src.fill_random(5);
    util::SymbolMatrix enc(code.encoded_count(), packet);
    const double enc_s =
        time_op([&] { code.encode(src, enc); }, h.min_seconds);
    const double enc_mbps = double(k * packet) / enc_s / 1e6;
    std::printf("%-28s %-8s %12.1f MB/s %14.3g s/op\n",
                ("tornado_encode/k=" + std::to_string(k)).c_str(), "tornado_a",
                enc_mbps, enc_s);
    h.records.push_back({"micro_kernels",
                         "tornado_encode/k=" + std::to_string(k), "tornado_a",
                         enc_s, enc_mbps, double(k) / enc_s});

    code.encode(src, enc);
    util::Rng rng(7);
    const auto order = rng.permutation(code.encoded_count());
    const double dec_s = time_op(
        [&] {
          auto dec = code.make_decoder();
          for (const auto index : order) {
            if (dec->add_symbol(index, enc.row(index))) break;
          }
        },
        h.min_seconds);
    const double dec_mbps = double(k * packet) / dec_s / 1e6;
    std::printf("%-28s %-8s %12.1f MB/s %14.3g s/op\n",
                ("tornado_decode/k=" + std::to_string(k)).c_str(), "tornado_a",
                dec_mbps, dec_s);
    h.records.push_back({"micro_kernels",
                         "tornado_decode/k=" + std::to_string(k), "tornado_a",
                         dec_s, dec_mbps, double(k) / dec_s});
  }

  bench::print_rule(70);
  if (xor_scalar_1k > 0 && xor_best_1k > 0) {
    std::printf("xor_block 1 KB speedup vs scalar:      %.2fx\n",
                xor_best_1k / xor_scalar_1k);
  }
  if (gf_scalar_1k > 0 && gf_best_1k > 0) {
    std::printf("gf256_fma_block 1 KB speedup vs scalar: %.2fx\n",
                gf_best_1k / gf_scalar_1k);
  }
  if (rows_single_mbps > 0 && rows_blocked_mbps > 0) {
    std::printf("xor multi-row blocked vs row-at-a-time:  %.2fx\n",
                rows_blocked_mbps / rows_single_mbps);
  }

  bench::append_json(h.records);

  if (expect_simd && kern::active_isa() == kern::Isa::kScalar &&
      (kern::ops_for(kern::Isa::kSse2) != nullptr ||
       kern::ops_for(kern::Isa::kAvx2) != nullptr ||
       kern::ops_for(kern::Isa::kAvx512) != nullptr ||
       kern::ops_for(kern::Isa::kGfni) != nullptr ||
       kern::ops_for(kern::Isa::kNeon) != nullptr)) {
    std::fprintf(stderr,
                 "--expect-simd: a SIMD tier is available but the scalar "
                 "tier is active\n");
    return 2;
  }
  return 0;
}
