// LT rateless codec vs Tornado, the two axes the paper trades off in
// Sections 7-9: reception overhead (how far past k a receiver must listen)
// and raw encode/decode throughput. Three sweeps:
//
//   1. Reception overhead eps of the LT inactivation decoder against
//      Tornado B on random distinct-packet feeds (the Figure 2 experiment
//      re-run with the rateless codec in the ring).
//   2. Encode throughput: LT streams symbols one write_symbol() at a time
//      (any index, unbounded space); Tornado amortises one whole-block
//      encode over its n outputs. Ladder runs to k = 1M packets.
//   3. Decode throughput from a shuffled distinct feed at each codec's
//      natural overhead. The decode ladder stops at k = 256K: an LT decode
//      at minimal overhead keeps one GF(2) mask row per resolved source
//      (~resolved * inactivated/64 * 8 bytes), which at k = 1M can reach
//      the GB range — measured once, not worth every CI cycle.
//
// JSON: "encode/..." and "decode/..." records are perf-gated by
// tools/bench_diff; "overhead/..." records are statistics and ride along
// ungated.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/tornado.hpp"
#include "lt/lt_code.hpp"
#include "sim/overhead.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/symbols.hpp"

namespace {

using namespace fountain;

constexpr std::size_t kPacket = 1024;

lt::LtCode make_lt(std::size_t k, std::size_t symbol_size) {
  lt::LtParams p;
  p.k = k;
  p.symbol_size = symbol_size;
  p.seed = 4242;
  return lt::LtCode(p);
}

/// Median wall time to stream `count` encoding symbols starting at `first`.
/// The window deliberately starts past encoded_count(): cost is identical
/// anywhere in the index space, and this keeps the carousel-free path hot.
double run_lt_encode(const lt::LtCode& code, const util::SymbolMatrix& source,
                     std::uint32_t first, std::size_t count) {
  const auto encoder = code.make_encoder(source);
  std::vector<std::uint8_t> out(code.symbol_size());
  return bench::time_median(3, [&] {
    for (std::size_t i = 0; i < count; ++i) {
      encoder->write_symbol(first + static_cast<std::uint32_t>(i),
                            util::ByteSpan(out));
    }
  });
}

double run_tornado_encode(const core::TornadoCode& code,
                          const util::SymbolMatrix& source,
                          util::SymbolMatrix& encoding) {
  return bench::time_median(3, [&] { code.encode(source, encoding); });
}

struct DecodeResult {
  double seconds = 0;
  double overhead = 0;  // packets_consumed / k - 1 at completion
};

/// Decode from a fresh random permutation of the distinct encoding indices;
/// the same harness serves both codecs (both expose make_decoder()).
DecodeResult run_decode(const fec::ErasureCode& code,
                        const util::SymbolMatrix& encoding, util::Rng& rng) {
  const auto order = rng.permutation(code.encoded_count());
  DecodeResult result;
  result.seconds = bench::time_median(3, [&] {
    auto decoder = code.make_decoder();
    std::size_t used = 0;
    for (const auto index : order) {
      ++used;
      if (decoder->add_symbol(index, encoding.row(index))) break;
    }
    if (!decoder->complete()) std::abort();
    result.overhead = static_cast<double>(used) /
                          static_cast<double>(code.source_count()) -
                      1.0;
  });
  return result;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  util::Rng rng(11);
  std::vector<bench::JsonRecord> records;

  // --- 1. Reception overhead ------------------------------------------------
  const std::size_t eps_trials =
      bench::env_size("FOUNTAIN_LT_EPS_TRIALS", quick ? 40 : 200);
  const std::vector<std::size_t> eps_ladder =
      quick ? std::vector<std::size_t>{4096}
            : std::vector<std::size_t>{4096, 16384, 65536};

  std::printf("LT vs Tornado: reception overhead (random distinct feeds, "
              "%zu trials each)\n",
              eps_trials);
  std::printf("%-10s %12s %12s %12s %12s\n", "k", "lt avg", "lt max",
              "tornB avg", "tornB max");
  bench::print_rule(62);
  for (const std::size_t k : eps_ladder) {
    const lt::LtCode lt_code = make_lt(k, 32);
    core::TornadoCode tb(core::TornadoParams::tornado_b(k, 32, 99));
    util::SampleSet lt_set;
    util::SampleSet tb_set;
    for (const double s :
         sim::sample_overhead_distribution(lt_code, eps_trials, 2024)) {
      lt_set.add(s);
    }
    for (const double s :
         sim::sample_overhead_distribution(tb, eps_trials, 2024)) {
      tb_set.add(s);
    }
    std::printf("%-10zu %12.4f %12.4f %12.4f %12.4f\n", k, lt_set.mean(),
                lt_set.max(), tb_set.mean(), tb_set.max());
    const std::string name = "overhead/k=" + std::to_string(k);
    records.push_back(
        {"lt_overhead", name, "lt", 0, 0, 0, lt_set.mean()});
    records.push_back(
        {"lt_overhead", name, "tornado_b", 0, 0, 0, tb_set.mean()});
  }

  // --- 2. Encode throughput -------------------------------------------------
  const std::vector<std::size_t> enc_ladder =
      quick ? std::vector<std::size_t>{16384, 65536}
            : std::vector<std::size_t>{16384, 65536, 262144, 1048576};

  std::printf("\nEncode throughput (P = %zu B; LT streams per-symbol, "
              "Tornado per-block)\n",
              kPacket);
  std::printf("%-10s %14s %14s %14s %14s\n", "k", "lt MB/s", "lt sym/s",
              "tornB MB/s", "tornB sym/s");
  bench::print_rule(70);
  for (const std::size_t k : enc_ladder) {
    util::SymbolMatrix source(k, kPacket);
    source.fill_random(5);

    const lt::LtCode lt_code = make_lt(k, kPacket);
    const std::size_t stream = std::min<std::size_t>(k, 262144);
    const double lt_secs =
        run_lt_encode(lt_code, source,
                      static_cast<std::uint32_t>(lt_code.encoded_count()),
                      stream) /
        static_cast<double>(stream);

    core::TornadoCode tb(core::TornadoParams::tornado_b(k, kPacket, 42));
    util::SymbolMatrix encoding(tb.encoded_count(), kPacket);
    const double tb_secs = run_tornado_encode(tb, source, encoding) /
                           static_cast<double>(tb.encoded_count());

    const auto mbps = [](double per_symbol) {
      return static_cast<double>(kPacket) / per_symbol / 1e6;
    };
    std::printf("%-10zu %14.1f %14.0f %14.1f %14.0f\n", k, mbps(lt_secs),
                1.0 / lt_secs, mbps(tb_secs), 1.0 / tb_secs);
    const std::string name = "encode/k=" + std::to_string(k);
    records.push_back(
        {"lt_overhead", name, "lt", lt_secs, mbps(lt_secs), 1.0 / lt_secs});
    records.push_back({"lt_overhead", name, "tornado_b", tb_secs,
                       mbps(tb_secs), 1.0 / tb_secs});
  }

  // --- 3. Decode throughput -------------------------------------------------
  const std::vector<std::size_t> dec_ladder =
      quick ? std::vector<std::size_t>{16384}
            : std::vector<std::size_t>{16384, 65536, 262144};

  std::printf("\nDecode throughput (P = %zu B, shuffled distinct feed; "
              "ladder capped at 262144,\n see header comment on LT mask "
              "memory)\n",
              kPacket);
  std::printf("%-10s %12s %10s %12s %10s\n", "k", "lt MB/s", "lt eps",
              "tornB MB/s", "tornB eps");
  bench::print_rule(58);
  for (const std::size_t k : dec_ladder) {
    util::SymbolMatrix source(k, kPacket);
    source.fill_random(6);

    const lt::LtCode lt_code = make_lt(k, kPacket);
    util::SymbolMatrix lt_encoding(lt_code.encoded_count(), kPacket);
    lt_code.encode(source, lt_encoding);
    const DecodeResult lt_res = run_decode(lt_code, lt_encoding, rng);

    core::TornadoCode tb(core::TornadoParams::tornado_b(k, kPacket, 42));
    util::SymbolMatrix tb_encoding(tb.encoded_count(), kPacket);
    tb.encode(source, tb_encoding);
    const DecodeResult tb_res = run_decode(tb, tb_encoding, rng);

    const auto mbps = [&](double secs) {
      return static_cast<double>(k) * kPacket / secs / 1e6;
    };
    std::printf("%-10zu %12.1f %10.4f %12.1f %10.4f\n", k,
                mbps(lt_res.seconds), lt_res.overhead, mbps(tb_res.seconds),
                tb_res.overhead);
    const std::string name = "decode/k=" + std::to_string(k);
    records.push_back({"lt_overhead", name, "lt", lt_res.seconds,
                       mbps(lt_res.seconds),
                       static_cast<double>(k) / lt_res.seconds});
    records.push_back({"lt_overhead", name, "tornado_b", tb_res.seconds,
                       mbps(tb_res.seconds),
                       static_cast<double>(k) / tb_res.seconds});
  }

  std::printf("\nShape check vs paper: LT overhead shrinks with k (robust "
              "soliton concentration)\nwhile Tornado's is fixed by its graph; "
              "Tornado keeps a constant-factor throughput\nedge — the "
              "Section 9 trade: unbounded index space bought with CPU.\n");
  bench::append_json(records);
  return 0;
}
