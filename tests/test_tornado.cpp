// Tornado codes: degree distributions, graph construction, cascade layout,
// and the central encode/decode properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/degree.hpp"
#include "core/graph.hpp"
#include "core/tornado.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using core::BipartiteGraph;
using core::Cascade;
using core::HeavyTailDistribution;
using core::TornadoCode;
using core::TornadoParams;

TEST(HeavyTail, EdgeFractionsSumToOne) {
  for (unsigned d : {1u, 2u, 8u, 64u, 200u}) {
    HeavyTailDistribution dist(d);
    double sum = 0.0;
    for (unsigned i = 2; i <= d + 1; ++i) sum += dist.edge_fraction(i);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "D=" << d;
  }
}

TEST(HeavyTail, NodeFractionsSumToOne) {
  HeavyTailDistribution dist(8);
  double sum = 0.0;
  for (unsigned i = 2; i <= 9; ++i) sum += dist.node_fraction(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(HeavyTail, AverageDegreeFormula) {
  // avg node degree = 1 / sum(lambda_i / i); check against direct sum.
  HeavyTailDistribution dist(8);
  double direct = 0.0;
  for (unsigned i = 2; i <= 9; ++i) {
    direct += static_cast<double>(i) * dist.node_fraction(i);
  }
  EXPECT_NEAR(dist.average_node_degree(), direct, 1e-9);
  // Heavier tail => more edges per node.
  EXPECT_GT(HeavyTailDistribution(64).average_node_degree(),
            HeavyTailDistribution(8).average_node_degree());
}

TEST(HeavyTail, SamplesStayInRange) {
  HeavyTailDistribution dist(8);
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const unsigned deg = dist.sample(rng);
    ASSERT_GE(deg, 2u);
    ASSERT_LE(deg, 9u);
  }
}

TEST(HeavyTail, EmpiricalFrequenciesMatch) {
  HeavyTailDistribution dist(8);
  util::Rng rng(2);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[dist.sample(rng)];
  for (unsigned deg = 2; deg <= 9; ++deg) {
    EXPECT_NEAR(static_cast<double>(counts[deg]) / n, dist.node_fraction(deg),
                0.01)
        << "degree " << deg;
  }
}

TEST(HeavyTail, DegreeTwoIsMostCommon) {
  // lambda_2 / 2 dominates the node distribution.
  HeavyTailDistribution dist(16);
  for (unsigned deg = 3; deg <= 17; ++deg) {
    EXPECT_GT(dist.node_fraction(2), dist.node_fraction(deg));
  }
}

TEST(Graph, AdjacencyTransposeConsistent) {
  HeavyTailDistribution dist(8);
  util::Rng rng(3);
  const auto g = BipartiteGraph::random(200, 100, dist, rng);
  EXPECT_EQ(g.left_count(), 200u);
  EXPECT_EQ(g.right_count(), 100u);
  // Edge (r, l) appears in left_checks(l) iff l appears in
  // check_neighbors(r), with equal multiplicity (1 after dedup).
  std::set<std::pair<std::uint32_t, std::uint32_t>> from_right;
  for (std::uint32_t r = 0; r < 100; ++r) {
    std::set<std::uint32_t> neigh;
    for (const auto l : g.check_neighbors(r)) {
      EXPECT_TRUE(neigh.insert(l).second) << "duplicate edge at check " << r;
      from_right.emplace(r, l);
    }
  }
  std::size_t from_left = 0;
  for (std::uint32_t l = 0; l < 200; ++l) {
    for (const auto r : g.left_checks(l)) {
      EXPECT_TRUE(from_right.count({r, l}));
      ++from_left;
    }
  }
  EXPECT_EQ(from_left, from_right.size());
  EXPECT_EQ(g.edge_count(), from_right.size());
}

TEST(Graph, EdgeCountTracksDistribution) {
  HeavyTailDistribution dist(8);
  util::Rng rng(4);
  const auto g = BipartiteGraph::random(5000, 2500, dist, rng);
  const double expected = 5000 * dist.average_node_degree();
  // Parallel-edge cancellation removes a small fraction.
  EXPECT_GT(static_cast<double>(g.edge_count()), expected * 0.9);
  EXPECT_LT(static_cast<double>(g.edge_count()), expected * 1.05);
}

TEST(Cascade, LevelLayoutAndExactStretch) {
  const auto params = TornadoParams::tornado_a(1000, 32, 5);
  Cascade cascade(params);
  EXPECT_EQ(cascade.source_count(), 1000u);
  EXPECT_EQ(cascade.encoded_count(), 2000u);  // exactly n = 2k
  EXPECT_EQ(cascade.level_offset(0), 0u);
  std::size_t total = 0;
  for (std::size_t j = 0; j < cascade.level_count(); ++j) {
    EXPECT_EQ(cascade.level_offset(j), total);
    total += cascade.level_size(j);
    if (j > 0) {
      // Levels shrink by beta = 1/2 (rounded up).
      EXPECT_EQ(cascade.level_size(j),
                (cascade.level_size(j - 1) + 1) / 2);
    }
  }
  EXPECT_EQ(total, cascade.node_count());
  EXPECT_GE(cascade.parity_count(), 1u);
  EXPECT_EQ(cascade.graph_count() + 1, cascade.level_count());
  // Tail stops near sqrt(k).
  EXPECT_GE(cascade.tail_size(), 31u);
}

TEST(Cascade, LevelOfIsConsistent) {
  Cascade cascade(TornadoParams::tornado_a(500, 16, 1));
  for (std::size_t j = 0; j < cascade.level_count(); ++j) {
    EXPECT_EQ(cascade.level_of(cascade.level_offset(j)), j);
    EXPECT_EQ(
        cascade.level_of(cascade.level_offset(j) + cascade.level_size(j) - 1),
        j);
  }
  EXPECT_THROW(cascade.level_of(cascade.node_count()), std::out_of_range);
}

TEST(Cascade, DeterministicForSameSeed) {
  Cascade a(TornadoParams::tornado_a(300, 16, 77));
  Cascade b(TornadoParams::tornado_a(300, 16, 77));
  ASSERT_EQ(a.graph_count(), b.graph_count());
  for (std::size_t j = 0; j < a.graph_count(); ++j) {
    ASSERT_EQ(a.graph(j).edge_count(), b.graph(j).edge_count());
    for (std::size_t r = 0; r < a.graph(j).right_count(); ++r) {
      const auto na = a.graph(j).check_neighbors(r);
      const auto nb = b.graph(j).check_neighbors(r);
      ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
    }
  }
}

TEST(Cascade, ParamValidation) {
  TornadoParams p = TornadoParams::tornado_a(100, 16);
  p.k = 0;
  EXPECT_THROW(Cascade{p}, std::invalid_argument);
  p = TornadoParams::tornado_a(100, 15);  // odd symbol size
  EXPECT_THROW(Cascade{p}, std::invalid_argument);
  p = TornadoParams::tornado_a(100, 16);
  p.stretch = 1.0;
  EXPECT_THROW(Cascade{p}, std::invalid_argument);
  p = TornadoParams::tornado_a(100, 16);
  p.heavy_tail_d = 0;
  EXPECT_THROW(Cascade{p}, std::invalid_argument);
}

TEST(Cascade, TinyFileDegeneratesToRs) {
  // k below the tail threshold: no graphs, pure RS.
  Cascade cascade(TornadoParams::tornado_a(16, 16, 1));
  EXPECT_EQ(cascade.graph_count(), 0u);
  EXPECT_EQ(cascade.node_count(), 16u);
  EXPECT_EQ(cascade.parity_count(), 16u);
}

class TornadoRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, char>> {};

TEST_P(TornadoRoundTrip, FullReceptionDecodes) {
  const auto [k, symbol_size, variant] = GetParam();
  const TornadoParams params =
      variant == 'A'
          ? TornadoParams::tornado_a(k, symbol_size, 11)
          : TornadoParams::tornado_b(k, symbol_size, 11);
  TornadoCode code(params);
  util::SymbolMatrix source(k, symbol_size);
  source.fill_random(static_cast<std::uint64_t>(k));
  util::SymbolMatrix encoding(code.encoded_count(), symbol_size);
  code.encode(source, encoding);

  util::Rng rng(static_cast<std::uint64_t>(k + symbol_size));
  const auto order = rng.permutation(code.encoded_count());
  auto decoder = code.make_decoder();
  std::size_t fed = 0;
  for (const auto index : order) {
    ++fed;
    if (decoder->add_symbol(index, encoding.row(index))) break;
  }
  ASSERT_TRUE(decoder->complete());
  EXPECT_EQ(decoder->source(), source);
  // Reception overhead must be modest (Figure 2 tops out below ~12%).
  EXPECT_LT(static_cast<double>(fed), 1.25 * k + 16.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TornadoRoundTrip,
    ::testing::Values(std::make_tuple(100, 16, 'A'),
                      std::make_tuple(250, 64, 'A'),
                      std::make_tuple(1000, 32, 'A'),
                      std::make_tuple(2000, 16, 'A'),
                      std::make_tuple(100, 16, 'B'),
                      std::make_tuple(1000, 32, 'B'),
                      std::make_tuple(2000, 16, 'B'),
                      std::make_tuple(33, 16, 'A'),
                      std::make_tuple(16, 16, 'A')));  // RS-degenerate

TEST(Tornado, StructuralAgreesWithDataDecoder) {
  // The structural decoder must declare completion at exactly the same
  // packet count as the payload decoder for the same arrival order.
  TornadoCode code(TornadoParams::tornado_a(500, 16, 3));
  util::SymbolMatrix source(500, 16);
  source.fill_random(1);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);

  util::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const auto order = rng.permutation(code.encoded_count());
    auto data = code.make_decoder();
    auto structural = code.make_structural_decoder();
    std::size_t data_done = 0;
    std::size_t structural_done = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (data_done == 0 &&
          data->add_symbol(order[i], encoding.row(order[i]))) {
        data_done = i + 1;
      }
      if (structural_done == 0 && structural->add_index(order[i])) {
        structural_done = i + 1;
      }
      if (data_done && structural_done) break;
    }
    EXPECT_EQ(data_done, structural_done) << "trial " << trial;
    EXPECT_EQ(data->source(), source);
  }
}

TEST(Tornado, DecodesFromSourcePacketsAlone) {
  TornadoCode code(TornadoParams::tornado_a(200, 16, 5));
  util::SymbolMatrix source(200, 16);
  source.fill_random(2);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);
  auto decoder = code.make_decoder();
  bool done = false;
  for (std::uint32_t i = 0; i < 200 && !done; ++i) {
    done = decoder->add_symbol(i, encoding.row(i));
  }
  ASSERT_TRUE(done);  // systematic: the k source packets suffice
  EXPECT_EQ(decoder->source(), source);
}

TEST(Tornado, DuplicatesDoNotAdvanceDecoding) {
  TornadoCode code(TornadoParams::tornado_a(100, 16, 6));
  util::SymbolMatrix source(100, 16);
  source.fill_random(3);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);
  auto decoder = code.make_decoder();
  for (int rep = 0; rep < 50; ++rep) {
    EXPECT_FALSE(decoder->add_symbol(7, encoding.row(7)));
  }
  EXPECT_FALSE(decoder->complete());
}

TEST(Tornado, StructuralResetIsClean) {
  TornadoCode code(TornadoParams::tornado_a(300, 16, 7));
  auto dec = code.make_structural_decoder();
  util::Rng rng(8);
  const auto order = rng.permutation(code.encoded_count());
  std::size_t first = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (dec->add_index(order[i])) {
      first = i + 1;
      break;
    }
  }
  ASSERT_TRUE(dec->complete());
  dec->reset();
  EXPECT_FALSE(dec->complete());
  std::size_t second = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (dec->add_index(order[i])) {
      second = i + 1;
      break;
    }
  }
  EXPECT_EQ(first, second);  // same order => identical completion point
}

TEST(Tornado, DataDecoderResetReusesAcrossReceivers) {
  // reset() must restore the empty state without reallocation so one payload
  // decoder can serve many simulated receivers (the engine's pooled sinks).
  TornadoCode code(TornadoParams::tornado_a(250, 16, 21));
  util::SymbolMatrix source(250, 16);
  source.fill_random(22);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);

  auto decoder = code.make_decoder();
  util::Rng rng(23);
  for (int receiver = 0; receiver < 3; ++receiver) {
    decoder->reset();
    EXPECT_FALSE(decoder->complete());
    const auto order = rng.permutation(code.encoded_count());
    bool done = false;
    for (const auto index : order) {
      if (decoder->add_symbol(index, encoding.row(index))) {
        done = true;
        break;
      }
    }
    ASSERT_TRUE(done) << receiver;
    EXPECT_EQ(decoder->source(), source) << receiver;
  }
}

TEST(Tornado, CheckPacketsAreXorOfNeighbors) {
  TornadoCode code(TornadoParams::tornado_a(128, 32, 9));
  const Cascade& cascade = code.cascade();
  util::SymbolMatrix source(128, 32);
  source.fill_random(4);
  util::SymbolMatrix encoding(code.encoded_count(), 32);
  code.encode(source, encoding);
  for (std::size_t j = 0; j < cascade.graph_count(); ++j) {
    const auto& g = cascade.graph(j);
    const std::size_t lo = cascade.level_offset(j);
    const std::size_t ro = cascade.level_offset(j + 1);
    for (std::size_t r = 0; r < g.right_count(); ++r) {
      std::vector<std::uint8_t> expect(32, 0);
      for (const auto l : g.check_neighbors(r)) {
        for (int b = 0; b < 32; ++b) expect[b] ^= encoding.row(lo + l)[b];
      }
      EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                             encoding.row(ro + r).begin()))
          << "level " << j << " check " << r;
    }
  }
}

TEST(Tornado, WrongSizesThrow) {
  TornadoCode code(TornadoParams::tornado_a(64, 16, 10));
  auto decoder = code.make_decoder();
  util::SymbolMatrix wrong(1, 8);
  EXPECT_THROW(decoder->add_symbol(0, wrong.row(0)), std::invalid_argument);
  util::SymbolMatrix right(1, 16);
  EXPECT_THROW(decoder->add_symbol(
                   static_cast<std::uint32_t>(code.encoded_count()),
                   right.row(0)),
               std::out_of_range);
  util::SymbolMatrix bad_source(63, 16);
  util::SymbolMatrix enc(code.encoded_count(), 16);
  EXPECT_THROW(code.encode(bad_source, enc), std::invalid_argument);
}

TEST(Tornado, VariantBNeedsFewerPackets) {
  // Tornado B's deeper construction buys a lower mean reception overhead and
  // a thinner tail than A at large block lengths (the regime the paper's
  // Figure 2 targets).
  const std::size_t k = 16384;
  TornadoCode a(TornadoParams::tornado_a(k, 16, 21));
  TornadoCode b(TornadoParams::tornado_b(k, 16, 21));
  util::Rng rng(22);
  std::vector<double> oa;
  std::vector<double> ob;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    for (auto* code : {&a, &b}) {
      const auto order = rng.permutation(code->encoded_count());
      auto dec = code->make_structural_decoder();
      std::size_t fed = 0;
      for (const auto index : order) {
        ++fed;
        if (dec->add_index(index)) break;
      }
      (code == &a ? oa : ob)
          .push_back(static_cast<double>(fed) / static_cast<double>(k) - 1.0);
    }
  }
  auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  auto worst = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() - 3];  // ~p95
  };
  EXPECT_LT(mean(ob), mean(oa) + 0.003);  // B at least matches A on average
  EXPECT_LT(worst(ob), worst(oa) + 0.005);  // with no fatter tail
}

TEST(Tornado, EdgeCountReflectsVariant) {
  TornadoCode a(TornadoParams::tornado_a(2000, 16, 1));
  TornadoCode b(TornadoParams::tornado_b(2000, 16, 1));
  EXPECT_GT(b.cascade().total_edges(), a.cascade().total_edges());
}

}  // namespace
}  // namespace fountain
