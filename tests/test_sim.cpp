// Experiment-harness primitives: overhead sampling and population order
// statistics.
#include <gtest/gtest.h>

#include "core/tornado.hpp"
#include "fec/interleaved.hpp"
#include "fec/reed_solomon.hpp"
#include "sim/overhead.hpp"

namespace fountain {
namespace {

TEST(OverheadSampling, RsHasZeroOverhead) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 40, 40, 16);
  const auto samples = sim::sample_overhead_distribution(*code, 50, 1);
  ASSERT_EQ(samples.size(), 50u);
  for (const double o : samples) EXPECT_DOUBLE_EQ(o, 0.0);  // MDS
}

TEST(OverheadSampling, TornadoOverheadSmallAndVariable) {
  core::TornadoCode code(core::TornadoParams::tornado_a(2000, 16, 2));
  const auto samples = sim::sample_overhead_distribution(code, 200, 3);
  double mean = sim::mean_of(samples);
  EXPECT_GT(mean, 0.0);
  EXPECT_LT(mean, 0.15);
  // Random graphs => run-to-run variation (paper Figure 2).
  double lo = samples[0];
  double hi = samples[0];
  for (double s : samples) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_GT(hi, lo);
}

TEST(OverheadSampling, InterleavedCouponCollectorOverhead) {
  // Blocks make the required reception grow beyond k (Figure 3 effect).
  fec::InterleavedCode code(1000, 50, 16);  // k_b = 20
  const auto samples = sim::sample_overhead_distribution(code, 100, 4);
  EXPECT_GT(sim::mean_of(samples), 0.05);
}

TEST(OverheadSampling, TornadoBBeatsTornadoA) {
  core::TornadoCode a(core::TornadoParams::tornado_a(4000, 16, 5));
  core::TornadoCode b(core::TornadoParams::tornado_b(4000, 16, 5));
  const auto sa = sim::sample_overhead_distribution(a, 100, 6);
  const auto sb = sim::sample_overhead_distribution(b, 100, 6);
  EXPECT_LT(sim::mean_of(sb), sim::mean_of(sa));
}

TEST(CarouselSampling, ProducesRequestedTrials) {
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 7));
  util::Rng rng(8);
  const auto carousel =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);
  const auto results = sim::sample_carousel_receptions(
      code, carousel,
      [](std::size_t, util::Rng& r) {
        return std::make_unique<net::BernoulliLoss>(0.1, r());
      },
      25, 9);
  ASSERT_EQ(results.size(), 25u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.efficiency(500), 0.5);
  }
}

TEST(OrderStatistics, ExpectedMinDecreasesWithPopulation) {
  util::Rng rng(10);
  std::vector<double> pool;
  for (int i = 0; i < 10000; ++i) pool.push_back(rng.uniform());
  util::Rng stat_rng(11);
  const double min1 = sim::expected_min_over(pool, 1, 300, stat_rng);
  const double min10 = sim::expected_min_over(pool, 10, 300, stat_rng);
  const double min100 = sim::expected_min_over(pool, 100, 300, stat_rng);
  EXPECT_GT(min1, min10);
  EXPECT_GT(min10, min100);
  EXPECT_NEAR(min1, 0.5, 0.05);   // E[U] = 1/2
  EXPECT_NEAR(min10, 1.0 / 11.0, 0.02);  // E[min of 10 uniforms] = 1/11
}

TEST(OrderStatistics, EmptyPoolThrows) {
  util::Rng rng(1);
  EXPECT_THROW(sim::expected_min_over({}, 5, 5, rng), std::invalid_argument);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(sim::mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(sim::mean_of({2.0, 4.0}), 3.0);
}

}  // namespace
}  // namespace fountain
