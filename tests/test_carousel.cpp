// Carousel cycling and per-receiver reception through the session engine.
#include <gtest/gtest.h>

#include <set>

#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "engine_test_util.hpp"
#include "fec/reed_solomon.hpp"
#include "net/loss.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using carousel::Carousel;
using test::listen_to_carousel;

TEST(Carousel, SequentialOrderCycles) {
  const auto c = Carousel::sequential(5);
  EXPECT_EQ(c.cycle_length(), 5u);
  for (std::uint64_t t = 0; t < 20; ++t) {
    EXPECT_EQ(c.packet_at(t), t % 5);
  }
}

TEST(Carousel, RandomOrderIsPermutation) {
  util::Rng rng(1);
  const auto c = Carousel::random_permutation(100, rng);
  std::set<std::uint32_t> seen(c.order().begin(), c.order().end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Carousel, EmptyOrderThrows) {
  EXPECT_THROW(Carousel({}), std::invalid_argument);
}

TEST(Reception, LosslessRsReceiverNeedsExactlyK) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 50, 50, 16);
  util::Rng rng(2);
  const auto c = Carousel::random_permutation(100, rng);
  const auto r = listen_to_carousel(
      *code, c, std::make_unique<net::BernoulliLoss>(0.0, 3), 0, 100000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.received, 50u);
  EXPECT_EQ(r.distinct, 50u);
  EXPECT_DOUBLE_EQ(r.efficiency(50), 1.0);
  EXPECT_DOUBLE_EQ(r.distinctness_efficiency(), 1.0);
}

TEST(Reception, LossyReceiverStillCompletes) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 50, 50, 16);
  util::Rng rng(4);
  const auto c = Carousel::random_permutation(100, rng);
  const auto r = listen_to_carousel(
      *code, c, std::make_unique<net::BernoulliLoss>(0.5, 5), 17, 1000000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.distinct, 50u);   // MDS still needs exactly 50 distinct
  EXPECT_GE(r.received, 50u);   // but duplicates may arrive first
  EXPECT_GT(r.lost, 0u);        // some were lost on the link
  EXPECT_EQ(r.addressed, r.received + r.lost);
}

TEST(Reception, HorizonBoundsTheRun) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 50, 50, 16);
  const auto c = Carousel::sequential(100);
  const auto r = listen_to_carousel(
      *code, c, std::make_unique<net::BernoulliLoss>(0.0, 6), 0, 10);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.received, 10u);  // lossless: every slot inside the budget
}

TEST(Reception, StartOffsetChangesPhase) {
  // A receiver joining mid-cycle must still complete with exactly k distinct
  // packets under no loss (any k distinct suffice for RS).
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 20, 20, 16);
  const auto c = Carousel::sequential(40);
  for (std::uint64_t start : {0ULL, 7ULL, 39ULL}) {
    const auto r = listen_to_carousel(
        *code, c, std::make_unique<net::BernoulliLoss>(0.0, 7), start, 1000);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.received, 20u);
  }
}

TEST(Reception, TornadoOverheadVisibleInEfficiency) {
  core::TornadoCode code(core::TornadoParams::tornado_a(1000, 16, 5));
  util::Rng rng(8);
  const auto c = Carousel::random_permutation(code.encoded_count(), rng);
  const auto r = listen_to_carousel(
      code, c, std::make_unique<net::BernoulliLoss>(0.0, 9), 0, 100000);
  ASSERT_TRUE(r.completed);
  // Tornado needs (1 + eps) k with small positive eps.
  EXPECT_GT(r.received, 1000u);
  EXPECT_LT(r.received, 1200u);
  EXPECT_GT(r.efficiency(1000), 0.8);
  EXPECT_LT(r.efficiency(1000), 1.0);
}

TEST(Reception, DuplicatesAppearUnderHighLossSmallStretch) {
  // At 60% loss and stretch 2 the receiver cannot finish within one cycle,
  // so later cycles deliver duplicates: eta_d < 1 (paper Section 6.4).
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 6));
  util::Rng rng(10);
  const auto c = Carousel::random_permutation(code.encoded_count(), rng);
  const auto r = listen_to_carousel(
      code, c, std::make_unique<net::BernoulliLoss>(0.6, 11), 0, 10000000);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.distinctness_efficiency(), 1.0);
  EXPECT_GT(r.received, r.distinct);
}

}  // namespace
}  // namespace fountain
