// Digital-fountain protocol: server scheduling, receiver subscription
// behaviour (now executed by the engine's adaptive policy), the statistical
// decoding client, and whole sessions.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <optional>
#include <set>
#include <utility>

#include "core/tornado.hpp"
#include "fec/reed_solomon.hpp"
#include "proto/client.hpp"
#include "proto/fetch.hpp"
#include "proto/server.hpp"
#include "proto/session.hpp"

namespace fountain {
namespace {

using proto::FountainServer;
using proto::ProtocolConfig;
using proto::SimClientConfig;

ProtocolConfig small_config() {
  ProtocolConfig cfg;
  cfg.layers = 4;
  cfg.sp_base_interval = 2;
  cfg.burst_period = 8;
  cfg.burst_length = 1;
  return cfg;
}

TEST(Server, BurstCadence) {
  FountainServer server(small_config(), 64);
  // burst_period = 8, burst_length = 1: the burst closes each period.
  for (std::uint64_t r = 0; r < 32; ++r) {
    EXPECT_EQ(server.is_burst_round(r), r % 8 == 7) << r;
  }
  ProtocolConfig no_burst = small_config();
  no_burst.burst_period = 0;
  FountainServer quiet(no_burst, 64);
  for (std::uint64_t r = 0; r < 16; ++r) EXPECT_FALSE(quiet.is_burst_round(r));
}

TEST(Server, SyncPointCadenceInverselyProportionalToBandwidth) {
  FountainServer server(small_config(), 64);
  // Layer l has SPs every 2 << l rounds: lower layers more often.
  EXPECT_TRUE(server.is_sync_point(0, 0));
  EXPECT_TRUE(server.is_sync_point(0, 2));
  EXPECT_FALSE(server.is_sync_point(0, 3));
  EXPECT_TRUE(server.is_sync_point(3, 0));
  EXPECT_FALSE(server.is_sync_point(3, 8));
  EXPECT_TRUE(server.is_sync_point(3, 16));
}

TEST(Server, NormalRoundCarriesScheduledPackets) {
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 1000000;  // no bursts
  FountainServer server(cfg, 64);
  const auto round = server.next_round();
  EXPECT_EQ(round.number, 0u);
  EXPECT_FALSE(round.burst);
  ASSERT_EQ(round.layers.size(), 4u);
  // Per round, layer l carries rate_l packets per block * 8 blocks.
  EXPECT_EQ(round.layers[0].indices.size(), 8u);
  EXPECT_EQ(round.layers[1].indices.size(), 8u);
  EXPECT_EQ(round.layers[2].indices.size(), 16u);
  EXPECT_EQ(round.layers[3].indices.size(), 32u);
  // Together one round at full subscription tiles the whole encoding.
  std::set<std::uint32_t> seen;
  for (const auto& lr : round.layers) {
    for (const auto p : lr.indices) EXPECT_TRUE(seen.insert(p).second);
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Server, BurstRoundDoublesRateWithFreshPackets) {
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 4;
  FountainServer server(cfg, 64);
  server.next_round();
  server.next_round();
  server.next_round();
  const auto burst = server.next_round();  // round 3 closes the period
  ASSERT_TRUE(burst.burst);
  EXPECT_EQ(burst.layers[0].indices.size(), 16u);  // doubled
  // Layer 0 packets within the burst must be distinct (schedule advances,
  // no duplicate filler).
  std::set<std::uint32_t> seen(burst.layers[0].indices.begin(),
                               burst.layers[0].indices.end());
  EXPECT_EQ(seen.size(), burst.layers[0].indices.size());
}

TEST(Server, OneLevelPropertySurvivesBursts) {
  // Even with bursts, a fixed-level receiver sees no duplicates until the
  // entire encoding has been transmitted to its level.
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 3;
  FountainServer server(cfg, 64);
  std::set<std::uint32_t> seen;
  std::size_t received = 0;
  bool dup_before_full = false;
  for (int r = 0; r < 100 && seen.size() < 64; ++r) {
    const auto round = server.next_round();
    for (const auto& lr : round.layers) {
      if (lr.layer > 2) continue;  // subscribe to level 2
      for (const auto p : lr.indices) {
        ++received;
        if (!seen.insert(p).second && seen.size() < 64) {
          dup_before_full = true;
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_FALSE(dup_before_full);
  EXPECT_EQ(received, 64u);
}

TEST(Server, RoundAtIsPureAndMatchesTheCursor) {
  // round_at must be a pure function of the wall round (the engine replays
  // it from arbitrary points), and next_round just walks it.
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 3;
  FountainServer server(cfg, 64);
  FountainServer cursor(cfg, 64);
  for (std::uint64_t r = 0; r < 50; ++r) {
    const auto direct = server.round_at(r);
    const auto walked = cursor.next_round();
    ASSERT_EQ(direct.layers.size(), walked.layers.size()) << r;
    EXPECT_EQ(direct.burst, walked.burst) << r;
    for (std::size_t l = 0; l < direct.layers.size(); ++l) {
      EXPECT_EQ(direct.layers[l].indices, walked.layers[l].indices) << r;
      EXPECT_EQ(direct.layers[l].sync_point, walked.layers[l].sync_point) << r;
    }
    // Replaying an earlier round later must give the same answer.
    if (r >= 10) {
      EXPECT_EQ(server.round_at(r - 10).layers[0].indices,
                cursor.round_at(r - 10).layers[0].indices);
    }
  }
}

TEST(Server, EmitMatchesRoundAt) {
  // The engine batch view and the Round view are two encodings of the same
  // transmissions.
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 4;
  FountainServer server(cfg, 64);
  for (std::uint64_t r = 0; r < 20; ++r) {
    engine::PacketBatch batch;
    server.emit(r, batch);
    const auto round = server.round_at(r);
    EXPECT_EQ(batch.burst, round.burst) << r;
    ASSERT_EQ(batch.segments.size(), round.layers.size()) << r;
    for (std::size_t l = 0; l < batch.segments.size(); ++l) {
      const auto& seg = batch.segments[l];
      EXPECT_EQ(seg.layer, round.layers[l].layer);
      EXPECT_EQ(seg.sync_point, round.layers[l].sync_point);
      const std::vector<std::uint32_t> slice(
          batch.indices.begin() + seg.begin, batch.indices.begin() + seg.end);
      EXPECT_EQ(slice, round.layers[l].indices) << r << " layer " << l;
    }
  }
}

// One fixed-level receiver listening to the server through the engine.
proto::ReceiverReport run_one(const fec::ErasureCode& code,
                              const ProtocolConfig& cfg,
                              const SimClientConfig& client,
                              std::uint64_t seed) {
  const auto result = proto::run_session(code, cfg, {client}, seed, 200000);
  return result.receivers.front();
}

TEST(Receiver, LosslessFixedLevelIsPerfectlyEfficient) {
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 1));
  ProtocolConfig cfg = small_config();
  SimClientConfig client;
  client.base_loss = 0.0;
  client.fixed_level = true;
  client.initial_level = 3;
  const auto r = run_one(code, cfg, client, 7);
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.eta_d, 1.0);
  EXPECT_DOUBLE_EQ(r.observed_loss, 0.0);
  // eta == eta_c in the no-duplicate regime; Tornado overhead keeps it < 1.
  EXPECT_GT(r.eta, 0.85);
  EXPECT_LE(r.eta, 1.0);
  EXPECT_EQ(r.level_changes, 0u);
}

TEST(Receiver, ModerateLossStillNoDuplicatesAtFixedLevel) {
  // One Level Property: below (c-1-eps)/c loss, a fixed-level receiver
  // completes before any duplicate arrives.
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 2));
  ProtocolConfig cfg = small_config();
  SimClientConfig client;
  client.base_loss = 0.30;
  client.fixed_level = true;
  client.initial_level = 3;
  const auto r = run_one(code, cfg, client, 8);
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.eta_d, 1.0);
  EXPECT_NEAR(r.observed_loss, 0.30, 0.05);
}

TEST(Receiver, SevereLossForcesDuplicates) {
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 3));
  ProtocolConfig cfg = small_config();
  SimClientConfig client;
  client.base_loss = 0.65;
  client.fixed_level = true;
  client.initial_level = 3;
  const auto r = run_one(code, cfg, client, 9);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.eta_d, 1.0);
}

TEST(Receiver, AdaptiveClientChangesLevels) {
  // A receiver subscribed far above its capacity experiences congestion loss
  // and must back off level by level.
  core::TornadoCode code(core::TornadoParams::tornado_a(2000, 16, 4));
  ProtocolConfig cfg = small_config();
  SimClientConfig client;
  client.base_loss = 0.02;
  client.congestion_extra_loss = 0.6;  // well above the drop threshold
  client.capacity_change_prob = 0.0;
  client.initial_level = 3;
  client.initial_capacity = 0;
  const auto r = run_one(code, cfg, client, 10);
  ASSERT_TRUE(r.completed);
  // The receiver backs off at least twice before the transfer finishes.
  EXPECT_GE(r.level_changes, 2u);
}

TEST(Receiver, AsynchronousJoinStillCompletes) {
  // A receiver that tunes in mid-session (the digital fountain's core
  // promise) completes with the same fixed-level guarantees.
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 5));
  ProtocolConfig cfg = small_config();
  SimClientConfig client;
  client.base_loss = 0.1;
  client.fixed_level = true;
  client.initial_level = 3;
  client.join = 137;  // mid-cycle
  const auto r = run_one(code, cfg, client, 11);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.rounds_to_complete, 137u);
  EXPECT_GT(r.eta, 0.5);
}

TEST(StatisticalClient, DecodesAndReportsAttempts) {
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 16, 5));
  util::SymbolMatrix source(300, 16);
  source.fill_random(1);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);

  proto::StatisticalDataClient client(code, 0.0, 0.01);
  util::Rng rng(6);
  const auto order = rng.permutation(code.encoded_count());
  for (const auto index : order) {
    if (client.on_packet(index, encoding.row(index))) break;
  }
  ASSERT_TRUE(client.complete());
  EXPECT_EQ(client.source(), source);
  // Starting the threshold at exactly k typically forces > 1 attempt.
  EXPECT_GE(client.decode_attempts(), 1u);
}

TEST(StatisticalClient, HighInitialMarginDecodesInOneAttempt) {
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 16, 5));
  util::SymbolMatrix source(300, 16);
  source.fill_random(2);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);

  proto::StatisticalDataClient client(code, 0.30, 0.01);
  util::Rng rng(7);
  const auto order = rng.permutation(code.encoded_count());
  for (const auto index : order) {
    if (client.on_packet(index, encoding.row(index))) break;
  }
  ASSERT_TRUE(client.complete());
  EXPECT_EQ(client.decode_attempts(), 1u);
  EXPECT_EQ(client.source(), source);
}

TEST(StatisticalClient, ResetServesASecondTransfer) {
  // The client reuses one incremental decoder across attempts and across
  // reset()s — two full transfers through the same object must both verify.
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 16, 6));
  util::SymbolMatrix source(300, 16);
  source.fill_random(3);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);

  proto::StatisticalDataClient client(code, 0.0, 0.01);
  util::Rng rng(8);
  for (int transfer = 0; transfer < 2; ++transfer) {
    client.reset();
    EXPECT_FALSE(client.complete());
    EXPECT_EQ(client.distinct_received(), 0u);
    const auto order = rng.permutation(code.encoded_count());
    for (const auto index : order) {
      if (client.on_packet(index, encoding.row(index))) break;
    }
    ASSERT_TRUE(client.complete()) << transfer;
    EXPECT_EQ(client.source(), source) << transfer;
  }
}

TEST(StatisticalClient, WorksOverAnyErasureCode) {
  // The client is codec-agnostic: here it drains a Reed-Solomon code.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 40, 40, 24);
  util::SymbolMatrix source(40, 24);
  source.fill_random(4);
  util::SymbolMatrix encoding(80, 24);
  code->encode(source, encoding);

  proto::StatisticalDataClient client(*code, 0.0, 0.01);
  util::Rng rng(9);
  const auto order = rng.permutation(80);
  for (const auto index : order) {
    if (client.on_packet(index, encoding.row(index))) break;
  }
  ASSERT_TRUE(client.complete());
  EXPECT_EQ(util::SymbolMatrix(client.source()), source);
}

TEST(StatisticalClient, SourceBeforeCompleteThrows) {
  core::TornadoCode code(core::TornadoParams::tornado_a(100, 16, 5));
  proto::StatisticalDataClient client(code);
  EXPECT_THROW(client.source(), std::logic_error);
  EXPECT_THROW(proto::StatisticalDataClient(code, -0.1), std::invalid_argument);
}

TEST(StatisticalClient, RejectsAdversarialIndicesAndSizesWithoutThrowing) {
  // on_packet is total over untrusted input: out-of-range indices and
  // wrong-size payloads are tallied and dropped, never thrown, and never
  // disturb the decode in progress.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 40, 40, 24);
  util::SymbolMatrix source(40, 24);
  source.fill_random(11);
  util::SymbolMatrix encoding(80, 24);
  code->encode(source, encoding);

  proto::StatisticalDataClient client(*code, 0.0, 0.01);
  std::vector<std::uint8_t> short_payload(23);
  std::vector<std::uint8_t> long_payload(25);
  util::Rng rng(12);
  std::size_t fed = 0;
  for (const auto index : rng.permutation(80)) {
    // Interleave garbage between every real packet.
    EXPECT_FALSE(client.on_packet(80 + index, encoding.row(index % 80)));
    EXPECT_FALSE(client.on_packet(0xffffffffu, encoding.row(0)));
    client.on_packet(index, util::ConstByteSpan(short_payload));
    client.on_packet(index, util::ConstByteSpan(long_payload));
    ++fed;
    if (client.on_packet(index, encoding.row(index))) break;
  }
  ASSERT_TRUE(client.complete());
  EXPECT_EQ(client.source(), source);
  EXPECT_EQ(client.rejected(), 4 * fed);  // every piece of garbage counted
  EXPECT_EQ(client.duplicates(), 0u);
  // Completion latches: further garbage is absorbed silently.
  EXPECT_TRUE(client.on_packet(500, encoding.row(0)));
}

TEST(StatisticalClient, CountsDuplicatesAndDecodesFromExactlyKDistinct) {
  // Adversarial stream: every symbol arrives three times in a shuffled,
  // interleaved order, and only k distinct indices exist in total (the
  // carousel's worst case). The client must count duplicates, decode once
  // the k distinct ones are in, and reconstruct byte-identically.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 32, 32, 16);
  util::SymbolMatrix source(32, 16);
  source.fill_random(21);
  util::SymbolMatrix encoding(64, 16);
  code->encode(source, encoding);

  util::Rng rng(22);
  // k distinct encoded indices, each repeated 3x, shuffled.
  const auto distinct = rng.permutation(64);
  std::vector<std::uint32_t> stream;
  for (std::size_t i = 0; i < 32; ++i) {
    stream.insert(stream.end(), 3, distinct[i]);
  }
  for (std::size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.below(i)]);
  }

  proto::StatisticalDataClient client(*code, 0.0, 0.01);
  bool done = false;
  std::size_t processed = 0;
  for (const auto index : stream) {
    ++processed;
    if (client.on_packet(index, encoding.row(index))) {
      done = true;
      break;
    }
  }
  ASSERT_TRUE(done);  // RS-Cauchy: any k distinct symbols decode
  EXPECT_EQ(client.distinct_received(), 32u);
  // Everything beyond the 32 distinct symbols was a counted duplicate.
  EXPECT_EQ(client.duplicates(), processed - 32);
  EXPECT_EQ(client.rejected(), 0u);
  EXPECT_EQ(client.source(), source);
}

namespace fetch_fakes {

/// Scripted control-channel transport: per-mirror replies, consumed in
/// order; nullopt entries model timeouts. Records every request.
struct FakeTransport {
  std::vector<std::vector<std::optional<std::vector<std::uint8_t>>>> replies;
  std::vector<std::pair<std::size_t, std::chrono::milliseconds>> log;
  std::vector<std::size_t> cursor;

  std::optional<std::vector<std::uint8_t>> operator()(
      std::size_t mirror, std::chrono::milliseconds timeout) {
    log.emplace_back(mirror, timeout);
    cursor.resize(replies.size(), 0);
    const auto& queue = replies.at(mirror);
    if (cursor[mirror] >= queue.size()) return std::nullopt;
    return queue[cursor[mirror]++];
  }
};

std::vector<std::uint8_t> good_frame() {
  const proto::ControlInfo info =
      proto::make_control_info(10000, 500, 0, 3, 1, 5);
  std::vector<std::uint8_t> wire(proto::ControlInfo::kWireSize);
  info.serialize(util::ByteSpan(wire));
  return wire;
}

}  // namespace fetch_fakes

TEST(FetchControl, FirstMirrorAnswersImmediately) {
  fetch_fakes::FakeTransport transport;
  transport.replies = {{fetch_fakes::good_frame()}};
  proto::FetchPolicy policy;
  const auto result = proto::fetch_control(std::ref(transport), 1, policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.mirror, 0u);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(result.retries, 0u);
  EXPECT_EQ(result.failovers, 0u);
  EXPECT_EQ(result.info.symbol_size, 500u);
}

TEST(FetchControl, RetriesWithExponentialBackoffThenFailsOver) {
  // Mirror 0 never answers; mirror 1 answers on its second attempt. The
  // request log must show the per-mirror retry budget, the widening timeout
  // (backoff resets at failover), and the jittered sleeps in between.
  fetch_fakes::FakeTransport transport;
  transport.replies = {{}, {std::nullopt, fetch_fakes::good_frame()}};
  proto::FetchPolicy policy;
  policy.attempts_per_mirror = 3;
  policy.initial_timeout = std::chrono::milliseconds(100);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = std::chrono::milliseconds(250);
  policy.jitter = 0.5;
  policy.seed = 77;
  std::vector<std::chrono::milliseconds> sleeps;
  const auto result = proto::fetch_control(
      std::ref(transport), 2, policy,
      [&](std::chrono::milliseconds d) { sleeps.push_back(d); });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.mirror, 1u);
  EXPECT_EQ(result.attempts, 5u);   // 3 on mirror 0, 2 on mirror 1
  EXPECT_EQ(result.retries, 3u);    // attempts beyond each mirror's first
  EXPECT_EQ(result.failovers, 1u);
  ASSERT_EQ(transport.log.size(), 5u);
  using std::chrono::milliseconds;
  EXPECT_EQ(transport.log[0], std::make_pair(std::size_t{0}, milliseconds(100)));
  EXPECT_EQ(transport.log[1].second, milliseconds(200));  // doubled
  EXPECT_EQ(transport.log[2].second, milliseconds(250));  // capped
  EXPECT_EQ(transport.log[3],
            std::make_pair(std::size_t{1}, milliseconds(100)));  // reset
  EXPECT_EQ(transport.log[4].second, milliseconds(200));
  // One jittered sleep per retry, within +-50% of the pre-retry backoff.
  ASSERT_EQ(sleeps.size(), 3u);
  EXPECT_GE(sleeps[0], milliseconds(50));
  EXPECT_LE(sleeps[0], milliseconds(150));
}

TEST(FetchControl, DamagedRepliesAreRetriedLikeLoss) {
  // A mirror that answers with garbage must not satisfy the fetch; the
  // parse failure is recorded and the loop keeps going.
  auto damaged = fetch_fakes::good_frame();
  damaged[0] ^= 0xff;  // break the magic
  fetch_fakes::FakeTransport transport;
  transport.replies = {{damaged, fetch_fakes::good_frame()}};
  proto::FetchPolicy policy;
  const auto result = proto::fetch_control(std::ref(transport), 1, policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_EQ(result.retries, 1u);
  EXPECT_EQ(result.last_error, net::ParseError::kNone);  // cleared on success

  fetch_fakes::FakeTransport only_garbage;
  only_garbage.replies = {{damaged, damaged, damaged}};
  const auto exhausted = proto::fetch_control(std::ref(only_garbage), 1,
                                              policy);
  EXPECT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status, proto::FetchStatus::kExhausted);
  EXPECT_EQ(exhausted.last_error, net::ParseError::kBadMagic);
}

TEST(FetchControl, ExhaustsEveryMirrorDeterministically) {
  fetch_fakes::FakeTransport transport;
  transport.replies = {{}, {}, {}};
  proto::FetchPolicy policy;
  policy.attempts_per_mirror = 2;
  const auto result = proto::fetch_control(std::ref(transport), 3, policy);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.attempts, 6u);
  EXPECT_EQ(result.retries, 3u);
  EXPECT_EQ(result.failovers, 2u);
  // Identical seeds replay the identical request schedule.
  fetch_fakes::FakeTransport replay;
  replay.replies = {{}, {}, {}};
  proto::fetch_control(std::ref(replay), 3, policy);
  EXPECT_EQ(transport.log, replay.log);
}

TEST(FetchControl, ValidatesItsInputs) {
  const proto::FetchTransport transport =
      [](std::size_t, std::chrono::milliseconds) {
        return std::optional<std::vector<std::uint8_t>>{};
      };
  proto::FetchPolicy policy;
  EXPECT_THROW(proto::fetch_control({}, 1, policy), std::invalid_argument);
  EXPECT_THROW(proto::fetch_control(transport, 0, policy),
               std::invalid_argument);
  policy.attempts_per_mirror = 0;
  EXPECT_THROW(proto::fetch_control(transport, 1, policy),
               std::invalid_argument);
  policy = {};
  policy.backoff_multiplier = 0.5;
  EXPECT_THROW(proto::fetch_control(transport, 1, policy),
               std::invalid_argument);
  policy = {};
  policy.jitter = -0.1;
  EXPECT_THROW(proto::fetch_control(transport, 1, policy),
               std::invalid_argument);
}

TEST(Session, AllReceiversComplete) {
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 6));
  ProtocolConfig cfg = small_config();
  std::vector<SimClientConfig> clients;
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    SimClientConfig c;
    c.base_loss = loss;
    c.fixed_level = true;
    c.initial_level = 3;
    clients.push_back(c);
  }
  const auto result = proto::run_session(code, cfg, clients, 1, 200000);
  ASSERT_EQ(result.receivers.size(), 5u);
  for (const auto& r : result.receivers) {
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.eta, 0.0);
    EXPECT_LE(r.eta, 1.0);
    EXPECT_GE(r.eta_c, r.eta);  // eta = eta_c * eta_d <= eta_c
    EXPECT_NEAR(r.eta, r.eta_c * r.eta_d, 1e-9);
  }
  // Higher loss never finishes sooner.
  EXPECT_LE(result.receivers.front().rounds_to_complete,
            result.receivers.back().rounds_to_complete);
}

TEST(Session, HeterogeneousAdaptivePopulation) {
  core::TornadoCode code(core::TornadoParams::tornado_a(1000, 16, 7));
  ProtocolConfig cfg = small_config();
  std::vector<SimClientConfig> clients;
  util::Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    SimClientConfig c;
    c.base_loss = 0.02 + 0.2 * rng.uniform();
    c.initial_capacity = static_cast<unsigned>(rng.below(4));
    c.capacity_change_prob = 0.02;
    clients.push_back(c);
  }
  const auto result = proto::run_session(code, cfg, clients, 2, 400000);
  std::size_t completed = 0;
  for (const auto& r : result.receivers) completed += r.completed;
  EXPECT_EQ(completed, result.receivers.size());
}

}  // namespace
}  // namespace fountain
