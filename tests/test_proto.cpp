// Digital-fountain protocol: server scheduling, client subscription
// behaviour, the statistical decoding client, and whole sessions.
#include <gtest/gtest.h>

#include <set>

#include "core/tornado.hpp"
#include "proto/client.hpp"
#include "proto/server.hpp"
#include "proto/session.hpp"

namespace fountain {
namespace {

using proto::FountainServer;
using proto::ProtocolConfig;
using proto::SimClient;
using proto::SimClientConfig;

ProtocolConfig small_config() {
  ProtocolConfig cfg;
  cfg.layers = 4;
  cfg.sp_base_interval = 2;
  cfg.burst_period = 8;
  cfg.burst_length = 1;
  return cfg;
}

TEST(Server, BurstCadence) {
  FountainServer server(small_config(), 64);
  // burst_period = 8, burst_length = 1: the burst closes each period.
  for (std::uint64_t r = 0; r < 32; ++r) {
    EXPECT_EQ(server.is_burst_round(r), r % 8 == 7) << r;
  }
  ProtocolConfig no_burst = small_config();
  no_burst.burst_period = 0;
  FountainServer quiet(no_burst, 64);
  for (std::uint64_t r = 0; r < 16; ++r) EXPECT_FALSE(quiet.is_burst_round(r));
}

TEST(Server, SyncPointCadenceInverselyProportionalToBandwidth) {
  FountainServer server(small_config(), 64);
  // Layer l has SPs every 2 << l rounds: lower layers more often.
  EXPECT_TRUE(server.is_sync_point(0, 0));
  EXPECT_TRUE(server.is_sync_point(0, 2));
  EXPECT_FALSE(server.is_sync_point(0, 3));
  EXPECT_TRUE(server.is_sync_point(3, 0));
  EXPECT_FALSE(server.is_sync_point(3, 8));
  EXPECT_TRUE(server.is_sync_point(3, 16));
}

TEST(Server, NormalRoundCarriesScheduledPackets) {
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 1000000;  // no bursts
  FountainServer server(cfg, 64);
  const auto round = server.next_round();
  EXPECT_EQ(round.number, 0u);
  EXPECT_FALSE(round.burst);
  ASSERT_EQ(round.layers.size(), 4u);
  // Per round, layer l carries rate_l packets per block * 8 blocks.
  EXPECT_EQ(round.layers[0].indices.size(), 8u);
  EXPECT_EQ(round.layers[1].indices.size(), 8u);
  EXPECT_EQ(round.layers[2].indices.size(), 16u);
  EXPECT_EQ(round.layers[3].indices.size(), 32u);
  // Together one round at full subscription tiles the whole encoding.
  std::set<std::uint32_t> seen;
  for (const auto& lr : round.layers) {
    for (const auto p : lr.indices) EXPECT_TRUE(seen.insert(p).second);
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Server, BurstRoundDoublesRateWithFreshPackets) {
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 4;
  FountainServer server(cfg, 64);
  server.next_round();
  server.next_round();
  server.next_round();
  const auto burst = server.next_round();  // round 3 closes the period
  ASSERT_TRUE(burst.burst);
  EXPECT_EQ(burst.layers[0].indices.size(), 16u);  // doubled
  // Layer 0 packets within the burst must be distinct (schedule advances,
  // no duplicate filler).
  std::set<std::uint32_t> seen(burst.layers[0].indices.begin(),
                               burst.layers[0].indices.end());
  EXPECT_EQ(seen.size(), burst.layers[0].indices.size());
}

TEST(Server, OneLevelPropertySurvivesBursts) {
  // Even with bursts, a fixed-level receiver sees no duplicates until the
  // entire encoding has been transmitted to its level.
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 3;
  FountainServer server(cfg, 64);
  std::set<std::uint32_t> seen;
  std::size_t received = 0;
  bool dup_before_full = false;
  for (int r = 0; r < 100 && seen.size() < 64; ++r) {
    const auto round = server.next_round();
    for (const auto& lr : round.layers) {
      if (lr.layer > 2) continue;  // subscribe to level 2
      for (const auto p : lr.indices) {
        ++received;
        if (!seen.insert(p).second && seen.size() < 64) {
          dup_before_full = true;
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_FALSE(dup_before_full);
  EXPECT_EQ(received, 64u);
}

TEST(SimClient, LosslessFixedLevelIsPerfectlyEfficient) {
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 1));
  ProtocolConfig cfg = small_config();
  SimClientConfig client_cfg;
  client_cfg.base_loss = 0.0;
  client_cfg.fixed_level = true;
  client_cfg.initial_level = 3;
  SimClient client(code, cfg, client_cfg, 7);
  FountainServer server(cfg, code.encoded_count());
  while (!client.complete()) client.on_round(server.next_round());
  EXPECT_DOUBLE_EQ(client.distinctness_efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(client.observed_loss(), 0.0);
  // eta == eta_c in the no-duplicate regime; Tornado overhead keeps it < 1.
  EXPECT_GT(client.efficiency(), 0.85);
  EXPECT_LE(client.efficiency(), 1.0);
  EXPECT_EQ(client.level_changes(), 0u);
}

TEST(SimClient, ModerateLossStillNoDuplicatesAtFixedLevel) {
  // One Level Property: below (c-1-eps)/c loss, a fixed-level receiver
  // completes before any duplicate arrives.
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 2));
  ProtocolConfig cfg = small_config();
  SimClientConfig client_cfg;
  client_cfg.base_loss = 0.30;
  client_cfg.fixed_level = true;
  client_cfg.initial_level = 3;
  SimClient client(code, cfg, client_cfg, 8);
  FountainServer server(cfg, code.encoded_count());
  while (!client.complete()) client.on_round(server.next_round());
  EXPECT_DOUBLE_EQ(client.distinctness_efficiency(), 1.0);
  EXPECT_NEAR(client.observed_loss(), 0.30, 0.05);
}

TEST(SimClient, SevereLossForcesDuplicates) {
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 3));
  ProtocolConfig cfg = small_config();
  SimClientConfig client_cfg;
  client_cfg.base_loss = 0.65;
  client_cfg.fixed_level = true;
  client_cfg.initial_level = 3;
  SimClient client(code, cfg, client_cfg, 9);
  FountainServer server(cfg, code.encoded_count());
  for (int r = 0; r < 100000 && !client.complete(); ++r) {
    client.on_round(server.next_round());
  }
  ASSERT_TRUE(client.complete());
  EXPECT_LT(client.distinctness_efficiency(), 1.0);
}

TEST(SimClient, AdaptiveClientChangesLevels) {
  // A receiver subscribed far above its capacity experiences congestion loss
  // and must back off level by level.
  core::TornadoCode code(core::TornadoParams::tornado_a(2000, 16, 4));
  ProtocolConfig cfg = small_config();
  SimClientConfig client_cfg;
  client_cfg.base_loss = 0.02;
  client_cfg.congestion_extra_loss = 0.6;  // well above the drop threshold
  client_cfg.capacity_change_prob = 0.0;
  client_cfg.initial_level = 3;
  client_cfg.initial_capacity = 0;
  SimClient client(code, cfg, client_cfg, 10);
  FountainServer server(cfg, code.encoded_count());
  for (int r = 0; r < 100000 && !client.complete(); ++r) {
    client.on_round(server.next_round());
  }
  ASSERT_TRUE(client.complete());
  // The receiver backs off at least twice before the transfer finishes.
  EXPECT_GE(client.level_changes(), 2u);
  EXPECT_LT(client.level(), 3u);
}

TEST(StatisticalClient, DecodesAndReportsAttempts) {
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 16, 5));
  util::SymbolMatrix source(300, 16);
  source.fill_random(1);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);

  proto::StatisticalDataClient client(code, 0.0, 0.01);
  util::Rng rng(6);
  const auto order = rng.permutation(code.encoded_count());
  for (const auto index : order) {
    if (client.on_packet(index, encoding.row(index))) break;
  }
  ASSERT_TRUE(client.complete());
  EXPECT_EQ(client.source(), source);
  // Starting the threshold at exactly k typically forces > 1 attempt.
  EXPECT_GE(client.decode_attempts(), 1u);
}

TEST(StatisticalClient, HighInitialMarginDecodesInOneAttempt) {
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 16, 5));
  util::SymbolMatrix source(300, 16);
  source.fill_random(2);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);

  proto::StatisticalDataClient client(code, 0.30, 0.01);
  util::Rng rng(7);
  const auto order = rng.permutation(code.encoded_count());
  for (const auto index : order) {
    if (client.on_packet(index, encoding.row(index))) break;
  }
  ASSERT_TRUE(client.complete());
  EXPECT_EQ(client.decode_attempts(), 1u);
  EXPECT_EQ(client.source(), source);
}

TEST(StatisticalClient, SourceBeforeCompleteThrows) {
  core::TornadoCode code(core::TornadoParams::tornado_a(100, 16, 5));
  proto::StatisticalDataClient client(code);
  EXPECT_THROW(client.source(), std::logic_error);
  EXPECT_THROW(proto::StatisticalDataClient(code, -0.1), std::invalid_argument);
}

TEST(Session, AllReceiversComplete) {
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 6));
  ProtocolConfig cfg = small_config();
  std::vector<SimClientConfig> clients;
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    SimClientConfig c;
    c.base_loss = loss;
    c.fixed_level = true;
    c.initial_level = 3;
    clients.push_back(c);
  }
  const auto result = proto::run_session(code, cfg, clients, 1, 200000);
  ASSERT_EQ(result.receivers.size(), 5u);
  for (const auto& r : result.receivers) {
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.eta, 0.0);
    EXPECT_LE(r.eta, 1.0);
    EXPECT_GE(r.eta_c, r.eta);  // eta = eta_c * eta_d <= eta_c
    EXPECT_NEAR(r.eta, r.eta_c * r.eta_d, 1e-9);
  }
  // Higher loss never finishes sooner.
  EXPECT_LE(result.receivers.front().rounds_to_complete,
            result.receivers.back().rounds_to_complete);
}

TEST(Session, HeterogeneousAdaptivePopulation) {
  core::TornadoCode code(core::TornadoParams::tornado_a(1000, 16, 7));
  ProtocolConfig cfg = small_config();
  std::vector<SimClientConfig> clients;
  util::Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    SimClientConfig c;
    c.base_loss = 0.02 + 0.2 * rng.uniform();
    c.initial_capacity = static_cast<unsigned>(rng.below(4));
    c.capacity_change_prob = 0.02;
    clients.push_back(c);
  }
  const auto result = proto::run_session(code, cfg, clients, 2, 400000);
  std::size_t completed = 0;
  for (const auto& r : result.receivers) completed += r.completed;
  EXPECT_EQ(completed, result.receivers.size());
}

}  // namespace
}  // namespace fountain
