// Digital-fountain protocol: server scheduling, receiver subscription
// behaviour (now executed by the engine's adaptive policy), the statistical
// decoding client, and whole sessions.
#include <gtest/gtest.h>

#include <set>

#include "core/tornado.hpp"
#include "fec/reed_solomon.hpp"
#include "proto/client.hpp"
#include "proto/server.hpp"
#include "proto/session.hpp"

namespace fountain {
namespace {

using proto::FountainServer;
using proto::ProtocolConfig;
using proto::SimClientConfig;

ProtocolConfig small_config() {
  ProtocolConfig cfg;
  cfg.layers = 4;
  cfg.sp_base_interval = 2;
  cfg.burst_period = 8;
  cfg.burst_length = 1;
  return cfg;
}

TEST(Server, BurstCadence) {
  FountainServer server(small_config(), 64);
  // burst_period = 8, burst_length = 1: the burst closes each period.
  for (std::uint64_t r = 0; r < 32; ++r) {
    EXPECT_EQ(server.is_burst_round(r), r % 8 == 7) << r;
  }
  ProtocolConfig no_burst = small_config();
  no_burst.burst_period = 0;
  FountainServer quiet(no_burst, 64);
  for (std::uint64_t r = 0; r < 16; ++r) EXPECT_FALSE(quiet.is_burst_round(r));
}

TEST(Server, SyncPointCadenceInverselyProportionalToBandwidth) {
  FountainServer server(small_config(), 64);
  // Layer l has SPs every 2 << l rounds: lower layers more often.
  EXPECT_TRUE(server.is_sync_point(0, 0));
  EXPECT_TRUE(server.is_sync_point(0, 2));
  EXPECT_FALSE(server.is_sync_point(0, 3));
  EXPECT_TRUE(server.is_sync_point(3, 0));
  EXPECT_FALSE(server.is_sync_point(3, 8));
  EXPECT_TRUE(server.is_sync_point(3, 16));
}

TEST(Server, NormalRoundCarriesScheduledPackets) {
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 1000000;  // no bursts
  FountainServer server(cfg, 64);
  const auto round = server.next_round();
  EXPECT_EQ(round.number, 0u);
  EXPECT_FALSE(round.burst);
  ASSERT_EQ(round.layers.size(), 4u);
  // Per round, layer l carries rate_l packets per block * 8 blocks.
  EXPECT_EQ(round.layers[0].indices.size(), 8u);
  EXPECT_EQ(round.layers[1].indices.size(), 8u);
  EXPECT_EQ(round.layers[2].indices.size(), 16u);
  EXPECT_EQ(round.layers[3].indices.size(), 32u);
  // Together one round at full subscription tiles the whole encoding.
  std::set<std::uint32_t> seen;
  for (const auto& lr : round.layers) {
    for (const auto p : lr.indices) EXPECT_TRUE(seen.insert(p).second);
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Server, BurstRoundDoublesRateWithFreshPackets) {
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 4;
  FountainServer server(cfg, 64);
  server.next_round();
  server.next_round();
  server.next_round();
  const auto burst = server.next_round();  // round 3 closes the period
  ASSERT_TRUE(burst.burst);
  EXPECT_EQ(burst.layers[0].indices.size(), 16u);  // doubled
  // Layer 0 packets within the burst must be distinct (schedule advances,
  // no duplicate filler).
  std::set<std::uint32_t> seen(burst.layers[0].indices.begin(),
                               burst.layers[0].indices.end());
  EXPECT_EQ(seen.size(), burst.layers[0].indices.size());
}

TEST(Server, OneLevelPropertySurvivesBursts) {
  // Even with bursts, a fixed-level receiver sees no duplicates until the
  // entire encoding has been transmitted to its level.
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 3;
  FountainServer server(cfg, 64);
  std::set<std::uint32_t> seen;
  std::size_t received = 0;
  bool dup_before_full = false;
  for (int r = 0; r < 100 && seen.size() < 64; ++r) {
    const auto round = server.next_round();
    for (const auto& lr : round.layers) {
      if (lr.layer > 2) continue;  // subscribe to level 2
      for (const auto p : lr.indices) {
        ++received;
        if (!seen.insert(p).second && seen.size() < 64) {
          dup_before_full = true;
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_FALSE(dup_before_full);
  EXPECT_EQ(received, 64u);
}

TEST(Server, RoundAtIsPureAndMatchesTheCursor) {
  // round_at must be a pure function of the wall round (the engine replays
  // it from arbitrary points), and next_round just walks it.
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 3;
  FountainServer server(cfg, 64);
  FountainServer cursor(cfg, 64);
  for (std::uint64_t r = 0; r < 50; ++r) {
    const auto direct = server.round_at(r);
    const auto walked = cursor.next_round();
    ASSERT_EQ(direct.layers.size(), walked.layers.size()) << r;
    EXPECT_EQ(direct.burst, walked.burst) << r;
    for (std::size_t l = 0; l < direct.layers.size(); ++l) {
      EXPECT_EQ(direct.layers[l].indices, walked.layers[l].indices) << r;
      EXPECT_EQ(direct.layers[l].sync_point, walked.layers[l].sync_point) << r;
    }
    // Replaying an earlier round later must give the same answer.
    if (r >= 10) {
      EXPECT_EQ(server.round_at(r - 10).layers[0].indices,
                cursor.round_at(r - 10).layers[0].indices);
    }
  }
}

TEST(Server, EmitMatchesRoundAt) {
  // The engine batch view and the Round view are two encodings of the same
  // transmissions.
  ProtocolConfig cfg = small_config();
  cfg.burst_period = 4;
  FountainServer server(cfg, 64);
  for (std::uint64_t r = 0; r < 20; ++r) {
    engine::PacketBatch batch;
    server.emit(r, batch);
    const auto round = server.round_at(r);
    EXPECT_EQ(batch.burst, round.burst) << r;
    ASSERT_EQ(batch.segments.size(), round.layers.size()) << r;
    for (std::size_t l = 0; l < batch.segments.size(); ++l) {
      const auto& seg = batch.segments[l];
      EXPECT_EQ(seg.layer, round.layers[l].layer);
      EXPECT_EQ(seg.sync_point, round.layers[l].sync_point);
      const std::vector<std::uint32_t> slice(
          batch.indices.begin() + seg.begin, batch.indices.begin() + seg.end);
      EXPECT_EQ(slice, round.layers[l].indices) << r << " layer " << l;
    }
  }
}

// One fixed-level receiver listening to the server through the engine.
proto::ReceiverReport run_one(const fec::ErasureCode& code,
                              const ProtocolConfig& cfg,
                              const SimClientConfig& client,
                              std::uint64_t seed) {
  const auto result = proto::run_session(code, cfg, {client}, seed, 200000);
  return result.receivers.front();
}

TEST(Receiver, LosslessFixedLevelIsPerfectlyEfficient) {
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 1));
  ProtocolConfig cfg = small_config();
  SimClientConfig client;
  client.base_loss = 0.0;
  client.fixed_level = true;
  client.initial_level = 3;
  const auto r = run_one(code, cfg, client, 7);
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.eta_d, 1.0);
  EXPECT_DOUBLE_EQ(r.observed_loss, 0.0);
  // eta == eta_c in the no-duplicate regime; Tornado overhead keeps it < 1.
  EXPECT_GT(r.eta, 0.85);
  EXPECT_LE(r.eta, 1.0);
  EXPECT_EQ(r.level_changes, 0u);
}

TEST(Receiver, ModerateLossStillNoDuplicatesAtFixedLevel) {
  // One Level Property: below (c-1-eps)/c loss, a fixed-level receiver
  // completes before any duplicate arrives.
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 2));
  ProtocolConfig cfg = small_config();
  SimClientConfig client;
  client.base_loss = 0.30;
  client.fixed_level = true;
  client.initial_level = 3;
  const auto r = run_one(code, cfg, client, 8);
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.eta_d, 1.0);
  EXPECT_NEAR(r.observed_loss, 0.30, 0.05);
}

TEST(Receiver, SevereLossForcesDuplicates) {
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 3));
  ProtocolConfig cfg = small_config();
  SimClientConfig client;
  client.base_loss = 0.65;
  client.fixed_level = true;
  client.initial_level = 3;
  const auto r = run_one(code, cfg, client, 9);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.eta_d, 1.0);
}

TEST(Receiver, AdaptiveClientChangesLevels) {
  // A receiver subscribed far above its capacity experiences congestion loss
  // and must back off level by level.
  core::TornadoCode code(core::TornadoParams::tornado_a(2000, 16, 4));
  ProtocolConfig cfg = small_config();
  SimClientConfig client;
  client.base_loss = 0.02;
  client.congestion_extra_loss = 0.6;  // well above the drop threshold
  client.capacity_change_prob = 0.0;
  client.initial_level = 3;
  client.initial_capacity = 0;
  const auto r = run_one(code, cfg, client, 10);
  ASSERT_TRUE(r.completed);
  // The receiver backs off at least twice before the transfer finishes.
  EXPECT_GE(r.level_changes, 2u);
}

TEST(Receiver, AsynchronousJoinStillCompletes) {
  // A receiver that tunes in mid-session (the digital fountain's core
  // promise) completes with the same fixed-level guarantees.
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 5));
  ProtocolConfig cfg = small_config();
  SimClientConfig client;
  client.base_loss = 0.1;
  client.fixed_level = true;
  client.initial_level = 3;
  client.join = 137;  // mid-cycle
  const auto r = run_one(code, cfg, client, 11);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.rounds_to_complete, 137u);
  EXPECT_GT(r.eta, 0.5);
}

TEST(StatisticalClient, DecodesAndReportsAttempts) {
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 16, 5));
  util::SymbolMatrix source(300, 16);
  source.fill_random(1);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);

  proto::StatisticalDataClient client(code, 0.0, 0.01);
  util::Rng rng(6);
  const auto order = rng.permutation(code.encoded_count());
  for (const auto index : order) {
    if (client.on_packet(index, encoding.row(index))) break;
  }
  ASSERT_TRUE(client.complete());
  EXPECT_EQ(client.source(), source);
  // Starting the threshold at exactly k typically forces > 1 attempt.
  EXPECT_GE(client.decode_attempts(), 1u);
}

TEST(StatisticalClient, HighInitialMarginDecodesInOneAttempt) {
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 16, 5));
  util::SymbolMatrix source(300, 16);
  source.fill_random(2);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);

  proto::StatisticalDataClient client(code, 0.30, 0.01);
  util::Rng rng(7);
  const auto order = rng.permutation(code.encoded_count());
  for (const auto index : order) {
    if (client.on_packet(index, encoding.row(index))) break;
  }
  ASSERT_TRUE(client.complete());
  EXPECT_EQ(client.decode_attempts(), 1u);
  EXPECT_EQ(client.source(), source);
}

TEST(StatisticalClient, ResetServesASecondTransfer) {
  // The client reuses one incremental decoder across attempts and across
  // reset()s — two full transfers through the same object must both verify.
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 16, 6));
  util::SymbolMatrix source(300, 16);
  source.fill_random(3);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);

  proto::StatisticalDataClient client(code, 0.0, 0.01);
  util::Rng rng(8);
  for (int transfer = 0; transfer < 2; ++transfer) {
    client.reset();
    EXPECT_FALSE(client.complete());
    EXPECT_EQ(client.distinct_received(), 0u);
    const auto order = rng.permutation(code.encoded_count());
    for (const auto index : order) {
      if (client.on_packet(index, encoding.row(index))) break;
    }
    ASSERT_TRUE(client.complete()) << transfer;
    EXPECT_EQ(client.source(), source) << transfer;
  }
}

TEST(StatisticalClient, WorksOverAnyErasureCode) {
  // The client is codec-agnostic: here it drains a Reed-Solomon code.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 40, 40, 24);
  util::SymbolMatrix source(40, 24);
  source.fill_random(4);
  util::SymbolMatrix encoding(80, 24);
  code->encode(source, encoding);

  proto::StatisticalDataClient client(*code, 0.0, 0.01);
  util::Rng rng(9);
  const auto order = rng.permutation(80);
  for (const auto index : order) {
    if (client.on_packet(index, encoding.row(index))) break;
  }
  ASSERT_TRUE(client.complete());
  EXPECT_EQ(util::SymbolMatrix(client.source()), source);
}

TEST(StatisticalClient, SourceBeforeCompleteThrows) {
  core::TornadoCode code(core::TornadoParams::tornado_a(100, 16, 5));
  proto::StatisticalDataClient client(code);
  EXPECT_THROW(client.source(), std::logic_error);
  EXPECT_THROW(proto::StatisticalDataClient(code, -0.1), std::invalid_argument);
}

TEST(Session, AllReceiversComplete) {
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 6));
  ProtocolConfig cfg = small_config();
  std::vector<SimClientConfig> clients;
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    SimClientConfig c;
    c.base_loss = loss;
    c.fixed_level = true;
    c.initial_level = 3;
    clients.push_back(c);
  }
  const auto result = proto::run_session(code, cfg, clients, 1, 200000);
  ASSERT_EQ(result.receivers.size(), 5u);
  for (const auto& r : result.receivers) {
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.eta, 0.0);
    EXPECT_LE(r.eta, 1.0);
    EXPECT_GE(r.eta_c, r.eta);  // eta = eta_c * eta_d <= eta_c
    EXPECT_NEAR(r.eta, r.eta_c * r.eta_d, 1e-9);
  }
  // Higher loss never finishes sooner.
  EXPECT_LE(result.receivers.front().rounds_to_complete,
            result.receivers.back().rounds_to_complete);
}

TEST(Session, HeterogeneousAdaptivePopulation) {
  core::TornadoCode code(core::TornadoParams::tornado_a(1000, 16, 7));
  ProtocolConfig cfg = small_config();
  std::vector<SimClientConfig> clients;
  util::Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    SimClientConfig c;
    c.base_loss = 0.02 + 0.2 * rng.uniform();
    c.initial_capacity = static_cast<unsigned>(rng.below(4));
    c.capacity_change_prob = 0.02;
    clients.push_back(c);
  }
  const auto result = proto::run_session(code, cfg, clients, 2, 400000);
  std::size_t completed = 0;
  for (const auto& r : result.receivers) completed += r.completed;
  EXPECT_EQ(completed, result.receivers.size());
}

}  // namespace
}  // namespace fountain
