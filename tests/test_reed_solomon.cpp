// Reed-Solomon codecs: systematic encode, MDS decode from arbitrary subsets,
// agreement between Vandermonde, Cauchy and the XOR-only Cauchy variant, and
// the ErasureCode adapters.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "fec/reed_solomon.hpp"
#include "gf/cauchy_xor.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using fec::ErasureCode;
using fec::RsKind;

/// Erases a random set of x source symbols, decodes them from x random
/// parity symbols, and checks the reconstruction.
template <typename Codec>
void roundtrip(Codec& codec, std::size_t symbol_size, std::size_t erasures,
               std::uint64_t seed) {
  const std::size_t k = codec.source_count();
  const std::size_t l = codec.parity_count();
  ASSERT_LE(erasures, k);
  ASSERT_LE(erasures, l);
  util::Rng rng(seed);

  util::SymbolMatrix source(k, symbol_size);
  source.fill_random(seed);
  util::SymbolMatrix parity(l, symbol_size);
  codec.encode(source, parity);

  util::SymbolMatrix damaged = source;
  std::vector<bool> have(k, true);
  const auto victim_order = rng.permutation(k);
  for (std::size_t i = 0; i < erasures; ++i) {
    const auto v = victim_order[i];
    have[v] = false;
    auto row = damaged.row(v);
    std::fill(row.begin(), row.end(), 0xEE);  // poison
  }
  std::vector<std::pair<std::uint32_t, util::ConstByteSpan>> got_parity;
  const auto parity_order = rng.permutation(l);
  for (std::size_t i = 0; i < erasures; ++i) {
    got_parity.emplace_back(parity_order[i], parity.row(parity_order[i]));
  }

  codec.decode(damaged, have, got_parity);
  EXPECT_EQ(damaged, source);
}

TEST(Vandermonde, RoundTripSmall) {
  gf::VandermondeCodec<gf::GF256> codec(10, 10);
  for (std::size_t x : {std::size_t{1}, std::size_t{5}, std::size_t{10}}) {
    roundtrip(codec, 64, x, 100 + x);
  }
}

TEST(Vandermonde, RoundTripGF65536) {
  gf::VandermondeCodec<gf::GF65536> codec(300, 300);
  roundtrip(codec, 128, 150, 7);
}

TEST(Vandermonde, NoErasuresIsNoop) {
  gf::VandermondeCodec<gf::GF256> codec(5, 5);
  util::SymbolMatrix source(5, 32);
  source.fill_random(1);
  util::SymbolMatrix copy = source;
  std::vector<bool> have(5, true);
  codec.decode(copy, have, {});
  EXPECT_EQ(copy, source);
}

TEST(Vandermonde, InsufficientParityThrows) {
  gf::VandermondeCodec<gf::GF256> codec(6, 6);
  util::SymbolMatrix source(6, 32);
  std::vector<bool> have(6, false);
  EXPECT_THROW(codec.decode(source, have, {}), std::invalid_argument);
}

TEST(Vandermonde, FieldOverflowThrows) {
  EXPECT_THROW((gf::VandermondeCodec<gf::GF256>(200, 100)),
               std::invalid_argument);
  EXPECT_THROW((gf::VandermondeCodec<gf::GF256>(0, 1)), std::invalid_argument);
}

TEST(Cauchy, RoundTripSmall) {
  gf::CauchyCodec<gf::GF256> codec(10, 10);
  for (std::size_t x : {std::size_t{1}, std::size_t{4}, std::size_t{10}}) {
    roundtrip(codec, 64, x, 200 + x);
  }
}

TEST(Cauchy, RoundTripGF65536Large) {
  gf::CauchyCodec<gf::GF65536> codec(500, 500);
  roundtrip(codec, 64, 250, 17);
}

TEST(Cauchy, EncodeOneMatchesEncode) {
  gf::CauchyCodec<gf::GF256> codec(8, 4);
  util::SymbolMatrix source(8, 48);
  source.fill_random(3);
  util::SymbolMatrix parity(4, 48);
  codec.encode(source, parity);
  util::SymbolMatrix one(1, 48);
  for (std::size_t i = 0; i < 4; ++i) {
    codec.encode_one(source, i, one.row(0));
    EXPECT_TRUE(std::equal(one.row(0).begin(), one.row(0).end(),
                           parity.row(i).begin()));
  }
}

/// Every pattern of k-of-n reception must decode (MDS): exhaustive over all
/// C(n, k) subsets for a tiny code.
TEST(Cauchy, MdsExhaustiveTinyCode) {
  constexpr std::size_t k = 3;
  constexpr std::size_t l = 3;
  constexpr std::size_t n = k + l;
  gf::CauchyCodec<gf::GF256> codec(k, l);
  util::SymbolMatrix source(k, 16);
  source.fill_random(4);
  util::SymbolMatrix parity(l, 16);
  codec.encode(source, parity);

  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    util::SymbolMatrix work(k, 16);
    std::vector<bool> have(k, false);
    std::vector<std::pair<std::uint32_t, util::ConstByteSpan>> got;
    std::size_t missing = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (mask & (1u << i)) {
        std::memcpy(work.row(i).data(), source.row(i).data(), 16);
        have[i] = true;
      } else {
        ++missing;
      }
    }
    for (std::size_t p = 0; p < l; ++p) {
      if (mask & (1u << (k + p))) {
        got.emplace_back(static_cast<std::uint32_t>(p), parity.row(p));
      }
    }
    ASSERT_GE(got.size(), missing);
    codec.decode(work, have, got);
    EXPECT_EQ(work, source) << "reception mask " << mask;
  }
}

TEST(CauchyXor, FmaMatchesFieldKernel) {
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto c = static_cast<gf::GF256::Element>(rng.below(256));
    util::SymbolMatrix a(2, 64);
    a.fill_random(500 + trial);
    util::SymbolMatrix b = a;
    gf::cauchy_xor_fma(a.row(0).data(), a.row(1).data(), 64, c);
    gf::GF256::fma_buffer(b.row(0).data(), b.row(1).data(), 64, c);
    // The bit-matrix kernel permutes byte lanes (segment layout), so compare
    // via decode semantics instead: applying it twice must cancel, and c = 1
    // must equal plain XOR. Algebraic equivalence is covered by the codec
    // round-trip below.
    util::SymbolMatrix a2 = a;
    gf::cauchy_xor_fma(a2.row(0).data(), a2.row(1).data(), 64, c);
    util::SymbolMatrix orig(2, 64);
    orig.fill_random(500 + trial);
    EXPECT_TRUE(std::equal(a2.row(0).begin(), a2.row(0).end(),
                           orig.row(0).begin()));
  }
}

TEST(CauchyXor, UnalignedThrows) {
  util::SymbolMatrix m(2, 12);
  EXPECT_THROW(gf::cauchy_xor_fma(m.row(0).data(), m.row(1).data(), 12, 3),
               std::invalid_argument);
}

TEST(CauchyXor, RoundTrip) {
  gf::CauchyXorCodec codec(12, 12);
  const std::size_t bytes = 96;  // multiple of 8
  util::SymbolMatrix source(12, bytes);
  source.fill_random(6);
  util::SymbolMatrix parity(12, bytes);
  codec.encode(source, parity);

  util::SymbolMatrix damaged = source;
  std::vector<bool> have(12, true);
  for (std::size_t v : {1u, 4u, 7u, 9u}) {
    have[v] = false;
    auto row = damaged.row(v);
    std::fill(row.begin(), row.end(), 0);
  }
  std::vector<std::pair<std::uint32_t, util::ConstByteSpan>> got;
  for (std::uint32_t p : {0u, 3u, 5u, 11u}) got.emplace_back(p, parity.row(p));
  codec.decode(damaged, have, got);
  EXPECT_EQ(damaged, source);
}

struct WrapperParam {
  RsKind kind;
  std::size_t k;
  std::size_t parity;
  std::size_t symbol_size;
};

class RsWrapperTest : public ::testing::TestWithParam<WrapperParam> {};

TEST_P(RsWrapperTest, SystematicEncodeAndAnyKDecode) {
  const auto p = GetParam();
  const auto code =
      fec::make_reed_solomon(p.kind, p.k, p.parity, p.symbol_size);
  ASSERT_EQ(code->source_count(), p.k);
  ASSERT_EQ(code->encoded_count(), p.k + p.parity);

  util::SymbolMatrix source(p.k, p.symbol_size);
  source.fill_random(42);
  util::SymbolMatrix encoding(p.k + p.parity, p.symbol_size);
  code->encode(source, encoding);

  // Systematic prefix.
  for (std::size_t i = 0; i < p.k; ++i) {
    EXPECT_TRUE(std::equal(encoding.row(i).begin(), encoding.row(i).end(),
                           source.row(i).begin()));
  }

  // Feed a random k-subset in random order through the incremental decoder.
  util::Rng rng(99);
  const auto order = rng.permutation(p.k + p.parity);
  auto decoder = code->make_decoder();
  std::size_t fed = 0;
  for (const auto index : order) {
    ++fed;
    if (decoder->add_symbol(index, encoding.row(index))) break;
  }
  EXPECT_TRUE(decoder->complete());
  EXPECT_EQ(fed, p.k);  // MDS: exactly k distinct packets suffice
  EXPECT_EQ(decoder->source(), source);

  // Structural decoder agrees on the packet count.
  auto structural = code->make_structural_decoder();
  std::size_t sfed = 0;
  for (const auto index : order) {
    ++sfed;
    if (structural->add_index(index)) break;
  }
  EXPECT_EQ(sfed, p.k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RsWrapperTest,
    ::testing::Values(WrapperParam{RsKind::kCauchy, 8, 8, 32},
                      WrapperParam{RsKind::kCauchy, 20, 20, 500},
                      WrapperParam{RsKind::kCauchy, 50, 50, 500},
                      WrapperParam{RsKind::kCauchy, 100, 156, 64},
                      WrapperParam{RsKind::kCauchy, 200, 200, 64},
                      WrapperParam{RsKind::kVandermonde, 8, 8, 32},
                      WrapperParam{RsKind::kVandermonde, 50, 50, 500},
                      WrapperParam{RsKind::kVandermonde, 130, 130, 64},
                      WrapperParam{RsKind::kCauchy, 1, 1, 16},
                      WrapperParam{RsKind::kVandermonde, 1, 3, 16}));

TEST(RsWrapper, DuplicatesAreIgnored) {
  const auto code = fec::make_reed_solomon(RsKind::kCauchy, 10, 10, 32);
  util::SymbolMatrix source(10, 32);
  source.fill_random(1);
  util::SymbolMatrix encoding(20, 32);
  code->encode(source, encoding);

  auto decoder = code->make_decoder();
  // Feed index 0 ten times, then indices 10..18: that is 10 distinct.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(decoder->add_symbol(0, encoding.row(0)));
  }
  for (std::uint32_t i = 10; i < 18; ++i) {
    EXPECT_FALSE(decoder->add_symbol(i, encoding.row(i)));
  }
  EXPECT_TRUE(decoder->add_symbol(18, encoding.row(18)));
  EXPECT_EQ(decoder->source(), source);
}

TEST(RsWrapper, OneShotDecode) {
  const auto code = fec::make_reed_solomon(RsKind::kCauchy, 6, 6, 48);
  util::SymbolMatrix source(6, 48);
  source.fill_random(2);
  util::SymbolMatrix encoding(12, 48);
  code->encode(source, encoding);

  std::vector<fec::ReceivedSymbol> received;
  for (std::uint32_t i = 6; i < 12; ++i) {
    received.push_back({i, encoding.row(i)});
  }
  util::SymbolMatrix out;
  EXPECT_TRUE(code->decode(received, out));
  EXPECT_EQ(out, source);

  received.resize(5);
  EXPECT_FALSE(code->decode(received, out));
}

TEST(RsWrapper, BadIndexAndSizeThrow) {
  const auto code = fec::make_reed_solomon(RsKind::kCauchy, 4, 4, 16);
  auto decoder = code->make_decoder();
  util::SymbolMatrix m(1, 16);
  EXPECT_THROW(decoder->add_symbol(8, m.row(0)), std::out_of_range);
  util::SymbolMatrix wrong(1, 8);
  EXPECT_THROW(decoder->add_symbol(0, wrong.row(0)), std::invalid_argument);
}

TEST(RsWrapper, FactoryPicksField) {
  // n <= 256 can use GF(2^8); n > 256 must use GF(2^16). Both must work.
  const auto small = fec::make_reed_solomon(RsKind::kCauchy, 128, 128, 32);
  EXPECT_EQ(small->encoded_count(), 256u);
  const auto big = fec::make_reed_solomon(RsKind::kCauchy, 129, 129, 32);
  EXPECT_EQ(big->encoded_count(), 258u);
  util::SymbolMatrix source(129, 32);
  source.fill_random(3);
  util::SymbolMatrix encoding(258, 32);
  big->encode(source, encoding);
  std::vector<fec::ReceivedSymbol> received;
  for (std::uint32_t i = 129; i < 258; ++i) {
    received.push_back({i, encoding.row(i)});
  }
  util::SymbolMatrix out;
  EXPECT_TRUE(big->decode(received, out));
  EXPECT_EQ(out, source);
}

TEST(RsWrapper, StretchFactor) {
  const auto code = fec::make_reed_solomon(RsKind::kCauchy, 10, 10, 16);
  EXPECT_DOUBLE_EQ(code->stretch_factor(), 2.0);
}

TEST(RsWrapper, CodecIdIsReedSolomon) {
  const auto code = fec::make_reed_solomon(RsKind::kVandermonde, 8, 8, 16);
  EXPECT_EQ(code->codec_id(), fec::CodecId::kReedSolomon);
}

TEST(RsWrapper, DecoderResetReusesAcrossReceivers) {
  // reset() restores the empty state so one payload decoder serves several
  // simulated receivers (the engine's pooled sinks) without reallocation.
  const auto code = fec::make_reed_solomon(RsKind::kCauchy, 20, 20, 32);
  util::SymbolMatrix source(20, 32);
  source.fill_random(9);
  util::SymbolMatrix encoding(40, 32);
  code->encode(source, encoding);

  auto decoder = code->make_decoder();
  util::Rng rng(10);
  for (int receiver = 0; receiver < 3; ++receiver) {
    decoder->reset();
    EXPECT_FALSE(decoder->complete());
    const auto order = rng.permutation(40);
    bool done = false;
    for (const auto index : order) {
      if (decoder->add_symbol(index, encoding.row(index))) {
        done = true;
        break;
      }
    }
    ASSERT_TRUE(done) << receiver;
    EXPECT_EQ(util::SymbolMatrix(decoder->source()), source) << receiver;
  }
}

}  // namespace
}  // namespace fountain
