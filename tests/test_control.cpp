// Control-channel metadata and file framing.
#include <gtest/gtest.h>

#include "core/tornado.hpp"
#include "proto/control.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using proto::ControlInfo;

TEST(ControlInfo, SerializeParseRoundTrip) {
  ControlInfo info = proto::make_control_info(123456789, 1000, 1, 0xdeadbeef,
                                              4, 0x123456789abcdef0ULL);
  std::vector<std::uint8_t> wire(ControlInfo::kWireSize);
  info.serialize(util::ByteSpan(wire));
  const auto parsed = ControlInfo::parse(util::ConstByteSpan(wire));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.info, info);
}

TEST(ControlInfo, RejectsBadMagicAndShortBuffers) {
  ControlInfo info = proto::make_control_info(1000, 100, 0, 1, 1, 2);
  std::vector<std::uint8_t> wire(ControlInfo::kWireSize);
  info.serialize(util::ByteSpan(wire));
  wire[0] ^= 0xFF;
  EXPECT_EQ(ControlInfo::parse(util::ConstByteSpan(wire)).error,
            net::ParseError::kBadMagic);
  std::vector<std::uint8_t> tiny(8);
  EXPECT_EQ(ControlInfo::parse(util::ConstByteSpan(tiny)).error,
            net::ParseError::kTooShort);
  EXPECT_THROW(info.serialize(util::ByteSpan(tiny)), std::invalid_argument);
}

TEST(ControlInfo, RejectsInconsistentFields) {
  ControlInfo info = proto::make_control_info(1000, 100, 0, 1, 1, 2);
  info.encoded_count = info.source_count;  // stretch 1 is nonsense
  std::vector<std::uint8_t> wire(ControlInfo::kWireSize);
  info.serialize(util::ByteSpan(wire));
  EXPECT_EQ(ControlInfo::parse(util::ConstByteSpan(wire)).error,
            net::ParseError::kBadField);
}

TEST(ControlInfo, RejectsUnknownCodecAndBadLayerCounts) {
  const ControlInfo base = proto::make_control_info(1000, 100, 0, 1, 1, 2);
  std::vector<std::uint8_t> wire(ControlInfo::kWireSize);
  {
    ControlInfo info = base;
    info.codec = static_cast<fec::CodecId>(0x7f);  // no such family
    info.serialize(util::ByteSpan(wire));
    EXPECT_EQ(ControlInfo::parse(util::ConstByteSpan(wire)).error,
              net::ParseError::kBadCodec);
  }
  {
    ControlInfo info = base;
    info.layers = 0;  // a session must have at least one group
    info.serialize(util::ByteSpan(wire));
    EXPECT_EQ(ControlInfo::parse(util::ConstByteSpan(wire)).error,
              net::ParseError::kGroupOutOfRange);
  }
  {
    ControlInfo info = base;
    info.layers = net::kMaxGroups + 1;  // beyond the wire format's contract
    info.serialize(util::ByteSpan(wire));
    EXPECT_EQ(ControlInfo::parse(util::ConstByteSpan(wire)).error,
              net::ParseError::kGroupOutOfRange);
  }
}

TEST(ControlInfo, ParseFuzzNeverAcceptsDamage) {
  // 10k seeded random/truncated buffers: parse is total (never throws,
  // never reads past the span) and accepts only frames whose magic, codec,
  // layer count and field consistency all verify.
  util::Rng rng(0xc0ffee12);
  const ControlInfo valid = proto::make_control_info(50000, 500, 0, 9, 4, 11);
  std::vector<std::uint8_t> good(ControlInfo::kWireSize);
  valid.serialize(util::ByteSpan(good));
  std::vector<std::uint8_t> buf;
  std::size_t accepted = 0;
  for (int i = 0; i < 10000; ++i) {
    const int mode = i % 3;
    if (mode == 0) {
      buf.assign(good.begin(),
                 good.begin() + static_cast<long>(rng.below(good.size())));
    } else if (mode == 1) {
      buf = good;  // valid frame with a few random bytes flipped
      const std::size_t flips = 1 + rng.below(4);
      for (std::size_t f = 0; f < flips; ++f) {
        buf[rng.below(buf.size())] ^= static_cast<std::uint8_t>(1 + rng());
      }
    } else {
      buf.resize(rng.below(96));
      for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    }
    const auto parsed = ControlInfo::parse(util::ConstByteSpan(buf));
    if (buf.size() < ControlInfo::kWireSize) {
      EXPECT_EQ(parsed.error, net::ParseError::kTooShort);
      continue;
    }
    if (parsed.ok()) {
      ++accepted;
      const ControlInfo& info = parsed.info;
      // Whatever got through must be internally consistent.
      EXPECT_NE(info.symbol_size, 0u);
      EXPECT_NE(info.source_count, 0u);
      EXPECT_GT(info.encoded_count, info.source_count);
      EXPECT_GE(info.layers, 1u);
      EXPECT_LE(info.layers, static_cast<std::uint32_t>(net::kMaxGroups));
      EXPECT_TRUE(
          fec::is_known_codec(static_cast<std::uint8_t>(info.codec)));
    }
  }
  // Flipped-bit frames may survive when the flip lands in a benign field
  // (seed bytes, file length); purely random buffers essentially never pass
  // the 32-bit magic. The loop must still have exercised many rejects.
  EXPECT_LT(accepted, 4000u);
}

TEST(ControlInfo, FieldDerivation) {
  const ControlInfo info = proto::make_control_info(10'000, 512, 0, 7, 4, 9);
  EXPECT_EQ(info.source_count, 20u);  // ceil(10000 / 512)
  EXPECT_EQ(info.encoded_count, 40u);
  const auto params = info.tornado_params();
  EXPECT_EQ(params.k, 20u);
  EXPECT_EQ(params.symbol_size, 512u);
  EXPECT_EQ(params.seed, 7u);
  EXPECT_DOUBLE_EQ(params.stretch, 2.0);
}

TEST(ControlInfo, ClientBuildsIdenticalCode) {
  // The whole premise of the protocol: server and client derive the same
  // cascade from the advertised control info.
  const ControlInfo info = proto::make_control_info(500'000, 1000, 0, 77, 1,
                                                    5);
  core::TornadoCode server_code(info.tornado_params());
  core::TornadoCode client_code(info.tornado_params());

  util::SymbolMatrix file(server_code.source_count(), 1000);
  file.fill_random(1);
  util::SymbolMatrix encoding(server_code.encoded_count(), 1000);
  server_code.encode(file, encoding);

  util::Rng rng(2);
  auto decoder = client_code.make_decoder();
  for (const auto index : rng.permutation(server_code.encoded_count())) {
    if (decoder->add_symbol(index, encoding.row(index))) break;
  }
  ASSERT_TRUE(decoder->complete());
  EXPECT_EQ(decoder->source(), file);
}

TEST(FileFraming, PadsAndStripsExactly) {
  std::vector<std::uint8_t> bytes(2500);
  util::Rng rng(3);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  const auto symbols = proto::file_to_symbols(util::ConstByteSpan(bytes), 1000);
  EXPECT_EQ(symbols.rows(), 3u);
  // Padding must be zero.
  for (std::size_t i = 500; i < 1000; ++i) EXPECT_EQ(symbols.row(2)[i], 0);
  EXPECT_EQ(proto::symbols_to_file(symbols, 2500), bytes);
}

TEST(FileFraming, ExactMultipleNeedsNoPadding) {
  std::vector<std::uint8_t> bytes(3000, 0xAB);
  const auto symbols = proto::file_to_symbols(util::ConstByteSpan(bytes), 1000);
  EXPECT_EQ(symbols.rows(), 3u);
  EXPECT_EQ(proto::symbols_to_file(symbols, 3000), bytes);
}

TEST(FileFraming, EmptyAndErrorCases) {
  const auto symbols = proto::file_to_symbols({}, 100);
  EXPECT_EQ(symbols.rows(), 1u);  // at least one (zero) symbol
  EXPECT_THROW(proto::file_to_symbols({}, 0), std::invalid_argument);
  EXPECT_THROW(proto::symbols_to_file(symbols, 101), std::invalid_argument);
}

}  // namespace
}  // namespace fountain
