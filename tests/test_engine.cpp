// The discrete-event session engine: sources, links, sinks, cohort pooling,
// churn (asynchronous join/leave and mid-cycle level changes), multi-source
// aggregation, codec quarantine, and loss-regime changes.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <thread>

#include "carousel/carousel.hpp"
#include "cc/policies.hpp"
#include "cc/trace.hpp"
#include "core/tornado.hpp"
#include "engine/pool.hpp"
#include "engine/session.hpp"
#include "engine/sources.hpp"
#include "fec/reed_solomon.hpp"
#include "lt/lt_code.hpp"
#include "net/loss.hpp"
#include "proto/server.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using engine::CarouselSource;
using engine::LossLink;
using engine::PacketBatch;
using engine::PerfectLink;
using engine::ReceiverId;
using engine::ReceiverReport;
using engine::ReceiverSpec;
using engine::RatelessSource;
using engine::Session;
using engine::SessionConfig;
using engine::SourceId;
using engine::StridedCarouselSource;

/// Records every delivery and never completes (runs until leave/horizon).
class RecordingSink final : public engine::PacketSink {
 public:
  struct Rec {
    engine::Time at;
    unsigned layer;
    std::uint32_t index;
  };

  bool on_packet(const engine::Delivery& d) override {
    recs_.push_back(Rec{d.at, d.layer, d.index});
    return false;
  }
  bool complete() const override { return false; }
  void reset() override { recs_.clear(); }

  const std::vector<Rec>& recs() const { return recs_; }

 private:
  std::vector<Rec> recs_;
};

TEST(Sources, CarouselSourceIsPureAndCyclic) {
  const auto c = carousel::Carousel::sequential(5);
  CarouselSource source(c, fec::CodecId::kReedSolomon, 2);
  EXPECT_EQ(source.codec_id(), fec::CodecId::kReedSolomon);
  PacketBatch batch;
  source.emit(3, batch);  // slots 6, 7 -> indices 1, 2
  ASSERT_EQ(batch.indices.size(), 2u);
  EXPECT_EQ(batch.indices[0], 1u);
  EXPECT_EQ(batch.indices[1], 2u);
  ASSERT_EQ(batch.segments.size(), 1u);
  EXPECT_EQ(batch.segments[0].layer, 0u);
  // Purity: same round, same batch.
  PacketBatch again;
  source.emit(3, again);
  EXPECT_EQ(again.indices, batch.indices);
}

TEST(Sources, StridedCarouselSourceDealsEveryNthSlot) {
  const auto c = carousel::Carousel::sequential(10);
  StridedCarouselSource path1(c, fec::CodecId::kTornado, 1, 3);
  PacketBatch batch;
  for (std::uint64_t r = 0; r < 4; ++r) {
    batch.clear();
    path1.emit(r, batch);
    ASSERT_EQ(batch.indices.size(), 1u);
    EXPECT_EQ(batch.indices[0], (1 + 3 * r) % 10);
  }
}

TEST(Links, LossLinkAppliesRegimeChangesAtTheirTick) {
  // Clean until tick 100, then a total outage (all-ones trace).
  auto outage = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{1});
  LossLink link(std::make_unique<net::BernoulliLoss>(0.0, 1));
  link.add_regime(100, std::make_unique<net::TraceLoss>(outage, 0));
  for (engine::Time t = 0; t < 100; ++t) EXPECT_TRUE(link.deliver(t)) << t;
  for (engine::Time t = 100; t < 120; ++t) EXPECT_FALSE(link.deliver(t)) << t;
  EXPECT_THROW(link.add_regime(50, std::make_unique<net::BernoulliLoss>(0, 2)),
               std::invalid_argument);
}

TEST(SessionChurn, AsynchronousJoinAndLeave) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 40, 40, 16);
  const auto c = carousel::Carousel::sequential(80);
  SessionConfig config;
  config.horizon = 500;
  Session session(*code, config);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(c, code->codec_id()));

  // Receiver 0 leaves after 10 slots (incomplete); receiver 1 joins late and
  // completes anyway.
  ReceiverSpec early;
  early.join = 0;
  early.leave = 10;
  const ReceiverId r0 = session.add_receiver(std::move(early));
  session.subscribe(r0, src, std::make_unique<PerfectLink>());

  ReceiverSpec late;
  late.join = 300;
  const ReceiverId r1 = session.add_receiver(std::move(late));
  session.subscribe(r1, src, std::make_unique<PerfectLink>());

  const auto reports = session.run();
  EXPECT_FALSE(reports[r0.value].completed);
  EXPECT_EQ(reports[r0.value].received, 10u);
  EXPECT_TRUE(reports[r1.value].completed);
  EXPECT_EQ(reports[r1.value].received, 40u);  // MDS: exactly k, any phase
  EXPECT_GE(reports[r1.value].completed_at, 300u);
}

TEST(SessionChurn, MidCycleLevelChangeKeepsWindowDistinctness) {
  // The engine churn path must preserve the Table 5 distinctness guarantee
  // piecewise: within every maximal fixed-level span, each full pass at that
  // level (a window of n / (level_rate * blocks) rounds, measured from the
  // span's first round) carries no duplicate packet. This is the any-phase
  // One Level Property (test_schedule) observed end-to-end through a
  // receiver whose subscription changes mid-cycle.
  core::TornadoCode code(core::TornadoParams::tornado_a(32, 16, 3));
  const std::size_t n = code.encoded_count();  // 64
  proto::ProtocolConfig cfg;
  cfg.layers = 4;
  cfg.burst_period = 0;  // constant rate; spans are exact
  const auto server = std::make_shared<proto::FountainServer>(
      cfg, n, 0x5eed, code.codec_id());

  SessionConfig config;
  config.horizon = 24;
  Session session(code, config);
  const SourceId src = session.add_source(server);

  ReceiverSpec spec;
  spec.policy.initial_level = 2;
  spec.moves.push_back(engine::ScriptedMove{3, 1});   // drop mid-cycle
  spec.moves.push_back(engine::ScriptedMove{9, 3});   // later, jump to full
  spec.sink = std::make_unique<RecordingSink>();
  auto* sink = static_cast<RecordingSink*>(spec.sink.get());
  const ReceiverId id = session.add_receiver(std::move(spec));
  session.subscribe(id, src, std::make_unique<PerfectLink>());

  const auto report = session.run().front();
  EXPECT_EQ(report.level_changes, 2u);

  struct Span {
    engine::Time begin;
    engine::Time end;
    unsigned level;
  };
  const Span spans[] = {{0, 3, 2}, {3, 9, 1}, {9, 24, 3}};
  const std::size_t blocks = server->schedule().block_count();
  for (const Span& span : spans) {
    const std::size_t per_round =
        server->schedule().level_rate(span.level) * blocks;
    ASSERT_EQ(n % per_round, 0u);
    const engine::Time window = n / per_round;
    for (engine::Time w = span.begin; w < span.end; w += window) {
      const engine::Time w_end = std::min<engine::Time>(w + window, span.end);
      std::set<std::uint32_t> seen;
      for (const auto& rec : sink->recs()) {
        if (rec.at < w || rec.at >= w_end) continue;
        EXPECT_TRUE(seen.insert(rec.index).second)
            << "duplicate " << rec.index << " in window [" << w << ", "
            << w_end << ") at level " << span.level;
      }
      // A complete window is a full pass over the encoding.
      if (w_end == w + window) {
        EXPECT_EQ(seen.size(), n);
      }
    }
  }
}

TEST(SessionMultiSource, MirrorsComplementEachOther) {
  core::TornadoCode code(core::TornadoParams::tornado_a(400, 16, 7));
  util::Rng rng(3);
  carousel::Carousel m0 =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);
  carousel::Carousel m1 =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);

  SessionConfig config;
  config.horizon = 100000;
  Session session(code, config);
  const SourceId s0 = session.add_source(
      std::make_shared<CarouselSource>(m0, code.codec_id()));
  const SourceId s1 = session.add_source(
      std::make_shared<CarouselSource>(m1, code.codec_id()));
  const ReceiverId id = session.add_receiver(ReceiverSpec{});
  session.subscribe(id, s0, std::make_unique<PerfectLink>());
  session.subscribe(id, s1, std::make_unique<PerfectLink>());

  const auto report = session.run().front();
  ASSERT_TRUE(report.completed);
  // Two mirrors per tick: finishes in roughly half the slots one needs.
  EXPECT_LT(report.completed_at, 400u);
  // Independent permutations collide occasionally; accounting must separate
  // the duplicates from the distinct stream.
  EXPECT_GE(report.received, report.distinct);
  EXPECT_GE(report.distinct, 400u);
}

TEST(SessionMultiSource, MismatchedCodecIsQuarantined) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 30, 30, 16);
  const auto c = carousel::Carousel::sequential(code->encoded_count());

  SessionConfig config;
  config.horizon = 10000;
  Session session(*code, config);
  const SourceId good = session.add_source(
      std::make_shared<CarouselSource>(c, code->codec_id()));
  // An impostor mirror announcing a different code family: its packets must
  // be counted but never decoded.
  const SourceId impostor = session.add_source(
      std::make_shared<CarouselSource>(c, fec::CodecId::kTornado));
  const ReceiverId id = session.add_receiver(ReceiverSpec{});
  session.subscribe(id, good, std::make_unique<PerfectLink>());
  session.subscribe(id, impostor, std::make_unique<PerfectLink>());

  const auto report = session.run().front();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(report.distinct, 30u);  // only the matching source decodes
  EXPECT_GT(report.rejected, 0u);
  EXPECT_EQ(report.received, report.distinct + report.rejected);
}

TEST(SessionMultiSource, MixedLtAndTornadoSessionQuarantinesImpostor) {
  // A rateless session with a block-code impostor mirror: the LT fountain
  // alone must complete the receiver while every Tornado-tagged packet is
  // counted and rejected — the codec byte, not the payload, is the gate.
  lt::LtParams p;
  p.k = 200;
  p.symbol_size = 16;
  p.seed = 5;
  const lt::LtCode code(p);
  const auto impostor_carousel =
      carousel::Carousel::sequential(code.encoded_count());

  SessionConfig config;
  config.horizon = 10000;
  Session session(code, config);
  const SourceId fountain = session.add_source(
      std::make_shared<RatelessSource>(code.codec_id()));
  const SourceId impostor = session.add_source(std::make_shared<CarouselSource>(
      impostor_carousel, fec::CodecId::kTornado));
  const ReceiverId id = session.add_receiver(ReceiverSpec{});
  session.subscribe(id, fountain, std::make_unique<PerfectLink>());
  session.subscribe(id, impostor, std::make_unique<PerfectLink>());

  const auto report = session.run().front();
  ASSERT_TRUE(report.completed);
  EXPECT_GT(report.rejected, 0u);
  // A fountain never repeats an index, so everything accepted is distinct.
  EXPECT_EQ(report.received, report.distinct + report.rejected);
  EXPECT_GE(report.distinct, 200u);
}

TEST(SessionDataPath, RatelessSourceStreamsPastNominalNWithoutWraparound) {
  // Start the fountain at index n: the whole decode happens from symbols a
  // block code could never emit, proving the engine's index plumbing (seen
  // bitmap, sink, encoder regeneration) is not bounded by encoded_count().
  lt::LtParams p;
  p.k = 400;
  p.symbol_size = 16;
  p.seed = 77;
  const lt::LtCode code(p);
  util::SymbolMatrix file(400, 16);
  file.fill_random(41);
  const auto encoder = code.make_encoder(file);

  SessionConfig config;
  config.horizon = 100000;
  Session session(code, config);
  ReceiverSpec spec;
  spec.sink =
      std::make_unique<engine::DataSink>(code.make_decoder(), *encoder);
  auto* sink = static_cast<engine::DataSink*>(spec.sink.get());
  const ReceiverId id = session.add_receiver(std::move(spec));
  const SourceId src = session.add_source(std::make_shared<RatelessSource>(
      code.codec_id(), /*offset=*/code.encoded_count()));
  util::Rng rng(9);
  session.subscribe(id, src,
                    std::make_unique<LossLink>(
                        std::make_unique<net::BernoulliLoss>(0.2, rng())));

  const auto report = session.run().front();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(sink->source(), file);
  EXPECT_GE(report.distinct, 400u);
  EXPECT_EQ(report.received, report.distinct);  // no duplicates, ever
}

TEST(SessionDataPath, StridedSourcesReconstructPayload) {
  // Dispersity-style: three paths deal one permutation, per-path loss, one
  // DataSink destination; the payload must round-trip bit-exact.
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 32, 9));
  util::SymbolMatrix file(300, 32);
  file.fill_random(21);
  const auto encoder = code.make_encoder(file);

  util::Rng rng(5);
  const auto order =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);

  SessionConfig config;
  config.horizon = 100000;
  Session session(code, config);
  ReceiverSpec spec;
  spec.sink = std::make_unique<engine::DataSink>(code.make_decoder(),
                                                 *encoder);
  auto* sink = static_cast<engine::DataSink*>(spec.sink.get());
  const ReceiverId id = session.add_receiver(std::move(spec));
  for (unsigned p = 0; p < 3; ++p) {
    const SourceId src = session.add_source(
        std::make_shared<StridedCarouselSource>(order, code.codec_id(), p, 3),
        /*start=*/p, /*period=*/3);
    session.subscribe(id, src,
                      std::make_unique<LossLink>(
                          std::make_unique<net::BernoulliLoss>(0.1 * p,
                                                               rng())));
  }

  const auto report = session.run().front();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(sink->source(), file);
}

TEST(SessionPooling, SinksAreReusedAcrossCohorts) {
  // cohort_size 1 forces every receiver through the same pooled slot; the
  // default StructuralSink and a pooled DataSink must both reset cleanly
  // (this drives fec::IncrementalDecoder::reset through the engine).
  core::TornadoCode code(core::TornadoParams::tornado_a(200, 16, 11));
  util::SymbolMatrix file(200, 16);
  file.fill_random(31);
  const auto encoder = code.make_encoder(file);
  const auto order = carousel::Carousel::sequential(code.encoded_count());

  for (const bool data_sinks : {false, true}) {
    SessionConfig config;
    config.horizon = 100000;
    config.cohort_size = 1;
    Session session(code, config);
    const SourceId src = session.add_source(
        std::make_shared<CarouselSource>(order, code.codec_id()));
    if (data_sinks) {
      session.set_sink_factory([&code, &encoder] {
        return std::make_unique<engine::DataSink>(code.make_decoder(),
                                                  *encoder);
      });
    }
    for (int r = 0; r < 4; ++r) {
      ReceiverSpec spec;
      spec.join = 37 * r;
      const ReceiverId id = session.add_receiver(std::move(spec));
      session.subscribe(id, src,
                        std::make_unique<LossLink>(
                            std::make_unique<net::BernoulliLoss>(0.2, 40 + r)));
    }
    for (const auto& report : session.run()) {
      EXPECT_TRUE(report.completed) << "data_sinks=" << data_sinks;
    }
  }
}

TEST(SessionScale, GilbertElliottPopulationCompletes) {
  // A miniature of the 100k-receiver bench: heterogeneous bursty links,
  // staggered joins, several cohorts.
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 16, 13));
  util::Rng rng(17);
  const auto order =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);

  SessionConfig config;
  config.horizon = 400ull * code.encoded_count();
  config.cohort_size = 256;
  Session session(code, config);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(order, code.codec_id()));
  const std::size_t population = 1500;
  for (std::size_t r = 0; r < population; ++r) {
    ReceiverSpec spec;
    spec.join = rng.below(code.encoded_count());
    const ReceiverId id = session.add_receiver(std::move(spec));
    session.subscribe(
        id, src,
        std::make_unique<LossLink>(std::make_unique<net::GilbertElliottLoss>(
            0.02 + 0.3 * rng.uniform(), 1.5 + 8.0 * rng.uniform(), rng())));
  }
  std::size_t completed = 0;
  for (const auto& report : session.run()) completed += report.completed;
  EXPECT_EQ(completed, population);
}

TEST(Links, SharedBottleneckCouplesSubscribers) {
  engine::SharedBottleneck queue(10.0);
  EXPECT_DOUBLE_EQ(queue.loss_probability(), 0.0);
  const auto a = queue.attach();
  const auto b = queue.attach();
  queue.set_rate(a, 8.0);
  EXPECT_DOUBLE_EQ(queue.loss_probability(), 0.0);  // within capacity
  // A sibling joining pushes the aggregate past capacity: everyone's loss.
  queue.set_rate(b, 8.0);
  EXPECT_NEAR(queue.offered(), 16.0, 1e-12);
  EXPECT_NEAR(queue.loss_probability(), 6.0 / 16.0, 1e-12);
  queue.set_rate(b, 0.0);  // ...and its leave clears the queue again
  EXPECT_DOUBLE_EQ(queue.loss_probability(), 0.0);

  EXPECT_THROW(queue.set_rate(99, 1.0), std::out_of_range);
  EXPECT_THROW(queue.set_rate(a, -1.0), std::invalid_argument);
  EXPECT_THROW(engine::SharedBottleneck(0.0), std::invalid_argument);
  EXPECT_THROW(engine::BottleneckLink(nullptr, 1), std::invalid_argument);
}

TEST(SessionValidation, BottleneckSpanningCohortsIsRejected) {
  // Shared-bottleneck rate aggregation is only sound when all attached
  // receivers are simulated concurrently; cohort_size 1 splits them. The
  // scenario is validated before any sharding, so it must throw — with the
  // documented message — at every thread count, including auto (0).
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 20, 20, 8);
  const auto order = carousel::Carousel::sequential(code->encoded_count());
  for (const std::size_t threads : {0, 1, 2, 4, 8}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    SessionConfig config;
    config.cohort_size = 1;
    config.threads = threads;
    Session session(*code, config);
    const SourceId src = session.add_source(
        std::make_shared<CarouselSource>(order, code->codec_id()));
    const auto queue = std::make_shared<engine::SharedBottleneck>(5.0);
    for (int i = 0; i < 2; ++i) {
      const ReceiverId id = session.add_receiver(ReceiverSpec{});
      session.subscribe(id, src,
                        std::make_unique<engine::BottleneckLink>(queue, 7 + i));
    }
    try {
      session.run();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what())
                    .find("receivers sharing a bottleneck span several "
                          "cohorts"),
                std::string::npos)
          << e.what();
    }
  }
}

namespace determinism {

/// Serializes every delivery it sees and decodes structurally, so two runs
/// can be compared event-for-event and decoder-state-for-decoder-state.
class TraceSink final : public engine::PacketSink {
 public:
  explicit TraceSink(std::unique_ptr<fec::StructuralDecoder> decoder)
      : decoder_(std::move(decoder)) {}

  bool on_packet(const engine::Delivery& d) override {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%llu:%u:%u:%u:%d:%d;",
                  static_cast<unsigned long long>(d.at), d.source, d.index,
                  d.layer, d.sync_point ? 1 : 0, d.burst ? 1 : 0);
    trace_ += buf;
    return decoder_->add_index(d.index);
  }
  bool complete() const override { return decoder_->complete(); }
  void reset() override {
    trace_.clear();
    decoder_->reset();
  }

  const std::string& trace() const { return trace_; }

 private:
  std::unique_ptr<fec::StructuralDecoder> decoder_;
  std::string trace_;
};

struct Outcome {
  std::vector<std::string> traces;
  std::vector<ReceiverReport> reports;
  std::vector<cc::TraceLog::Record> cc_records;
};

/// A mixed adaptive population (loss-driven controllers, legacy burst-probe
/// receivers, scripted-move receivers) contending on shared bottlenecks:
/// `groups` groups of six receivers, one SharedBottleneck per group, each
/// group confined to its own cohort when cohort_size = 6. Everything is
/// derived from fixed seeds, so the outcome — per-receiver delivery traces,
/// reports, and the merged cc trace record stream — must be byte-identical
/// at every (threads, run) combination.
Outcome run_adaptive_scenario(std::size_t threads, std::size_t cohort_size,
                              std::size_t groups) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 60, 60, 8);
  proto::ProtocolConfig cfg;
  cfg.layers = 4;
  const auto server = std::make_shared<proto::FountainServer>(
      cfg, code->encoded_count(), 0x5eed, code->codec_id());

  constexpr std::size_t kGroupSize = 6;
  SessionConfig config;
  config.horizon = 600;
  config.cohort_size = cohort_size;
  config.threads = threads;
  Session session(*code, config);
  const SourceId src = session.add_source(server);

  cc::TraceLog log(groups * kGroupSize);
  std::vector<TraceSink*> sinks;
  for (std::size_t g = 0; g < groups; ++g) {
    // rate(level 0) = n / B = 15 pkt/round; six receivers fit at level 0
    // with 10% headroom, so high starting levels force congestion episodes.
    const auto queue = std::make_shared<engine::SharedBottleneck>(99.0);
    for (std::size_t m = 0; m < kGroupSize; ++m) {
      const std::size_t i = g * kGroupSize + m;
      ReceiverSpec spec;
      spec.join = 7 * i;
      spec.policy.seed = 1000 + i;
      if (i % 3 == 0) {
        cc::LossDrivenConfig knobs;
        knobs.window_rounds = 8;
        knobs.initial_join_backoff = 8;
        knobs.probe_rounds = 10;
        spec.controller = log.wrap(
            i, spec.join, std::make_unique<cc::LossDrivenPolicy>(knobs));
      } else if (i % 3 == 1) {
        spec.policy.adaptive = true;
        spec.policy.initial_capacity = 2;
        spec.policy.capacity_change_prob = 0.02;
        spec.policy.congestion_extra_loss = 0.3;
      } else {
        spec.policy.initial_level = 3;  // over-subscribed joiner
        spec.moves.push_back(engine::ScriptedMove{40 + 3 * i, 1});
      }
      spec.sink = std::make_unique<TraceSink>(code->make_structural_decoder());
      sinks.push_back(static_cast<TraceSink*>(spec.sink.get()));
      const ReceiverId id = session.add_receiver(std::move(spec));
      session.subscribe(
          id, src,
          std::make_unique<engine::BottleneckLink>(
              queue, 0xabc + i, 0.01 * static_cast<double>(i % kGroupSize)));
    }
  }

  Outcome out;
  out.reports = session.run();
  for (TraceSink* sink : sinks) out.traces.push_back(sink->trace());
  out.cc_records = log.records();
  return out;
}

/// Field-by-field report equality with readable failure context.
void expect_same_outcome(const Outcome& golden, const Outcome& other,
                         const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(golden.traces.size(), other.traces.size());
  for (std::size_t i = 0; i < golden.traces.size(); ++i) {
    EXPECT_FALSE(golden.traces[i].empty()) << i;
    EXPECT_EQ(golden.traces[i], other.traces[i]) << "receiver " << i;
  }
  ASSERT_EQ(golden.reports.size(), other.reports.size());
  for (std::size_t i = 0; i < golden.reports.size(); ++i) {
    const ReceiverReport& a = golden.reports[i];
    const ReceiverReport& b = other.reports[i];
    EXPECT_EQ(a.completed, b.completed) << i;
    EXPECT_EQ(a.completed_at, b.completed_at) << i;
    EXPECT_EQ(a.addressed, b.addressed) << i;
    EXPECT_EQ(a.received, b.received) << i;
    EXPECT_EQ(a.distinct, b.distinct) << i;
    EXPECT_EQ(a.lost, b.lost) << i;
    EXPECT_EQ(a.rejected, b.rejected) << i;
    EXPECT_EQ(a.outcome, b.outcome) << i;
    EXPECT_EQ(a.corrupt_rejected, b.corrupt_rejected) << i;
    EXPECT_EQ(a.duplicates_dropped, b.duplicates_dropped) << i;
    EXPECT_EQ(a.level_changes, b.level_changes) << i;
    EXPECT_EQ(a.final_level, b.final_level) << i;
    EXPECT_EQ(a.peak_level, b.peak_level) << i;
  }
  ASSERT_EQ(golden.cc_records.size(), other.cc_records.size());
  for (std::size_t i = 0; i < golden.cc_records.size(); ++i) {
    EXPECT_EQ(golden.cc_records[i], other.cc_records[i]) << "record " << i;
  }
}

}  // namespace determinism

TEST(SessionDeterminism, SeededAdaptiveScenarioReplaysByteIdentically) {
  const auto first = determinism::run_adaptive_scenario(1, 1024, 1);
  const auto second = determinism::run_adaptive_scenario(1, 1024, 1);

  for (const ReceiverReport& rep : first.reports) {
    EXPECT_TRUE(rep.completed);  // decoders reached their final state
  }
  EXPECT_FALSE(first.cc_records.empty());  // the controllers did adapt
  determinism::expect_same_outcome(first, second, "replay");
}

TEST(SessionDeterminism, ThreadCountEquivalenceMatrix) {
  // The headline guarantee of the parallel engine: the same seeded adaptive
  // scenario — four bottleneck groups, each exactly one cohort — produces
  // byte-identical per-receiver delivery traces, reports, and merged cc
  // trace records at every thread count. threads = 1 (the historical
  // sequential path) is the golden reference; 8 threads oversubscribes any
  // 4-core CI runner, so scheduling jitter is exercised too.
  const auto golden = determinism::run_adaptive_scenario(1, 6, 4);
  for (const ReceiverReport& rep : golden.reports) {
    EXPECT_TRUE(rep.completed);
  }
  EXPECT_FALSE(golden.cc_records.empty());
  for (const std::size_t threads : {2, 4, 8}) {
    const auto outcome = determinism::run_adaptive_scenario(threads, 6, 4);
    determinism::expect_same_outcome(
        golden, outcome, "threads=" + std::to_string(threads));
  }
}

TEST(SessionDeterminism, CohortPartitionDoesNotChangeOutcomes) {
  // Per-receiver results depend only on the receiver's own seeded streams
  // and its bottleneck group's relative order — both invariant under the
  // cohort partition — so resizing cohorts (the shard grain) must not move
  // a single byte either. Groups of 6 fit in cohorts of 6, 12, and 1024.
  const auto golden = determinism::run_adaptive_scenario(1, 6, 4);
  determinism::expect_same_outcome(
      golden, determinism::run_adaptive_scenario(2, 12, 4), "cohort=12");
  determinism::expect_same_outcome(
      golden, determinism::run_adaptive_scenario(4, 1024, 4), "cohort=1024");
}

TEST(SessionValidation, ThreadsZeroNormalizesToHardwareConcurrency) {
  // Pinned normalization rule: threads = 0 is "auto", never an error. It
  // resolves to hardware_concurrency clamped to >= 1; explicit requests
  // pass through verbatim (even oversubscribed ones).
  const std::size_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(engine::resolve_threads(0), std::max<std::size_t>(hw, 1));
  EXPECT_EQ(engine::resolve_threads(1), 1u);
  EXPECT_EQ(engine::resolve_threads(3), 3u);
  EXPECT_EQ(engine::resolve_threads(64), 64u);

  // And a session configured with threads = 0 runs to completion.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 20, 20, 8);
  const auto order = carousel::Carousel::sequential(code->encoded_count());
  SessionConfig config;
  config.threads = 0;
  config.cohort_size = 1;  // several cohorts, so auto workers engage
  Session session(*code, config);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(order, code->codec_id()));
  for (int r = 0; r < 4; ++r) {
    const ReceiverId id = session.add_receiver(ReceiverSpec{});
    session.subscribe(id, src, std::make_unique<PerfectLink>());
  }
  for (const auto& report : session.run()) EXPECT_TRUE(report.completed);
}

TEST(SessionValidation, RejectsMalformedScenarios) {
  core::TornadoCode code(core::TornadoParams::tornado_a(100, 16, 15));
  const auto order = carousel::Carousel::sequential(code.encoded_count());
  Session session(code);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(order, code.codec_id()));
  EXPECT_THROW(session.add_source(nullptr), std::invalid_argument);

  ReceiverSpec backwards;
  backwards.join = 10;
  backwards.leave = 10;  // must leave strictly after joining
  EXPECT_THROW(session.add_receiver(std::move(backwards)),
               std::invalid_argument);

  const ReceiverId id = session.add_receiver(ReceiverSpec{});
  EXPECT_THROW(session.subscribe(id, src, nullptr), std::invalid_argument);
  EXPECT_THROW(session.subscribe(ReceiverId{99}, src,
                                 std::make_unique<PerfectLink>()),
               std::out_of_range);
  session.subscribe(id, src, std::make_unique<PerfectLink>());
  session.run();
  EXPECT_THROW(session.run(), std::logic_error);
}

}  // namespace
}  // namespace fountain
