// The discrete-event session engine: sources, links, sinks, cohort pooling,
// churn (asynchronous join/leave and mid-cycle level changes), multi-source
// aggregation, codec quarantine, and loss-regime changes.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "engine/session.hpp"
#include "engine/sources.hpp"
#include "fec/reed_solomon.hpp"
#include "net/loss.hpp"
#include "proto/server.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using engine::CarouselSource;
using engine::LossLink;
using engine::PacketBatch;
using engine::PerfectLink;
using engine::ReceiverId;
using engine::ReceiverReport;
using engine::ReceiverSpec;
using engine::Session;
using engine::SessionConfig;
using engine::SourceId;
using engine::StridedCarouselSource;

/// Records every delivery and never completes (runs until leave/horizon).
class RecordingSink final : public engine::PacketSink {
 public:
  struct Rec {
    engine::Time at;
    unsigned layer;
    std::uint32_t index;
  };

  bool on_packet(const engine::Delivery& d) override {
    recs_.push_back(Rec{d.at, d.layer, d.index});
    return false;
  }
  bool complete() const override { return false; }
  void reset() override { recs_.clear(); }

  const std::vector<Rec>& recs() const { return recs_; }

 private:
  std::vector<Rec> recs_;
};

TEST(Sources, CarouselSourceIsPureAndCyclic) {
  const auto c = carousel::Carousel::sequential(5);
  CarouselSource source(c, fec::CodecId::kReedSolomon, 2);
  EXPECT_EQ(source.codec_id(), fec::CodecId::kReedSolomon);
  PacketBatch batch;
  source.emit(3, batch);  // slots 6, 7 -> indices 1, 2
  ASSERT_EQ(batch.indices.size(), 2u);
  EXPECT_EQ(batch.indices[0], 1u);
  EXPECT_EQ(batch.indices[1], 2u);
  ASSERT_EQ(batch.segments.size(), 1u);
  EXPECT_EQ(batch.segments[0].layer, 0u);
  // Purity: same round, same batch.
  PacketBatch again;
  source.emit(3, again);
  EXPECT_EQ(again.indices, batch.indices);
}

TEST(Sources, StridedCarouselSourceDealsEveryNthSlot) {
  const auto c = carousel::Carousel::sequential(10);
  StridedCarouselSource path1(c, fec::CodecId::kTornado, 1, 3);
  PacketBatch batch;
  for (std::uint64_t r = 0; r < 4; ++r) {
    batch.clear();
    path1.emit(r, batch);
    ASSERT_EQ(batch.indices.size(), 1u);
    EXPECT_EQ(batch.indices[0], (1 + 3 * r) % 10);
  }
}

TEST(Links, LossLinkAppliesRegimeChangesAtTheirTick) {
  // Clean until tick 100, then a total outage (all-ones trace).
  auto outage = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{1});
  LossLink link(std::make_unique<net::BernoulliLoss>(0.0, 1));
  link.add_regime(100, std::make_unique<net::TraceLoss>(outage, 0));
  for (engine::Time t = 0; t < 100; ++t) EXPECT_TRUE(link.deliver(t)) << t;
  for (engine::Time t = 100; t < 120; ++t) EXPECT_FALSE(link.deliver(t)) << t;
  EXPECT_THROW(link.add_regime(50, std::make_unique<net::BernoulliLoss>(0, 2)),
               std::invalid_argument);
}

TEST(SessionChurn, AsynchronousJoinAndLeave) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 40, 40, 16);
  const auto c = carousel::Carousel::sequential(80);
  SessionConfig config;
  config.horizon = 500;
  Session session(*code, config);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(c, code->codec_id()));

  // Receiver 0 leaves after 10 slots (incomplete); receiver 1 joins late and
  // completes anyway.
  ReceiverSpec early;
  early.join = 0;
  early.leave = 10;
  const ReceiverId r0 = session.add_receiver(std::move(early));
  session.subscribe(r0, src, std::make_unique<PerfectLink>());

  ReceiverSpec late;
  late.join = 300;
  const ReceiverId r1 = session.add_receiver(std::move(late));
  session.subscribe(r1, src, std::make_unique<PerfectLink>());

  const auto reports = session.run();
  EXPECT_FALSE(reports[r0.value].completed);
  EXPECT_EQ(reports[r0.value].received, 10u);
  EXPECT_TRUE(reports[r1.value].completed);
  EXPECT_EQ(reports[r1.value].received, 40u);  // MDS: exactly k, any phase
  EXPECT_GE(reports[r1.value].completed_at, 300u);
}

TEST(SessionChurn, MidCycleLevelChangeKeepsWindowDistinctness) {
  // The engine churn path must preserve the Table 5 distinctness guarantee
  // piecewise: within every maximal fixed-level span, each full pass at that
  // level (a window of n / (level_rate * blocks) rounds, measured from the
  // span's first round) carries no duplicate packet. This is the any-phase
  // One Level Property (test_schedule) observed end-to-end through a
  // receiver whose subscription changes mid-cycle.
  core::TornadoCode code(core::TornadoParams::tornado_a(32, 16, 3));
  const std::size_t n = code.encoded_count();  // 64
  proto::ProtocolConfig cfg;
  cfg.layers = 4;
  cfg.burst_period = 0;  // constant rate; spans are exact
  const auto server = std::make_shared<proto::FountainServer>(
      cfg, n, 0x5eed, code.codec_id());

  SessionConfig config;
  config.horizon = 24;
  Session session(code, config);
  const SourceId src = session.add_source(server);

  ReceiverSpec spec;
  spec.policy.initial_level = 2;
  spec.moves.push_back(engine::ScriptedMove{3, 1});   // drop mid-cycle
  spec.moves.push_back(engine::ScriptedMove{9, 3});   // later, jump to full
  spec.sink = std::make_unique<RecordingSink>();
  auto* sink = static_cast<RecordingSink*>(spec.sink.get());
  const ReceiverId id = session.add_receiver(std::move(spec));
  session.subscribe(id, src, std::make_unique<PerfectLink>());

  const auto report = session.run().front();
  EXPECT_EQ(report.level_changes, 2u);

  struct Span {
    engine::Time begin;
    engine::Time end;
    unsigned level;
  };
  const Span spans[] = {{0, 3, 2}, {3, 9, 1}, {9, 24, 3}};
  const std::size_t blocks = server->schedule().block_count();
  for (const Span& span : spans) {
    const std::size_t per_round =
        server->schedule().level_rate(span.level) * blocks;
    ASSERT_EQ(n % per_round, 0u);
    const engine::Time window = n / per_round;
    for (engine::Time w = span.begin; w < span.end; w += window) {
      const engine::Time w_end = std::min<engine::Time>(w + window, span.end);
      std::set<std::uint32_t> seen;
      for (const auto& rec : sink->recs()) {
        if (rec.at < w || rec.at >= w_end) continue;
        EXPECT_TRUE(seen.insert(rec.index).second)
            << "duplicate " << rec.index << " in window [" << w << ", "
            << w_end << ") at level " << span.level;
      }
      // A complete window is a full pass over the encoding.
      if (w_end == w + window) {
        EXPECT_EQ(seen.size(), n);
      }
    }
  }
}

TEST(SessionMultiSource, MirrorsComplementEachOther) {
  core::TornadoCode code(core::TornadoParams::tornado_a(400, 16, 7));
  util::Rng rng(3);
  carousel::Carousel m0 =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);
  carousel::Carousel m1 =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);

  SessionConfig config;
  config.horizon = 100000;
  Session session(code, config);
  const SourceId s0 = session.add_source(
      std::make_shared<CarouselSource>(m0, code.codec_id()));
  const SourceId s1 = session.add_source(
      std::make_shared<CarouselSource>(m1, code.codec_id()));
  const ReceiverId id = session.add_receiver(ReceiverSpec{});
  session.subscribe(id, s0, std::make_unique<PerfectLink>());
  session.subscribe(id, s1, std::make_unique<PerfectLink>());

  const auto report = session.run().front();
  ASSERT_TRUE(report.completed);
  // Two mirrors per tick: finishes in roughly half the slots one needs.
  EXPECT_LT(report.completed_at, 400u);
  // Independent permutations collide occasionally; accounting must separate
  // the duplicates from the distinct stream.
  EXPECT_GE(report.received, report.distinct);
  EXPECT_GE(report.distinct, 400u);
}

TEST(SessionMultiSource, MismatchedCodecIsQuarantined) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 30, 30, 16);
  const auto c = carousel::Carousel::sequential(code->encoded_count());

  SessionConfig config;
  config.horizon = 10000;
  Session session(*code, config);
  const SourceId good = session.add_source(
      std::make_shared<CarouselSource>(c, code->codec_id()));
  // An impostor mirror announcing a different code family: its packets must
  // be counted but never decoded.
  const SourceId impostor = session.add_source(
      std::make_shared<CarouselSource>(c, fec::CodecId::kTornado));
  const ReceiverId id = session.add_receiver(ReceiverSpec{});
  session.subscribe(id, good, std::make_unique<PerfectLink>());
  session.subscribe(id, impostor, std::make_unique<PerfectLink>());

  const auto report = session.run().front();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(report.distinct, 30u);  // only the matching source decodes
  EXPECT_GT(report.rejected, 0u);
  EXPECT_EQ(report.received, report.distinct + report.rejected);
}

TEST(SessionDataPath, StridedSourcesReconstructPayload) {
  // Dispersity-style: three paths deal one permutation, per-path loss, one
  // DataSink destination; the payload must round-trip bit-exact.
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 32, 9));
  util::SymbolMatrix file(300, 32);
  file.fill_random(21);
  const auto encoder = code.make_encoder(file);

  util::Rng rng(5);
  const auto order =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);

  SessionConfig config;
  config.horizon = 100000;
  Session session(code, config);
  ReceiverSpec spec;
  spec.sink = std::make_unique<engine::DataSink>(code.make_decoder(),
                                                 *encoder);
  auto* sink = static_cast<engine::DataSink*>(spec.sink.get());
  const ReceiverId id = session.add_receiver(std::move(spec));
  for (unsigned p = 0; p < 3; ++p) {
    const SourceId src = session.add_source(
        std::make_shared<StridedCarouselSource>(order, code.codec_id(), p, 3),
        /*start=*/p, /*period=*/3);
    session.subscribe(id, src,
                      std::make_unique<LossLink>(
                          std::make_unique<net::BernoulliLoss>(0.1 * p,
                                                               rng())));
  }

  const auto report = session.run().front();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(sink->source(), file);
}

TEST(SessionPooling, SinksAreReusedAcrossCohorts) {
  // cohort_size 1 forces every receiver through the same pooled slot; the
  // default StructuralSink and a pooled DataSink must both reset cleanly
  // (this drives fec::IncrementalDecoder::reset through the engine).
  core::TornadoCode code(core::TornadoParams::tornado_a(200, 16, 11));
  util::SymbolMatrix file(200, 16);
  file.fill_random(31);
  const auto encoder = code.make_encoder(file);
  const auto order = carousel::Carousel::sequential(code.encoded_count());

  for (const bool data_sinks : {false, true}) {
    SessionConfig config;
    config.horizon = 100000;
    config.cohort_size = 1;
    Session session(code, config);
    const SourceId src = session.add_source(
        std::make_shared<CarouselSource>(order, code.codec_id()));
    if (data_sinks) {
      session.set_sink_factory([&code, &encoder] {
        return std::make_unique<engine::DataSink>(code.make_decoder(),
                                                  *encoder);
      });
    }
    for (int r = 0; r < 4; ++r) {
      ReceiverSpec spec;
      spec.join = 37 * r;
      const ReceiverId id = session.add_receiver(std::move(spec));
      session.subscribe(id, src,
                        std::make_unique<LossLink>(
                            std::make_unique<net::BernoulliLoss>(0.2, 40 + r)));
    }
    for (const auto& report : session.run()) {
      EXPECT_TRUE(report.completed) << "data_sinks=" << data_sinks;
    }
  }
}

TEST(SessionScale, GilbertElliottPopulationCompletes) {
  // A miniature of the 100k-receiver bench: heterogeneous bursty links,
  // staggered joins, several cohorts.
  core::TornadoCode code(core::TornadoParams::tornado_a(300, 16, 13));
  util::Rng rng(17);
  const auto order =
      carousel::Carousel::random_permutation(code.encoded_count(), rng);

  SessionConfig config;
  config.horizon = 400ull * code.encoded_count();
  config.cohort_size = 256;
  Session session(code, config);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(order, code.codec_id()));
  const std::size_t population = 1500;
  for (std::size_t r = 0; r < population; ++r) {
    ReceiverSpec spec;
    spec.join = rng.below(code.encoded_count());
    const ReceiverId id = session.add_receiver(std::move(spec));
    session.subscribe(
        id, src,
        std::make_unique<LossLink>(std::make_unique<net::GilbertElliottLoss>(
            0.02 + 0.3 * rng.uniform(), 1.5 + 8.0 * rng.uniform(), rng())));
  }
  std::size_t completed = 0;
  for (const auto& report : session.run()) completed += report.completed;
  EXPECT_EQ(completed, population);
}

TEST(SessionValidation, RejectsMalformedScenarios) {
  core::TornadoCode code(core::TornadoParams::tornado_a(100, 16, 15));
  const auto order = carousel::Carousel::sequential(code.encoded_count());
  Session session(code);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(order, code.codec_id()));
  EXPECT_THROW(session.add_source(nullptr), std::invalid_argument);

  ReceiverSpec backwards;
  backwards.join = 10;
  backwards.leave = 10;  // must leave strictly after joining
  EXPECT_THROW(session.add_receiver(std::move(backwards)),
               std::invalid_argument);

  const ReceiverId id = session.add_receiver(ReceiverSpec{});
  EXPECT_THROW(session.subscribe(id, src, nullptr), std::invalid_argument);
  EXPECT_THROW(session.subscribe(ReceiverId{99}, src,
                                 std::make_unique<PerfectLink>()),
               std::out_of_range);
  session.subscribe(id, src, std::make_unique<PerfectLink>());
  session.run();
  EXPECT_THROW(session.run(), std::logic_error);
}

}  // namespace
}  // namespace fountain
