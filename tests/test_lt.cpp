// The rateless plane: robust-soliton distribution fit, deterministic
// (seed, index) -> neighborhood derivation across runs and threads, the
// streaming encoder past the nominal n, BP/inactivation decoding at k up to
// 65536 (the epsilon <= 0.05 acceptance bound, with the dense-GE path
// provably exercised), structural/data decoder agreement, decoder pooling,
// and the ControlInfo round-trip that lets a mirror rebuild the identical
// code.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fec/codec_registry.hpp"
#include "lt/decoder.hpp"
#include "lt/encoder.hpp"
#include "lt/lt_code.hpp"
#include "lt/soliton.hpp"
#include "proto/control.hpp"
#include "util/random.hpp"
#include "util/symbols.hpp"

namespace fountain {
namespace {

lt::LtCode make_code(std::size_t k, std::size_t symbol_size,
                     std::uint64_t seed) {
  lt::LtParams p;
  p.k = k;
  p.symbol_size = symbol_size;
  p.seed = seed;
  return lt::LtCode(p);
}

// Feeds shuffled distinct indices drawn from [0, space) until the decoder
// completes; returns how many symbols it consumed (0 = never completed).
std::size_t decode_with_shuffled(const lt::LtCode& code,
                                 const util::SymbolMatrix& src,
                                 lt::LtDataDecoder& dec, std::uint32_t space,
                                 std::uint64_t shuffle_seed) {
  const auto enc = code.make_encoder(src);
  std::vector<std::uint32_t> idx(space);
  for (std::uint32_t i = 0; i < space; ++i) idx[i] = i;
  std::mt19937_64 g(shuffle_seed);
  std::shuffle(idx.begin(), idx.end(), g);
  std::vector<std::uint8_t> buf(code.symbol_size());
  std::size_t used = 0;
  for (const auto i : idx) {
    enc->write_symbol(i, util::ByteSpan(buf.data(), buf.size()));
    ++used;
    if (dec.add_symbol(i, util::ConstByteSpan(buf.data(), buf.size()))) {
      return used;
    }
  }
  return 0;
}

TEST(RobustSoliton, RejectsBadParameters) {
  EXPECT_THROW(lt::RobustSoliton(0, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(lt::RobustSoliton(100, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(lt::RobustSoliton(100, -0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(lt::RobustSoliton(100, 0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(lt::RobustSoliton(100, 0.1, 1.5), std::invalid_argument);
}

TEST(RobustSoliton, PmfIsANormalizedDistribution) {
  for (const std::size_t k : {1u, 2u, 10u, 1000u, 65536u}) {
    const lt::RobustSoliton dist(k);
    double sum = 0.0;
    for (unsigned d = 1; d <= k; ++d) sum += dist.pmf(d);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "k=" << k;
    EXPECT_EQ(dist.pmf(0), 0.0);
    EXPECT_EQ(dist.pmf(static_cast<unsigned>(k) + 1), 0.0);
    EXPECT_GE(dist.spike_degree(), 1u);
    EXPECT_LE(dist.spike_degree(), k);
    // Mean degree ~ ln(k / delta): the whole point of the soliton shape.
    EXPECT_GT(dist.mean_degree(), 0.99);
    EXPECT_LT(dist.mean_degree(), 3.0 * std::log(static_cast<double>(k) + 2));
  }
}

TEST(RobustSoliton, SampledDegreesFitThePmfChiSquared) {
  // Empirical degree histogram vs the analytic PMF, across several code
  // seeds. Buckets with expected count < 8 are merged into a tail bucket so
  // the chi-squared approximation holds. The draws are deterministic, so a
  // generous-but-finite critical value makes this a regression tripwire for
  // both the sampler and the CDF construction, not a flaky statistics test.
  const std::size_t k = 1000;
  const std::size_t samples = 200000;
  const lt::RobustSoliton dist(k);
  for (const std::uint64_t seed : {1ull, 7ull, 0xdeadbeefull}) {
    lt::NeighborGenerator gen(dist, seed);
    std::vector<std::uint32_t> scratch;
    std::vector<double> observed(k + 1, 0.0);
    for (std::size_t i = 0; i < samples; ++i) {
      observed[gen.generate(static_cast<std::uint32_t>(i), scratch)] += 1.0;
    }
    double chi2 = 0.0;
    double merged_obs = 0.0;
    double merged_exp = 0.0;
    std::size_t dof = 0;
    for (unsigned d = 1; d <= k; ++d) {
      const double expect = dist.pmf(d) * static_cast<double>(samples);
      if (expect < 8.0) {
        merged_obs += observed[d];
        merged_exp += expect;
        continue;
      }
      chi2 += (observed[d] - expect) * (observed[d] - expect) / expect;
      ++dof;
    }
    if (merged_exp > 0.0) {
      chi2 += (merged_obs - merged_exp) * (merged_obs - merged_exp) /
              merged_exp;
      ++dof;
    }
    ASSERT_GT(dof, 4u);
    --dof;  // histogram total is fixed
    // ~4-sigma critical value for a chi-squared with `dof` degrees.
    const double critical =
        static_cast<double>(dof) + 4.0 * std::sqrt(2.0 * static_cast<double>(dof));
    EXPECT_LT(chi2, critical) << "seed=" << seed << " dof=" << dof;
  }
}

TEST(NeighborGenerator, DerivationIsDeterministicAcrossInstancesAndThreads) {
  const std::size_t k = 5000;
  const lt::RobustSoliton dist(k);
  const std::uint64_t seed = 42;

  // Reference pass, sequential, one generator.
  std::vector<std::vector<std::uint32_t>> reference(4096);
  {
    lt::NeighborGenerator gen(dist, seed);
    for (std::uint32_t i = 0; i < reference.size(); ++i) {
      gen.generate(i, reference[i]);
    }
  }
  // A second instance generating in reverse order must agree exactly:
  // (seed, index) fully determines the neighborhood, with no cross-symbol
  // state leaking through the generator's pooled scratch.
  {
    lt::NeighborGenerator gen(dist, seed);
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = static_cast<std::uint32_t>(reference.size());
         i-- > 0;) {
      gen.generate(i, out);
      EXPECT_EQ(out, reference[i]) << "index " << i;
    }
  }
  // Per-thread generators over disjoint slices must reproduce the reference
  // byte for byte — the mirror-regeneration property the rateless design
  // rests on, and what makes parallel session workers deterministic.
  const std::size_t threads = 4;
  std::vector<int> ok(threads, 0);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      lt::NeighborGenerator gen(dist, seed);
      std::vector<std::uint32_t> out;
      int good = 1;
      for (std::uint32_t i = static_cast<std::uint32_t>(t);
           i < reference.size(); i += threads) {
        gen.generate(i, out);
        if (out != reference[i]) good = 0;
      }
      ok[t] = good;
    });
  }
  for (auto& th : pool) th.join();
  for (std::size_t t = 0; t < threads; ++t) EXPECT_EQ(ok[t], 1) << t;
}

TEST(NeighborGenerator, NeighborsAreDistinctAndInRange) {
  const std::size_t k = 97;
  const lt::RobustSoliton dist(k);
  lt::NeighborGenerator gen(dist, 3);
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < 20000; ++i) {
    const unsigned degree = gen.generate(i, out);
    ASSERT_EQ(out.size(), degree);
    ASSERT_GE(degree, 1u);
    ASSERT_LE(degree, k);
    auto sorted = out;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "duplicate neighbor at index " << i;
    ASSERT_LT(sorted.back(), k);
  }
}

TEST(LtEncoder, MatchesManualNeighborFoldIncludingPastNominalN) {
  const auto code = make_code(240, 48, 11);
  util::SymbolMatrix src(240, 48);
  src.fill_random(5);
  const auto enc = code.make_encoder(src);
  lt::NeighborGenerator gen(code.distribution(), code.params().seed);
  std::vector<std::uint32_t> nbrs;
  std::vector<std::uint8_t> got(48);
  std::vector<std::uint8_t> want(48);
  // Indices straddling encoded_count(): a rateless encoder has no bound.
  const auto n = static_cast<std::uint32_t>(code.encoded_count());
  for (const std::uint32_t i :
       {0u, 1u, n - 1, n, n + 1, 10 * n, 0xffffffffu}) {
    enc->write_symbol(i, util::ByteSpan(got.data(), got.size()));
    gen.generate(i, nbrs);
    std::fill(want.begin(), want.end(), 0);
    for (const auto s : nbrs) {
      const auto row = src.row(s);
      for (std::size_t b = 0; b < want.size(); ++b) want[b] ^= row[b];
    }
    EXPECT_EQ(got, want) << "index " << i;
  }
  // Streaming is pure in the index: asking again must reproduce symbol 0.
  enc->write_symbol(0, util::ByteSpan(got.data(), got.size()));
  gen.generate(0, nbrs);
  std::fill(want.begin(), want.end(), 0);
  for (const auto s : nbrs) {
    const auto row = src.row(s);
    for (std::size_t b = 0; b < want.size(); ++b) want[b] ^= row[b];
  }
  EXPECT_EQ(got, want);
}

TEST(LtDecoder, RecoversAtFivePercentOverheadWithInactivation) {
  // The acceptance bound: k = 65536, random distinct symbols, completion at
  // <= 1.05 k — and the run must go through the inactivation/GE path, not
  // pure peeling (peeling alone needs noticeably more than 5% at this k).
  const std::size_t k = 65536;
  const auto code = make_code(k, 16, 7);
  util::SymbolMatrix src(k, 16);
  src.fill_random(99);
  lt::LtDataDecoder dec(code);
  const std::size_t used = decode_with_shuffled(
      code, src, dec, static_cast<std::uint32_t>(3 * k), /*shuffle_seed=*/5);
  ASSERT_NE(used, 0u) << "decoder never completed";
  const double eps =
      static_cast<double>(used) / static_cast<double>(k) - 1.0;
  EXPECT_LE(eps, 0.05) << "reception overhead " << eps;
  EXPECT_GT(dec.core().inactivated(), 0u)
      << "decode finished by pure peeling; the GE path was not exercised";
  EXPECT_GT(dec.core().peeled(), 0u);
  EXPECT_EQ(dec.source(), util::ConstSymbolView(src));
}

TEST(LtDecoder, StructuralAndDataDecodersAgreeStepByStep) {
  // Decodability is index-only, so the oracle and the payload decoder must
  // flip to complete on exactly the same packet — including through failed
  // and successful inactivation attempts, duplicates, and a lossy shuffle.
  const std::size_t k = 2000;
  const auto code = make_code(k, 24, 3);
  util::SymbolMatrix src(k, 24);
  src.fill_random(17);
  const auto enc = code.make_encoder(src);
  lt::LtDataDecoder data(code);
  lt::LtStructuralDecoder oracle(code);

  util::Rng rng(12345);
  std::vector<std::uint8_t> buf(code.symbol_size());
  bool done = false;
  std::size_t steps = 0;
  while (!done) {
    ASSERT_LT(steps, 100000u);
    // Duplicates on purpose: draw from a window only ~1.2x the need.
    const auto i = static_cast<std::uint32_t>(rng.below(5 * k / 2));
    enc->write_symbol(i, util::ByteSpan(buf.data(), buf.size()));
    done = data.add_symbol(i, util::ConstByteSpan(buf.data(), buf.size()));
    const bool oracle_done = oracle.add_index(i);
    ASSERT_EQ(done, oracle_done) << "step " << steps;
    ++steps;
  }
  EXPECT_EQ(data.source(), util::ConstSymbolView(src));
  EXPECT_EQ(data.core().distinct(), oracle.core().distinct());
  EXPECT_EQ(data.core().inactivated(), oracle.core().inactivated());
}

TEST(LtDecoder, DuplicatesNeverAdvanceState) {
  const std::size_t k = 50;
  const auto code = make_code(k, 8, 21);
  util::SymbolMatrix src(k, 8);
  src.fill_random(4);
  const auto enc = code.make_encoder(src);
  lt::LtDataDecoder dec(code);
  std::vector<std::uint8_t> buf(8);
  enc->write_symbol(9, util::ByteSpan(buf.data(), buf.size()));
  for (int rep = 0; rep < 100; ++rep) {
    EXPECT_FALSE(dec.add_symbol(9, util::ConstByteSpan(buf.data(), 8)));
  }
  EXPECT_EQ(dec.distinct_received(), 1u);
}

TEST(LtDecoder, ResetPoolsStateAcrossDecodes) {
  // Engine sinks pool decoders across simulated receivers: after reset(),
  // a decode of different payloads under a different shuffle must behave
  // exactly like a fresh decoder.
  const std::size_t k = 600;
  const auto code = make_code(k, 12, 9);
  lt::LtDataDecoder pooled(code);
  for (const std::uint64_t round : {0ull, 1ull, 2ull}) {
    util::SymbolMatrix src(k, 12);
    src.fill_random(1000 + round);
    lt::LtDataDecoder fresh(code);
    const std::size_t used_fresh = decode_with_shuffled(
        code, src, fresh, static_cast<std::uint32_t>(3 * k), 77 + round);
    pooled.reset();
    const std::size_t used_pooled = decode_with_shuffled(
        code, src, pooled, static_cast<std::uint32_t>(3 * k), 77 + round);
    ASSERT_NE(used_fresh, 0u);
    EXPECT_EQ(used_pooled, used_fresh) << "round " << round;
    EXPECT_EQ(pooled.source(), util::ConstSymbolView(src));
    EXPECT_EQ(pooled.source(), fresh.source());
  }
}

TEST(LtDecoder, SmallAndDegenerateBlockSizes) {
  for (const std::size_t k : {1u, 2u, 3u, 7u, 32u}) {
    const auto code = make_code(k, 4, 13);
    util::SymbolMatrix src(k, 4);
    src.fill_random(k);
    lt::LtDataDecoder dec(code);
    const std::size_t used = decode_with_shuffled(
        code, src, dec, static_cast<std::uint32_t>(64 * k + 64), 3);
    ASSERT_NE(used, 0u) << "k=" << k;
    EXPECT_EQ(dec.source(), util::ConstSymbolView(src)) << "k=" << k;
  }
}

TEST(LtCode, VariantPacksAndUnpacksSolitonParameters) {
  const std::uint32_t v = lt::variant_from(0.15, 0.2);
  double c = 0.0;
  double delta = 0.0;
  lt::params_from_variant(v, c, delta);
  EXPECT_NEAR(c, 0.15, 1e-9);
  EXPECT_NEAR(delta, 0.2, 1e-9);
  // Zero halves mean the defaults (so variant 0 is the default code).
  lt::params_from_variant(0, c, delta);
  EXPECT_EQ(c, lt::RobustSoliton::kDefaultC);
  EXPECT_EQ(delta, lt::RobustSoliton::kDefaultDelta);
  EXPECT_THROW(lt::variant_from(100.0, 0.5), std::invalid_argument);
}

TEST(LtCode, RegistryAndControlInfoRebuildIdenticalStreams) {
  // A mirror holding only the 52-byte control record must regenerate
  // byte-identical symbols, including non-default (c, delta) via `variant`.
  const std::size_t k = 300;
  proto::ControlInfo info;
  info.file_bytes = k * 32;
  info.symbol_size = 32;
  info.source_count = static_cast<std::uint32_t>(k);
  info.encoded_count = static_cast<std::uint32_t>(2 * k);
  info.graph_seed = 0xabcdef;
  info.variant = lt::variant_from(0.2, 0.1);
  info.codec = fec::CodecId::kLT;

  std::vector<std::uint8_t> wire(proto::ControlInfo::kWireSize);
  info.serialize(util::ByteSpan(wire));
  const auto parsed = proto::ControlInfo::parse(util::ConstByteSpan(wire));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.info, info);
  ASSERT_EQ(parsed.info.codec, fec::CodecId::kLT);

  const auto& registry = fec::CodecRegistry::builtin();
  ASSERT_TRUE(registry.contains(fec::CodecId::kLT));
  EXPECT_EQ(registry.name(fec::CodecId::kLT), "lt");
  const auto server = registry.create(info.codec, info.codec_params());
  const auto mirror =
      registry.create(parsed.info.codec, parsed.info.codec_params());
  ASSERT_EQ(server->codec_id(), fec::CodecId::kLT);
  EXPECT_EQ(server->source_count(), k);
  EXPECT_EQ(server->encoded_count(), 2 * k);

  util::SymbolMatrix src(k, 32);
  src.fill_random(8);
  const auto enc_a = server->make_encoder(src);
  const auto enc_b = mirror->make_encoder(src);
  std::vector<std::uint8_t> a(32);
  std::vector<std::uint8_t> b(32);
  for (const std::uint32_t i : {0u, 1u, 599u, 600u, 100000u}) {
    enc_a->write_symbol(i, util::ByteSpan(a.data(), a.size()));
    enc_b->write_symbol(i, util::ByteSpan(b.data(), b.size()));
    EXPECT_EQ(a, b) << "index " << i;
  }
  // And the mirror's decoder closes the loop on the server's stream.
  auto dec = mirror->make_decoder();
  std::vector<std::uint8_t> buf(32);
  bool done = false;
  for (std::uint32_t i = 500; !done; ++i) {  // entirely past-n indices
    ASSERT_LT(i, 2000u);
    enc_a->write_symbol(i, util::ByteSpan(buf.data(), buf.size()));
    done = dec->add_symbol(i, util::ConstByteSpan(buf.data(), buf.size()));
  }
  EXPECT_EQ(dec->source(), util::ConstSymbolView(src));
}

TEST(LtCode, SentinelKeepsWireParserInSyncWithTheEnum) {
  // The regression this PR closes structurally: adding a codec family used
  // to require touching a hardcoded bound in is_known_codec; the sentinel
  // makes the bound follow the enum. kLT must be known, the next byte not.
  EXPECT_TRUE(fec::is_known_codec(
      static_cast<std::uint8_t>(fec::CodecId::kLT)));
  EXPECT_EQ(static_cast<std::uint8_t>(fec::kMaxCodecId),
            static_cast<std::uint8_t>(fec::CodecId::kLT));
  EXPECT_FALSE(fec::is_known_codec(
      static_cast<std::uint8_t>(fec::kMaxCodecId) + 1));
  EXPECT_FALSE(fec::is_known_codec(0x7f));
  EXPECT_FALSE(fec::is_known_codec(0xff));
}

}  // namespace
}  // namespace fountain
