#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/symbols.hpp"

namespace fountain {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(123);
  util::Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1);
  util::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  util::Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroThrows) {
  util::Rng rng(7);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, UniformInUnitInterval) {
  util::Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  util::Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, PermutationIsValid) {
  util::Rng rng(13);
  const auto perm = rng.permutation(257);
  std::set<std::uint32_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 257u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 256u);
}

TEST(Rng, PermutationsVaryAcrossCalls) {
  util::Rng rng(13);
  EXPECT_NE(rng.permutation(64), rng.permutation(64));
}

TEST(Rng, ForkProducesIndependentStream) {
  util::Rng rng(17);
  util::Rng child = rng.fork();
  // The child should not replay the parent's stream.
  util::Rng parent_copy(17);
  (void)parent_copy();  // same consumption as fork()
  EXPECT_NE(child(), parent_copy());
}

TEST(RunningStats, BasicMoments) {
  util::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  util::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  util::Rng rng(19);
  util::RunningStats all;
  util::RunningStats a;
  util::RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSet, Percentiles) {
  util::SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SampleSet, FractionAbove) {
  util::SampleSet s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.fraction_above(10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_above(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_above(0.0), 1.0);
}

TEST(SampleSet, EmptyPercentileThrows) {
  util::SampleSet s;
  EXPECT_THROW(s.percentile(0.5), std::logic_error);
}

TEST(SampleSet, MeanAndStddev) {
  util::SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Histogram, BinningAndTail) {
  util::Histogram h(0.0, 1.0, 10);
  for (double x : {0.05, 0.15, 0.15, 0.95, 1.5 /* clamps to last bin */}) {
    h.add(x);
  }
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count_in(0), 1u);
  EXPECT_EQ(h.count_in(1), 2u);
  EXPECT_EQ(h.count_in(9), 2u);
  EXPECT_DOUBLE_EQ(h.tail_fraction(0), 1.0);
  EXPECT_DOUBLE_EQ(h.tail_fraction(9), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 0.1);
}

TEST(Histogram, BadRangeThrows) {
  EXPECT_THROW(util::Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(util::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Symbols, XorIntoIsInvolution) {
  util::SymbolMatrix m(2, 64);
  m.fill_random(1);
  util::SymbolMatrix copy = m;
  util::xor_into(m.row(0), m.row(1));
  EXPECT_NE(m, copy);
  util::xor_into(m.row(0), m.row(1));
  EXPECT_EQ(m, copy);
}

TEST(Symbols, XorIntoOddLength) {
  util::SymbolMatrix m(2, 13);  // exercises the byte-tail loop
  m.fill_random(2);
  std::vector<std::uint8_t> expect(13);
  for (int i = 0; i < 13; ++i) expect[i] = m.row(0)[i] ^ m.row(1)[i];
  util::xor_into(m.row(0), m.row(1));
  for (int i = 0; i < 13; ++i) EXPECT_EQ(m.row(0)[i], expect[i]);
}

TEST(Symbols, XorSizeMismatchThrows) {
  util::SymbolMatrix a(1, 8);
  util::SymbolMatrix b(1, 9);
  EXPECT_THROW(util::xor_into(a.row(0), b.row(0)), std::invalid_argument);
}

TEST(Symbols, FillRandomDeterministic) {
  util::SymbolMatrix a(3, 100);
  util::SymbolMatrix b(3, 100);
  a.fill_random(77);
  b.fill_random(77);
  EXPECT_EQ(a, b);
  b.fill_random(78);
  EXPECT_NE(a, b);
}

TEST(Symbols, RowsAreDisjointViews) {
  util::SymbolMatrix m(4, 16);
  m.row(2)[0] = 0xAB;
  EXPECT_EQ(m.row(2)[0], 0xAB);
  EXPECT_EQ(m.row(1)[0], 0);
  EXPECT_EQ(m.row(3)[0], 0);
  EXPECT_EQ(m.data()[2 * 16], 0xAB);
}

TEST(Symbols, FillZero) {
  util::SymbolMatrix m(2, 32);
  m.fill_random(5);
  m.fill_zero();
  for (std::size_t i = 0; i < m.size_bytes(); ++i) EXPECT_EQ(m.data()[i], 0);
}

}  // namespace
}  // namespace fountain
