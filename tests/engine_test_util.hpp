// Shared test shorthand: run one receiver against one carousel through the
// session engine — the single-receiver primitive the deleted
// carousel::simulate_reception used to hand-roll.
#pragma once

#include <memory>
#include <utility>

#include "carousel/carousel.hpp"
#include "engine/session.hpp"
#include "engine/sources.hpp"
#include "net/loss.hpp"

namespace fountain::test {

/// Joins `carousel` at tick `join` behind `loss` and listens for at most
/// `max_slots` slots (one engine tick = one carousel slot).
inline engine::ReceiverReport listen_to_carousel(
    const fec::ErasureCode& code, const carousel::Carousel& carousel,
    std::unique_ptr<net::LossModel> loss, engine::Time join,
    engine::Time max_slots) {
  engine::SessionConfig config;
  config.horizon = join + max_slots;
  engine::Session session(code, config);
  const engine::SourceId source = session.add_source(
      std::make_shared<engine::CarouselSource>(carousel, code.codec_id()));
  engine::ReceiverSpec spec;
  spec.join = join;
  const engine::ReceiverId receiver = session.add_receiver(std::move(spec));
  session.subscribe(receiver, source,
                    std::make_unique<engine::LossLink>(std::move(loss)));
  return session.run().front();
}

}  // namespace fountain::test
