// Loss models, synthetic traces, packet framing, and the UDP transport.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <utility>

#include "net/loss.hpp"
#include "net/packet_header.hpp"
#include "net/trace.hpp"
#include "net/udp.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

TEST(BernoulliLoss, EmpiricalRate) {
  net::BernoulliLoss loss(0.25, 1);
  int lost = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) lost += loss.lost();
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.25, 0.01);
  EXPECT_DOUBLE_EQ(loss.nominal_loss_rate(), 0.25);
}

TEST(BernoulliLoss, ResetReplaysStream) {
  net::BernoulliLoss loss(0.5, 2);
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) first.push_back(loss.lost());
  loss.reset();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(loss.lost(), first[i]);
}

TEST(BernoulliLoss, CloneIsIndependentCopy) {
  net::BernoulliLoss loss(0.5, 3);
  auto clone = loss.clone();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(loss.lost(), clone->lost());
}

TEST(BernoulliLoss, InvalidProbabilityThrows) {
  EXPECT_THROW(net::BernoulliLoss(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(net::BernoulliLoss(1.0, 1), std::invalid_argument);
}

TEST(GilbertElliott, StationaryLossRate) {
  net::GilbertElliottLoss loss(0.2, 5.0, 4);
  std::int64_t lost = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) lost += loss.lost();
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.2, 0.01);
}

TEST(GilbertElliott, StationaryRateAndBurstLengthMatchConfiguration) {
  // Statistical check across the parameter plane: the observed stationary
  // loss fraction and the observed mean BAD-run length must both match the
  // configured (loss_rate, mean_burst) within tolerance. Seeded and
  // deterministic.
  const int n = 600000;
  const std::pair<double, double> configs[] = {
      {0.05, 2.0}, {0.2, 5.0}, {0.35, 12.0}, {0.5, 8.0}};
  std::uint64_t seed = 100;
  for (const auto& [rate, burst] : configs) {
    net::GilbertElliottLoss loss(rate, burst, seed++);
    std::int64_t lost = 0;
    std::vector<int> runs;
    int current = 0;
    for (int i = 0; i < n; ++i) {
      if (loss.lost()) {
        ++lost;
        ++current;
      } else if (current > 0) {
        runs.push_back(current);
        current = 0;
      }
    }
    const double observed_rate = static_cast<double>(lost) / n;
    EXPECT_NEAR(observed_rate, rate, 0.05 * rate + 0.005)
        << "rate=" << rate << " burst=" << burst;
    ASSERT_FALSE(runs.empty());
    double mean_run = 0.0;
    for (int r : runs) mean_run += r;
    mean_run /= static_cast<double>(runs.size());
    EXPECT_NEAR(mean_run, burst, 0.08 * burst)
        << "rate=" << rate << " burst=" << burst;
  }
}

TEST(GilbertElliott, TransitionProbabilitiesMatchClosedForm) {
  // pi_bad = p_gb / (p_gb + p_bg) and mean burst = 1 / p_bg.
  net::GilbertElliottLoss loss(0.3, 7.0, 1);
  EXPECT_NEAR(loss.p_bad_to_good(), 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(loss.p_good_to_bad() /
                  (loss.p_good_to_bad() + loss.p_bad_to_good()),
              0.3, 1e-12);
}

TEST(GilbertElliott, BurstsAreLongerThanBernoulli) {
  // Mean run length of consecutive losses should approach mean_burst.
  net::GilbertElliottLoss loss(0.2, 10.0, 5);
  std::vector<int> runs;
  int current = 0;
  for (int i = 0; i < 400000; ++i) {
    if (loss.lost()) {
      ++current;
    } else if (current > 0) {
      runs.push_back(current);
      current = 0;
    }
  }
  double mean_run = 0.0;
  for (int r : runs) mean_run += r;
  mean_run /= static_cast<double>(runs.size());
  EXPECT_NEAR(mean_run, 10.0, 1.0);
}

TEST(GilbertElliott, InfeasibleParamsThrow) {
  EXPECT_THROW(net::GilbertElliottLoss(0.9, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(net::GilbertElliottLoss(0.2, 0.5, 1), std::invalid_argument);
}

TEST(TraceLoss, PlaybackWrapsAndOffsets) {
  auto trace = std::make_shared<std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{1, 0, 0, 1, 0});
  net::TraceLoss loss(trace, 3);
  EXPECT_TRUE(loss.lost());   // position 3
  EXPECT_FALSE(loss.lost());  // position 4
  EXPECT_TRUE(loss.lost());   // wrapped to 0
  EXPECT_FALSE(loss.lost());
  loss.reset();
  EXPECT_TRUE(loss.lost());  // back at 3
  EXPECT_NEAR(loss.nominal_loss_rate(), 0.4, 1e-12);
}

TEST(TraceLoss, EmptyTraceThrows) {
  auto trace = std::make_shared<std::vector<std::uint8_t>>();
  EXPECT_THROW(net::TraceLoss(trace, 0), std::invalid_argument);
}

TEST(TracePopulation, SyntheticMatchesPaperDescription) {
  net::TracePopulationParams params;
  params.receivers = 60;
  params.trace_length = 60000;
  const auto pop = net::TracePopulation::synthetic(params);
  ASSERT_EQ(pop.receiver_count(), 60u);
  // Mean loss ~18%, per-receiver rates heterogeneous and within range.
  EXPECT_NEAR(pop.mean_loss_rate(), 0.18, 0.03);
  double lo = 1.0;
  double hi = 0.0;
  for (std::size_t r = 0; r < pop.receiver_count(); ++r) {
    const double rate = pop.receiver_loss_rate(r);
    lo = std::min(lo, rate);
    hi = std::max(hi, rate);
  }
  EXPECT_LT(lo, 0.08);  // some receivers have low loss
  EXPECT_GT(hi, 0.25);  // some receivers have high loss
}

TEST(TracePopulation, SaveLoadRoundTrip) {
  net::TracePopulationParams params;
  params.receivers = 5;
  params.trace_length = 1000;
  const auto pop = net::TracePopulation::synthetic(params);
  std::stringstream ss;
  pop.save(ss);
  const auto loaded = net::TracePopulation::load(ss);
  ASSERT_EQ(loaded.receiver_count(), 5u);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(loaded.receiver_loss_rate(r), pop.receiver_loss_rate(r));
  }
}

TEST(TracePopulation, LoadRejectsGarbage) {
  std::stringstream ss("0101x\n");
  EXPECT_THROW(net::TracePopulation::load(ss), std::invalid_argument);
  std::stringstream empty;
  EXPECT_THROW(net::TracePopulation::load(empty), std::invalid_argument);
}

TEST(TracePopulation, LossModelPlaysTrace) {
  net::TracePopulationParams params;
  params.receivers = 1;
  params.trace_length = 5000;
  const auto pop = net::TracePopulation::synthetic(params);
  auto model = pop.loss_model(0, 0);
  std::size_t lost = 0;
  for (std::size_t i = 0; i < 5000; ++i) lost += model->lost();
  EXPECT_NEAR(static_cast<double>(lost) / 5000.0, pop.receiver_loss_rate(0),
              1e-12);
}

// CRC-8 of the eleven non-checksum header bytes, in wire order — the value
// serialize() must put at byte [9].
std::uint8_t expected_header_crc(const std::vector<std::uint8_t>& wire) {
  std::vector<std::uint8_t> covered;
  for (std::size_t i = 0; i < net::PacketHeader::kWireSize; ++i) {
    if (i != 9) covered.push_back(wire[i]);
  }
  return net::crc8(util::ConstByteSpan(covered));
}

TEST(PacketHeader, WireFormatIsBigEndian) {
  net::PacketHeader h;
  h.packet_index = 0x01020304;
  h.serial = 0x0A0B0C0D;
  h.codec = fec::CodecId::kInterleaved;
  h.group = 0x0102;
  std::vector<std::uint8_t> buf(12);
  h.serialize(util::ByteSpan(buf));
  // Byte [9] carries the header checksum (it was the reserved zero byte).
  const std::vector<std::uint8_t> expect{0x01, 0x02, 0x03, 0x04,
                                         0x0A, 0x0B, 0x0C, 0x0D,
                                         0x02, expected_header_crc(buf),
                                         0x01, 0x02};
  EXPECT_EQ(buf, expect);
  EXPECT_EQ(net::PacketHeader::parse(util::ConstByteSpan(buf)), h);
}

TEST(PacketHeader, ChecksumRejectsEverySingleBitFlip) {
  // CRC-8 detects all single-bit errors: flipping any of the 96 header bits
  // must turn the packet into a kBadChecksum reject, so a damaged header can
  // never feed a wrong index to a decoder.
  util::SymbolMatrix payload(1, 64);
  payload.fill_random(7);
  const net::PacketHeader h{90210, 17, fec::CodecId::kTornado, 2};
  const auto wire = net::frame_packet(h, payload.row(0));
  ASSERT_TRUE(net::parse_packet(util::ConstByteSpan(wire)).ok());
  for (std::size_t bit = 0; bit < 8 * net::PacketHeader::kWireSize; ++bit) {
    auto damaged = wire;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto parsed = net::parse_packet(util::ConstByteSpan(damaged));
    EXPECT_FALSE(parsed.ok()) << "bit " << bit;
    EXPECT_EQ(parsed.error, net::ParseError::kBadChecksum) << "bit " << bit;
  }
}

TEST(PacketHeader, RejectsUnknownCodecAndOutOfRangeGroup) {
  util::SymbolMatrix payload(1, 8);
  payload.fill_random(9);
  // Unknown codec byte with a recomputed (valid) checksum: kBadCodec.
  {
    auto wire = net::frame_packet(
        net::PacketHeader{1, 2, fec::CodecId::kTornado, 0}, payload.row(0));
    wire[8] = 0x7f;
    wire[9] = expected_header_crc(wire);
    const auto parsed = net::parse_packet(util::ConstByteSpan(wire));
    EXPECT_EQ(parsed.error, net::ParseError::kBadCodec);
  }
  // Group numbers at/above the limit: kGroupOutOfRange ("the schedule
  // allows at most 16 layers").
  {
    const auto wire = net::frame_packet(
        net::PacketHeader{1, 2, fec::CodecId::kTornado, net::kMaxGroups},
        payload.row(0));
    const auto parsed = net::parse_packet(util::ConstByteSpan(wire));
    EXPECT_EQ(parsed.error, net::ParseError::kGroupOutOfRange);
    // A caller may narrow the limit further (a 1-layer session).
    const auto one_layer = net::frame_packet(
        net::PacketHeader{1, 2, fec::CodecId::kTornado, 1}, payload.row(0));
    EXPECT_EQ(net::parse_packet(util::ConstByteSpan(one_layer), 1).error,
              net::ParseError::kGroupOutOfRange);
    EXPECT_TRUE(net::parse_packet(util::ConstByteSpan(one_layer), 2).ok());
  }
}

TEST(PacketHeader, ParsePacketFuzzNeverAcceptsDamage) {
  // 10k seeded random buffers (random lengths, plus truncated copies of
  // valid frames): parse_packet must never crash and must only accept
  // buffers whose checksum, codec and group all verify.
  util::Rng rng(0xfadedace);
  std::vector<std::uint8_t> buf;
  std::size_t accepted = 0;
  for (int i = 0; i < 10000; ++i) {
    if (i % 4 == 0) {
      // Truncated copy of a valid frame (length < 12 must be kTooShort).
      util::SymbolMatrix payload(1, 32);
      payload.fill_random(rng());
      const auto full = net::frame_packet(
          net::PacketHeader{static_cast<std::uint32_t>(rng()),
                            static_cast<std::uint32_t>(rng()),
                            fec::CodecId::kTornado,
                            static_cast<std::uint16_t>(rng.below(16))},
          payload.row(0));
      buf.assign(full.begin(),
                 full.begin() + static_cast<long>(rng.below(full.size())));
    } else {
      buf.resize(rng.below(64));
      for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    }
    const auto parsed = net::parse_packet(util::ConstByteSpan(buf));
    if (buf.size() < net::PacketHeader::kWireSize) {
      EXPECT_EQ(parsed.error, net::ParseError::kTooShort);
      continue;
    }
    if (parsed.ok()) {
      ++accepted;  // random bytes may checksum by luck (~1/256)...
      EXPECT_EQ(buf[9], expected_header_crc(buf));  // ...but never wrongly
      EXPECT_TRUE(fec::is_known_codec(buf[8]));
      EXPECT_LT(parsed.packet.header.group, net::kMaxGroups);
    }
  }
  // Valid-prefix truncations of 12+ bytes do parse; pure-random acceptance
  // stays rare. Sanity-bound it so the fuzz loop provably exercised rejects.
  EXPECT_LT(accepted, 2500u);
}

TEST(PacketHeader, HeaderIsTwelveBytes) {
  // The paper: 500-byte payload + 12 bytes of tag = 512-byte packets. The
  // codec byte rides inside the 12 (the group field is 16 bits).
  EXPECT_EQ(net::PacketHeader::kWireSize, 12u);
  util::SymbolMatrix payload(1, 500);
  payload.fill_random(1);
  const auto wire = net::frame_packet(
      net::PacketHeader{7, 8, fec::CodecId::kTornado, 9}, payload.row(0));
  EXPECT_EQ(wire.size(), 512u);
}

TEST(PacketHeader, FrameParseRoundTrip) {
  util::SymbolMatrix payload(1, 100);
  payload.fill_random(2);
  net::PacketHeader h{123456, 789, fec::CodecId::kReedSolomon, 3};
  const auto wire = net::frame_packet(h, payload.row(0));
  const auto parsed = net::parse_packet(util::ConstByteSpan(wire));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(static_cast<bool>(parsed));
  EXPECT_EQ(parsed.packet.header, h);
  ASSERT_EQ(parsed.packet.payload.size(), 100u);
  EXPECT_TRUE(std::equal(parsed.packet.payload.begin(),
                         parsed.packet.payload.end(),
                         payload.row(0).begin()));
}

TEST(PacketHeader, CodecByteRoundTripsForEveryFamily) {
  // Serialize/parse must preserve the codec id for each code family, so
  // multi-source clients can reject mismatched senders by header alone.
  for (const fec::CodecId codec :
       {fec::CodecId::kTornado, fec::CodecId::kReedSolomon,
        fec::CodecId::kInterleaved, fec::CodecId::kLT}) {
    net::PacketHeader h{42, 7, codec, 1};
    std::vector<std::uint8_t> buf(net::PacketHeader::kWireSize);
    h.serialize(util::ByteSpan(buf));
    const auto back = net::PacketHeader::parse(util::ConstByteSpan(buf));
    EXPECT_EQ(back.codec, codec);
    EXPECT_EQ(back, h);
  }
  // The sentinel-derived bound: the first unassigned byte must NOT parse —
  // frame a valid packet, patch in codec kMaxCodecId + 1, re-checksum.
  util::SymbolMatrix payload(1, 8);
  payload.fill_random(3);
  auto wire = net::frame_packet(
      net::PacketHeader{1, 2, fec::CodecId::kLT, 0}, payload.row(0));
  EXPECT_TRUE(net::parse_packet(util::ConstByteSpan(wire)).ok());
  wire[8] = static_cast<std::uint8_t>(fec::kMaxCodecId) + 1;
  wire[9] = expected_header_crc(wire);
  EXPECT_EQ(net::parse_packet(util::ConstByteSpan(wire)).error,
            net::ParseError::kBadCodec);
}

TEST(PacketHeader, ShortBufferRejected) {
  std::vector<std::uint8_t> tiny(4);
  const auto parsed = net::parse_packet(util::ConstByteSpan(tiny));
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error, net::ParseError::kTooShort);
  net::PacketHeader h;
  EXPECT_THROW(h.serialize(util::ByteSpan(tiny)), std::invalid_argument);
}

TEST(ParseError, NamesAreStable) {
  EXPECT_STREQ(net::parse_error_name(net::ParseError::kNone), "none");
  EXPECT_STREQ(net::parse_error_name(net::ParseError::kBadChecksum),
               "bad_checksum");
  EXPECT_STREQ(net::parse_error_name(net::ParseError::kGroupOutOfRange),
               "group_out_of_range");
}

TEST(Udp, LoopbackRoundTrip) {
  net::UdpSocket receiver;
  receiver.bind({"127.0.0.1", 0});
  const auto port = receiver.local_port();
  ASSERT_GT(port, 0);

  net::UdpSocket sender;
  std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  sender.send_to({"127.0.0.1", port}, util::ConstByteSpan(payload));

  const auto got = receiver.receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, payload);
  EXPECT_EQ(got->from.host, "127.0.0.1");
}

TEST(Udp, ReceiveTimesOut) {
  net::UdpSocket sock;
  sock.bind({"127.0.0.1", 0});
  const auto got = sock.receive(std::chrono::milliseconds(50));
  EXPECT_FALSE(got.has_value());
}

TEST(Udp, BadAddressThrows) {
  net::UdpSocket sock;
  EXPECT_THROW(sock.bind({"not-an-ip", 0}), std::invalid_argument);
  std::vector<std::uint8_t> payload{1};
  EXPECT_THROW(sock.send_to({"999.1.1.1", 1}, util::ConstByteSpan(payload)),
               std::invalid_argument);
}

TEST(Udp, TruncatedDatagramIsSurfacedAsSuch) {
  // A datagram longer than the receive buffer must come back flagged
  // truncated (MSG_TRUNC) with the prefix payload — never silently passed
  // off as a complete packet.
  net::UdpSocket receiver;
  receiver.bind({"127.0.0.1", 0});
  const auto port = receiver.local_port();
  net::UdpSocket sender;
  std::vector<std::uint8_t> big(2048);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  sender.send_to({"127.0.0.1", port}, util::ConstByteSpan(big));
  const auto got =
      receiver.receive(std::chrono::milliseconds(2000), /*max_payload=*/512);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->truncated);
  ASSERT_EQ(got->payload.size(), 512u);
  EXPECT_TRUE(std::equal(got->payload.begin(), got->payload.end(),
                         big.begin()));

  // A datagram that fits exactly is not truncated.
  std::vector<std::uint8_t> fits(512, 0xCD);
  sender.send_to({"127.0.0.1", port}, util::ConstByteSpan(fits));
  const auto got2 =
      receiver.receive(std::chrono::milliseconds(2000), /*max_payload=*/512);
  ASSERT_TRUE(got2.has_value());
  EXPECT_FALSE(got2->truncated);
  EXPECT_EQ(got2->payload, fits);
}

TEST(Udp, ManyDatagramsInOrderOnLoopback) {
  net::UdpSocket receiver;
  receiver.bind({"127.0.0.1", 0});
  const auto port = receiver.local_port();
  net::UdpSocket sender;
  for (std::uint8_t i = 0; i < 20; ++i) {
    std::vector<std::uint8_t> payload{i};
    sender.send_to({"127.0.0.1", port}, util::ConstByteSpan(payload));
  }
  int received = 0;
  while (auto got = receiver.receive(std::chrono::milliseconds(200))) {
    ++received;
    if (received == 20) break;
  }
  EXPECT_EQ(received, 20);  // loopback should not drop at this volume
}

}  // namespace
}  // namespace fountain
