// Interleaved block-code baseline: index mapping, per-block completion
// semantics, and full data round-trips.
#include <gtest/gtest.h>

#include <set>

#include "fec/interleaved.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using fec::InterleavedCode;

TEST(Interleaved, BlockPartitionEven) {
  InterleavedCode code(100, 5, 16);
  EXPECT_EQ(code.block_count(), 5u);
  for (std::size_t b = 0; b < 5; ++b) {
    EXPECT_EQ(code.block_source_count(b), 20u);
    EXPECT_EQ(code.block_encoded_count(b), 40u);
  }
  EXPECT_EQ(code.source_count(), 100u);
  EXPECT_EQ(code.encoded_count(), 200u);
}

TEST(Interleaved, BlockPartitionUneven) {
  // 2000 packets into 6 blocks — the paper's 2 MB example.
  InterleavedCode code(2000, 6, 16);
  std::size_t total = 0;
  for (std::size_t b = 0; b < 6; ++b) {
    const auto kb = code.block_source_count(b);
    EXPECT_TRUE(kb == 333 || kb == 334);
    total += kb;
  }
  EXPECT_EQ(total, 2000u);
  EXPECT_EQ(code.encoded_count(), 4000u);
}

TEST(Interleaved, IndexMapIsRoundRobin) {
  InterleavedCode code(12, 3, 16);  // blocks of 4, encoded 8 each
  // First round: position 0 of blocks 0, 1, 2.
  for (std::uint32_t b = 0; b < 3; ++b) {
    const auto pos = code.position(b);
    EXPECT_EQ(pos.block, b);
    EXPECT_EQ(pos.pos, 0u);
  }
  // Second round: position 1 of each block.
  for (std::uint32_t b = 0; b < 3; ++b) {
    const auto pos = code.position(3 + b);
    EXPECT_EQ(pos.block, b);
    EXPECT_EQ(pos.pos, 1u);
  }
  // Every (block, pos) pair appears exactly once.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (std::uint32_t e = 0; e < code.encoded_count(); ++e) {
    const auto pos = code.position(e);
    EXPECT_TRUE(seen.emplace(pos.block, pos.pos).second);
  }
  EXPECT_EQ(seen.size(), code.encoded_count());
}

TEST(Interleaved, StructuralNeedsEveryBlock) {
  InterleavedCode code(40, 4, 16);  // 4 blocks of k_b = 10, n_b = 20
  auto dec = code.make_structural_decoder();
  // Fill blocks 0..2 completely; block 3 gets k_b - 1 packets.
  std::size_t fed = 0;
  for (std::uint32_t e = 0; e < code.encoded_count(); ++e) {
    const auto pos = code.position(e);
    if (pos.block < 3 && pos.pos < 10) {
      EXPECT_FALSE(dec->add_index(e));
      ++fed;
    }
  }
  EXPECT_EQ(fed, 30u);
  std::uint32_t held_back = 0;
  std::vector<std::uint32_t> block3;
  for (std::uint32_t e = 0; e < code.encoded_count(); ++e) {
    if (code.position(e).block == 3) block3.push_back(e);
  }
  held_back = block3.back();
  // Feed 9 distinct packets of block 3 (one short of its k_b = 10) ...
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_FALSE(dec->add_index(block3[i]));
  }
  // ... duplicates change nothing ...
  EXPECT_FALSE(dec->add_index(block3[0]));
  // ... and the 10th distinct packet completes the whole file.
  EXPECT_TRUE(dec->add_index(held_back));
  EXPECT_TRUE(dec->complete());
}

TEST(Interleaved, StructuralReset) {
  InterleavedCode code(20, 2, 16);
  auto dec = code.make_structural_decoder();
  for (std::uint32_t e = 0; e < 20; ++e) dec->add_index(e);
  EXPECT_TRUE(dec->complete());
  dec->reset();
  EXPECT_FALSE(dec->complete());
  for (std::uint32_t e = 0; e < 20; ++e) dec->add_index(e);
  EXPECT_TRUE(dec->complete());
}

class InterleavedRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(InterleavedRoundTrip, DecodesUnderRandomLoss) {
  const auto [total, blocks, loss] = GetParam();
  InterleavedCode code(total, blocks, 32);
  util::SymbolMatrix source(total, 32);
  source.fill_random(static_cast<std::uint64_t>(total * 31 + blocks));
  util::SymbolMatrix encoding(code.encoded_count(), 32);
  code.encode(source, encoding);

  util::Rng rng(static_cast<std::uint64_t>(total + blocks));
  auto decoder = code.make_decoder();
  bool done = false;
  // Cycle through the encoding (carousel-style) dropping at rate `loss`.
  for (int cycle = 0; cycle < 200 && !done; ++cycle) {
    for (std::uint32_t e = 0; e < code.encoded_count() && !done; ++e) {
      if (rng.chance(loss)) continue;
      done = decoder->add_symbol(e, encoding.row(e));
    }
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(decoder->source(), source);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InterleavedRoundTrip,
    ::testing::Values(std::make_tuple(40, 2, 0.0),
                      std::make_tuple(40, 2, 0.3),
                      std::make_tuple(100, 5, 0.1),
                      std::make_tuple(100, 5, 0.5),
                      std::make_tuple(123, 7, 0.2),
                      std::make_tuple(1000, 20, 0.1),
                      std::make_tuple(17, 17, 0.3)));

TEST(Interleaved, EncodeScattersSystematically) {
  InterleavedCode code(12, 3, 16);
  util::SymbolMatrix source(12, 16);
  source.fill_random(9);
  util::SymbolMatrix encoding(24, 16);
  code.encode(source, encoding);
  // Every source packet must appear verbatim at its interleaved slot.
  for (std::uint32_t e = 0; e < 24; ++e) {
    const auto pos = code.position(e);
    if (pos.pos < code.block_source_count(pos.block)) {
      const auto src_index = code.block_source_offset(pos.block) + pos.pos;
      EXPECT_TRUE(std::equal(encoding.row(e).begin(), encoding.row(e).end(),
                             source.row(src_index).begin()))
          << "encoded " << e;
    }
  }
}

TEST(Interleaved, BadParamsThrow) {
  EXPECT_THROW(InterleavedCode(0, 1, 16), std::invalid_argument);
  EXPECT_THROW(InterleavedCode(10, 0, 16), std::invalid_argument);
  EXPECT_THROW(InterleavedCode(10, 11, 16), std::invalid_argument);
  EXPECT_THROW(InterleavedCode(10, 2, 16, 1.0), std::invalid_argument);
}

TEST(Interleaved, StretchBelowTwo) {
  // stretch 1.5: parity = k_b / 2 per block.
  InterleavedCode code(40, 2, 16, 1.5);
  EXPECT_EQ(code.encoded_count(), 60u);
  EXPECT_EQ(code.block_encoded_count(0), 30u);
}

TEST(Interleaved, CodecIdIsInterleaved) {
  InterleavedCode code(40, 2, 16);
  EXPECT_EQ(code.codec_id(), fec::CodecId::kInterleaved);
}

TEST(Interleaved, DecoderResetReusesAcrossReceivers) {
  // reset() must clear every block's partial state so one payload decoder
  // serves several simulated receivers without reallocation.
  InterleavedCode code(60, 4, 16);
  util::SymbolMatrix source(60, 16);
  source.fill_random(5);
  util::SymbolMatrix encoding(code.encoded_count(), 16);
  code.encode(source, encoding);

  auto decoder = code.make_decoder();
  util::Rng rng(6);
  for (int receiver = 0; receiver < 3; ++receiver) {
    decoder->reset();
    EXPECT_FALSE(decoder->complete());
    const auto order = rng.permutation(code.encoded_count());
    bool done = false;
    for (const auto index : order) {
      if (decoder->add_symbol(index, encoding.row(index))) {
        done = true;
        break;
      }
    }
    ASSERT_TRUE(done) << receiver;
    EXPECT_EQ(util::SymbolMatrix(decoder->source()), source) << receiver;
  }
}

}  // namespace
}  // namespace fountain
