// Randomized end-to-end soak of the adaptation plane (labelled `soak` in
// ctest): seeded fuzz over receiver populations, subscription policies
// (fixed, burst-probe, loss-driven, and an adversarial chaos policy that
// requests absurd levels) and shared-bottleneck capacities. Every receiver
// must eventually decode, and no receiver's applied subscription level may
// ever leave [0, g-1] — the engine clamp must hold against any policy.
//
// A second, controlled scenario asserts the convergence property the
// fig7_adaptation bench gates on: a homogeneous loss-driven group behind
// one bottleneck settles within one layer of its fair-share level and
// holds it.
//
// A third, property/fuzz sweep targets the parallel engine: seeded random
// scenarios over population size, cohort_size (deliberately never dividing
// the population evenly), cohort-aligned bottleneck groupings, and churn
// must produce identical reports and merged cc trace records at threads = 1
// and threads = N — the fuzzed twin of test_engine's equivalence matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cc/policies.hpp"
#include "cc/trace.hpp"
#include "engine/session.hpp"
#include "engine/topology.hpp"
#include "fec/reed_solomon.hpp"
#include "net/loss.hpp"
#include "proto/server.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using engine::ReceiverId;
using engine::ReceiverSpec;
using engine::Session;
using engine::SessionConfig;
using engine::SourceId;

/// Adversarial policy: requests wildly out-of-range levels half the time.
/// The engine must clamp every request into [0, max_level].
class ChaosPolicy final : public cc::ReceiverPolicy {
 public:
  void reset(unsigned initial_level, unsigned, std::uint64_t seed) override {
    (void)initial_level;
    rng_.reseed(seed ^ 0xc4a05ULL);
  }
  unsigned on_round(const cc::RoundView&, unsigned level) override {
    return rng_.chance(0.5)
               ? static_cast<unsigned>(rng_.below(1'000'000'000))
               : level;
  }

 private:
  util::Rng rng_{0};
};

cc::LossDrivenConfig random_loss_driven_config(util::Rng& rng) {
  cc::LossDrivenConfig knobs;
  knobs.window_rounds = 4 + rng.below(12);
  knobs.join_loss_threshold = 0.01 + 0.04 * rng.uniform();
  knobs.leave_loss_threshold = 0.10 + 0.30 * rng.uniform();
  knobs.initial_join_backoff = 4 + rng.below(16);
  knobs.max_join_backoff =
      knobs.initial_join_backoff << rng.below(6);
  knobs.probe_rounds = 4 + rng.below(30);
  knobs.join_timer_jitter = rng.uniform();
  return knobs;
}

void run_fuzzed_scenario(std::uint64_t master_seed) {
  SCOPED_TRACE(::testing::Message() << "master_seed=" << master_seed);
  util::Rng rng(master_seed);

  const unsigned g = 2 + static_cast<unsigned>(rng.below(4));  // 2..5 layers
  const std::size_t k = 24 + rng.below(60);
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, k, k, 8);
  proto::ProtocolConfig cfg;
  cfg.layers = g;
  const auto server = std::make_shared<proto::FountainServer>(
      cfg, code->encoded_count(), 0x5eed ^ master_seed, code->codec_id());
  const double rate0 = server->subscribed_rate(0);

  SessionConfig config;
  config.horizon = 20000;
  Session session(*code, config);
  const SourceId src = session.add_source(server);

  const std::size_t receivers = 3 + rng.below(18);
  const std::size_t queues_count = 1 + rng.below(2);
  std::vector<std::shared_ptr<engine::SharedBottleneck>> queues;
  for (std::size_t q = 0; q < queues_count; ++q) {
    const double members = static_cast<double>(
        receivers / queues_count + (q < receivers % queues_count ? 1 : 0));
    // >= 0.8x the all-at-level-0 load: level-0 loss stays below ~25%, so
    // every receiver keeps a positive reception rate and must decode.
    const double capacity =
        std::max(1.0, members * rate0 * (0.8 + 1.7 * rng.uniform()));
    queues.push_back(std::make_shared<engine::SharedBottleneck>(capacity));
  }

  for (std::size_t i = 0; i < receivers; ++i) {
    ReceiverSpec spec;
    spec.join = rng.below(50);
    spec.policy.seed = rng();
    spec.policy.initial_level = static_cast<unsigned>(rng.below(g));
    switch (rng.below(4)) {
      case 0:  // fixed level
        break;
      case 1:  // legacy burst-probe machinery + synthetic environment
        spec.policy.adaptive = true;
        spec.policy.initial_capacity = static_cast<unsigned>(rng.below(g));
        spec.policy.capacity_change_prob = 0.02 * rng.uniform();
        spec.policy.congestion_extra_loss = 0.5 * rng.uniform();
        break;
      case 2:
        spec.controller = std::make_unique<cc::LossDrivenPolicy>(
            random_loss_driven_config(rng));
        break;
      default:
        spec.controller = std::make_unique<ChaosPolicy>();
        break;
    }
    if (rng.chance(0.3)) {
      spec.moves.push_back(engine::ScriptedMove{
          spec.join + 20 + rng.below(100),
          static_cast<unsigned>(rng.below(g))});
    }
    const ReceiverId id = session.add_receiver(std::move(spec));
    session.subscribe(id, src,
                      std::make_unique<engine::BottleneckLink>(
                          queues[i % queues_count], rng(),
                          0.05 * rng.uniform()));
  }

  const auto reports = session.run();
  ASSERT_EQ(reports.size(), receivers);
  for (std::size_t i = 0; i < receivers; ++i) {
    SCOPED_TRACE(::testing::Message() << "receiver " << i);
    const auto& rep = reports[i];
    EXPECT_TRUE(rep.completed);          // everyone eventually decodes
    EXPECT_LE(rep.peak_level, g - 1);    // level never exceeds g-1 ...
    EXPECT_LE(rep.final_level, g - 1);   // ... and never wraps negative
    EXPECT_GE(rep.distinct, k);          // MDS: k distinct indices decode
    EXPECT_GE(rep.received, rep.distinct);
  }
}

TEST(AdaptationSoak, FuzzedPopulationsAlwaysDecodeAndStayInRange) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    run_fuzzed_scenario(0x50a4ULL * seed + seed);
  }
}

struct EquivalenceOutcome {
  std::vector<engine::ReceiverReport> reports;
  std::vector<cc::TraceLog::Record> cc_records;
};

/// Builds and runs one fuzzed scenario: every draw comes from `master_seed`
/// alone, so two calls construct identical sessions and only
/// SessionConfig::threads differs. Bottleneck groups are random subranges
/// of single cohorts (the engine's cohort-confinement rule), everything
/// else — population, policies, churn, scripted moves, private channels —
/// is randomized, and the cohort size is forced to never divide the
/// population evenly so the final short cohort is always exercised.
EquivalenceOutcome run_equivalence_scenario(std::uint64_t master_seed,
                                            std::size_t threads) {
  util::Rng rng(master_seed);

  const unsigned g = 2 + static_cast<unsigned>(rng.below(4));
  const std::size_t k = 24 + rng.below(40);
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, k, k, 8);
  proto::ProtocolConfig cfg;
  cfg.layers = g;
  const auto server = std::make_shared<proto::FountainServer>(
      cfg, code->encoded_count(), 0x5eed ^ master_seed, code->codec_id());
  const double rate0 = server->subscribed_rate(0);

  std::size_t receivers = 40 + rng.below(160);
  const std::size_t cohort = 8 + rng.below(41);
  if (receivers % cohort == 0) ++receivers;  // keep the last cohort short

  engine::SessionConfig config;
  config.horizon = 4000;
  config.cohort_size = cohort;
  config.threads = threads;
  Session session(*code, config);
  const SourceId src = session.add_source(server);

  // Per cohort, maybe one bottleneck group over a random member subrange.
  struct Group {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::shared_ptr<engine::SharedBottleneck> queue;
  };
  std::vector<Group> groups;
  for (std::size_t first = 0; first < receivers; first += cohort) {
    const std::size_t count = std::min(cohort, receivers - first);
    if (count < 2 || !rng.chance(0.6)) continue;
    const std::size_t members = 2 + rng.below(count - 1);
    const std::size_t begin = first + rng.below(count - members + 1);
    // >= 0.9x the all-at-level-0 load, so the group never starves outright.
    const double capacity =
        std::max(1.0, static_cast<double>(members) * rate0 *
                          (0.9 + 1.5 * rng.uniform()));
    groups.push_back(Group{begin, begin + members,
                           std::make_shared<engine::SharedBottleneck>(
                               capacity)});
  }
  const auto group_of = [&groups](std::size_t i) -> const Group* {
    for (const Group& grp : groups) {
      if (i >= grp.begin && i < grp.end) return &grp;
    }
    return nullptr;
  };

  cc::TraceLog log(receivers);
  for (std::size_t i = 0; i < receivers; ++i) {
    ReceiverSpec spec;
    spec.join = rng.below(60);
    if (rng.chance(0.15)) {  // churn: leaves mid-session
      spec.leave = spec.join + 50 + rng.below(800);
    }
    spec.policy.seed = rng();
    spec.policy.initial_level = static_cast<unsigned>(rng.below(g));
    switch (rng.below(4)) {
      case 0:  // fixed level
        break;
      case 1:  // legacy burst-probe machinery + synthetic environment
        spec.policy.adaptive = true;
        spec.policy.initial_capacity = static_cast<unsigned>(rng.below(g));
        spec.policy.capacity_change_prob = 0.02 * rng.uniform();
        spec.policy.congestion_extra_loss = 0.5 * rng.uniform();
        break;
      case 2:
        spec.controller =
            log.wrap(i, spec.join, std::make_unique<cc::LossDrivenPolicy>(
                                       random_loss_driven_config(rng)));
        break;
      default:
        spec.controller =
            log.wrap(i, spec.join, std::make_unique<ChaosPolicy>());
        break;
    }
    if (rng.chance(0.3)) {
      spec.moves.push_back(engine::ScriptedMove{
          spec.join + 20 + rng.below(100),
          static_cast<unsigned>(rng.below(g))});
    }
    const ReceiverId id = session.add_receiver(std::move(spec));
    if (const Group* grp = group_of(i)) {
      session.subscribe(id, src,
                        std::make_unique<engine::BottleneckLink>(
                            grp->queue, rng(), 0.04 * rng.uniform()));
    } else {
      session.subscribe(id, src,
                        std::make_unique<engine::LossLink>(
                            std::make_unique<net::GilbertElliottLoss>(
                                0.01 + 0.25 * rng.uniform(),
                                1.5 + 8.0 * rng.uniform(), rng())));
    }
  }

  EquivalenceOutcome out;
  out.reports = session.run();
  out.cc_records = log.records();
  return out;
}

TEST(AdaptationSoak, ThreadCountEquivalenceUnderFuzz) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(::testing::Message() << "master_seed=" << seed);
    const auto golden = run_equivalence_scenario(seed, 1);
    ASSERT_FALSE(golden.reports.empty());
    // 2 matches a dual-core runner; 5 oversubscribes it and never divides
    // the cohort count evenly, so work stealing reorders cohort execution.
    for (const std::size_t threads : {2, 5}) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads);
      const auto outcome = run_equivalence_scenario(seed, threads);
      ASSERT_EQ(golden.reports.size(), outcome.reports.size());
      for (std::size_t i = 0; i < golden.reports.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "receiver " << i);
        const auto& a = golden.reports[i];
        const auto& b = outcome.reports[i];
        EXPECT_EQ(a.completed, b.completed);
        EXPECT_EQ(a.completed_at, b.completed_at);
        EXPECT_EQ(a.addressed, b.addressed);
        EXPECT_EQ(a.received, b.received);
        EXPECT_EQ(a.distinct, b.distinct);
        EXPECT_EQ(a.lost, b.lost);
        EXPECT_EQ(a.rejected, b.rejected);
        EXPECT_EQ(a.level_changes, b.level_changes);
        EXPECT_EQ(a.final_level, b.final_level);
        EXPECT_EQ(a.peak_level, b.peak_level);
      }
      ASSERT_EQ(golden.cc_records.size(), outcome.cc_records.size());
      for (std::size_t i = 0; i < golden.cc_records.size(); ++i) {
        EXPECT_EQ(golden.cc_records[i], outcome.cc_records[i])
            << "record " << i;
      }
    }
  }
}

/// The topology-plane twin of run_equivalence_scenario: three fuzzed
/// bottleneck trees (random depth, arity, leaf assignment, per-edge
/// capacity), one tree per cohort, every receiver behind a PathLink across
/// its root-to-leaf path. Every draw comes from `master_seed` alone, so two
/// calls construct identical sessions and only threads differs.
EquivalenceOutcome run_topology_scenario(std::uint64_t master_seed,
                                         std::size_t threads) {
  util::Rng rng(master_seed);

  const unsigned g = 2 + static_cast<unsigned>(rng.below(3));
  const std::size_t k = 24 + rng.below(40);
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, k, k, 8);
  proto::ProtocolConfig cfg;
  cfg.layers = g;
  const auto server = std::make_shared<proto::FountainServer>(
      cfg, code->encoded_count(), 0x5eed ^ master_seed, code->codec_id());
  const double rate0 = server->subscribed_rate(0);

  const std::size_t trees = 3;
  const std::size_t cohort = 8 + rng.below(8);  // receivers per tree

  engine::SessionConfig config;
  config.horizon = 4000;
  config.cohort_size = cohort;  // tree t's members fill cohort t exactly
  config.threads = threads;
  Session session(*code, config);
  const SourceId src = session.add_source(server);

  cc::TraceLog log(trees * cohort);
  for (std::size_t t = 0; t < trees; ++t) {
    const unsigned depth = 2 + static_cast<unsigned>(rng.below(2));
    const unsigned arity = 2 + static_cast<unsigned>(rng.below(2));
    const std::vector<double> placeholder(depth, 1.0);
    engine::Topology topo = engine::Topology::bottleneck_tree(
        depth, arity, std::span<const double>(placeholder));
    const std::vector<engine::NodeId> leaves = topo.leaves();

    // Spread the cohort over random leaves first, then price each edge off
    // the level-0 load actually crossing it (>= 0.9x, so no path starves).
    std::vector<engine::NodeId> rx_leaf(cohort);
    std::vector<std::size_t> edge_load(topo.edge_count(), 0);
    for (std::size_t m = 0; m < cohort; ++m) {
      rx_leaf[m] = leaves[rng.below(leaves.size())];
      for (const std::uint32_t e : topo.path(0, rx_leaf[m])) ++edge_load[e];
    }
    for (std::size_t e = 0; e < topo.edge_count(); ++e) {
      topo.set_edge_capacity(
          e, std::max(1.0, static_cast<double>(edge_load[e]) * rate0 *
                               (0.9 + 1.7 * rng.uniform())));
    }
    const auto queues = engine::make_edge_queues(topo);

    for (std::size_t m = 0; m < cohort; ++m) {
      const std::size_t i = t * cohort + m;
      ReceiverSpec spec;
      spec.join = rng.below(60);
      if (rng.chance(0.15)) {  // churn: leaves mid-session
        spec.leave = spec.join + 50 + rng.below(800);
      }
      spec.policy.seed = rng();
      spec.policy.initial_level = static_cast<unsigned>(rng.below(g));
      switch (rng.below(4)) {
        case 0:  // fixed level
          break;
        case 1:  // legacy burst-probe machinery + synthetic environment
          spec.policy.adaptive = true;
          spec.policy.initial_capacity = static_cast<unsigned>(rng.below(g));
          spec.policy.capacity_change_prob = 0.02 * rng.uniform();
          spec.policy.congestion_extra_loss = 0.5 * rng.uniform();
          break;
        case 2:
          spec.controller =
              log.wrap(i, spec.join, std::make_unique<cc::LossDrivenPolicy>(
                                         random_loss_driven_config(rng)));
          break;
        default:
          spec.controller =
              log.wrap(i, spec.join, std::make_unique<ChaosPolicy>());
          break;
      }
      const ReceiverId id = session.add_receiver(std::move(spec));
      session.subscribe(id, src,
                        engine::make_path_link(topo, queues, 0, rx_leaf[m],
                                               rng(), 0.04 * rng.uniform()));
    }
  }

  EquivalenceOutcome out;
  out.reports = session.run();
  out.cc_records = log.records();
  return out;
}

TEST(AdaptationSoak, TopologyPathFuzzThreadEquivalence) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE(::testing::Message() << "master_seed=" << seed);
    const auto golden = run_topology_scenario(0x7031ULL * seed + seed, 1);
    ASSERT_FALSE(golden.reports.empty());
    for (const auto& rep : golden.reports) {
      EXPECT_LT(rep.peak_level, 5u);   // clamped into [0, g-1], g <= 4
      EXPECT_LT(rep.final_level, 5u);
    }
    for (const std::size_t threads : {2, 5}) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads);
      const auto outcome =
          run_topology_scenario(0x7031ULL * seed + seed, threads);
      ASSERT_EQ(golden.reports.size(), outcome.reports.size());
      for (std::size_t i = 0; i < golden.reports.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "receiver " << i);
        const auto& a = golden.reports[i];
        const auto& b = outcome.reports[i];
        EXPECT_EQ(a.completed, b.completed);
        EXPECT_EQ(a.completed_at, b.completed_at);
        EXPECT_EQ(a.addressed, b.addressed);
        EXPECT_EQ(a.received, b.received);
        EXPECT_EQ(a.distinct, b.distinct);
        EXPECT_EQ(a.lost, b.lost);
        EXPECT_EQ(a.rejected, b.rejected);
        EXPECT_EQ(a.level_changes, b.level_changes);
        EXPECT_EQ(a.final_level, b.final_level);
        EXPECT_EQ(a.peak_level, b.peak_level);
      }
      ASSERT_EQ(golden.cc_records.size(), outcome.cc_records.size());
      for (std::size_t i = 0; i < golden.cc_records.size(); ++i) {
        EXPECT_EQ(golden.cc_records[i], outcome.cc_records[i])
            << "record " << i;
      }
    }
  }
}

TEST(AdaptationSoak, HomogeneousGroupConvergesToFairShare) {
  const std::size_t k = 256;
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, k, k, 8);
  proto::ProtocolConfig cfg;
  cfg.layers = 4;
  const auto server = std::make_shared<proto::FountainServer>(
      cfg, code->encoded_count(), 0x5eed, code->codec_id());

  const std::size_t receivers = 6;
  const unsigned fair_level = 1;
  const auto queue = std::make_shared<engine::SharedBottleneck>(
      1.3 * static_cast<double>(receivers) *
      server->subscribed_rate(fair_level));

  const engine::Time horizon = 20000;
  SessionConfig config;
  config.horizon = horizon;
  Session session(*code, config);
  const SourceId src = session.add_source(server);
  session.set_sink_factory(
      [] { return std::make_unique<engine::NullSink>(); });

  std::vector<cc::LevelTrace> trajectories(receivers);
  util::Rng rng(29);
  for (std::size_t i = 0; i < receivers; ++i) {
    ReceiverSpec spec;
    spec.join = rng.below(40);
    spec.policy.seed = 0xfa1ULL + 31 * i;
    spec.controller = std::make_unique<cc::TracingPolicy>(
        std::make_unique<cc::LossDrivenPolicy>(cc::LossDrivenConfig{}),
        spec.join, &trajectories[i]);
    const ReceiverId id = session.add_receiver(std::move(spec));
    session.subscribe(id, src,
                      std::make_unique<engine::BottleneckLink>(queue, 3 + i));
  }

  const auto reports = session.run();
  const engine::Time tail_begin = horizon - horizon / 4;
  for (std::size_t i = 0; i < receivers; ++i) {
    SCOPED_TRACE(::testing::Message() << "receiver " << i);
    EXPECT_LE(reports[i].peak_level, 3u);
    // Time within one layer of the fair share over the final quarter —
    // the same dwell metric the fig7_adaptation CI gate uses.
    EXPECT_GE(cc::fraction_near(trajectories[i], tail_begin, horizon,
                                fair_level, 1),
              0.90);
  }
}

}  // namespace
}  // namespace fountain
