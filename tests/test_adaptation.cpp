// Randomized end-to-end soak of the adaptation plane (labelled `soak` in
// ctest): seeded fuzz over receiver populations, subscription policies
// (fixed, burst-probe, loss-driven, and an adversarial chaos policy that
// requests absurd levels) and shared-bottleneck capacities. Every receiver
// must eventually decode, and no receiver's applied subscription level may
// ever leave [0, g-1] — the engine clamp must hold against any policy.
//
// A second, controlled scenario asserts the convergence property the
// fig7_adaptation bench gates on: a homogeneous loss-driven group behind
// one bottleneck settles within one layer of its fair-share level and
// holds it.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cc/policies.hpp"
#include "cc/trace.hpp"
#include "engine/session.hpp"
#include "fec/reed_solomon.hpp"
#include "proto/server.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using engine::ReceiverId;
using engine::ReceiverSpec;
using engine::Session;
using engine::SessionConfig;
using engine::SourceId;

/// Adversarial policy: requests wildly out-of-range levels half the time.
/// The engine must clamp every request into [0, max_level].
class ChaosPolicy final : public cc::ReceiverPolicy {
 public:
  void reset(unsigned initial_level, unsigned, std::uint64_t seed) override {
    (void)initial_level;
    rng_.reseed(seed ^ 0xc4a05ULL);
  }
  unsigned on_round(const cc::RoundView&, unsigned level) override {
    return rng_.chance(0.5)
               ? static_cast<unsigned>(rng_.below(1'000'000'000))
               : level;
  }

 private:
  util::Rng rng_{0};
};

cc::LossDrivenConfig random_loss_driven_config(util::Rng& rng) {
  cc::LossDrivenConfig knobs;
  knobs.window_rounds = 4 + rng.below(12);
  knobs.join_loss_threshold = 0.01 + 0.04 * rng.uniform();
  knobs.leave_loss_threshold = 0.10 + 0.30 * rng.uniform();
  knobs.initial_join_backoff = 4 + rng.below(16);
  knobs.max_join_backoff =
      knobs.initial_join_backoff << rng.below(6);
  knobs.probe_rounds = 4 + rng.below(30);
  knobs.join_timer_jitter = rng.uniform();
  return knobs;
}

void run_fuzzed_scenario(std::uint64_t master_seed) {
  SCOPED_TRACE(::testing::Message() << "master_seed=" << master_seed);
  util::Rng rng(master_seed);

  const unsigned g = 2 + static_cast<unsigned>(rng.below(4));  // 2..5 layers
  const std::size_t k = 24 + rng.below(60);
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, k, k, 8);
  proto::ProtocolConfig cfg;
  cfg.layers = g;
  const auto server = std::make_shared<proto::FountainServer>(
      cfg, code->encoded_count(), 0x5eed ^ master_seed, code->codec_id());
  const double rate0 = server->subscribed_rate(0);

  SessionConfig config;
  config.horizon = 20000;
  Session session(*code, config);
  const SourceId src = session.add_source(server);

  const std::size_t receivers = 3 + rng.below(18);
  const std::size_t queues_count = 1 + rng.below(2);
  std::vector<std::shared_ptr<engine::SharedBottleneck>> queues;
  for (std::size_t q = 0; q < queues_count; ++q) {
    const double members = static_cast<double>(
        receivers / queues_count + (q < receivers % queues_count ? 1 : 0));
    // >= 0.8x the all-at-level-0 load: level-0 loss stays below ~25%, so
    // every receiver keeps a positive reception rate and must decode.
    const double capacity =
        std::max(1.0, members * rate0 * (0.8 + 1.7 * rng.uniform()));
    queues.push_back(std::make_shared<engine::SharedBottleneck>(capacity));
  }

  for (std::size_t i = 0; i < receivers; ++i) {
    ReceiverSpec spec;
    spec.join = rng.below(50);
    spec.policy.seed = rng();
    spec.policy.initial_level = static_cast<unsigned>(rng.below(g));
    switch (rng.below(4)) {
      case 0:  // fixed level
        break;
      case 1:  // legacy burst-probe machinery + synthetic environment
        spec.policy.adaptive = true;
        spec.policy.initial_capacity = static_cast<unsigned>(rng.below(g));
        spec.policy.capacity_change_prob = 0.02 * rng.uniform();
        spec.policy.congestion_extra_loss = 0.5 * rng.uniform();
        break;
      case 2:
        spec.controller = std::make_unique<cc::LossDrivenPolicy>(
            random_loss_driven_config(rng));
        break;
      default:
        spec.controller = std::make_unique<ChaosPolicy>();
        break;
    }
    if (rng.chance(0.3)) {
      spec.moves.push_back(engine::ScriptedMove{
          spec.join + 20 + rng.below(100),
          static_cast<unsigned>(rng.below(g))});
    }
    const ReceiverId id = session.add_receiver(std::move(spec));
    session.subscribe(id, src,
                      std::make_unique<engine::BottleneckLink>(
                          queues[i % queues_count], rng(),
                          0.05 * rng.uniform()));
  }

  const auto reports = session.run();
  ASSERT_EQ(reports.size(), receivers);
  for (std::size_t i = 0; i < receivers; ++i) {
    SCOPED_TRACE(::testing::Message() << "receiver " << i);
    const auto& rep = reports[i];
    EXPECT_TRUE(rep.completed);          // everyone eventually decodes
    EXPECT_LE(rep.peak_level, g - 1);    // level never exceeds g-1 ...
    EXPECT_LE(rep.final_level, g - 1);   // ... and never wraps negative
    EXPECT_GE(rep.distinct, k);          // MDS: k distinct indices decode
    EXPECT_GE(rep.received, rep.distinct);
  }
}

TEST(AdaptationSoak, FuzzedPopulationsAlwaysDecodeAndStayInRange) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    run_fuzzed_scenario(0x50a4ULL * seed + seed);
  }
}

TEST(AdaptationSoak, HomogeneousGroupConvergesToFairShare) {
  const std::size_t k = 256;
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, k, k, 8);
  proto::ProtocolConfig cfg;
  cfg.layers = 4;
  const auto server = std::make_shared<proto::FountainServer>(
      cfg, code->encoded_count(), 0x5eed, code->codec_id());

  const std::size_t receivers = 6;
  const unsigned fair_level = 1;
  const auto queue = std::make_shared<engine::SharedBottleneck>(
      1.3 * static_cast<double>(receivers) *
      server->subscribed_rate(fair_level));

  const engine::Time horizon = 20000;
  SessionConfig config;
  config.horizon = horizon;
  Session session(*code, config);
  const SourceId src = session.add_source(server);
  session.set_sink_factory(
      [] { return std::make_unique<engine::NullSink>(); });

  std::vector<cc::LevelTrace> trajectories(receivers);
  util::Rng rng(29);
  for (std::size_t i = 0; i < receivers; ++i) {
    ReceiverSpec spec;
    spec.join = rng.below(40);
    spec.policy.seed = 0xfa1ULL + 31 * i;
    spec.controller = std::make_unique<cc::TracingPolicy>(
        std::make_unique<cc::LossDrivenPolicy>(cc::LossDrivenConfig{}),
        spec.join, &trajectories[i]);
    const ReceiverId id = session.add_receiver(std::move(spec));
    session.subscribe(id, src,
                      std::make_unique<engine::BottleneckLink>(queue, 3 + i));
  }

  const auto reports = session.run();
  const engine::Time tail_begin = horizon - horizon / 4;
  for (std::size_t i = 0; i < receivers; ++i) {
    SCOPED_TRACE(::testing::Message() << "receiver " << i);
    EXPECT_LE(reports[i].peak_level, 3u);
    // Time within one layer of the fair share over the final quarter —
    // the same dwell metric the fig7_adaptation CI gate uses.
    EXPECT_GE(cc::fraction_near(trajectories[i], tail_begin, horizon,
                                fair_level, 1),
              0.90);
  }
}

}  // namespace
}  // namespace fountain
