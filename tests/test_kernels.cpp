// Differential tests for the kern/ layer: every SIMD tier available on this
// machine must produce bit-identical output to the scalar reference tier for
// every kernel, across sizes 0..4096 (including odd lengths) and misaligned
// buffer offsets. Also covers the batching XorAccumulator, the dispatch
// override hooks, and the GF(2^8) split-nibble tables against field
// arithmetic.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "gf/gf256.hpp"
#include "gf/gf65536.hpp"
#include "kern/accumulator.hpp"
#include "kern/kernels.hpp"
#include "util/random.hpp"

namespace {

using namespace fountain;

// Sizes straddling every kernel's vector width and tail path: empty, sub-word,
// word boundaries, SSE/AVX lane boundaries, odd lengths, and full packets.
const std::vector<std::size_t> kSizes = {
    0,  1,  2,  3,   7,   8,   9,   15,  16,  17,   31,   32,   33,   63, 64,
    65, 95, 100, 127, 128, 129, 255, 256, 257, 511, 1000, 1024, 2048, 4095,
    4096};

const std::vector<std::size_t> kOffsets = {0, 1, 3};

std::vector<kern::Isa> simd_tiers() {
  std::vector<kern::Isa> tiers;
  for (const kern::Isa isa :
       {kern::Isa::kSse2, kern::Isa::kAvx2, kern::Isa::kAvx512,
        kern::Isa::kGfni, kern::Isa::kNeon}) {
    if (kern::ops_for(isa) != nullptr) tiers.push_back(isa);
  }
  return tiers;
}

/// Every available tier including scalar (multi-row tiling is tier-neutral
/// code, so it must be exercised over the scalar Ops table too).
std::vector<kern::Isa> all_tiers() {
  std::vector<kern::Isa> tiers = simd_tiers();
  tiers.push_back(kern::Isa::kScalar);
  return tiers;
}

/// Fills `n` bytes with deterministic pseudo-random data.
std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng() & 0xff);
  return out;
}

TEST(Kernels, ScalarTierAlwaysAvailable) {
  ASSERT_NE(kern::ops_for(kern::Isa::kScalar), nullptr);
  EXPECT_EQ(kern::ops_for(kern::Isa::kScalar)->isa, kern::Isa::kScalar);
}

TEST(Kernels, IsaNamesAreStable) {
  EXPECT_STREQ(kern::isa_name(kern::Isa::kScalar), "scalar");
  EXPECT_STREQ(kern::isa_name(kern::Isa::kSse2), "sse2");
  EXPECT_STREQ(kern::isa_name(kern::Isa::kAvx2), "avx2");
  EXPECT_STREQ(kern::isa_name(kern::Isa::kAvx512), "avx512");
  EXPECT_STREQ(kern::isa_name(kern::Isa::kGfni), "gfni");
  EXPECT_STREQ(kern::isa_name(kern::Isa::kNeon), "neon");
}

TEST(Kernels, XorBlockDifferential) {
  const kern::Ops& scalar = *kern::ops_for(kern::Isa::kScalar);
  for (const kern::Isa isa : simd_tiers()) {
    const kern::Ops& simd = *kern::ops_for(isa);
    for (const std::size_t n : kSizes) {
      for (const std::size_t off : kOffsets) {
        // Padded backing buffers so offset buffers stay in bounds; ASan
        // verifies the kernels never touch the padding's far side.
        const auto a0 = random_bytes(n + off, 17 * n + off);
        const auto b0 = random_bytes(n + off, 31 * n + off + 1);
        auto expect = a0;
        auto got = a0;
        scalar.xor_block(expect.data() + off, b0.data() + off, n);
        simd.xor_block(got.data() + off, b0.data() + off, n);
        ASSERT_EQ(expect, got) << kern::isa_name(isa) << " n=" << n
                               << " off=" << off;
      }
    }
  }
}

TEST(Kernels, XorBlockSelfZeroes) {
  for (const kern::Isa isa : simd_tiers()) {
    const kern::Ops& simd = *kern::ops_for(isa);
    auto buf = random_bytes(1024, 3);
    simd.xor_block(buf.data(), buf.data(), buf.size());
    EXPECT_EQ(buf, std::vector<std::uint8_t>(1024, 0)) << kern::isa_name(isa);
  }
}

TEST(Kernels, MultiSourceXorDifferential) {
  const kern::Ops& scalar = *kern::ops_for(kern::Isa::kScalar);
  std::vector<kern::Isa> tiers = simd_tiers();
  tiers.push_back(kern::Isa::kScalar);  // scalar multi-source vs sequential
  for (const kern::Isa isa : tiers) {
    const kern::Ops& ops = *kern::ops_for(isa);
    for (const std::size_t n : kSizes) {
      for (const std::size_t off : kOffsets) {
        const auto d0 = random_bytes(n + off, n + 5);
        const auto a = random_bytes(n + off, n + 6);
        const auto b = random_bytes(n + off, n + 7);
        const auto c = random_bytes(n + off, n + 8);
        const auto d = random_bytes(n + off, n + 9);

        // Reference: sequential single-source folds.
        auto expect = d0;
        scalar.xor_block(expect.data() + off, a.data() + off, n);
        scalar.xor_block(expect.data() + off, b.data() + off, n);

        auto got = d0;
        ops.xor_block_2(got.data() + off, a.data() + off, b.data() + off, n);
        ASSERT_EQ(expect, got) << "xor_block_2 " << kern::isa_name(isa)
                               << " n=" << n << " off=" << off;

        scalar.xor_block(expect.data() + off, c.data() + off, n);
        got = d0;
        ops.xor_block_3(got.data() + off, a.data() + off, b.data() + off,
                        c.data() + off, n);
        ASSERT_EQ(expect, got) << "xor_block_3 " << kern::isa_name(isa)
                               << " n=" << n << " off=" << off;

        scalar.xor_block(expect.data() + off, d.data() + off, n);
        got = d0;
        ops.xor_block_4(got.data() + off, a.data() + off, b.data() + off,
                        c.data() + off, d.data() + off, n);
        ASSERT_EQ(expect, got) << "xor_block_4 " << kern::isa_name(isa)
                               << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(Kernels, Gf256FmaDifferential) {
  const kern::Ops& scalar = *kern::ops_for(kern::Isa::kScalar);
  const std::vector<gf::GF256::Element> constants = {1,    2,    3,   0x53,
                                                     0x8E, 0xCA, 0xFF};
  for (const kern::Isa isa : simd_tiers()) {
    const kern::Ops& simd = *kern::ops_for(isa);
    for (const gf::GF256::Element c : constants) {
      const kern::Gf256Ctx ctx = gf::GF256::mul_ctx(c);
      for (const std::size_t n : kSizes) {
        for (const std::size_t off : kOffsets) {
          const auto d0 = random_bytes(n + off, 1000 + n);
          const auto src = random_bytes(n + off, 2000 + n);

          auto expect = d0;
          scalar.gf256_fma(expect.data() + off, src.data() + off, n, ctx);
          auto got = d0;
          simd.gf256_fma(got.data() + off, src.data() + off, n, ctx);
          ASSERT_EQ(expect, got)
              << "fma " << kern::isa_name(isa) << " c=" << unsigned(c)
              << " n=" << n << " off=" << off;

          expect = d0;
          scalar.gf256_scale(expect.data() + off, n, ctx);
          got = d0;
          simd.gf256_scale(got.data() + off, n, ctx);
          ASSERT_EQ(expect, got)
              << "scale " << kern::isa_name(isa) << " c=" << unsigned(c)
              << " n=" << n << " off=" << off;
        }
      }
    }
  }
}

/// Applies a GF2P8AFFINEQB-layout 8x8 bit matrix to one byte in scalar code:
/// result bit r is the parity of (matrix byte 7-r AND x) — the Intel SDM
/// semantics the GFNI tier relies on.
std::uint8_t affine_apply(std::uint64_t matrix, std::uint8_t x) {
  std::uint8_t out = 0;
  for (unsigned r = 0; r < 8; ++r) {
    const auto row = static_cast<std::uint8_t>(matrix >> (8 * (7 - r)));
    const unsigned parity = __builtin_popcount(row & x) & 1u;
    out |= static_cast<std::uint8_t>(parity << r);
  }
  return out;
}

TEST(Kernels, Gf256CtxMatchesFieldArithmetic) {
  // The split-nibble half-tables and the GFNI affine matrix must reproduce
  // c * x for every (c, x) pair:
  // full[x] == lo[x & 0xf] ^ hi[x >> 4] == affine(x) == GF256::mul(c, x).
  for (unsigned c = 0; c < 256; ++c) {
    const kern::Gf256Ctx ctx =
        gf::GF256::mul_ctx(static_cast<gf::GF256::Element>(c));
    for (unsigned x = 0; x < 256; ++x) {
      const auto expected =
          gf::GF256::mul(static_cast<gf::GF256::Element>(c),
                         static_cast<gf::GF256::Element>(x));
      ASSERT_EQ(ctx.full[x], expected) << "c=" << c << " x=" << x;
      ASSERT_EQ(ctx.lo[x & 0xf] ^ ctx.hi[x >> 4], expected)
          << "c=" << c << " x=" << x;
      ASSERT_EQ(affine_apply(ctx.affine, static_cast<std::uint8_t>(x)),
                expected)
          << "affine c=" << c << " x=" << x;
    }
  }
}

TEST(Kernels, DispatchedGf256BufferMatchesReference) {
  // Through the public GF256 API (whatever tier is active), against an
  // independent per-byte field multiply.
  const std::size_t n = 1531;  // odd: exercises the vector tail
  const auto src = random_bytes(n, 11);
  for (const gf::GF256::Element c : {0, 1, 2, 0x8E, 0xFF}) {
    auto dst = random_bytes(n, 12);
    auto expect = dst;
    for (std::size_t i = 0; i < n; ++i) {
      expect[i] ^= gf::GF256::mul(c, src[i]);
    }
    gf::GF256::fma_buffer(dst.data(), src.data(), n, c);
    ASSERT_EQ(expect, dst) << "c=" << unsigned(c);
  }
}

TEST(Kernels, XorAccumulatorMatchesNaive) {
  const std::size_t n = 777;
  for (std::size_t count = 0; count <= 9; ++count) {
    std::vector<std::vector<std::uint8_t>> sources;
    for (std::size_t i = 0; i < count; ++i) {
      sources.push_back(random_bytes(n, 50 + i));
    }
    const auto d0 = random_bytes(n, 49);

    auto expect = d0;
    for (const auto& s : sources) {
      for (std::size_t i = 0; i < n; ++i) expect[i] ^= s[i];
    }

    auto got = d0;
    {
      kern::XorAccumulator acc(got.data(), n);
      for (const auto& s : sources) acc.add(s.data());
    }  // destructor flushes
    ASSERT_EQ(expect, got) << "count=" << count;
  }
}

// Row counts straddling the 4-source fold grouping (0..5, then past one and
// two full passes) and lengths straddling the 4096-byte tile boundary.
const std::vector<std::size_t> kRowCounts = {0, 1, 2, 3, 4, 5, 8, 9, 17};
const std::vector<std::size_t> kRowLengths = {0,    1,    3,    64,  1000,
                                              4095, 4096, 4097, 8192, 12293};

TEST(Kernels, XorBlockRowsMatchesRepeatedSingle) {
  const kern::Ops& scalar = *kern::ops_for(kern::Isa::kScalar);
  for (const kern::Isa isa : all_tiers()) {
    const kern::Ops& ops = *kern::ops_for(isa);
    for (const std::size_t count : kRowCounts) {
      for (const std::size_t n : kRowLengths) {
        for (const std::size_t off : kOffsets) {
          const auto d0 = random_bytes(n + off, 7000 + count + n);
          std::vector<std::vector<std::uint8_t>> sources;
          std::vector<const std::uint8_t*> ptrs;
          for (std::size_t i = 0; i < count; ++i) {
            sources.push_back(random_bytes(n + off, 7100 + 13 * i + n));
            ptrs.push_back(sources.back().data() + off);
          }

          auto expect = d0;
          for (const auto* p : ptrs) {
            scalar.xor_block(expect.data() + off, p, n);
          }
          auto got = d0;
          kern::xor_block_rows(ops, got.data() + off, ptrs.data(), count, n);
          ASSERT_EQ(expect, got) << kern::isa_name(isa) << " count=" << count
                                 << " n=" << n << " off=" << off;
        }
      }
    }
  }
}

TEST(Kernels, Gf256FmaRowsMatchesRepeatedSingle) {
  const kern::Ops& scalar = *kern::ops_for(kern::Isa::kScalar);
  for (const kern::Isa isa : all_tiers()) {
    const kern::Ops& ops = *kern::ops_for(isa);
    for (const std::size_t count : kRowCounts) {
      for (const std::size_t n : kRowLengths) {
        const auto d0 = random_bytes(n, 8000 + count + n);
        std::vector<std::vector<std::uint8_t>> sources;
        std::vector<const std::uint8_t*> ptrs;
        std::vector<kern::Gf256Ctx> ctxs;
        for (std::size_t i = 0; i < count; ++i) {
          sources.push_back(random_bytes(n, 8100 + 13 * i + n));
          ptrs.push_back(sources.back().data());
          ctxs.push_back(gf::GF256::mul_ctx(
              static_cast<gf::GF256::Element>(2 + 7 * i)));
        }

        auto expect = d0;
        for (std::size_t i = 0; i < count; ++i) {
          scalar.gf256_fma(expect.data(), ptrs[i], n, ctxs[i]);
        }
        auto got = d0;
        kern::gf256_fma_rows(ops, got.data(), ptrs.data(), ctxs.data(), count,
                             n);
        ASSERT_EQ(expect, got) << kern::isa_name(isa) << " count=" << count
                               << " n=" << n;
      }
    }
  }
}

TEST(Kernels, Gf256FieldFmaRowsMatchesRepeatedBuffer) {
  // The field-level entry point splits coefficient-0 (skipped),
  // coefficient-1 (XOR fold), and general coefficients (fma fold); the
  // coefficient list deliberately mixes all three.
  const std::vector<gf::GF256::Element> coeffs = {0, 1, 2, 0x8E, 1, 0, 0xFF,
                                                  0x53, 1};
  for (const std::size_t n : {std::size_t{257}, std::size_t{8192}}) {
    const auto d0 = random_bytes(n, 900);
    std::vector<std::vector<std::uint8_t>> sources;
    std::vector<const std::uint8_t*> ptrs;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      sources.push_back(random_bytes(n, 910 + i));
      ptrs.push_back(sources.back().data());
    }
    auto expect = d0;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      gf::GF256::fma_buffer(expect.data(), ptrs[i], n, coeffs[i]);
    }
    auto got = d0;
    gf::GF256::fma_rows(got.data(), ptrs.data(), coeffs.data(), coeffs.size(),
                        n);
    ASSERT_EQ(expect, got) << "n=" << n;
  }
}

TEST(Kernels, Gf65536FieldFmaRowsMatchesRepeatedBuffer) {
  const std::vector<gf::GF65536::Element> coeffs = {0, 1, 0xBEEF, 2, 0x0101};
  for (const std::size_t n : {std::size_t{258}, std::size_t{8196}}) {
    const auto d0 = random_bytes(n, 920);
    std::vector<std::vector<std::uint8_t>> sources;
    std::vector<const std::uint8_t*> ptrs;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      sources.push_back(random_bytes(n, 930 + i));
      ptrs.push_back(sources.back().data());
    }
    auto expect = d0;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      gf::GF65536::fma_buffer(expect.data(), ptrs[i], n, coeffs[i]);
    }
    auto got = d0;
    gf::GF65536::fma_rows(got.data(), ptrs.data(), coeffs.data(),
                          coeffs.size(), n);
    ASSERT_EQ(expect, got) << "n=" << n;
  }
  // Odd lengths violate the 16-bit symbol grid.
  std::uint8_t dst[2] = {0, 0};
  const std::uint8_t src[2] = {1, 2};
  const std::uint8_t* srcs[1] = {src};
  const gf::GF65536::Element one = 1;
  EXPECT_THROW(gf::GF65536::fma_rows(dst, srcs, &one, 1, 1),
               std::invalid_argument);
}

TEST(Kernels, IsaOverride) {
  const kern::Isa initial = kern::active_isa();
  ASSERT_TRUE(kern::set_isa_override(kern::Isa::kScalar));
  EXPECT_EQ(kern::active_isa(), kern::Isa::kScalar);
  // A dispatched call under the override must use the scalar tier and still
  // be correct.
  auto a = random_bytes(100, 1);
  const auto b = random_bytes(100, 2);
  auto expect = a;
  for (std::size_t i = 0; i < a.size(); ++i) expect[i] ^= b[i];
  kern::xor_block(a.data(), b.data(), a.size());
  EXPECT_EQ(a, expect);
  kern::clear_isa_override();
  EXPECT_EQ(kern::active_isa(), initial);
}

TEST(Kernels, OverrideRejectsUnsupportedTier) {
  // At most one of SSE2/NEON can exist on a given machine; the other must be
  // rejected and leave the active selection untouched.
  const kern::Isa before = kern::active_isa();
  const bool have_sse2 = kern::ops_for(kern::Isa::kSse2) != nullptr;
  const bool have_neon = kern::ops_for(kern::Isa::kNeon) != nullptr;
  EXPECT_FALSE(have_sse2 && have_neon);
  const kern::Isa missing =
      have_sse2 ? kern::Isa::kNeon : kern::Isa::kSse2;
  EXPECT_FALSE(kern::set_isa_override(missing));
  EXPECT_EQ(kern::active_isa(), before);
}

}  // namespace
