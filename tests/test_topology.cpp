// The topology plane: graph/generator invariants, the Barabási–Albert
// degree law, PathLink's multiplicative loss composition, bit-identity of a
// one-edge path with the legacy BottleneckLink, chaos composition with
// FaultLink, and the cohort-confinement check over *every* edge of a path.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "carousel/carousel.hpp"
#include "cc/policies.hpp"
#include "cc/trace.hpp"
#include "engine/fault.hpp"
#include "engine/session.hpp"
#include "engine/sink.hpp"
#include "engine/sources.hpp"
#include "engine/topology.hpp"
#include "fec/reed_solomon.hpp"
#include "proto/server.hpp"
#include "proto/session.hpp"
#include "util/random.hpp"
#include "util/symbols.hpp"

namespace fountain {
namespace {

using engine::BottleneckLink;
using engine::CarouselSource;
using engine::FaultLink;
using engine::FaultProfile;
using engine::NodeId;
using engine::PathLink;
using engine::ReceiverId;
using engine::ReceiverReport;
using engine::ReceiverSpec;
using engine::Session;
using engine::SessionConfig;
using engine::SharedBottleneck;
using engine::SourceId;
using engine::Topology;

TEST(TopologyGraph, TreeShapeCapacityAndLeafInvariants) {
  const std::vector<double> caps = {8.0, 4.0, 2.0};
  const std::vector<engine::Time> rtts = {5, 3, 1};
  const Topology tree = Topology::bottleneck_tree(
      3, 2, std::span<const double>(caps), std::span<const engine::Time>(rtts));

  // Complete binary tree of depth 3: 1 + 2 + 4 + 8 nodes, one edge into
  // every non-root node, nodes and edges in level order.
  EXPECT_EQ(tree.node_count(), 15u);
  EXPECT_EQ(tree.edge_count(), 14u);
  EXPECT_EQ(tree.leaves(), (std::vector<NodeId>{7, 8, 9, 10, 11, 12, 13, 14}));
  for (std::size_t e = 0; e < tree.edge_count(); ++e) {
    const unsigned depth = e < 2 ? 1 : (e < 6 ? 2 : 3);
    EXPECT_EQ(tree.edge(e).capacity, caps[depth - 1]) << "edge " << e;
    EXPECT_EQ(tree.edge(e).rtt, rtts[depth - 1]) << "edge " << e;
    EXPECT_EQ(tree.edge(e).to, static_cast<NodeId>(e + 1)) << "edge " << e;
  }
  EXPECT_EQ(tree.degree(0), 2u);   // root: two children
  EXPECT_EQ(tree.degree(1), 3u);   // inner: parent + two children
  EXPECT_EQ(tree.degree(14), 1u);  // leaf: parent only

  // Root-to-leaf paths descend the levels: 3 hops, capacities {8, 4, 2}.
  const std::vector<std::uint32_t> hops = tree.path(0, 14);
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(tree.edge(hops[0]).capacity, 8.0);
  EXPECT_EQ(tree.edge(hops[1]).capacity, 4.0);
  EXPECT_EQ(tree.edge(hops[2]).capacity, 2.0);
  // Sibling leaves connect through their shared ancestor (undirected walk).
  EXPECT_EQ(tree.path(7, 8).size(), 2u);
  EXPECT_EQ(tree.path(7, 14).size(), 6u);
  EXPECT_TRUE(tree.path(3, 3).empty());

  // rtt defaults to 1 per level when no schedule is given.
  const Topology plain =
      Topology::bottleneck_tree(2, 3, std::vector<double>{1.0, 1.0});
  for (std::size_t e = 0; e < plain.edge_count(); ++e) {
    EXPECT_EQ(plain.edge(e).rtt, engine::Time{1});
  }
}

TEST(TopologyGraph, DegenerateArgumentsThrow) {
  Topology g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_THROW(g.add_edge(a, 7, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, b, -1.0), std::invalid_argument);
  g.add_edge(a, b, 2.0);
  EXPECT_THROW(g.set_edge_capacity(0, 0.0), std::invalid_argument);
  EXPECT_THROW(g.set_edge_capacity(5, 1.0), std::out_of_range);
  EXPECT_THROW(g.degree(9), std::out_of_range);
  EXPECT_THROW(g.path(0, 9), std::out_of_range);
  const NodeId island = g.add_node();
  EXPECT_THROW(g.path(a, island), std::invalid_argument);

  const std::vector<double> one_cap = {1.0};
  EXPECT_THROW(Topology::bottleneck_tree(0, 2, one_cap),
               std::invalid_argument);
  EXPECT_THROW(Topology::bottleneck_tree(1, 0, one_cap),
               std::invalid_argument);
  EXPECT_THROW(Topology::bottleneck_tree(2, 2, one_cap),  // one cap, depth 2
               std::invalid_argument);
  EXPECT_THROW(Topology::barabasi_albert(3, 0, 1), std::invalid_argument);
  EXPECT_THROW(Topology::barabasi_albert(2, 2, 1), std::invalid_argument);

  EXPECT_THROW(PathLink({}, 1), std::invalid_argument);
  EXPECT_THROW(PathLink({nullptr}, 1), std::invalid_argument);
  const auto q = std::make_shared<SharedBottleneck>(1.0);
  EXPECT_THROW(PathLink({q}, 1, 1.5), std::invalid_argument);
}

TEST(BarabasiAlbert, StructuralInvariants) {
  const std::size_t n = 600;
  const std::size_t m = 3;
  const Topology g = Topology::barabasi_albert(n, m, 0xba);
  EXPECT_EQ(g.node_count(), n);
  // Seed clique C(m+1, 2) edges, then m per arrival.
  EXPECT_EQ(g.edge_count(), m * (m + 1) / 2 + (n - m - 1) * m);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_GE(g.degree(v), m) << "node " << v;
  }
  // Attachment only ever targets existing nodes, so the graph is connected;
  // spot-check reachability from the seed clique to late arrivals.
  EXPECT_FALSE(g.path(0, static_cast<NodeId>(n - 1)).empty());
  EXPECT_FALSE(g.path(static_cast<NodeId>(n / 2),
                      static_cast<NodeId>(n - 2)).empty());
}

TEST(BarabasiAlbert, DegreeDistributionFitsThePowerLawChiSquared) {
  // Empirical degree histogram vs the mean-field law P(k) = 2m(m+1) /
  // (k(k+1)(k+2)), k >= m, across several seeds. Buckets with expected
  // count < 8 are merged into a tail bucket so the chi-squared
  // approximation holds. The graphs are deterministic, so a generous-but-
  // finite critical value makes this a regression tripwire for the
  // preferential-attachment sampler, not a flaky statistics test.
  const std::size_t n = 3000;
  const std::size_t m = 2;
  for (const std::uint64_t seed : {3ull, 17ull, 0xfeedull}) {
    const Topology g = Topology::barabasi_albert(n, m, seed);
    std::size_t max_degree = 0;
    std::vector<double> observed;
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t d = g.degree(v);
      if (d >= observed.size()) observed.resize(d + 1, 0.0);
      observed[d] += 1.0;
      max_degree = std::max(max_degree, d);
    }
    const double norm = 2.0 * static_cast<double>(m) *
                        static_cast<double>(m + 1) * static_cast<double>(n);
    double chi2 = 0.0;
    double merged_obs = 0.0;
    double merged_exp = static_cast<double>(n);  // tail = total - big buckets
    std::size_t dof = 0;
    for (std::size_t k = m; k <= max_degree; ++k) {
      const double expect = norm / (static_cast<double>(k) *
                                    static_cast<double>(k + 1) *
                                    static_cast<double>(k + 2));
      if (expect < 8.0) {
        merged_obs += observed[k];
        continue;
      }
      merged_exp -= expect;
      chi2 += (observed[k] - expect) * (observed[k] - expect) / expect;
      ++dof;
    }
    if (merged_exp > 0.0) {
      chi2 += (merged_obs - merged_exp) * (merged_obs - merged_exp) /
              merged_exp;
      ++dof;
    }
    ASSERT_GT(dof, 4u);
    --dof;  // histogram total is fixed
    // ~4-sigma critical value for a chi-squared with `dof` degrees.
    const double critical = static_cast<double>(dof) +
                            4.0 * std::sqrt(2.0 * static_cast<double>(dof));
    EXPECT_LT(chi2, critical) << "seed=" << seed << " dof=" << dof;
  }
}

TEST(TopologyGraph, GenerationIsByteIdenticalAcrossInstancesAndThreads) {
  const Topology reference = Topology::barabasi_albert(1500, 2, 0x70b0);
  EXPECT_EQ(reference, Topology::barabasi_albert(1500, 2, 0x70b0));
  EXPECT_NE(reference, Topology::barabasi_albert(1500, 2, 0x70b1));

  const std::vector<double> caps = {9.0, 3.0};
  const Topology tree_ref =
      Topology::bottleneck_tree(2, 4, std::span<const double>(caps));

  // Concurrent generation shares no state: every thread must reproduce the
  // reference graphs exactly.
  std::vector<Topology> ba(4);
  std::vector<Topology> trees(4);
  {
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < 4; ++t) {
      workers.emplace_back([&, t] {
        ba[t] = Topology::barabasi_albert(1500, 2, 0x70b0);
        trees[t] = Topology::bottleneck_tree(2, 4,
                                             std::span<const double>(caps));
      });
    }
    for (std::thread& w : workers) w.join();
  }
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(ba[t], reference) << "thread " << t;
    EXPECT_EQ(trees[t], tree_ref) << "thread " << t;
  }
}

TEST(PathLinkDifferential, OneEdgeTransfersMatchBottleneckLinkBitForBit) {
  // Same capacity, same external load trajectory, same seed and tail loss:
  // a one-edge PathLink must replay BottleneckLink verdict-for-verdict (the
  // compounding fold reduces to the identical floating-point expression and
  // the identical single RNG draw).
  const auto qa = std::make_shared<SharedBottleneck>(6.0);
  const auto qb = std::make_shared<SharedBottleneck>(6.0);
  BottleneckLink legacy(qa, 0xd1ff, 0.07);
  PathLink path({qb}, 0xd1ff, 0.07);
  const std::uint32_t sa = qa->attach();
  const std::uint32_t sb = qb->attach();
  util::Rng load(99);
  for (engine::Time t = 0; t < 5000; ++t) {
    if (load.chance(0.01)) {
      const double offered = 12.0 * load.uniform();
      qa->set_rate(sa, offered);
      qb->set_rate(sb, offered);
    }
    EXPECT_EQ(legacy.transfer(t), path.transfer(t)) << "tick " << t;
  }
  EXPECT_EQ(qa->peak_offered(), qb->peak_offered());
}

// One congestion-coupled adaptation scenario (two bottleneck groups of
// loss-driven receivers, fig7 in miniature), parameterized by how each
// receiver's link over the shared queue is built.
enum class LinkKind { kBottleneck, kPath };

struct DiffRun {
  std::vector<ReceiverReport> reports;
  cc::TraceLog log;
  explicit DiffRun(std::size_t receivers) : log(receivers) {}
};

DiffRun run_fig7_like(const fec::ErasureCode& code,
                      const std::shared_ptr<proto::FountainServer>& server,
                      LinkKind kind, std::size_t threads,
                      std::size_t cohort_size) {
  SessionConfig config;
  config.horizon = 4000;
  config.threads = threads;
  config.cohort_size = cohort_size;
  Session session(code, config);
  const SourceId src = session.add_source(server);
  session.set_sink_factory([] { return std::make_unique<engine::NullSink>(); });

  constexpr std::size_t kPerGroup = 4;
  DiffRun run(2 * kPerGroup);
  util::Rng rng(41);
  std::size_t rx = 0;
  for (const unsigned fair_level : {1u, 2u}) {
    const double capacity = 1.30 * static_cast<double>(kPerGroup) *
                            server->subscribed_rate(fair_level);
    const auto queue = std::make_shared<SharedBottleneck>(capacity);
    for (std::size_t i = 0; i < kPerGroup; ++i, ++rx) {
      ReceiverSpec spec;
      spec.join = rng.below(64);
      spec.policy.seed = 0xf167ULL + 77 * rx;
      spec.controller = run.log.wrap(
          rx, spec.join,
          std::make_unique<cc::LossDrivenPolicy>(cc::LossDrivenConfig{}));
      const ReceiverId id = session.add_receiver(std::move(spec));
      const double base_loss = 0.01 * rng.uniform();
      const std::uint64_t seed = 0xb077ULL + 131 * rx;
      if (kind == LinkKind::kBottleneck) {
        session.subscribe(id, src, std::make_unique<BottleneckLink>(
                                       queue, seed, base_loss));
      } else {
        session.subscribe(
            id, src,
            std::make_unique<PathLink>(
                std::vector<std::shared_ptr<SharedBottleneck>>{queue}, seed,
                base_loss));
      }
    }
  }
  run.reports = session.run();
  return run;
}

bool same_report(const ReceiverReport& a, const ReceiverReport& b) {
  return a.completed == b.completed && a.completed_at == b.completed_at &&
         a.addressed == b.addressed && a.received == b.received &&
         a.distinct == b.distinct && a.lost == b.lost &&
         a.rejected == b.rejected && a.level_changes == b.level_changes &&
         a.final_level == b.final_level && a.peak_level == b.peak_level;
}

TEST(PathLinkDifferential, Fig7ScenarioIsByteIdenticalAtEveryThreadCount) {
  // The full adaptation loop — shared-queue coupling, loss-driven
  // controllers, trace log — replayed with BottleneckLink vs a one-edge
  // PathLink, at threads {1, 2, 4}. Reports and every cc trace record must
  // be equal across link kinds and thread counts.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 40, 40, 8);
  proto::ProtocolConfig cfg;
  cfg.layers = 4;
  const auto server =
      std::make_shared<proto::FountainServer>(cfg, *code, 0x5eed);

  const DiffRun golden =
      run_fig7_like(*code, server, LinkKind::kBottleneck, 1, 1024);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    // cohort_size 4 puts the two groups in separate cohorts once threaded.
    const DiffRun path =
        run_fig7_like(*code, server, LinkKind::kPath, threads, 4);
    ASSERT_EQ(path.reports.size(), golden.reports.size());
    for (std::size_t r = 0; r < golden.reports.size(); ++r) {
      EXPECT_TRUE(same_report(golden.reports[r], path.reports[r]))
          << "receiver " << r;
    }
    EXPECT_TRUE(golden.log.records() == path.log.records());
  }
}

TEST(PathComposition, LossCompoundsMultiplicatively) {
  // Three queues pinned at loss {0.2, 0.1, 0.25} by external load; measured
  // delivery over a seeded run must sit within ~3 sigma of the analytic
  // product 0.8 * 0.9 * 0.75 = 0.54.
  const auto q1 = std::make_shared<SharedBottleneck>(8.0);
  const auto q2 = std::make_shared<SharedBottleneck>(9.0);
  const auto q3 = std::make_shared<SharedBottleneck>(6.0);
  q1->set_rate(q1->attach(), 10.0);  // (10 - 8) / 10  = 0.20
  q2->set_rate(q2->attach(), 10.0);  // (10 - 9) / 10  = 0.10
  q3->set_rate(q3->attach(), 8.0);   // (8 - 6) / 8    = 0.25
  PathLink path({q1, q2, q3}, 0xc0de);
  EXPECT_NEAR(path.loss_probability(), 1.0 - 0.8 * 0.9 * 0.75, 1e-12);
  EXPECT_EQ(path.edge_count(), 3u);

  const std::size_t trials = 200000;
  std::size_t delivered = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    delivered += path.deliver(static_cast<engine::Time>(t)) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / static_cast<double>(trials),
              0.54, 0.01);
}

TEST(PathComposition, EngineDeliveryMatchesTheProductEndToEnd) {
  // Same law through the whole engine: a carousel receiver (rate 1.0)
  // crosses a 3-edge chain whose queues carry 9.0 of background load, so
  // with the receiver's own packet the per-edge losses are again
  // {0.2, 0.1, 0.25} and received/addressed must approach 0.54.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 20, 20, 8);
  const auto order = carousel::Carousel::sequential(code->encoded_count());

  Topology chain;
  for (int i = 0; i < 4; ++i) chain.add_node();
  chain.add_edge(0, 1, 8.0);
  chain.add_edge(1, 2, 9.0);
  chain.add_edge(2, 3, 7.5);
  const auto queues = engine::make_edge_queues(chain);
  for (const auto& queue : queues) {
    queue->set_rate(queue->attach(), 9.0);  // background flows
  }

  SessionConfig config;
  config.horizon = 20000;
  Session session(*code, config);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(order, code->codec_id()));
  session.set_sink_factory([] { return std::make_unique<engine::NullSink>(); });
  const ReceiverId id = session.add_receiver(ReceiverSpec{});
  session.subscribe(id, src,
                    engine::make_path_link(chain, queues, 0, 3, 0xe2e));

  const ReceiverReport report = session.run().front();
  ASSERT_GT(report.addressed, 0u);
  EXPECT_NEAR(static_cast<double>(report.received) /
                  static_cast<double>(report.addressed),
              0.54, 0.02);
  // The subscriber's own 1.0 rode every queue: peak offered = 9 + 1.
  for (const auto& queue : queues) {
    EXPECT_NEAR(queue->peak_offered(), 10.0, 1e-9);
  }
}

TEST(PathComposition, FaultLinkAroundPathLinkReconcilesExactly) {
  // Chaos composition: adversarial delivery stacked on a congested 2-edge
  // path. Every injected fault must be accounted for against the report,
  // and the decoded bytes must still round-trip.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 30, 30, 8);
  util::SymbolMatrix file(30, 8);
  file.fill_random(53);
  const auto encoder = code->make_encoder(file);
  const auto order = carousel::Carousel::sequential(code->encoded_count());

  Topology chain;
  for (int i = 0; i < 3; ++i) chain.add_node();
  chain.add_edge(0, 1, 9.0);
  chain.add_edge(1, 2, 12.0);
  const auto queues = engine::make_edge_queues(chain);
  queues[0]->set_rate(queues[0]->attach(), 9.0);   // loss 1/10
  queues[1]->set_rate(queues[1]->attach(), 11.0);  // loss 0 at offered 12

  SessionConfig config;
  config.horizon = 4000;
  Session session(*code, config);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(order, code->codec_id()));
  ReceiverSpec spec;
  spec.sink =
      std::make_unique<engine::DataSink>(code->make_decoder(), *encoder);
  auto* sink = static_cast<engine::DataSink*>(spec.sink.get());
  const ReceiverId id = session.add_receiver(std::move(spec));

  FaultProfile profile;
  profile.duplicate = 0.15;
  profile.max_copies = 2;  // extra copies == duplicate verdicts, exactly
  profile.corrupt_header = 0.05;
  profile.corrupt_payload = 0.03;
  profile.truncate = 0.02;
  auto link = std::make_unique<FaultLink>(
      engine::make_path_link(chain, queues, 0, 2, 0xca05), profile,
      0xfa117);
  const FaultLink* counters = link.get();
  session.subscribe(id, src, std::move(link));

  const ReceiverReport report = session.run().front();
  ASSERT_TRUE(report.completed);
  EXPECT_GT(counters->counters().dropped, 0u);  // the path really congested
  EXPECT_GT(counters->counters().corrupted(), 0u);
  EXPECT_GT(counters->counters().duplicated, 0u);
  EXPECT_EQ(report.corrupt_rejected, counters->counters().corrupted());
  EXPECT_EQ(report.lost, counters->counters().dropped);
  EXPECT_EQ(report.duplicates_dropped, counters->counters().duplicated);
  EXPECT_EQ(report.received, counters->counters().delivered +
                                 counters->counters().duplicated +
                                 report.corrupt_rejected);
  EXPECT_EQ(sink->source(), file);
}

TEST(SessionValidation, PathsSharingOnlyTheLastEdgeAreRejected) {
  // Two receivers whose paths differ in the first hop but merge on the
  // final edge: shared_state() alone (the first edge) would call them
  // independent — the full-edge-set check must couple them and reject
  // cohort_size 1, with the documented message, at every thread count.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 20, 20, 8);
  const auto order = carousel::Carousel::sequential(code->encoded_count());
  const auto shared_last = std::make_shared<SharedBottleneck>(5.0);
  for (const std::size_t threads : {0u, 1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    SessionConfig config;
    config.cohort_size = 1;
    config.threads = threads;
    Session session(*code, config);
    const SourceId src = session.add_source(
        std::make_shared<CarouselSource>(order, code->codec_id()));
    for (int i = 0; i < 2; ++i) {
      const auto private_first = std::make_shared<SharedBottleneck>(5.0);
      const ReceiverId id = session.add_receiver(ReceiverSpec{});
      session.subscribe(id, src,
                        std::make_unique<PathLink>(
                            std::vector<std::shared_ptr<SharedBottleneck>>{
                                private_first, shared_last},
                            7 + i));
    }
    try {
      session.run();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what())
                    .find("receivers sharing a bottleneck span several "
                          "cohorts"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ProtoTopology, ClientsOnLeavesCompleteAndBadSpecsThrow) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 24, 24, 8);
  proto::ProtocolConfig cfg;

  proto::TopologySpec topo;
  // Wide 2-level tree: no congestion, just the wiring — every client hangs
  // off a leaf and must complete through its materialized PathLink.
  topo.topology = engine::Topology::bottleneck_tree(
      2, 2, std::vector<double>{1e6, 1e6});
  std::vector<proto::SimClientConfig> clients(4);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    clients[i].leaf = static_cast<int>(3 + i);  // leaves are nodes 3..6
    clients[i].fixed_level = true;
    clients[i].base_loss = 0.02;
  }
  const proto::SessionResult result =
      proto::run_session(*code, cfg, clients, topo, 0x1eaf, 4000, 2);
  ASSERT_EQ(result.receivers.size(), clients.size());
  for (std::size_t i = 0; i < result.receivers.size(); ++i) {
    EXPECT_TRUE(result.receivers[i].completed) << "client " << i;
  }

  // A leaf the topology does not have.
  std::vector<proto::SimClientConfig> bad_leaf = clients;
  bad_leaf[0].leaf = 42;
  EXPECT_THROW(proto::run_session(*code, cfg, bad_leaf, topo, 1, 100),
               std::out_of_range);

  // leaf and bottleneck are mutually exclusive.
  std::vector<proto::SimClientConfig> both = clients;
  both[0].bottleneck = 0;
  EXPECT_THROW(proto::run_session(*code, cfg, both, topo, 1, 100),
               std::invalid_argument);

  // A leaf client without a TopologySpec has nothing to attach to.
  EXPECT_THROW(proto::run_session(*code, cfg, clients, 1, 100),
               std::invalid_argument);
}

}  // namespace
}  // namespace fountain
