// Layered transmission schedule: exact reproduction of the paper's Table 5
// and the One Level Property for every layer count.
#include <gtest/gtest.h>

#include <set>

#include "sched/layered_schedule.hpp"

namespace fountain {
namespace {

using sched::LayeredSchedule;

TEST(Schedule, RatesMatchPaper) {
  LayeredSchedule s(4, 64);
  EXPECT_EQ(s.block_size(), 8u);
  EXPECT_EQ(s.rounds_per_cycle(), 8u);
  EXPECT_EQ(s.layer_rate(0), 1u);
  EXPECT_EQ(s.layer_rate(1), 1u);
  EXPECT_EQ(s.layer_rate(2), 2u);
  EXPECT_EQ(s.layer_rate(3), 4u);
  EXPECT_EQ(s.level_rate(3), 8u);  // full subscription covers a block/round
  EXPECT_EQ(s.level_rate(1), 2u);
}

TEST(Schedule, Table5Exactly) {
  // Paper Table 5: 4 layers, blocks of 8 packets, rounds 1..8.
  LayeredSchedule s(4, 8);
  using Row = std::vector<std::vector<unsigned>>;
  const Row layer3 = {{0, 1, 2, 3}, {4, 5, 6, 7}, {0, 1, 2, 3}, {4, 5, 6, 7},
                      {0, 1, 2, 3}, {4, 5, 6, 7}, {0, 1, 2, 3}, {4, 5, 6, 7}};
  const Row layer2 = {{4, 5}, {0, 1}, {6, 7}, {2, 3},
                      {4, 5}, {0, 1}, {6, 7}, {2, 3}};
  const Row layer1 = {{6}, {2}, {4}, {0}, {7}, {3}, {5}, {1}};
  const Row layer0 = {{7}, {3}, {5}, {1}, {6}, {2}, {4}, {0}};
  for (std::uint64_t round = 0; round < 8; ++round) {
    EXPECT_EQ(s.layer_block_offsets(3, round), layer3[round]) << round;
    EXPECT_EQ(s.layer_block_offsets(2, round), layer2[round]) << round;
    EXPECT_EQ(s.layer_block_offsets(1, round), layer1[round]) << round;
    EXPECT_EQ(s.layer_block_offsets(0, round), layer0[round]) << round;
  }
}

TEST(Schedule, Figure7Round4Pattern) {
  // Paper Figure 7 (g = 4, "round 4" = rounds counted from 1, i.e. round
  // index 3): layer 1 sends 0, layer 0 sends 1, layer 2 sends 2-3, layer 3
  // sends 4-7 — together they tile the block.
  LayeredSchedule s(4, 8);
  EXPECT_EQ(s.layer_block_offsets(1, 3), std::vector<unsigned>{0});
  EXPECT_EQ(s.layer_block_offsets(0, 3), std::vector<unsigned>{1});
  EXPECT_EQ(s.layer_block_offsets(2, 3), (std::vector<unsigned>{2, 3}));
  EXPECT_EQ(s.layer_block_offsets(3, 3), (std::vector<unsigned>{4, 5, 6, 7}));
}

/// One Level Property: at any fixed subscription level, the receiver sees a
/// permutation of the entire encoding before any packet repeats.
class OneLevelProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(OneLevelProperty, HoldsForEveryLevel) {
  const unsigned g = GetParam();
  const std::size_t n = 8 * (std::size_t{1} << (g - 1));  // 8 full blocks
  LayeredSchedule s(g, n);
  for (unsigned level = 0; level < g; ++level) {
    // Rounds needed for a full pass at this level: n / (level_rate * blocks).
    const std::size_t per_round = s.level_rate(level) * s.block_count();
    ASSERT_EQ(n % per_round, 0u);
    const std::size_t rounds = n / per_round;
    std::set<std::uint32_t> seen;
    std::vector<std::uint32_t> packets;
    for (std::uint64_t j = 0; j < rounds; ++j) {
      for (unsigned l = 0; l <= level; ++l) {
        packets.clear();
        s.append_layer_packets(l, j, packets);
        for (const auto p : packets) {
          EXPECT_TRUE(seen.insert(p).second)
              << "duplicate packet " << p << " at level " << level
              << " round " << j << " (g=" << g << ")";
        }
      }
    }
    EXPECT_EQ(seen.size(), n) << "level " << level << " g=" << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Layers, OneLevelProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

/// The churn-relevant strengthening: the one-level distinctness guarantee
/// holds from ANY starting round, not just round 0. A receiver that changes
/// subscription level mid-cycle therefore re-enters the guarantee
/// immediately — each full pass at its new level, measured from the round of
/// the change, is a permutation of the entire encoding.
class AnyPhaseOneLevelProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(AnyPhaseOneLevelProperty, HoldsFromEveryStartingRound) {
  const unsigned g = GetParam();
  const std::size_t n = 8 * (std::size_t{1} << (g - 1));  // 8 full blocks
  LayeredSchedule s(g, n);
  for (unsigned level = 0; level < g; ++level) {
    const std::size_t per_round = s.level_rate(level) * s.block_count();
    ASSERT_EQ(n % per_round, 0u);
    const std::size_t window = n / per_round;  // rounds for one full pass
    for (std::uint64_t phase = 0; phase < s.rounds_per_cycle(); ++phase) {
      std::set<std::uint32_t> seen;
      std::vector<std::uint32_t> packets;
      for (std::uint64_t j = phase; j < phase + window; ++j) {
        for (unsigned l = 0; l <= level; ++l) {
          packets.clear();
          s.append_layer_packets(l, j, packets);
          for (const auto p : packets) {
            EXPECT_TRUE(seen.insert(p).second)
                << "duplicate " << p << " at level " << level << " phase "
                << phase << " (g=" << g << ")";
          }
        }
      }
      EXPECT_EQ(seen.size(), n)
          << "level " << level << " phase " << phase << " g=" << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Layers, AnyPhaseOneLevelProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Schedule, EachLayerAloneCoversEverything) {
  // The paper also notes each individual multicast layer carries a full
  // permutation of the encoding before repeating.
  const unsigned g = 4;
  LayeredSchedule s(g, 64);
  for (unsigned layer = 0; layer < g; ++layer) {
    const std::size_t per_round = s.layer_rate(layer) * s.block_count();
    const std::size_t rounds = 64 / per_round;
    std::set<std::uint32_t> seen;
    std::vector<std::uint32_t> packets;
    for (std::uint64_t j = 0; j < rounds; ++j) {
      packets.clear();
      s.append_layer_packets(layer, j, packets);
      for (const auto p : packets) EXPECT_TRUE(seen.insert(p).second);
    }
    EXPECT_EQ(seen.size(), 64u) << "layer " << layer;
  }
}

TEST(Schedule, PartialFinalBlockIsSkippedCleanly) {
  // n = 13 with B = 8: final block has 5 packets; offsets 5..7 are skipped.
  LayeredSchedule s(4, 13);
  EXPECT_EQ(s.block_count(), 2u);
  std::set<std::uint32_t> seen;
  std::vector<std::uint32_t> packets;
  for (std::uint64_t j = 0; j < 8; ++j) {
    for (unsigned l = 0; l < 4; ++l) {
      packets.clear();
      s.append_layer_packets(l, j, packets);
      for (const auto p : packets) {
        ASSERT_LT(p, 13u);
        seen.insert(p);
      }
    }
  }
  EXPECT_EQ(seen.size(), 13u);
}

TEST(Schedule, SingleLayerDegeneratesToSequentialBlocks) {
  LayeredSchedule s(1, 5);
  EXPECT_EQ(s.block_size(), 1u);
  std::vector<std::uint32_t> packets;
  s.append_layer_packets(0, 0, packets);
  EXPECT_EQ(packets, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Schedule, PatternRepeatsEveryCycle) {
  LayeredSchedule s(3, 32);
  for (unsigned l = 0; l < 3; ++l) {
    for (std::uint64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(s.layer_block_offsets(l, j),
                s.layer_block_offsets(l, j + s.rounds_per_cycle()));
    }
  }
}

TEST(Schedule, InvalidArgumentsThrow) {
  EXPECT_THROW(LayeredSchedule(0, 8), std::invalid_argument);
  EXPECT_THROW(LayeredSchedule(4, 0), std::invalid_argument);
  EXPECT_THROW(LayeredSchedule(17, 8), std::invalid_argument);
  LayeredSchedule s(3, 8);
  EXPECT_THROW(s.layer_rate(3), std::out_of_range);
  EXPECT_THROW(s.layer_block_offsets(3, 0), std::out_of_range);
}

}  // namespace
}  // namespace fountain
