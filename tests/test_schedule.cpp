// Layered transmission schedule: exact reproduction of the paper's Table 5
// and the One Level Property for every layer count.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "sched/layered_schedule.hpp"

namespace fountain {
namespace {

using sched::LayeredSchedule;

TEST(Schedule, RatesMatchPaper) {
  LayeredSchedule s(4, 64);
  EXPECT_EQ(s.block_size(), 8u);
  EXPECT_EQ(s.rounds_per_cycle(), 8u);
  EXPECT_EQ(s.layer_rate(0), 1u);
  EXPECT_EQ(s.layer_rate(1), 1u);
  EXPECT_EQ(s.layer_rate(2), 2u);
  EXPECT_EQ(s.layer_rate(3), 4u);
  EXPECT_EQ(s.level_rate(3), 8u);  // full subscription covers a block/round
  EXPECT_EQ(s.level_rate(1), 2u);
}

TEST(Schedule, Table5Exactly) {
  // Paper Table 5: 4 layers, blocks of 8 packets, rounds 1..8.
  LayeredSchedule s(4, 8);
  using Row = std::vector<std::vector<unsigned>>;
  const Row layer3 = {{0, 1, 2, 3}, {4, 5, 6, 7}, {0, 1, 2, 3}, {4, 5, 6, 7},
                      {0, 1, 2, 3}, {4, 5, 6, 7}, {0, 1, 2, 3}, {4, 5, 6, 7}};
  const Row layer2 = {{4, 5}, {0, 1}, {6, 7}, {2, 3},
                      {4, 5}, {0, 1}, {6, 7}, {2, 3}};
  const Row layer1 = {{6}, {2}, {4}, {0}, {7}, {3}, {5}, {1}};
  const Row layer0 = {{7}, {3}, {5}, {1}, {6}, {2}, {4}, {0}};
  for (std::uint64_t round = 0; round < 8; ++round) {
    EXPECT_EQ(s.layer_block_offsets(3, round), layer3[round]) << round;
    EXPECT_EQ(s.layer_block_offsets(2, round), layer2[round]) << round;
    EXPECT_EQ(s.layer_block_offsets(1, round), layer1[round]) << round;
    EXPECT_EQ(s.layer_block_offsets(0, round), layer0[round]) << round;
  }
}

TEST(Schedule, Figure7Round4Pattern) {
  // Paper Figure 7 (g = 4, "round 4" = rounds counted from 1, i.e. round
  // index 3): layer 1 sends 0, layer 0 sends 1, layer 2 sends 2-3, layer 3
  // sends 4-7 — together they tile the block.
  LayeredSchedule s(4, 8);
  EXPECT_EQ(s.layer_block_offsets(1, 3), std::vector<unsigned>{0});
  EXPECT_EQ(s.layer_block_offsets(0, 3), std::vector<unsigned>{1});
  EXPECT_EQ(s.layer_block_offsets(2, 3), (std::vector<unsigned>{2, 3}));
  EXPECT_EQ(s.layer_block_offsets(3, 3), (std::vector<unsigned>{4, 5, 6, 7}));
}

/// The property sweep: every layer count g in 1..8 crossed with encoding
/// lengths that exercise full blocks, single blocks, non-power-of-two
/// lengths and short final blocks (n % B != 0).
struct ScheduleCase {
  unsigned g;
  std::size_t n;
};

std::vector<ScheduleCase> sweep_cases() {
  std::vector<ScheduleCase> cases;
  for (unsigned g = 1; g <= 8; ++g) {
    const std::size_t B = std::size_t{1} << (g - 1);
    std::set<std::size_t> lengths = {1, 13, 37, B, 8 * B};
    if (B > 1) {
      lengths.insert(B - 1);       // one short block only
      lengths.insert(B + 1);       // one full + one nearly-empty block
      lengths.insert(3 * B - 2);   // several blocks, short tail
      lengths.insert(5 * B + 3);
    }
    for (const std::size_t n : lengths) cases.push_back(ScheduleCase{g, n});
  }
  return cases;
}

class SchedulePropertySweep : public ::testing::TestWithParam<ScheduleCase> {};

/// One Level Property, generalized to any n and any phase: a receiver at
/// fixed level L sees, within EVERY window of B / level_rate(L) consecutive
/// rounds, each of the n encoding packets exactly once — full blocks are
/// tiled completely and a short final block contributes exactly its
/// existing packets (skipped offsets never cause a repeat).
TEST_P(SchedulePropertySweep, OneLevelPropertyAtAnyPhase) {
  const auto [g, n] = GetParam();
  LayeredSchedule s(g, n);
  const std::size_t B = s.block_size();
  for (unsigned level = 0; level < g; ++level) {
    ASSERT_EQ(B % s.level_rate(level), 0u);
    const std::size_t window = B / s.level_rate(level);
    for (const std::uint64_t phase :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{5},
          static_cast<std::uint64_t>(s.rounds_per_cycle() - 1)}) {
      std::set<std::uint32_t> seen;
      std::vector<std::uint32_t> packets;
      for (std::uint64_t j = phase; j < phase + window; ++j) {
        for (unsigned l = 0; l <= level; ++l) {
          packets.clear();
          s.append_layer_packets(l, j, packets);
          for (const auto p : packets) {
            ASSERT_LT(p, n);
            EXPECT_TRUE(seen.insert(p).second)
                << "duplicate " << p << " at level " << level << " phase "
                << phase << " (g=" << g << ", n=" << n << ")";
          }
        }
      }
      EXPECT_EQ(seen.size(), n)
          << "level " << level << " phase " << phase << " g=" << g
          << " n=" << n;
    }
  }
}

/// Each individual multicast layer also carries a full permutation of the
/// encoding: layer L repeats with period B / layer_rate(L) rounds, and any
/// window of that many consecutive rounds covers all n packets exactly
/// once, for every g and every (including non-power-of-two) n.
TEST_P(SchedulePropertySweep, EachLayerAloneIsAFullPermutation) {
  const auto [g, n] = GetParam();
  LayeredSchedule s(g, n);
  const std::size_t B = s.block_size();
  for (unsigned layer = 0; layer < g; ++layer) {
    ASSERT_EQ(B % s.layer_rate(layer), 0u);
    const std::size_t window = B / s.layer_rate(layer);
    for (const std::uint64_t phase :
         {std::uint64_t{0}, std::uint64_t{3},
          static_cast<std::uint64_t>(s.rounds_per_cycle())}) {
      std::set<std::uint32_t> seen;
      std::vector<std::uint32_t> packets;
      for (std::uint64_t j = phase; j < phase + window; ++j) {
        packets.clear();
        s.append_layer_packets(layer, j, packets);
        for (const auto p : packets) {
          ASSERT_LT(p, n);
          EXPECT_TRUE(seen.insert(p).second)
              << "duplicate " << p << " on layer " << layer << " phase "
              << phase << " (g=" << g << ", n=" << n << ")";
        }
      }
      EXPECT_EQ(seen.size(), n)
          << "layer " << layer << " phase " << phase << " g=" << g
          << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLayerCounts, SchedulePropertySweep,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& info) {
                           return "g" + std::to_string(info.param.g) + "_n" +
                                  std::to_string(info.param.n);
                         });

TEST(Schedule, PartialFinalBlockSkipsOffsetsPastTheEnd) {
  // Regression pin for the documented append_layer_packets contract: a
  // short final block contributes only its existing packets — per-block
  // offsets >= n % B are dropped silently, never wrapped or clamped. With
  // n = 13, B = 8 the final block holds offsets 0..4 at indices 8..12.
  LayeredSchedule s(4, 13);
  EXPECT_EQ(s.block_count(), 2u);

  // Round 1, layer 3 sends offsets {4,5,6,7} (Table 5): block 0 delivers
  // all four, block 1 only 8+4 = 12 — offsets 5..7 fall past index 13.
  std::vector<std::uint32_t> packets;
  s.append_layer_packets(3, 1, packets);
  EXPECT_EQ(packets, (std::vector<std::uint32_t>{4, 5, 6, 7, 12}));

  // Round 0, layer 2 sends offsets {4,5}: block 1 delivers only 12.
  packets.clear();
  s.append_layer_packets(2, 0, packets);
  EXPECT_EQ(packets, (std::vector<std::uint32_t>{4, 5, 12}));

  // Whole-round accounting: every round's emission equals the full-block
  // offsets replicated per block with out-of-range final-block offsets
  // dropped, so per-round counts may undershoot layer_rate * block_count.
  for (std::uint64_t j = 0; j < 8; ++j) {
    for (unsigned l = 0; l < 4; ++l) {
      const auto offsets = s.layer_block_offsets(l, j);
      std::vector<std::uint32_t> expected;
      for (std::size_t b = 0; b < 2; ++b) {
        for (const unsigned off : offsets) {
          if (b * 8 + off < 13) {
            expected.push_back(static_cast<std::uint32_t>(b * 8 + off));
          }
        }
      }
      packets.clear();
      s.append_layer_packets(l, j, packets);
      EXPECT_EQ(packets, expected) << "layer " << l << " round " << j;
    }
  }
}

TEST(Schedule, SingleLayerDegeneratesToSequentialBlocks) {
  LayeredSchedule s(1, 5);
  EXPECT_EQ(s.block_size(), 1u);
  std::vector<std::uint32_t> packets;
  s.append_layer_packets(0, 0, packets);
  EXPECT_EQ(packets, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Schedule, PatternRepeatsEveryCycle) {
  LayeredSchedule s(3, 32);
  for (unsigned l = 0; l < 3; ++l) {
    for (std::uint64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(s.layer_block_offsets(l, j),
                s.layer_block_offsets(l, j + s.rounds_per_cycle()));
    }
  }
}

TEST(Schedule, InvalidArgumentsThrow) {
  EXPECT_THROW(LayeredSchedule(0, 8), std::invalid_argument);
  EXPECT_THROW(LayeredSchedule(4, 0), std::invalid_argument);
  EXPECT_THROW(LayeredSchedule(17, 8), std::invalid_argument);
  LayeredSchedule s(3, 8);
  EXPECT_THROW(s.layer_rate(3), std::out_of_range);
  EXPECT_THROW(s.layer_block_offsets(3, 0), std::out_of_range);
}

}  // namespace
}  // namespace fountain
