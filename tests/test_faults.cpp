// The fault-injection plane: FaultLink verdicts, FaultScript blackouts, the
// stall watchdog, and the chaos soak — fuzzed adversarial scenarios in which
// every receiver must end completed-with-verified-bytes or classified, never
// hung, with reports byte-identical at every thread count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "engine/fault.hpp"
#include "engine/session.hpp"
#include "engine/sink.hpp"
#include "engine/sources.hpp"
#include "fec/reed_solomon.hpp"
#include "net/loss.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

using engine::CarouselSource;
using engine::FaultKind;
using engine::FaultLink;
using engine::FaultProfile;
using engine::FaultScript;
using engine::LossLink;
using engine::PerfectLink;
using engine::ReceiverId;
using engine::ReceiverOutcome;
using engine::ReceiverReport;
using engine::ReceiverSpec;
using engine::Session;
using engine::SessionConfig;
using engine::SourceId;
using engine::Verdict;

TEST(FaultValidation, FaultLinkRejectsBadProfiles) {
  const auto inner = [] { return std::make_unique<PerfectLink>(); };
  EXPECT_THROW(FaultLink(nullptr, FaultProfile{}, 1), std::invalid_argument);

  FaultProfile negative;
  negative.delay = -0.1;
  EXPECT_THROW(FaultLink(inner(), negative, 1), std::invalid_argument);

  FaultProfile overfull;
  overfull.duplicate = 0.6;
  overfull.corrupt_header = 0.6;
  EXPECT_THROW(FaultLink(inner(), overfull, 1), std::invalid_argument);

  FaultProfile single_copy;
  single_copy.max_copies = 1;  // a "duplicate" arriving once is a deliver
  EXPECT_THROW(FaultLink(inner(), single_copy, 1), std::invalid_argument);

  FaultProfile no_delay;
  no_delay.max_delay = 0;  // a zero-tick delay is a deliver
  EXPECT_THROW(FaultLink(inner(), no_delay, 1), std::invalid_argument);

  EXPECT_NO_THROW(FaultLink(inner(), FaultProfile{}, 1));
}

TEST(FaultValidation, FaultScriptRejectsEmptyWindows) {
  FaultScript script;
  EXPECT_THROW(script.add_outage(SourceId{0}, 5, 5), std::invalid_argument);
  EXPECT_THROW(script.add_outage(SourceId{0}, 5, 4), std::invalid_argument);
  script.add_outage(SourceId{0}, 5, 6);
  script.add_outage(SourceId{1}, 10);  // permanent death defaults to kNever
  EXPECT_EQ(script.outages().size(), 2u);
}

TEST(FaultValidation, SessionRejectsBadScriptsAtTheRightTime) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 20, 20, 8);
  const auto order = carousel::Carousel::sequential(code->encoded_count());
  {
    Session session(*code);
    session.add_source(
        std::make_shared<CarouselSource>(order, code->codec_id()));
    FaultScript script;
    script.add_outage(SourceId{0}, 0, 10);
    session.set_fault_script(script);
    // The script is immutable once handed over.
    EXPECT_THROW(session.set_fault_script(FaultScript{}), std::logic_error);
  }
  {
    SessionConfig config;
    config.horizon = 50;
    Session session(*code, config);
    const SourceId src = session.add_source(
        std::make_shared<CarouselSource>(order, code->codec_id()));
    const ReceiverId id = session.add_receiver(ReceiverSpec{});
    session.subscribe(id, src, std::make_unique<PerfectLink>());
    FaultScript script;
    script.add_outage(SourceId{7}, 0, 10);  // only source 0 exists
    session.set_fault_script(script);
    EXPECT_THROW(session.run(), std::out_of_range);
  }
}

TEST(FaultScriptBehavior, BlackoutIsTheUnionOfWindows) {
  FaultScript script;
  script.add_outage(SourceId{0}, 10, 20);
  script.add_outage(SourceId{0}, 15, 30);  // overlap: the union blacks out
  script.add_outage(SourceId{1}, 50);      // permanent mirror death

  EXPECT_FALSE(script.blacked_out(0, 9));
  EXPECT_TRUE(script.blacked_out(0, 10));   // from is inclusive
  EXPECT_TRUE(script.blacked_out(0, 22));   // inside the second window
  EXPECT_FALSE(script.blacked_out(0, 30));  // until is exclusive
  EXPECT_FALSE(script.blacked_out(1, 49));
  EXPECT_TRUE(script.blacked_out(1, 50));
  EXPECT_TRUE(script.blacked_out(1, engine::kNever - 1));  // never recovers
  EXPECT_FALSE(script.blacked_out(2, 15));  // other sources unaffected
}

TEST(FaultScriptBehavior, RandomScriptsAreSeededAndBounded) {
  const FaultScript a = FaultScript::random(0x5eed, 3, 1000, 2, 50);
  ASSERT_EQ(a.outages().size(), 6u);
  for (const FaultScript::Outage& outage : a.outages()) {
    EXPECT_LT(outage.source, 3u);
    EXPECT_LT(outage.from, 1000u);
    EXPECT_GE(outage.until - outage.from, 1u);
    EXPECT_LE(outage.until - outage.from, 50u);
  }
  const FaultScript b = FaultScript::random(0x5eed, 3, 1000, 2, 50);
  for (std::size_t i = 0; i < a.outages().size(); ++i) {
    EXPECT_EQ(a.outages()[i].source, b.outages()[i].source) << i;
    EXPECT_EQ(a.outages()[i].from, b.outages()[i].from) << i;
    EXPECT_EQ(a.outages()[i].until, b.outages()[i].until) << i;
  }
  EXPECT_THROW(FaultScript::random(1, 1, 0, 1, 5), std::invalid_argument);
  EXPECT_THROW(FaultScript::random(1, 1, 10, 1, 0), std::invalid_argument);
}

TEST(FaultLinkBehavior, CleanProfileIsByteIdenticalToTheInnerLink) {
  // The determinism contract of the decorator: the inner link's RNG stream
  // is consulted first and untouched by the decoration, so a FaultLink with
  // an all-zero profile replays the undecorated link verdict-for-verdict.
  LossLink bare(std::make_unique<net::BernoulliLoss>(0.3, 9));
  FaultLink wrapped(
      std::make_unique<LossLink>(std::make_unique<net::BernoulliLoss>(0.3, 9)),
      FaultProfile{}, 0xfeedface);
  for (engine::Time t = 0; t < 2000; ++t) {
    EXPECT_EQ(wrapped.transfer(t), bare.transfer(t)) << t;
  }
  EXPECT_EQ(wrapped.counters().duplicated, 0u);
  EXPECT_EQ(wrapped.counters().corrupted(), 0u);
  EXPECT_EQ(wrapped.counters().delayed, 0u);
  EXPECT_EQ(wrapped.counters().delivered + wrapped.counters().dropped, 2000u);
}

TEST(FaultLinkBehavior, VerdictsMatchTheProfileAndAreAllCounted) {
  FaultProfile profile;
  profile.duplicate = 0.10;
  profile.delay = 0.10;
  profile.corrupt_header = 0.05;
  profile.corrupt_payload = 0.05;
  profile.truncate = 0.05;
  profile.max_copies = 4;
  profile.max_delay = 6;
  FaultLink link(std::make_unique<PerfectLink>(), profile, 0xabcd);

  FaultLink::Counters tally;
  const engine::Time rounds = 20000;
  for (engine::Time t = 0; t < rounds; ++t) {
    const Verdict v = link.transfer(t);
    switch (v.kind) {
      case FaultKind::kDeliver:
        ++tally.delivered;
        EXPECT_EQ(v.copies, 1u);
        break;
      case FaultKind::kDuplicate:
        ++tally.duplicated;
        EXPECT_GE(v.copies, 2u);
        EXPECT_LE(v.copies, profile.max_copies);
        break;
      case FaultKind::kDelay:
        ++tally.delayed;
        EXPECT_GE(v.delay, 1u);
        EXPECT_LE(v.delay, profile.max_delay);
        break;
      case FaultKind::kCorruptHeader:
        ++tally.corrupt_header;
        break;
      case FaultKind::kCorruptPayload:
        ++tally.corrupt_payload;
        break;
      case FaultKind::kTruncate:
        ++tally.truncated;
        break;
      case FaultKind::kDrop:
        ++tally.dropped;  // PerfectLink inner: must stay zero
        break;
    }
  }
  const FaultLink::Counters& c = link.counters();
  EXPECT_EQ(c.delivered, tally.delivered);
  EXPECT_EQ(c.duplicated, tally.duplicated);
  EXPECT_EQ(c.delayed, tally.delayed);
  EXPECT_EQ(c.corrupt_header, tally.corrupt_header);
  EXPECT_EQ(c.corrupt_payload, tally.corrupt_payload);
  EXPECT_EQ(c.truncated, tally.truncated);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(c.delivered + c.duplicated + c.delayed + c.corrupted(), rounds);
  // Every fault band was actually exercised at these rates.
  EXPECT_GT(c.duplicated, 0u);
  EXPECT_GT(c.delayed, 0u);
  EXPECT_GT(c.corrupt_header, 0u);
  EXPECT_GT(c.corrupt_payload, 0u);
  EXPECT_GT(c.truncated, 0u);
}

TEST(FaultSession, CorruptedPacketsAreCountedAndNeverReachTheDecoder) {
  // The acceptance invariant made exact: in a deterministic scenario the
  // receiver's checksum-rejection counter equals the number of corrupt
  // verdicts the link injected — every damaged packet was received, counted,
  // and withheld from the decoder — and the reconstruction is byte-exact.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 30, 30, 8);
  util::SymbolMatrix file(30, 8);
  file.fill_random(41);
  const auto encoder = code->make_encoder(file);
  const auto order = carousel::Carousel::sequential(code->encoded_count());

  SessionConfig config;
  config.horizon = 4000;
  Session session(*code, config);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(order, code->codec_id()));

  ReceiverSpec spec;
  spec.sink = std::make_unique<engine::DataSink>(code->make_decoder(),
                                                 *encoder);
  auto* sink = static_cast<engine::DataSink*>(spec.sink.get());
  const ReceiverId id = session.add_receiver(std::move(spec));

  FaultProfile profile;
  profile.corrupt_header = 0.08;
  profile.corrupt_payload = 0.04;
  profile.truncate = 0.04;
  auto link = std::make_unique<FaultLink>(
      std::make_unique<LossLink>(std::make_unique<net::BernoulliLoss>(0.1, 77)),
      profile, 0x50ab);
  const FaultLink* counters = link.get();
  session.subscribe(id, src, std::move(link));

  const ReceiverReport report = session.run().front();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(report.outcome, ReceiverOutcome::kCompleted);
  EXPECT_GT(counters->counters().corrupted(), 0u);
  EXPECT_EQ(report.corrupt_rejected, counters->counters().corrupted());
  EXPECT_EQ(report.lost, counters->counters().dropped);
  EXPECT_EQ(report.duplicates_dropped, 0u);
  // Corrupt arrivals are received but never decoded: the decoder saw only
  // the clean deliveries, and the bytes still round-trip.
  EXPECT_EQ(report.received,
            counters->counters().delivered + report.corrupt_rejected);
  EXPECT_EQ(sink->source(), file);
}

TEST(FaultSession, DuplicateCopiesAreDroppedBeforeTheDecoder) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 30, 30, 8);
  util::SymbolMatrix file(30, 8);
  file.fill_random(43);
  const auto encoder = code->make_encoder(file);
  const auto order = carousel::Carousel::sequential(code->encoded_count());

  SessionConfig config;
  config.horizon = 2000;
  Session session(*code, config);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(order, code->codec_id()));
  ReceiverSpec spec;
  spec.sink = std::make_unique<engine::DataSink>(code->make_decoder(),
                                                 *encoder);
  auto* sink = static_cast<engine::DataSink*>(spec.sink.get());
  const ReceiverId id = session.add_receiver(std::move(spec));

  FaultProfile profile;
  profile.duplicate = 0.3;
  profile.max_copies = 2;  // extra copies == duplicate verdicts, exactly
  auto link =
      std::make_unique<FaultLink>(std::make_unique<PerfectLink>(), profile,
                                  0xd0b1e);
  const FaultLink* counters = link.get();
  session.subscribe(id, src, std::move(link));

  const ReceiverReport report = session.run().front();
  ASSERT_TRUE(report.completed);
  EXPECT_GT(counters->counters().duplicated, 0u);
  EXPECT_EQ(report.duplicates_dropped, counters->counters().duplicated);
  // First copies count as received; the dropped extras do not.
  EXPECT_EQ(report.received, report.addressed);
  EXPECT_EQ(sink->source(), file);
}

TEST(FaultSession, DelayedPacketsArriveLateAndStillDecode) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 30, 30, 8);
  util::SymbolMatrix file(30, 8);
  file.fill_random(47);
  const auto encoder = code->make_encoder(file);
  const auto order = carousel::Carousel::sequential(code->encoded_count());

  SessionConfig config;
  config.horizon = 2000;
  Session session(*code, config);
  const SourceId src = session.add_source(
      std::make_shared<CarouselSource>(order, code->codec_id()));
  ReceiverSpec spec;
  spec.sink = std::make_unique<engine::DataSink>(code->make_decoder(),
                                                 *encoder);
  auto* sink = static_cast<engine::DataSink*>(spec.sink.get());
  const ReceiverId id = session.add_receiver(std::move(spec));

  FaultProfile profile;
  profile.delay = 0.4;  // heavy reordering
  profile.max_delay = 6;
  auto link =
      std::make_unique<FaultLink>(std::make_unique<PerfectLink>(), profile,
                                  0xde1a);
  const FaultLink* counters = link.get();
  session.subscribe(id, src, std::move(link));

  const ReceiverReport report = session.run().front();
  ASSERT_TRUE(report.completed);
  EXPECT_GT(counters->counters().delayed, 0u);
  EXPECT_EQ(report.lost, 0u);  // delayed is never lost
  EXPECT_EQ(sink->source(), file);
}

TEST(FaultSession, ServerBlackoutPausesTheCarouselTickGrid) {
  // A blacked-out server emits nothing, but its tick grid keeps running: the
  // restart resumes the carousel schedule where it would be, so the receiver
  // finishes exactly 40 ticks (the outage length) later than the clean run.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 20, 20, 8);
  const auto order = carousel::Carousel::sequential(code->encoded_count());
  const auto run_once = [&](bool blackout) {
    SessionConfig config;
    config.horizon = 200;
    Session session(*code, config);
    const SourceId src = session.add_source(
        std::make_shared<CarouselSource>(order, code->codec_id()));
    const ReceiverId id = session.add_receiver(ReceiverSpec{});
    session.subscribe(id, src, std::make_unique<PerfectLink>());
    if (blackout) {
      FaultScript script;
      script.add_outage(src, 5, 45);
      session.set_fault_script(script);
    }
    return session.run().front();
  };

  const ReceiverReport clean = run_once(false);
  ASSERT_TRUE(clean.completed);
  EXPECT_EQ(clean.completed_at, 19u);  // MDS: the 20th distinct slot

  const ReceiverReport dark = run_once(true);
  ASSERT_TRUE(dark.completed);
  EXPECT_EQ(dark.outcome, ReceiverOutcome::kCompleted);
  // Slots 0-4 before the outage, silence for [5, 45), slots 5-19 at ticks
  // 45-59: the carousel did NOT rewind during the blackout.
  EXPECT_EQ(dark.completed_at, 59u);
  EXPECT_EQ(dark.addressed, 20u);  // dead air addresses nothing
  EXPECT_EQ(dark.received, 20u);
}

TEST(FaultSession, StallWatchdogClassifiesDeadAirInsteadOfHanging) {
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 20, 20, 8);
  const auto order = carousel::Carousel::sequential(code->encoded_count());
  const auto run_once = [&](engine::Time stall_timeout) {
    SessionConfig config;
    config.horizon = 10000;
    config.stall_timeout = stall_timeout;
    Session session(*code, config);
    const SourceId src = session.add_source(
        std::make_shared<CarouselSource>(order, code->codec_id()));
    const ReceiverId id = session.add_receiver(ReceiverSpec{});
    session.subscribe(id, src, std::make_unique<PerfectLink>());
    FaultScript script;
    script.add_outage(src, 10);  // the server dies for good at tick 10
    session.set_fault_script(script);
    return session.run().front();
  };

  const ReceiverReport watched = run_once(50);
  EXPECT_FALSE(watched.completed);
  EXPECT_EQ(watched.outcome, ReceiverOutcome::kStalled);
  EXPECT_EQ(watched.received, 10u);  // ticks 0-9, then nothing

  const ReceiverReport unwatched = run_once(0);
  EXPECT_FALSE(unwatched.completed);
  EXPECT_EQ(unwatched.outcome, ReceiverOutcome::kHorizon);
}

TEST(FaultSession, MirrorDeathFailsOverToTheSurvivor) {
  // Two mirrors deal independent permutations; mirror 0 dies for good early.
  // A receiver holding both completes from the survivor ("symbols from any
  // sender are interchangeable"); a receiver holding only the dead mirror is
  // classified by the watchdog.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 20, 20, 8);
  util::Rng rng(55);
  const auto c0 =
      carousel::Carousel::random_permutation(code->encoded_count(), rng);
  const auto c1 =
      carousel::Carousel::random_permutation(code->encoded_count(), rng);

  SessionConfig config;
  config.horizon = 500;
  config.stall_timeout = 60;
  Session session(*code, config);
  const SourceId m0 = session.add_source(
      std::make_shared<CarouselSource>(c0, code->codec_id()));
  const SourceId m1 = session.add_source(
      std::make_shared<CarouselSource>(c1, code->codec_id()));

  const ReceiverId both = session.add_receiver(ReceiverSpec{});
  session.subscribe(both, m0, std::make_unique<PerfectLink>());
  session.subscribe(both, m1, std::make_unique<PerfectLink>());
  const ReceiverId solo = session.add_receiver(ReceiverSpec{});
  session.subscribe(solo, m0, std::make_unique<PerfectLink>());

  FaultScript script;
  script.add_outage(m0, 10);  // permanent death
  session.set_fault_script(script);

  const auto reports = session.run();
  EXPECT_TRUE(reports[both.value].completed);
  EXPECT_EQ(reports[both.value].outcome, ReceiverOutcome::kCompleted);
  EXPECT_FALSE(reports[solo.value].completed);
  EXPECT_EQ(reports[solo.value].outcome, ReceiverOutcome::kStalled);
}

// ---------------------------------------------------------------------------
// The chaos soak: fuzzed fault scripts over mixed populations.

struct ChaosOutcome {
  std::vector<ReceiverReport> reports;
  std::vector<std::uint8_t> verified;  // completed receivers, byte-checked
  std::uint64_t injected_corrupt = 0;
  std::uint64_t injected_duplicates = 0;
  std::uint64_t injected_delays = 0;
};

/// One fuzzed scenario, fully derived from `scenario`: a small RS-Cauchy or
/// Tornado code, two mirror carousels, 7-13 receivers with churn, FaultLink
/// profiles mixing duplication/reordering/corruption/truncation over lossy
/// links, seeded-random server blackouts, and (every other scenario) a
/// permanent mirror death — with the stall watchdog armed so nothing can
/// idle to the horizon silently.
ChaosOutcome run_chaos_scenario(std::uint64_t scenario, std::size_t threads) {
  util::Rng rng(0xc4a05u ^ (scenario * 0x9e3779b97f4a7c15ULL));

  std::unique_ptr<const fec::ErasureCode> owned;
  if (scenario % 2 == 1) {
    owned = std::make_unique<core::TornadoCode>(
        core::TornadoParams::tornado_a(120, 8, 5));
  } else {
    owned = fec::make_reed_solomon(fec::RsKind::kCauchy, 30, 30, 8);
  }
  const fec::ErasureCode& code = *owned;
  util::SymbolMatrix file(code.source_count(), code.symbol_size());
  file.fill_random(900 + scenario);
  const auto encoder = code.make_encoder(file);

  util::Rng carousel_rng(rng());
  const auto c0 =
      carousel::Carousel::random_permutation(code.encoded_count(),
                                             carousel_rng);
  const auto c1 =
      carousel::Carousel::random_permutation(code.encoded_count(),
                                             carousel_rng);

  SessionConfig config;
  config.horizon = 2500;
  config.cohort_size = 4;  // several cohorts: the shard grain is exercised
  config.threads = threads;
  config.stall_timeout = 300;
  Session session(code, config);
  const SourceId s0 = session.add_source(
      std::make_shared<CarouselSource>(c0, code.codec_id()));
  const SourceId s1 = session.add_source(
      std::make_shared<CarouselSource>(c1, code.codec_id()));

  FaultScript script = FaultScript::random(
      rng(), 2, 1500, 1 + static_cast<unsigned>(scenario % 3), 250);
  if (scenario % 2 == 0) {
    script.add_outage(s1, 500 + rng.below(500));  // permanent mirror death
  }
  session.set_fault_script(std::move(script));

  const std::size_t population = 7 + rng.below(7);
  std::vector<engine::DataSink*> sinks;
  std::vector<std::vector<const FaultLink*>> links(population);
  for (std::size_t r = 0; r < population; ++r) {
    ReceiverSpec spec;
    spec.join = rng.below(200);
    if (r == 0) {
      spec.leave = spec.join + 5;  // guaranteed churn: gone before decode
    } else if (rng.chance(0.25)) {
      spec.leave = spec.join + 100 + rng.below(600);
    }
    spec.sink = std::make_unique<engine::DataSink>(code.make_decoder(),
                                                   *encoder);
    sinks.push_back(static_cast<engine::DataSink*>(spec.sink.get()));
    const ReceiverId id = session.add_receiver(std::move(spec));

    const bool dual_homed = rng.chance(0.6);
    for (const SourceId src : {s0, s1}) {
      if (src.value == s1.value && !dual_homed) continue;
      FaultProfile profile;
      profile.duplicate = 0.10 * rng.uniform();
      profile.delay = 0.10 * rng.uniform();
      profile.corrupt_header = 0.08 * rng.uniform();
      profile.corrupt_payload = 0.05 * rng.uniform();
      profile.truncate = 0.05 * rng.uniform();
      profile.max_copies = 2;  // extra copies == duplicate verdicts
      profile.max_delay = 1 + rng.below(8);
      auto link = std::make_unique<FaultLink>(
          std::make_unique<LossLink>(std::make_unique<net::BernoulliLoss>(
              0.05 + 0.25 * rng.uniform(), rng())),
          profile, rng());
      links[r].push_back(link.get());
      session.subscribe(id, src, std::move(link));
    }
  }

  ChaosOutcome out;
  out.reports = session.run();
  for (std::size_t r = 0; r < population; ++r) {
    const ReceiverReport& rep = out.reports[r];
    // Every ending is classified, and the flag agrees with the class.
    EXPECT_EQ(rep.completed, rep.outcome == ReceiverOutcome::kCompleted) << r;
    // Fault accounting is exact per receiver: what the links injected is
    // what the report counted — corrupt packets never reached a decoder.
    FaultLink::Counters sum;
    for (const FaultLink* link : links[r]) {
      sum.dropped += link->counters().dropped;
      sum.duplicated += link->counters().duplicated;
      sum.delayed += link->counters().delayed;
      sum.corrupt_header += link->counters().corrupt_header;
      sum.corrupt_payload += link->counters().corrupt_payload;
      sum.truncated += link->counters().truncated;
    }
    EXPECT_EQ(rep.corrupt_rejected, sum.corrupted()) << r;
    EXPECT_EQ(rep.duplicates_dropped, sum.duplicated) << r;
    EXPECT_EQ(rep.lost, sum.dropped) << r;
    out.injected_corrupt += sum.corrupted();
    out.injected_duplicates += sum.duplicated;
    out.injected_delays += sum.delayed;

    bool verified = false;
    if (rep.completed) {
      verified = sinks[r]->complete() && sinks[r]->source() == file;
      EXPECT_TRUE(verified) << "receiver " << r << " completed with bad bytes";
    }
    out.verified.push_back(verified ? 1 : 0);
  }
  EXPECT_FALSE(out.reports[0].completed);  // the scripted early leaver
  EXPECT_EQ(out.reports[0].outcome, ReceiverOutcome::kDeparted);
  return out;
}

void expect_same_reports(const std::vector<ReceiverReport>& golden,
                         const std::vector<ReceiverReport>& other) {
  ASSERT_EQ(golden.size(), other.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const ReceiverReport& a = golden[i];
    const ReceiverReport& b = other[i];
    EXPECT_EQ(a.completed, b.completed) << i;
    EXPECT_EQ(a.outcome, b.outcome) << i;
    EXPECT_EQ(a.completed_at, b.completed_at) << i;
    EXPECT_EQ(a.addressed, b.addressed) << i;
    EXPECT_EQ(a.received, b.received) << i;
    EXPECT_EQ(a.distinct, b.distinct) << i;
    EXPECT_EQ(a.lost, b.lost) << i;
    EXPECT_EQ(a.rejected, b.rejected) << i;
    EXPECT_EQ(a.corrupt_rejected, b.corrupt_rejected) << i;
    EXPECT_EQ(a.duplicates_dropped, b.duplicates_dropped) << i;
    EXPECT_EQ(a.level_changes, b.level_changes) << i;
    EXPECT_EQ(a.final_level, b.final_level) << i;
    EXPECT_EQ(a.peak_level, b.peak_level) << i;
  }
}

TEST(ChaosSoak, FuzzedScenariosAreClassifiedVerifiedAndThreadInvariant) {
  constexpr std::uint64_t kScenarios = 24;
  std::uint64_t receivers = 0;
  std::uint64_t completed = 0;
  std::uint64_t departed = 0;
  std::uint64_t stalled_or_horizon = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t delays = 0;
  for (std::uint64_t s = 0; s < kScenarios; ++s) {
    SCOPED_TRACE("scenario " + std::to_string(s));
    const ChaosOutcome golden = run_chaos_scenario(s, 1);
    for (const std::size_t threads : {2, 4}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      const ChaosOutcome outcome = run_chaos_scenario(s, threads);
      expect_same_reports(golden.reports, outcome.reports);
      EXPECT_EQ(golden.verified, outcome.verified);
      EXPECT_EQ(golden.injected_corrupt, outcome.injected_corrupt);
      EXPECT_EQ(golden.injected_duplicates, outcome.injected_duplicates);
      EXPECT_EQ(golden.injected_delays, outcome.injected_delays);
    }
    receivers += golden.reports.size();
    for (const ReceiverReport& rep : golden.reports) {
      switch (rep.outcome) {
        case ReceiverOutcome::kCompleted:
          ++completed;
          break;
        case ReceiverOutcome::kDeparted:
          ++departed;
          break;
        case ReceiverOutcome::kHorizon:
        case ReceiverOutcome::kStalled:
          ++stalled_or_horizon;
          break;
      }
    }
    corrupt += golden.injected_corrupt;
    duplicates += golden.injected_duplicates;
    delays += golden.injected_delays;
  }
  // Every receiver ended in exactly one classified state — the "never a
  // hang" partition — and the soak actually exercised the whole fault
  // surface: receivers finishing with verified bytes, receivers churning
  // away, corruption, duplication and reordering all present.
  EXPECT_EQ(completed + departed + stalled_or_horizon, receivers);
  EXPECT_GT(completed, 0u);
  EXPECT_GT(departed, 0u);
  EXPECT_GT(corrupt, 0u);
  EXPECT_GT(duplicates, 0u);
  EXPECT_GT(delays, 0u);
}

}  // namespace
}  // namespace fountain
