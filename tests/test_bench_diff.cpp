// End-to-end tests for tools/bench_diff, the CI perf-regression gate: the
// real binary (path injected as BENCH_DIFF_BIN by CMake) is run against
// synthetic baseline/current JSON-lines files and judged purely on its exit
// code — exactly how CI consumes it. Covers the pass case, a genuine >10%
// regression, a whole-host slowdown absorbed by the calibration record, and
// the configuration errors (stale schema, missing calibration) that must
// fail closed with exit 2.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#if !defined(_WIN32)
#include <sys/wait.h>
#endif

namespace {

/// One JSON record in the bench_common.hpp v2 layout.
std::string record(const std::string& name, const std::string& kernel,
                   double mb_per_s, int schema = 2) {
  return "{\"schema\":" + std::to_string(schema) + ",\"bench\":\"t\",\"name\":\"" +
         name + "\",\"kernel\":\"" + kernel +
         "\",\"seconds\":0.001,\"mb_per_s\":" + std::to_string(mb_per_s) +
         ",\"symbols_per_s\":0,\"value\":0}\n";
}

std::string calibration(double mb_per_s, int schema = 2) {
  return record("calibration/xor64k", "scalar", mb_per_s, schema);
}

std::string write_file(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + name;
  std::ofstream f(path);
  f << content;
  return path;
}

/// Runs bench_diff and returns its exit code (-1 if it did not exit
/// normally).
int run_diff(const std::string& baseline, const std::string& current) {
  const std::string cmd = std::string(BENCH_DIFF_BIN) + " --baseline " +
                          baseline + " --current " + current +
                          " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
#if defined(_WIN32)
  return status;
#else
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
}

TEST(BenchDiff, IdenticalFilesPass) {
  const std::string content = calibration(1000) +
                              record("xor_block/1024", "avx2", 5000) +
                              record("tornado_encode/k=256", "tornado_a", 300);
  const auto base = write_file("bd_identical_base.json", content);
  const auto cur = write_file("bd_identical_cur.json", content);
  EXPECT_EQ(run_diff(base, cur), 0);
}

TEST(BenchDiff, RegressionFails) {
  // 20% drop on one gated record with an unchanged calibration -> exit 1.
  const auto base = write_file("bd_reg_base.json",
                               calibration(1000) +
                                   record("xor_block/1024", "avx2", 5000) +
                                   record("gf256_fma_block/1024", "avx2", 800));
  const auto cur = write_file("bd_reg_cur.json",
                              calibration(1000) +
                                  record("xor_block/1024", "avx2", 4000) +
                                  record("gf256_fma_block/1024", "avx2", 800));
  EXPECT_EQ(run_diff(base, cur), 1);
}

TEST(BenchDiff, SmallFluctuationPasses) {
  // 5% is within the 10% threshold.
  const auto base = write_file("bd_noise_base.json",
                               calibration(1000) +
                                   record("xor_block/1024", "avx2", 5000));
  const auto cur = write_file("bd_noise_cur.json",
                              calibration(1000) +
                                  record("xor_block/1024", "avx2", 4750));
  EXPECT_EQ(run_diff(base, cur), 0);
}

TEST(BenchDiff, HostSlowdownAbsorbedByCalibration) {
  // The whole current run is 2x slower — calibration included — as on a
  // throttled CI machine. Normalization must absorb it.
  const auto base = write_file("bd_host_base.json",
                               calibration(1000) +
                                   record("xor_block/1024", "avx2", 5000) +
                                   record("decode/k=1024", "tornado_a", 900));
  const auto cur = write_file("bd_host_cur.json",
                              calibration(500) +
                                  record("xor_block/1024", "avx2", 2500) +
                                  record("decode/k=1024", "tornado_a", 450));
  EXPECT_EQ(run_diff(base, cur), 0);
}

TEST(BenchDiff, HostScaleDoesNotMaskRealRegression) {
  // Host is 2x slower AND the kernel lost another 20% on top.
  const auto base = write_file("bd_hostreg_base.json",
                               calibration(1000) +
                                   record("xor_block/1024", "avx2", 5000));
  const auto cur = write_file("bd_hostreg_cur.json",
                              calibration(500) +
                                  record("xor_block/1024", "avx2", 2000));
  EXPECT_EQ(run_diff(base, cur), 1);
}

TEST(BenchDiff, StaleSchemaIsConfigError) {
  const auto base = write_file("bd_schema_base.json",
                               calibration(1000, 1) +
                                   record("xor_block/1024", "avx2", 5000, 1));
  const auto cur = write_file("bd_schema_cur.json",
                              calibration(1000) +
                                  record("xor_block/1024", "avx2", 5000));
  EXPECT_EQ(run_diff(base, cur), 2);
}

TEST(BenchDiff, MissingCalibrationIsConfigError) {
  const auto base = write_file("bd_nocal_base.json",
                               record("xor_block/1024", "avx2", 5000));
  const auto cur = write_file("bd_nocal_cur.json",
                              calibration(1000) +
                                  record("xor_block/1024", "avx2", 5000));
  EXPECT_EQ(run_diff(base, cur), 2);
}

TEST(BenchDiff, MissingCurrentRecordWarnsButPasses) {
  // A tier present in the baseline but absent on this host (e.g. GFNI) must
  // not fail the gate.
  const auto base = write_file("bd_missing_base.json",
                               calibration(1000) +
                                   record("xor_block/1024", "gfni", 9000) +
                                   record("xor_block/1024", "avx2", 5000));
  const auto cur = write_file("bd_missing_cur.json",
                              calibration(1000) +
                                  record("xor_block/1024", "avx2", 5000));
  EXPECT_EQ(run_diff(base, cur), 0);
}

TEST(BenchDiff, UngatedValueRecordsAreIgnored) {
  // Efficiency records carry mb_per_s = 0; halving `value` is not a
  // throughput regression and must not trip the gate.
  const std::string eff =
      "{\"schema\":2,\"bench\":\"t\",\"name\":\"fig4/efficiency\","
      "\"kernel\":\"tornado_a\",\"seconds\":0,\"mb_per_s\":0,"
      "\"symbols_per_s\":0,\"value\":0.9}\n";
  const std::string eff_worse =
      "{\"schema\":2,\"bench\":\"t\",\"name\":\"fig4/efficiency\","
      "\"kernel\":\"tornado_a\",\"seconds\":0,\"mb_per_s\":0,"
      "\"symbols_per_s\":0,\"value\":0.45}\n";
  const auto base = write_file("bd_value_base.json",
                               calibration(1000) +
                                   record("xor_block/1024", "avx2", 5000) +
                                   eff);
  const auto cur = write_file("bd_value_cur.json",
                              calibration(1000) +
                                  record("xor_block/1024", "avx2", 5000) +
                                  eff_worse);
  EXPECT_EQ(run_diff(base, cur), 0);
}

}  // namespace
