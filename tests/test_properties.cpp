// Cross-cutting property sweeps: the fountain property (any sufficiently
// large subset decodes, payload bit-exact) across code families, sizes,
// symbol sizes, stretch factors and check policies; and metric identities
// used by the benches.
#include <gtest/gtest.h>

#include <memory>

#include "carousel/carousel.hpp"
#include "core/tornado.hpp"
#include "engine_test_util.hpp"
#include "fec/interleaved.hpp"
#include "fec/reed_solomon.hpp"
#include "net/loss.hpp"
#include "sim/overhead.hpp"
#include "util/random.hpp"

namespace fountain {
namespace {

struct FountainCase {
  const char* name;
  std::function<std::unique_ptr<fec::ErasureCode>()> make;
  double max_overhead;  // generous bound for the decode point
};

class FountainProperty : public ::testing::TestWithParam<int> {};

std::vector<FountainCase> cases() {
  std::vector<FountainCase> all;
  for (const std::size_t k : {64ul, 300ul, 1024ul}) {
    for (const std::size_t p : {2ul, 100ul}) {
      all.push_back({"tornado_a",
                     [k, p] {
                       return std::make_unique<core::TornadoCode>(
                           core::TornadoParams::tornado_a(k, p, k + p));
                     },
                     0.9});
      all.push_back({"tornado_b",
                     [k, p] {
                       return std::make_unique<core::TornadoCode>(
                           core::TornadoParams::tornado_b(k, p, k + p));
                     },
                     0.9});
    }
  }
  for (const std::size_t k : {40ul, 250ul}) {
    all.push_back({"cauchy",
                   [k] {
                     return fec::make_reed_solomon(fec::RsKind::kCauchy, k, k,
                                                   64);
                   },
                   0.0});
    all.push_back({"interleaved",
                   [k] {
                     return std::make_unique<fec::InterleavedCode>(
                         k, std::max<std::size_t>(2, k / 25), 64);
                   },
                   1.0});
  }
  // Non-default Tornado shapes.
  {
    core::TornadoParams params = core::TornadoParams::tornado_a(400, 32, 9);
    params.stretch = 3.0;
    all.push_back({"tornado_stretch3",
                   [params] {
                     return std::make_unique<core::TornadoCode>(params);
                   },
                   1.6});
  }
  {
    core::TornadoParams params = core::TornadoParams::tornado_a(400, 32, 9);
    params.check_policy = core::CheckDegreePolicy::kPoisson;
    all.push_back({"tornado_poisson",
                   [params] {
                     return std::make_unique<core::TornadoCode>(params);
                   },
                   0.9});
  }
  {
    core::TornadoParams params = core::TornadoParams::tornado_a(400, 32, 9);
    params.left_spikes.clear();
    params.heavy_tail_d = 6;
    all.push_back({"tornado_heavytail6",
                   [params] {
                     return std::make_unique<core::TornadoCode>(params);
                   },
                   0.9});
  }
  return all;
}

TEST_P(FountainProperty, AnyLargeEnoughSubsetDecodesExactly) {
  const auto c = cases()[static_cast<std::size_t>(GetParam())];
  const auto code = c.make();
  const std::size_t k = code->source_count();

  util::SymbolMatrix source(k, code->symbol_size());
  source.fill_random(GetParam() * 131 + 7);
  util::SymbolMatrix encoding(code->encoded_count(), code->symbol_size());
  code->encode(source, encoding);

  util::Rng rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 3; ++trial) {
    const auto order = rng.permutation(code->encoded_count());
    auto decoder = code->make_decoder();
    std::size_t fed = 0;
    for (const auto index : order) {
      ++fed;
      if (decoder->add_symbol(index, encoding.row(index))) break;
    }
    ASSERT_TRUE(decoder->complete()) << c.name;
    EXPECT_EQ(decoder->source(), source) << c.name;
    EXPECT_LE(static_cast<double>(fed),
              (1.0 + c.max_overhead) * static_cast<double>(k) + 24.0)
        << c.name;

    // The structural decoder must agree on the completion point.
    auto structural = code->make_structural_decoder();
    std::size_t sfed = 0;
    for (const auto index : order) {
      ++sfed;
      if (structural->add_index(index)) break;
    }
    EXPECT_EQ(sfed, fed) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodes, FountainProperty,
                         ::testing::Range(0, 19));

TEST(MetricIdentities, EfficiencyFactorsMultiply) {
  // eta = eta_c * eta_d must hold for every reception result.
  const auto code = fec::make_reed_solomon(fec::RsKind::kCauchy, 30, 30, 16);
  util::Rng rng(5);
  const auto carousel =
      carousel::Carousel::random_permutation(code->encoded_count(), rng);
  for (const double p : {0.0, 0.3, 0.6}) {
    const auto r = test::listen_to_carousel(
        *code, carousel, std::make_unique<net::BernoulliLoss>(p, rng()), 3,
        1000000);
    ASSERT_TRUE(r.completed);
    EXPECT_NEAR(r.efficiency(30),
                r.coding_efficiency(30) * r.distinctness_efficiency(), 1e-12);
  }
}

TEST(MetricIdentities, OverheadAndEfficiencyAreReciprocal) {
  // eta = 1 / (1 + eps), the relation stated in Section 6.
  core::TornadoCode code(core::TornadoParams::tornado_a(500, 16, 3));
  const auto overheads = sim::sample_overhead_distribution(code, 20, 4);
  for (const double eps : overheads) {
    const double eta = 1.0 / (1.0 + eps);
    EXPECT_GT(eta, 0.0);
    EXPECT_LE(eta, 1.0);
  }
}

TEST(Determinism, WholePipelineIsSeedStable) {
  // Same seeds => byte-identical encodings and identical reception counts.
  auto run = [] {
    core::TornadoCode code(core::TornadoParams::tornado_a(256, 32, 7));
    util::SymbolMatrix src(256, 32);
    src.fill_random(9);
    util::SymbolMatrix enc(code.encoded_count(), 32);
    code.encode(src, enc);
    util::Rng rng(11);
    const auto carousel =
        carousel::Carousel::random_permutation(code.encoded_count(), rng);
    const auto r = test::listen_to_carousel(
        code, carousel, std::make_unique<net::BernoulliLoss>(0.2, 13), 5,
        100000);
    return std::make_pair(enc, r.received);
  };
  const auto [enc1, count1] = run();
  const auto [enc2, count2] = run();
  EXPECT_EQ(enc1, enc2);
  EXPECT_EQ(count1, count2);
}

}  // namespace
}  // namespace fountain
